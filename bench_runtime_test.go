package silkroad

import (
	"context"
	"testing"

	"repro/internal/netproto"
)

// BenchmarkRuntimeOverhead compares ProcessBatch throughput with the
// switch's background work driven by hand (the legacy per-batch Advance
// call) against the identical workload with the event runtime active
// (Switch.Run on a hand-stepped clock, background work executing on the
// driver goroutine). The acceptance bar is scheduler-driven within 5% of
// hand-driven; CI uploads the same comparison as BENCH_runtime.json via
// the "runtime" experiment.
func BenchmarkRuntimeOverhead(b *testing.B) {
	b.Run("hand", func(b *testing.B) { benchRuntimeOverhead(b, false) })
	b.Run("sched", func(b *testing.B) { benchRuntimeOverhead(b, true) })
}

func benchRuntimeOverhead(b *testing.B, schedDriven bool) {
	clock := NewManualClock(0)
	cfg := Defaults(1_000_000)
	cfg.Pipes = 4
	cfg.Clock = clock
	sw, err := NewSwitch(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.AddVIP(0, testVIP(), Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20")); err != nil {
		b.Fatal(err)
	}

	// Establish the connection working set before the timer starts.
	const conns = 8192
	const batchSize = 256
	batch := make([]*Packet, batchSize)
	for base := 0; base < conns; base += batchSize {
		for j := range batch {
			batch[j] = clientPkt(base+j, netproto.FlagSYN)
		}
		sw.ProcessBatch(0, batch)
	}
	sw.Advance(Time(5 * Millisecond))

	now := Time(10 * Millisecond)
	if schedDriven {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- sw.Run(ctx) }()
		defer func() {
			cancel()
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}()
	}

	b.ReportAllocs()
	b.SetBytes(batchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i * batchSize) % conns
		for j := range batch {
			batch[j] = clientPkt((base+j)%conns, netproto.FlagACK)
		}
		if schedDriven {
			// The runtime owns background work: step the clock and let the
			// packet path's poke wake the driver when anything is due.
			clock.Set(now)
			sw.ProcessBatch(now, batch)
		} else {
			sw.ProcessBatch(now, batch)
			sw.Advance(now)
		}
		now = now.Add(Microsecond)
	}
}
