package silkroad

// The UDP-encap tunnel: the switch's first real I/O loop. Each UDP
// datagram's payload is one raw IPv4/IPv6 packet (the encapsulation a ToR
// would feed a software LB), read in batches into reusable frame buffers,
// parsed once, pushed through ProcessFrames, and transmitted to the chosen
// DIP — rewritten in place (DNAT) or IP-in-IP encapsulated (DSR), both
// straight off the frame's cached offsets. The loop is unprivileged (plain
// UDP sockets, no raw-socket capability) and allocation-free in steady
// state, which is what lets CI run a real client → LB → backend path.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataplane"
	"repro/internal/netproto"
)

// Tunnel forwarding modes.
const (
	// TunnelRewrite forwards by rewriting the packet's destination to the
	// DIP in place (DNAT); the backend sees its own address.
	TunnelRewrite = "rewrite"
	// TunnelIPIP forwards by IP-in-IP encapsulating toward the DIP; the
	// inner packet keeps the VIP destination (direct server return).
	TunnelIPIP = "ipip"
)

// TunnelConfig parameterizes a Tunnel.
type TunnelConfig struct {
	// Switch is the load balancer the tunnel feeds. Required.
	Switch *Switch
	// Listen is the UDP address receiving encapsulated packets
	// (e.g. ":9000"; ":0" or "127.0.0.1:0" pick a free port).
	Listen string
	// Mode selects the TX action: TunnelRewrite (default) or TunnelIPIP.
	Mode string
	// Self is the outer source address for TunnelIPIP.
	Self netip.Addr
	// BatchSize bounds how many datagrams one read pass collects before
	// processing (default 64). Bigger batches amortize pipe hand-off under
	// load; the first read always blocks, so idle tunnels add no latency.
	BatchSize int
	// MaxPacket bounds one datagram's payload (default 65535).
	MaxPacket int
	// BatchWait bounds how long the read loop waits for follow-up
	// datagrams after the first of a batch (default 200µs). Zero keeps the
	// default; latency-sensitive callers can shrink it.
	BatchWait time.Duration
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// TunnelStats is a snapshot of the tunnel's datagram counters.
type TunnelStats struct {
	RxPackets   uint64 // datagrams received
	RxBytes     uint64 // payload bytes received
	Undecodable uint64 // payloads that were not parseable IP packets
	Forwarded   uint64 // packets transmitted to a DIP
	Dropped     uint64 // verdict drops (no VIP, meter, empty pool)
	TxErrors    uint64 // socket send failures
}

// Tunnel is a running UDP-encap forwarding loop over one Switch. Create
// with NewTunnel, drive with Run, stop by cancelling Run's context (or
// Close). Stats may be read concurrently.
type Tunnel struct {
	sw        *Switch
	mode      string
	self      netip.Addr
	batch     int
	maxPkt    int
	batchWait time.Duration
	logf      func(format string, args ...any)

	rx *net.UDPConn // ingress (encapsulated packets in)
	tx *net.UDPConn // egress (forwarded packets out)

	closeOnce sync.Once

	rxPackets   atomic.Uint64
	rxBytes     atomic.Uint64
	undecodable atomic.Uint64
	forwarded   atomic.Uint64
	dropped     atomic.Uint64
	txErrors    atomic.Uint64
}

// NewTunnel binds the tunnel's sockets and prepares its buffers. The
// returned tunnel is not forwarding yet — call Run.
func NewTunnel(cfg TunnelConfig) (*Tunnel, error) {
	if cfg.Switch == nil {
		return nil, errors.New("silkroad: TunnelConfig.Switch is required")
	}
	switch cfg.Mode {
	case "", TunnelRewrite, TunnelIPIP:
	default:
		return nil, fmt.Errorf("silkroad: unknown tunnel mode %q", cfg.Mode)
	}
	if cfg.Mode == TunnelIPIP && !cfg.Self.Is4() {
		return nil, errors.New("silkroad: tunnel mode ipip needs an IPv4 Self address")
	}
	t := &Tunnel{
		sw:        cfg.Switch,
		mode:      cfg.Mode,
		self:      cfg.Self,
		batch:     cfg.BatchSize,
		maxPkt:    cfg.MaxPacket,
		batchWait: cfg.BatchWait,
		logf:      cfg.Logf,
	}
	if t.mode == "" {
		t.mode = TunnelRewrite
	}
	if t.batch <= 0 {
		t.batch = 64
	}
	if t.maxPkt <= 0 {
		t.maxPkt = 65535
	}
	if t.batchWait <= 0 {
		t.batchWait = 200 * time.Microsecond
	}
	if t.logf == nil {
		t.logf = func(string, ...any) {}
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("silkroad: tunnel listen address: %w", err)
	}
	rx, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("silkroad: tunnel listen: %w", err)
	}
	tx, err := net.ListenUDP("udp", nil)
	if err != nil {
		rx.Close()
		return nil, fmt.Errorf("silkroad: tunnel egress socket: %w", err)
	}
	t.rx, t.tx = rx, tx
	return t, nil
}

// LocalAddr returns the ingress socket's bound address — the address
// clients encapsulate toward.
func (t *Tunnel) LocalAddr() netip.AddrPort {
	return t.rx.LocalAddr().(*net.UDPAddr).AddrPort()
}

// Close releases the tunnel's sockets, unblocking a concurrent Run. Safe
// to call more than once.
func (t *Tunnel) Close() error {
	t.closeOnce.Do(func() {
		t.rx.Close()
		t.tx.Close()
	})
	return nil
}

// Stats returns a snapshot of the tunnel's counters.
func (t *Tunnel) Stats() TunnelStats {
	return TunnelStats{
		RxPackets:   t.rxPackets.Load(),
		RxBytes:     t.rxBytes.Load(),
		Undecodable: t.undecodable.Load(),
		Forwarded:   t.forwarded.Load(),
		Dropped:     t.dropped.Load(),
		TxErrors:    t.txErrors.Load(),
	}
}

// Run executes the forwarding loop until ctx is cancelled (or Close is
// called), then returns nil. Packets already read when cancellation lands
// are still processed and transmitted — shutdown is graceful, not abrupt
// — but the tunnel is finished once Run returns (cancellation closes the
// ingress socket); build a new Tunnel to forward again. All buffers are
// allocated here once; the steady-state loop reads, parses, balances and
// transmits without allocating.
func (t *Tunnel) Run(ctx context.Context) error {
	// Cancellation closes the ingress socket: every blocked or future read
	// returns net.ErrClosed, with no race against deadline manipulation.
	// The egress socket stays open so the batch in flight still transmits.
	stop := context.AfterFunc(ctx, func() { t.rx.Close() })
	defer stop()

	bufs := make([][]byte, t.batch)
	for i := range bufs {
		bufs[i] = make([]byte, t.maxPkt)
	}
	frames := make([]netproto.Frame, t.batch)
	results := make([]Result, t.batch)
	var encBuf []byte // TunnelIPIP TX scratch, reused across packets

	for {
		n, err := t.fill(ctx, bufs, frames)
		if n > 0 {
			now := t.sw.Now()
			t.sw.ProcessFramesInto(now, frames[:n], results[:n])
			t.transmit(frames[:n], results[:n], &encBuf)
		}
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
	}
}

// fill reads one batch: a blocking read for the first datagram, then a
// short-deadline drain for follow-ups until the batch is full or the wire
// goes quiet. Unparseable payloads are counted and their slots reused, so
// frames[:n] is dense. The returned error (if any) ends the loop after the
// collected frames are processed.
func (t *Tunnel) fill(ctx context.Context, bufs [][]byte, frames []netproto.Frame) (int, error) {
	n := 0
	for n < t.batch {
		if n == 0 {
			// Idle: block until traffic arrives. Cancellation closes the
			// socket (see Run), so this cannot block past shutdown.
			t.rx.SetReadDeadline(time.Time{})
		} else {
			t.rx.SetReadDeadline(time.Now().Add(t.batchWait))
		}
		sz, _, err := t.rx.ReadFromUDPAddrPort(bufs[n])
		if err != nil {
			var ne net.Error
			if n > 0 && errors.As(err, &ne) && ne.Timeout() {
				return n, nil // batch closed by silence, not failure
			}
			return n, err
		}
		t.rxPackets.Add(1)
		t.rxBytes.Add(uint64(sz))
		if perr := netproto.ParseFrame(bufs[n][:sz], &frames[n]); perr != nil {
			t.undecodable.Add(1)
			t.logf("silkroad: tunnel: undecodable payload (%d B): %v", sz, perr)
			continue
		}
		n++
	}
	return n, nil
}

// transmit applies each verdict on the TX side: in-place destination
// rewrite or IP-in-IP encapsulation via the frame's cached offsets, then
// one UDP send to the DIP.
func (t *Tunnel) transmit(frames []netproto.Frame, results []Result, encBuf *[]byte) {
	for i := range frames {
		res := &results[i]
		if res.Verdict != dataplane.VerdictForward {
			t.dropped.Add(1)
			continue
		}
		f := &frames[i]
		payload := f.Data
		if t.mode == TunnelIPIP {
			enc, err := netproto.EncapIPIP((*encBuf)[:0], t.self, res.DIP.Addr(), f.Data)
			if err != nil {
				t.txErrors.Add(1)
				t.logf("silkroad: tunnel: encap for %v: %v", res.DIP, err)
				continue
			}
			*encBuf = enc
			payload = enc
		} else if err := f.RewriteDst(res.DIP); err != nil {
			t.txErrors.Add(1)
			t.logf("silkroad: tunnel: rewrite for %v: %v", res.DIP, err)
			continue
		}
		if _, err := t.tx.WriteToUDPAddrPort(payload, res.DIP); err != nil {
			t.txErrors.Add(1)
			t.logf("silkroad: tunnel: forward to %v: %v", res.DIP, err)
			continue
		}
		t.forwarded.Add(1)
	}
}
