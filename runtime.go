package silkroad

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/health"
	"repro/internal/sched"
)

// Clock maps the outside world onto the switch's virtual timeline.
// Config.Clock accepts any implementation; NewWallClock and NewManualClock
// cover the common cases.
type Clock = sched.Clock

// NewWallClock returns a monotonic clock anchored at the current instant:
// Time 0 is "now", and readings never jump on NTP adjustments. NewSwitch
// installs one automatically when Config.Clock is nil.
func NewWallClock() Clock { return sched.NewWallClock() }

// NewManualClock returns a hand-stepped clock for tests: it reads start
// until explicitly advanced.
func NewManualClock(start Time) *sched.ManualClock { return sched.NewManualClock(start) }

// ErrRunning is returned by Run when the switch already has an active
// runtime.
var ErrRunning = errors.New("runtime already running")

// eventRuntime is the switch's event runtime: one scheduler carrying the
// switch's own due work (learning-filter drains, CPU insertions, update
// transitions, aging) as a source, plus any periodic tasks (Every) and
// health checkers registered later. The wall-clock driver created by Run
// executes it against Config.Clock.
type eventRuntime struct {
	clock  Clock
	mu     sync.Mutex // guards sched; the driver lock
	sched  *sched.Scheduler
	driver atomic.Pointer[sched.WallDriver]
}

func newRuntime(clock Clock, s *Switch) *eventRuntime {
	if clock == nil {
		clock = sched.NewWallClock()
	}
	rt := &eventRuntime{clock: clock, sched: sched.New()}
	rt.sched.AddSource(switchSource{s})
	return rt
}

// switchSource adapts the whole switch — every pipe's control plane plus
// its aging wheel — as one scheduler source. Deadlines come from nextDue
// (which, unlike the simulation-facing NextEventTime, includes aging);
// advancing runs the legacy Advance path, which takes the pipe locks
// itself.
type switchSource struct{ s *Switch }

func (ss switchSource) NextEventTime() (Time, bool) { return ss.s.nextDue() }
func (ss switchSource) Advance(now Time)            { ss.s.Advance(now) }

// nextDue returns the earliest deadline of any kind the switch has:
// background work or aging-wheel ticks. The wall-clock driver sleeps on
// this; NextEventTime keeps its narrower simulation semantics.
func (s *Switch) nextDue() (Time, bool) {
	if s.multi != nil {
		return s.multi.NextDue()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	at, ok := s.cp.NextEventTime()
	if ag, agOK := s.cp.NextAging(); agOK && (!ok || ag.Before(at)) {
		at, ok = ag, true
	}
	if tr, trOK := s.cp.NextTransition(); trOK && (!ok || tr.Before(at)) {
		at, ok = tr, true
	}
	return at, ok
}

// Now returns the current instant of the switch's clock (Config.Clock, or
// the wall clock installed at construction).
func (s *Switch) Now() Time { return s.rt.clock.Now() }

// Run executes the switch's event runtime against the clock until ctx is
// cancelled, then returns nil. While Run is active the switch drives
// itself: learning-filter drains, rate-limited CPU insertions, PCC update
// transitions, connection aging, registered health checkers and Every
// tasks all execute autonomously, with no Advance calls from the caller.
//
// Packet-path methods remain safe to call concurrently; they nudge the
// runtime whenever they may have created earlier work. Only one Run may be
// active at a time; a second concurrent call returns ErrRunning.
func (s *Switch) Run(ctx context.Context) error {
	d := sched.NewWallDriver(s.rt.clock, s.rt.sched, &s.rt.mu)
	if !s.rt.driver.CompareAndSwap(nil, d) {
		return ErrRunning
	}
	defer s.rt.driver.Store(nil)
	return d.Run(ctx)
}

// Every schedules fn to run on the switch runtime every period, first
// firing one period from now. The callback runs on the runtime driver's
// goroutine (once Run is active) and must not block. The returned function
// stops the task; it is safe to call more than once.
func (s *Switch) Every(period Duration, fn func(now Time)) (stop func()) {
	s.rt.mu.Lock()
	task := s.rt.sched.Every(s.rt.clock.Now().Add(period), period, fn)
	s.rt.mu.Unlock()
	s.poke()
	return func() {
		s.rt.mu.Lock()
		task.Stop()
		s.rt.mu.Unlock()
	}
}

// AdvanceTo runs the switch's event runtime synchronously up to now in
// virtual time — the same work Run performs against a clock, executed
// inline and deterministically: the switch's background work, Every tasks
// and registered health checkers all fire in time order. When Config.Clock
// is a ManualClock it is stepped to now first, so Switch.Now keeps
// agreeing with the caller's timeline. AdvanceTo and Run are two drivers
// of the same scheduler; do not mix them concurrently.
func (s *Switch) AdvanceTo(now Time) {
	if mc, ok := s.rt.clock.(*sched.ManualClock); ok {
		mc.Set(now)
	}
	s.rt.mu.Lock()
	s.rt.sched.RunUntil(now)
	s.rt.mu.Unlock()
}

// poke nudges an active runtime driver to re-read its deadlines; a no-op
// when Run is not active.
func (s *Switch) poke() {
	if d := s.rt.driver.Load(); d != nil {
		d.Poke()
	}
}

// NewHealthChecker builds a §7-style DIP health checker bound to this
// switch: failed probes drive PCC-preserving RemoveDIP updates, recoveries
// drive AddDIP. The checker is registered with the switch runtime, so
// under Switch.Run it probes autonomously; callers driving virtual time by
// hand advance it alongside the switch instead:
//
//	hc := sw.NewHealthChecker(health.DefaultConfig(), probe)
//	hc.Watch(vip, dip)
//	... hc.Advance(now); sw.Advance(now) ...
func (s *Switch) NewHealthChecker(cfg health.Config, probe health.ProbeFunc) *health.Checker {
	hc := health.New(cfg, lockedManager{s}, probe)
	s.rt.mu.Lock()
	s.rt.sched.AddSource(hc)
	s.rt.mu.Unlock()
	s.poke()
	return hc
}
