package ctrlplane

// §7's alternative failure handling: instead of minting a DIP pool version
// on every failure (and consuming version-number space), a VIP can opt
// into resilient hashing. Its DIPPoolTable row selects DIPs through a
// fixed bucket table; when a DIP fails, only that DIP's buckets are
// reassigned to survivors, so every connection to a surviving DIP keeps
// its backend with NO version change and no TransitTable involvement.
// When the DIP recovers, its original buckets are restored.
//
// The trade-off (exercised by BenchmarkAblationFailover): connections that
// were established on a reassigned bucket during the failure window move
// back at recovery — a small, bounded breakage the version-based path does
// not have, in exchange for zero version churn.

import (
	"errors"
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/simtime"
)

// Errors specific to resilient mode.
var (
	ErrResilientVIP   = errors.New("ctrlplane: VIP uses resilient hashing; use FailDIP/RecoverDIP")
	ErrNotResilient   = errors.New("ctrlplane: VIP does not use resilient hashing")
	ErrDIPNotDown     = errors.New("ctrlplane: DIP is not down")
	ErrDIPAlreadyDown = errors.New("ctrlplane: DIP already down")
	ErrLastDIP        = errors.New("ctrlplane: cannot fail the last live DIP")
)

type resilientState struct {
	buckets []dataplane.DIP        // current bucket table
	origin  []dataplane.DIP        // original owner of each bucket
	down    map[dataplane.DIP]bool // failed members
	live    []dataplane.DIP        // current live member list
}

// EnableResilientHashing switches vip's current pool version to resilient
// bucket selection with bucketsPerDIP buckets per member. The VIP must be
// idle (no update in flight); from then on, DIP failures are handled by
// FailDIP/RecoverDIP instead of pool-version updates.
func (cp *ControlPlane) EnableResilientHashing(vip dataplane.VIP, bucketsPerDIP int) error {
	vc, ok := cp.vips[vip]
	if !ok {
		return dataplane.ErrUnknownVIP
	}
	if vc.state != updIdle || len(vc.queued) > 0 {
		return errors.New("ctrlplane: cannot enable resilient hashing mid-update")
	}
	if vc.resilient != nil {
		return errors.New("ctrlplane: resilient hashing already enabled")
	}
	if bucketsPerDIP <= 0 {
		return errors.New("ctrlplane: bucketsPerDIP must be positive")
	}
	pool := vc.pools[vc.curVer]
	if len(pool) == 0 {
		return errors.New("ctrlplane: empty pool")
	}
	n := len(pool) * bucketsPerDIP
	rs := &resilientState{
		buckets: make([]dataplane.DIP, n),
		origin:  make([]dataplane.DIP, n),
		down:    make(map[dataplane.DIP]bool),
		live:    clone(pool),
	}
	for i := 0; i < n; i++ {
		rs.buckets[i] = pool[i%len(pool)]
		rs.origin[i] = pool[i%len(pool)]
	}
	if err := cp.sw.WritePoolBuckets(vip, vc.curVer, rs.live, rs.buckets); err != nil {
		return err
	}
	vc.resilient = rs
	return nil
}

// Resilient reports whether vip uses resilient hashing.
func (cp *ControlPlane) Resilient(vip dataplane.VIP) bool {
	vc, ok := cp.vips[vip]
	return ok && vc.resilient != nil
}

// FailDIP handles a DIP failure. For resilient VIPs it reassigns only the
// failed member's buckets within the same pool version; for version-based
// VIPs it falls back to a PCC-preserving RemoveDIP update.
func (cp *ControlPlane) FailDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error {
	vc, ok := cp.vips[vip]
	if !ok {
		return dataplane.ErrUnknownVIP
	}
	rs := vc.resilient
	if rs == nil {
		return cp.RemoveDIP(now, vip, dip)
	}
	if rs.down[dip] {
		return ErrDIPAlreadyDown
	}
	survivors := make([]dataplane.DIP, 0, len(rs.live)-1)
	for _, d := range rs.live {
		if d != dip {
			survivors = append(survivors, d)
		}
	}
	if len(survivors) == len(rs.live) {
		return fmt.Errorf("ctrlplane: DIP %v not in pool of %v", dip, vip)
	}
	if len(survivors) == 0 {
		return ErrLastDIP
	}
	k := 0
	for i := range rs.buckets {
		if rs.buckets[i] == dip {
			rs.buckets[i] = survivors[k%len(survivors)]
			k++
		}
	}
	rs.down[dip] = true
	rs.live = survivors
	vc.pools[vc.curVer] = clone(rs.live)
	cp.metrics.ResilientFailovers++
	return cp.sw.WritePoolBuckets(vip, vc.curVer, rs.live, rs.buckets)
}

// RecoverDIP restores a previously failed DIP of a resilient VIP to
// exactly the buckets it owned originally. For version-based VIPs it falls
// back to AddDIP.
func (cp *ControlPlane) RecoverDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error {
	vc, ok := cp.vips[vip]
	if !ok {
		return dataplane.ErrUnknownVIP
	}
	rs := vc.resilient
	if rs == nil {
		return cp.AddDIP(now, vip, dip)
	}
	if !rs.down[dip] {
		return ErrDIPNotDown
	}
	for i := range rs.buckets {
		if rs.origin[i] == dip {
			rs.buckets[i] = dip
		}
	}
	delete(rs.down, dip)
	rs.live = append(rs.live, dip)
	vc.pools[vc.curVer] = clone(rs.live)
	cp.metrics.ResilientRecoveries++
	return cp.sw.WritePoolBuckets(vip, vc.curVer, rs.live, rs.buckets)
}
