package ctrlplane

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

func resilientHarness(t *testing.T) *harness {
	h := newHarness(t, dataplane.DefaultConfig(100000), DefaultConfig())
	if err := h.cp.AddVIP(0, testVIP(), poolN(8), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.cp.EnableResilientHashing(testVIP(), 64); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestEnableResilientHashing(t *testing.T) {
	h := resilientHarness(t)
	if !h.cp.Resilient(testVIP()) {
		t.Fatal("not resilient after enable")
	}
	if err := h.cp.EnableResilientHashing(testVIP(), 64); err == nil {
		t.Fatal("double enable accepted")
	}
	// Selection still works and is stable.
	d1 := h.send(0, tupleN(1), netproto.FlagSYN).DIP
	d2 := h.send(100, tupleN(1), netproto.FlagACK).DIP
	if d1 != d2 || !d1.IsValid() {
		t.Fatalf("selection unstable: %v vs %v", d1, d2)
	}
}

func TestResilientFailoverMovesOnlyFailedBuckets(t *testing.T) {
	h := resilientHarness(t)
	vip := testVIP()
	dips := poolN(8)
	// Establish connections; record assignments.
	first := map[int]dataplane.DIP{}
	for i := 0; i < 400; i++ {
		first[i] = h.send(simtime.Time(i)*1000, tupleN(i), netproto.FlagSYN).DIP
	}
	victim := dips[3]
	if err := h.cp.FailDIP(ms(1), vip, victim); err != nil {
		t.Fatal(err)
	}
	// Connections not mapped to the victim keep their DIP; victim's
	// connections remap to survivors.
	for i := 0; i < 400; i++ {
		res := h.send(ms(2), tupleN(i), netproto.FlagACK)
		if first[i] == victim {
			if res.DIP == victim {
				t.Fatalf("conn %d still routed to failed DIP", i)
			}
			continue
		}
		if res.DIP != first[i] {
			t.Fatalf("conn %d moved %v -> %v although its DIP survived", i, first[i], res.DIP)
		}
	}
	// No version was consumed and no update ran.
	m := h.cp.Metrics()
	if m.VersionAllocs != 0 || m.UpdatesCompleted != 0 {
		t.Fatalf("resilient failover churned versions: %+v", m)
	}
	if m.ResilientFailovers != 1 {
		t.Fatalf("ResilientFailovers = %d", m.ResilientFailovers)
	}
	cur, _ := h.cp.CurrentPool(vip)
	if len(cur) != 7 {
		t.Fatalf("live pool = %v", cur)
	}
}

func TestResilientRecoveryRestoresOrigin(t *testing.T) {
	h := resilientHarness(t)
	vip := testVIP()
	dips := poolN(8)
	first := map[int]dataplane.DIP{}
	for i := 0; i < 300; i++ {
		first[i] = h.send(simtime.Time(i)*1000, tupleN(i), netproto.FlagSYN).DIP
	}
	victim := dips[5]
	h.cp.FailDIP(ms(1), vip, victim)
	if err := h.cp.RecoverDIP(ms(2), vip, victim); err != nil {
		t.Fatal(err)
	}
	// After recovery every connection is back on its original DIP.
	for i := 0; i < 300; i++ {
		res := h.send(ms(3), tupleN(i), netproto.FlagACK)
		if res.DIP != first[i] {
			t.Fatalf("conn %d not restored: %v vs %v", i, res.DIP, first[i])
		}
	}
	cur, _ := h.cp.CurrentPool(vip)
	if len(cur) != 8 {
		t.Fatalf("live pool after recovery = %v", cur)
	}
	if h.cp.Metrics().ResilientRecoveries != 1 {
		t.Fatal("recovery not counted")
	}
}

func TestResilientDoubleFailure(t *testing.T) {
	h := resilientHarness(t)
	vip := testVIP()
	dips := poolN(8)
	if err := h.cp.FailDIP(ms(1), vip, dips[0]); err != nil {
		t.Fatal(err)
	}
	if err := h.cp.FailDIP(ms(2), vip, dips[1]); err != nil {
		t.Fatal(err)
	}
	if err := h.cp.FailDIP(ms(3), vip, dips[0]); err != ErrDIPAlreadyDown {
		t.Fatalf("double fail: %v", err)
	}
	// Recover in reverse order; both restorations must land.
	if err := h.cp.RecoverDIP(ms(4), vip, dips[0]); err != nil {
		t.Fatal(err)
	}
	if err := h.cp.RecoverDIP(ms(5), vip, dips[1]); err != nil {
		t.Fatal(err)
	}
	if err := h.cp.RecoverDIP(ms(6), vip, dips[1]); err != ErrDIPNotDown {
		t.Fatalf("recover of live DIP: %v", err)
	}
	cur, _ := h.cp.CurrentPool(vip)
	if len(cur) != 8 {
		t.Fatalf("pool = %v", cur)
	}
}

func TestResilientVIPRejectsVersionUpdates(t *testing.T) {
	h := resilientHarness(t)
	if err := h.cp.RequestUpdate(ms(1), testVIP(), poolN(7)); err != ErrResilientVIP {
		t.Fatalf("RequestUpdate on resilient VIP: %v", err)
	}
}

func TestResilientFallbacksForPlainVIP(t *testing.T) {
	h := defaultHarness(t)
	vip := testVIP()
	dips := poolN(8)
	// FailDIP on a non-resilient VIP falls back to the version-based path.
	if err := h.cp.FailDIP(ms(1), vip, dips[0]); err != nil {
		t.Fatal(err)
	}
	h.cp.Advance(ms(30))
	if h.cp.Metrics().UpdatesCompleted != 1 {
		t.Fatal("fallback RemoveDIP did not run")
	}
	if err := h.cp.RecoverDIP(ms(31), vip, dips[0]); err != nil {
		t.Fatal(err)
	}
	h.cp.Advance(ms(60))
	cur, _ := h.cp.CurrentPool(vip)
	if len(cur) != 8 {
		t.Fatalf("pool = %v", cur)
	}
}

func TestResilientErrors(t *testing.T) {
	h := resilientHarness(t)
	vip := testVIP()
	if err := h.cp.FailDIP(ms(1), vip, poolN(9)[8]); err == nil {
		t.Fatal("failing an unknown DIP accepted")
	}
	// Cannot fail every DIP.
	dips := poolN(8)
	for i := 0; i < 7; i++ {
		if err := h.cp.FailDIP(ms(2), vip, dips[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.cp.FailDIP(ms(3), vip, dips[7]); err != ErrLastDIP {
		t.Fatalf("failing last DIP: %v", err)
	}
	if h.cp.Resilient(dataplane.VIP{}) {
		t.Fatal("unknown VIP reported resilient")
	}
	if err := h.cp.EnableResilientHashing(dataplane.VIP{}, 4); err != dataplane.ErrUnknownVIP {
		t.Fatalf("enable on unknown VIP: %v", err)
	}
	if err := h.cp.EnableResilientHashing(vip, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
}

// TestResilientRecoveryBreakage quantifies the §7 trade-off: connections
// established on reassigned buckets during a failure window move back when
// the original owner recovers.
func TestResilientRecoveryBreakage(t *testing.T) {
	h := resilientHarness(t)
	vip := testVIP()
	dips := poolN(8)
	h.cp.FailDIP(ms(1), vip, dips[2])
	// Connections established during the failure window.
	duringFirst := map[int]dataplane.DIP{}
	for i := 1000; i < 1400; i++ {
		duringFirst[i] = h.send(ms(2), tupleN(i), netproto.FlagSYN).DIP
	}
	h.cp.RecoverDIP(ms(3), vip, dips[2])
	moved := 0
	for i := 1000; i < 1400; i++ {
		res := h.send(ms(4), tupleN(i), netproto.FlagACK)
		if res.DIP != duringFirst[i] {
			moved++
		}
	}
	// Roughly 1/8 of during-failure connections sat on the failed DIP's
	// buckets and move back; well below half, above zero.
	if moved == 0 {
		t.Fatal("expected some recovery breakage (the documented trade-off)")
	}
	if frac := float64(moved) / 400; frac > 0.3 {
		t.Fatalf("recovery moved %.2f of connections, expected ~1/8", frac)
	}
}
