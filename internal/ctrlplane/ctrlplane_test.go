package ctrlplane

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

func testVIP() dataplane.VIP {
	return dataplane.VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 80, Proto: netproto.ProtoTCP}
}

func pool(names ...string) []dataplane.DIP {
	out := make([]dataplane.DIP, len(names))
	for i, n := range names {
		out[i] = netip.MustParseAddrPort(n)
	}
	return out
}

func poolN(n int) []dataplane.DIP {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("10.0.0.%d:20", i+1)
	}
	return pool(names...)
}

func tupleN(i int) netproto.FiveTuple {
	return netproto.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{1, 2, byte(i >> 8), byte(i)}),
		Dst:     netip.MustParseAddr("20.0.0.1"),
		SrcPort: uint16(1024 + i%50000),
		DstPort: 80,
		Proto:   netproto.ProtoTCP,
	}
}

// harness wires a switch + control plane and drives packets through both,
// checking per-connection consistency like the flow simulator does.
type harness struct {
	t          *testing.T
	sw         *dataplane.Switch
	cp         *ControlPlane
	firstDIP   map[uint64]dataplane.DIP
	violations int
}

func newHarness(t *testing.T, dcfg dataplane.Config, ccfg Config) *harness {
	t.Helper()
	sw, err := dataplane.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	cp := New(sw, ccfg)
	return &harness{t: t, sw: sw, cp: cp, firstDIP: map[uint64]dataplane.DIP{}}
}

// send processes one packet at now, resolving CPU redirects, and tracks
// PCC: a forwarded packet whose DIP differs from the connection's first
// DIP is a violation.
func (h *harness) send(now simtime.Time, tup netproto.FiveTuple, flags uint8) dataplane.Result {
	h.cp.Advance(now)
	pkt := &netproto.Packet{Tuple: tup, TCPFlags: flags}
	res := h.sw.Process(now, pkt)
	res = h.cp.HandleResult(now, pkt, res)
	if res.Verdict == dataplane.VerdictForward {
		if first, seen := h.firstDIP[res.KeyHash]; seen {
			if first != res.DIP {
				h.violations++
			}
		} else {
			h.firstDIP[res.KeyHash] = res.DIP
		}
	}
	return res
}

func defaultHarness(t *testing.T) *harness {
	h := newHarness(t, dataplane.DefaultConfig(100000), DefaultConfig())
	if err := h.cp.AddVIP(0, testVIP(), poolN(8), 0); err != nil {
		t.Fatal(err)
	}
	return h
}

func ms(n int) simtime.Time { return simtime.Time(n) * simtime.Time(simtime.Millisecond) }

func TestLearnInsertPipeline(t *testing.T) {
	h := defaultHarness(t)
	tup := tupleN(1)
	res := h.send(0, tup, netproto.FlagSYN)
	if !res.Learned {
		t.Fatal("no learn event")
	}
	// Before the learning timeout the entry cannot be installed.
	if _, ok := h.sw.LookupConn(tup); ok {
		t.Fatal("entry installed with zero CPU latency")
	}
	// After timeout + one insert slot (5us at 200K/s) it must be.
	h.cp.Advance(ms(2))
	if v, ok := h.sw.LookupConn(tup); !ok || v != 0 {
		t.Fatalf("entry after advance: (%d,%v)", v, ok)
	}
	m := h.cp.Metrics()
	if m.Inserted != 1 {
		t.Fatalf("Inserted = %d", m.Inserted)
	}
	if m.MeanInsertDelay() < simtime.Duration(simtime.Millisecond) {
		t.Fatalf("insert delay %v below learning timeout", m.MeanInsertDelay())
	}
	// Subsequent packet hits ConnTable.
	res2 := h.send(ms(3), tup, netproto.FlagACK)
	if !res2.ConnHit {
		t.Fatal("packet after install missed")
	}
	if h.violations != 0 {
		t.Fatalf("violations = %d", h.violations)
	}
}

func TestPCCAcrossUpdateWithPendingConns(t *testing.T) {
	h := defaultHarness(t)
	vip := testVIP()
	// Start connections; while they are still pending, request an update.
	var tups []netproto.FiveTuple
	for i := 0; i < 50; i++ {
		tup := tupleN(i)
		tups = append(tups, tup)
		h.send(simtime.Time(i)*1000, tup, netproto.FlagSYN)
	}
	// t=0.1ms: update requested while all 50 conns are pending.
	if err := h.cp.RemoveDIP(simtime.Time(100_000), vip, poolN(8)[7]); err != nil {
		t.Fatal(err)
	}
	// Pending conns keep sending through the window where the VIPTable
	// swap happens (~1ms later).
	for step := 1; step <= 8; step++ {
		for _, tup := range tups {
			h.send(ms(step), tup, netproto.FlagACK)
		}
	}
	h.cp.Advance(ms(50))
	for _, tup := range tups {
		h.send(ms(51), tup, netproto.FlagACK)
	}
	if h.violations != 0 {
		t.Fatalf("PCC violations with TransitTable = %d, want 0", h.violations)
	}
	m := h.cp.Metrics()
	if m.UpdatesCompleted != 1 {
		t.Fatalf("UpdatesCompleted = %d", m.UpdatesCompleted)
	}
	// New connections must use the 7-DIP pool.
	cur, _ := h.cp.CurrentPool(vip)
	if len(cur) != 7 {
		t.Fatalf("current pool size = %d", len(cur))
	}
}

func TestNoTransitAblationViolatesPCC(t *testing.T) {
	dcfg := dataplane.DefaultConfig(100000)
	dcfg.DisableTransit = true
	ccfg := DefaultConfig()
	ccfg.Mode = ModeNoTransit
	h := newHarness(t, dcfg, ccfg)
	vip := testVIP()
	if err := h.cp.AddVIP(0, vip, poolN(8), 0); err != nil {
		t.Fatal(err)
	}
	// Many pending connections...
	var tups []netproto.FiveTuple
	for i := 0; i < 400; i++ {
		tup := tupleN(i)
		tups = append(tups, tup)
		h.send(simtime.Time(i)*100, tup, netproto.FlagSYN)
	}
	// ...instant swap to a 7-DIP pool...
	if err := h.cp.RequestUpdate(simtime.Time(40_000), vip, poolN(7)); err != nil {
		t.Fatal(err)
	}
	// ...pending conns send again before their entries are installed:
	// ~1/8 of them hash differently under the new pool.
	for _, tup := range tups {
		h.send(simtime.Time(41_000), tup, netproto.FlagACK)
	}
	if h.violations == 0 {
		t.Fatal("expected PCC violations without TransitTable")
	}
	// Pool 8 -> 7 with independent per-version hashing remaps ~7/8 of
	// pending connections.
	frac := float64(h.violations) / 400
	if frac < 0.5 || frac > 0.98 {
		t.Fatalf("violation fraction = %.3f, expected ~0.875", frac)
	}
}

func TestVersionLifecycle(t *testing.T) {
	h := defaultHarness(t)
	vip := testVIP()
	// Install one connection on v0 so v0 stays pinned.
	tup := tupleN(1)
	h.send(0, tup, netproto.FlagSYN)
	h.cp.Advance(ms(5))
	// Update: v1 allocated.
	if err := h.cp.RequestUpdate(ms(6), vip, poolN(7)); err != nil {
		t.Fatal(err)
	}
	h.cp.Advance(ms(20))
	if got := h.cp.ActiveVersions(vip); got != 2 {
		t.Fatalf("ActiveVersions = %d, want 2 (v0 pinned by conn)", got)
	}
	// End the connection: v0 retires, pool row deleted.
	h.cp.EndConnection(ms(21), tup)
	if got := h.cp.ActiveVersions(vip); got != 1 {
		t.Fatalf("ActiveVersions after end = %d, want 1", got)
	}
	if _, ok := h.sw.LookupConn(tup); ok {
		t.Fatal("entry survived EndConnection")
	}
	m := h.cp.Metrics()
	if m.ConnsEnded != 1 || m.VersionAllocs != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestVersionReuseRollingReboot(t *testing.T) {
	h := defaultHarness(t)
	vip := testVIP()
	dips := poolN(8)
	// Pin v0 with a connection so it stays active.
	tup := tupleN(1)
	h.send(0, tup, netproto.FlagSYN)
	h.cp.Advance(ms(5))
	// Rolling reboot: remove DIP 3 (creates v1), then add a replacement.
	if err := h.cp.RemoveDIP(ms(6), vip, dips[3]); err != nil {
		t.Fatal(err)
	}
	h.cp.Advance(ms(30))
	replacement := netip.MustParseAddrPort("10.0.0.99:20")
	if err := h.cp.AddDIP(ms(31), vip, replacement); err != nil {
		t.Fatal(err)
	}
	h.cp.Advance(ms(60))
	m := h.cp.Metrics()
	if m.VersionReuses != 1 {
		t.Fatalf("VersionReuses = %d, want 1 (substituting the dead slot)", m.VersionReuses)
	}
	// The reused version (v0) must now be current and contain the
	// replacement at the dead DIP's position.
	cur, _ := h.cp.CurrentPool(vip)
	if len(cur) != 8 {
		t.Fatalf("pool size after reuse = %d", len(cur))
	}
	found := false
	for _, d := range cur {
		if d == replacement {
			found = true
		}
		if d == dips[3] {
			t.Fatal("removed DIP resurrected")
		}
	}
	if !found {
		t.Fatal("replacement DIP missing")
	}
	if v, _ := h.sw.CurrentVersion(vip); v != 0 {
		t.Fatalf("current version = %d, want reused 0", v)
	}
}

func TestVersionExhaustionRecovers(t *testing.T) {
	dcfg := dataplane.DefaultConfig(10000)
	dcfg.VersionBits = 2 // only 4 versions
	h := newHarness(t, dcfg, DefaultConfig())
	vip := testVIP()
	if err := h.cp.AddVIP(0, vip, poolN(4), 0); err != nil {
		t.Fatal(err)
	}
	// Updates with no live connections: retired versions recycle and the
	// ring never exhausts.
	for i := 0; i < 12; i++ {
		size := 3 + i%3
		if err := h.cp.RequestUpdate(ms(10*i+10), vip, poolN(size)); err != nil {
			t.Fatal(err)
		}
		h.cp.Advance(ms(10*i + 19))
	}
	h.cp.Advance(ms(500))
	m := h.cp.Metrics()
	if m.UpdatesCompleted < 10 {
		t.Fatalf("UpdatesCompleted = %d with 2-bit versions", m.UpdatesCompleted)
	}
}

func TestUpdatesSerializePerVIP(t *testing.T) {
	h := defaultHarness(t)
	vip := testVIP()
	h.cp.RequestUpdate(ms(1), vip, poolN(7))
	h.cp.RequestUpdate(ms(1), vip, poolN(6))
	h.cp.RequestUpdate(ms(1), vip, poolN(5))
	h.cp.Advance(ms(200))
	m := h.cp.Metrics()
	if m.UpdatesCompleted != 3 {
		t.Fatalf("UpdatesCompleted = %d, want 3", m.UpdatesCompleted)
	}
	cur, _ := h.cp.CurrentPool(vip)
	if len(cur) != 5 {
		t.Fatalf("final pool size = %d, want 5", len(cur))
	}
}

func TestCoalescedUpdate(t *testing.T) {
	h := defaultHarness(t)
	if err := h.cp.RequestUpdate(ms(1), testVIP(), poolN(8)); err != nil {
		t.Fatal(err)
	}
	m := h.cp.Metrics()
	if m.UpdatesCoalesced != 1 {
		t.Fatalf("identical pool should coalesce: %+v", m)
	}
}

func TestDigestCollisionResolution(t *testing.T) {
	// Force digest collisions with a 1-bit digest: most connections alias.
	// Every redirected SYN must be arbitrated to a forward verdict and the
	// CPU must resolve a meaningful number of false positives; connections
	// whose SYN was arbitrated get their own entry.
	dcfg := dataplane.DefaultConfig(10000)
	dcfg.DigestBits = 1
	h := newHarness(t, dcfg, DefaultConfig())
	vip := testVIP()
	if err := h.cp.AddVIP(0, vip, poolN(8), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		res := h.send(ms(i*2), tupleN(i), netproto.FlagSYN)
		if res.Verdict != dataplane.VerdictForward {
			t.Fatalf("SYN %d left unresolved: %v", i, res.Verdict)
		}
		h.cp.Advance(ms(i*2 + 1))
	}
	h.cp.Advance(ms(500))
	m := h.cp.Metrics()
	if m.DigestFPsResolved == 0 {
		t.Fatal("1-bit digests produced no collisions (implausible)")
	}
	// All 200 connections are tracked and installed (via learn pipeline or
	// inline redirect resolution).
	if got := h.cp.TrackedConns(); got != 200 {
		t.Fatalf("TrackedConns = %d, want 200", got)
	}
}

func TestNoFalseHitsAt16BitDigest(t *testing.T) {
	// At the paper's 16-bit operating point, thousands of connections see
	// no digest collisions and PCC holds trivially.
	h := defaultHarness(t)
	for i := 0; i < 2000; i++ {
		at := simtime.Time(i) * simtime.Time(10*simtime.Microsecond)
		h.send(at, tupleN(i), netproto.FlagSYN)
	}
	h.cp.Advance(ms(200))
	for i := 0; i < 2000; i++ {
		h.send(ms(201), tupleN(i), netproto.FlagACK)
	}
	if h.violations != 0 {
		t.Fatalf("violations = %d", h.violations)
	}
	if h.cp.Metrics().DigestFPsResolved != 0 {
		t.Fatalf("unexpected collisions at 16-bit digests: %d", h.cp.Metrics().DigestFPsResolved)
	}
}

func TestRetransmittedSYNNotTreatedAsCollision(t *testing.T) {
	h := defaultHarness(t)
	tup := tupleN(3)
	h.send(0, tup, netproto.FlagSYN)
	h.cp.Advance(ms(5))
	res := h.send(ms(6), tup, netproto.FlagSYN) // retransmit after install
	if res.Verdict != dataplane.VerdictForward {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	m := h.cp.Metrics()
	if m.RetransmittedSYNs != 1 || m.DigestFPsResolved != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestBloomFPResolvedDuringTransition(t *testing.T) {
	dcfg := dataplane.DefaultConfig(10000)
	dcfg.TransitTableBytes = 8
	dcfg.TransitTableHashes = 1
	h := newHarness(t, dcfg, DefaultConfig())
	vip := testVIP()
	h.cp.AddVIP(0, vip, poolN(8), 0)
	// Saturate the tiny filter with pending conns during recording.
	h.cp.RequestUpdate(ms(1), vip, poolN(7))
	for i := 0; i < 300; i++ {
		h.send(ms(1).Add(simtime.Duration(i)*simtime.Microsecond), tupleN(i), netproto.FlagSYN)
	}
	// Let the update reach step 2, then send brand-new SYNs: bloom FPs
	// must be arbitrated to the new version with entries installed.
	h.cp.Advance(ms(40))
	if !h.sw.InUpdate(vip) {
		t.Skip("update finished before step-2 window could be probed")
	}
	for i := 300; i < 360; i++ {
		res := h.send(ms(41), tupleN(i), netproto.FlagSYN)
		if res.Verdict != dataplane.VerdictForward {
			t.Fatalf("unresolved verdict %v", res.Verdict)
		}
	}
	if h.cp.Metrics().BloomFPsResolved == 0 {
		t.Fatal("saturated filter produced no resolved FPs")
	}
	if h.violations != 0 {
		t.Fatalf("violations = %d", h.violations)
	}
}

func TestAgingSweep(t *testing.T) {
	ccfg := DefaultConfig()
	ccfg.AgingTimeout = simtime.Duration(10 * simtime.Second)
	ccfg.AgingSweepEvery = simtime.Duration(5 * simtime.Second)
	h := newHarness(t, dataplane.DefaultConfig(10000), ccfg)
	h.cp.AddVIP(0, testVIP(), poolN(4), 0)
	tup := tupleN(1)
	h.send(0, tup, netproto.FlagSYN)
	h.cp.Advance(ms(10))
	if h.cp.TrackedConns() != 1 {
		t.Fatalf("TrackedConns = %d", h.cp.TrackedConns())
	}
	h.cp.Advance(simtime.Time(30 * simtime.Second))
	if h.cp.TrackedConns() != 0 {
		t.Fatal("idle connection not aged out")
	}
	if h.cp.Metrics().AgedOut != 1 {
		t.Fatalf("AgedOut = %d", h.cp.Metrics().AgedOut)
	}
}

func TestRemoveVIPCleansUp(t *testing.T) {
	h := defaultHarness(t)
	vip := testVIP()
	tup := tupleN(1)
	h.send(0, tup, netproto.FlagSYN)
	h.cp.Advance(ms(5))
	if err := h.cp.RemoveVIP(ms(6), vip); err != nil {
		t.Fatal(err)
	}
	if h.cp.TrackedConns() != 0 {
		t.Fatal("shadows survived RemoveVIP")
	}
	if h.sw.HasVIP(vip) {
		t.Fatal("VIP survived in dataplane")
	}
	if err := h.cp.RemoveVIP(ms(7), vip); err != dataplane.ErrUnknownVIP {
		t.Fatalf("double remove: %v", err)
	}
}

func TestNextEventTime(t *testing.T) {
	h := defaultHarness(t)
	if _, ok := h.cp.NextEventTime(); ok {
		t.Fatal("fresh control plane has scheduled work")
	}
	h.send(0, tupleN(1), netproto.FlagSYN)
	at, ok := h.cp.NextEventTime()
	if !ok {
		t.Fatal("no event after learn offer")
	}
	if at != simtime.Time(simtime.Millisecond) {
		t.Fatalf("next event = %v, want 1ms flush", at)
	}
}

func TestErrorPaths(t *testing.T) {
	h := defaultHarness(t)
	other := dataplane.VIP{Addr: netip.MustParseAddr("9.9.9.9"), Port: 1, Proto: netproto.ProtoTCP}
	if err := h.cp.RequestUpdate(0, other, poolN(2)); err != dataplane.ErrUnknownVIP {
		t.Fatalf("unknown vip update: %v", err)
	}
	if err := h.cp.AddDIP(0, other, poolN(1)[0]); err != dataplane.ErrUnknownVIP {
		t.Fatalf("unknown vip adddip: %v", err)
	}
	if err := h.cp.RemoveDIP(0, testVIP(), netip.MustParseAddrPort("1.1.1.1:1")); err == nil {
		t.Fatal("removing absent DIP succeeded")
	}
	if err := h.cp.RequestUpdate(0, testVIP(), nil); err == nil {
		t.Fatal("empty pool accepted")
	}
	if err := h.cp.AddVIP(0, testVIP(), poolN(2), 0); err != dataplane.ErrVIPExists {
		t.Fatalf("duplicate AddVIP: %v", err)
	}
	if err := h.cp.AddVIP(0, other, nil, 0); err == nil {
		t.Fatal("empty initial pool accepted")
	}
	if _, err := h.cp.CurrentPool(other); err != dataplane.ErrUnknownVIP {
		t.Fatalf("CurrentPool unknown: %v", err)
	}
}

func BenchmarkInsertionPipeline(b *testing.B) {
	sw, _ := dataplane.New(dataplane.DefaultConfig(1_000_000))
	cp := New(sw, DefaultConfig())
	cp.AddVIP(0, testVIP(), poolN(16), 0)
	b.ResetTimer()
	now := simtime.Time(0)
	for i := 0; i < b.N; i++ {
		pkt := &netproto.Packet{Tuple: tupleN(i), TCPFlags: netproto.FlagSYN}
		cp.Advance(now)
		res := sw.Process(now, pkt)
		cp.HandleResult(now, pkt, res)
		now = now.Add(simtime.Duration(10 * simtime.Microsecond))
	}
}
