package ctrlplane

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

// failoverAblation runs the same failure/recovery churn through both §7
// strategies and reports (versions consumed, connections moved).
func failoverAblation(t testing.TB, resilient bool) (versions uint64, moved int) {
	dcfg := dataplane.DefaultConfig(100000)
	sw, err := dataplane.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	cp := New(sw, DefaultConfig())
	vip := testVIP()
	dips := poolN(8)
	if err := cp.AddVIP(0, vip, dips, 0); err != nil {
		t.Fatal(err)
	}
	if resilient {
		if err := cp.EnableResilientHashing(vip, 64); err != nil {
			t.Fatal(err)
		}
	}
	send := func(now simtime.Time, i int, syn bool) dataplane.Result {
		cp.Advance(now)
		flags := netproto.FlagACK
		if syn {
			flags = netproto.FlagSYN
		}
		pkt := &netproto.Packet{Tuple: tupleN(i), TCPFlags: flags}
		res := sw.Process(now, pkt)
		return cp.HandleResult(now, pkt, res)
	}
	// Establish a base population.
	first := map[int]dataplane.DIP{}
	for i := 0; i < 300; i++ {
		first[i] = send(simtime.Time(i)*1000, i, true).DIP
	}
	now := ms(10)
	next := 300
	// Ten failure/recovery cycles with fresh connections arriving during
	// each failure window.
	for cycle := 0; cycle < 10; cycle++ {
		victim := dips[cycle%len(dips)]
		cp.Advance(now)
		if err := cp.FailDIP(now, vip, victim); err != nil {
			t.Fatal(err)
		}
		now = now.Add(simtime.Duration(20 * simtime.Millisecond))
		for k := 0; k < 30; k++ {
			first[next] = send(now, next, true).DIP
			next++
		}
		now = now.Add(simtime.Duration(20 * simtime.Millisecond))
		cp.Advance(now)
		if err := cp.RecoverDIP(now, vip, victim); err != nil {
			t.Fatal(err)
		}
		now = now.Add(simtime.Duration(20 * simtime.Millisecond))
	}
	cp.Advance(now.Add(simtime.Duration(simtime.Second)))
	// Measure movement, excluding connections whose own DIP failed.
	failedEver := map[dataplane.DIP]bool{}
	for c := 0; c < 10; c++ {
		failedEver[dips[c%len(dips)]] = true
	}
	for i := 0; i < next; i++ {
		res := send(now.Add(simtime.Duration(2*simtime.Second)), i, false)
		if res.Verdict == dataplane.VerdictForward && res.DIP != first[i] && !failedEver[first[i]] {
			moved++
		}
	}
	return cp.Metrics().VersionAllocs + cp.Metrics().VersionReuses, moved
}

// TestFailoverAblation contrasts the strategies: version-based failover
// consumes versions but never moves surviving connections; resilient
// failover consumes zero versions at the cost of bounded recovery moves.
func TestFailoverAblation(t *testing.T) {
	vVer, movedVer := failoverAblation(t, false)
	vRes, movedRes := failoverAblation(t, true)
	if vRes != 0 {
		t.Fatalf("resilient mode consumed %d versions", vRes)
	}
	if vVer == 0 {
		t.Fatal("version mode consumed no versions (updates did not run)")
	}
	if movedVer != 0 {
		t.Fatalf("version mode moved %d surviving connections", movedVer)
	}
	// Resilient mode may move connections established during failure
	// windows back at recovery; it must stay bounded (those windows held
	// 30 conns each, ~1/8 on the failed member's buckets).
	if movedRes > 100 {
		t.Fatalf("resilient mode moved %d connections (unbounded?)", movedRes)
	}
	t.Logf("ablation: version-based %d versions / %d moved; resilient %d versions / %d moved",
		vVer, movedVer, vRes, movedRes)
}

// BenchmarkAblationFailover reports both strategies' costs as metrics.
func BenchmarkAblationFailover(b *testing.B) {
	for _, mode := range []struct {
		name      string
		resilient bool
	}{{"version-based", false}, {"resilient-hashing", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var v uint64
			var moved int
			for i := 0; i < b.N; i++ {
				v, moved = failoverAblation(b, mode.resilient)
			}
			b.ReportMetric(float64(v), "versions")
			b.ReportMetric(float64(moved), "moved-conns")
		})
	}
}
