package ctrlplane

import (
	"errors"
	"sort"

	"repro/internal/dataplane"
	"repro/internal/handoff"
	"repro/internal/learnfilter"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

// ErrVersionSpace is returned by MapVersion when every version number is
// pinned by live connections and none can be retired — the import
// equivalent of §4.2's "very rare" version exhaustion.
var ErrVersionSpace = errors.New("ctrlplane: no free version for imported pool")

// ErrUnknownImportVersion rejects an ImportEntry whose version was never
// mapped on this control plane.
var ErrUnknownImportVersion = errors.New("ctrlplane: import version not mapped")

// ExportSession is a live conn-table export: a snapshot of every installed
// connection frozen at BeginExport (sorted by key hash, so chunking is
// deterministic) plus a delta feed of the inserts and deletes that land
// while the snapshot drains. The donor's packet path never pauses — the
// snapshot reads the CPU shadow, and deltas are appended by the normal
// install/release paths at no extra table cost.
//
// It implements handoff.Exporter.
type ExportSession struct {
	cp      *ControlPlane
	entries []handoff.Entry
	pos     int
	deltas  []handoff.Entry
	cursor  uint64
	closed  bool
}

// BeginExport freezes a snapshot of the installed connection table and
// attaches a delta feed. Close the session when done — an open session
// accumulates deltas without bound.
func (cp *ControlPlane) BeginExport(now simtime.Time) *ExportSession {
	s := &ExportSession{cp: cp, cursor: cp.journalCursor()}
	pools := make(map[dataplane.VIP]map[uint32][]dataplane.DIP)
	keys := make([]uint64, 0, len(cp.conns))
	for kh, sh := range cp.conns {
		if sh.installed {
			keys = append(keys, kh)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s.entries = make([]handoff.Entry, 0, len(keys))
	for _, kh := range keys {
		sh := cp.conns[kh]
		e := cp.exportEntry(sh, handoff.OpUpsert)
		// Share one pool clone per (vip, version): snapshots are large and
		// most entries pin the same few versions.
		byVer := pools[sh.vip]
		if byVer == nil {
			byVer = make(map[uint32][]dataplane.DIP)
			pools[sh.vip] = byVer
		}
		if p, ok := byVer[sh.version]; ok {
			e.Pool = p
		} else {
			byVer[sh.version] = e.Pool
		}
		s.entries = append(s.entries, e)
	}
	cp.exports = append(cp.exports, s)
	return s
}

// exportEntry renders one shadow as a transferable entry. Delete entries
// skip the pool and DIP (the receiver removes by tuple).
func (cp *ControlPlane) exportEntry(sh *connShadow, op handoff.Op) handoff.Entry {
	e := handoff.Entry{
		Op:      op,
		Tuple:   sh.tuple,
		KeyHash: cp.sw.KeyHash(sh.tuple),
		Digest:  cp.sw.ConnDigest(sh.tuple),
		VIP:     sh.vip,
		Version: sh.version,
	}
	if op == handoff.OpUpsert {
		if vc, ok := cp.vips[sh.vip]; ok {
			e.Pool = clone(vc.pools[sh.version])
		}
		if dip, err := cp.sw.SelectDIP(sh.vip, sh.version, sh.tuple); err == nil {
			e.DIP = dip
		}
	}
	return e
}

// journalCursor returns the flight-recorder journal sequence when the
// attached tracer is a Recorder (its gap-free record counter), falling
// back to the control plane's own mutation counter otherwise. Either way
// the cursor is monotone over conn-table mutations, which is all the
// handoff protocol needs to order snapshots against delta streams.
func (cp *ControlPlane) journalCursor() uint64 {
	if js, ok := cp.tracer.(interface{ JournalSeq() uint64 }); ok {
		return js.JournalSeq()
	}
	return cp.handoffSeq
}

// Pending implements handoff.Exporter.
func (s *ExportSession) Pending() int { return len(s.entries) - s.pos }

// NextChunk implements handoff.Exporter: the next max snapshot entries.
func (s *ExportSession) NextChunk(max int) []handoff.Entry {
	if max <= 0 || s.pos+max > len(s.entries) {
		max = len(s.entries) - s.pos
	}
	chunk := s.entries[s.pos : s.pos+max]
	s.pos += max
	return chunk
}

// Deltas implements handoff.Exporter: drains the accumulated delta feed.
func (s *ExportSession) Deltas() []handoff.Entry {
	d := s.deltas
	s.deltas = nil
	return d
}

// Cursor implements handoff.Exporter: the journal sequence at capture.
func (s *ExportSession) Cursor() uint64 { return s.cursor }

// Close implements handoff.Exporter: detaches the delta feed.
func (s *ExportSession) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for i, o := range s.cp.exports {
		if o == s {
			s.cp.exports = append(s.cp.exports[:i], s.cp.exports[i+1:]...)
			break
		}
	}
}

// noteConnInsert feeds an installed connection into every open export
// session and bumps the fallback cursor. Called from the install paths
// after the shadow is recorded.
func (cp *ControlPlane) noteConnInsert(sh *connShadow) {
	cp.handoffSeq++
	if len(cp.exports) == 0 {
		return
	}
	e := cp.exportEntry(sh, handoff.OpUpsert)
	for _, s := range cp.exports {
		s.deltas = append(s.deltas, e)
	}
}

// noteConnDelete feeds a released connection into every open export
// session and bumps the fallback cursor.
func (cp *ControlPlane) noteConnDelete(sh *connShadow) {
	cp.handoffSeq++
	if len(cp.exports) == 0 {
		return
	}
	e := cp.exportEntry(sh, handoff.OpDelete)
	for _, s := range cp.exports {
		s.deltas = append(s.deltas, e)
	}
}

// MapVersion resolves a donor's pool to a local version number: an
// existing version with the same pool content (version numbers are
// switch-local, pool contents are portable — with shared hash seeds the
// same pool selects the same DIP on any switch), else a freshly written
// version row holding the donor's pool so imported connections keep
// their old mapping. The current version is preferred so latest-version
// imports collapse onto the receiver's live version.
func (cp *ControlPlane) MapVersion(now simtime.Time, vip dataplane.VIP, donorPool []dataplane.DIP) (uint32, error) {
	vc, ok := cp.vips[vip]
	if !ok {
		return 0, dataplane.ErrUnknownVIP
	}
	if samePool(vc.pools[vc.curVer], donorPool) {
		return vc.curVer, nil
	}
	for _, v := range vc.sortedVersions() {
		if samePool(vc.pools[v], donorPool) {
			return v, nil
		}
	}
	var newVer uint32
	switch {
	case len(vc.freeVers) > 0:
		newVer = vc.freeVers[0]
		vc.freeVers = vc.freeVers[1:]
	default:
		found := false
		for _, v := range vc.sortedVersions() {
			if v != vc.curVer && vc.connsPerVer[v] == 0 && !(vc.state != updIdle && v == vc.prevVer) {
				cp.dropVersion(vc, v)
				newVer, found = v, true
				break
			}
		}
		if !found {
			cp.metrics.VersionExhaustions++
			return 0, ErrVersionSpace
		}
	}
	vc.pools[newVer] = clone(donorPool)
	if len(vc.pools) > vc.maxActive {
		vc.maxActive = len(vc.pools)
	}
	if err := cp.sw.WritePool(vip, newVer, donorPool); err != nil {
		panic("ctrlplane: WritePool (import): " + err.Error())
	}
	cp.metrics.VersionAllocs++
	vc.versionsAllocated++
	return newVer, nil
}

// ImportEntry accepts one transferred connection, pinning tuple to the
// (already mapped) local version ver through the bounded CPU insertion
// queue — imported state pays the same insert rate as learned state and
// must not starve the receiver's own learning, so a full queue returns
// handoff.ErrBackpressure and the transfer pauses until the CPU drains.
// A connection the receiver already tracks is a no-op (nil).
func (cp *ControlPlane) ImportEntry(now simtime.Time, tuple netproto.FiveTuple, ver uint32) error {
	kh := cp.sw.KeyHash(tuple)
	if sh, ok := cp.conns[kh]; ok && sh.installed {
		return nil
	}
	vip := dataplane.VIPOf(tuple)
	vc, ok := cp.vips[vip]
	if !ok {
		return dataplane.ErrUnknownVIP
	}
	if _, ok := vc.pools[ver]; !ok {
		return ErrUnknownImportVersion
	}
	if bound := cp.cfg.MaxInsertQueue; bound > 0 && len(cp.queue) >= bound {
		return handoff.ErrBackpressure
	}
	start := cp.cpuFreeAt
	if now.After(start) {
		start = now
	}
	per := cp.perInsert()
	cp.enqueue(pendingInsert{
		ev: learnfilter.Event{
			Tuple:   tuple,
			KeyHash: kh,
			Digest:  cp.sw.ConnDigest(tuple),
			Version: ver,
			At:      now,
		},
		completeAt: start.Add(per),
		imported:   true,
	})
	cp.cpuFreeAt = start.Add(per)
	if len(cp.queue) > cp.metrics.MaxInsertQueue {
		cp.metrics.MaxInsertQueue = len(cp.queue)
	}
	return nil
}

type importVerKey struct {
	vip dataplane.VIP
	ver uint32
}

// Importer adapts a receiving control plane as a handoff.Importer: donor
// versions are remapped by pool content once per (vip, donor-version)
// pair and imported entries are recorded so a cancelled transfer can be
// unwound (and a completed rejoin can release the donor's copies).
type Importer struct {
	cp   *ControlPlane
	vers map[importVerKey]uint32
	took []netproto.FiveTuple
}

// NewImporter builds an Importer over cp.
func NewImporter(cp *ControlPlane) *Importer {
	return &Importer{cp: cp, vers: make(map[importVerKey]uint32)}
}

// Target returns the receiving control plane.
func (im *Importer) Target() *ControlPlane { return im.cp }

// Import implements handoff.Importer.
func (im *Importer) Import(now simtime.Time, e handoff.Entry) error {
	key := importVerKey{e.VIP, e.Version}
	ver, ok := im.vers[key]
	if !ok {
		var err error
		if ver, err = im.cp.MapVersion(now, e.VIP, e.Pool); err != nil {
			return err
		}
		im.vers[key] = ver
	}
	if err := im.cp.ImportEntry(now, e.Tuple, ver); err != nil {
		return err
	}
	im.took = append(im.took, e.Tuple)
	return nil
}

// Delete implements handoff.Importer: replays a delta delete.
func (im *Importer) Delete(now simtime.Time, e handoff.Entry) {
	im.cp.EndImported(now, e.Tuple)
}

// Imported returns every tuple accepted so far (shared slice).
func (im *Importer) Imported() []netproto.FiveTuple { return im.took }

// Unwind releases every imported connection — the cancel path, so an
// abandoned transfer leaves the receiver exactly as it was.
func (im *Importer) Unwind(now simtime.Time) {
	for _, t := range im.took {
		im.cp.EndImported(now, t)
	}
	im.took = nil
}

// EndImported releases one connection by tuple — the delta-delete replay
// and the donor-side release after a rejoin migration. Unlike
// EndConnection it does not count toward ConnsEnded when the connection
// was never tracked.
func (cp *ControlPlane) EndImported(now simtime.Time, tuple netproto.FiveTuple) {
	kh := cp.sw.KeyHash(tuple)
	sh, ok := cp.conns[kh]
	if !ok {
		// The entry may still sit in the import queue: cancel it there so a
		// delta delete racing the snapshot import cannot resurrect it.
		for i := range cp.queue {
			if cp.queue[i].ev.KeyHash == kh && cp.queue[i].imported {
				cp.queue = append(cp.queue[:i], cp.queue[i+1:]...)
				break
			}
		}
		return
	}
	cp.releaseShadow(now, kh, sh)
	cp.metrics.ConnsEnded++
}
