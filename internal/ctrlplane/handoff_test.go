package ctrlplane

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/handoff"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

// handoffPair builds a donor/receiver pair sharing hash seeds (the
// cluster invariant that makes pool contents portable).
func handoffPair(t *testing.T, ccfg Config) (donor, recv *harness) {
	t.Helper()
	dcfg := dataplane.DefaultConfig(100000)
	donor = newHarness(t, dcfg, ccfg)
	recv = newHarness(t, dcfg, ccfg)
	for _, h := range []*harness{donor, recv} {
		if err := h.cp.AddVIP(0, testVIP(), poolN(8), 0); err != nil {
			t.Fatal(err)
		}
	}
	return donor, recv
}

// pump drives tr to convergence, advancing the receiver's virtual clock
// past its CPU queue whenever the transfer backpressures. Returns the
// finish time.
func pump(t *testing.T, tr *handoff.Transfer, recv *ControlPlane, from simtime.Time) simtime.Time {
	t.Helper()
	now := from
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("transfer did not converge")
		}
		_, done := tr.Step(now, 64)
		if done {
			return now
		}
		now = now.Add(simtime.Duration(simtime.Millisecond))
		recv.Advance(now)
	}
}

func TestExportImportPreservesMapping(t *testing.T) {
	donor, recv := handoffPair(t, DefaultConfig())
	vip := testVIP()

	// 60 conns on v0; update drops a DIP; 60 more on v1. The first wave
	// stays pinned to the old pool — exactly the state that breaks on a
	// cold failover.
	for i := 0; i < 60; i++ {
		donor.send(simtime.Time(i)*1000, tupleN(i), netproto.FlagSYN)
	}
	donor.cp.Advance(ms(50))
	if err := donor.cp.RemoveDIP(ms(50), vip, poolN(8)[7]); err != nil {
		t.Fatal(err)
	}
	donor.cp.Advance(ms(100))
	for i := 60; i < 120; i++ {
		donor.send(ms(100).Add(simtime.Duration(i)*1000), tupleN(i), netproto.FlagSYN)
	}
	donor.cp.Advance(ms(200))
	if donor.cp.TrackedConns() != 120 {
		t.Fatalf("donor tracks %d conns", donor.cp.TrackedConns())
	}
	// Receiver converges on the donor's *current* pool only.
	if err := recv.cp.RequestUpdate(ms(200), vip, poolN(7)); err != nil {
		t.Fatal(err)
	}
	recv.cp.Advance(ms(300))

	ses := donor.cp.BeginExport(ms(300))
	if ses.Pending() != 120 {
		t.Fatalf("snapshot has %d entries", ses.Pending())
	}
	im := NewImporter(recv.cp)
	tr := handoff.NewTransfer(ses, im, handoff.Config{ChunkSize: 32})
	end := pump(t, tr, recv.cp, ms(300))
	tr.Finish(end)
	recv.cp.Advance(end.Add(simtime.Duration(simtime.Second)))

	if got := recv.cp.TrackedConns(); got != 120 {
		t.Fatalf("receiver tracks %d conns, want 120", got)
	}
	// Every connection must select the same DIP on the receiver as on the
	// donor — including the wave pinned to the retired pool.
	for i := 0; i < 120; i++ {
		tup := tupleN(i)
		dv, ok := donor.sw.LookupConn(tup)
		if !ok {
			t.Fatalf("conn %d missing on donor", i)
		}
		rv, ok := recv.sw.LookupConn(tup)
		if !ok {
			t.Fatalf("conn %d missing on receiver", i)
		}
		dd, err := donor.sw.SelectDIP(vip, dv, tup)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := recv.sw.SelectDIP(vip, rv, tup)
		if err != nil {
			t.Fatal(err)
		}
		if dd != rd {
			t.Fatalf("conn %d: donor DIP %v, receiver DIP %v", i, dd, rd)
		}
	}
	st := tr.Stats()
	if st.Exported != 120 || st.Imported != 120 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Chunks != 4 {
		t.Fatalf("chunks = %d, want 4 (120/32)", st.Chunks)
	}
}

func TestExportDeltaStream(t *testing.T) {
	donor, recv := handoffPair(t, DefaultConfig())

	for i := 0; i < 40; i++ {
		donor.send(simtime.Time(i)*1000, tupleN(i), netproto.FlagSYN)
	}
	donor.cp.Advance(ms(50))

	ses := donor.cp.BeginExport(ms(50))
	im := NewImporter(recv.cp)
	tr := handoff.NewTransfer(ses, im, handoff.Config{ChunkSize: 16})

	// While the snapshot is in flight: 10 new conns learned, 5 of the
	// snapshotted ones end. The donor's packet path never pauses.
	tr.Step(ms(51), 16)
	for i := 40; i < 50; i++ {
		donor.send(ms(51).Add(simtime.Duration(i)*1000), tupleN(i), netproto.FlagSYN)
	}
	donor.cp.Advance(ms(100))
	for i := 0; i < 5; i++ {
		donor.cp.EndConnection(ms(100), tupleN(i))
	}

	end := pump(t, tr, recv.cp, ms(100))
	tr.Finish(end)
	recv.cp.Advance(end.Add(simtime.Duration(simtime.Second)))

	// Receiver must converge to the donor's exact table: 40 - 5 + 10.
	if got, want := recv.cp.TrackedConns(), donor.cp.TrackedConns(); got != want {
		t.Fatalf("receiver tracks %d conns, donor %d", got, want)
	}
	for i := 0; i < 50; i++ {
		tup := tupleN(i)
		_, donorHas := donor.sw.LookupConn(tup)
		_, recvHas := recv.sw.LookupConn(tup)
		if donorHas != recvHas {
			t.Fatalf("conn %d: donor=%v receiver=%v", i, donorHas, recvHas)
		}
	}
	if tr.Stats().Deltas == 0 {
		t.Fatal("no deltas replayed")
	}
}

func TestImportBackpressure(t *testing.T) {
	// Only the receiver's queue is bounded; the donor learns freely.
	donor, _ := handoffPair(t, DefaultConfig())
	rcfg := DefaultConfig()
	rcfg.MaxInsertQueue = 8
	recv := newHarness(t, dataplane.DefaultConfig(100000), rcfg)
	if err := recv.cp.AddVIP(0, testVIP(), poolN(8), 0); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 100; i++ {
		donor.send(simtime.Time(i)*1000, tupleN(i), netproto.FlagSYN)
	}
	donor.cp.Advance(ms(50))

	ses := donor.cp.BeginExport(ms(50))
	im := NewImporter(recv.cp)
	tr := handoff.NewTransfer(ses, im, handoff.Config{ChunkSize: 32})

	// With an 8-deep queue the first unbounded step must stall early.
	moved, done := tr.Step(ms(50), 0)
	if done || moved >= 100 {
		t.Fatalf("no backpressure: moved=%d done=%v", moved, done)
	}
	if tr.Stats().Backoffs == 0 {
		t.Fatal("backoff not recorded")
	}
	end := pump(t, tr, recv.cp, ms(50))
	tr.Finish(end)
	recv.cp.Advance(end.Add(simtime.Duration(simtime.Second)))
	if got := recv.cp.TrackedConns(); got != 100 {
		t.Fatalf("receiver tracks %d conns, want 100", got)
	}
	// The queue bound was respected throughout.
	if peak := recv.cp.Metrics().MaxInsertQueue; peak > 8 {
		t.Fatalf("receiver queue peaked at %d, bound 8", peak)
	}
}

func TestExportCancelUnwinds(t *testing.T) {
	donor, recv := handoffPair(t, DefaultConfig())
	for i := 0; i < 30; i++ {
		donor.send(simtime.Time(i)*1000, tupleN(i), netproto.FlagSYN)
	}
	donor.cp.Advance(ms(50))

	ses := donor.cp.BeginExport(ms(50))
	im := NewImporter(recv.cp)
	tr := handoff.NewTransfer(ses, im, handoff.Config{ChunkSize: 8})
	tr.Step(ms(50), 16)
	recv.cp.Advance(ms(60))
	tr.Cancel(ms(60))
	im.Unwind(ms(60))
	recv.cp.Advance(ms(70))

	if got := recv.cp.TrackedConns(); got != 0 {
		t.Fatalf("receiver still tracks %d conns after unwind", got)
	}
	// Donor unaffected; a second export starts clean.
	if got := donor.cp.TrackedConns(); got != 30 {
		t.Fatalf("donor tracks %d conns", got)
	}
	ses2 := donor.cp.BeginExport(ms(70))
	if ses2.Pending() != 30 {
		t.Fatalf("second snapshot has %d entries", ses2.Pending())
	}
	ses2.Close()
}
