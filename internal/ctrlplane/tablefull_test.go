package ctrlplane

// Coverage for both cuckoo.ErrTableFull branches in advance.go: the
// queued install path (retry with backoff, then overflow) and the inline
// install path (digest-FP arbitration against a full table).

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

func us(n int) simtime.Duration { return simtime.Duration(n) * simtime.Microsecond }

// fullHarness installs one connection and then caps the ConnTable at its
// current occupancy, so every further insertion hits ErrTableFull.
func fullHarness(t *testing.T, ccfg Config) *harness {
	t.Helper()
	h := newHarness(t, dataplane.DefaultConfig(10000), ccfg)
	if err := h.cp.AddVIP(0, testVIP(), poolN(4), 0); err != nil {
		t.Fatal(err)
	}
	h.send(0, tupleN(1), netproto.FlagSYN)
	h.cp.Advance(ms(2))
	if h.cp.Metrics().Inserted != 1 {
		t.Fatalf("setup: Inserted = %d", h.cp.Metrics().Inserted)
	}
	h.sw.SetConnTableLimit(h.sw.ConnTable().Len())
	return h
}

func TestInstallRetriesThenOverflows(t *testing.T) {
	ccfg := DefaultConfig()
	ccfg.MaxInsertRetries = 2
	var overflowed []netproto.FiveTuple
	ccfg.OnOverflow = func(now simtime.Time, tup netproto.FiveTuple, dip dataplane.DIP) {
		if !dip.IsValid() {
			t.Errorf("overflow callback got invalid DIP")
		}
		overflowed = append(overflowed, tup)
	}
	h := fullHarness(t, ccfg)

	h.send(ms(3), tupleN(2), netproto.FlagSYN)
	h.cp.Advance(ms(100)) // far beyond the worst-case backoff sum
	m := h.cp.Metrics()
	if m.InsertRetries != 2 {
		t.Fatalf("InsertRetries = %d, want 2", m.InsertRetries)
	}
	if m.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1", m.Overflows)
	}
	if len(overflowed) != 1 || overflowed[0] != tupleN(2) {
		t.Fatalf("OnOverflow saw %v", overflowed)
	}
	// The flow stays unpinned but keeps forwarding via VIPTable.
	res := h.send(ms(101), tupleN(2), netproto.FlagACK)
	if res.Verdict != dataplane.VerdictForward || res.ConnHit {
		t.Fatalf("overflowed flow: verdict=%v connHit=%v", res.Verdict, res.ConnHit)
	}
	if h.violations != 0 {
		t.Fatalf("PCC violations = %d", h.violations)
	}
}

func TestInstallRetryRecoversWhenSpaceFrees(t *testing.T) {
	ccfg := DefaultConfig()
	ccfg.MaxInsertRetries = 5
	h := fullHarness(t, ccfg)

	// SYN at 3ms: the learn flush lands at 4ms, the first install attempt
	// ~5us later fails against the capped table and backs off 1ms.
	h.send(ms(3), tupleN(2), netproto.FlagSYN)
	h.cp.Advance(ms(4).Add(us(10)))
	if got := h.cp.Metrics().InsertRetries; got != 1 {
		t.Fatalf("InsertRetries after first attempt = %d, want 1", got)
	}
	// The squeeze lifts before the retry fires: the insertion must land.
	h.sw.SetConnTableLimit(0)
	h.cp.Advance(ms(100))
	m := h.cp.Metrics()
	if m.Inserted != 2 {
		t.Fatalf("Inserted = %d, want 2", m.Inserted)
	}
	if m.Overflows != 0 {
		t.Fatalf("Overflows = %d, want 0", m.Overflows)
	}
	if v, ok := h.sw.LookupConn(tupleN(2)); !ok || v != 0 {
		t.Fatalf("retried conn not installed: (%d, %v)", v, ok)
	}
	// A retried insertion still pins the flow: later packets hit ConnTable.
	res := h.send(ms(101), tupleN(2), netproto.FlagACK)
	if !res.ConnHit {
		t.Fatal("retried conn missing from ConnTable")
	}
}

// TestInlineInstallTableFull drives the installInline ErrTableFull branch:
// a SYN whose (bucket, digest) aliases an installed entry triggers digest
// false-positive arbitration; the relocation succeeds (occupancy is
// unchanged) but the new connection's own insertion hits the full table.
func TestInlineInstallTableFull(t *testing.T) {
	dcfg := dataplane.DefaultConfig(64)
	dcfg.DigestBits = 4 // tiny digests make aliases cheap to brute-force
	h := newHarness(t, dcfg, DefaultConfig())
	if err := h.cp.AddVIP(0, testVIP(), poolN(4), 0); err != nil {
		t.Fatal(err)
	}
	anchor := tupleN(1)
	h.send(0, anchor, netproto.FlagSYN)
	h.cp.Advance(ms(2))
	if h.cp.Metrics().Inserted != 1 {
		t.Fatal("anchor not installed")
	}

	// Brute-force a distinct tuple that Lookup confuses with the anchor.
	khA := h.sw.KeyHash(anchor)
	var alias netproto.FiveTuple
	found := false
	for i := 2; i < 200000; i++ {
		cand := tupleN(i)
		kh := h.sw.KeyHash(cand)
		if kh == khA {
			continue
		}
		if _, _, ok := h.sw.ConnTable().Lookup(kh, h.sw.ConnDigest(cand)); ok {
			alias, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no digest alias found (DigestBits too large?)")
	}

	h.sw.SetConnTableLimit(h.sw.ConnTable().Len())
	res := h.send(ms(3), alias, netproto.FlagSYN)
	if res.Verdict != dataplane.VerdictForward {
		t.Fatalf("alias SYN verdict = %v", res.Verdict)
	}
	m := h.cp.Metrics()
	if m.DigestFPsResolved != 1 {
		t.Fatalf("DigestFPsResolved = %d, want 1", m.DigestFPsResolved)
	}
	if m.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1 (inline insert against full table)", m.Overflows)
	}
	// The anchor's relocated entry must still pin its flow.
	resA := h.send(ms(4), anchor, netproto.FlagACK)
	if !resA.ConnHit {
		t.Fatal("anchor lost its ConnTable entry after relocation")
	}
	if h.violations != 0 {
		t.Fatalf("PCC violations = %d", h.violations)
	}
}
