package ctrlplane

// Insert-queue pressure behaviours: the MaxInsertQueue hard bound with
// drop-newest shedding, injected CPU stalls, and insertion-rate scaling
// (brownouts).

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

func TestInsertQueueBoundSheds(t *testing.T) {
	ccfg := DefaultConfig()
	ccfg.MaxInsertQueue = 4
	h := newHarness(t, dataplane.DefaultConfig(10000), ccfg)
	if err := h.cp.AddVIP(0, testVIP(), poolN(4), 0); err != nil {
		t.Fatal(err)
	}
	// 20 connections land in one learn flush; the queue takes 4, sheds 16.
	for i := 0; i < 20; i++ {
		h.send(simtime.Time(i), tupleN(i), netproto.FlagSYN)
	}
	h.cp.Advance(ms(1).Add(us(1)))
	m := h.cp.Metrics()
	if m.InsertSheds != 16 {
		t.Fatalf("InsertSheds = %d, want 16", m.InsertSheds)
	}
	if m.MaxInsertQueue > 4 {
		t.Fatalf("MaxInsertQueue = %d exceeded the bound", m.MaxInsertQueue)
	}
	// Shed flows stay unpinned but keep forwarding, and later packets
	// re-offer them; with the queue bounded at 4, each flush round admits
	// at most 4, so all 20 pin over a handful of rounds.
	h.cp.Advance(ms(2))
	if h.cp.QueueDepth() != 0 {
		t.Fatalf("QueueDepth = %d after drain", h.cp.QueueDepth())
	}
	for round := 0; round < 6; round++ {
		now := ms(3 + 2*round)
		for i := 0; i < 20; i++ {
			res := h.send(now, tupleN(i), netproto.FlagACK)
			if res.Verdict != dataplane.VerdictForward {
				t.Fatalf("flow %d verdict = %v", i, res.Verdict)
			}
		}
		h.cp.Advance(now.Add(simtime.Duration(2 * simtime.Millisecond)))
	}
	if got := h.cp.Metrics().Inserted; got != 20 {
		t.Fatalf("Inserted after re-offer rounds = %d, want 20", got)
	}
	if got := h.cp.Metrics().MaxInsertQueue; got > 4 {
		t.Fatalf("MaxInsertQueue = %d exceeded the bound across rounds", got)
	}
	if h.violations != 0 {
		t.Fatalf("PCC violations = %d", h.violations)
	}
}

func TestStallCPUDelaysInsertions(t *testing.T) {
	h := defaultHarness(t)
	tup := tupleN(1)
	h.send(0, tup, netproto.FlagSYN)
	// Flush at 1ms queues the insertion to complete at 1ms+5us; a 10ms
	// stall at 1ms pushes it past 11ms.
	h.cp.Advance(ms(1))
	h.cp.StallCPU(ms(1), simtime.Duration(10*simtime.Millisecond))
	h.cp.Advance(ms(5))
	if _, ok := h.sw.LookupConn(tup); ok {
		t.Fatal("insertion completed during the CPU stall")
	}
	h.cp.Advance(ms(12))
	if _, ok := h.sw.LookupConn(tup); !ok {
		t.Fatal("insertion never completed after the stall")
	}
	if got := h.cp.Metrics().Inserted; got != 1 {
		t.Fatalf("Inserted = %d", got)
	}
}

func TestInsertRateScaleSlowsCPU(t *testing.T) {
	h := defaultHarness(t)
	h.cp.SetInsertRateScale(0.1) // 5us/insert -> 50us/insert
	h.send(0, tupleN(1), netproto.FlagSYN)
	h.send(1, tupleN(2), netproto.FlagSYN)
	// Both flush at 1ms: completions at 1.05ms and 1.10ms.
	h.cp.Advance(ms(1).Add(us(60)))
	if _, ok := h.sw.LookupConn(tupleN(1)); !ok {
		t.Fatal("first insertion late")
	}
	if _, ok := h.sw.LookupConn(tupleN(2)); ok {
		t.Fatal("second insertion ignored the brownout scale")
	}
	h.cp.Advance(ms(1).Add(us(110)))
	if _, ok := h.sw.LookupConn(tupleN(2)); !ok {
		t.Fatal("second insertion never completed")
	}
	// Restoring scale 1 restores full speed for the next batch.
	h.cp.SetInsertRateScale(1)
	h.send(ms(2), tupleN(3), netproto.FlagSYN)
	h.cp.Advance(ms(3).Add(us(10)))
	if _, ok := h.sw.LookupConn(tupleN(3)); !ok {
		t.Fatal("insertion slow after scale restored")
	}
}
