package ctrlplane

import (
	"sort"

	"repro/internal/cuckoo"
	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// filterSource exposes the hardware learning filter's flush schedule to
// the scheduler: its deadline is the next flush, and advancing it drains
// every flush due by then.
type filterSource struct{ cp *ControlPlane }

func (f filterSource) NextEventTime() (simtime.Time, bool) {
	return f.cp.sw.LearnFilter().NextFlush()
}

func (f filterSource) Advance(now simtime.Time) {
	for {
		at, ok := f.cp.sw.LearnFilter().NextFlush()
		if !ok || at.After(now) {
			return
		}
		f.cp.drainFilter(at)
	}
}

// insertSource exposes the rate-limited CPU insertion queue: its deadline
// is the head insertion's completion time, and advancing it installs every
// insertion due by then. The queue is FIFO in completion time (each drain
// appends behind cpuFreeAt), so head-order execution is time-order
// execution.
type insertSource struct{ cp *ControlPlane }

func (q insertSource) NextEventTime() (simtime.Time, bool) {
	if len(q.cp.queue) == 0 {
		return 0, false
	}
	return q.cp.queue[0].completeAt, true
}

func (q insertSource) Advance(now simtime.Time) {
	cp := q.cp
	for len(cp.queue) > 0 && !cp.queue[0].completeAt.After(now) {
		pi := cp.queue[0]
		cp.queue = cp.queue[1:]
		cp.install(pi)
	}
}

// Advance runs all control-plane work due at or before now: learning-filter
// drains, ConnTable insertions at the CPU's bounded rate, update state
// transitions, and (optionally) connection aging. It is a thin shim over
// the internal scheduler, which executes drains and insertions in strict
// time order. Callers must invoke it with non-decreasing times; drivers
// typically call it before processing each packet and whenever
// NextEventTime falls due.
func (cp *ControlPlane) Advance(now simtime.Time) {
	cp.rt.RunUntil(now)
	// Update states can cascade: finishing one update starts the next
	// queued one, which may itself be immediately executable when no
	// pending connections exist. Loop to a fixed point. Transitions need no
	// timer of their own — they become possible only when an insertion or
	// drain retires pending work, which the scheduler just ran.
	for cp.checkTransitions(now) {
	}
	cp.age(now)
}

// drainFilter reads one batch from the learning filter and schedules its
// insertions on the CPU timeline starting at flush time. With a configured
// MaxInsertQueue, events past the bound are shed (drop-newest): they cost
// no CPU time and the connections stay unpinned, re-resolving through
// VIPTable until a later packet re-offers them.
func (cp *ControlPlane) drainFilter(flushAt simtime.Time) {
	batch := cp.sw.LearnFilter().Drain()
	if len(batch) == 0 {
		return
	}
	room := len(batch)
	if bound := cp.cfg.MaxInsertQueue; bound > 0 {
		if room = bound - len(cp.queue); room < 0 {
			room = 0
		}
	}
	start := cp.cpuFreeAt
	if flushAt.After(start) {
		start = flushAt
	}
	per := cp.perInsert()
	accepted := 0
	for _, ev := range batch {
		if accepted >= room {
			cp.metrics.InsertSheds++
			cp.traceInsert(flushAt, dataplane.VIPOf(ev.Tuple), telemetry.InsertLearned,
				telemetry.InsertShed, ev.At, ev.Tuple, ev.Version)
			continue
		}
		accepted++
		cp.enqueue(pendingInsert{
			ev:         ev,
			completeAt: start.Add(per * simtime.Duration(accepted)),
		})
	}
	cp.cpuFreeAt = start.Add(per * simtime.Duration(accepted))
	if len(cp.queue) > cp.metrics.MaxInsertQueue {
		cp.metrics.MaxInsertQueue = len(cp.queue)
	}
}

// enqueue inserts pi into the CPU queue at its completion-time position.
// Drained batches land behind cpuFreeAt and append at the tail; retried
// insertions carry backoff deadlines that may interleave with later
// drains, so insertion keeps the head-pop execution order correct.
func (cp *ControlPlane) enqueue(pi pendingInsert) {
	i := sort.Search(len(cp.queue), func(i int) bool {
		return cp.queue[i].completeAt.After(pi.completeAt)
	})
	cp.queue = append(cp.queue, pendingInsert{})
	copy(cp.queue[i+1:], cp.queue[i:])
	cp.queue[i] = pi
}

// requeueWithBackoff re-schedules a full-table insertion: attempt n waits
// InsertRetryBackoff<<n (capped at InsertRetryMax) before trying again,
// giving aging, connection ends or a lifted SRAM squeeze time to free
// slots.
func (cp *ControlPlane) requeueWithBackoff(pi pendingInsert) {
	base := cp.cfg.InsertRetryBackoff
	if base <= 0 {
		base = simtime.Duration(simtime.Millisecond)
	}
	max := cp.cfg.InsertRetryMax
	if max <= 0 {
		max = simtime.Duration(50 * simtime.Millisecond)
	}
	d := base << uint(pi.retries)
	if d > max || d <= 0 {
		d = max
	}
	pi.retries++
	pi.completeAt = pi.completeAt.Add(d)
	cp.metrics.InsertRetries++
	cp.traceInsert(pi.completeAt, dataplane.VIPOf(pi.ev.Tuple), telemetry.InsertLearned,
		telemetry.InsertRetry, pi.ev.At, pi.ev.Tuple, pi.ev.Version)
	cp.enqueue(pi)
}

// traceInsert emits one OnInsert event (no-op when untraced).
func (cp *ControlPlane) traceInsert(now simtime.Time, vip dataplane.VIP,
	kind telemetry.InsertKind, outcome telemetry.InsertOutcome, arrivedAt simtime.Time,
	tuple netproto.FiveTuple, ver uint32) {
	if cp.tracer == nil {
		return
	}
	cp.tracer.OnInsert(telemetry.InsertEvent{
		Now:        now,
		Pipe:       cp.pipe,
		VIP:        cp.sw.VIPTelemetry(vip),
		Kind:       kind,
		Outcome:    outcome,
		ArrivedAt:  arrivedAt,
		QueueDepth: len(cp.queue),
		Tuple:      tuple,
		Version:    ver,
	})
}

// install performs one ConnTable insertion (CPU side).
func (cp *ControlPlane) install(pi pendingInsert) {
	ev := pi.ev
	vip := dataplane.VIPOf(ev.Tuple)
	if sh, seen := cp.conns[ev.KeyHash]; seen && sh.installed {
		cp.metrics.DuplicateLearns++
		cp.traceInsert(pi.completeAt, vip, telemetry.InsertLearned, telemetry.InsertDuplicate, ev.At, ev.Tuple, ev.Version)
		return
	}
	vc, ok := cp.vips[vip]
	if !ok {
		return // VIP withdrawn while the event sat in the queue
	}
	if _, ok := vc.pools[ev.Version]; !ok {
		// The version retired while the event was queued (can only happen
		// for unpinned conns after exhaustion-forced retirement): pin to
		// the current version instead.
		ev.Version = vc.curVer
	}
	err := cp.sw.InsertConnAt(pi.completeAt, ev.Tuple, ev.Version)
	switch {
	case err == nil:
		sh := &connShadow{
			tuple:     ev.Tuple,
			vip:       vip,
			version:   ev.Version,
			installed: true,
			lastSeen:  pi.completeAt,
		}
		cp.conns[ev.KeyHash] = sh
		vc.connsPerVer[ev.Version]++
		cp.metrics.Inserted++
		cp.metrics.InsertDelaySum += pi.completeAt.Sub(ev.At)
		cp.scheduleAging(ev.KeyHash, pi.completeAt)
		cp.noteConnInsert(sh)
		cp.traceInsert(pi.completeAt, vip, telemetry.InsertLearned, telemetry.InsertOK, ev.At, ev.Tuple, ev.Version)
	case err == cuckoo.ErrDuplicate:
		cp.metrics.DuplicateLearns++
		cp.traceInsert(pi.completeAt, vip, telemetry.InsertLearned, telemetry.InsertDuplicate, ev.At, ev.Tuple, ev.Version)
	case err == cuckoo.ErrTableFull:
		if pi.retries < cp.cfg.MaxInsertRetries {
			if pi.imported && cp.tracer != nil {
				cp.tracer.OnHandoff(telemetry.HandoffEvent{
					Now: pi.completeAt, Donor: -1, Receiver: cp.pipe,
					Step: telemetry.HandoffRetry, Entries: 1,
				})
			}
			pi.ev = ev // keep the possibly-repinned version
			cp.requeueWithBackoff(pi)
			return
		}
		// §7: ConnTable acts as a cache; overflow connections stay
		// unpinned (each packet re-resolves through VIPTable) unless a
		// software tier picks them up through OnOverflow.
		cp.metrics.Overflows++
		cp.traceInsert(pi.completeAt, vip, telemetry.InsertLearned, telemetry.InsertOverflow, ev.At, ev.Tuple, ev.Version)
		if cp.cfg.OnOverflow != nil {
			if dip, derr := cp.sw.SelectDIP(vip, ev.Version, ev.Tuple); derr == nil {
				cp.cfg.OnOverflow(pi.completeAt, ev.Tuple, dip)
			}
		}
	default:
		panic("ctrlplane: InsertConn: " + err.Error())
	}
}

// NextEventTime returns the earliest time at which Advance would perform
// work, and whether any work is scheduled. It deliberately excludes aging
// deadlines — aging is best-effort housekeeping piggybacked on Advance,
// and surfacing it here would change every simulation's event sequence.
// Wall-clock drivers combine this with NextAging instead.
func (cp *ControlPlane) NextEventTime() (simtime.Time, bool) {
	return cp.rt.Next()
}

// NextAging returns the next instant the aging wheel has timers due, if
// aging is enabled and any connection is scheduled. The wall-clock runtime
// uses it to wake up for idle-connection expiry with no packets flowing.
func (cp *ControlPlane) NextAging() (simtime.Time, bool) {
	if cp.wheel == nil {
		return 0, false
	}
	return cp.wheel.NextFire()
}

// NextTransition returns the earliest instant an update state transition
// is already eligible to run (checkTransitions would make progress). On a
// quiescent switch an update reaches its watermark with no insertion or
// drain left to piggyback on, so runtime drivers must wake up for it
// explicitly — like NextAging, it is merged into the switch runtime's
// deadline and kept out of NextEventTime's simulation semantics.
func (cp *ControlPlane) NextTransition() (simtime.Time, bool) {
	var best simtime.Time
	found := false
	consider := func(t simtime.Time) {
		if !found || t.Before(best) {
			best, found = t, true
		}
	}
	for _, vc := range cp.vips {
		switch vc.state {
		case updRecording:
			if cp.noPendingBefore(vc.treq) {
				consider(vc.treq)
			}
		case updTransition:
			if cp.noPendingBefore(vc.texec) {
				consider(vc.texec)
			}
			// updIdle with queued work is deliberately absent: a queued
			// update that could start is started by RequestUpdate or the
			// finishUpdate cascade; one held by version exhaustion only
			// unblocks on EndConnection, and reporting it as due would
			// spin the runtime driver.
		}
	}
	return best, found
}

// HandleResult performs the CPU side of a packet's outcome: arbitrating
// redirected SYNs and tracking liveness. It returns the authoritative
// forwarding decision (for redirects, the decision after software
// resolution and re-injection).
func (cp *ControlPlane) HandleResult(now simtime.Time, pkt *netproto.Packet, res dataplane.Result) dataplane.Result {
	cp.HandleResultInto(now, pkt, &res)
	return res
}

// HandleResultInto is HandleResult writing the authoritative decision back
// through *res. The batch path uses it to finish each packet in its result
// slot without copying the Result through the call chain; redirects — rare
// by construction — still take the value-based resolvers.
func (cp *ControlPlane) HandleResultInto(now simtime.Time, pkt *netproto.Packet, res *dataplane.Result) {
	cp.HandleTupleResultInto(now, pkt.Tuple, res)
}

// HandleTupleResultInto is the currency-neutral core of HandleResultInto:
// the CPU side only ever needs the packet's five-tuple, so the frame path
// calls it directly without materializing a Packet struct.
func (cp *ControlPlane) HandleTupleResultInto(now simtime.Time, tuple netproto.FiveTuple, res *dataplane.Result) {
	switch res.Verdict {
	case dataplane.VerdictRedirectSYNConn:
		*res = cp.resolveConnSYN(now, tuple, *res)
	case dataplane.VerdictRedirectSYNTransit:
		*res = cp.resolveTransitSYN(now, tuple, *res)
	case dataplane.VerdictForward:
		// lastSeen only feeds the aging wheel; with aging disabled the
		// shadow lookup would be pure per-packet overhead on the hot path.
		if cp.wheel != nil {
			if sh, ok := cp.conns[res.KeyHash]; ok {
				sh.lastSeen = now
			}
		}
	}
}

// resolveConnSYN arbitrates a SYN that hit an existing ConnTable entry: a
// digest false positive (relocate the old entry, install this connection's
// own entry, and re-inject) or a retransmitted SYN of a known connection
// (forward as-is).
func (cp *ControlPlane) resolveConnSYN(now simtime.Time, tuple netproto.FiveTuple, res dataplane.Result) dataplane.Result {
	fixed, err := cp.sw.ResolveSYNCollisionAt(now, tuple, res)
	if err != nil {
		// Could not separate the keys (table pathologically full): fall
		// back to forwarding by the matched entry.
		res.Verdict = dataplane.VerdictForward
		return res
	}
	if !fixed {
		cp.metrics.RetransmittedSYNs++
		if sh, ok := cp.conns[res.KeyHash]; ok {
			sh.lastSeen = now
		}
		res.Verdict = dataplane.VerdictForward
		return res
	}
	// Digest false positive: the aliasing entry has been relocated. The
	// software installs this connection's own entry immediately (it has
	// all the state; no need to wait for a learn cycle), then the SYN is
	// re-injected and hits the right entry.
	cp.metrics.DigestFPsResolved++
	cp.chargeCPU(now)
	vip := dataplane.VIPOf(tuple)
	vc, ok := cp.vips[vip]
	if !ok {
		res.Verdict = dataplane.VerdictForward
		return res
	}
	// If the connection was already pending (learned, awaiting insertion),
	// keep the version its first packet used; otherwise it is new and
	// takes the current version.
	ver := vc.curVer
	if pv, pending := cp.pendingVersion(res.KeyHash); pending {
		ver = pv
	}
	return cp.installInline(now, tuple, res, vc, ver, telemetry.InsertDigestFP)
}

// pendingVersion returns the learned-but-not-yet-installed version for a
// connection, consulting the hardware learning filter and the CPU queue.
func (cp *ControlPlane) pendingVersion(keyHash uint64) (uint32, bool) {
	if ev, ok := cp.sw.LearnFilter().Get(keyHash); ok {
		return ev.Version, true
	}
	for i := range cp.queue {
		if cp.queue[i].ev.KeyHash == keyHash {
			return cp.queue[i].ev.Version, true
		}
	}
	return 0, false
}

// installInline inserts tuple->ver on the CPU's fast path (redirect
// handling) and returns the forwarding result for the re-injected packet.
// kind records which arbitration (digest or bloom false positive) put the
// insertion on the fast path.
func (cp *ControlPlane) installInline(now simtime.Time, tuple netproto.FiveTuple, res dataplane.Result, vc *vipCtl, ver uint32, kind telemetry.InsertKind) dataplane.Result {
	dip, err := cp.sw.SelectDIP(vc.vip, ver, tuple)
	if err != nil {
		res.Verdict = dataplane.VerdictForward
		return res
	}
	if !dip.IsValid() {
		// The resolved version's pool is empty: there is no backend to pin
		// the connection to — drop instead of installing an unroutable entry.
		res.Verdict = dataplane.VerdictNoBackend
		return res
	}
	switch insErr := cp.sw.InsertConnAt(now, tuple, ver); insErr {
	case nil:
		sh := &connShadow{
			tuple: tuple, vip: vc.vip, version: ver, installed: true, lastSeen: now,
		}
		cp.conns[res.KeyHash] = sh
		vc.connsPerVer[ver]++
		cp.metrics.Inserted++
		cp.scheduleAging(res.KeyHash, now)
		cp.noteConnInsert(sh)
		cp.traceInsert(now, vc.vip, kind, telemetry.InsertOK, now, tuple, ver)
	case cuckoo.ErrTableFull:
		cp.metrics.Overflows++
		cp.traceInsert(now, vc.vip, kind, telemetry.InsertOverflow, now, tuple, ver)
	case cuckoo.ErrDuplicate:
		cp.metrics.DuplicateLearns++
		cp.traceInsert(now, vc.vip, kind, telemetry.InsertDuplicate, now, tuple, ver)
	}
	res.Verdict = dataplane.VerdictForward
	res.Version = ver
	res.DIP = dip
	return res
}

// resolveTransitSYN arbitrates a SYN that matched the TransitTable during
// step 2. The software's shadow tells the truth: a known pending
// connection's retransmitted SYN keeps the old version; an unknown
// connection is a bloom false positive and must use the current version.
func (cp *ControlPlane) resolveTransitSYN(now simtime.Time, tuple netproto.FiveTuple, res dataplane.Result) dataplane.Result {
	vip := dataplane.VIPOf(tuple)
	vc, ok := cp.vips[vip]
	if !ok {
		return res
	}
	if sh, known := cp.conns[res.KeyHash]; known {
		// Installed connection whose SYN was retransmitted: the old
		// version the bloom filter chose is correct.
		cp.metrics.RetransmittedSYNs++
		sh.lastSeen = now
		res.Verdict = dataplane.VerdictForward
		return res
	}
	if ver, pending := cp.pendingVersion(res.KeyHash); pending {
		// Genuinely pending connection: it really is in the TransitTable;
		// keep the version its first packet used.
		cp.metrics.RetransmittedSYNs++
		res.Verdict = dataplane.VerdictForward
		res.Version = ver
		if dip, err := cp.sw.SelectDIP(vip, ver, tuple); err == nil {
			res.DIP = dip
		}
		if !res.DIP.IsValid() {
			res.Verdict = dataplane.VerdictNoBackend
		}
		return res
	}
	// False positive: this is a new connection; pin it to the current
	// version immediately (software-inserted, jumping the learn queue).
	cp.metrics.BloomFPsResolved++
	cp.chargeCPU(now)
	res.TransitHit = false
	return cp.installInline(now, tuple, res, vc, vc.curVer, telemetry.InsertBloomFP)
}

// chargeCPU accounts one out-of-band insertion's worth of CPU time.
func (cp *ControlPlane) chargeCPU(now simtime.Time) {
	if now.After(cp.cpuFreeAt) {
		cp.cpuFreeAt = now
	}
	cp.cpuFreeAt = cp.cpuFreeAt.Add(cp.perInsert())
}

// EndConnection tells the control plane that a connection terminated (FIN
// observed or simulator-driven flow end): its entry is deleted and its
// pool version's refcount drops, possibly retiring the version.
func (cp *ControlPlane) EndConnection(now simtime.Time, tuple netproto.FiveTuple) {
	kh := cp.sw.KeyHash(tuple)
	sh, ok := cp.conns[kh]
	if !ok {
		return
	}
	cp.releaseShadow(now, kh, sh)
	cp.metrics.ConnsEnded++
}

func (cp *ControlPlane) releaseShadow(now simtime.Time, kh uint64, sh *connShadow) {
	if cp.wheel != nil {
		cp.wheel.Cancel(kh)
	}
	if sh.installed {
		cp.sw.DeleteConnAt(now, sh.tuple)
		cp.noteConnDelete(sh)
		if vc, ok := cp.vips[sh.vip]; ok {
			vc.connsPerVer[sh.version]--
			cp.retireIfIdle(vc, sh.version)
		}
	}
	delete(cp.conns, kh)
}

// scheduleAging arms a connection's idle timer.
func (cp *ControlPlane) scheduleAging(kh uint64, lastSeen simtime.Time) {
	if cp.wheel != nil {
		cp.wheel.Schedule(kh, lastSeen.Add(cp.cfg.AgingTimeout))
	}
}

// age ticks the timing wheel and expires idle connections. Timers are
// lazy: a fired key whose connection saw traffic since is rescheduled
// from its true lastSeen instead of being released.
func (cp *ControlPlane) age(now simtime.Time) {
	if cp.wheel == nil {
		return
	}
	for _, kh := range cp.wheel.Advance(now) {
		sh, ok := cp.conns[kh]
		if !ok {
			continue
		}
		if now.Sub(sh.lastSeen) >= cp.cfg.AgingTimeout {
			cp.releaseShadow(now, kh, sh)
			cp.metrics.AgedOut++
			continue
		}
		cp.wheel.Schedule(kh, sh.lastSeen.Add(cp.cfg.AgingTimeout))
	}
}
