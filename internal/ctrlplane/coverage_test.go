package ctrlplane

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

// TestTransitSYNArbitrationDeterministic forces the two resolveTransitSYN
// paths deterministically by driving the data plane's update state
// directly: (a) a pending connection's retransmitted SYN keeps its old
// version; (b) a brand-new connection falsely hitting the bloom filter is
// pinned to the current version.
func TestTransitSYNArbitrationDeterministic(t *testing.T) {
	dcfg := dataplane.DefaultConfig(10000)
	dcfg.TransitTableBytes = 8 // saturates quickly -> guaranteed FPs
	dcfg.TransitTableHashes = 1
	h := newHarness(t, dcfg, DefaultConfig())
	vip := testVIP()
	if err := h.cp.AddVIP(0, vip, poolN(8), 0); err != nil {
		t.Fatal(err)
	}
	h.sw.WritePool(vip, 1, poolN(7))
	h.sw.SetRecording(vip, true)
	// Pending connections recorded into the bloom filter; their learn
	// events sit in the filter (not yet drained: no Advance).
	pendingRes := map[int]dataplane.Result{}
	for i := 0; i < 300; i++ {
		pkt := &netproto.Packet{Tuple: tupleN(i), TCPFlags: netproto.FlagSYN}
		pendingRes[i] = h.sw.Process(simtime.Time(i), pkt)
	}
	// Swap to v1 directly on the hardware (the cp's own update machinery
	// is bypassed so the window stays open indefinitely).
	if err := h.sw.BeginTransition(vip, 1); err != nil {
		t.Fatal(err)
	}
	// (a) Retransmitted SYN of a pending connection: stays on version 0.
	retrans := &netproto.Packet{Tuple: tupleN(5), TCPFlags: netproto.FlagSYN}
	res := h.sw.Process(simtime.Time(1000), retrans)
	if res.Verdict != dataplane.VerdictRedirectSYNTransit {
		t.Fatalf("retransmitted SYN verdict = %v (bloom should hit)", res.Verdict)
	}
	res = h.cp.HandleResult(simtime.Time(1000), retrans, res)
	if res.Verdict != dataplane.VerdictForward || res.Version != 0 {
		t.Fatalf("retransmitted pending SYN resolved to version %d", res.Version)
	}
	if res.DIP != pendingRes[5].DIP {
		t.Fatal("retransmitted SYN changed DIP")
	}
	if h.cp.Metrics().RetransmittedSYNs == 0 {
		t.Fatal("retransmission not classified")
	}
	// (b) Brand-new connections: the saturated 8B filter false-positives;
	// arbitration must pin them to the CURRENT version (0 in cp's view,
	// since the hardware swap bypassed cp) with an installed entry.
	fps := 0
	for i := 1000; i < 1100; i++ {
		pkt := &netproto.Packet{Tuple: tupleN(i), TCPFlags: netproto.FlagSYN}
		r := h.sw.Process(simtime.Time(2000+i), pkt)
		if r.Verdict != dataplane.VerdictRedirectSYNTransit {
			continue
		}
		r = h.cp.HandleResult(simtime.Time(2000+i), pkt, r)
		if r.Verdict != dataplane.VerdictForward {
			t.Fatalf("FP SYN unresolved: %v", r.Verdict)
		}
		if _, ok := h.sw.LookupConn(tupleN(i)); !ok {
			t.Fatal("FP-arbitrated connection not installed")
		}
		fps++
	}
	if fps == 0 {
		t.Fatal("no false positives with a saturated 8-byte filter")
	}
	if h.cp.Metrics().BloomFPsResolved == 0 {
		t.Fatal("FP resolutions not counted")
	}
}

func TestAccessorsAndPanics(t *testing.T) {
	h := defaultHarness(t)
	if h.cp.Switch() != h.sw {
		t.Fatal("Switch accessor")
	}
	if h.cp.VersionsAllocated(testVIP()) != 1 {
		t.Fatalf("VersionsAllocated = %d", h.cp.VersionsAllocated(testVIP()))
	}
	if h.cp.MaxActiveVersions(testVIP()) != 0 {
		// maxActive only grows when updates mint pools.
		t.Log("maxActive starts at 0 before first update")
	}
	if h.cp.VersionsAllocated(dataplane.VIP{}) != 0 || h.cp.MaxActiveVersions(dataplane.VIP{}) != 0 {
		t.Fatal("unknown VIP accessors should be 0")
	}
	if (Metrics{}).MeanInsertDelay() != 0 {
		t.Fatal("MeanInsertDelay on empty metrics")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero InsertRate did not panic")
		}
	}()
	New(h.sw, Config{})
}

func TestPendingVersionFromCPUQueue(t *testing.T) {
	// Events drained from the filter into the CPU queue must still be
	// findable by pendingVersion (the SYN-arbitration watermark).
	h := defaultHarness(t)
	tup := tupleN(1)
	h.send(0, tup, netproto.FlagSYN)
	// Flush the filter into the queue but do not complete the insert:
	// flush due at 1ms, insert completes 5us later.
	flushAt := simtime.Time(simtime.Millisecond)
	h.cp.Advance(flushAt)
	if h.cp.TrackedConns() != 0 {
		t.Skip("insert already completed; queue window missed")
	}
	if v, ok := h.cp.pendingVersion(h.sw.KeyHash(tup)); !ok || v != 0 {
		t.Fatalf("pendingVersion from queue = (%d,%v)", v, ok)
	}
}

func TestInstallSkipsWithdrawnVIP(t *testing.T) {
	h := defaultHarness(t)
	h.send(0, tupleN(1), netproto.FlagSYN)
	// Withdraw the VIP while the learn event is in flight.
	if err := h.cp.RemoveVIP(simtime.Time(10), testVIP()); err != nil {
		t.Fatal(err)
	}
	h.cp.Advance(ms(10)) // must not panic; event dropped
	if h.cp.Metrics().Inserted != 0 {
		t.Fatal("event for withdrawn VIP installed")
	}
}
