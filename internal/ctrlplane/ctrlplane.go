// Package ctrlplane implements the SilkRoad switch software: the ~1000
// lines of C in the paper's prototype that drain the learning filter, run
// cuckoo insertions into ConnTable at a bounded rate, execute the 3-step
// per-connection-consistent DIP pool update (Figure 9), manage DIP pool
// versions (allocation from a ring buffer, version reuse, retirement), and
// arbitrate the SYN packets the ASIC redirects on suspected digest or
// bloom false positives.
//
// The control plane is a deterministic state machine over virtual time:
// callers advance it with Advance(now) and feed it packet outcomes through
// HandleResult. No goroutines, no wall clock — every experiment replays
// identically.
package ctrlplane

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataplane"
	"repro/internal/learnfilter"
	"repro/internal/netproto"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/timewheel"
)

// Mode selects the update strategy.
type Mode uint8

// Update strategies.
const (
	// ModeFullPCC runs the 3-step update with the TransitTable (SilkRoad).
	ModeFullPCC Mode = iota
	// ModeNoTransit swaps the VIPTable version as soon as an update is
	// requested — the "SilkRoad without TransitTable" ablation whose
	// pending connections can violate PCC (Figure 16).
	ModeNoTransit
)

// Config parameterizes the switch software.
type Config struct {
	// InsertRate is sustained ConnTable insertions per second of virtual
	// time (paper §5.2: ~200K/s on the embedded CPU).
	InsertRate float64
	// RedirectLatency models the ASIC->CPU->ASIC round trip for redirected
	// SYNs (a few milliseconds in the paper). Stats only; arbitration is
	// resolved in-line.
	RedirectLatency simtime.Duration
	// AgingTimeout expires idle connections; zero disables aging (the
	// driver then ends connections explicitly). Aging runs on a hashed
	// timing wheel in the conntrack style: timers are lazy (not touched
	// per packet) and liveness is re-checked when they fire.
	AgingTimeout simtime.Duration
	// AgingSweepEvery bounds how stale the wheel may get between packet
	// events (it is ticked on every Advance anyway); retained for
	// configuration compatibility.
	AgingSweepEvery simtime.Duration
	Mode            Mode
	// DisableVersionReuse turns off §4.2's version reuse (the Figure 15
	// ablation): every update allocates a fresh version number.
	DisableVersionReuse bool
	// OnOverflow, if set, is invoked when a connection cannot be installed
	// because ConnTable is full (§7's "ConnTable as a cache"): the callback
	// receives the connection and the DIP its packets are currently
	// hashed to, so a software tier (switch CPU or SLB) can pin it.
	OnOverflow func(now simtime.Time, tuple netproto.FiveTuple, dip dataplane.DIP)
	// MaxInsertQueue is a hard bound on the CPU insertion queue. Learn
	// events that would grow the queue past the bound are shed — dropped
	// without consuming CPU time; the connection stays unpinned and a later
	// packet re-offers it through the learning filter. Zero = unbounded
	// (the pre-bound behaviour; Metrics.MaxInsertQueue then only observes).
	MaxInsertQueue int
	// MaxInsertRetries makes insertions that hit cuckoo.ErrTableFull
	// re-queue with capped exponential backoff instead of failing
	// terminally: attempt n waits InsertRetryBackoff<<n, capped at
	// InsertRetryMax. After MaxInsertRetries failed attempts the insertion
	// falls through to the overflow path (OnOverflow, Metrics.Overflows).
	// Zero disables retries.
	MaxInsertRetries int
	// InsertRetryBackoff is the base retry delay (default 1ms when retries
	// are enabled and this is zero).
	InsertRetryBackoff simtime.Duration
	// InsertRetryMax caps the exponential backoff (default 50ms when zero).
	InsertRetryMax simtime.Duration
}

// DefaultConfig returns the paper's control-plane operating point.
func DefaultConfig() Config {
	return Config{
		InsertRate:      200_000,
		RedirectLatency: simtime.Duration(2 * simtime.Millisecond),
		AgingTimeout:    0,
		AgingSweepEvery: simtime.Duration(30 * simtime.Second),
		Mode:            ModeFullPCC,
	}
}

// Metrics are the control plane's counters.
type Metrics struct {
	Inserted            uint64
	DuplicateLearns     uint64
	Overflows           uint64 // ConnTable full: connection left unpinned
	DigestFPsResolved   uint64
	BloomFPsResolved    uint64
	RetransmittedSYNs   uint64
	UpdatesRequested    uint64
	UpdatesCompleted    uint64
	UpdatesCoalesced    uint64 // request matched the pool already in force
	VersionAllocs       uint64
	VersionReuses       uint64
	VersionExhaustions  uint64
	ConnsEnded          uint64
	AgedOut             uint64
	ResilientFailovers  uint64
	ResilientRecoveries uint64
	InsertRetries       uint64           // full-table insertions re-queued with backoff
	InsertSheds         uint64           // learn events dropped at the queue bound
	InsertDelaySum      simtime.Duration // sum over inserts of (install - arrival)
	MaxInsertQueue      int
}

// Add accumulates o into m — the per-pipe to chip-level aggregation used by
// the multi-pipe engine. Sums are added; MaxInsertQueue takes the maximum,
// since each pipe has its own insertion CPU.
func (m *Metrics) Add(o Metrics) {
	m.Inserted += o.Inserted
	m.DuplicateLearns += o.DuplicateLearns
	m.Overflows += o.Overflows
	m.DigestFPsResolved += o.DigestFPsResolved
	m.BloomFPsResolved += o.BloomFPsResolved
	m.RetransmittedSYNs += o.RetransmittedSYNs
	m.UpdatesRequested += o.UpdatesRequested
	m.UpdatesCompleted += o.UpdatesCompleted
	m.UpdatesCoalesced += o.UpdatesCoalesced
	m.VersionAllocs += o.VersionAllocs
	m.VersionReuses += o.VersionReuses
	m.VersionExhaustions += o.VersionExhaustions
	m.ConnsEnded += o.ConnsEnded
	m.AgedOut += o.AgedOut
	m.ResilientFailovers += o.ResilientFailovers
	m.ResilientRecoveries += o.ResilientRecoveries
	m.InsertRetries += o.InsertRetries
	m.InsertSheds += o.InsertSheds
	m.InsertDelaySum += o.InsertDelaySum
	if o.MaxInsertQueue > m.MaxInsertQueue {
		m.MaxInsertQueue = o.MaxInsertQueue
	}
}

// MeanInsertDelay returns the average arrival-to-install latency.
func (m Metrics) MeanInsertDelay() simtime.Duration {
	if m.Inserted == 0 {
		return 0
	}
	return m.InsertDelaySum / simtime.Duration(m.Inserted)
}

type connShadow struct {
	tuple     netproto.FiveTuple
	vip       dataplane.VIP
	version   uint32
	installed bool
	lastSeen  simtime.Time
}

type pendingInsert struct {
	ev         learnfilter.Event
	completeAt simtime.Time
	retries    int  // full-table attempts already made (backoff doubles per retry)
	imported   bool // handoff import, not a learned event (telemetry labeling)
}

type updState uint8

const (
	updIdle updState = iota
	updRecording
	updTransition
)

type updateReq struct {
	at   simtime.Time
	pool []dataplane.DIP
}

type vipCtl struct {
	vip     dataplane.VIP
	curVer  uint32
	prevVer uint32 // old version of the in-flight update
	// freeVers is the ring buffer of version numbers available for new
	// pools (§4.2).
	freeVers      []uint32
	pools         map[uint32][]dataplane.DIP
	connsPerVer   map[uint32]int
	deadSlots     map[uint32]map[int]bool // version -> indices whose DIP left service
	state         updState
	treq, texec   simtime.Time
	pendingNewVer uint32 // version chosen at t_req, swapped in at t_exec
	queued        []updateReq
	// metrics for Figure 15
	versionsAllocated int
	maxActive         int

	// resilient is non-nil when the VIP opted into §7's resilient-hashing
	// failure handling instead of version churn.
	resilient *resilientState
}

// ControlPlane drives one SilkRoad switch.
type ControlPlane struct {
	sw  *dataplane.Switch
	cfg Config

	// rt sequences the control plane's timed work — learning-filter drains
	// and rate-limited ConnTable insertions — as scheduler sources, so both
	// the legacy Advance/NextEventTime shims and the wall-clock runtime
	// execute it through one event loop.
	rt *sched.Scheduler

	cpuFreeAt simtime.Time
	queue     []pendingInsert

	// insertScale (fault injection) multiplies the configured InsertRate:
	// 0 or 1 = nominal speed, 0.25 = a browned-out CPU at quarter rate.
	insertScale float64

	conns map[uint64]*connShadow // keyHash -> shadow
	vips  map[dataplane.VIP]*vipCtl

	activeUpdates int
	wheel         *timewheel.Wheel // aging timers (nil when aging disabled)

	// tracer is shared with the data plane (read from it at construction):
	// both planes report into one telemetry sink, labelled with one pipe.
	tracer telemetry.Tracer
	pipe   int

	// exports are the open conn-table export sessions fed by the install
	// and release paths; handoffSeq is the fallback consistency cursor
	// when no flight recorder is attached.
	exports    []*ExportSession
	handoffSeq uint64

	metrics Metrics
}

// New creates a control plane for sw.
func New(sw *dataplane.Switch, cfg Config) *ControlPlane {
	if cfg.InsertRate <= 0 {
		panic("ctrlplane: InsertRate must be positive")
	}
	cp := &ControlPlane{
		sw:     sw,
		cfg:    cfg,
		rt:     sched.New(),
		conns:  make(map[uint64]*connShadow),
		vips:   make(map[dataplane.VIP]*vipCtl),
		tracer: sw.Tracer(),
		pipe:   sw.PipeIndex(),
	}
	// Registration order decides same-instant ties: the filter drains
	// before due insertions execute, matching the hardware (a flush only
	// queues work; the CPU picks it up afterwards).
	cp.rt.AddSource(filterSource{cp})
	cp.rt.AddSource(insertSource{cp})
	if cfg.AgingTimeout > 0 {
		gran := cfg.AgingTimeout / 8
		if gran < simtime.Duration(100*simtime.Millisecond) {
			gran = simtime.Duration(100 * simtime.Millisecond)
		}
		cp.wheel = timewheel.New(gran, 64)
	}
	return cp
}

// Switch returns the managed data plane.
func (cp *ControlPlane) Switch() *dataplane.Switch { return cp.sw }

// Metrics returns a copy of the counters.
func (cp *ControlPlane) Metrics() Metrics { return cp.metrics }

// TrackedConns returns the number of connections in the software shadow.
func (cp *ControlPlane) TrackedConns() int { return len(cp.conns) }

// perInsert returns the CPU time of one ConnTable insertion.
func (cp *ControlPlane) perInsert() simtime.Duration {
	rate := cp.cfg.InsertRate
	if cp.insertScale > 0 {
		rate *= cp.insertScale
	}
	return simtime.Duration(float64(simtime.Second) / rate)
}

// SetInsertRateScale slows the insertion CPU to scale times its configured
// rate (0 < scale < 1 models a brownout; scale >= 1 or 0 restores nominal
// speed). Applies to insertions scheduled from now on; already-queued
// insertions keep their deadlines. Fault-injection hook.
func (cp *ControlPlane) SetInsertRateScale(scale float64) {
	if scale < 0 {
		scale = 0
	}
	cp.insertScale = scale
}

// StallCPU freezes the insertion CPU for d starting at now: every queued
// insertion not yet executed is pushed back by d, and the CPU accepts no
// new work until the stall ends. The uniform shift keeps the queue sorted
// by completion time. Fault-injection hook.
func (cp *ControlPlane) StallCPU(now simtime.Time, d simtime.Duration) {
	if d <= 0 {
		return
	}
	for i := range cp.queue {
		if cp.queue[i].completeAt.After(now) {
			cp.queue[i].completeAt = cp.queue[i].completeAt.Add(d)
		}
	}
	if cp.cpuFreeAt.Before(now) {
		cp.cpuFreeAt = now
	}
	cp.cpuFreeAt = cp.cpuFreeAt.Add(d)
}

// QueueDepth returns the current CPU insertion queue length.
func (cp *ControlPlane) QueueDepth() int { return len(cp.queue) }

// ActiveUpdates returns the number of VIPs with a 3-step pool update in
// flight.
func (cp *ControlPlane) ActiveUpdates() int { return cp.activeUpdates }

// QueuedUpdates returns the number of update requests waiting behind
// in-flight updates across every VIP.
func (cp *ControlPlane) QueuedUpdates() int {
	n := 0
	for _, vc := range cp.vips {
		n += len(vc.queued)
	}
	return n
}

// PendingWork sums everything the switch still has to absorb before it is
// safe to move a rolling update to the next switch: undrained learn
// events, queued CPU insertions, and in-flight or queued pool updates.
// Zero means the switch is drained in the §4.2 pending-insert sense.
func (cp *ControlPlane) PendingWork() int {
	n := len(cp.queue) + cp.activeUpdates + cp.QueuedUpdates()
	if lf := cp.sw.LearnFilter(); lf != nil {
		n += lf.Len()
	}
	return n
}

// AddVIP announces a VIP with its initial DIP pool. meterBytesPerSec > 0
// attaches a hardware meter (0 disables metering for this VIP).
func (cp *ControlPlane) AddVIP(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP, meterBytesPerSec float64) error {
	if len(pool) == 0 {
		return errors.New("ctrlplane: empty initial pool")
	}
	if _, dup := cp.vips[vip]; dup {
		return dataplane.ErrVIPExists
	}
	if err := cp.sw.InstallVIP(vip, 0, pool, meterBytesPerSec); err != nil {
		return err
	}
	maxVer := uint32(1) << uint(cp.sw.Config().VersionBits)
	free := make([]uint32, 0, maxVer-1)
	for v := uint32(1); v < maxVer; v++ {
		free = append(free, v)
	}
	cp.vips[vip] = &vipCtl{
		vip:               vip,
		curVer:            0,
		freeVers:          free,
		pools:             map[uint32][]dataplane.DIP{0: clone(pool)},
		connsPerVer:       map[uint32]int{},
		deadSlots:         map[uint32]map[int]bool{},
		versionsAllocated: 1,
	}
	return nil
}

// RemoveVIP withdraws a VIP entirely, dropping its connections.
func (cp *ControlPlane) RemoveVIP(now simtime.Time, vip dataplane.VIP) error {
	vc, ok := cp.vips[vip]
	if !ok {
		return dataplane.ErrUnknownVIP
	}
	if vc.state != updIdle {
		cp.finishUpdate(now, vc)
	}
	for kh, sh := range cp.conns {
		if sh.vip == vip {
			if sh.installed {
				cp.sw.DeleteConn(sh.tuple)
				cp.noteConnDelete(sh)
			}
			delete(cp.conns, kh)
		}
	}
	delete(cp.vips, vip)
	return cp.sw.RemoveVIP(vip)
}

// CurrentPool returns the pool new connections of vip map to.
func (cp *ControlPlane) CurrentPool(vip dataplane.VIP) ([]dataplane.DIP, error) {
	vc, ok := cp.vips[vip]
	if !ok {
		return nil, dataplane.ErrUnknownVIP
	}
	return clone(vc.pools[vc.curVer]), nil
}

// TargetPool returns the pool vip's newest requested state maps to — the
// tail of the update queue, the in-flight update's target, or the current
// pool when the VIP is idle. The multi-pipe engine snapshots it before a
// fanned-out update so a mid-fanout failure can be rolled back to exactly
// the state each pipe was heading for.
func (cp *ControlPlane) TargetPool(vip dataplane.VIP) ([]dataplane.DIP, error) {
	vc, ok := cp.vips[vip]
	if !ok {
		return nil, dataplane.ErrUnknownVIP
	}
	return clone(vc.targetPool()), nil
}

// ActiveVersions returns the number of live pool versions for vip.
func (cp *ControlPlane) ActiveVersions(vip dataplane.VIP) int {
	vc, ok := cp.vips[vip]
	if !ok {
		return 0
	}
	return len(vc.pools)
}

// VersionsAllocated returns how many distinct version numbers vip has
// consumed so far (Figure 15's quantity when reuse is disabled).
func (cp *ControlPlane) VersionsAllocated(vip dataplane.VIP) int {
	vc, ok := cp.vips[vip]
	if !ok {
		return 0
	}
	return vc.versionsAllocated
}

// MaxActiveVersions returns the largest number of pool versions vip has
// held concurrently — the quantity that sizes the version field (a 6-bit
// ring needs this to stay at or below 64).
func (cp *ControlPlane) MaxActiveVersions(vip dataplane.VIP) int {
	vc, ok := cp.vips[vip]
	if !ok {
		return 0
	}
	return vc.maxActive
}

// targetPool returns the pool an update request should be diffed against:
// the newest requested state — the tail of the queue, the in-flight
// update's target, or the current pool.
func (vc *vipCtl) targetPool() []dataplane.DIP {
	if n := len(vc.queued); n > 0 {
		return vc.queued[n-1].pool
	}
	if vc.state == updRecording {
		return vc.pools[vc.pendingNewVer]
	}
	return vc.pools[vc.curVer]
}

// AddDIP requests adding one DIP to vip's pool.
func (cp *ControlPlane) AddDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error {
	vc, ok := cp.vips[vip]
	if !ok {
		return dataplane.ErrUnknownVIP
	}
	pool := clone(vc.targetPool())
	pool = append(pool, dip)
	return cp.RequestUpdate(now, vip, pool)
}

// RemoveDIP requests removing one DIP from vip's pool. The DIP is treated
// as leaving service (its connections are dying anyway), which is what
// permits later version reuse.
func (cp *ControlPlane) RemoveDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error {
	vc, ok := cp.vips[vip]
	if !ok {
		return dataplane.ErrUnknownVIP
	}
	pool := clone(vc.targetPool())
	out := pool[:0]
	found := false
	for _, d := range pool {
		if !found && d == dip {
			found = true
			continue
		}
		out = append(out, d)
	}
	if !found {
		return fmt.Errorf("ctrlplane: DIP %v not in pool of %v", dip, vip)
	}
	return cp.RequestUpdate(now, vip, out)
}

// RequestUpdate queues a DIP pool update for vip to the given target pool.
// Updates of one VIP serialize; the update starts as soon as the VIP is
// idle and completes with PCC under ModeFullPCC.
func (cp *ControlPlane) RequestUpdate(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	vc, ok := cp.vips[vip]
	if !ok {
		return dataplane.ErrUnknownVIP
	}
	if len(pool) == 0 {
		return errors.New("ctrlplane: update to empty pool")
	}
	if vc.resilient != nil {
		return ErrResilientVIP
	}
	cp.metrics.UpdatesRequested++
	if cp.tracer != nil {
		// The new version is not chosen yet; report the current version on
		// both sides and the requested target as the after-pool.
		cp.tracer.OnUpdateStep(telemetry.UpdateStepEvent{
			Now: now, Pipe: cp.pipe, VIP: cp.sw.VIPTelemetry(vip),
			Step:        telemetry.StepRequested,
			Key:         vip.TelemetryKey(),
			PrevVersion: vc.curVer, Version: vc.curVer,
			Before: clone(vc.pools[vc.curVer]), After: clone(pool),
		})
	}
	if samePool(pool, vc.targetPool()) {
		cp.metrics.UpdatesCoalesced++
		return nil
	}
	vc.queued = append(vc.queued, updateReq{at: now, pool: clone(pool)})
	cp.maybeStartUpdate(now, vc)
	return nil
}

func clone(p []dataplane.DIP) []dataplane.DIP { return append([]dataplane.DIP(nil), p...) }

// samePool compares pools as multisets.
func samePool(a, b []dataplane.DIP) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[dataplane.DIP]int, len(a))
	for _, d := range a {
		m[d]++
	}
	for _, d := range b {
		m[d]--
		if m[d] < 0 {
			return false
		}
	}
	return true
}

// sortedVersions returns vc's pool versions in ascending order (for
// deterministic reuse scans).
func (vc *vipCtl) sortedVersions() []uint32 {
	out := make([]uint32, 0, len(vc.pools))
	for v := range vc.pools {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
