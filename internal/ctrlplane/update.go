package ctrlplane

import (
	"repro/internal/dataplane"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// traceUpdateStep emits one OnUpdateStep event (no-op when untraced),
// capturing the version bump and the before/after pools as the journal's
// state delta.
func (cp *ControlPlane) traceUpdateStep(now simtime.Time, vc *vipCtl,
	step telemetry.UpdateStep, reqAt, execAt simtime.Time, prevVer, newVer uint32) {
	if cp.tracer == nil {
		return
	}
	cp.tracer.OnUpdateStep(telemetry.UpdateStepEvent{
		Now: now, Pipe: cp.pipe, VIP: cp.sw.VIPTelemetry(vc.vip),
		Step: step, ReqAt: reqAt, ExecAt: execAt,
		Key:         vc.vip.TelemetryKey(),
		PrevVersion: prevVer,
		Version:     newVer,
		Before:      clone(vc.pools[prevVer]),
		After:       clone(vc.pools[newVer]),
	})
}

// maybeStartUpdate begins the next queued update if the VIP is idle.
func (cp *ControlPlane) maybeStartUpdate(now simtime.Time, vc *vipCtl) {
	if vc.state != updIdle || len(vc.queued) == 0 {
		return
	}
	req := vc.queued[0]
	vc.queued = vc.queued[1:]
	if samePool(req.pool, vc.pools[vc.curVer]) {
		cp.metrics.UpdatesCoalesced++
		cp.maybeStartUpdate(now, vc)
		return
	}
	// Diff the target against the current pool: DIPs leaving service mark
	// dead slots in every active version that still references them (their
	// connections are dying with the DIP, so the slot may be rewritten).
	removed, added := poolDiff(vc.pools[vc.curVer], req.pool)
	for _, d := range removed {
		for v, pool := range vc.pools {
			for i, pd := range pool {
				if pd == d {
					if vc.deadSlots[v] == nil {
						vc.deadSlots[v] = map[int]bool{}
					}
					vc.deadSlots[v][i] = true
				}
			}
		}
	}
	newVer, newPool, reused, ok := cp.chooseVersion(vc, req.pool, added)
	if !ok {
		// All version numbers are pinned by live connections: re-queue and
		// retry as versions retire (the paper's "very rare" exhaustion).
		cp.metrics.VersionExhaustions++
		vc.queued = append([]updateReq{req}, vc.queued...)
		return
	}
	vc.pools[newVer] = clone(newPool)
	if len(vc.pools) > vc.maxActive {
		vc.maxActive = len(vc.pools)
	}
	if err := cp.sw.WritePool(vc.vip, newVer, newPool); err != nil {
		panic("ctrlplane: WritePool: " + err.Error())
	}
	if reused {
		cp.metrics.VersionReuses++
		delete(vc.deadSlots, newVer)
	} else {
		cp.metrics.VersionAllocs++
		vc.versionsAllocated++
	}

	if cp.cfg.Mode == ModeNoTransit || cp.sw.Config().DisableTransit {
		// Ablation: swap immediately; pending connections are exposed.
		prev := vc.curVer
		vc.curVer = newVer
		if err := cp.sw.SetCurrentVersion(vc.vip, newVer); err != nil {
			panic("ctrlplane: SetCurrentVersion: " + err.Error())
		}
		cp.metrics.UpdatesCompleted++
		// The ablation swaps instantly: the whole 3-step update collapses
		// into one zero-duration transition.
		cp.traceUpdateStep(now, vc, telemetry.StepDone, now, now, prev, newVer)
		cp.retireIfIdle(vc, prev)
		cp.maybeStartUpdate(now, vc)
		return
	}

	// Step 1 (t_req): remember new connections in the TransitTable until
	// every connection that arrived before t_req is installed.
	vc.state = updRecording
	vc.treq = now
	vc.prevVer = vc.curVer
	// Stash the chosen version in texec-free field until step 2; reuse
	// curVer only at the swap. Keep it in pendingNewVer.
	vc.pendingNewVer = newVer
	cp.activeUpdates++
	if err := cp.sw.SetRecording(vc.vip, true); err != nil {
		panic("ctrlplane: SetRecording: " + err.Error())
	}
	cp.traceUpdateStep(now, vc, telemetry.StepRecording, vc.treq, 0, vc.curVer, newVer)
}

// chooseVersion picks the version number for a new pool: reuse an active
// version whose dead slots can be substituted with the added DIPs to form
// exactly the target pool (§4.2), else allocate from the ring buffer. The
// returned pool is the row to write: for reuse it is the *substituted*
// pool, preserving slot positions so connections pinned to the reused
// version keep selecting the same (live) DIPs; for a fresh version it is
// the target as requested.
func (cp *ControlPlane) chooseVersion(vc *vipCtl, target, added []dataplane.DIP) (ver uint32, pool []dataplane.DIP, reused, ok bool) {
	if !cp.cfg.DisableVersionReuse {
		for _, v := range vc.sortedVersions() {
			if v == vc.curVer || len(vc.deadSlots[v]) == 0 {
				continue
			}
			if v == vc.prevVer && vc.state != updIdle {
				continue
			}
			if cand, match := substitute(vc.pools[v], vc.deadSlots[v], added, target); match {
				return v, cand, true, true
			}
		}
	}
	if len(vc.freeVers) > 0 {
		v := vc.freeVers[0]
		vc.freeVers = vc.freeVers[1:]
		return v, target, false, true
	}
	// Ring empty: retire any version with zero connections on the spot.
	for _, v := range vc.sortedVersions() {
		if v != vc.curVer && vc.connsPerVer[v] == 0 && !(vc.state != updIdle && v == vc.prevVer) {
			cp.dropVersion(vc, v)
			return v, target, false, true
		}
	}
	return 0, nil, false, false
}

// substitute checks whether replacing pool's dead slots with the added DIPs
// yields the target pool as a multiset. It returns the substituted pool.
func substitute(pool []dataplane.DIP, dead map[int]bool, added, target []dataplane.DIP) ([]dataplane.DIP, bool) {
	if len(added) == 0 || len(added) > len(dead) || len(pool) != len(target) {
		return nil, false
	}
	out := clone(pool)
	ai := 0
	for i := range out {
		if dead[i] && ai < len(added) {
			out[i] = added[ai]
			ai++
		}
	}
	if ai != len(added) {
		return nil, false
	}
	// Slots that stay dead (more dead slots than additions) keep their old
	// DIP, which would resurrect a removed DIP — reject that case.
	if len(dead) != len(added) {
		return nil, false
	}
	if !samePool(out, target) {
		return nil, false
	}
	return out, true
}

// poolDiff returns (removed, added) between cur and next as multisets.
func poolDiff(cur, next []dataplane.DIP) (removed, added []dataplane.DIP) {
	count := map[dataplane.DIP]int{}
	for _, d := range cur {
		count[d]++
	}
	for _, d := range next {
		count[d]--
	}
	for d, c := range count {
		for i := 0; i < c; i++ {
			removed = append(removed, d)
		}
		for i := 0; i < -c; i++ {
			added = append(added, d)
		}
	}
	return removed, added
}

// checkTransitions advances the update state machine of every VIP based on
// the insertion watermarks (called from Advance after CPU work). It
// reports whether any state changed, so the caller can loop to a fixed
// point.
func (cp *ControlPlane) checkTransitions(now simtime.Time) bool {
	changed := false
	for _, vc := range cp.vips {
		switch vc.state {
		case updRecording:
			if cp.noPendingBefore(vc.treq) {
				// Step 2 (t_exec): atomically swap VIPTable to the new
				// version; misses consult the TransitTable.
				if err := cp.sw.BeginTransition(vc.vip, vc.pendingNewVer); err != nil {
					panic("ctrlplane: BeginTransition: " + err.Error())
				}
				vc.prevVer = vc.curVer
				vc.curVer = vc.pendingNewVer
				vc.state = updTransition
				vc.texec = now
				cp.traceUpdateStep(now, vc, telemetry.StepTransition, vc.treq, vc.texec,
					vc.prevVer, vc.curVer)
				changed = true
			}
		case updTransition:
			if cp.noPendingBefore(vc.texec) {
				cp.finishUpdate(now, vc)
				changed = true
			}
		case updIdle:
			if len(vc.queued) > 0 {
				cp.maybeStartUpdate(now, vc)
				changed = vc.state != updIdle || len(vc.queued) == 0
			}
		}
	}
	return changed
}

// finishUpdate completes step 3 for vc.
func (cp *ControlPlane) finishUpdate(now simtime.Time, vc *vipCtl) {
	if vc.state == updIdle {
		return
	}
	if err := cp.sw.EndTransition(vc.vip); err != nil {
		panic("ctrlplane: EndTransition: " + err.Error())
	}
	// An update force-finished while still recording never reached t_exec;
	// report the finish time as its transition point.
	texec := vc.texec
	if vc.state == updRecording {
		texec = now
	}
	cp.traceUpdateStep(now, vc, telemetry.StepDone, vc.treq, texec, vc.prevVer, vc.curVer)
	vc.state = updIdle
	cp.activeUpdates--
	if cp.activeUpdates == 0 {
		// No update in flight anywhere: the shared bloom filter can be
		// wiped (step 3's "clear TransitTable").
		cp.sw.ClearTransit()
	}
	cp.metrics.UpdatesCompleted++
	cp.retireIfIdle(vc, vc.prevVer)
	cp.maybeStartUpdate(now, vc)
}

// retireIfIdle frees version v of vc if no connection uses it anymore.
func (cp *ControlPlane) retireIfIdle(vc *vipCtl, v uint32) {
	if v == vc.curVer {
		return
	}
	if vc.state != updIdle && v == vc.prevVer {
		return
	}
	if vc.connsPerVer[v] != 0 {
		return
	}
	if _, exists := vc.pools[v]; !exists {
		return
	}
	cp.dropVersion(vc, v)
	vc.freeVers = append(vc.freeVers, v)
}

// dropVersion removes version v's pool row without returning it to the
// ring (callers decide).
func (cp *ControlPlane) dropVersion(vc *vipCtl, v uint32) {
	delete(vc.pools, v)
	delete(vc.deadSlots, v)
	delete(vc.connsPerVer, v)
	_ = cp.sw.DeletePool(vc.vip, v)
}

// noPendingBefore reports whether every connection that arrived before t
// has been installed: the hardware filter holds no event older than t and
// the CPU queue has none either.
func (cp *ControlPlane) noPendingBefore(t simtime.Time) bool {
	if oldest, any := cp.sw.LearnFilter().OldestAt(); any && oldest.Before(t) {
		return false
	}
	for i := range cp.queue {
		if cp.queue[i].ev.At.Before(t) {
			return false
		}
	}
	return true
}
