package hybrid

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/slb"
)

func vip() dataplane.VIP {
	return dataplane.VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 80, Proto: netproto.ProtoTCP}
}

func pool(n int) []dataplane.DIP {
	out := make([]dataplane.DIP, n)
	for i := range out {
		out[i] = netip.MustParseAddrPort(fmt.Sprintf("10.0.0.%d:20", i+1))
	}
	return out
}

func tup(i int) netproto.FiveTuple {
	return netproto.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{1, byte(i >> 16), byte(i >> 8), byte(i)}),
		Dst:     netip.MustParseAddr("20.0.0.1"),
		SrcPort: uint16(1024 + i%60000), DstPort: 80, Proto: netproto.ProtoTCP,
	}
}

func ms(n int) simtime.Time { return simtime.Time(n) * simtime.Time(simtime.Millisecond) }

func newHybrid(t *testing.T, connCap int) *Balancer {
	t.Helper()
	dcfg := dataplane.DefaultConfig(connCap)
	b, err := New(dcfg, ctrlplane.DefaultConfig(), slb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddVIP(0, vip(), pool(8)); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNoOverflowStaysInHardware(t *testing.T) {
	b := newHybrid(t, 100000)
	for i := 0; i < 200; i++ {
		pkt := &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagSYN}
		if _, ok := b.Packet(simtime.Time(i)*1000, pkt); !ok {
			t.Fatal("packet dropped")
		}
	}
	b.Advance(ms(10))
	for i := 0; i < 200; i++ {
		pkt := &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagACK}
		b.Packet(ms(11), pkt)
	}
	s := b.Stats()
	if s.SoftwarePkts != 0 || s.OverflowConns != 0 {
		t.Fatalf("unnecessary software involvement: %+v", s)
	}
	if b.SoftwareShare() != 0 {
		t.Fatal("software share nonzero")
	}
}

// TestOverflowPinnedWithPCC is the §7 scenario: more connections than the
// hardware table holds. Overflow connections must be served in software
// with their ORIGINAL hardware-hashed DIP, and must survive a pool update
// (which would remap unpinned VIPTable traffic) without moving.
func TestOverflowPinnedWithPCC(t *testing.T) {
	b := newHybrid(t, 256) // tiny hardware table
	const conns = 2000
	first := map[int]dataplane.DIP{}
	now := simtime.Time(0)
	for i := 0; i < conns; i++ {
		pkt := &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagSYN}
		dip, ok := b.Packet(now, pkt)
		if !ok {
			t.Fatalf("conn %d dropped", i)
		}
		first[i] = dip
		now = now.Add(simtime.Duration(20 * simtime.Microsecond))
	}
	b.Advance(now.Add(simtime.Duration(simtime.Second)))
	if b.Stats().OverflowConns == 0 {
		t.Fatal("no overflow with 2000 conns into 256-entry table")
	}
	// Pool update: unpinned traffic would remap; both the hardware-cached
	// and the SLB-pinned connections must keep their DIPs.
	if err := b.Update(now, vip(), pool(7)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(simtime.Duration(100 * simtime.Millisecond))
	b.Advance(now)
	moved := 0
	for i := 0; i < conns; i++ {
		pkt := &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagACK}
		dip, ok := b.Packet(now, pkt)
		if !ok {
			continue
		}
		if dip != first[i] {
			moved++
		}
	}
	// The removed DIP's connections legitimately move; nothing else may.
	removed := pool(8)[7]
	excusable := 0
	for i := 0; i < conns; i++ {
		if first[i] == removed {
			excusable++
		}
	}
	if moved > excusable {
		t.Fatalf("%d conns moved but only %d pointed at the removed DIP", moved, excusable)
	}
	if b.Stats().SoftwarePkts == 0 {
		t.Fatal("overflow conns never served in software")
	}
	share := b.SoftwareShare()
	if share <= 0 || share >= 1 {
		t.Fatalf("software share = %.3f", share)
	}
}

func TestConnEndReleasesBothTiers(t *testing.T) {
	b := newHybrid(t, 256)
	now := simtime.Time(0)
	for i := 0; i < 1000; i++ {
		b.Packet(now, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagSYN})
		now = now.Add(simtime.Duration(20 * simtime.Microsecond))
	}
	b.Advance(now.Add(simtime.Duration(simtime.Second)))
	slbBefore := b.SLB().Conns()
	if slbBefore == 0 {
		t.Fatal("no SLB pins")
	}
	for i := 0; i < 1000; i++ {
		b.ConnEnd(now, tup(i))
	}
	if b.SLB().Conns() != 0 {
		t.Fatalf("SLB still holds %d conns", b.SLB().Conns())
	}
	if b.Controlplane().TrackedConns() != 0 {
		t.Fatal("switch software still tracks conns")
	}
}

func TestOverflowHookChaining(t *testing.T) {
	dcfg := dataplane.DefaultConfig(256)
	ccfg := ctrlplane.DefaultConfig()
	called := 0
	ccfg.OnOverflow = func(simtime.Time, netproto.FiveTuple, dataplane.DIP) { called++ }
	b, err := New(dcfg, ccfg, slb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.AddVIP(0, vip(), pool(4))
	now := simtime.Time(0)
	for i := 0; i < 1500; i++ {
		b.Packet(now, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagSYN})
		now = now.Add(simtime.Duration(20 * simtime.Microsecond))
	}
	b.Advance(now.Add(simtime.Duration(simtime.Second)))
	if called == 0 {
		t.Fatal("user overflow hook not chained")
	}
	if uint64(called) != b.Stats().OverflowConns {
		t.Fatalf("hook calls %d != overflow conns %d", called, b.Stats().OverflowConns)
	}
}
