// Package hybrid implements §7's "combine with SLB solutions": SilkRoad's
// ConnTable acts as a cache of connections, and connections that overflow
// it are pinned at a software load balancer tier. Every cached connection
// is forwarded purely in hardware; only the overflow spills to software,
// and per-connection consistency holds for both.
package hybrid

import (
	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/slb"
)

// Stats counts the hybrid split.
type Stats struct {
	Packets       uint64
	HardwarePkts  uint64 // served by the switch (ConnTable or VIPTable)
	SoftwarePkts  uint64 // served by the SLB tier (overflow connections)
	OverflowConns uint64 // connections pinned at the SLB
}

// Balancer combines a SilkRoad switch with an SLB tier.
type Balancer struct {
	sw    *dataplane.Switch
	cp    *ctrlplane.ControlPlane
	soft  *slb.Balancer
	stats Stats
}

// New builds a hybrid balancer. The control-plane config's OnOverflow hook
// is installed by New; any caller-provided hook is chained after pinning.
func New(dcfg dataplane.Config, ccfg ctrlplane.Config, scfg slb.Config) (*Balancer, error) {
	sw, err := dataplane.New(dcfg)
	if err != nil {
		return nil, err
	}
	b := &Balancer{sw: sw, soft: slb.New(scfg)}
	userHook := ccfg.OnOverflow
	ccfg.OnOverflow = func(now simtime.Time, tuple netproto.FiveTuple, dip dataplane.DIP) {
		if b.soft.PinConnection(tuple, dip) {
			b.stats.OverflowConns++
			if userHook != nil {
				userHook(now, tuple, dip)
			}
		}
	}
	b.cp = ctrlplane.New(sw, ccfg)
	return b, nil
}

// Switch exposes the hardware half.
func (b *Balancer) Switch() *dataplane.Switch { return b.sw }

// Controlplane exposes the switch software.
func (b *Balancer) Controlplane() *ctrlplane.ControlPlane { return b.cp }

// SLB exposes the software half.
func (b *Balancer) SLB() *slb.Balancer { return b.soft }

// Stats returns a copy of the counters.
func (b *Balancer) Stats() Stats { return b.stats }

// AddVIP announces a VIP on both tiers.
func (b *Balancer) AddVIP(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	if err := b.cp.AddVIP(now, vip, pool, 0); err != nil {
		return err
	}
	return b.soft.AddVIP(vip, pool)
}

// Update applies a PCC-preserving pool update to both tiers.
func (b *Balancer) Update(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	if err := b.cp.RequestUpdate(now, vip, pool); err != nil {
		return err
	}
	return b.soft.Update(vip, pool)
}

// Packet forwards one packet: the switch first; if the connection is not
// cached in hardware but pinned at the SLB tier, software serves it.
func (b *Balancer) Packet(now simtime.Time, pkt *netproto.Packet) (dataplane.DIP, bool) {
	b.stats.Packets++
	b.cp.Advance(now)
	res := b.sw.Process(now, pkt)
	res = b.cp.HandleResult(now, pkt, res)
	if res.Verdict != dataplane.VerdictForward {
		return dataplane.DIP{}, false
	}
	if !res.ConnHit && b.soft.HasConn(pkt.Tuple) {
		// Overflow connection: the SLB's ConnTable pins it across pool
		// updates that would remap the unpinned VIPTable path.
		if dip, ok := b.soft.Packet(now, pkt.Tuple); ok {
			b.stats.SoftwarePkts++
			return dip, true
		}
	}
	b.stats.HardwarePkts++
	return res.DIP, true
}

// ConnEnd releases a connection on both tiers.
func (b *Balancer) ConnEnd(now simtime.Time, t netproto.FiveTuple) {
	b.cp.EndConnection(now, t)
	b.soft.ConnEnd(t)
}

// Advance runs switch-software background work.
func (b *Balancer) Advance(now simtime.Time) { b.cp.Advance(now) }

// NextEventTime reports the control plane's earliest pending deadline.
// Together with Advance it lets the balancer ride a sched.Scheduler as a
// due-work source.
func (b *Balancer) NextEventTime() (simtime.Time, bool) { return b.cp.NextEventTime() }

// SoftwareShare returns the fraction of packets served in software.
func (b *Balancer) SoftwareShare() float64 {
	if b.stats.Packets == 0 {
		return 0
	}
	return float64(b.stats.SoftwarePkts) / float64(b.stats.Packets)
}
