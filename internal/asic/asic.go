// Package asic models the switching-ASIC platform SilkRoad compiles to: a
// catalogue of ASIC generations (Table 1 of the paper), a resource
// accountant for the seven hardware resource classes reported in Table 2,
// and a Chip that hosts the primitives the dataplane allocates — exact-match
// tables on SRAM stages, transactional register arrays, meter banks, and a
// learning filter.
//
// The model is structural, not cycle-accurate: a pipeline forwards at line
// rate by construction as long as its tables fit the resource budget, which
// is exactly the claim the paper makes ("adding any new logic into the
// pipeline does not change throughput as long as the logic fits").
package asic

import (
	"fmt"
	"strings"

	"repro/internal/bloom"
	"repro/internal/cuckoo"
	"repro/internal/learnfilter"
	"repro/internal/regarray"
	"repro/internal/simtime"
)

// Generation describes one ASIC generation (Table 1).
type Generation struct {
	Name         string
	Year         int
	CapacityTbps float64
	SRAMMB       int // usable match SRAM, excluding packet buffer
}

// Generations is the Table 1 catalogue: SRAM grew ~5x over four years,
// reaching the 50-100 MB that makes switch-resident ConnTables feasible.
var Generations = []Generation{
	{Name: "<1.6 Tbps (Trident II / FlexPipe era)", Year: 2012, CapacityTbps: 1.6, SRAMMB: 15},
	{Name: "3.2 Tbps (Tomahawk / XPliant era)", Year: 2014, CapacityTbps: 3.2, SRAMMB: 45},
	{Name: "6.4+ Tbps (Tofino / Tomahawk II era)", Year: 2016, CapacityTbps: 6.5, SRAMMB: 75},
}

// Resources tallies consumption of each hardware resource class from
// Table 2 of the paper.
type Resources struct {
	MatchCrossbarBits int // match key bits fed into the per-stage crossbars
	SRAMBytes         int
	TCAMBytes         int
	VLIWActions       int // very-long-instruction-word action slots
	HashBits          int // hash-generator output bits consumed
	StatefulALUs      int
	PHVBits           int // packet header vector bits for metadata
}

// Add accumulates o into r.
func (r *Resources) Add(o Resources) {
	r.MatchCrossbarBits += o.MatchCrossbarBits
	r.SRAMBytes += o.SRAMBytes
	r.TCAMBytes += o.TCAMBytes
	r.VLIWActions += o.VLIWActions
	r.HashBits += o.HashBits
	r.StatefulALUs += o.StatefulALUs
	r.PHVBits += o.PHVBits
}

// RelativeTo returns each resource as a fraction of base, the presentation
// used by Table 2 ("additional usage normalized by the baseline
// switch.p4"). Zero base components yield 0.
type RelativeUsage struct {
	MatchCrossbar, SRAM, TCAM, VLIW, HashBits, StatefulALUs, PHV float64
}

// RelativeTo computes r/base componentwise.
func (r Resources) RelativeTo(base Resources) RelativeUsage {
	frac := func(a, b int) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	return RelativeUsage{
		MatchCrossbar: frac(r.MatchCrossbarBits, base.MatchCrossbarBits),
		SRAM:          frac(r.SRAMBytes, base.SRAMBytes),
		TCAM:          frac(r.TCAMBytes, base.TCAMBytes),
		VLIW:          frac(r.VLIWActions, base.VLIWActions),
		HashBits:      frac(r.HashBits, base.HashBits),
		StatefulALUs:  frac(r.StatefulALUs, base.StatefulALUs),
		PHV:           frac(r.PHVBits, base.PHVBits),
	}
}

// String renders the relative usage as a Table 2-style block.
func (u RelativeUsage) String() string {
	var b strings.Builder
	row := func(name string, v float64) {
		fmt.Fprintf(&b, "  %-22s %6.2f%%\n", name, v*100)
	}
	row("Match Crossbar", u.MatchCrossbar)
	row("SRAM", u.SRAM)
	row("TCAM", u.TCAM)
	row("VLIW Actions", u.VLIW)
	row("Hash Bits", u.HashBits)
	row("Stateful ALUs", u.StatefulALUs)
	row("Packet Header Vector", u.PHV)
	return b.String()
}

// BaselineSwitchP4 is the resource consumption of the baseline switch.p4
// (the ~5000-line L2/L3/ACL/QoS program SilkRoad is added to). The paper
// reports only SilkRoad's usage *relative* to this baseline; these absolute
// figures are calibrated from the RMT paper's per-stage budgets so that a
// 1M-entry SilkRoad lands at Table 2's percentages.
var BaselineSwitchP4 = Resources{
	MatchCrossbarBits: 3155,           // L2/L3/ACL match keys across stages
	SRAMBytes:         14 * (1 << 20), // exact-match tables (MACs, hosts, ECMP)
	TCAMBytes:         6 * (1 << 20),  // LPM + ACL
	VLIWActions:       21,
	HashBits:          515,
	StatefulALUs:      11, // counters, meters in the baseline
	PHVBits:           612,
}

// Config describes the chip hosting a SilkRoad instance.
type Config struct {
	Name          string
	Stages        int              // physical match stages
	SRAMBytes     int              // total match SRAM budget
	CapacityTbps  float64          // forwarding capacity
	PipelineDelay simtime.Duration // port-to-port latency
}

// Tofino64 returns a 6.4 Tbps-class chip configuration (the prototype
// target: Table 1's 2016 generation).
func Tofino64() Config {
	return Config{
		Name:          "programmable-6.4T",
		Stages:        12,
		SRAMBytes:     75 * (1 << 20),
		CapacityTbps:  6.4,
		PipelineDelay: simtime.Duration(400), // ~400ns port-to-port
	}
}

// PerPipe returns the share of this chip's budget owned by one of n
// parallel forwarding pipelines. Multi-pipeline ASICs (Tofino-class chips
// forward through 2-4 independent pipes) split the match SRAM and the
// aggregate forwarding capacity evenly across pipes, while per-pipe
// physical properties — stage count and port-to-port latency — are
// unchanged.
func (c Config) PerPipe(n int) Config {
	if n <= 1 {
		return c
	}
	c.Name = fmt.Sprintf("%s (1 of %d pipes)", c.Name, n)
	c.SRAMBytes /= n
	c.CapacityTbps /= float64(n)
	return c
}

// Chip hosts allocated primitives and accounts their resources.
type Chip struct {
	cfg    Config
	used   Resources
	tables map[string]*cuckoo.Table
	arrays map[string]*regarray.Array
	blooms map[string]*bloom.Filter
	meters map[string]*regarray.MeterBank
	learn  *learnfilter.Filter
}

// NewChip creates an empty chip.
func NewChip(cfg Config) *Chip {
	if cfg.Stages <= 0 || cfg.SRAMBytes <= 0 {
		panic("asic: chip needs positive stages and SRAM")
	}
	return &Chip{
		cfg:    cfg,
		tables: make(map[string]*cuckoo.Table),
		arrays: make(map[string]*regarray.Array),
		blooms: make(map[string]*bloom.Filter),
		meters: make(map[string]*regarray.MeterBank),
	}
}

// Config returns the chip configuration.
func (c *Chip) Config() Config { return c.cfg }

// Used returns the resources allocated so far.
func (c *Chip) Used() Resources { return c.used }

// SRAMAvailable returns the remaining SRAM budget.
func (c *Chip) SRAMAvailable() int { return c.cfg.SRAMBytes - c.used.SRAMBytes }

// ErrOutOfSRAM is returned when an allocation exceeds the chip's budget.
type ErrOutOfSRAM struct {
	Want, Have int
}

func (e ErrOutOfSRAM) Error() string {
	return fmt.Sprintf("asic: allocation needs %d B SRAM, %d B available", e.Want, e.Have)
}

// AllocExactMatch places a multi-stage cuckoo exact-match table on the chip
// and accounts its resources: SRAM for the packed words, crossbar bits for
// the match key in every stage the table spans, hash bits for the per-stage
// index+digest generation, and one VLIW action for the table's action.
func (c *Chip) AllocExactMatch(name string, tcfg cuckoo.Config, keyBits int) (*cuckoo.Table, error) {
	if _, dup := c.tables[name]; dup {
		return nil, fmt.Errorf("asic: table %q already allocated", name)
	}
	if tcfg.Stages > c.cfg.Stages {
		return nil, fmt.Errorf("asic: table %q wants %d stages, chip has %d", name, tcfg.Stages, c.cfg.Stages)
	}
	// Budget check precedes construction: a rejected allocation must not
	// have built (or worse, leaked) a full-size table.
	need := tcfg.SRAMBytes()
	if need > c.SRAMAvailable() {
		return nil, ErrOutOfSRAM{Want: need, Have: c.SRAMAvailable()}
	}
	t := cuckoo.New(tcfg)
	indexBits := bitsFor(tcfg.BucketsPerStage)
	c.used.Add(Resources{
		SRAMBytes:         need,
		MatchCrossbarBits: keyBits * tcfg.Stages,
		HashBits:          (indexBits + tcfg.DigestBits) * tcfg.Stages,
		VLIWActions:       4,
		PHVBits:           tcfg.ValueBits,
	})
	c.tables[name] = t
	return t, nil
}

// AllocRegisterArray places a register array (transactional memory).
func (c *Chip) AllocRegisterArray(name string, n, widthBits int) (*regarray.Array, error) {
	if _, dup := c.arrays[name]; dup {
		return nil, fmt.Errorf("asic: array %q already allocated", name)
	}
	a := regarray.New(n, widthBits)
	if a.SizeBytes() > c.SRAMAvailable() {
		return nil, ErrOutOfSRAM{Want: a.SizeBytes(), Have: c.SRAMAvailable()}
	}
	c.used.Add(Resources{SRAMBytes: a.SizeBytes(), StatefulALUs: 1})
	c.arrays[name] = a
	return a, nil
}

// AllocBloom places a bloom filter across k register arrays: one stateful
// ALU and one hash generator per hash function, in line with how the
// prototype consumed 44% extra stateful ALUs for the TransitTable.
func (c *Chip) AllocBloom(name string, sizeBytes, k int, seed uint64) (*bloom.Filter, error) {
	if _, dup := c.blooms[name]; dup {
		return nil, fmt.Errorf("asic: bloom %q already allocated", name)
	}
	if sizeBytes > c.SRAMAvailable() {
		return nil, ErrOutOfSRAM{Want: sizeBytes, Have: c.SRAMAvailable()}
	}
	f := bloom.New(sizeBytes, k, seed)
	c.used.Add(Resources{
		SRAMBytes:    sizeBytes,
		StatefulALUs: k,
		HashBits:     k * bitsFor(sizeBytes*8),
	})
	c.blooms[name] = f
	return f, nil
}

// AllocMeters places a bank of n two-rate three-color meters.
func (c *Chip) AllocMeters(name string, n int, conf func(i int) *regarray.Meter) (*regarray.MeterBank, error) {
	if _, dup := c.meters[name]; dup {
		return nil, fmt.Errorf("asic: meters %q already allocated", name)
	}
	if need := regarray.BankSRAMBytes(n); need > c.SRAMAvailable() {
		return nil, ErrOutOfSRAM{Want: need, Have: c.SRAMAvailable()}
	}
	b := regarray.NewMeterBank(n, conf)
	c.used.Add(Resources{SRAMBytes: b.SRAMBytes(), StatefulALUs: 1})
	c.meters[name] = b
	return b, nil
}

// AllocLearnFilter places the (single) learning filter.
func (c *Chip) AllocLearnFilter(capacity int, timeout simtime.Duration) (*learnfilter.Filter, error) {
	if c.learn != nil {
		return nil, fmt.Errorf("asic: learning filter already allocated")
	}
	// The filter buffers capacity events of ~16B each.
	if need := capacity * 16; need > c.SRAMAvailable() {
		return nil, ErrOutOfSRAM{Want: need, Have: c.SRAMAvailable()}
	}
	c.learn = learnfilter.New(capacity, timeout)
	c.used.Add(Resources{SRAMBytes: capacity * 16, StatefulALUs: 1})
	return c.learn, nil
}

// bitsFor returns ceil(log2(n)): the number of address or hash bits needed
// to distinguish n values. Degenerate sizes (n <= 1) need no bits at all —
// a single bucket is addressed by the empty string, not by one bit.
func bitsFor(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}
