package asic

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cuckoo"
	"repro/internal/regarray"
	"repro/internal/simtime"
)

func TestGenerationsTable1(t *testing.T) {
	if len(Generations) != 3 {
		t.Fatalf("Table 1 has %d rows, want 3", len(Generations))
	}
	// SRAM must grow ~5x from first to last generation (the paper's trend).
	first, last := Generations[0], Generations[len(Generations)-1]
	if ratio := float64(last.SRAMMB) / float64(first.SRAMMB); ratio < 3 {
		t.Fatalf("SRAM growth ratio = %.1f, want >= 3 (paper: ~5x)", ratio)
	}
	if first.Year >= last.Year {
		t.Fatal("generations out of chronological order")
	}
	if last.SRAMMB < 50 || last.SRAMMB > 100 {
		t.Fatalf("latest generation SRAM = %d MB, want 50-100", last.SRAMMB)
	}
}

func TestResourcesAddAndRelative(t *testing.T) {
	var r Resources
	r.Add(Resources{SRAMBytes: 10, HashBits: 5})
	r.Add(Resources{SRAMBytes: 20, StatefulALUs: 2})
	if r.SRAMBytes != 30 || r.HashBits != 5 || r.StatefulALUs != 2 {
		t.Fatalf("Add result: %+v", r)
	}
	base := Resources{SRAMBytes: 60, HashBits: 10, StatefulALUs: 4, MatchCrossbarBits: 1}
	rel := r.RelativeTo(base)
	if rel.SRAM != 0.5 || rel.HashBits != 0.5 || rel.StatefulALUs != 0.5 {
		t.Fatalf("RelativeTo: %+v", rel)
	}
	if rel.TCAM != 0 { // zero-base component
		t.Fatalf("TCAM fraction = %v, want 0", rel.TCAM)
	}
	if !strings.Contains(rel.String(), "SRAM") {
		t.Fatal("String missing SRAM row")
	}
}

func TestChipAllocExactMatch(t *testing.T) {
	c := NewChip(Tofino64())
	tcfg := cuckoo.DefaultConfig(1_000_000)
	tab, err := c.AllocExactMatch("conntable", tcfg, 37*8)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Capacity() < 1_000_000 {
		t.Fatalf("capacity %d", tab.Capacity())
	}
	if c.Used().SRAMBytes != tab.SRAMBytes() {
		t.Fatalf("SRAM accounting mismatch: chip %d, table %d", c.Used().SRAMBytes, tab.SRAMBytes())
	}
	if c.Used().MatchCrossbarBits != 37*8*tcfg.Stages {
		t.Fatalf("crossbar bits = %d", c.Used().MatchCrossbarBits)
	}
	if _, err := c.AllocExactMatch("conntable", tcfg, 8); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestChipSRAMBudget(t *testing.T) {
	cfg := Tofino64()
	cfg.SRAMBytes = 1 << 16 // 64 KB toy chip
	c := NewChip(cfg)
	_, err := c.AllocExactMatch("big", cuckoo.DefaultConfig(10_000_000), 37*8)
	var oom ErrOutOfSRAM
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOutOfSRAM, got %v", err)
	}
	if oom.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestChipStageLimit(t *testing.T) {
	cfg := Tofino64()
	c := NewChip(cfg)
	tcfg := cuckoo.DefaultConfig(1000)
	tcfg.Stages = cfg.Stages + 1
	if _, err := c.AllocExactMatch("wide", tcfg, 8); err == nil {
		t.Fatal("over-staged table accepted")
	}
}

func TestChipBloomAndMeters(t *testing.T) {
	c := NewChip(Tofino64())
	f, err := c.AllocBloom("transittable", 256, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.SizeBytes() != 256 {
		t.Fatal("bloom size wrong")
	}
	if c.Used().StatefulALUs != 4 {
		t.Fatalf("bloom ALUs = %d, want 4 (one per hash)", c.Used().StatefulALUs)
	}
	if _, err := c.AllocBloom("transittable", 256, 4, 1); err == nil {
		t.Fatal("duplicate bloom accepted")
	}
}

func TestChipMeters(t *testing.T) {
	c := NewChip(Tofino64())
	before := c.Used().SRAMBytes
	mb, err := c.AllocMeters("vipmeters", 40000, func(i int) *regarray.Meter {
		return regarray.NewMeter(1.25e9, 1.25e6, 1.25e8, 1.25e5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if mb.Len() != 40000 {
		t.Fatalf("meter bank size = %d", mb.Len())
	}
	// Paper §5.2: 40K meters consume ~1% of chip SRAM.
	frac := float64(c.Used().SRAMBytes-before) / float64(c.Config().SRAMBytes)
	if frac < 0.005 || frac > 0.05 {
		t.Fatalf("40K meters = %.3f of SRAM, want ~1%%", frac)
	}
	if _, err := c.AllocMeters("vipmeters", 1, func(int) *regarray.Meter {
		return regarray.NewMeter(1, 1, 1, 1)
	}); err == nil {
		t.Fatal("duplicate meters accepted")
	}
}

func TestChipLearnFilter(t *testing.T) {
	c := NewChip(Tofino64())
	lf, err := c.AllocLearnFilter(2048, simtime.Duration(simtime.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if lf.Capacity() != 2048 {
		t.Fatal("filter capacity wrong")
	}
	if _, err := c.AllocLearnFilter(1, 1); err == nil {
		t.Fatal("second learning filter accepted")
	}
}

func TestChipRegisterArray(t *testing.T) {
	c := NewChip(Tofino64())
	a, err := c.AllocRegisterArray("counters", 4096, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4096 {
		t.Fatal("array len wrong")
	}
	if c.Used().StatefulALUs != 1 {
		t.Fatalf("ALUs = %d", c.Used().StatefulALUs)
	}
	if _, err := c.AllocRegisterArray("counters", 1, 1); err == nil {
		t.Fatal("duplicate array accepted")
	}
}

func TestNewChipPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChip with zero config did not panic")
		}
	}()
	NewChip(Config{})
}

func TestSRAMAvailable(t *testing.T) {
	cfg := Tofino64()
	c := NewChip(cfg)
	if c.SRAMAvailable() != cfg.SRAMBytes {
		t.Fatal("fresh chip should have full budget")
	}
	c.AllocRegisterArray("a", 8192, 8)
	if c.SRAMAvailable() != cfg.SRAMBytes-8192 {
		t.Fatalf("SRAMAvailable = %d", c.SRAMAvailable())
	}
}
