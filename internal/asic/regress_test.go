package asic

// Regression tests for resource-accounting fixes: bitsFor's degenerate
// sizes and budget checks running before any primitive is constructed.

import (
	"errors"
	"testing"

	"repro/internal/cuckoo"
	"repro/internal/regarray"
	"repro/internal/simtime"
)

func TestBitsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, // degenerate: one bucket needs no address bits
		{2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bitsFor(c.n); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestSingleBucketTableHashBits asserts a degenerate one-bucket-per-stage
// table consumes hash bits only for its digest, not a phantom index bit.
func TestSingleBucketTableHashBits(t *testing.T) {
	chip := NewChip(Config{Name: "t", Stages: 4, SRAMBytes: 1 << 20, CapacityTbps: 1})
	tcfg := cuckoo.Config{
		Stages: 2, BucketsPerStage: 1, Ways: 4,
		DigestBits: 16, ValueBits: 6, OverheadBits: 6, Seed: 1,
	}
	if _, err := chip.AllocExactMatch("tiny", tcfg, 13*8); err != nil {
		t.Fatal(err)
	}
	// indexBits = bitsFor(1) = 0, so hash bits = digest only, per stage.
	if want := 16 * 2; chip.Used().HashBits != want {
		t.Errorf("HashBits = %d, want %d", chip.Used().HashBits, want)
	}
}

// TestBudgetCheckedBeforeConstruction asserts a rejected allocation leaves
// the chip untouched: no resources accounted, the name still free, and a
// smaller allocation under the same name succeeding afterwards.
func TestBudgetCheckedBeforeConstruction(t *testing.T) {
	chip := NewChip(Config{Name: "t", Stages: 12, SRAMBytes: 8 * 1024, CapacityTbps: 1})

	big := cuckoo.DefaultConfig(1_000_000)
	if _, err := chip.AllocExactMatch("conn", big, 13*8); !errors.As(err, &ErrOutOfSRAM{}) {
		t.Fatalf("oversized exact-match: err = %v, want ErrOutOfSRAM", err)
	}
	if chip.Used() != (Resources{}) {
		t.Fatalf("rejected alloc accounted resources: %+v", chip.Used())
	}
	small := cuckoo.DefaultConfig(256)
	if _, err := chip.AllocExactMatch("conn", small, 13*8); err != nil {
		t.Fatalf("name should still be free after rejection: %v", err)
	}

	if _, err := chip.AllocBloom("bloom", 1<<20, 4, 1); !errors.As(err, &ErrOutOfSRAM{}) {
		t.Fatalf("oversized bloom: err = %v, want ErrOutOfSRAM", err)
	}
	if _, err := chip.AllocMeters("meters", 1<<20, func(i int) *regarray.Meter {
		return regarray.NewMeter(1, 1, 1, 1)
	}); !errors.As(err, &ErrOutOfSRAM{}) {
		t.Fatalf("oversized meter bank: err = %v, want ErrOutOfSRAM", err)
	}
	if _, err := chip.AllocLearnFilter(1<<20, simtime.Duration(simtime.Millisecond)); !errors.As(err, &ErrOutOfSRAM{}) {
		t.Fatalf("oversized learn filter: err = %v, want ErrOutOfSRAM", err)
	}

	// Only the small table's resources should be accounted.
	if got, want := chip.Used().SRAMBytes, small.SRAMBytes(); got != want {
		t.Errorf("SRAMBytes accounted = %d, want %d", got, want)
	}
}

// TestConfigSRAMBytesMatchesTable asserts the pre-construction size
// estimate equals what a built table reports.
func TestConfigSRAMBytesMatchesTable(t *testing.T) {
	for _, n := range []int{16, 1000, 50000} {
		cfg := cuckoo.DefaultConfig(n)
		if got, want := cfg.SRAMBytes(), cuckoo.New(cfg).SRAMBytes(); got != want {
			t.Errorf("n=%d: Config.SRAMBytes = %d, Table.SRAMBytes = %d", n, got, want)
		}
	}
	// Per-stage digest widths change packing; the estimate must track them.
	cfg := cuckoo.DefaultConfig(1000)
	cfg.DigestBitsPerStage = []int{16, 12, 8, 8}
	if got, want := cfg.SRAMBytes(), cuckoo.New(cfg).SRAMBytes(); got != want {
		t.Errorf("per-stage digests: Config.SRAMBytes = %d, Table.SRAMBytes = %d", got, want)
	}
}

func TestPerPipeSplitsBudget(t *testing.T) {
	base := Tofino64()
	p := base.PerPipe(4)
	if p.SRAMBytes != base.SRAMBytes/4 {
		t.Errorf("per-pipe SRAM = %d, want %d", p.SRAMBytes, base.SRAMBytes/4)
	}
	if p.CapacityTbps != base.CapacityTbps/4 {
		t.Errorf("per-pipe capacity = %v, want %v", p.CapacityTbps, base.CapacityTbps/4)
	}
	if p.Stages != base.Stages || p.PipelineDelay != base.PipelineDelay {
		t.Errorf("per-pipe physical properties changed: %+v", p)
	}
	if one := base.PerPipe(1); one != base {
		t.Errorf("PerPipe(1) should be identity, got %+v", one)
	}
}
