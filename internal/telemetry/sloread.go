package telemetry

import "sort"

// Allocation-free read surface for periodic samplers (internal/slo).
//
// The SLO engine snapshots the registry every evaluation interval. Going
// through Snapshot would allocate four maps per tick; the readers below
// instead copy the cached built-in instruments into caller-owned structs
// and slices, so a steady-state sample performs only atomic loads. None of
// them take any lock the packet path holds: the built-ins are plain
// atomics, the pipe table is a copy-on-write atomic pointer, and r.mu (the
// VIP readers) is a registration-time lock the hot-path hooks never touch.

// CoreStats is a flat copy of the built-in chip-wide instruments the SLO
// engine derives SLIs from. Counter fields carry cumulative totals; the
// caller subtracts consecutive reads to get interval deltas.
type CoreStats struct {
	InsertsLearned   uint64
	DigestFPs        uint64
	BloomFPs         uint64
	InsertDuplicates uint64
	InsertOverflows  uint64
	InsertRetries    uint64
	InsertSheds      uint64
	UpdatesRequested uint64
	UpdatesCompleted uint64
	LearnFlushes     uint64
	MeterDropBytes   uint64
	DegradedTrans    uint64
	FaultsInjected   uint64

	QueueDepth       int64
	QueuePeak        int64
	ConnOccupancyPPM int64
	DegradedPipes    int64
}

// ReadCore fills out with the current built-in instrument values.
func (r *Registry) ReadCore(out *CoreStats) {
	out.InsertsLearned = r.insertsLearned.Load()
	out.DigestFPs = r.digestFPs.Load()
	out.BloomFPs = r.bloomFPs.Load()
	out.InsertDuplicates = r.insertDups.Load()
	out.InsertOverflows = r.insertOverflows.Load()
	out.InsertRetries = r.insertRetries.Load()
	out.InsertSheds = r.insertSheds.Load()
	out.UpdatesRequested = r.updatesRequested.Load()
	out.UpdatesCompleted = r.updatesCompleted.Load()
	out.LearnFlushes = r.learnFlushes.Load()
	out.MeterDropBytes = r.meterDropBytes.Load()
	out.DegradedTrans = r.degradedTransitions.Load()
	out.FaultsInjected = r.faultsInjected.Load()
	out.QueueDepth = r.queueDepth.Load()
	out.QueuePeak = r.queuePeak.Load()
	out.ConnOccupancyPPM = r.connOccupancy.Load()
	out.DegradedPipes = r.degradedPipes.Load()
}

// ReadPendingWindow snapshots the pending-window histogram into out,
// reusing out's slices (see Histogram.SnapshotInto).
func (r *Registry) ReadPendingWindow(out *HistogramSnapshot) {
	r.pendingWindow.SnapshotInto(out)
}

// PipeOccupancy is one pipe's occupancy-tap reading: ConnTable entries and
// effective capacity after the pipe's most recent mutation, plus its
// degraded flag and packet counter.
type PipeOccupancy struct {
	Pipe     int
	Packets  uint64
	Entries  int64
	Capacity int64
	Degraded bool
}

// ReadPipes fills out[:n] with per-pipe occupancy readings, where n is
// min(len(out), pipes seen so far), and returns the total pipe count. A
// pipe that has not yet inserted a connection reads Capacity 0.
func (r *Registry) ReadPipes(out []PipeOccupancy) int {
	ps := *r.pipes.Load()
	for i, p := range ps {
		if i >= len(out) {
			break
		}
		out[i] = PipeOccupancy{
			Pipe:     i,
			Packets:  p.packets.Load(),
			Entries:  p.connEntries.Load(),
			Capacity: p.connCapacity.Load(),
			Degraded: p.degraded.Load() != 0,
		}
	}
	return len(ps)
}

// NumVIPs returns the number of distinct VIPs registered so far. Samplers
// use it as a cheap change detector before re-fetching VIPKeys.
func (r *Registry) NumVIPs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.vipKeys)
}

// VIPKeys returns every registered VIP key in a deterministic order
// (address, then port, then protocol). It allocates; callers cache the
// result and refresh only when NumVIPs changes.
func (r *Registry) VIPKeys() []VIPKey {
	r.mu.Lock()
	keys := make([]VIPKey, 0, len(r.vipKeys))
	for k := range r.vipKeys {
		keys = append(keys, k)
	}
	r.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if c := keys[i].Addr.Compare(keys[j].Addr); c != 0 {
			return c < 0
		}
		if keys[i].Port != keys[j].Port {
			return keys[i].Port < keys[j].Port
		}
		return keys[i].Proto < keys[j].Proto
	})
	return keys
}

// ReadVIP sums vip's per-pipe series into out (out is reset first). It
// reports whether the VIP is registered.
func (r *Registry) ReadVIP(vip VIPKey, out *VIPSnapshot) bool {
	*out = VIPSnapshot{}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.vipKeys[vip] {
		return false
	}
	for k, v := range r.vips {
		if k.vip == vip {
			v.snapshotInto(out)
		}
	}
	return true
}
