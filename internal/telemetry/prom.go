package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4). Output is deterministic and spec-clean: metric
// families are emitted in ascending name order, each family's samples in
// ascending label-set order (histogram buckets in ascending le order),
// every family carries exactly one TYPE line, and label values are escaped
// per the exposition spec (backslash, double-quote and newline).
//
// Name conventions: registry counters keep their registered names
// (already _total-suffixed), histograms expand to _bucket/_sum/_count
// families, per-VIP series become silkroad_vip_* families labeled with
// vip="addr:port/proto", and per-pipe series become silkroad_pipe_*
// families labeled with pipe="N" (and verdict="..." for the verdict
// breakdown).
func WritePrometheus(w io.Writer, s Snapshot) error {
	var fams []promFamily

	for name, v := range s.Counters {
		fams = append(fams, promFamily{name: name, typ: "counter",
			samples: []promSample{{value: formatPromUint(v)}}})
	}
	for name, v := range s.Gauges {
		fams = append(fams, promFamily{name: name, typ: "gauge",
			samples: []promSample{{value: fmt.Sprintf("%d", v)}}})
	}
	for name, h := range s.Histograms {
		fams = append(fams, promHistogramFamily(name, h))
	}
	fams = append(fams, vipFamilies(s.VIPs)...)
	fams = append(fams, pipeFamilies(s.Pipes)...)
	fams = append(fams, promFamily{name: "silkroad_virtual_time_seconds", typ: "gauge",
		samples: []promSample{{value: formatPromFloat(float64(s.Now) / 1e9)}}})
	if s.Build != nil {
		fams = append(fams, promFamily{name: "silkroad_build_info", typ: "gauge",
			samples: []promSample{{
				labels: promLabels("goversion", s.Build.GoVersion, "version", s.Build.Version),
				value:  "1",
			}}})
	}
	if s.ProcessStart > 0 {
		fams = append(fams, promFamily{name: "silkroad_process_start_time_seconds", typ: "gauge",
			samples: []promSample{{value: formatPromFloat(s.ProcessStart)}}})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, smp := range f.samples {
			b.WriteString(f.name)
			b.WriteString(smp.suffix)
			b.WriteString(smp.labels)
			b.WriteByte(' ')
			b.WriteString(smp.value)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promFamily is one metric family: a name, a type, and its samples in
// final emission order.
type promFamily struct {
	name    string
	typ     string
	samples []promSample
}

// promSample is one exposition line: name+suffix+labels value.
type promSample struct {
	suffix string // _bucket/_sum/_count for histograms, else empty
	labels string // rendered {k="v",...} block, or empty
	value  string
}

// promHistogramFamily expands a histogram snapshot into its
// _bucket/_sum/_count samples, buckets in ascending le order as the spec
// requires (not lexical).
func promHistogramFamily(name string, h HistogramSnapshot) promFamily {
	f := promFamily{name: name, typ: "histogram"}
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		f.samples = append(f.samples, promSample{
			suffix: "_bucket",
			labels: promLabels("le", formatPromFloat(bound)),
			value:  formatPromInt(cum),
		})
	}
	cum += h.Counts[len(h.Bounds)]
	f.samples = append(f.samples,
		promSample{suffix: "_bucket", labels: promLabels("le", "+Inf"), value: formatPromInt(cum)},
		promSample{suffix: "_sum", value: formatPromFloat(h.Sum)},
		promSample{suffix: "_count", value: formatPromInt(h.Count)},
	)
	return f
}

func vipFamilies(vips map[string]VIPSnapshot) []promFamily {
	if len(vips) == 0 {
		return nil
	}
	labels := sortedKeys(vips)
	defs := []struct {
		name string
		get  func(VIPSnapshot) uint64
	}{
		{"silkroad_vip_packets_total", func(v VIPSnapshot) uint64 { return v.Packets }},
		{"silkroad_vip_bytes_total", func(v VIPSnapshot) uint64 { return v.Bytes }},
		{"silkroad_vip_conn_hits_total", func(v VIPSnapshot) uint64 { return v.ConnHits }},
		{"silkroad_vip_learns_total", func(v VIPSnapshot) uint64 { return v.Learns }},
		{"silkroad_vip_no_backend_total", func(v VIPSnapshot) uint64 { return v.NoBackend }},
		{"silkroad_vip_meter_drops_total", func(v VIPSnapshot) uint64 { return v.MeterDrops }},
		{"silkroad_vip_meter_bytes_total", func(v VIPSnapshot) uint64 { return v.MeterBytes }},
		{"silkroad_vip_conns_total", func(v VIPSnapshot) uint64 { return v.Conns }},
		{"silkroad_vip_conns_ended_total", func(v VIPSnapshot) uint64 { return v.ConnsEnded }},
	}
	out := make([]promFamily, 0, len(defs))
	for _, d := range defs {
		f := promFamily{name: d.name, typ: "counter"}
		for _, l := range labels {
			f.samples = append(f.samples, promSample{
				labels: promLabels("vip", l),
				value:  formatPromUint(d.get(vips[l])),
			})
		}
		out = append(out, f)
	}
	return out
}

func pipeFamilies(pipes []PipeSnapshot) []promFamily {
	if len(pipes) == 0 {
		return nil
	}
	packets := promFamily{name: "silkroad_pipe_packets_total", typ: "counter"}
	bytes := promFamily{name: "silkroad_pipe_bytes_total", typ: "counter"}
	verdicts := promFamily{name: "silkroad_pipe_verdicts_total", typ: "counter"}
	entries := promFamily{name: "silkroad_pipe_conn_entries", typ: "gauge"}
	capacity := promFamily{name: "silkroad_pipe_conn_capacity", typ: "gauge"}
	degraded := promFamily{name: "silkroad_pipe_degraded", typ: "gauge"}
	for _, p := range pipes {
		pipe := fmt.Sprintf("%d", p.Pipe)
		packets.samples = append(packets.samples, promSample{
			labels: promLabels("pipe", pipe), value: formatPromUint(p.Packets)})
		bytes.samples = append(bytes.samples, promSample{
			labels: promLabels("pipe", pipe), value: formatPromUint(p.Bytes)})
		names := sortedKeys(p.Verdicts)
		for _, v := range names {
			verdicts.samples = append(verdicts.samples, promSample{
				labels: promLabels("pipe", pipe, "verdict", v),
				value:  formatPromUint(p.Verdicts[v]),
			})
		}
		entries.samples = append(entries.samples, promSample{
			labels: promLabels("pipe", pipe), value: formatPromInt(p.ConnEntries)})
		capacity.samples = append(capacity.samples, promSample{
			labels: promLabels("pipe", pipe), value: formatPromInt(p.ConnCapacity)})
		dv := "0"
		if p.Degraded {
			dv = "1"
		}
		degraded.samples = append(degraded.samples, promSample{
			labels: promLabels("pipe", pipe), value: dv})
	}
	return []promFamily{packets, bytes, verdicts, entries, capacity, degraded}
}

// promLabels renders a {k="v",...} block from alternating key/value pairs,
// escaping values per the exposition spec.
func promLabels(kv ...string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format escaping rules for label
// values: backslash, double-quote and line feed.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatPromUint(v uint64) string { return fmt.Sprintf("%d", v) }
func formatPromInt(v int64) string   { return fmt.Sprintf("%d", v) }

// formatPromFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf spelled out.
func formatPromFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", f), ".0")
}
