package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4). Output is deterministic: metric families and
// label values are emitted in sorted order.
//
// Name conventions: registry counters keep their registered names
// (already _total-suffixed), histograms expand to _bucket/_sum/_count
// families, per-VIP series become silkroad_vip_* families labeled with
// vip="addr:port/proto", and per-pipe series become silkroad_pipe_*
// families labeled with pipe="N" (and verdict="..." for the verdict
// breakdown).
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder

	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		writePromHistogram(&b, name, s.Histograms[name])
	}

	writeVIPFamilies(&b, s.VIPs)
	writePipeFamilies(&b, s.Pipes)

	fmt.Fprintf(&b, "# TYPE silkroad_virtual_time_seconds gauge\nsilkroad_virtual_time_seconds %s\n",
		formatPromFloat(float64(s.Now)/1e9))

	_, err := io.WriteString(w, b.String())
	return err
}

func writePromHistogram(b *strings.Builder, name string, h HistogramSnapshot) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatPromFloat(bound), cum)
	}
	cum += h.Counts[len(h.Bounds)]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, formatPromFloat(h.Sum))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count)
}

func writeVIPFamilies(b *strings.Builder, vips map[string]VIPSnapshot) {
	if len(vips) == 0 {
		return
	}
	labels := sortedKeys(vips)
	families := []struct {
		name string
		get  func(VIPSnapshot) uint64
	}{
		{"silkroad_vip_packets_total", func(v VIPSnapshot) uint64 { return v.Packets }},
		{"silkroad_vip_bytes_total", func(v VIPSnapshot) uint64 { return v.Bytes }},
		{"silkroad_vip_conn_hits_total", func(v VIPSnapshot) uint64 { return v.ConnHits }},
		{"silkroad_vip_learns_total", func(v VIPSnapshot) uint64 { return v.Learns }},
		{"silkroad_vip_no_backend_total", func(v VIPSnapshot) uint64 { return v.NoBackend }},
		{"silkroad_vip_meter_drops_total", func(v VIPSnapshot) uint64 { return v.MeterDrops }},
		{"silkroad_vip_meter_bytes_total", func(v VIPSnapshot) uint64 { return v.MeterBytes }},
		{"silkroad_vip_conns_total", func(v VIPSnapshot) uint64 { return v.Conns }},
		{"silkroad_vip_conns_ended_total", func(v VIPSnapshot) uint64 { return v.ConnsEnded }},
	}
	for _, f := range families {
		fmt.Fprintf(b, "# TYPE %s counter\n", f.name)
		for _, l := range labels {
			fmt.Fprintf(b, "%s{vip=%q} %d\n", f.name, l, f.get(vips[l]))
		}
	}
}

func writePipeFamilies(b *strings.Builder, pipes []PipeSnapshot) {
	if len(pipes) == 0 {
		return
	}
	fmt.Fprintf(b, "# TYPE silkroad_pipe_packets_total counter\n")
	for _, p := range pipes {
		fmt.Fprintf(b, "silkroad_pipe_packets_total{pipe=\"%d\"} %d\n", p.Pipe, p.Packets)
	}
	fmt.Fprintf(b, "# TYPE silkroad_pipe_bytes_total counter\n")
	for _, p := range pipes {
		fmt.Fprintf(b, "silkroad_pipe_bytes_total{pipe=\"%d\"} %d\n", p.Pipe, p.Bytes)
	}
	fmt.Fprintf(b, "# TYPE silkroad_pipe_verdicts_total counter\n")
	for _, p := range pipes {
		verdicts := make([]string, 0, len(p.Verdicts))
		for v := range p.Verdicts {
			verdicts = append(verdicts, v)
		}
		sort.Strings(verdicts)
		for _, v := range verdicts {
			fmt.Fprintf(b, "silkroad_pipe_verdicts_total{pipe=\"%d\",verdict=%q} %d\n",
				p.Pipe, v, p.Verdicts[v])
		}
	}
}

// formatPromFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf spelled out.
func formatPromFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", f), ".0")
}
