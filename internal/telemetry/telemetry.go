// Package telemetry is the observability layer of the SilkRoad stack: a
// tracing hook interface the data plane, control plane, learning filter and
// multi-pipe engine invoke at their decision points, plus a metrics
// Registry (package telemetry's default Tracer) that turns those events
// into counters, gauges and fixed-bucket histograms keyed by VIP and pipe.
//
// The paper's headline claims are quantitative — the pending-connection
// window opened by slow CPU insertion (§4.2), digest and bloom false
// positives, per-VIP load under meters — and none of them are observable
// from end-of-run counter totals alone. The tracer hooks sit exactly at
// the events those claims are about:
//
//   - OnVerdict    — one per packet, with the pipeline's verdict.
//   - OnInsert     — one per ConnTable insertion attempt, carrying the
//     connection's first-packet arrival time (the pending window) and the
//     insertion kind (learned via the filter, or inline after a digest /
//     bloom false-positive arbitration).
//   - OnUpdateStep — the 3-step PCC update's state transitions with the
//     t_req / t_exec timestamps of Figure 9.
//   - OnLearnFlush — each learning-filter drain with its batch size.
//   - OnMeterDrop  — each packet a VIP meter marked red.
//
// Cost model: a component holds its Tracer in a plain interface field; a
// nil tracer costs exactly one branch per event site. Per-VIP hot-path
// accounting goes through a *VIPSeries handle resolved once at VIP
// installation (RegisterVIP) and carried inside the events, so no hook
// ever performs a map lookup on the packet path. All Registry state is
// atomic: hooks are safe to invoke from concurrent pipes and Snapshot can
// be scraped while traffic runs.
//
// Everything is in virtual time (simtime); the registry never reads the
// wall clock, so metrics are as deterministic as the simulation itself.
package telemetry

import (
	"fmt"
	"net/netip"

	"repro/internal/netproto"
	"repro/internal/simtime"
)

// VIPKey identifies a VIP in telemetry series without importing the
// dataplane package (which imports telemetry): virtual address, port, and
// the IP protocol number.
type VIPKey struct {
	Addr  netip.Addr
	Port  uint16
	Proto uint8
}

// String renders the key as addr:port/proto, the label used in exposition.
func (k VIPKey) String() string {
	proto := fmt.Sprintf("%d", k.Proto)
	switch k.Proto {
	case 6:
		proto = "tcp"
	case 17:
		proto = "udp"
	}
	return fmt.Sprintf("%s/%s", netip.AddrPortFrom(k.Addr, k.Port), proto)
}

// Verdict mirrors the data plane's packet verdicts. The numeric values
// MUST match dataplane.Verdict (asserted by a test in that package);
// duplicating the constants here keeps telemetry a leaf package.
type Verdict uint8

// Verdicts, in dataplane order.
const (
	VerdictForward Verdict = iota
	VerdictNoVIP
	VerdictMeterDrop
	VerdictRedirectSYNConn
	VerdictRedirectSYNTransit
	VerdictNoBackend
	// NumVerdicts sizes per-verdict counter arrays.
	NumVerdicts
)

// String names the verdict for exposition labels.
func (v Verdict) String() string {
	switch v {
	case VerdictForward:
		return "forward"
	case VerdictNoVIP:
		return "no_vip"
	case VerdictMeterDrop:
		return "meter_drop"
	case VerdictRedirectSYNConn:
		return "redirect_syn_conntable"
	case VerdictRedirectSYNTransit:
		return "redirect_syn_transittable"
	case VerdictNoBackend:
		return "no_backend"
	default:
		return fmt.Sprintf("verdict_%d", uint8(v))
	}
}

// InsertKind classifies how a connection reached ConnTable.
type InsertKind uint8

// Insert kinds.
const (
	// InsertLearned: the normal path — learning filter batch, CPU queue,
	// bounded-rate insertion. Its events carry the real pending window.
	InsertLearned InsertKind = iota
	// InsertDigestFP: installed inline while arbitrating a SYN that hit an
	// aliasing ConnTable entry (digest false positive, §4.2).
	InsertDigestFP
	// InsertBloomFP: installed inline while arbitrating a SYN the
	// TransitTable wrongly claimed as pending (bloom false positive, §4.3).
	InsertBloomFP
)

// String names the kind.
func (k InsertKind) String() string {
	switch k {
	case InsertLearned:
		return "learned"
	case InsertDigestFP:
		return "digest_fp"
	case InsertBloomFP:
		return "bloom_fp"
	default:
		return fmt.Sprintf("kind_%d", uint8(k))
	}
}

// InsertOutcome is what happened to one insertion attempt.
type InsertOutcome uint8

// Insert outcomes.
const (
	InsertOK        InsertOutcome = iota // entry committed
	InsertDuplicate                      // connection already installed
	InsertOverflow                       // ConnTable full; left unpinned
	// InsertRetry: the insertion hit a full ConnTable and was re-queued
	// with backoff instead of failing terminally.
	InsertRetry
	// InsertShed: the learn event was dropped at the CPU queue's hard
	// bound (Config.MaxInsertQueue); the connection stays unpinned and a
	// later packet may re-offer it.
	InsertShed
)

// String names the outcome.
func (o InsertOutcome) String() string {
	switch o {
	case InsertOK:
		return "ok"
	case InsertDuplicate:
		return "duplicate"
	case InsertOverflow:
		return "overflow"
	case InsertRetry:
		return "retry"
	case InsertShed:
		return "shed"
	default:
		return fmt.Sprintf("outcome_%d", uint8(o))
	}
}

// UpdateStep is a state transition of the 3-step PCC update (Figure 9).
type UpdateStep uint8

// Update steps.
const (
	// StepRequested: an update entered the VIP's queue.
	StepRequested UpdateStep = iota
	// StepRecording: step 1 began (t_req) — misses are recorded in the
	// TransitTable while pre-update connections drain into ConnTable.
	StepRecording
	// StepTransition: step 2 began (t_exec) — the VIPTable version swapped;
	// misses consult the TransitTable.
	StepTransition
	// StepDone: step 3 — the update completed and the filter may clear.
	StepDone
)

// String names the step.
func (s UpdateStep) String() string {
	switch s {
	case StepRequested:
		return "requested"
	case StepRecording:
		return "recording"
	case StepTransition:
		return "transition"
	case StepDone:
		return "done"
	default:
		return fmt.Sprintf("step_%d", uint8(s))
	}
}

// MeterColor mirrors regarray.Color without importing that package (the
// numeric values match: 0 green, 1 yellow, 2 red; 255 = unmetered VIP).
type MeterColor uint8

// Meter colors.
const (
	MeterGreen  MeterColor = 0
	MeterYellow MeterColor = 1
	MeterRed    MeterColor = 2
	// MeterNone marks packets of unmetered VIPs.
	MeterNone MeterColor = 255
)

// String names the color.
func (c MeterColor) String() string {
	switch c {
	case MeterGreen:
		return "green"
	case MeterYellow:
		return "yellow"
	case MeterRed:
		return "red"
	case MeterNone:
		return "none"
	default:
		return fmt.Sprintf("color_%d", uint8(c))
	}
}

// VerdictEvent reports one packet's pipeline outcome (the hardware
// verdict, before any CPU arbitration rewrites it). Beyond the counters
// the Registry folds it into, the event carries the packet's full INT-style
// decision path — which connection, which ConnTable stage matched, the
// digest, the bloom outcome, the meter color and the chosen DIP — so a
// flight recorder can reconstruct "why did this flow land on that DIP"
// per packet.
type VerdictEvent struct {
	Now     simtime.Time
	Pipe    int
	VIP     *VIPSeries // nil when the destination is not a registered VIP
	Verdict Verdict
	WireLen int  // bytes on the wire
	Wire    bool // came in as raw wire bytes (frame path), not a synthetic struct
	ConnHit bool // served from ConnTable
	Learned bool // generated a learn event

	// Trace path (INT-style annotations).
	Tuple      netproto.FiveTuple // the packet's connection
	KeyHash    uint64             // 64-bit connection key hash
	Digest     uint32             // ConnTable match digest
	Version    uint32             // DIP pool version the decision used
	DIP        netip.AddrPort     // chosen backend (zero when none)
	Stage      int                // ConnTable stage that matched; -1 on miss
	TransitHit bool               // TransitTable bloom said "pending"
	Meter      MeterColor         // meter outcome (MeterNone when unmetered)
}

// InsertEvent reports one ConnTable insertion attempt.
type InsertEvent struct {
	Now     simtime.Time
	Pipe    int
	VIP     *VIPSeries // nil if the VIP was withdrawn meanwhile
	Kind    InsertKind
	Outcome InsertOutcome
	// Tuple identifies the inserted connection and Version the pool version
	// it was pinned to (flow-trace annotations; Tuple may be zero for
	// tracers that only aggregate).
	Tuple   netproto.FiveTuple
	Version uint32
	// ArrivedAt is when the connection's first packet was seen (SYN seen);
	// Now - ArrivedAt is the pending window the paper reasons about. Only
	// meaningful for InsertLearned.
	ArrivedAt simtime.Time
	// QueueDepth is the CPU insertion queue length after this attempt.
	QueueDepth int
}

// UpdateStepEvent reports a PCC update state transition. Key, the version
// pair and the pool delta identify the update for event-journal purposes;
// aggregate tracers may ignore them.
type UpdateStepEvent struct {
	Now  simtime.Time
	Pipe int
	VIP  *VIPSeries
	Step UpdateStep
	// ReqAt is t_req (zero before StepRecording); ExecAt is t_exec (zero
	// before StepTransition).
	ReqAt  simtime.Time
	ExecAt simtime.Time
	// Key names the VIP (VIP above is only an accumulator handle).
	Key VIPKey
	// PrevVersion -> Version is the version bump this update performs
	// (meaningful from StepRecording on; equal before a version is chosen).
	PrevVersion uint32
	Version     uint32
	// Before and After are the pool contents the update moves between
	// (nil when the emitting step does not know them, e.g. StepRequested).
	Before []netip.AddrPort
	After  []netip.AddrPort
}

// LearnFlushEvent reports one learning-filter drain.
type LearnFlushEvent struct {
	Now   simtime.Time
	Pipe  int
	Batch int  // events handed to the CPU
	Full  bool // capacity-triggered (vs timeout) flush
}

// MeterDropEvent reports a packet a VIP meter marked red.
type MeterDropEvent struct {
	Now     simtime.Time
	Pipe    int
	VIP     *VIPSeries
	WireLen int
}

// CuckooOp classifies a ConnTable (cuckoo) mutation.
type CuckooOp uint8

// Cuckoo operations.
const (
	// CuckooInsert: a CPU insertion, possibly after a displacement (kick)
	// chain freed a slot.
	CuckooInsert CuckooOp = iota
	// CuckooRelocate: an entry migrated to a different stage to resolve a
	// digest alias (the paper's SYN-collision fix).
	CuckooRelocate
	// CuckooDelete: an entry removed (connection ended or aged out).
	CuckooDelete
)

// String names the operation.
func (o CuckooOp) String() string {
	switch o {
	case CuckooInsert:
		return "insert"
	case CuckooRelocate:
		return "relocate"
	case CuckooDelete:
		return "delete"
	default:
		return fmt.Sprintf("op_%d", uint8(o))
	}
}

// CuckooEvent reports one ConnTable mutation with the paper's §4.1-4.2
// hardware detail: the BFS kick-chain length of an insertion, alias
// relocations, and the resulting occupancy. The control plane emits it for
// every InsertConn/Relocate/DeleteConn it performs.
type CuckooEvent struct {
	Now     simtime.Time
	Pipe    int
	Op      CuckooOp
	KeyHash uint64
	Digest  uint32
	Version uint32
	// Moves is the displacement (kick) chain length of an insertion: 0 for
	// a direct placement, n when n occupants were shifted to make room.
	Moves int
	// Relocations is how many aliasing entries this operation migrated to
	// another stage (post-insert verification or SYN arbitration).
	Relocations int
	// OK is false when the operation failed (table full, unresolved alias).
	OK bool
	// Len and Capacity give the table occupancy after the operation.
	Len      int
	Capacity int
	// Effective is the effective capacity after any injected occupancy
	// limit (0 on events predating the limit plumbing); the SLO engine's
	// occupancy forecaster measures time-to-exhaustion against it.
	Effective int
}

// DegradedEvent reports a dataplane degraded-mode transition: the pipe's
// ConnTable occupancy crossed a configured watermark, so new flows switch
// between stateful (learned) and stateless (version-hash) service.
type DegradedEvent struct {
	Now      simtime.Time
	Pipe     int
	Degraded bool // true = entered degraded mode, false = recovered
	// Entries and Capacity give the ConnTable occupancy at the transition
	// (Capacity is the effective capacity, after any injected limit).
	Entries  int
	Capacity int
}

// FaultEvent reports one injected fault (internal/faults) taking effect.
type FaultEvent struct {
	Now  simtime.Time
	Pipe int    // target pipe; -1 = every pipe
	Kind string // fault kind label (e.g. "dip_down", "cpu_stall")
	// DIP is set for DIP faults; zero otherwise.
	DIP netip.AddrPort
	// Duration, Scale and Limit carry the fault's parameters where they
	// apply (stall/slowdown length, rate or loss scale, table limit).
	Duration simtime.Duration
	Scale    float64
	Limit    int
}

// ReconcileStep identifies one event from the desired-state reconciler
// (internal/intent).
type ReconcileStep uint8

const (
	// ReconcileRound marks one reconcile round over the due work.
	ReconcileRound ReconcileStep = iota
	// ReconcileApply marks one write (add/update/remove) applied to a target.
	ReconcileApply
	// ReconcileNoop marks a key whose observed state already matched the
	// desired state (zero writes).
	ReconcileNoop
	// ReconcileRetry marks a failed apply requeued with backoff.
	ReconcileRetry
	// ReconcileRollback marks a previously-applied target rolled back to
	// the prior desired state after a partial fleet failure.
	ReconcileRollback
	// ReconcileError marks a key entering the Error condition (retry
	// budget exhausted).
	ReconcileError
	// ReconcileDrift marks observed state diverging from desired state
	// outside an apply (detected by a drift scan).
	ReconcileDrift
)

var reconcileStepNames = [...]string{"round", "apply", "noop", "retry", "rollback", "error", "drift"}

func (s ReconcileStep) String() string {
	if int(s) < len(reconcileStepNames) {
		return reconcileStepNames[s]
	}
	return "unknown"
}

// ReconcileEvent reports one desired-state reconciler step.
type ReconcileEvent struct {
	Now simtime.Time
	// Member is the fleet member index the event applies to (0 for a
	// standalone switch; -1 for fleet-level events).
	Member int
	Step   ReconcileStep
	// VIP is the key being reconciled; zero for Round events.
	VIP VIPKey
	// Op labels the write for Apply steps: "add", "update" or "remove".
	Op string
	// Generation is the desired-state generation driving the event.
	Generation uint64
	// Retries is the key's retry count so far (Retry/Error steps).
	Retries int
	// Latency is desired-set to applied for Apply steps; zero otherwise.
	Latency simtime.Duration
	// Err carries the failure for Retry/Error steps.
	Err string
}

// HandoffStep identifies one event from the connection-state handoff
// machinery (internal/handoff).
type HandoffStep uint8

const (
	// HandoffBegin marks a transfer starting: Entries carries the snapshot
	// size, Cursor the donor's journal sequence at capture.
	HandoffBegin HandoffStep = iota
	// HandoffChunk marks one bounded snapshot chunk pulled from the donor.
	HandoffChunk
	// HandoffDelta marks a delta round replayed (inserts/deletes that
	// landed on the donor while the snapshot was in flight).
	HandoffDelta
	// HandoffRetry marks an imported entry re-queued with backoff after
	// the receiver's ConnTable insert hit ErrTableFull.
	HandoffRetry
	// HandoffDone marks a converged transfer; Duration is begin-to-done.
	HandoffDone
	// HandoffCancel marks an abandoned transfer (stall rollback).
	HandoffCancel
)

var handoffStepNames = [...]string{"begin", "chunk", "delta", "retry", "done", "cancel"}

func (s HandoffStep) String() string {
	if int(s) < len(handoffStepNames) {
		return handoffStepNames[s]
	}
	return "unknown"
}

// HandoffEvent reports one connection-state handoff step.
type HandoffEvent struct {
	Now simtime.Time
	// Donor and Receiver are fleet member indices (-1 when not applicable,
	// e.g. an import retry that only knows the receiving switch).
	Donor    int
	Receiver int
	Step     HandoffStep
	// Entries is the step's entry count: snapshot size at Begin, chunk
	// size at Chunk, total imported at Done/Cancel.
	Entries int
	// Deltas is the delta-record count (Delta/Done/Cancel steps).
	Deltas int
	// Cursor is the donor's journal sequence (Begin/Done steps).
	Cursor uint64
	// Duration is begin-to-finish for Done/Cancel steps.
	Duration simtime.Duration
}

// Tracer receives events from the traced components. Implementations must
// be safe for concurrent use from multiple pipes. The Registry in this
// package is the default implementation; custom tracers can embed
// NopTracer and override the hooks they care about.
type Tracer interface {
	// RegisterVIP returns the per-(pipe, VIP) hot-path accumulator that
	// subsequent events for this VIP on this pipe will carry, or nil to
	// disable per-VIP accounting. Called once per VIP installation per
	// pipe; re-registering the same (pipe, VIP) returns the same series,
	// so counters stay cumulative across VIP re-announcements.
	RegisterVIP(pipe int, vip VIPKey) *VIPSeries

	OnVerdict(e VerdictEvent)
	OnInsert(e InsertEvent)
	OnUpdateStep(e UpdateStepEvent)
	OnLearnFlush(e LearnFlushEvent)
	OnMeterDrop(e MeterDropEvent)
	// OnCuckoo reports ConnTable mutations with kick-chain and relocation
	// detail (§4.1-4.2 hardware behaviour invisible to the other hooks).
	OnCuckoo(e CuckooEvent)
	// OnDegraded reports dataplane degraded-mode transitions (occupancy
	// watermark crossings).
	OnDegraded(e DegradedEvent)
	// OnFault reports injected faults from the fault-injection layer.
	OnFault(e FaultEvent)
	// OnReconcile reports desired-state reconciler steps (internal/intent).
	OnReconcile(e ReconcileEvent)
	// OnHandoff reports connection-state transfer steps (internal/handoff).
	OnHandoff(e HandoffEvent)
}

// NopTracer is a Tracer that ignores everything; embed it to implement
// only a subset of the hooks.
type NopTracer struct{}

// RegisterVIP implements Tracer.
func (NopTracer) RegisterVIP(int, VIPKey) *VIPSeries { return nil }

// OnVerdict implements Tracer.
func (NopTracer) OnVerdict(VerdictEvent) {}

// OnInsert implements Tracer.
func (NopTracer) OnInsert(InsertEvent) {}

// OnUpdateStep implements Tracer.
func (NopTracer) OnUpdateStep(UpdateStepEvent) {}

// OnLearnFlush implements Tracer.
func (NopTracer) OnLearnFlush(LearnFlushEvent) {}

// OnMeterDrop implements Tracer.
func (NopTracer) OnMeterDrop(MeterDropEvent) {}

// OnCuckoo implements Tracer.
func (NopTracer) OnCuckoo(CuckooEvent) {}

// OnDegraded implements Tracer.
func (NopTracer) OnDegraded(DegradedEvent) {}

// OnFault implements Tracer.
func (NopTracer) OnFault(FaultEvent) {}

// OnReconcile implements Tracer.
func (NopTracer) OnReconcile(ReconcileEvent) {}

// OnHandoff implements Tracer.
func (NopTracer) OnHandoff(HandoffEvent) {}
