package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/simtime"
)

// Built-in instrument names. All durations are histograms over virtual
// seconds; counters follow the Prometheus _total convention.
const (
	// MetricPendingWindow is the paper's §4.2 quantity: virtual seconds
	// from a connection's first packet (SYN seen) to its ConnTable entry
	// committing on the CPU. Learned insertions only.
	MetricPendingWindow = "silkroad_insert_pending_window_seconds"
	// MetricInsertsLearned counts insertions that went through the
	// learning filter and the bounded-rate CPU queue.
	MetricInsertsLearned = "silkroad_inserts_learned_total"
	// MetricDigestCollisions counts connections installed inline after a
	// SYN hit an aliasing ConnTable entry (digest false positive).
	MetricDigestCollisions = "silkroad_digest_collisions_total"
	// MetricBloomFPs counts connections installed inline after a
	// TransitTable bloom false positive.
	MetricBloomFPs = "silkroad_bloom_false_positives_total"
	// MetricInsertDuplicates counts insertion attempts that found the
	// connection already installed.
	MetricInsertDuplicates = "silkroad_insert_duplicates_total"
	// MetricInsertOverflows counts insertion attempts rejected because
	// ConnTable was full.
	MetricInsertOverflows = "silkroad_insert_overflows_total"
	// MetricInsertQueueDepth is the CPU insertion queue length after the
	// most recent insertion event.
	MetricInsertQueueDepth = "silkroad_insert_queue_depth"
	// MetricInsertQueuePeak is the high-water mark of the insertion queue.
	MetricInsertQueuePeak = "silkroad_insert_queue_peak"
	// MetricUpdatesRequested counts PCC update requests entering VIP queues.
	MetricUpdatesRequested = "silkroad_updates_requested_total"
	// MetricUpdatesCompleted counts updates that finished step 3.
	MetricUpdatesCompleted = "silkroad_updates_completed_total"
	// MetricUpdateRecord is step 1's duration: t_req to t_exec, the time
	// spent waiting for pre-update connections to drain into ConnTable.
	MetricUpdateRecord = "silkroad_update_record_seconds"
	// MetricUpdateTransition is step 2's duration: t_exec until the
	// TransitTable could stop arbitrating.
	MetricUpdateTransition = "silkroad_update_transition_seconds"
	// MetricUpdateTotal is the full t_req-to-done update latency.
	MetricUpdateTotal = "silkroad_update_total_seconds"
	// MetricLearnFlushes counts learning-filter drains.
	MetricLearnFlushes = "silkroad_learn_flushes_total"
	// MetricLearnFullFlushes counts drains triggered by capacity rather
	// than timeout.
	MetricLearnFullFlushes = "silkroad_learn_full_flushes_total"
	// MetricLearnBatch is the batch-size distribution of filter drains.
	MetricLearnBatch = "silkroad_learn_batch_size"
	// MetricMeterDropBytes counts wire bytes dropped by VIP meters.
	MetricMeterDropBytes = "silkroad_meter_dropped_bytes_total"
	// MetricCuckooKickChain is the displacement-chain length distribution of
	// ConnTable insertions (0 = direct placement; §4.1's BFS moves).
	MetricCuckooKickChain = "silkroad_cuckoo_kick_chain_moves"
	// MetricCuckooRelocations counts entries migrated to another stage to
	// resolve digest aliases (§4.2).
	MetricCuckooRelocations = "silkroad_cuckoo_relocations_total"
	// MetricCuckooFailures counts ConnTable mutations that failed (no
	// insertion path, unresolved alias).
	MetricCuckooFailures = "silkroad_cuckoo_failures_total"
	// MetricConnTableOccupancy is ConnTable entries per million slots after
	// the most recent mutation (chip-wide last-writer-wins across pipes).
	MetricConnTableOccupancy = "silkroad_conntable_occupancy_ppm"
	// MetricInsertRetries counts insertions that hit a full ConnTable and
	// were re-queued with backoff instead of failing terminally.
	MetricInsertRetries = "silkroad_insert_retries_total"
	// MetricInsertSheds counts learn events dropped at the CPU insertion
	// queue's hard bound (Config.MaxInsertQueue).
	MetricInsertSheds = "silkroad_insert_sheds_total"
	// MetricDegradedTransitions counts dataplane degraded-mode transitions
	// (both directions: entering and leaving degraded service).
	MetricDegradedTransitions = "silkroad_degraded_transitions_total"
	// MetricDegradedPipes is the number of pipes currently in degraded mode
	// (new flows served stateless because ConnTable is past its watermark).
	MetricDegradedPipes = "silkroad_degraded_pipes"
	// MetricFaultsInjected counts faults applied by the injection layer.
	MetricFaultsInjected = "silkroad_faults_injected_total"
	// MetricReconcileRounds counts reconcile rounds run by the
	// desired-state controller (internal/intent).
	MetricReconcileRounds = "silkroad_reconcile_rounds_total"
	// MetricReconcileApplies counts writes (add/update/remove) the
	// reconciler issued against targets.
	MetricReconcileApplies = "silkroad_reconcile_applies_total"
	// MetricReconcileNoops counts keys found already converged (zero
	// writes issued).
	MetricReconcileNoops = "silkroad_reconcile_noops_total"
	// MetricReconcileRetries counts failed applies requeued with backoff.
	MetricReconcileRetries = "silkroad_reconcile_retries_total"
	// MetricReconcileRollbacks counts targets rolled back to the prior
	// desired state after a partial fleet failure.
	MetricReconcileRollbacks = "silkroad_reconcile_rollbacks_total"
	// MetricReconcileErrors counts keys entering the Error condition.
	MetricReconcileErrors = "silkroad_reconcile_errors_total"
	// MetricReconcileDrift counts observed-vs-desired divergences found by
	// drift scans.
	MetricReconcileDrift = "silkroad_reconcile_drift_detected_total"
	// MetricReconcileApplyLatency is desired-set to applied latency in
	// virtual seconds, per successfully applied key.
	MetricReconcileApplyLatency = "silkroad_reconcile_apply_latency_seconds"

	// MetricHandoffExported counts ConnTable entries pulled from donors
	// during connection-state transfers (snapshot chunks + delta records).
	MetricHandoffExported = "silkroad_handoff_entries_exported_total"
	// MetricHandoffImported counts entries accepted by receivers.
	MetricHandoffImported = "silkroad_handoff_entries_imported_total"
	// MetricHandoffDeltas counts delta records replayed (inserts/deletes
	// that landed on the donor while a snapshot was in flight).
	MetricHandoffDeltas = "silkroad_handoff_delta_replays_total"
	// MetricHandoffChunks counts bounded snapshot chunks transferred.
	MetricHandoffChunks = "silkroad_handoff_chunks_total"
	// MetricHandoffRetries counts imported entries re-queued with backoff
	// after the receiver's ConnTable insert hit ErrTableFull.
	MetricHandoffRetries = "silkroad_handoff_import_retries_total"
	// MetricHandoffDuration is begin-to-converged transfer duration in
	// virtual seconds.
	MetricHandoffDuration = "silkroad_handoff_duration_seconds"
)

// Default histogram bounds. Virtual-time histograms span 10 µs to 1 s,
// bracketing the paper's pending windows (sub-millisecond learning filter
// timeouts up to multi-millisecond insertion backlogs).
var (
	durationBounds = []float64{
		10e-6, 30e-6, 100e-6, 300e-6, 1e-3, 3e-3, 10e-3, 30e-3, 100e-3, 300e-3, 1,
	}
	batchBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	kickBounds  = []float64{0, 1, 2, 4, 8, 16, 32, 64}
)

// pipeSeries is the per-pipe accumulator behind OnVerdict, plus the
// occupancy tap fed by OnCuckoo/OnDegraded: the last reported ConnTable
// entry count, effective capacity and degraded flag, readable without any
// lock the packet path shares (plain atomics).
type pipeSeries struct {
	packets  Counter
	bytes    Counter
	verdicts [NumVerdicts]Counter

	connEntries  Gauge
	connCapacity Gauge
	degraded     Gauge // 0 or 1
}

// PipeSnapshot is the serializable per-pipe view.
type PipeSnapshot struct {
	Pipe     int               `json:"pipe"`
	Packets  uint64            `json:"packets"`
	Bytes    uint64            `json:"bytes"`
	Verdicts map[string]uint64 `json:"verdicts"`
	// ConnEntries/ConnCapacity mirror the pipe's ConnTable occupancy after
	// its most recent mutation (effective capacity, post injected limits).
	ConnEntries  int64 `json:"conn_entries"`
	ConnCapacity int64 `json:"conn_capacity"`
	Degraded     bool  `json:"degraded,omitempty"`
}

type vipPipeKey struct {
	vip  VIPKey
	pipe int
}

// Registry is the default Tracer: it folds the event stream into named
// counters, gauges and histograms plus per-VIP and per-pipe series, all
// updated with atomic operations so hooks may fire concurrently from
// every pipe while Snapshot scrapes.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	vips     map[vipPipeKey]*VIPSeries
	vipKeys  map[VIPKey]bool

	// build-info and process-start metadata for exposition; set once at
	// startup (cmd/silkroadd), read under mu at Snapshot.
	build        *BuildInfo
	processStart float64

	// pipes is copy-on-write: hooks load the slice atomically and index
	// it; registration of a new pipe swaps in a grown copy under mu.
	pipes atomic.Pointer[[]*pipeSeries]

	// cached built-ins, so hooks never consult the name maps.
	insertsLearned, digestFPs, bloomFPs *Counter
	insertDups, insertOverflows         *Counter
	insertRetries, insertSheds          *Counter
	updatesRequested, updatesCompleted  *Counter
	learnFlushes, learnFullFlushes      *Counter
	meterDropBytes                      *Counter
	cuckooRelocations, cuckooFailures   *Counter
	degradedTransitions, faultsInjected *Counter
	queueDepth, queuePeak               *Gauge
	connOccupancy, degradedPipes        *Gauge
	pendingWindow, learnBatch           *Histogram
	updRecord, updTransition, updTotal  *Histogram
	kickChain                           *Histogram
	reconcileRounds, reconcileApplies   *Counter
	reconcileNoops, reconcileRetries    *Counter
	reconcileRollbacks, reconcileErrors *Counter
	reconcileDrift                      *Counter
	reconcileApplyLatency               *Histogram
	handoffExported, handoffImported    *Counter
	handoffDeltas, handoffChunks        *Counter
	handoffRetries                      *Counter
	handoffDuration                     *Histogram
}

// NewRegistry creates a registry with every built-in instrument
// pre-registered.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		vips:     make(map[vipPipeKey]*VIPSeries),
		vipKeys:  make(map[VIPKey]bool),
	}
	empty := make([]*pipeSeries, 0)
	r.pipes.Store(&empty)

	r.insertsLearned = r.Counter(MetricInsertsLearned)
	r.digestFPs = r.Counter(MetricDigestCollisions)
	r.bloomFPs = r.Counter(MetricBloomFPs)
	r.insertDups = r.Counter(MetricInsertDuplicates)
	r.insertOverflows = r.Counter(MetricInsertOverflows)
	r.updatesRequested = r.Counter(MetricUpdatesRequested)
	r.updatesCompleted = r.Counter(MetricUpdatesCompleted)
	r.learnFlushes = r.Counter(MetricLearnFlushes)
	r.learnFullFlushes = r.Counter(MetricLearnFullFlushes)
	r.meterDropBytes = r.Counter(MetricMeterDropBytes)
	r.queueDepth = r.Gauge(MetricInsertQueueDepth)
	r.queuePeak = r.Gauge(MetricInsertQueuePeak)
	r.pendingWindow = r.Histogram(MetricPendingWindow, durationBounds)
	r.learnBatch = r.Histogram(MetricLearnBatch, batchBounds)
	r.updRecord = r.Histogram(MetricUpdateRecord, durationBounds)
	r.updTransition = r.Histogram(MetricUpdateTransition, durationBounds)
	r.updTotal = r.Histogram(MetricUpdateTotal, durationBounds)
	r.cuckooRelocations = r.Counter(MetricCuckooRelocations)
	r.cuckooFailures = r.Counter(MetricCuckooFailures)
	r.connOccupancy = r.Gauge(MetricConnTableOccupancy)
	r.kickChain = r.Histogram(MetricCuckooKickChain, kickBounds)
	r.insertRetries = r.Counter(MetricInsertRetries)
	r.insertSheds = r.Counter(MetricInsertSheds)
	r.degradedTransitions = r.Counter(MetricDegradedTransitions)
	r.faultsInjected = r.Counter(MetricFaultsInjected)
	r.degradedPipes = r.Gauge(MetricDegradedPipes)
	r.reconcileRounds = r.Counter(MetricReconcileRounds)
	r.reconcileApplies = r.Counter(MetricReconcileApplies)
	r.reconcileNoops = r.Counter(MetricReconcileNoops)
	r.reconcileRetries = r.Counter(MetricReconcileRetries)
	r.reconcileRollbacks = r.Counter(MetricReconcileRollbacks)
	r.reconcileErrors = r.Counter(MetricReconcileErrors)
	r.reconcileDrift = r.Counter(MetricReconcileDrift)
	r.reconcileApplyLatency = r.Histogram(MetricReconcileApplyLatency, durationBounds)
	r.handoffExported = r.Counter(MetricHandoffExported)
	r.handoffImported = r.Counter(MetricHandoffImported)
	r.handoffDeltas = r.Counter(MetricHandoffDeltas)
	r.handoffChunks = r.Counter(MetricHandoffChunks)
	r.handoffRetries = r.Counter(MetricHandoffRetries)
	r.handoffDuration = r.Histogram(MetricHandoffDuration, durationBounds)
	return r
}

// Counter returns the named counter, creating it on first use. Safe to
// call at setup time; cache the result for hot paths.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (bounds are ignored if the name already exists).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// pipe returns pipe i's series, growing the pipe table if needed. The
// fast path is one atomic load and an index.
func (r *Registry) pipe(i int) *pipeSeries {
	if i < 0 {
		i = 0
	}
	ps := *r.pipes.Load()
	if i < len(ps) {
		return ps[i]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ps = *r.pipes.Load()
	if i < len(ps) {
		return ps[i]
	}
	grown := make([]*pipeSeries, i+1)
	copy(grown, ps)
	for j := len(ps); j <= i; j++ {
		grown[j] = &pipeSeries{}
	}
	r.pipes.Store(&grown)
	return grown[i]
}

// RegisterVIP implements Tracer: it returns the (pipe, VIP) series,
// creating it on first registration.
func (r *Registry) RegisterVIP(pipe int, vip VIPKey) *VIPSeries {
	r.pipe(pipe) // ensure the pipe exists before traffic arrives
	r.mu.Lock()
	defer r.mu.Unlock()
	k := vipPipeKey{vip: vip, pipe: pipe}
	s, ok := r.vips[k]
	if !ok {
		s = &VIPSeries{}
		r.vips[k] = s
		r.vipKeys[vip] = true
	}
	return s
}

// OnVerdict implements Tracer.
func (r *Registry) OnVerdict(e VerdictEvent) {
	p := r.pipe(e.Pipe)
	p.packets.Inc()
	p.bytes.Add(uint64(e.WireLen))
	if e.Verdict < NumVerdicts {
		p.verdicts[e.Verdict].Inc()
	}
	if v := e.VIP; v != nil {
		v.Packets.Inc()
		v.Bytes.Add(uint64(e.WireLen))
		if e.ConnHit {
			v.ConnHits.Inc()
		}
		if e.Learned {
			v.Learns.Inc()
		}
		if e.Verdict == VerdictNoBackend {
			v.NoBackend.Inc()
		}
	}
}

// OnInsert implements Tracer.
func (r *Registry) OnInsert(e InsertEvent) {
	r.queueDepth.Set(int64(e.QueueDepth))
	r.queuePeak.SetMax(int64(e.QueueDepth))
	switch e.Outcome {
	case InsertDuplicate:
		r.insertDups.Inc()
		return
	case InsertOverflow:
		r.insertOverflows.Inc()
		return
	case InsertRetry:
		r.insertRetries.Inc()
		return
	case InsertShed:
		r.insertSheds.Inc()
		return
	}
	switch e.Kind {
	case InsertLearned:
		r.insertsLearned.Inc()
		r.pendingWindow.Observe(e.Now.Sub(e.ArrivedAt).Seconds())
	case InsertDigestFP:
		r.digestFPs.Inc()
	case InsertBloomFP:
		r.bloomFPs.Inc()
	}
	if e.VIP != nil {
		e.VIP.Conns.Inc()
	}
}

// OnUpdateStep implements Tracer.
func (r *Registry) OnUpdateStep(e UpdateStepEvent) {
	switch e.Step {
	case StepRequested:
		r.updatesRequested.Inc()
	case StepTransition:
		r.updRecord.Observe(e.Now.Sub(e.ReqAt).Seconds())
	case StepDone:
		r.updatesCompleted.Inc()
		if e.ExecAt != 0 || e.ReqAt != 0 {
			r.updTransition.Observe(e.Now.Sub(e.ExecAt).Seconds())
			r.updTotal.Observe(e.Now.Sub(e.ReqAt).Seconds())
		}
	}
}

// OnLearnFlush implements Tracer.
func (r *Registry) OnLearnFlush(e LearnFlushEvent) {
	r.learnFlushes.Inc()
	if e.Full {
		r.learnFullFlushes.Inc()
	}
	r.learnBatch.Observe(float64(e.Batch))
}

// OnCuckoo implements Tracer: kick-chain distribution, relocation and
// failure counters, the post-mutation occupancy gauge, and the per-pipe
// occupancy tap the SLO forecaster reads.
func (r *Registry) OnCuckoo(e CuckooEvent) {
	if e.Op == CuckooInsert {
		r.kickChain.Observe(float64(e.Moves))
	}
	if e.Relocations > 0 {
		r.cuckooRelocations.Add(uint64(e.Relocations))
	}
	if !e.OK {
		r.cuckooFailures.Inc()
	}
	if e.Capacity > 0 {
		r.connOccupancy.Set(int64(e.Len) * 1_000_000 / int64(e.Capacity))
	}
	eff := e.Effective
	if eff == 0 {
		eff = e.Capacity
	}
	if eff > 0 {
		p := r.pipe(e.Pipe)
		p.connEntries.Set(int64(e.Len))
		p.connCapacity.Set(int64(eff))
	}
}

// OnDegraded implements Tracer: counts transitions and tracks how many
// pipes are currently degraded, per pipe and chip-wide.
func (r *Registry) OnDegraded(e DegradedEvent) {
	r.degradedTransitions.Inc()
	p := r.pipe(e.Pipe)
	if e.Degraded {
		r.degradedPipes.Add(1)
		p.degraded.Set(1)
	} else {
		r.degradedPipes.Add(-1)
		p.degraded.Set(0)
	}
	if e.Capacity > 0 {
		p.connEntries.Set(int64(e.Entries))
		p.connCapacity.Set(int64(e.Capacity))
	}
}

// OnFault implements Tracer.
func (r *Registry) OnFault(FaultEvent) {
	r.faultsInjected.Inc()
}

// OnReconcile implements Tracer: folds reconciler steps into the
// reconcile counters and the apply-latency histogram.
func (r *Registry) OnReconcile(e ReconcileEvent) {
	switch e.Step {
	case ReconcileRound:
		r.reconcileRounds.Inc()
	case ReconcileApply:
		r.reconcileApplies.Inc()
		r.reconcileApplyLatency.Observe(e.Latency.Seconds())
	case ReconcileNoop:
		r.reconcileNoops.Inc()
	case ReconcileRetry:
		r.reconcileRetries.Inc()
	case ReconcileRollback:
		r.reconcileRollbacks.Inc()
	case ReconcileError:
		r.reconcileErrors.Inc()
	case ReconcileDrift:
		r.reconcileDrift.Inc()
	}
}

// OnHandoff implements Tracer: folds connection-state transfer steps into
// the handoff counters and the duration histogram.
func (r *Registry) OnHandoff(e HandoffEvent) {
	switch e.Step {
	case HandoffChunk:
		r.handoffChunks.Inc()
		r.handoffExported.Add(uint64(e.Entries))
	case HandoffDelta:
		r.handoffDeltas.Add(uint64(e.Deltas))
		r.handoffExported.Add(uint64(e.Deltas))
	case HandoffRetry:
		r.handoffRetries.Inc()
	case HandoffDone:
		r.handoffImported.Add(uint64(e.Entries))
		r.handoffDuration.Observe(e.Duration.Seconds())
	}
}

// OnMeterDrop implements Tracer.
func (r *Registry) OnMeterDrop(e MeterDropEvent) {
	r.meterDropBytes.Add(uint64(e.WireLen))
	if e.VIP != nil {
		e.VIP.MeterDrops.Inc()
		e.VIP.MeterBytes.Add(uint64(e.WireLen))
	}
}

// Snapshot is a consistent-enough point-in-time copy of every instrument:
// each individual counter is read atomically, so every value in a later
// snapshot is >= the same value in an earlier one (monotonicity), though
// values read while traffic runs may be skewed by in-flight packets
// relative to one another.
type Snapshot struct {
	// Now is the caller-supplied virtual timestamp of the scrape.
	Now simtime.Time `json:"now_ns"`
	// Elapsed is set by Delta: the virtual time between the snapshots.
	Elapsed    simtime.Duration             `json:"elapsed_ns,omitempty"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	VIPs       map[string]VIPSnapshot       `json:"vips"`
	Pipes      []PipeSnapshot               `json:"pipes"`
	// Build and ProcessStart carry process metadata when the registry was
	// stamped with SetBuildInfo/SetProcessStart (cmd/silkroadd does both).
	Build        *BuildInfo `json:"build,omitempty"`
	ProcessStart float64    `json:"process_start_unix_seconds,omitempty"`
}

// BuildInfo labels the running binary for the silkroad_build_info metric.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"goversion"`
}

// SetBuildInfo stamps the registry with the binary's version labels,
// exposed as the silkroad_build_info gauge (constant 1).
func (r *Registry) SetBuildInfo(version, goVersion string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.build = &BuildInfo{Version: version, GoVersion: goVersion}
}

// SetProcessStart stamps the process start time (Unix seconds), exposed as
// silkroad_process_start_time_seconds.
func (r *Registry) SetProcessStart(unixSeconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.processStart = unixSeconds
}

// Snapshot captures every instrument at virtual time now.
func (r *Registry) Snapshot(now simtime.Time) Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	vips := make(map[vipPipeKey]*VIPSeries, len(r.vips))
	for k, v := range r.vips {
		vips[k] = v
	}
	build := r.build
	processStart := r.processStart
	r.mu.Unlock()

	s := Snapshot{
		Now:        now,
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
		VIPs:       make(map[string]VIPSnapshot),
	}
	if build != nil {
		b := *build
		s.Build = &b
	}
	s.ProcessStart = processStart
	for n, c := range counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Load()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	for k, v := range vips {
		label := k.vip.String()
		agg := s.VIPs[label]
		v.snapshotInto(&agg)
		s.VIPs[label] = agg
	}
	for i, p := range *r.pipes.Load() {
		ps := PipeSnapshot{
			Pipe:         i,
			Packets:      p.packets.Load(),
			Bytes:        p.bytes.Load(),
			Verdicts:     make(map[string]uint64, NumVerdicts),
			ConnEntries:  p.connEntries.Load(),
			ConnCapacity: p.connCapacity.Load(),
			Degraded:     p.degraded.Load() != 0,
		}
		for v := Verdict(0); v < NumVerdicts; v++ {
			if n := p.verdicts[v].Load(); n > 0 {
				ps.Verdicts[v.String()] = n
			}
		}
		s.Pipes = append(s.Pipes, ps)
	}
	return s
}

// Delta returns the change from prev to s: counters, histogram buckets
// and per-VIP/per-pipe series are subtracted, gauges keep their current
// values, and Elapsed carries the virtual time between the scrapes. Use
// it to derive rates over virtual time:
//
//	d := cur.Delta(prev)
//	pps := float64(d.Counters[name]) / d.Elapsed.Seconds()
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Now:        s.Now,
		Elapsed:    s.Now.Sub(prev.Now),
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
		VIPs:       make(map[string]VIPSnapshot, len(s.VIPs)),
	}
	for n, v := range s.Counters {
		out.Counters[n] = v - prev.Counters[n]
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, h := range s.Histograms {
		if ph, ok := prev.Histograms[n]; ok {
			out.Histograms[n] = h.Delta(ph)
		} else {
			out.Histograms[n] = h
		}
	}
	for n, v := range s.VIPs {
		out.VIPs[n] = v.sub(prev.VIPs[n])
	}
	out.Build = s.Build
	out.ProcessStart = s.ProcessStart
	for i, p := range s.Pipes {
		// Occupancy fields keep gauge semantics: the delta reports the
		// current values, not a difference.
		d := PipeSnapshot{Pipe: p.Pipe, Packets: p.Packets, Bytes: p.Bytes,
			ConnEntries: p.ConnEntries, ConnCapacity: p.ConnCapacity, Degraded: p.Degraded,
			Verdicts: make(map[string]uint64, len(p.Verdicts))}
		for k, v := range p.Verdicts {
			d.Verdicts[k] = v
		}
		if i < len(prev.Pipes) {
			d.Packets -= prev.Pipes[i].Packets
			d.Bytes -= prev.Pipes[i].Bytes
			for k, v := range prev.Pipes[i].Verdicts {
				d.Verdicts[k] -= v
			}
		}
		out.Pipes = append(out.Pipes, d)
	}
	return out
}

// sortedKeys returns m's keys in ascending order (for deterministic
// exposition).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
