package telemetry

import (
	"math"
	"sync/atomic"

	"repro/internal/stats"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket atomic histogram with the same bucket rule
// as internal/stats.Histogram: a value v lands in the first bucket whose
// upper bound satisfies v <= bound, or in the final overflow bucket.
// Snapshots convert losslessly to *stats.Histogram for analysis.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is overflow
	total   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram creates a histogram with the given strictly ascending
// bucket upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search like sort.SearchFloat64s, inlined to keep the hot path
	// free of interface calls.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// SnapshotInto captures the histogram's current state into s, reusing
// s.Bounds and s.Counts when their capacity suffices — the allocation-free
// form of Snapshot for periodic samplers (the SLO engine's delta ring).
func (h *Histogram) SnapshotInto(s *HistogramSnapshot) {
	if cap(s.Bounds) < len(h.bounds) {
		s.Bounds = make([]float64, len(h.bounds))
	}
	s.Bounds = s.Bounds[:len(h.bounds)]
	copy(s.Bounds, h.bounds)
	if cap(s.Counts) < len(h.counts) {
		s.Counts = make([]int64, len(h.counts))
	}
	s.Counts = s.Counts[:len(h.counts)]
	s.Count = 0
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
}

// HistogramSnapshot is a point-in-time copy of a Histogram, serializable
// to JSON and convertible to the stats toolkit's histogram type.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Histogram converts the snapshot into an internal/stats.Histogram so the
// evaluation toolkit's bucket/fraction helpers apply to live telemetry.
func (s HistogramSnapshot) Histogram() *stats.Histogram {
	return stats.NewHistogramFromCounts(s.Bounds, s.Counts)
}

// Mean returns the average observed value, or 0 with no samples.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Delta returns the bucket-wise difference s - prev (counter semantics:
// both snapshots must come from the same histogram, s taken later).
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: append([]int64(nil), s.Counts...),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
	}
	for i := range out.Counts {
		if i < len(prev.Counts) {
			out.Counts[i] -= prev.Counts[i]
		}
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// attributing each bucket's mass to its upper bound (overflow samples
// report +Inf). It returns 0 with no samples.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// VIPSeries is the per-(pipe, VIP) hot-path accumulator. Components that
// install a VIP resolve the series once through Tracer.RegisterVIP and
// then update it with plain atomic operations — no map lookups and no
// allocations on the packet path. The Registry's hooks update the same
// fields when events carry the series, so both sides see one set of
// numbers.
type VIPSeries struct {
	Packets    Counter // packets addressed to the VIP (post-meter included)
	Bytes      Counter // wire bytes of those packets
	ConnHits   Counter // served from ConnTable
	Learns     Counter // learn events generated
	NoBackend  Counter // drops because the pool version was empty
	MeterDrops Counter // packets the VIP meter marked red
	MeterBytes Counter // wire bytes of those drops
	Conns      Counter // connections installed into ConnTable
	ConnsEnded Counter // connections terminated or aged out
}

// VIPSnapshot is the serializable per-VIP aggregate (summed over pipes).
type VIPSnapshot struct {
	Packets    uint64 `json:"packets"`
	Bytes      uint64 `json:"bytes"`
	ConnHits   uint64 `json:"conn_hits"`
	Learns     uint64 `json:"learns"`
	NoBackend  uint64 `json:"no_backend"`
	MeterDrops uint64 `json:"meter_drops"`
	MeterBytes uint64 `json:"meter_bytes"`
	Conns      uint64 `json:"conns"`
	ConnsEnded uint64 `json:"conns_ended"`
}

func (v *VIPSeries) snapshotInto(s *VIPSnapshot) {
	s.Packets += v.Packets.Load()
	s.Bytes += v.Bytes.Load()
	s.ConnHits += v.ConnHits.Load()
	s.Learns += v.Learns.Load()
	s.NoBackend += v.NoBackend.Load()
	s.MeterDrops += v.MeterDrops.Load()
	s.MeterBytes += v.MeterBytes.Load()
	s.Conns += v.Conns.Load()
	s.ConnsEnded += v.ConnsEnded.Load()
}

// sub subtracts prev from s field-wise (delta semantics).
func (s VIPSnapshot) sub(prev VIPSnapshot) VIPSnapshot {
	return VIPSnapshot{
		Packets:    s.Packets - prev.Packets,
		Bytes:      s.Bytes - prev.Bytes,
		ConnHits:   s.ConnHits - prev.ConnHits,
		Learns:     s.Learns - prev.Learns,
		NoBackend:  s.NoBackend - prev.NoBackend,
		MeterDrops: s.MeterDrops - prev.MeterDrops,
		MeterBytes: s.MeterBytes - prev.MeterBytes,
		Conns:      s.Conns - prev.Conns,
		ConnsEnded: s.ConnsEnded - prev.ConnsEnded,
	}
}
