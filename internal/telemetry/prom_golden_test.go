package telemetry

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot builds a fully deterministic registry snapshot that
// exercises every exposition shape: bare counters and gauges, histograms,
// per-VIP and per-pipe labeled families, and the cuckoo instruments added
// for the flight recorder.
func goldenSnapshot() Snapshot {
	r := NewRegistry()
	r.SetBuildInfo("v0.8.0", "go1.xx")
	r.SetProcessStart(1700000000)
	vsA := r.RegisterVIP(0, VIPKey{Addr: netip.MustParseAddr("10.0.0.1"), Port: 80, Proto: 6})
	vsB := r.RegisterVIP(1, VIPKey{Addr: netip.MustParseAddr("10.0.0.2"), Port: 443, Proto: 17})

	r.OnVerdict(VerdictEvent{Now: 1e9, Pipe: 0, VIP: vsA, Verdict: VerdictForward, WireLen: 64})
	r.OnVerdict(VerdictEvent{Now: 2e9, Pipe: 0, VIP: vsA, Verdict: VerdictForward, WireLen: 1500})
	r.OnVerdict(VerdictEvent{Now: 2e9, Pipe: 1, VIP: vsB, Verdict: VerdictNoBackend, WireLen: 40})
	r.OnInsert(InsertEvent{Now: 3e9, Pipe: 0, VIP: vsA, Kind: InsertLearned,
		Outcome: InsertOK, ArrivedAt: 1e9})
	r.OnUpdateStep(UpdateStepEvent{Now: 4e9, Step: StepDone})
	r.OnLearnFlush(LearnFlushEvent{Now: 4e9, Pipe: 0, Batch: 3})
	r.OnMeterDrop(MeterDropEvent{Now: 5e9, Pipe: 1, VIP: vsB, WireLen: 900})
	r.OnCuckoo(CuckooEvent{Now: 6e9, Pipe: 0, Op: CuckooInsert, Moves: 3,
		OK: true, Len: 5, Capacity: 100})
	r.OnCuckoo(CuckooEvent{Now: 7e9, Pipe: 0, Op: CuckooRelocate, Relocations: 2,
		OK: true, Len: 5, Capacity: 100})
	r.OnCuckoo(CuckooEvent{Now: 8e9, Pipe: 0, Op: CuckooInsert, Moves: 40,
		OK: false, Len: 5, Capacity: 100, Effective: 80})
	r.OnDegraded(DegradedEvent{Now: 8e9, Pipe: 1, Degraded: true, Entries: 70, Capacity: 80})
	r.OnReconcile(ReconcileEvent{Now: 8e9, Step: ReconcileRound, Generation: 2})
	r.OnReconcile(ReconcileEvent{Now: 8e9, Step: ReconcileApply, Op: "update",
		Generation: 2, Latency: 2e6})
	r.OnReconcile(ReconcileEvent{Now: 8e9, Step: ReconcileRetry, Generation: 2,
		Retries: 1, Err: "table full"})
	r.OnReconcile(ReconcileEvent{Now: 9e9, Step: ReconcileDrift, Generation: 2})
	r.OnHandoff(HandoffEvent{Now: 9e9, Donor: 0, Receiver: 1, Step: HandoffBegin,
		Entries: 5, Cursor: 42})
	r.OnHandoff(HandoffEvent{Donor: 0, Receiver: 1, Step: HandoffChunk, Entries: 4})
	r.OnHandoff(HandoffEvent{Donor: 0, Receiver: 1, Step: HandoffDelta, Deltas: 2})
	r.OnHandoff(HandoffEvent{Now: 9e9, Donor: -1, Receiver: 1, Step: HandoffRetry, Entries: 1})
	r.OnHandoff(HandoffEvent{Now: 9e9, Donor: 0, Receiver: 1, Step: HandoffDone,
		Entries: 6, Deltas: 2, Cursor: 42, Duration: 3e6})
	return r.Snapshot(9e9)
}

// TestWritePrometheusGolden pins the full exposition text. Regenerate with
//
//	go test ./internal/telemetry -run Golden -update
//
// and review the diff: the format is part of the scrape contract.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden file %s\n--- got ---\n%s", path, got)
	}
	lintExposition(t, got)
}

// TestLintPrometheusLive lints a scrape of a live, churned registry too, so
// the spec checks don't only cover the synthetic golden snapshot.
func TestLintPrometheusLive(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, b.String())
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRE     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
)

// lintExposition checks the text against the exposition-format rules this
// package promises: valid metric and label names, exactly one TYPE line
// per family, families sorted by name with contiguous samples, histogram
// buckets in ascending le order ending at +Inf, and parseable escaping.
func lintExposition(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{} // family -> type
	var familyOrder []string
	current := "" // family owning the samples being read
	var lastLe float64
	sawInf := false

	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i, line := range lines {
		lineNo := i + 1
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := parts[2], parts[3]
			if !metricNameRE.MatchString(name) {
				t.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: invalid metric type %q", lineNo, typ)
			}
			if _, dup := typed[name]; dup {
				t.Errorf("line %d: duplicate TYPE line for family %q", lineNo, name)
			}
			typed[name] = typ
			familyOrder = append(familyOrder, name)
			current = name
			lastLe, sawInf = -1, false
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: unparseable sample line %q", lineNo, line)
		}
		name, labels, value := m[1], m[2], m[3]
		fam := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if typed[name] != "" {
			fam = name // exact family match beats suffix stripping
		}
		if fam != current {
			t.Errorf("line %d: sample %q outside its family block (current %q)",
				lineNo, name, current)
		}
		if typed[fam] == "" {
			t.Errorf("line %d: sample %q has no TYPE line", lineNo, name)
		}
		if typed[fam] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le := lintLabels(t, lineNo, labels)
			if le == "" {
				t.Errorf("line %d: histogram bucket without le label", lineNo)
			} else if le == "+Inf" {
				sawInf = true
			} else {
				var f float64
				if _, err := fmt.Sscanf(le, "%g", &f); err != nil {
					t.Errorf("line %d: bad le value %q", lineNo, le)
				} else if f <= lastLe {
					t.Errorf("line %d: le %q not ascending (prev %g)", lineNo, le, lastLe)
				} else {
					lastLe = f
				}
				if sawInf {
					t.Errorf("line %d: finite bucket after +Inf", lineNo)
				}
			}
		} else {
			lintLabels(t, lineNo, labels)
		}
		if value == "" {
			t.Errorf("line %d: empty sample value", lineNo)
		}
	}

	if !sort.StringsAreSorted(familyOrder) {
		t.Errorf("metric families are not sorted by name: %v", familyOrder)
	}
}

// lintLabels validates a {k="v",...} block and returns the value of the
// le label if present. It checks label names, quoting, and that escaping
// leaves no raw quote, backslash or newline inside a value.
func lintLabels(t *testing.T, lineNo int, block string) (le string) {
	t.Helper()
	if block == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	var lastName string
	for _, pair := range splitLabelPairs(inner) {
		eq := strings.Index(pair, "=")
		if eq < 0 {
			t.Errorf("line %d: label pair %q missing '='", lineNo, pair)
			continue
		}
		name, quoted := pair[:eq], pair[eq+1:]
		if !labelNameRE.MatchString(name) {
			t.Errorf("line %d: invalid label name %q", lineNo, name)
		}
		if name < lastName {
			t.Errorf("line %d: label %q out of order after %q", lineNo, name, lastName)
		}
		lastName = name
		if len(quoted) < 2 || quoted[0] != '"' || quoted[len(quoted)-1] != '"' {
			t.Errorf("line %d: label value %q not quoted", lineNo, quoted)
			continue
		}
		val := quoted[1 : len(quoted)-1]
		for j := 0; j < len(val); j++ {
			switch val[j] {
			case '\\':
				if j+1 >= len(val) || (val[j+1] != '\\' && val[j+1] != '"' && val[j+1] != 'n') {
					t.Errorf("line %d: invalid escape in label value %q", lineNo, val)
				}
				j++
			case '"', '\n':
				t.Errorf("line %d: unescaped %q in label value %q", lineNo, val[j], val)
			}
		}
		if name == "le" {
			le = val
		}
	}
	return le
}

// splitLabelPairs splits k="v",k2="v2" on commas outside quotes.
func splitLabelPairs(s string) []string {
	var pairs []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				pairs = append(pairs, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		pairs = append(pairs, s[start:])
	}
	return pairs
}

// TestEscapeLabelValue covers the spec's three escape rules directly.
func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		`back\slash`:   `back\\slash`,
		`qu"ote`:       `qu\"ote`,
		"new\nline":    `new\nline`,
		"\\\"\n":       `\\\"\n`,
		"10.0.0.1:80/": "10.0.0.1:80/",
	}
	for in, want := range cases {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}
