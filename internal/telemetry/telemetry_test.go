package telemetry

import (
	"encoding/json"
	"math"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"repro/internal/simtime"
)

func testVIP() VIPKey {
	return VIPKey{Addr: netip.MustParseAddr("10.0.0.1"), Port: 80, Proto: 6}
}

func TestVIPKeyString(t *testing.T) {
	if got := testVIP().String(); got != "10.0.0.1:80/tcp" {
		t.Fatalf("VIPKey.String() = %q", got)
	}
	udp := VIPKey{Addr: netip.MustParseAddr("10.0.0.2"), Port: 53, Proto: 17}
	if got := udp.String(); got != "10.0.0.2:53/udp" {
		t.Fatalf("VIPKey.String() = %q", got)
	}
}

func TestHistogramBucketRuleMatchesStats(t *testing.T) {
	bounds := []float64{1, 2, 4}
	h := NewHistogram(bounds)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// v <= bound rule: bucket0 gets {0.5, 1}, bucket1 {1.5, 2},
	// bucket2 {3, 4}, overflow {100}.
	want := []int64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	if got := s.Sum; math.Abs(got-112) > 1e-9 {
		t.Fatalf("Sum = %v, want 112", got)
	}
	// Round-trip into the stats toolkit.
	sh := s.Histogram()
	if sh.Total() != 7 || sh.Bucket(3) != 1 {
		t.Fatalf("stats round-trip: total=%d overflow=%d", sh.Total(), sh.Bucket(3))
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %v, want 1 (bucket upper bound)", q)
	}
	if q := s.Quantile(0.99); q != 100 {
		t.Fatalf("p99 = %v, want 100", q)
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if got := g.Load(); got != 5 {
		t.Fatalf("SetMax kept %d, want 5", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("SetMax kept %d, want 9", got)
	}
}

func TestRegistryVerdictAndVIPSeries(t *testing.T) {
	r := NewRegistry()
	vs := r.RegisterVIP(0, testVIP())
	if vs == nil {
		t.Fatal("RegisterVIP returned nil")
	}
	if again := r.RegisterVIP(0, testVIP()); again != vs {
		t.Fatal("re-registering the same (pipe, VIP) must return the same series")
	}
	other := r.RegisterVIP(1, testVIP())
	if other == vs {
		t.Fatal("different pipes must get distinct series")
	}

	r.OnVerdict(VerdictEvent{Now: 10, Pipe: 0, VIP: vs, Verdict: VerdictForward, WireLen: 100, ConnHit: true})
	r.OnVerdict(VerdictEvent{Now: 20, Pipe: 0, VIP: vs, Verdict: VerdictForward, WireLen: 60, Learned: true})
	r.OnVerdict(VerdictEvent{Now: 30, Pipe: 1, VIP: other, Verdict: VerdictNoBackend, WireLen: 60})
	r.OnVerdict(VerdictEvent{Now: 40, Pipe: 0, Verdict: VerdictNoVIP, WireLen: 40}) // nil VIP

	s := r.Snapshot(40)
	agg := s.VIPs["10.0.0.1:80/tcp"]
	if agg.Packets != 3 || agg.Bytes != 220 || agg.ConnHits != 1 || agg.Learns != 1 || agg.NoBackend != 1 {
		t.Fatalf("VIP aggregate = %+v", agg)
	}
	if len(s.Pipes) != 2 {
		t.Fatalf("expected 2 pipes, got %d", len(s.Pipes))
	}
	if s.Pipes[0].Packets != 3 || s.Pipes[1].Packets != 1 {
		t.Fatalf("pipe packets = %d/%d", s.Pipes[0].Packets, s.Pipes[1].Packets)
	}
	if s.Pipes[0].Verdicts["forward"] != 2 || s.Pipes[0].Verdicts["no_vip"] != 1 {
		t.Fatalf("pipe0 verdicts = %v", s.Pipes[0].Verdicts)
	}
}

func TestRegistryInsertPendingWindow(t *testing.T) {
	r := NewRegistry()
	vs := r.RegisterVIP(0, testVIP())
	ms := simtime.Duration(1e6)

	r.OnInsert(InsertEvent{Now: simtime.Time(5 * ms), VIP: vs, Kind: InsertLearned,
		Outcome: InsertOK, ArrivedAt: simtime.Time(2 * ms), QueueDepth: 3})
	r.OnInsert(InsertEvent{Now: simtime.Time(9 * ms), VIP: vs, Kind: InsertDigestFP,
		Outcome: InsertOK, QueueDepth: 1})
	r.OnInsert(InsertEvent{Now: simtime.Time(9 * ms), VIP: vs, Kind: InsertBloomFP,
		Outcome: InsertOK, QueueDepth: 0})
	r.OnInsert(InsertEvent{Now: simtime.Time(10 * ms), VIP: vs, Kind: InsertLearned,
		Outcome: InsertDuplicate, ArrivedAt: simtime.Time(1 * ms), QueueDepth: 0})
	r.OnInsert(InsertEvent{Now: simtime.Time(11 * ms), VIP: vs, Kind: InsertLearned,
		Outcome: InsertOverflow, ArrivedAt: simtime.Time(1 * ms), QueueDepth: 0})

	s := r.Snapshot(simtime.Time(11 * ms))
	if got := s.Counters[MetricInsertsLearned]; got != 1 {
		t.Fatalf("learned inserts = %d, want 1", got)
	}
	if got := s.Counters[MetricDigestCollisions]; got != 1 {
		t.Fatalf("digest collisions = %d, want 1", got)
	}
	if got := s.Counters[MetricBloomFPs]; got != 1 {
		t.Fatalf("bloom FPs = %d, want 1", got)
	}
	if got := s.Counters[MetricInsertDuplicates]; got != 1 {
		t.Fatalf("duplicates = %d, want 1", got)
	}
	if got := s.Counters[MetricInsertOverflows]; got != 1 {
		t.Fatalf("overflows = %d, want 1", got)
	}
	pw := s.Histograms[MetricPendingWindow]
	if pw.Count != 1 {
		t.Fatalf("pending-window count = %d, want 1 (only learned OK inserts)", pw.Count)
	}
	if math.Abs(pw.Sum-0.003) > 1e-12 {
		t.Fatalf("pending-window sum = %v, want 0.003s", pw.Sum)
	}
	// Conns counts committed inserts only (3 OK, 1 dup, 1 overflow).
	if got := vs.Conns.Load(); got != 3 {
		t.Fatalf("VIP conns = %d, want 3", got)
	}
	if got := s.Gauges[MetricInsertQueuePeak]; got != 3 {
		t.Fatalf("queue peak = %d, want 3", got)
	}
}

func TestRegistryUpdateSteps(t *testing.T) {
	r := NewRegistry()
	us := simtime.Duration(1e3)
	req := simtime.Time(100 * us)
	exec := simtime.Time(400 * us)
	done := simtime.Time(900 * us)

	r.OnUpdateStep(UpdateStepEvent{Now: req, Step: StepRequested})
	r.OnUpdateStep(UpdateStepEvent{Now: req, Step: StepRecording, ReqAt: req})
	r.OnUpdateStep(UpdateStepEvent{Now: exec, Step: StepTransition, ReqAt: req, ExecAt: exec})
	r.OnUpdateStep(UpdateStepEvent{Now: done, Step: StepDone, ReqAt: req, ExecAt: exec})

	s := r.Snapshot(done)
	if got := s.Counters[MetricUpdatesRequested]; got != 1 {
		t.Fatalf("requested = %d", got)
	}
	if got := s.Counters[MetricUpdatesCompleted]; got != 1 {
		t.Fatalf("completed = %d", got)
	}
	rec := s.Histograms[MetricUpdateRecord]
	if rec.Count != 1 || math.Abs(rec.Sum-300e-6) > 1e-12 {
		t.Fatalf("record hist count=%d sum=%v, want 1/300µs", rec.Count, rec.Sum)
	}
	tr := s.Histograms[MetricUpdateTransition]
	if tr.Count != 1 || math.Abs(tr.Sum-500e-6) > 1e-12 {
		t.Fatalf("transition hist count=%d sum=%v, want 1/500µs", tr.Count, tr.Sum)
	}
	tot := s.Histograms[MetricUpdateTotal]
	if tot.Count != 1 || math.Abs(tot.Sum-800e-6) > 1e-12 {
		t.Fatalf("total hist count=%d sum=%v, want 1/800µs", tot.Count, tot.Sum)
	}
}

func TestRegistryLearnFlushAndMeter(t *testing.T) {
	r := NewRegistry()
	vs := r.RegisterVIP(0, testVIP())
	r.OnLearnFlush(LearnFlushEvent{Now: 1, Batch: 10, Full: true})
	r.OnLearnFlush(LearnFlushEvent{Now: 2, Batch: 3})
	r.OnMeterDrop(MeterDropEvent{Now: 3, VIP: vs, WireLen: 1500})

	s := r.Snapshot(3)
	if got := s.Counters[MetricLearnFlushes]; got != 2 {
		t.Fatalf("flushes = %d", got)
	}
	if got := s.Counters[MetricLearnFullFlushes]; got != 1 {
		t.Fatalf("full flushes = %d", got)
	}
	if got := s.Histograms[MetricLearnBatch]; got.Count != 2 || got.Sum != 13 {
		t.Fatalf("batch hist = %+v", got)
	}
	if got := s.Counters[MetricMeterDropBytes]; got != 1500 {
		t.Fatalf("meter bytes = %d", got)
	}
	if vs.MeterDrops.Load() != 1 || vs.MeterBytes.Load() != 1500 {
		t.Fatalf("VIP meter series = %d/%d", vs.MeterDrops.Load(), vs.MeterBytes.Load())
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	vs := r.RegisterVIP(0, testVIP())
	r.OnVerdict(VerdictEvent{Now: 100, VIP: vs, Verdict: VerdictForward, WireLen: 50})
	prev := r.Snapshot(100)
	r.OnVerdict(VerdictEvent{Now: 200, VIP: vs, Verdict: VerdictForward, WireLen: 70})
	r.OnInsert(InsertEvent{Now: 200, VIP: vs, Kind: InsertLearned, Outcome: InsertOK, ArrivedAt: 150})
	cur := r.Snapshot(200)

	d := cur.Delta(prev)
	if d.Elapsed != 100 {
		t.Fatalf("Elapsed = %d", d.Elapsed)
	}
	if got := d.Counters[MetricInsertsLearned]; got != 1 {
		t.Fatalf("delta learned = %d", got)
	}
	dv := d.VIPs["10.0.0.1:80/tcp"]
	if dv.Packets != 1 || dv.Bytes != 70 {
		t.Fatalf("delta VIP = %+v", dv)
	}
	if len(d.Pipes) != 1 || d.Pipes[0].Packets != 1 {
		t.Fatalf("delta pipes = %+v", d.Pipes)
	}
	if d.Histograms[MetricPendingWindow].Count != 1 {
		t.Fatalf("delta pending hist = %+v", d.Histograms[MetricPendingWindow])
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	vs := r.RegisterVIP(0, testVIP())
	r.OnVerdict(VerdictEvent{Now: 1, VIP: vs, Verdict: VerdictForward, WireLen: 64})
	s := r.Snapshot(1)
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters[MetricInsertsLearned] != s.Counters[MetricInsertsLearned] {
		t.Fatal("counter lost in JSON round trip")
	}
	if back.VIPs["10.0.0.1:80/tcp"].Packets != 1 {
		t.Fatalf("VIP series lost in JSON round trip: %+v", back.VIPs)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	vs := r.RegisterVIP(0, testVIP())
	r.OnVerdict(VerdictEvent{Now: 1e9, VIP: vs, Verdict: VerdictForward, WireLen: 64})
	r.OnInsert(InsertEvent{Now: 2e9, VIP: vs, Kind: InsertLearned, Outcome: InsertOK, ArrivedAt: 1e9})
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot(2e9)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE " + MetricPendingWindow + " histogram",
		MetricPendingWindow + "_bucket{le=\"+Inf\"} 1",
		MetricPendingWindow + "_count 1",
		MetricInsertsLearned + " 1",
		`silkroad_vip_packets_total{vip="10.0.0.1:80/tcp"} 1`,
		`silkroad_pipe_verdicts_total{pipe="0",verdict="forward"} 1`,
		"silkroad_virtual_time_seconds 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
	// Deterministic output.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, r.Snapshot(2e9)); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("prometheus output is not deterministic")
	}
}

func TestRegistryConcurrentHooks(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			vs := r.RegisterVIP(w%4, testVIP())
			for i := 0; i < perWorker; i++ {
				r.OnVerdict(VerdictEvent{Now: simtime.Time(i), Pipe: w % 4, VIP: vs,
					Verdict: VerdictForward, WireLen: 64})
				r.OnInsert(InsertEvent{Now: simtime.Time(i + 10), Pipe: w % 4, VIP: vs,
					Kind: InsertLearned, Outcome: InsertOK, ArrivedAt: simtime.Time(i)})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		// Scrape concurrently with the hook storm.
		var last uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			s := r.Snapshot(0)
			if got := s.Counters[MetricInsertsLearned]; got < last {
				panic("counter went backwards")
			} else {
				last = got
			}
		}
	}()
	wg.Wait()
	close(done)
	s := r.Snapshot(0)
	if got := s.Counters[MetricInsertsLearned]; got != workers*perWorker {
		t.Fatalf("learned inserts = %d, want %d", got, workers*perWorker)
	}
	var total uint64
	for _, p := range s.Pipes {
		total += p.Packets
	}
	if total != workers*perWorker {
		t.Fatalf("pipe packets = %d, want %d", total, workers*perWorker)
	}
	if s.Histograms[MetricPendingWindow].Count != workers*perWorker {
		t.Fatalf("pending hist count = %d", s.Histograms[MetricPendingWindow].Count)
	}
}

func TestNopTracer(t *testing.T) {
	var tr Tracer = NopTracer{}
	if tr.RegisterVIP(0, testVIP()) != nil {
		t.Fatal("NopTracer.RegisterVIP must return nil")
	}
	// Must not panic.
	tr.OnVerdict(VerdictEvent{})
	tr.OnInsert(InsertEvent{})
	tr.OnUpdateStep(UpdateStepEvent{})
	tr.OnLearnFlush(LearnFlushEvent{})
	tr.OnMeterDrop(MeterDropEvent{})
}
