package intent

import (
	"repro/internal/dataplane"
	"repro/internal/simtime"
)

// wqItem is one queued key with its next attempt time and retry count.
type wqItem struct {
	key     dataplane.VIP
	readyAt simtime.Time
	retries int
}

// workqueue is a bounded per-key work queue over virtual time: each key
// appears at most once, items become due at readyAt, and Due returns them
// in deterministic (readyAt, key) order. There is no goroutine pool — the
// reconciler drains due items inside its own rounds, so the queue stays a
// plain data structure that both virtual-time and wall-clock drivers can
// share.
type workqueue struct {
	max     int
	items   map[dataplane.VIP]*wqItem
	dropped uint64
}

func newWorkqueue(max int) *workqueue {
	if max <= 0 {
		max = 1024
	}
	return &workqueue{max: max, items: make(map[dataplane.VIP]*wqItem)}
}

// Add enqueues key to run at readyAt. An already-queued key keeps its
// earliest ready time and its retry count. Returns false when the queue is
// at its bound and the key is new (the drop is counted; callers surface it
// via drift detection on a later round).
func (q *workqueue) Add(key dataplane.VIP, readyAt simtime.Time) bool {
	if it, ok := q.items[key]; ok {
		if readyAt.Before(it.readyAt) {
			it.readyAt = readyAt
		}
		return true
	}
	if len(q.items) >= q.max {
		q.dropped++
		return false
	}
	q.items[key] = &wqItem{key: key, readyAt: readyAt}
	return true
}

// Requeue re-enqueues key after a failed attempt, recording its retry
// count and backoff deadline. Unlike Add it always moves readyAt.
func (q *workqueue) Requeue(key dataplane.VIP, readyAt simtime.Time, retries int) {
	if it, ok := q.items[key]; ok {
		it.readyAt = readyAt
		it.retries = retries
		return
	}
	q.items[key] = &wqItem{key: key, readyAt: readyAt, retries: retries}
}

// Forget drops key from the queue (converged or superseded).
func (q *workqueue) Forget(key dataplane.VIP) { delete(q.items, key) }

// Retries returns key's recorded retry count (0 when not queued).
func (q *workqueue) Retries(key dataplane.VIP) int {
	if it, ok := q.items[key]; ok {
		return it.retries
	}
	return 0
}

// Due returns the keys ready to run at now, ordered by (readyAt, key
// string) so rounds are deterministic under virtual time.
func (q *workqueue) Due(now simtime.Time) []dataplane.VIP {
	due := make([]*wqItem, 0, len(q.items))
	for _, it := range q.items {
		if !now.Before(it.readyAt) {
			due = append(due, it)
		}
	}
	sortItems(due)
	out := make([]dataplane.VIP, len(due))
	for i, it := range due {
		out[i] = it.key
	}
	return out
}

// NextDue returns the earliest ready time over every queued key.
func (q *workqueue) NextDue() (simtime.Time, bool) {
	var best simtime.Time
	found := false
	for _, it := range q.items {
		if !found || it.readyAt.Before(best) {
			best = it.readyAt
			found = true
		}
	}
	return best, found
}

// Len returns the number of queued keys.
func (q *workqueue) Len() int { return len(q.items) }

// Dropped returns the number of Adds rejected at the bound.
func (q *workqueue) Dropped() uint64 { return q.dropped }

func sortItems(items []*wqItem) {
	// Insertion sort: due sets are small and almost sorted; avoids
	// importing sort for a two-field comparator. Deterministic order is
	// what matters, not speed.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && itemLess(items[j], items[j-1]); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

func itemLess(a, b *wqItem) bool {
	if a.readyAt != b.readyAt {
		return a.readyAt.Before(b.readyAt)
	}
	return FormatVIP(a.key) < FormatVIP(b.key)
}
