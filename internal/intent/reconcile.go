package intent

import (
	"errors"

	"repro/internal/dataplane"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Target is the observed side of the reconcile loop: the raw read/write
// surface of one switch. ObservedPool must return the newest *requested*
// pool (ctrlplane.TargetPool semantics), not the currently serving one —
// diffing against an in-flight update's target keeps the reconciler from
// double-requesting a pool the switch is already converging to, and makes
// re-applying an unchanged spec a true zero-write no-op.
type Target interface {
	ObservedVIPs() []dataplane.VIP
	ObservedPool(vip dataplane.VIP) ([]dataplane.DIP, bool)
	AddVIP(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP, meterBytesPerSec float64) error
	RemoveVIP(now simtime.Time, vip dataplane.VIP) error
	UpdatePool(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error
	// PendingWork is the switch's undrained load: learn events, queued
	// inserts, in-flight pool updates. Zero gates rolling fleet updates.
	PendingWork() int
}

// Condition is a per-VIP status condition.
type Condition string

const (
	// CondApplied: observed state matches desired state at the reported
	// generation.
	CondApplied Condition = "Applied"
	// CondDegraded: a write is pending or retrying; the VIP serves the
	// previous state meanwhile.
	CondDegraded Condition = "Degraded"
	// CondError: the retry budget was exhausted; the reconciler keeps
	// retrying at the backoff cap but the VIP needs attention.
	CondError Condition = "Error"
)

// VIPStatus is one VIP's reconcile status.
type VIPStatus struct {
	VIP                string       `json:"vip"`
	Condition          Condition    `json:"condition"`
	ObservedGeneration uint64       `json:"observed_generation"`
	Reason             string       `json:"reason,omitempty"`
	Message            string       `json:"message,omitempty"`
	Retries            int          `json:"retries,omitempty"`
	LastTransition     simtime.Time `json:"last_transition_ns"`
}

// Config parameterizes a Reconciler.
type Config struct {
	// MaxQueue bounds the number of distinct queued keys (default 1024).
	MaxQueue int
	// BaseBackoff is the first retry delay (default 1ms virtual); each
	// retry doubles it up to MaxBackoff (default 1s).
	BaseBackoff simtime.Duration
	MaxBackoff  simtime.Duration
	// MaxRetries is the per-key retry budget before the status degrades
	// to Error (default 8). The key keeps retrying at MaxBackoff — Error
	// is a reporting state, not a terminal one.
	MaxRetries int
	// Tracer receives ReconcileEvents (nil = NopTracer).
	Tracer telemetry.Tracer
	// Member labels events with the fleet member index.
	Member int
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = simtime.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = simtime.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.Tracer == nil {
		c.Tracer = telemetry.NopTracer{}
	}
	return c
}

// appliedRec remembers what the reconciler last wrote for a key, so meter
// changes (which require a remove+re-add, the meter being installed with
// the VIP) are detectable without a hardware read-back.
type appliedRec struct {
	pool  []dataplane.DIP
	meter float64
}

// Reconciler converges one Target onto a Desired state. It is not
// goroutine-safe; the facade serializes access (the same discipline as
// the rest of the control plane, which runs under virtual time).
type Reconciler struct {
	cfg     Config
	target  Target
	desired Desired
	applied map[dataplane.VIP]appliedRec
	q       *workqueue
	status  map[dataplane.VIP]*VIPStatus

	// queuedAt is each key's first-enqueue time since it last converged,
	// feeding the apply-latency histogram.
	queuedAt map[dataplane.VIP]simtime.Time

	rounds uint64
	writes uint64
}

// New builds a Reconciler over target.
func New(target Target, cfg Config) *Reconciler {
	return &Reconciler{
		cfg:      cfg.withDefaults(),
		target:   target,
		desired:  Desired{VIPs: map[dataplane.VIP]VIPDesired{}},
		applied:  make(map[dataplane.VIP]appliedRec),
		q:        newWorkqueue(cfg.withDefaults().MaxQueue),
		status:   make(map[dataplane.VIP]*VIPStatus),
		queuedAt: make(map[dataplane.VIP]simtime.Time),
	}
}

// Desired returns the current desired state (shared, do not mutate).
func (r *Reconciler) Desired() Desired { return r.desired }

// Generation returns the desired generation.
func (r *Reconciler) Generation() uint64 { return r.desired.Generation }

// Writes returns the number of writes (add/update/remove) issued against
// the target since construction — the idempotency probe: re-applying an
// unchanged spec must not move it.
func (r *Reconciler) Writes() uint64 { return r.writes }

// Rounds returns the number of reconcile rounds run.
func (r *Reconciler) Rounds() uint64 { return r.rounds }

// QueueLen returns the number of keys awaiting work.
func (r *Reconciler) QueueLen() int { return r.q.Len() }

// SetDesired replaces the desired state and enqueues every key whose
// desired state changed (including removals). Unchanged applied keys jump
// straight to the new generation without touching hardware.
func (r *Reconciler) SetDesired(now simtime.Time, d Desired) {
	old := r.desired
	r.desired = d
	touch := func(key dataplane.VIP) {
		r.enqueue(now, key, "Pending", "spec changed")
	}
	for key, want := range d.VIPs {
		had, ok := old.VIPs[key]
		if !ok || !SamePool(had.Pool, want.Pool) || had.MeterBytesPerSec != want.MeterBytesPerSec {
			touch(key)
			continue
		}
		// Unchanged key: if it was applied, it is applied at the new
		// generation too.
		if st, ok := r.status[key]; ok && st.Condition == CondApplied {
			st.ObservedGeneration = d.Generation
		} else {
			touch(key) // never applied (or mid-retry): keep it queued
		}
	}
	for key := range old.VIPs {
		if _, ok := d.VIPs[key]; !ok {
			touch(key)
		}
	}
}

// enqueue adds key to the workqueue and marks it Degraded. Retry state is
// reset: a new desired state starts a fresh attempt budget.
func (r *Reconciler) enqueue(now simtime.Time, key dataplane.VIP, reason, msg string) {
	r.q.Forget(key)
	if !r.q.Add(key, now) {
		// Queue full: surface as Error so the drop is visible; a later
		// drift scan re-adds the key once the queue drains.
		r.setStatus(now, key, CondError, "QueueFull", "workqueue at capacity", 0)
		return
	}
	if _, ok := r.queuedAt[key]; !ok {
		r.queuedAt[key] = now
	}
	r.setStatus(now, key, CondDegraded, reason, msg, 0)
}

// Reconcile runs one round: every due key is applied; failures are
// requeued with exponential backoff. Returns the number of keys that
// remain queued.
func (r *Reconciler) Reconcile(now simtime.Time) int {
	r.rounds++
	r.cfg.Tracer.OnReconcile(telemetry.ReconcileEvent{
		Now: now, Member: r.cfg.Member, Step: telemetry.ReconcileRound,
		Generation: r.desired.Generation,
	})
	for _, key := range r.q.Due(now) {
		retries := r.q.Retries(key)
		if err := r.applyKey(now, key); err != nil {
			retries++
			backoff := r.backoff(retries)
			r.q.Requeue(key, now.Add(backoff), retries)
			if retries > r.cfg.MaxRetries {
				r.setStatus(now, key, CondError, "RetriesExhausted", err.Error(), retries)
				r.event(now, key, telemetry.ReconcileError, "", retries, 0, err)
			} else {
				r.setStatus(now, key, CondDegraded, "Retrying", err.Error(), retries)
				r.event(now, key, telemetry.ReconcileRetry, "", retries, 0, err)
			}
		} else {
			r.q.Forget(key)
		}
	}
	return r.q.Len()
}

// backoff returns the capped exponential delay for the given attempt.
func (r *Reconciler) backoff(retries int) simtime.Duration {
	d := r.cfg.BaseBackoff
	for i := 1; i < retries; i++ {
		d *= 2
		if d >= r.cfg.MaxBackoff {
			return r.cfg.MaxBackoff
		}
	}
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	return d
}

// applyKey diffs one key and issues the single write that converges it:
// the shared engine under both Apply(spec) and the imperative facade
// methods.
func (r *Reconciler) applyKey(now simtime.Time, key dataplane.VIP) error {
	want, desired := r.desired.VIPs[key]
	obs, observed := r.target.ObservedPool(key)
	gen := r.desired.Generation

	switch {
	case desired && !observed:
		r.writes++
		if err := r.target.AddVIP(now, key, clonePool(want.Pool), want.MeterBytesPerSec); err != nil {
			return err
		}
		r.markApplied(now, key, want, gen, "add")

	case !desired && observed:
		r.writes++
		if err := r.target.RemoveVIP(now, key); err != nil {
			return err
		}
		r.markRemoved(now, key, gen)

	case desired && observed:
		if prev, ok := r.applied[key]; ok && prev.meter != want.MeterBytesPerSec {
			// Meters are bound at VIP installation: converge via
			// remove+re-add (two writes, one logical apply).
			r.writes += 2
			if err := r.target.RemoveVIP(now, key); err != nil {
				return err
			}
			if err := r.target.AddVIP(now, key, clonePool(want.Pool), want.MeterBytesPerSec); err != nil {
				return err
			}
			r.markApplied(now, key, want, gen, "update")
			break
		}
		if SamePool(obs, want.Pool) {
			r.markNoop(now, key, want, gen)
			break
		}
		r.writes++
		if err := r.target.UpdatePool(now, key, clonePool(want.Pool)); err != nil {
			return err
		}
		r.markApplied(now, key, want, gen, "update")

	default: // neither desired nor observed: already gone
		r.markRemoved(now, key, gen)
	}
	return nil
}

func (r *Reconciler) markApplied(now simtime.Time, key dataplane.VIP, want VIPDesired, gen uint64, op string) {
	r.applied[key] = appliedRec{pool: clonePool(want.Pool), meter: want.MeterBytesPerSec}
	lat := r.takeLatency(now, key)
	r.setStatus(now, key, CondApplied, "", "", 0)
	r.status[key].ObservedGeneration = gen
	r.event(now, key, telemetry.ReconcileApply, op, 0, lat, nil)
}

func (r *Reconciler) markRemoved(now simtime.Time, key dataplane.VIP, gen uint64) {
	removed := false
	if _, ok := r.applied[key]; ok {
		removed = true
	}
	delete(r.applied, key)
	delete(r.status, key)
	delete(r.queuedAt, key)
	if removed {
		r.event(now, key, telemetry.ReconcileApply, "remove", 0, 0, nil)
	} else {
		r.event(now, key, telemetry.ReconcileNoop, "", 0, 0, nil)
	}
}

func (r *Reconciler) markNoop(now simtime.Time, key dataplane.VIP, want VIPDesired, gen uint64) {
	r.applied[key] = appliedRec{pool: clonePool(want.Pool), meter: want.MeterBytesPerSec}
	delete(r.queuedAt, key)
	r.setStatus(now, key, CondApplied, "", "", 0)
	r.status[key].ObservedGeneration = gen
	r.event(now, key, telemetry.ReconcileNoop, "", 0, 0, nil)
}

func (r *Reconciler) takeLatency(now simtime.Time, key dataplane.VIP) simtime.Duration {
	at, ok := r.queuedAt[key]
	if !ok {
		return 0
	}
	delete(r.queuedAt, key)
	return now.Sub(at)
}

// DetectDrift scans observed state against desired and enqueues every
// mismatch. Returns the number of drifted keys. Drift is how externally
// mutated switches (a restored fleet member, an operator's out-of-band
// change) get pulled back to the spec.
func (r *Reconciler) DetectDrift(now simtime.Time) int {
	drifted := 0
	seen := make(map[dataplane.VIP]bool)
	for _, key := range r.desired.Keys() {
		seen[key] = true
		want := r.desired.VIPs[key]
		obs, ok := r.target.ObservedPool(key)
		if !ok || !SamePool(obs, want.Pool) {
			drifted++
			r.event(now, key, telemetry.ReconcileDrift, "", 0, 0, nil)
			r.enqueue(now, key, "Drift", "observed state diverged")
		}
	}
	for _, key := range r.target.ObservedVIPs() {
		if !seen[key] {
			drifted++
			r.event(now, key, telemetry.ReconcileDrift, "", 0, 0, nil)
			r.enqueue(now, key, "Drift", "undesired VIP observed")
		}
	}
	return drifted
}

// NextDue returns the earliest time queued work becomes ready.
func (r *Reconciler) NextDue() (simtime.Time, bool) { return r.q.NextDue() }

// Converged reports whether the queue is empty and every desired key is
// Applied at the current generation.
func (r *Reconciler) Converged() bool {
	if r.q.Len() != 0 {
		return false
	}
	for key := range r.desired.VIPs {
		st, ok := r.status[key]
		if !ok || st.Condition != CondApplied || st.ObservedGeneration != r.desired.Generation {
			return false
		}
	}
	return true
}

// Statuses returns every key's status, sorted by VIP spelling.
func (r *Reconciler) Statuses() []VIPStatus {
	out := make([]VIPStatus, 0, len(r.status))
	for _, st := range r.status {
		out = append(out, *st)
	}
	sortStatuses(out)
	return out
}

func sortStatuses(sts []VIPStatus) {
	for i := 1; i < len(sts); i++ {
		for j := i; j > 0 && sts[j].VIP < sts[j-1].VIP; j-- {
			sts[j], sts[j-1] = sts[j-1], sts[j]
		}
	}
}

func (r *Reconciler) setStatus(now simtime.Time, key dataplane.VIP, c Condition, reason, msg string, retries int) {
	st, ok := r.status[key]
	if !ok {
		st = &VIPStatus{VIP: FormatVIP(key)}
		r.status[key] = st
	}
	if st.Condition != c {
		st.LastTransition = now
	}
	st.Condition = c
	st.Reason = reason
	st.Message = msg
	st.Retries = retries
}

func (r *Reconciler) event(now simtime.Time, key dataplane.VIP, step telemetry.ReconcileStep, op string, retries int, lat simtime.Duration, err error) {
	e := telemetry.ReconcileEvent{
		Now: now, Member: r.cfg.Member, Step: step, Op: op,
		VIP:        vipKey(key),
		Generation: r.desired.Generation,
		Retries:    retries, Latency: lat,
	}
	if err != nil {
		e.Err = err.Error()
	}
	r.cfg.Tracer.OnReconcile(e)
}

func vipKey(v dataplane.VIP) telemetry.VIPKey { return v.TelemetryKey() }

// --- imperative edits ---------------------------------------------------
//
// The facade's AddVIP/RemoveVIP/AddDIP/RemoveDIP/UpdatePool are thin
// wrappers over these: each edits one key of the desired state and runs
// the same applyKey engine synchronously, reverting the edit when the
// write fails so desired state never silently diverges from what the
// caller was told.

// ErrPoolEmpty rejects edits that would leave a VIP with no backends.
var ErrPoolEmpty = errors.New("intent: empty DIP pool")

// EditAdd declares a new VIP and applies it synchronously.
func (r *Reconciler) EditAdd(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP, meterBytesPerSec float64) error {
	if len(pool) == 0 {
		return ErrPoolEmpty
	}
	if _, ok := r.desired.VIPs[vip]; ok {
		return dataplane.ErrVIPExists
	}
	return r.edit(now, vip, &VIPDesired{Pool: clonePool(pool), MeterBytesPerSec: meterBytesPerSec})
}

// EditRemove withdraws a VIP and applies the removal synchronously.
func (r *Reconciler) EditRemove(now simtime.Time, vip dataplane.VIP) error {
	_, want := r.desired.VIPs[vip]
	_, have := r.target.ObservedPool(vip)
	if !want && !have {
		return dataplane.ErrUnknownVIP
	}
	return r.edit(now, vip, nil)
}

// EditPool mutates a VIP's desired pool through fn and applies the result
// synchronously. When the VIP is on the switch but not yet in desired
// state (imperative callers predating a spec, or drift), its observed
// pool is adopted as the base.
func (r *Reconciler) EditPool(now simtime.Time, vip dataplane.VIP, fn func(pool []dataplane.DIP) ([]dataplane.DIP, error)) error {
	var base VIPDesired
	if want, ok := r.desired.VIPs[vip]; ok {
		base = VIPDesired{Pool: clonePool(want.Pool), MeterBytesPerSec: want.MeterBytesPerSec}
	} else if obs, ok := r.target.ObservedPool(vip); ok {
		base = VIPDesired{Pool: clonePool(obs)}
		if prev, ok := r.applied[vip]; ok {
			base.MeterBytesPerSec = prev.meter
		}
	} else {
		return dataplane.ErrUnknownVIP
	}
	pool, err := fn(base.Pool)
	if err != nil {
		return err
	}
	if len(pool) == 0 {
		return ErrPoolEmpty
	}
	base.Pool = pool
	return r.edit(now, vip, &base)
}

// edit stages one key's desired state (nil = remove), applies it, and
// reverts the stage on failure. Edits do not bump the generation — they
// mutate content within the current one; only applied specs move it.
// (Bumping here would strand other keys' ObservedGeneration behind the
// new value and wedge Converged.)
func (r *Reconciler) edit(now simtime.Time, vip dataplane.VIP, want *VIPDesired) error {
	prev, hadPrev := r.desired.VIPs[vip]
	if want == nil {
		delete(r.desired.VIPs, vip)
	} else {
		r.desired.VIPs[vip] = *want
	}
	if _, ok := r.queuedAt[vip]; !ok {
		r.queuedAt[vip] = now
	}
	if err := r.applyKey(now, vip); err != nil {
		if hadPrev {
			r.desired.VIPs[vip] = prev
		} else {
			delete(r.desired.VIPs, vip)
		}
		delete(r.queuedAt, vip)
		return err
	}
	r.q.Forget(vip)
	return nil
}
