package intent

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/cuckoo"
	"repro/internal/dataplane"
	"repro/internal/simtime"
)

func mustVIP(t *testing.T, s string) dataplane.VIP {
	t.Helper()
	v, err := ParseVIP(s)
	if err != nil {
		t.Fatalf("ParseVIP(%q): %v", s, err)
	}
	return v
}

func dip(s string) dataplane.DIP { return netip.MustParseAddrPort(s) }

// fakeTarget is a scriptable in-memory switch: pools keyed by VIP, plus
// per-operation failure injection and a settable pending-work level.
type fakeTarget struct {
	pools   map[dataplane.VIP][]dataplane.DIP
	meters  map[dataplane.VIP]float64
	pending int

	// failNext[op] errors the next n calls of that op ("add", "remove",
	// "update"), then succeeds.
	failNext map[string]int
	failWith error

	calls []string // op log, e.g. "add 10.0.0.1:80/tcp"
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{
		pools:    make(map[dataplane.VIP][]dataplane.DIP),
		meters:   make(map[dataplane.VIP]float64),
		failNext: make(map[string]int),
		failWith: cuckoo.ErrTableFull,
	}
}

func (f *fakeTarget) fail(op string) bool {
	if f.failNext[op] > 0 {
		f.failNext[op]--
		return true
	}
	return false
}

func (f *fakeTarget) ObservedVIPs() []dataplane.VIP {
	var out []dataplane.VIP
	for v := range f.pools {
		out = append(out, v)
	}
	return out
}

func (f *fakeTarget) ObservedPool(vip dataplane.VIP) ([]dataplane.DIP, bool) {
	pool, ok := f.pools[vip]
	return pool, ok
}

func (f *fakeTarget) AddVIP(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP, meter float64) error {
	f.calls = append(f.calls, "add "+FormatVIP(vip))
	if f.fail("add") {
		return f.failWith
	}
	if _, ok := f.pools[vip]; ok {
		return dataplane.ErrVIPExists
	}
	f.pools[vip] = append([]dataplane.DIP(nil), pool...)
	f.meters[vip] = meter
	return nil
}

func (f *fakeTarget) RemoveVIP(now simtime.Time, vip dataplane.VIP) error {
	f.calls = append(f.calls, "remove "+FormatVIP(vip))
	if f.fail("remove") {
		return f.failWith
	}
	if _, ok := f.pools[vip]; !ok {
		return dataplane.ErrUnknownVIP
	}
	delete(f.pools, vip)
	delete(f.meters, vip)
	return nil
}

func (f *fakeTarget) UpdatePool(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	f.calls = append(f.calls, "update "+FormatVIP(vip))
	if f.fail("update") {
		return f.failWith
	}
	if _, ok := f.pools[vip]; !ok {
		return dataplane.ErrUnknownVIP
	}
	f.pools[vip] = append([]dataplane.DIP(nil), pool...)
	return nil
}

func (f *fakeTarget) PendingWork() int { return f.pending }

func specOf(vips ...VIPSpec) *ClusterSpec {
	return &ClusterSpec{Version: SpecVersion, VIPs: vips}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		spec   *ClusterSpec
		fields []string // expected FieldError fields (substring match)
	}{
		{"ok", specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080"}}), nil},
		{"ok udp", specOf(VIPSpec{VIP: "10.0.0.1:53/udp", Pool: []string{"1.1.1.1:53"}}), nil},
		{"bad version", &ClusterSpec{Version: "silkroad/v9", VIPs: []VIPSpec{
			{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080"}}}}, []string{"version"}},
		{"bad vip", specOf(VIPSpec{VIP: "nonsense", Pool: []string{"1.1.1.1:8080"}}),
			[]string{"vips[0].vip"}},
		{"bad proto", specOf(VIPSpec{VIP: "10.0.0.1:80/icmp", Pool: []string{"1.1.1.1:8080"}}),
			[]string{"vips[0].vip"}},
		{"empty pool", specOf(VIPSpec{VIP: "10.0.0.1:80"}), []string{"vips[0].pool"}},
		{"bad dip", specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"not-a-dip"}}),
			[]string{"vips[0].pool[0]"}},
		{"duplicate vip", specOf(
			VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080"}},
			VIPSpec{VIP: "10.0.0.1:80/tcp", Pool: []string{"1.1.1.2:8080"}}),
			[]string{"vips[1].vip"}},
		{"negative meter", specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080"},
			MeterBytesPerSec: -1}), []string{"meter_bytes_per_sec"}},
		{"all errors reported", specOf(
			VIPSpec{VIP: "nope", Pool: nil, SRAMBytes: -2}),
			[]string{"vips[0].vip", "vips[0].pool", "demand_sram_bytes"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if len(tc.fields) == 0 {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("want *ValidationError, got %v", err)
			}
			for _, want := range tc.fields {
				found := false
				for _, fe := range verr.Errors {
					if strings.Contains(fe.Field, want) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("no error for field %q in %v", want, verr.Errors)
				}
			}
		})
	}
}

func TestParseSpecUnknownField(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"version":"silkroad/v1","vipz":[]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestNormalizeGenerations(t *testing.T) {
	s := specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080"}})

	d, err := s.Normalize(3)
	if err != nil || d.Generation != 4 {
		t.Fatalf("auto-assign: gen=%d err=%v, want 4", d.Generation, err)
	}
	s.Generation = 2
	if _, err := s.Normalize(3); err == nil {
		t.Fatal("stale generation accepted")
	}
	s.Generation = 7
	d, err = s.Normalize(3)
	if err != nil || d.Generation != 7 {
		t.Fatalf("explicit: gen=%d err=%v, want 7", d.Generation, err)
	}
}

func TestSamePool(t *testing.T) {
	a, b, c := dip("1.1.1.1:80"), dip("1.1.1.2:80"), dip("1.1.1.3:80")
	cases := []struct {
		x, y []dataplane.DIP
		want bool
	}{
		{nil, nil, true},
		{[]dataplane.DIP{a, b}, []dataplane.DIP{b, a}, true},
		{[]dataplane.DIP{a, a, b}, []dataplane.DIP{a, b, a}, true},
		{[]dataplane.DIP{a, b}, []dataplane.DIP{a, c}, false},
		{[]dataplane.DIP{a, a}, []dataplane.DIP{a}, false},
		{[]dataplane.DIP{a, a, b}, []dataplane.DIP{a, b, b}, false},
	}
	for i, tc := range cases {
		if got := SamePool(tc.x, tc.y); got != tc.want {
			t.Errorf("case %d: SamePool=%v, want %v", i, got, tc.want)
		}
	}
}

func TestBackoffCapped(t *testing.T) {
	r := New(newFakeTarget(), Config{BaseBackoff: simtime.Millisecond,
		MaxBackoff: 8 * simtime.Millisecond})
	want := []simtime.Duration{
		simtime.Millisecond, 2 * simtime.Millisecond, 4 * simtime.Millisecond,
		8 * simtime.Millisecond, 8 * simtime.Millisecond,
	}
	for i, w := range want {
		if got := r.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestReconcileConverges applies a spec to a clean fake and checks the
// desired VIPs land with Applied conditions at the right generation.
func TestReconcileConverges(t *testing.T) {
	ft := newFakeTarget()
	r := New(ft, Config{})
	spec := specOf(
		VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080", "1.1.1.2:8080"}},
		VIPSpec{VIP: "10.0.0.2:443", Pool: []string{"2.2.2.1:443"}, MeterBytesPerSec: 1e6},
	)
	d, err := spec.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	r.SetDesired(0, d)
	r.Reconcile(0)

	if !r.Converged() {
		t.Fatalf("not converged: %+v", r.Statuses())
	}
	for _, st := range r.Statuses() {
		if st.Condition != CondApplied || st.ObservedGeneration != 1 {
			t.Errorf("status %+v, want Applied@1", st)
		}
	}
	if got := ft.meters[mustVIP(t, "10.0.0.2:443")]; got != 1e6 {
		t.Errorf("meter = %v, want 1e6", got)
	}
}

// TestReconcileIdempotent is the idempotency golden: re-applying an
// unchanged spec (same content, new generation) must issue zero writes.
func TestReconcileIdempotent(t *testing.T) {
	ft := newFakeTarget()
	r := New(ft, Config{})
	spec := specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080", "1.1.1.2:8080"}})

	d, _ := spec.Normalize(0)
	r.SetDesired(0, d)
	r.Reconcile(0)
	writes, calls := r.Writes(), len(ft.calls)

	// Same content re-normalized at the next generation; pool reordered to
	// prove multiset comparison.
	spec2 := specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.2:8080", "1.1.1.1:8080"}})
	d2, _ := spec2.Normalize(r.Generation())
	r.SetDesired(simtime.Time(simtime.Second), d2)
	r.Reconcile(simtime.Time(simtime.Second))

	if !r.Converged() {
		t.Fatalf("not converged after re-apply: %+v", r.Statuses())
	}
	if r.Writes() != writes || len(ft.calls) != calls {
		t.Fatalf("re-apply wrote: writes %d->%d, calls %d->%d (%v)",
			writes, r.Writes(), calls, len(ft.calls), ft.calls)
	}
	if g := r.Statuses()[0].ObservedGeneration; g != 2 {
		t.Errorf("observed generation = %d, want 2", g)
	}
}

// TestReconcileRetryAfterTableFull injects a one-time mid-apply
// ErrTableFull and checks the key degrades, backs off, and converges on
// the retry.
func TestReconcileRetryAfterTableFull(t *testing.T) {
	ft := newFakeTarget()
	ft.failNext["add"] = 1
	r := New(ft, Config{BaseBackoff: simtime.Millisecond})
	d, _ := specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080"}}).Normalize(0)
	r.SetDesired(0, d)
	r.Reconcile(0)

	if r.Converged() {
		t.Fatal("converged despite injected failure")
	}
	st := r.Statuses()[0]
	if st.Condition != CondDegraded || st.Reason != "Retrying" {
		t.Fatalf("status %+v, want Degraded/Retrying", st)
	}
	due, ok := r.NextDue()
	if !ok || due != simtime.Time(simtime.Millisecond) {
		t.Fatalf("NextDue = %v,%v, want 1ms backoff", due, ok)
	}

	// Before the backoff deadline the key must not re-fire.
	r.Reconcile(due - 1)
	if len(ft.calls) != 1 {
		t.Fatalf("retried before backoff: %v", ft.calls)
	}
	r.Reconcile(due)
	if !r.Converged() {
		t.Fatalf("not converged after retry: %+v", r.Statuses())
	}
}

// TestReconcileRetriesExhausted drives a permanently failing key past its
// budget and checks it lands in CondError but keeps retrying.
func TestReconcileRetriesExhausted(t *testing.T) {
	ft := newFakeTarget()
	ft.failNext["add"] = 100
	r := New(ft, Config{BaseBackoff: simtime.Millisecond, MaxBackoff: simtime.Millisecond,
		MaxRetries: 3})
	d, _ := specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080"}}).Normalize(0)
	r.SetDesired(0, d)

	now := simtime.Time(0)
	for i := 0; i < 6; i++ {
		r.Reconcile(now)
		now = now.Add(simtime.Millisecond)
	}
	st := r.Statuses()[0]
	if st.Condition != CondError || st.Reason != "RetriesExhausted" {
		t.Fatalf("status %+v, want Error/RetriesExhausted", st)
	}
	if _, ok := r.NextDue(); !ok {
		t.Fatal("errored key abandoned: no retry queued")
	}

	// The fault clears; the next due round converges and the status heals.
	ft.failNext["add"] = 0
	r.Reconcile(now)
	if !r.Converged() {
		t.Fatalf("not converged after fault cleared: %+v", r.Statuses())
	}
}

// TestReconcileMeterChange checks a meter-only change converges via
// remove+re-add (meters bind at VIP installation).
func TestReconcileMeterChange(t *testing.T) {
	ft := newFakeTarget()
	r := New(ft, Config{})
	d, _ := specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080"}}).Normalize(0)
	r.SetDesired(0, d)
	r.Reconcile(0)

	d2, _ := specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080"},
		MeterBytesPerSec: 5e5}).Normalize(1)
	r.SetDesired(0, d2)
	r.Reconcile(0)

	if !r.Converged() {
		t.Fatalf("not converged: %+v", r.Statuses())
	}
	if got := ft.meters[mustVIP(t, "10.0.0.1:80")]; got != 5e5 {
		t.Errorf("meter = %v, want 5e5", got)
	}
	want := []string{"add 10.0.0.1:80/tcp", "remove 10.0.0.1:80/tcp", "add 10.0.0.1:80/tcp"}
	if fmt.Sprint(ft.calls) != fmt.Sprint(want) {
		t.Errorf("calls %v, want %v", ft.calls, want)
	}
}

// TestDetectDrift wipes the fake behind the reconciler's back and checks
// the drift scan re-installs the spec.
func TestDetectDrift(t *testing.T) {
	ft := newFakeTarget()
	r := New(ft, Config{})
	d, _ := specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080"}}).Normalize(0)
	r.SetDesired(0, d)
	r.Reconcile(0)

	// Out-of-band wipe plus an undesired stray VIP.
	vip := mustVIP(t, "10.0.0.1:80")
	delete(ft.pools, vip)
	stray := mustVIP(t, "10.9.9.9:99")
	ft.pools[stray] = []dataplane.DIP{dip("9.9.9.9:9")}

	if n := r.DetectDrift(simtime.Time(simtime.Second)); n != 2 {
		t.Fatalf("DetectDrift = %d, want 2", n)
	}
	r.Reconcile(simtime.Time(simtime.Second))
	if !r.Converged() {
		t.Fatalf("not converged after drift repair: %+v", r.Statuses())
	}
	if _, ok := ft.pools[vip]; !ok {
		t.Error("desired VIP not re-installed")
	}
	if _, ok := ft.pools[stray]; ok {
		t.Error("stray VIP not removed")
	}
}

func TestWorkqueueBound(t *testing.T) {
	q := newWorkqueue(2)
	v := func(i int) dataplane.VIP {
		return dataplane.VIP{Addr: netip.MustParseAddr(fmt.Sprintf("10.0.0.%d", i)), Port: 80}
	}
	if !q.Add(v(1), 0) || !q.Add(v(2), 0) {
		t.Fatal("adds under bound rejected")
	}
	if q.Add(v(3), 0) {
		t.Fatal("add over bound accepted")
	}
	if q.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", q.Dropped())
	}
	// Re-adding a queued key is not a drop.
	if !q.Add(v(1), 5) {
		t.Fatal("re-add of queued key rejected")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2", q.Len())
	}
}

func TestImperativeEditsShareEngine(t *testing.T) {
	ft := newFakeTarget()
	r := New(ft, Config{})
	vip := mustVIP(t, "10.0.0.1:80")
	a, b := dip("1.1.1.1:8080"), dip("1.1.1.2:8080")

	if err := r.EditAdd(0, vip, []dataplane.DIP{a}, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.EditAdd(0, vip, []dataplane.DIP{a}, 0); !errors.Is(err, dataplane.ErrVIPExists) {
		t.Fatalf("duplicate add: %v, want ErrVIPExists", err)
	}
	if err := r.EditPool(0, vip, func(pool []dataplane.DIP) ([]dataplane.DIP, error) {
		return append(pool, b), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !SamePool(ft.pools[vip], []dataplane.DIP{a, b}) {
		t.Fatalf("pool = %v, want [a b]", ft.pools[vip])
	}
	// A failing edit reverts desired state: the pool diff stays clean.
	ft.failNext["update"] = 1
	err := r.EditPool(0, vip, func(pool []dataplane.DIP) ([]dataplane.DIP, error) {
		return pool[:1], nil
	})
	if !errors.Is(err, cuckoo.ErrTableFull) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	if want := r.Desired().VIPs[vip].Pool; !SamePool(want, []dataplane.DIP{a, b}) {
		t.Fatalf("desired not reverted: %v", want)
	}
	if err := r.EditRemove(0, vip); err != nil {
		t.Fatal(err)
	}
	if err := r.EditRemove(0, vip); !errors.Is(err, dataplane.ErrUnknownVIP) {
		t.Fatalf("double remove: %v, want ErrUnknownVIP", err)
	}
	if r.Converged() == false {
		t.Fatalf("not converged after edits: %+v", r.Statuses())
	}
}

// --- fleet ---------------------------------------------------------------

type fakeFleet struct{ targets []*fakeTarget }

func (f fakeFleet) Members() int        { return len(f.targets) }
func (f fakeFleet) Target(i int) Target { return f.targets[i] }
func newFakeFleet(n int) fakeFleet {
	f := fakeFleet{}
	for i := 0; i < n; i++ {
		f.targets = append(f.targets, newFakeTarget())
	}
	return f
}

// driveFleet steps the fleet until convergence or the round budget runs
// out, advancing virtual time past every backoff deadline.
func driveFleet(t *testing.T, c *ClusterReconciler, start simtime.Time, rounds int) simtime.Time {
	t.Helper()
	now := start
	for i := 0; i < rounds; i++ {
		if c.Step(now) && c.Converged() {
			return now
		}
		if due, ok := c.NextDue(); ok && due.After(now) {
			now = due
		} else {
			now = now.Add(simtime.Millisecond)
		}
	}
	t.Fatalf("fleet not converged after %d rounds", rounds)
	return now
}

// TestFleetRollingUpdate checks a two-generation rollout converges member
// by member and that the second apply of the same content is a no-op.
func TestFleetRollingUpdate(t *testing.T) {
	fleet := newFakeFleet(3)
	c := NewCluster(fleet, FleetConfig{})

	specV1 := specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080", "1.1.1.2:8080"}})
	if err := c.SetSpec(0, specV1); err != nil {
		t.Fatal(err)
	}
	now := driveFleet(t, c, 0, 100)
	for i, ft := range fleet.targets {
		if !SamePool(ft.pools[mustVIP(t, "10.0.0.1:80")],
			[]dataplane.DIP{dip("1.1.1.1:8080"), dip("1.1.1.2:8080")}) {
			t.Fatalf("member %d pool wrong: %v", i, ft.pools)
		}
	}

	// Generation 2: rolling pool change.
	specV2 := specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"1.1.1.1:8080", "1.1.1.3:8080"}})
	if err := c.SetSpec(now, specV2); err != nil {
		t.Fatal(err)
	}
	now = driveFleet(t, c, now, 100)
	for i, ft := range fleet.targets {
		if !SamePool(ft.pools[mustVIP(t, "10.0.0.1:80")],
			[]dataplane.DIP{dip("1.1.1.1:8080"), dip("1.1.1.3:8080")}) {
			t.Fatalf("member %d pool not rolled: %v", i, ft.pools)
		}
	}
	for _, st := range c.Statuses() {
		if st.Condition != CondApplied || st.ObservedGeneration != 2 {
			t.Errorf("fleet status %+v, want Applied@2", st)
		}
	}

	// Idempotency: re-submitting generation 2 with identical content is
	// accepted as a no-op and writes nothing.
	var writes uint64
	for i := range fleet.targets {
		writes += c.Member(i).Writes()
	}
	specV2b := specV2.Clone()
	specV2b.Generation = 2
	if err := c.SetSpec(now, specV2b); err != nil {
		t.Fatalf("idempotent re-apply rejected: %v", err)
	}
	c.Step(now)
	var writes2 uint64
	for i := range fleet.targets {
		writes2 += c.Member(i).Writes()
	}
	if writes2 != writes {
		t.Fatalf("idempotent re-apply wrote: %d -> %d", writes, writes2)
	}
	// Same generation, different content: rejected.
	specV2c := specOf(VIPSpec{VIP: "10.0.0.1:80", Pool: []string{"9.9.9.9:9:"}})
	specV2c.Generation = 2
	if err := c.SetSpec(now, specV2c); err == nil {
		t.Fatal("conflicting re-apply of same generation accepted")
	}
}

// TestFleetDrainGate checks member i+1 is not touched until member i has
// drained its pending work.
func TestFleetDrainGate(t *testing.T) {
	fleet := newFakeFleet(2)
	c := NewCluster(fleet, FleetConfig{})
	fleet.targets[0].pending = 3 // member 0 busy absorbing inserts

	if err := c.SetSpec(0, specOf(VIPSpec{VIP: "10.0.0.1:80",
		Pool: []string{"1.1.1.1:8080"}})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Step(simtime.Time(i) * simtime.Time(simtime.Millisecond))
	}
	if len(fleet.targets[1].calls) != 0 {
		t.Fatalf("member 1 touched before member 0 drained: %v", fleet.targets[1].calls)
	}
	fleet.targets[0].pending = 0
	driveFleet(t, c, simtime.Time(20*simtime.Millisecond), 100)
	if len(fleet.targets[1].calls) == 0 {
		t.Fatal("member 1 never updated after drain")
	}
}

// TestFleetRolloutGate checks a firing fleet alert (the SLO engine's
// page-severity signal) holds an in-flight rollout: no member receives the
// new generation while the gate pauses, statuses report the hold, and the
// rollout completes once the gate clears.
func TestFleetRolloutGate(t *testing.T) {
	fleet := newFakeFleet(3)
	c := NewCluster(fleet, FleetConfig{})
	paused := false
	c.SetRolloutGate(func() (bool, string) { return paused, "page firing" })

	if err := c.SetSpec(0, specOf(VIPSpec{VIP: "10.0.0.1:80",
		Pool: []string{"1.1.1.1:8080"}})); err != nil {
		t.Fatal(err)
	}
	now := driveFleet(t, c, 0, 100)
	if c.RolloutPaused() {
		t.Fatal("RolloutPaused true with no gate trip")
	}

	paused = true
	if err := c.SetSpec(now, specOf(VIPSpec{VIP: "10.0.0.1:80",
		Pool: []string{"1.1.1.1:8080", "1.1.1.2:8080"}})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		now = now.Add(simtime.Millisecond)
		if c.Step(now) {
			t.Fatal("fleet converged through a closed gate")
		}
	}
	if !c.RolloutPaused() {
		t.Fatal("RolloutPaused false while gate trips mid-rollout")
	}
	for i := range fleet.targets {
		if g := c.Member(i).Generation(); g >= 2 {
			t.Fatalf("member %d received generation %d through a closed gate", i, g)
		}
	}
	for _, st := range c.Statuses() {
		if st.Condition != CondDegraded || st.Reason != "RolloutPaused" {
			t.Fatalf("paused status %+v, want Degraded/RolloutPaused", st)
		}
	}

	paused = false
	driveFleet(t, c, now, 100)
	if c.RolloutPaused() {
		t.Fatal("RolloutPaused true after gate cleared and rollout finished")
	}
	for _, st := range c.Statuses() {
		if st.Condition != CondApplied || st.ObservedGeneration != 2 {
			t.Errorf("fleet status %+v, want Applied@2", st)
		}
	}
}

// TestFleetRollback rejects the rollout on member 1 (retry budget
// exhausted), checks member 0 is rolled back to the previous generation,
// and converges once the fault clears.
func TestFleetRollback(t *testing.T) {
	fleet := newFakeFleet(3)
	c := NewCluster(fleet, FleetConfig{Config: Config{
		BaseBackoff: simtime.Millisecond, MaxBackoff: simtime.Millisecond, MaxRetries: 1,
	}, RolloutBackoff: simtime.Millisecond})

	// Generation 1 lands everywhere.
	if err := c.SetSpec(0, specOf(VIPSpec{VIP: "10.0.0.1:80",
		Pool: []string{"1.1.1.1:8080"}})); err != nil {
		t.Fatal(err)
	}
	now := driveFleet(t, c, 0, 100)

	// Generation 2: member 1 rejects updates until the fault clears.
	fleet.targets[1].failNext["update"] = 4
	if err := c.SetSpec(now, specOf(VIPSpec{VIP: "10.0.0.1:80",
		Pool: []string{"1.1.1.1:8080", "1.1.1.2:8080"}})); err != nil {
		t.Fatal(err)
	}
	v1Pool := []dataplane.DIP{dip("1.1.1.1:8080")}
	sawRollback := false
	for i := 0; i < 200 && !sawRollback; i++ {
		c.Step(now)
		// After a rollback, member 0 must be back at the v1 pool while the
		// fleet waits out the rollout backoff.
		if !c.Converged() && SamePool(fleet.targets[0].pools[mustVIP(t, "10.0.0.1:80")], v1Pool) &&
			len(fleet.targets[0].calls) > 2 {
			sawRollback = true
		}
		if due, ok := c.NextDue(); ok && due.After(now) {
			now = due
		} else {
			now = now.Add(simtime.Millisecond)
		}
	}
	if !sawRollback {
		t.Fatal("member 0 never rolled back to the previous generation")
	}

	// Fault injection exhausts; the retried rollout converges fleet-wide.
	now = driveFleet(t, c, now, 200)
	for i, ft := range fleet.targets {
		if !SamePool(ft.pools[mustVIP(t, "10.0.0.1:80")],
			[]dataplane.DIP{dip("1.1.1.1:8080"), dip("1.1.1.2:8080")}) {
			t.Fatalf("member %d not at generation 2 after retry: %v", i, ft.pools)
		}
	}
	if c.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", c.Generation())
	}
}
