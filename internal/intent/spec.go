// Package intent is the declarative control plane: a versioned
// desired-state spec for a SilkRoad switch or fleet, and the reconciler
// that converges observed state onto it.
//
// The spec (ClusterSpec) names every VIP with its DIP pool, meter and
// generation counter; operators hand whole specs to Switch.Apply /
// Cluster.Apply (or silkroadd's -config file and PUT /v1/spec endpoint)
// instead of scripting imperative AddVIP/AddDIP/UpdatePool sequences. The
// reconciler diffs desired against observed state, drives convergence
// through a bounded per-key workqueue with retry/backoff, and reports
// per-VIP status conditions (Applied/Degraded/Error) with the observed
// generation — the kube-style controller shape, sized for a switch fleet.
//
// Fleet rollouts (ClusterReconciler) update one switch at a time, gated
// on the previous switch's pending-insert drain (§4.2's noPendingBefore
// discipline lifted to the fleet), and roll already-updated switches back
// to the prior generation when a mid-rollout switch fails.
package intent

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/dataplane"
	"repro/internal/netproto"
)

// SpecVersion is the schema version accepted in ClusterSpec.Version.
const SpecVersion = "silkroad/v1"

// VIPSpec declares one VIP's desired state.
type VIPSpec struct {
	// VIP is "addr:port" or "addr:port/proto"; proto is tcp (default) or
	// udp.
	VIP string `json:"vip"`
	// Pool is the desired DIP pool, each entry "addr:port". Order is
	// irrelevant: pools are compared as multisets.
	Pool []string `json:"pool"`
	// MeterBytesPerSec > 0 attaches a hardware meter (§4 SYN-flood
	// isolation); 0 leaves the VIP unmetered.
	MeterBytesPerSec float64 `json:"meter_bytes_per_sec,omitempty"`
	// SRAMBytes and TrafficBps optionally declare the VIP's demands for
	// network-wide placement admission (internal/netwide). Zero means
	// "not declared" and skips the placement check for this VIP.
	SRAMBytes  int     `json:"demand_sram_bytes,omitempty"`
	TrafficBps float64 `json:"demand_bps,omitempty"`
}

// ClusterSpec is the versioned desired state of a switch or fleet.
type ClusterSpec struct {
	// Version must be SpecVersion.
	Version string `json:"version"`
	// Generation orders specs: a spec with a generation lower than the
	// last applied one is rejected as stale. 0 auto-assigns last+1.
	Generation uint64 `json:"generation,omitempty"`
	// VIPs is the complete desired VIP set; a VIP absent here is removed.
	VIPs []VIPSpec `json:"vips"`
}

// Clone returns a deep copy of the spec.
func (s *ClusterSpec) Clone() *ClusterSpec {
	if s == nil {
		return nil
	}
	out := &ClusterSpec{Version: s.Version, Generation: s.Generation}
	out.VIPs = make([]VIPSpec, len(s.VIPs))
	for i, v := range s.VIPs {
		out.VIPs[i] = v
		out.VIPs[i].Pool = append([]string(nil), v.Pool...)
	}
	return out
}

// FieldError locates one validation failure in a spec.
type FieldError struct {
	Field string `json:"field"` // e.g. "vips[2].pool[0]"
	Msg   string `json:"msg"`
}

// ValidationError collects every FieldError found in a spec, so callers
// (and silkroadd's 422 response) can report them all at once.
type ValidationError struct {
	Errors []FieldError `json:"errors"`
}

// Error implements error.
func (e *ValidationError) Error() string {
	if len(e.Errors) == 0 {
		return "intent: invalid spec"
	}
	parts := make([]string, len(e.Errors))
	for i, fe := range e.Errors {
		parts[i] = fe.Field + ": " + fe.Msg
	}
	return "intent: invalid spec: " + strings.Join(parts, "; ")
}

// ParseSpec decodes a JSON spec strictly (unknown fields are errors, so a
// typo'd key fails loudly instead of silently dropping config).
func ParseSpec(data []byte) (*ClusterSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s ClusterSpec
	if err := dec.Decode(&s); err != nil {
		return nil, &ValidationError{Errors: []FieldError{{Field: "", Msg: err.Error()}}}
	}
	return &s, nil
}

// ParseVIP parses "addr:port" or "addr:port/proto" into a dataplane VIP.
func ParseVIP(s string) (dataplane.VIP, error) {
	addr, proto := s, "tcp"
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		addr, proto = s[:i], s[i+1:]
	}
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		return dataplane.VIP{}, fmt.Errorf("bad addr:port %q: %v", addr, err)
	}
	var p netproto.Proto
	switch strings.ToLower(proto) {
	case "tcp":
		p = netproto.ProtoTCP
	case "udp":
		p = netproto.ProtoUDP
	default:
		return dataplane.VIP{}, fmt.Errorf("bad proto %q (want tcp or udp)", proto)
	}
	return dataplane.VIP{Addr: ap.Addr(), Port: ap.Port(), Proto: p}, nil
}

// FormatVIP renders a VIP the way specs and statuses spell it
// (addr:port/proto, matching telemetry.VIPKey.String).
func FormatVIP(v dataplane.VIP) string { return v.String() }

// VIPDesired is one VIP's normalized desired state.
type VIPDesired struct {
	Pool             []dataplane.DIP
	MeterBytesPerSec float64
}

// Desired is a validated, normalized spec: the form the reconciler diffs
// against observed state.
type Desired struct {
	Generation uint64
	VIPs       map[dataplane.VIP]VIPDesired
}

// Keys returns the desired VIPs sorted by their spec spelling, for
// deterministic iteration.
func (d Desired) Keys() []dataplane.VIP {
	out := make([]dataplane.VIP, 0, len(d.VIPs))
	for v := range d.VIPs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return FormatVIP(out[i]) < FormatVIP(out[j]) })
	return out
}

// Validate checks the spec and returns a *ValidationError listing every
// problem, or nil.
func (s *ClusterSpec) Validate() error {
	var errs []FieldError
	add := func(field, msg string) { errs = append(errs, FieldError{Field: field, Msg: msg}) }
	if s.Version != SpecVersion {
		add("version", fmt.Sprintf("unsupported version %q (want %q)", s.Version, SpecVersion))
	}
	seen := make(map[dataplane.VIP]bool, len(s.VIPs))
	for i, vs := range s.VIPs {
		field := fmt.Sprintf("vips[%d]", i)
		vip, err := ParseVIP(vs.VIP)
		if err != nil {
			add(field+".vip", err.Error())
		} else if seen[vip] {
			add(field+".vip", fmt.Sprintf("duplicate VIP %s", FormatVIP(vip)))
		} else {
			seen[vip] = true
		}
		if len(vs.Pool) == 0 {
			add(field+".pool", "empty DIP pool")
		}
		for j, ds := range vs.Pool {
			if _, err := netip.ParseAddrPort(ds); err != nil {
				add(fmt.Sprintf("%s.pool[%d]", field, j), err.Error())
			}
		}
		if vs.MeterBytesPerSec < 0 {
			add(field+".meter_bytes_per_sec", "must be >= 0")
		}
		if vs.SRAMBytes < 0 {
			add(field+".demand_sram_bytes", "must be >= 0")
		}
		if vs.TrafficBps < 0 {
			add(field+".demand_bps", "must be >= 0")
		}
	}
	if len(errs) > 0 {
		return &ValidationError{Errors: errs}
	}
	return nil
}

// Normalize validates the spec and returns its Desired form. lastGen is
// the generation of the previously applied spec: a lower explicit
// generation is rejected as stale, and Generation == 0 auto-assigns
// lastGen+1.
func (s *ClusterSpec) Normalize(lastGen uint64) (Desired, error) {
	if err := s.Validate(); err != nil {
		return Desired{}, err
	}
	gen := s.Generation
	if gen == 0 {
		gen = lastGen + 1
	} else if gen < lastGen {
		return Desired{}, &ValidationError{Errors: []FieldError{{
			Field: "generation",
			Msg:   fmt.Sprintf("stale generation %d (last applied %d)", gen, lastGen),
		}}}
	}
	d := Desired{Generation: gen, VIPs: make(map[dataplane.VIP]VIPDesired, len(s.VIPs))}
	for _, vs := range s.VIPs {
		vip, _ := ParseVIP(vs.VIP)
		pool := make([]dataplane.DIP, len(vs.Pool))
		for j, ds := range vs.Pool {
			pool[j], _ = netip.ParseAddrPort(ds)
		}
		d.VIPs[vip] = VIPDesired{Pool: pool, MeterBytesPerSec: vs.MeterBytesPerSec}
	}
	return d, nil
}

// SamePool reports whether two pools hold the same DIPs as multisets
// (order-insensitive — the reconciler must not churn hardware when only
// the spec's listing order changed).
func SamePool(a, b []dataplane.DIP) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[dataplane.DIP]int, len(a))
	for _, d := range a {
		counts[d]++
	}
	for _, d := range b {
		counts[d]--
		if counts[d] < 0 {
			return false
		}
	}
	return true
}

// clonePool copies a pool slice (never aliasing caller memory into
// desired state).
func clonePool(pool []dataplane.DIP) []dataplane.DIP {
	return append([]dataplane.DIP(nil), pool...)
}
