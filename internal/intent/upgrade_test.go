package intent

import (
	"testing"

	"repro/internal/handoff"
	"repro/internal/simtime"
)

// upFleet scripts the UpgradeOps surface: each member's drain and
// rejoin take a fixed number of pumps; drains can be wedged (zero
// progress) and the warm gate can demand re-announces.
type upFleet struct {
	n          int
	drainLeft  map[int]int // pumps until drain completes
	rejoinLeft map[int]int
	wedged     map[int]bool // drain never progresses
	needWarm   map[int]int  // re-announces required before warm

	draining  int // active donor, -1 none
	rejoining int
	upgraded  []int
	cancels   int
	announces map[int]int
}

func newUpFleet(n int) *upFleet {
	f := &upFleet{
		n: n, draining: -1, rejoining: -1,
		drainLeft:  map[int]int{},
		rejoinLeft: map[int]int{},
		wedged:     map[int]bool{},
		needWarm:   map[int]int{},
		announces:  map[int]int{},
	}
	for i := 0; i < n; i++ {
		f.drainLeft[i] = 3
		f.rejoinLeft[i] = 2
	}
	return f
}

func (f *upFleet) Switches() int { return f.n }

func (f *upFleet) DrainSwitch(now simtime.Time, i int) error {
	f.draining = i
	return nil
}

func (f *upFleet) DrainStep(now simtime.Time, budget int) (int, bool, error) {
	i := f.draining
	if f.wedged[i] {
		return 0, false, nil
	}
	f.drainLeft[i]--
	if f.drainLeft[i] <= 0 {
		f.draining = -1
		return budget, true, nil
	}
	return budget, false, nil
}

func (f *upFleet) CancelDrain(now simtime.Time) error {
	f.cancels++
	f.draining = -1
	return nil
}

func (f *upFleet) UpgradeSwitch(i int) error {
	f.upgraded = append(f.upgraded, i)
	return nil
}

func (f *upFleet) RestoreSwitch(i int) error { return nil }

func (f *upFleet) RejoinSwitch(now simtime.Time, i int) error {
	if f.needWarm[i] > f.announces[i] {
		return handoff.ErrNotWarm
	}
	f.rejoining = i
	return nil
}

func (f *upFleet) RejoinStep(now simtime.Time, budget int) (int, bool, error) {
	i := f.rejoining
	f.rejoinLeft[i]--
	if f.rejoinLeft[i] <= 0 {
		f.rejoining = -1
		return budget, true, nil
	}
	return budget, false, nil
}

func (f *upFleet) CancelRejoin(now simtime.Time) error {
	f.cancels++
	f.rejoining = -1
	return nil
}

// drive pumps the upgrader to completion under virtual time.
func drive(t *testing.T, u *Upgrader, fleet *upFleet) simtime.Time {
	t.Helper()
	now := simtime.Time(0)
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatalf("rollout did not finish; member/phase: %v", fleet)
		}
		done, err := u.Step(now)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return now
		}
		now = now.Add(100 * simtime.Millisecond)
	}
}

func TestUpgraderRollsWholeFleet(t *testing.T) {
	fleet := newUpFleet(3)
	u := NewUpgrader(fleet, nil, UpgradeConfig{})
	drive(t, u, fleet)
	if got := len(fleet.upgraded); got != 3 {
		t.Fatalf("upgraded %d members, want 3 (%v)", got, fleet.upgraded)
	}
	// One member at a time, in order.
	for i, m := range fleet.upgraded {
		if m != i {
			t.Fatalf("rollout order %v, want ascending", fleet.upgraded)
		}
	}
	for i := 0; i < 3; i++ {
		if u.Phase(i) != UpgradeDone {
			t.Fatalf("member %d phase %v", i, u.Phase(i))
		}
	}
	if u.Rollbacks != 0 {
		t.Fatalf("clean rollout recorded %d rollbacks", u.Rollbacks)
	}
}

func TestUpgraderRollsBackStalledDrain(t *testing.T) {
	fleet := newUpFleet(2)
	fleet.wedged[0] = true
	u := NewUpgrader(fleet, nil, UpgradeConfig{
		StallTimeout: 300 * simtime.Millisecond,
		MaxRetries:   2,
	})
	drive(t, u, fleet)
	// Member 0 wedged: its drain was cancelled (rolled back) on every
	// attempt and it was finally skipped — still in service, never taken
	// down. Member 1 rolled normally.
	if fleet.cancels == 0 || u.Rollbacks == 0 {
		t.Fatal("stalled drain was never rolled back")
	}
	for _, m := range fleet.upgraded {
		if m == 0 {
			t.Fatal("wedged member was taken down")
		}
	}
	if u.Phase(0) != UpgradeFailed {
		t.Fatalf("wedged member phase %v, want failed", u.Phase(0))
	}
	if u.Phase(1) != UpgradeDone {
		t.Fatalf("healthy member phase %v, want done", u.Phase(1))
	}
	if got := u.Failed(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Failed() = %v", got)
	}
}

func TestUpgraderWaitsForWarmGate(t *testing.T) {
	fleet := newUpFleet(2)
	fleet.needWarm[1] = 2 // member 1 warms only after a second re-announce
	announced := map[int]int{}
	u := NewUpgrader(fleet, nil, UpgradeConfig{
		WarmTimeout: 200 * simtime.Millisecond,
		Reannounce: func(now simtime.Time, m int) error {
			announced[m]++
			fleet.announces[m]++
			return nil
		},
	})
	drive(t, u, fleet)
	if announced[1] < 2 {
		t.Fatalf("member 1 re-announced %d times, want >= 2", announced[1])
	}
	if u.Phase(1) != UpgradeDone {
		t.Fatalf("member 1 phase %v", u.Phase(1))
	}
	// The swap always re-announces once before probing the gate.
	if announced[0] != 1 {
		t.Fatalf("member 0 announced %d times, want 1", announced[0])
	}
}
