package intent

import (
	"errors"
	"fmt"

	"repro/internal/handoff"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// UpgradeOps is the fleet surface the rolling-upgrade orchestrator
// drives: warm drains, take-down/restore, and drain-gated rejoin. The
// cluster package satisfies it; defining the interface here keeps the
// dependency arrow pointing the right way (cluster imports intent).
type UpgradeOps interface {
	Switches() int
	DrainSwitch(now simtime.Time, i int) error
	DrainStep(now simtime.Time, budget int) (moved int, done bool, err error)
	CancelDrain(now simtime.Time) error
	UpgradeSwitch(i int) error
	RestoreSwitch(i int) error
	RejoinSwitch(now simtime.Time, i int) error
	RejoinStep(now simtime.Time, budget int) (moved int, done bool, err error)
	CancelRejoin(now simtime.Time) error
}

// UpgradePhase is one member's position in the rollout.
type UpgradePhase uint8

// Rollout phases. A member in UpgradeFailed was left IN SERVICE (drain
// rolled back) or serving without its buckets (rejoin abandoned); either
// way the fleet keeps forwarding.
const (
	UpgradePending UpgradePhase = iota
	UpgradeDraining
	UpgradeRejoining
	UpgradeDone
	UpgradeFailed
)

var upgradePhaseNames = [...]string{"pending", "draining", "rejoining", "done", "failed"}

func (p UpgradePhase) String() string {
	if int(p) < len(upgradePhaseNames) {
		return upgradePhaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// UpgradeConfig parameterizes an Upgrader.
type UpgradeConfig struct {
	// Budget bounds records pumped per Step (default 256).
	Budget int
	// StallTimeout rolls the in-flight transfer back after this long with
	// zero progress (default 2s virtual).
	StallTimeout simtime.Duration
	// BaseBackoff delays the retry after a rollback, doubling per attempt
	// up to MaxBackoff (defaults 100ms / 5s).
	BaseBackoff simtime.Duration
	MaxBackoff  simtime.Duration
	// MaxRetries bounds rollbacks per member before it is skipped — left
	// serving on the old version rather than wedging the rollout
	// (default 4).
	MaxRetries int
	// WarmTimeout bounds how long the rejoin waits on the warm gate
	// before re-announcing and counting a retry (default 2s virtual).
	WarmTimeout simtime.Duration
	// Reannounce restores VIP state on a freshly rebooted member —
	// typically the member's reconciler re-applying the spec, or
	// Cluster.ReannounceTo. Called after RestoreSwitch and again on warm
	// timeouts.
	Reannounce func(now simtime.Time, member int) error
	// Tracer receives ReconcileEvents with Op "upgrade-*" (nil = NopTracer).
	Tracer telemetry.Tracer
}

func (c UpgradeConfig) withDefaults() UpgradeConfig {
	if c.Budget <= 0 {
		c.Budget = 256
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 2 * simtime.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * simtime.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * simtime.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.WarmTimeout <= 0 {
		c.WarmTimeout = 2 * simtime.Second
	}
	if c.Tracer == nil {
		c.Tracer = telemetry.NopTracer{}
	}
	return c
}

// Upgrader rolls a fleet through drain -> migrate -> upgrade -> rejoin,
// one member at a time, gated on handoff completion: a member is taken
// down only after its shard has warm-migrated to peers, and takes
// traffic again only after its shard has migrated back through the warm
// gate. Stalled transfers roll back (the drain cancels, the member keeps
// serving) and retry with exponential backoff; a member that exhausts
// its retries is skipped, never wedged half-out of service.
type Upgrader struct {
	cfg   UpgradeConfig
	ops   UpgradeOps
	order []int
	idx   int
	phase UpgradePhase

	retries      int
	lastProgress simtime.Time
	notBefore    simtime.Time
	warmSince    simtime.Time
	rejoinBegun  bool

	phases map[int]UpgradePhase

	// Rollbacks counts cancelled transfers across the rollout.
	Rollbacks uint64
}

// NewUpgrader builds a rollout over ops covering members in order (nil =
// every member ascending).
func NewUpgrader(ops UpgradeOps, order []int, cfg UpgradeConfig) *Upgrader {
	if order == nil {
		for i := 0; i < ops.Switches(); i++ {
			order = append(order, i)
		}
	}
	u := &Upgrader{cfg: cfg.withDefaults(), ops: ops, order: order,
		phases: make(map[int]UpgradePhase)}
	for _, m := range order {
		u.phases[m] = UpgradePending
	}
	return u
}

// Done reports whether every member has been processed.
func (u *Upgrader) Done() bool { return u.idx >= len(u.order) }

// Current returns the member being rolled and its phase.
func (u *Upgrader) Current() (member int, phase UpgradePhase, ok bool) {
	if u.Done() {
		return 0, UpgradeDone, false
	}
	return u.order[u.idx], u.phase, true
}

// Phase returns member m's rollout phase.
func (u *Upgrader) Phase(m int) UpgradePhase { return u.phases[m] }

// Failed returns the members skipped after exhausting their retries.
func (u *Upgrader) Failed() []int {
	var out []int
	for _, m := range u.order {
		if u.phases[m] == UpgradeFailed {
			out = append(out, m)
		}
	}
	return out
}

// Step advances the rollout by one pump. The caller drives it under
// virtual time, advancing the fleet between calls; done reports rollout
// completion. Errors from the ops surface that are not part of the
// protocol (bad index, dead switch) abort the current member.
func (u *Upgrader) Step(now simtime.Time) (done bool, err error) {
	if u.Done() {
		return true, nil
	}
	if now.Before(u.notBefore) {
		return false, nil
	}
	m := u.order[u.idx]
	switch u.phase {
	case UpgradePending:
		if err := u.ops.DrainSwitch(now, m); err != nil {
			return false, err
		}
		u.setPhase(m, UpgradeDraining)
		u.lastProgress = now

	case UpgradeDraining:
		moved, ddone, err := u.ops.DrainStep(now, u.cfg.Budget)
		if err != nil {
			return false, err
		}
		if moved > 0 {
			u.lastProgress = now
		}
		if ddone {
			if err := u.swap(now, m); err != nil {
				return false, err
			}
			break
		}
		if now.Sub(u.lastProgress) > u.cfg.StallTimeout {
			u.rollback(now, m, "upgrade-drain", u.ops.CancelDrain, UpgradePending)
		}

	case UpgradeRejoining:
		if !u.rejoinBegun {
			switch err := u.ops.RejoinSwitch(now, m); {
			case err == nil:
				u.rejoinBegun = true
				u.lastProgress = now
			case errors.Is(err, handoff.ErrNotWarm):
				if now.Sub(u.warmSince) > u.cfg.WarmTimeout {
					// The member never warmed: re-announce and retry.
					u.reannounce(now, m)
					u.warmSince = now
					u.countRetry(now, m, "upgrade-warm")
				}
			default:
				return false, err
			}
			break
		}
		moved, rdone, err := u.ops.RejoinStep(now, u.cfg.Budget)
		if err != nil {
			return false, err
		}
		if moved > 0 {
			u.lastProgress = now
		}
		if rdone {
			u.setPhase(m, UpgradeDone)
			u.event(now, m, telemetry.ReconcileApply, "upgrade-done", nil)
			u.advance()
			break
		}
		if now.Sub(u.lastProgress) > u.cfg.StallTimeout {
			u.rejoinBegun = false
			u.rollback(now, m, "upgrade-rejoin", u.ops.CancelRejoin, UpgradeRejoining)
		}
	}
	return u.Done(), nil
}

// swap is the take-down/bring-up between the two migrations: the drained
// member goes down, comes back fresh, and gets its VIP state
// re-announced before the warm gate is probed.
func (u *Upgrader) swap(now simtime.Time, m int) error {
	if err := u.ops.UpgradeSwitch(m); err != nil {
		return err
	}
	if err := u.ops.RestoreSwitch(m); err != nil {
		return err
	}
	u.reannounce(now, m)
	u.setPhase(m, UpgradeRejoining)
	u.rejoinBegun = false
	u.warmSince = now
	u.lastProgress = now
	u.event(now, m, telemetry.ReconcileApply, "upgrade-swap", nil)
	return nil
}

func (u *Upgrader) reannounce(now simtime.Time, m int) {
	if u.cfg.Reannounce == nil {
		return
	}
	if err := u.cfg.Reannounce(now, m); err != nil {
		u.event(now, m, telemetry.ReconcileRetry, "upgrade-reannounce", err)
	}
}

// rollback cancels the in-flight transfer, emits the rollback event, and
// schedules the retry with exponential backoff. Exhausted retries skip
// the member: a cancelled drain leaves it fully in service; an abandoned
// rejoin leaves its buckets with the survivors — forwarding continues
// either way.
func (u *Upgrader) rollback(now simtime.Time, m int, op string, cancel func(simtime.Time) error, back UpgradePhase) {
	_ = cancel(now)
	u.Rollbacks++
	u.setPhase(m, back)
	u.event(now, m, telemetry.ReconcileRollback, op, nil)
	u.countRetry(now, m, op)
}

func (u *Upgrader) countRetry(now simtime.Time, m int, op string) {
	u.retries++
	if u.retries > u.cfg.MaxRetries {
		u.setPhase(m, UpgradeFailed)
		u.event(now, m, telemetry.ReconcileError, op, nil)
		u.advance()
		return
	}
	d := u.cfg.BaseBackoff
	for i := 1; i < u.retries; i++ {
		d *= 2
		if d >= u.cfg.MaxBackoff {
			d = u.cfg.MaxBackoff
			break
		}
	}
	u.notBefore = now.Add(d)
}

func (u *Upgrader) setPhase(m int, p UpgradePhase) {
	u.phase = p
	u.phases[m] = p
}

func (u *Upgrader) advance() {
	u.idx++
	u.retries = 0
	u.notBefore = 0
	u.rejoinBegun = false
	if !u.Done() {
		u.phase = UpgradePending
	}
}

func (u *Upgrader) event(now simtime.Time, m int, step telemetry.ReconcileStep, op string, err error) {
	e := telemetry.ReconcileEvent{Now: now, Member: m, Step: step, Op: op}
	if err != nil {
		e.Err = err.Error()
	}
	u.cfg.Tracer.OnReconcile(e)
}
