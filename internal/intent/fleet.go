package intent

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/netwide"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Fleet is a set of reconcile targets, one per switch.
type Fleet interface {
	Members() int
	Target(i int) Target
}

// FleetConfig parameterizes a ClusterReconciler.
type FleetConfig struct {
	// Config is the per-member reconciler configuration (Member is set
	// per member automatically).
	Config
	// Topology, when non-nil, gates SetSpec on netwide placement
	// admission: a spec whose declared VIP demands don't fit any layer
	// assignment is rejected before any switch is touched.
	Topology *netwide.Topology
	// RolloutBackoff is the delay before re-attempting a rollout after a
	// rollback (default 10ms virtual, doubling per attempt up to
	// MaxBackoff).
	RolloutBackoff simtime.Duration
}

// rolloutPhase is the fleet state machine.
type rolloutPhase int

const (
	phaseIdle    rolloutPhase = iota // converged at cur
	phaseRolling                     // advancing frontier through members
	phaseBackoff                     // rolled back, waiting to retry
)

// ClusterReconciler rolls a Desired state across a fleet one switch at a
// time: member i receives the new generation only after members 0..i-1
// have applied it AND drained their pending work (PendingWork() == 0 —
// the §4.2 pending-insert discipline lifted fleet-wide, so at most one
// switch is absorbing a pool change at any moment). When a member fails
// mid-rollout (retry budget exhausted), every already-updated member is
// rolled back to the previous generation and the rollout retries after a
// backoff.
type ClusterReconciler struct {
	cfg   FleetConfig
	fleet Fleet
	recs  []*Reconciler

	prev Desired // last fleet-wide converged state (rollback point)
	cur  Desired // state being rolled out

	phase    rolloutPhase
	frontier int          // next member to bring to cur
	retryAt  simtime.Time // phaseBackoff: when to retry the rollout
	attempt  int          // rollout attempts for cur
	lastGen  uint64

	gate   func() (bool, string) // optional rollout gate (SLO page firing)
	paused bool                  // last gate verdict while rolling
}

// SetRolloutGate installs a predicate consulted before the frontier
// advances during a rollout. When it returns pause=true (e.g. a
// page-severity SLO alert is firing somewhere in the fleet), the rollout
// holds: already-updated members keep servicing their queued retries, but
// no further switch receives the new generation until the gate clears.
func (c *ClusterReconciler) SetRolloutGate(gate func() (pause bool, reason string)) {
	c.gate = gate
}

// RolloutPaused reports whether an in-flight rollout is currently held by
// the gate.
func (c *ClusterReconciler) RolloutPaused() bool {
	return c.paused && c.phase == phaseRolling
}

// NewCluster builds a ClusterReconciler over fleet.
func NewCluster(fleet Fleet, cfg FleetConfig) *ClusterReconciler {
	if cfg.RolloutBackoff <= 0 {
		cfg.RolloutBackoff = 10 * simtime.Millisecond
	}
	cfg.Config = cfg.Config.withDefaults()
	c := &ClusterReconciler{cfg: cfg, fleet: fleet}
	for i := 0; i < fleet.Members(); i++ {
		mc := cfg.Config
		mc.Member = i
		c.recs = append(c.recs, New(fleet.Target(i), mc))
	}
	return c
}

// SetSpec validates, admission-checks and stages a new spec for rollout.
// The returned error is a *ValidationError for schema problems or a
// placement error when the declared demands don't fit the topology.
func (c *ClusterReconciler) SetSpec(now simtime.Time, spec *ClusterSpec) error {
	d, err := spec.Normalize(c.lastGen)
	if err != nil {
		return err
	}
	if c.cfg.Topology != nil {
		if err := checkPlacement(*c.cfg.Topology, spec); err != nil {
			return err
		}
	}
	if d.Generation == c.lastGen {
		// Same generation: accept only if content is identical (an
		// idempotent re-apply); otherwise the operator forgot to bump.
		if !SameDesired(d, c.cur) {
			return &ValidationError{Errors: []FieldError{{
				Field: "generation",
				Msg:   fmt.Sprintf("generation %d already applied with different content", d.Generation),
			}}}
		}
		return nil
	}
	c.prev = c.cur
	if c.prev.VIPs == nil {
		c.prev = Desired{VIPs: map[dataplane.VIP]VIPDesired{}}
	}
	c.cur = d
	c.lastGen = d.Generation
	c.phase = phaseRolling
	c.frontier = 0
	c.attempt = 0
	return nil
}

// checkPlacement runs netwide admission over the spec's declared demands.
func checkPlacement(topo netwide.Topology, spec *ClusterSpec) error {
	var demands []netwide.VIPDemand
	for _, vs := range spec.VIPs {
		if vs.SRAMBytes > 0 || vs.TrafficBps > 0 {
			demands = append(demands, netwide.VIPDemand{
				Name: vs.VIP, SRAMBytes: vs.SRAMBytes, TrafficBps: vs.TrafficBps,
			})
		}
	}
	if len(demands) == 0 {
		return nil
	}
	if _, err := netwide.Assign(topo, demands); err != nil {
		return fmt.Errorf("intent: placement admission failed: %w", err)
	}
	return nil
}

// SameDesired reports whether two desired states declare the same VIPs
// with the same pools and meters (generation excluded).
func SameDesired(a, b Desired) bool {
	if len(a.VIPs) != len(b.VIPs) {
		return false
	}
	for k, av := range a.VIPs {
		bv, ok := b.VIPs[k]
		if !ok || av.MeterBytesPerSec != bv.MeterBytesPerSec || !SamePool(av.Pool, bv.Pool) {
			return false
		}
	}
	return true
}

// Step runs one fleet reconcile round at now. Returns true when the fleet
// is converged at the staged generation.
func (c *ClusterReconciler) Step(now simtime.Time) bool {
	switch c.phase {
	case phaseIdle:
		return true

	case phaseBackoff:
		if now.Before(c.retryAt) {
			return false
		}
		c.phase = phaseRolling
		c.frontier = 0

	case phaseRolling:
	}

	// Rolling: work the frontier member; previously-updated members only
	// run retries/drift they already have queued.
	for i := 0; i < c.frontier; i++ {
		if c.recs[i].QueueLen() > 0 {
			c.recs[i].Reconcile(now)
		}
	}
	if c.frontier >= len(c.recs) {
		c.phase = phaseIdle
		c.paused = false
		c.prev = c.cur
		return true
	}

	// The rollout gate: while a page-severity alert burns, hold the
	// frontier — don't push a new generation onto a fleet that is already
	// unhealthy (queued retries above still drain).
	if c.gate != nil {
		pause, _ := c.gate()
		c.paused = pause
		if pause {
			return false
		}
	}

	// The drain gate: the previous member must have applied its writes
	// AND drained its pending inserts before the next switch moves.
	if c.frontier > 0 {
		prev := c.frontier - 1
		if !c.recs[prev].Converged() || c.fleet.Target(prev).PendingWork() > 0 {
			return false
		}
	}

	rec := c.recs[c.frontier]
	if rec.Generation() != c.cur.Generation {
		rec.SetDesired(now, c.cur)
	}
	rec.Reconcile(now)

	if c.memberFailed(rec) {
		c.rollback(now)
		return false
	}
	if rec.Converged() {
		c.frontier++
		if c.frontier == len(c.recs) {
			c.phase = phaseIdle
			c.prev = c.cur
			return true
		}
	}
	return false
}

// memberFailed reports whether the member's retry budget ran out on any
// key at the current generation.
func (c *ClusterReconciler) memberFailed(rec *Reconciler) bool {
	for _, st := range rec.Statuses() {
		if st.Condition == CondError {
			return true
		}
	}
	return false
}

// rollback returns every member at or before the frontier to the previous
// generation and schedules a rollout retry with doubling backoff.
func (c *ClusterReconciler) rollback(now simtime.Time) {
	for i := c.frontier; i >= 0; i-- {
		rec := c.recs[i]
		c.cfg.Tracer.OnReconcile(telemetry.ReconcileEvent{
			Now: now, Member: i, Step: telemetry.ReconcileRollback,
			Generation: c.cur.Generation,
		})
		rec.SetDesired(now, c.prev)
		rec.Reconcile(now)
	}
	c.attempt++
	backoff := c.cfg.RolloutBackoff
	for i := 1; i < c.attempt && backoff < c.cfg.MaxBackoff; i++ {
		backoff *= 2
	}
	if backoff > c.cfg.MaxBackoff {
		backoff = c.cfg.MaxBackoff
	}
	c.retryAt = now.Add(backoff)
	c.phase = phaseBackoff
}

// Converged reports whether every member is converged at the staged
// generation.
func (c *ClusterReconciler) Converged() bool {
	if c.phase != phaseIdle {
		return false
	}
	for _, rec := range c.recs {
		if !rec.Converged() {
			return false
		}
	}
	return true
}

// Generation returns the staged (latest accepted) generation.
func (c *ClusterReconciler) Generation() uint64 { return c.lastGen }

// Member returns member i's reconciler (tests and debug surfaces).
func (c *ClusterReconciler) Member(i int) *Reconciler { return c.recs[i] }

// DetectDrift runs drift scans across the fleet when idle; any hit
// re-enters the rolling phase so drifted members reconverge under the
// same one-at-a-time discipline. Returns total drifted keys.
func (c *ClusterReconciler) DetectDrift(now simtime.Time) int {
	if c.phase != phaseIdle {
		return 0
	}
	total := 0
	for _, rec := range c.recs {
		total += rec.DetectDrift(now)
	}
	if total > 0 {
		c.phase = phaseRolling
		c.frontier = 0
	}
	return total
}

// NextDue returns the earliest time fleet work becomes ready: member
// retries or the rollout backoff deadline.
func (c *ClusterReconciler) NextDue() (simtime.Time, bool) {
	var best simtime.Time
	found := false
	consider := func(t simtime.Time) {
		if !found || t.Before(best) {
			best = t
			found = true
		}
	}
	if c.phase == phaseBackoff {
		consider(c.retryAt)
	}
	for _, rec := range c.recs {
		if t, ok := rec.NextDue(); ok {
			consider(t)
		}
	}
	return best, found
}

// Statuses aggregates per-VIP status across members: the worst condition
// wins (Error > Degraded > Applied) and the observed generation is the
// minimum across members — a VIP is only "at" a generation once the whole
// fleet is.
func (c *ClusterReconciler) Statuses() []VIPStatus {
	agg := make(map[string]*VIPStatus)
	for _, rec := range c.recs {
		for _, st := range rec.Statuses() {
			cur, ok := agg[st.VIP]
			if !ok {
				cp := st
				agg[st.VIP] = &cp
				continue
			}
			if condRank(st.Condition) > condRank(cur.Condition) {
				cur.Condition = st.Condition
				cur.Reason = st.Reason
				cur.Message = st.Message
				cur.Retries = st.Retries
				cur.LastTransition = st.LastTransition
			}
			if st.ObservedGeneration < cur.ObservedGeneration {
				cur.ObservedGeneration = st.ObservedGeneration
			}
		}
	}
	out := make([]VIPStatus, 0, len(agg))
	for _, st := range agg {
		if c.RolloutPaused() && st.ObservedGeneration < c.lastGen &&
			condRank(st.Condition) < condRank(CondDegraded) {
			st.Condition = CondDegraded
			st.Reason = "RolloutPaused"
			st.Message = "rollout held by firing fleet alert"
		}
		out = append(out, *st)
	}
	sortStatuses(out)
	return out
}

func condRank(c Condition) int {
	switch c {
	case CondError:
		return 2
	case CondDegraded:
		return 1
	default:
		return 0
	}
}
