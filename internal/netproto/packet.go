package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// TCP flag bits (subset relevant to connection tracking).
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagACK uint8 = 1 << 4
)

// Packet is the decoded form of an L3/L4 packet as the load balancer sees
// it. Payload is retained but not interpreted.
type Packet struct {
	Tuple    FiveTuple
	TCPFlags uint8 // zero for UDP
	Seq      uint32
	Payload  []byte
}

// IsSYN reports whether this is a bare SYN (connection-opening) segment.
func (p *Packet) IsSYN() bool { return p.TCPFlags&FlagSYN != 0 && p.TCPFlags&FlagACK == 0 }

// WireLen returns the packet's on-the-wire length in bytes under the
// canonical framing Marshal produces: 20 B IPv4 / 40 B IPv6 network header,
// 20 B TCP / 8 B UDP transport header, plus the payload. Hardware meters
// and byte counters charge this length, not a fixed-header guess.
func (p *Packet) WireLen() int {
	ip := 40
	if p.Tuple.Src.Is4() {
		ip = 20
	}
	l4 := 8
	if p.Tuple.Proto == ProtoTCP {
		l4 = 20
	}
	return ip + l4 + len(p.Payload)
}

// IsFIN reports whether the FIN flag is set.
func (p *Packet) IsFIN() bool { return p.TCPFlags&FlagFIN != 0 }

// Errors returned by Decode.
var (
	ErrTruncated   = errors.New("netproto: truncated packet")
	ErrBadVersion  = errors.New("netproto: unsupported IP version")
	ErrBadProtocol = errors.New("netproto: unsupported transport protocol")
)

// Marshal serializes the packet as an IPv4 or IPv6 header (by address
// family) followed by a TCP or UDP header and the payload. Checksums are
// computed for IPv4 header and the L4 pseudo-header sum.
func (p *Packet) Marshal(buf []byte) ([]byte, error) {
	if !p.Tuple.IsValid() {
		return nil, fmt.Errorf("netproto: invalid tuple %v", p.Tuple)
	}
	l4len := 8 + len(p.Payload) // UDP
	if p.Tuple.Proto == ProtoTCP {
		l4len = 20 + len(p.Payload)
	}
	buf = buf[:0]
	if p.Tuple.Src.Is4() {
		buf = appendIPv4Header(buf, p.Tuple, l4len)
	} else {
		buf = appendIPv6Header(buf, p.Tuple, l4len)
	}
	l4start := len(buf)
	switch p.Tuple.Proto {
	case ProtoTCP:
		buf = appendTCPHeader(buf, p)
	case ProtoUDP:
		buf = appendUDPHeader(buf, p, l4len)
	default:
		return nil, ErrBadProtocol
	}
	buf = append(buf, p.Payload...)
	fillL4Checksum(buf, p.Tuple, l4start)
	return buf, nil
}

// Decode parses a raw IPv4/IPv6 packet into p, reusing p's storage. The
// payload slice aliases data.
func Decode(data []byte, p *Packet) error {
	if len(data) < 1 {
		return ErrTruncated
	}
	switch data[0] >> 4 {
	case 4:
		return decodeIPv4(data, p)
	case 6:
		return decodeIPv6(data, p)
	default:
		return ErrBadVersion
	}
}

func appendIPv4Header(buf []byte, t FiveTuple, l4len int) []byte {
	total := 20 + l4len
	start := len(buf)
	buf = append(buf,
		0x45, 0, byte(total>>8), byte(total),
		0, 0, 0x40, 0, // id, flags: DF
		64, byte(t.Proto), 0, 0) // ttl, proto, checksum placeholder
	src := t.Src.As4()
	dst := t.Dst.As4()
	buf = append(buf, src[:]...)
	buf = append(buf, dst[:]...)
	cs := checksum(buf[start:start+20], 0)
	binary.BigEndian.PutUint16(buf[start+10:], cs)
	return buf
}

func appendIPv6Header(buf []byte, t FiveTuple, l4len int) []byte {
	buf = append(buf,
		0x60, 0, 0, 0,
		byte(l4len>>8), byte(l4len), byte(t.Proto), 64)
	src := t.Src.As16()
	dst := t.Dst.As16()
	buf = append(buf, src[:]...)
	buf = append(buf, dst[:]...)
	return buf
}

func appendTCPHeader(buf []byte, p *Packet) []byte {
	var hdr [20]byte
	binary.BigEndian.PutUint16(hdr[0:], p.Tuple.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:], p.Tuple.DstPort)
	binary.BigEndian.PutUint32(hdr[4:], p.Seq)
	hdr[12] = 5 << 4 // data offset: 5 words
	hdr[13] = p.TCPFlags
	binary.BigEndian.PutUint16(hdr[14:], 65535) // window
	return append(buf, hdr[:]...)
}

func appendUDPHeader(buf []byte, p *Packet, l4len int) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint16(hdr[0:], p.Tuple.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:], p.Tuple.DstPort)
	binary.BigEndian.PutUint16(hdr[4:], uint16(l4len))
	return append(buf, hdr[:]...)
}

// fillL4Checksum computes and stores the TCP/UDP checksum over the
// pseudo-header and L4 segment in place.
func fillL4Checksum(pkt []byte, t FiveTuple, l4start int) {
	csOff := l4start + 16 // TCP checksum offset
	if t.Proto == ProtoUDP {
		csOff = l4start + 6
	}
	pkt[csOff], pkt[csOff+1] = 0, 0
	sum := pseudoHeaderSum(t, len(pkt)-l4start)
	cs := checksum(pkt[l4start:], sum)
	if t.Proto == ProtoUDP && cs == 0 {
		cs = 0xffff // UDP all-zero checksum means "no checksum"
	}
	binary.BigEndian.PutUint16(pkt[csOff:], cs)
}

func pseudoHeaderSum(t FiveTuple, l4len int) uint32 {
	var sum uint32
	addAddr := func(a netip.Addr) {
		if a.Is4() {
			b := a.As4()
			sum += uint32(binary.BigEndian.Uint16(b[0:])) + uint32(binary.BigEndian.Uint16(b[2:]))
		} else {
			b := a.As16()
			for i := 0; i < 16; i += 2 {
				sum += uint32(binary.BigEndian.Uint16(b[i:]))
			}
		}
	}
	addAddr(t.Src)
	addAddr(t.Dst)
	sum += uint32(t.Proto)
	sum += uint32(l4len)
	return sum
}

// checksum computes the ones-complement Internet checksum of data with an
// initial partial sum.
func checksum(data []byte, initial uint32) uint16 {
	sum := initial
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func decodeIPv4(data []byte, p *Packet) error {
	if len(data) < 20 {
		return ErrTruncated
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return ErrTruncated
	}
	total := int(binary.BigEndian.Uint16(data[2:]))
	if total > len(data) {
		return ErrTruncated
	}
	if total >= ihl {
		data = data[:total]
	}
	p.Tuple.Proto = Proto(data[9])
	p.Tuple.Src = netip.AddrFrom4([4]byte(data[12:16]))
	p.Tuple.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	return decodeL4(data[ihl:], p)
}

func decodeIPv6(data []byte, p *Packet) error {
	if len(data) < 40 {
		return ErrTruncated
	}
	plen := int(binary.BigEndian.Uint16(data[4:]))
	p.Tuple.Proto = Proto(data[6])
	p.Tuple.Src = netip.AddrFrom16([16]byte(data[8:24]))
	p.Tuple.Dst = netip.AddrFrom16([16]byte(data[24:40]))
	l4 := data[40:]
	if plen <= len(l4) {
		l4 = l4[:plen]
	}
	return decodeL4(l4, p)
}

func decodeL4(data []byte, p *Packet) error {
	switch p.Tuple.Proto {
	case ProtoTCP:
		if len(data) < 20 {
			return ErrTruncated
		}
		p.Tuple.SrcPort = binary.BigEndian.Uint16(data[0:])
		p.Tuple.DstPort = binary.BigEndian.Uint16(data[2:])
		p.Seq = binary.BigEndian.Uint32(data[4:])
		p.TCPFlags = data[13]
		off := int(data[12]>>4) * 4
		if off < 20 || off > len(data) {
			return ErrTruncated
		}
		p.Payload = data[off:]
	case ProtoUDP:
		if len(data) < 8 {
			return ErrTruncated
		}
		p.Tuple.SrcPort = binary.BigEndian.Uint16(data[0:])
		p.Tuple.DstPort = binary.BigEndian.Uint16(data[2:])
		p.TCPFlags = 0
		p.Seq = 0
		p.Payload = data[8:]
	default:
		return ErrBadProtocol
	}
	return nil
}

// RewriteDst rewrites the destination address and port of a raw packet in
// place to dip (the DIP chosen by the load balancer), fixing checksums.
// This is the forwarding action the SilkRoad ASIC applies. The address
// family of dip must match the packet's.
//
// Callers holding a parsed Frame should use Frame.RewriteDst directly —
// this form is for raw buffers with no frame in hand and pays one parse
// pass to recover the offsets.
func RewriteDst(pkt []byte, dip netip.AddrPort) error {
	var f Frame
	if err := ParseFrame(pkt, &f); err != nil {
		return err
	}
	return f.RewriteDst(dip)
}
