package netproto

import (
	"net/netip"
	"testing"
)

func TestEncapDecapRoundTrip(t *testing.T) {
	inner, err := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN, Payload: []byte("hi")}).Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	lb := netip.MustParseAddr("192.0.2.1")
	dip := netip.MustParseAddr("10.0.0.2")
	enc, err := EncapIPIP(nil, lb, dip, inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != len(inner)+20 {
		t.Fatalf("encap length = %d", len(enc))
	}
	// The outer header must checksum-verify.
	if cs := checksum(enc[:20], 0); cs != 0 {
		t.Fatalf("outer checksum = %#x", cs)
	}
	got, src, dst, err := DecapIPIP(enc)
	if err != nil {
		t.Fatal(err)
	}
	if src != lb || dst != dip {
		t.Fatalf("outer addrs = %v -> %v", src, dst)
	}
	if string(got) != string(inner) {
		t.Fatal("inner packet corrupted")
	}
	// The inner packet still decodes with the original VIP destination
	// (direct server return's requirement).
	var p Packet
	if err := Decode(got, &p); err != nil {
		t.Fatal(err)
	}
	if p.Tuple != tcpTuple4() {
		t.Fatalf("inner tuple = %v", p.Tuple)
	}
}

func TestEncapErrors(t *testing.T) {
	v4 := netip.MustParseAddr("1.1.1.1")
	if _, err := EncapIPIP(nil, v4, v4, []byte{1, 2}); err == nil {
		t.Fatal("short inner accepted")
	}
	inner, _ := (&Packet{Tuple: tcpTuple6(), TCPFlags: FlagSYN}).Marshal(nil)
	if _, err := EncapIPIP(nil, v4, v4, inner); err == nil {
		t.Fatal("IPv6 inner accepted")
	}
	inner4, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN}).Marshal(nil)
	if _, err := EncapIPIP(nil, netip.MustParseAddr("::1"), v4, inner4); err == nil {
		t.Fatal("IPv6 outer accepted")
	}
	if _, err := EncapIPIP(nil, v4, v4, make([]byte, 70000)); err == nil {
		t.Fatal("oversized inner accepted")
	}
}

func TestDecapErrors(t *testing.T) {
	if _, _, _, err := DecapIPIP(nil); err != ErrNotIPIP {
		t.Fatalf("nil: %v", err)
	}
	// Plain TCP packet: right version, wrong protocol.
	raw, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN}).Marshal(nil)
	if _, _, _, err := DecapIPIP(raw); err != ErrNotIPIP {
		t.Fatalf("tcp: %v", err)
	}
	// Truncated encap.
	inner, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN}).Marshal(nil)
	enc, _ := EncapIPIP(nil, netip.MustParseAddr("1.1.1.1"), netip.MustParseAddr("2.2.2.2"), inner)
	if _, _, _, err := DecapIPIP(enc[:25]); err != ErrTruncated {
		t.Fatalf("truncated: %v", err)
	}
}

func BenchmarkEncapIPIP(b *testing.B) {
	inner, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagACK, Payload: make([]byte, 64)}).Marshal(nil)
	lb := netip.MustParseAddr("192.0.2.1")
	dip := netip.MustParseAddr("10.0.0.2")
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = EncapIPIP(buf[:0], lb, dip, inner)
	}
}
