package netproto

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func tcpTuple4() FiveTuple {
	return FiveTuple{
		Src:     netip.MustParseAddr("1.2.3.4"),
		Dst:     netip.MustParseAddr("20.0.0.1"),
		SrcPort: 1234,
		DstPort: 80,
		Proto:   ProtoTCP,
	}
}

func tcpTuple6() FiveTuple {
	return FiveTuple{
		Src:     netip.MustParseAddr("2001:db8::1"),
		Dst:     netip.MustParseAddr("2001:db8::feed"),
		SrcPort: 40000,
		DstPort: 443,
		Proto:   ProtoTCP,
	}
}

func TestTupleString(t *testing.T) {
	got := tcpTuple4().String()
	want := "1.2.3.4:1234->20.0.0.1:80/tcp"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestTupleReverse(t *testing.T) {
	tt := tcpTuple4()
	r := tt.Reverse()
	if r.Src != tt.Dst || r.SrcPort != tt.DstPort || r.Dst != tt.Src || r.DstPort != tt.SrcPort {
		t.Fatalf("Reverse = %v", r)
	}
	if r.Reverse() != tt {
		t.Fatal("double reverse is not identity")
	}
}

func TestTupleValidity(t *testing.T) {
	if !tcpTuple4().IsValid() || !tcpTuple6().IsValid() {
		t.Fatal("valid tuples reported invalid")
	}
	mixed := tcpTuple4()
	mixed.Dst = netip.MustParseAddr("::1")
	if mixed.IsValid() {
		t.Fatal("mixed-family tuple reported valid")
	}
	if (FiveTuple{}).IsValid() {
		t.Fatal("zero tuple reported valid")
	}
}

func TestKeyBytesSizes(t *testing.T) {
	var buf [37]byte
	k4 := tcpTuple4().KeyBytes(buf[:])
	if len(k4) != 13 || tcpTuple4().KeySize() != 13 {
		t.Fatalf("IPv4 key size = %d, want 13 (paper §4.2)", len(k4))
	}
	k6 := tcpTuple6().KeyBytes(buf[:])
	if len(k6) != 37 || tcpTuple6().KeySize() != 37 {
		t.Fatalf("IPv6 key size = %d, want 37 (paper §4.2)", len(k6))
	}
}

func TestKeyBytesDistinct(t *testing.T) {
	var b1, b2 [37]byte
	a := tcpTuple4()
	b := a
	b.SrcPort++
	k1 := string(a.KeyBytes(b1[:]))
	k2 := string(b.KeyBytes(b2[:]))
	if k1 == k2 {
		t.Fatal("distinct tuples produced identical keys")
	}
}

func TestVIPKey(t *testing.T) {
	var buf [19]byte
	k := string(tcpTuple4().VIPKey(buf[:]))
	if len(k) != 7 {
		t.Fatalf("IPv4 VIP key len = %d, want 7", len(k))
	}
	k6 := tcpTuple6().VIPKey(buf[:])
	if len(k6) != 19 {
		t.Fatalf("IPv6 VIP key len = %d, want 19", len(k6))
	}
	// VIP key must ignore the source: two clients of one VIP share it.
	other := tcpTuple4()
	other.Src = netip.MustParseAddr("9.9.9.9")
	other.SrcPort = 999
	var buf2 [19]byte
	if string(other.VIPKey(buf2[:])) != k {
		t.Fatal("VIP key depends on source fields")
	}
}

func TestMarshalDecodeRoundTripTCP4(t *testing.T) {
	p := Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN, Seq: 1000, Payload: []byte("hello")}
	raw, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := Decode(raw, &q); err != nil {
		t.Fatal(err)
	}
	if q.Tuple != p.Tuple {
		t.Fatalf("tuple round trip: got %v, want %v", q.Tuple, p.Tuple)
	}
	if q.TCPFlags != p.TCPFlags || q.Seq != p.Seq {
		t.Fatalf("flags/seq mismatch: %+v", q)
	}
	if string(q.Payload) != "hello" {
		t.Fatalf("payload = %q", q.Payload)
	}
	if !q.IsSYN() {
		t.Fatal("SYN flag lost")
	}
}

func TestMarshalDecodeRoundTripTCP6(t *testing.T) {
	p := Packet{Tuple: tcpTuple6(), TCPFlags: FlagACK, Payload: []byte("v6 data")}
	raw, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := Decode(raw, &q); err != nil {
		t.Fatal(err)
	}
	if q.Tuple != p.Tuple || string(q.Payload) != "v6 data" {
		t.Fatalf("v6 round trip mismatch: %+v", q)
	}
	if q.IsSYN() {
		t.Fatal("SYN+ACK misread as bare SYN")
	}
}

func TestMarshalDecodeRoundTripUDP(t *testing.T) {
	tup := tcpTuple4()
	tup.Proto = ProtoUDP
	p := Packet{Tuple: tup, Payload: []byte("dgram")}
	raw, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := Decode(raw, &q); err != nil {
		t.Fatal(err)
	}
	if q.Tuple != tup || string(q.Payload) != "dgram" {
		t.Fatalf("udp round trip mismatch: %+v", q)
	}
}

func TestIPv4HeaderChecksumValid(t *testing.T) {
	p := Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN}
	raw, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Verifying: checksum over the header including the stored checksum
	// must be zero (i.e. ^checksum(hdr) == 0xffff... use checksum == 0).
	if cs := checksum(raw[:20], 0); cs != 0 {
		t.Fatalf("IPv4 header checksum verify = %#x, want 0", cs)
	}
}

func TestL4ChecksumValid(t *testing.T) {
	for _, tup := range []FiveTuple{tcpTuple4(), tcpTuple6()} {
		p := Packet{Tuple: tup, TCPFlags: FlagACK, Payload: []byte("odd")}
		raw, err := p.Marshal(nil)
		if err != nil {
			t.Fatal(err)
		}
		l4 := 20
		if !tup.Src.Is4() {
			l4 = 40
		}
		sum := pseudoHeaderSum(tup, len(raw)-l4)
		if cs := checksum(raw[l4:], sum); cs != 0 {
			t.Fatalf("%v: L4 checksum verify = %#x, want 0", tup, cs)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	var p Packet
	if err := Decode(nil, &p); err != ErrTruncated {
		t.Fatalf("nil: %v", err)
	}
	if err := Decode([]byte{0x45, 0}, &p); err != ErrTruncated {
		t.Fatalf("short v4: %v", err)
	}
	if err := Decode([]byte{0x00}, &p); err != ErrBadVersion {
		t.Fatalf("bad version: %v", err)
	}
	// ICMP (proto 1) inside a valid IPv4 header.
	raw, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN}).Marshal(nil)
	raw[9] = 1
	if err := Decode(raw, &p); err != ErrBadProtocol {
		t.Fatalf("icmp: %v", err)
	}
}

func TestMarshalInvalidTuple(t *testing.T) {
	p := Packet{}
	if _, err := p.Marshal(nil); err == nil {
		t.Fatal("Marshal of zero tuple should fail")
	}
}

func TestRewriteDstIPv4(t *testing.T) {
	p := Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN, Payload: []byte("x")}
	raw, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	dip := netip.MustParseAddrPort("10.0.0.2:20")
	if err := RewriteDst(raw, dip); err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := Decode(raw, &q); err != nil {
		t.Fatal(err)
	}
	if q.Tuple.Dst != dip.Addr() || q.Tuple.DstPort != dip.Port() {
		t.Fatalf("rewrite: got %v", q.Tuple)
	}
	// Checksums must still verify after the rewrite.
	if cs := checksum(raw[:20], 0); cs != 0 {
		t.Fatalf("IPv4 checksum broken after rewrite: %#x", cs)
	}
	sum := pseudoHeaderSum(q.Tuple, len(raw)-20)
	if cs := checksum(raw[20:], sum); cs != 0 {
		t.Fatalf("TCP checksum broken after rewrite: %#x", cs)
	}
}

func TestRewriteDstIPv6(t *testing.T) {
	p := Packet{Tuple: tcpTuple6(), TCPFlags: FlagACK}
	raw, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	dip := netip.MustParseAddrPort("[2001:db8::d1]:8080")
	if err := RewriteDst(raw, dip); err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := Decode(raw, &q); err != nil {
		t.Fatal(err)
	}
	if q.Tuple.Dst != dip.Addr() || q.Tuple.DstPort != dip.Port() {
		t.Fatalf("rewrite: got %v", q.Tuple)
	}
}

func TestRewriteDstFamilyMismatch(t *testing.T) {
	raw, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN}).Marshal(nil)
	if err := RewriteDst(raw, netip.MustParseAddrPort("[::1]:1")); err == nil {
		t.Fatal("family mismatch not rejected")
	}
}

// Property: Marshal→Decode is the identity on the tuple for random valid
// IPv4 TCP tuples.
func TestRoundTripProperty(t *testing.T) {
	f := func(s1, s2, s3, s4, d1, d2, d3, d4 byte, sp, dp uint16, seq uint32, payload []byte) bool {
		tup := FiveTuple{
			Src:     netip.AddrFrom4([4]byte{s1, s2, s3, s4}),
			Dst:     netip.AddrFrom4([4]byte{d1, d2, d3, d4}),
			SrcPort: sp, DstPort: dp, Proto: ProtoTCP,
		}
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		p := Packet{Tuple: tup, TCPFlags: FlagACK, Seq: seq, Payload: payload}
		raw, err := p.Marshal(nil)
		if err != nil {
			return false
		}
		var q Packet
		if err := Decode(raw, &q); err != nil {
			return false
		}
		return q.Tuple == tup && q.Seq == seq && string(q.Payload) == string(payload)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" {
		t.Fatal("proto names wrong")
	}
	if Proto(99).String() != "proto(99)" {
		t.Fatalf("unknown proto name: %s", Proto(99))
	}
}

func BenchmarkMarshalTCP4(b *testing.B) {
	p := Packet{Tuple: tcpTuple4(), TCPFlags: FlagACK, Payload: make([]byte, 32)}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = p.Marshal(buf)
	}
}

func BenchmarkDecodeTCP4(b *testing.B) {
	raw, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagACK, Payload: make([]byte, 32)}).Marshal(nil)
	var p Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Decode(raw, &p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseFiveTuple(t *testing.T) {
	want := FiveTuple{
		Src:     netip.MustParseAddr("192.168.0.1"),
		Dst:     netip.MustParseAddr("10.0.0.1"),
		SrcPort: 1234, DstPort: 80, Proto: ProtoTCP,
	}
	for _, in := range []string{
		"192.168.0.1:1234->10.0.0.1:80/tcp",
		"tcp:192.168.0.1:1234->10.0.0.1:80",
		want.String(),
	} {
		got, err := ParseFiveTuple(in)
		if err != nil {
			t.Fatalf("ParseFiveTuple(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseFiveTuple(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, in := range []string{
		"",
		"192.168.0.1:1234->10.0.0.1:80", // no protocol
		"udp:192.168.0.1:1234",          // no arrow
		"tcp:192.168.0.1->10.0.0.1:80",  // missing port
		"tcp:192.168.0.1:1->::1:80",     // mixed families
		"tcp:[::1]:1234->10.0.0.1:80",   // mixed families
	} {
		if _, err := ParseFiveTuple(in); err == nil {
			t.Fatalf("ParseFiveTuple(%q): want error, got nil", in)
		}
	}
}
