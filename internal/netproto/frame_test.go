package netproto

import (
	"bytes"
	"net/netip"
	"testing"
)

// framePackets returns a spread of canonically framed packets covering both
// families and both transports, with assorted payload lengths (including
// odd ones, which exercise the checksum's trailing-byte path).
func framePackets(t testing.TB) [][]byte {
	t.Helper()
	udp4 := tcpTuple4()
	udp4.Proto = ProtoUDP
	udp6 := tcpTuple6()
	udp6.Proto = ProtoUDP
	pkts := []*Packet{
		{Tuple: tcpTuple4(), TCPFlags: FlagSYN, Seq: 7},
		{Tuple: tcpTuple4(), TCPFlags: FlagACK, Seq: 8, Payload: []byte("hello")},
		{Tuple: tcpTuple6(), TCPFlags: FlagACK | FlagFIN, Payload: []byte("x")},
		{Tuple: udp4, Payload: []byte("datagram!")},
		{Tuple: udp6},
	}
	var out [][]byte
	for _, p := range pkts {
		raw, err := p.Marshal(nil)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", p.Tuple, err)
		}
		out = append(out, raw)
	}
	return out
}

// withIPv4Options inserts n 4-byte NOP option words after a 20-byte IPv4
// header, fixing IHL, total length and the header checksum. The L4 checksum
// is untouched: the pseudo-header covers only the L4 length, which does not
// change.
func withIPv4Options(t testing.TB, raw []byte, n int) []byte {
	t.Helper()
	if raw[0]>>4 != 4 || raw[0]&0x0f != 5 {
		t.Fatalf("not a plain IPv4 packet: version/ihl byte %#x", raw[0])
	}
	opts := bytes.Repeat([]byte{0x01}, 4*n) // NOP padding
	out := make([]byte, 0, len(raw)+len(opts))
	out = append(out, raw[:20]...)
	out = append(out, opts...)
	out = append(out, raw[20:]...)
	out[0] = 0x40 | byte(5+n)
	total := len(raw) + 4*n
	out[2], out[3] = byte(total>>8), byte(total)
	out[10], out[11] = 0, 0
	cs := checksum(out[:20+4*n], 0)
	out[10], out[11] = byte(cs>>8), byte(cs)
	return out
}

// TestParseFrameAgreesWithDecode locks the frame parser to the struct
// decoder: both must accept the same packets and extract identical fields.
func TestParseFrameAgreesWithDecode(t *testing.T) {
	inputs := framePackets(t)
	inputs = append(inputs, withIPv4Options(t, inputs[0], 1))
	inputs = append(inputs, withIPv4Options(t, inputs[1], 4))
	// Trailing garbage past the IP total length: both parsers must trim.
	inputs = append(inputs, append(append([]byte{}, inputs[1]...), 0xde, 0xad))
	for _, raw := range inputs {
		var p Packet
		var f Frame
		perr := Decode(raw, &p)
		ferr := ParseFrame(raw, &f)
		if (perr == nil) != (ferr == nil) {
			t.Fatalf("accept disagreement: Decode=%v ParseFrame=%v", perr, ferr)
		}
		if perr != nil {
			continue
		}
		if f.Tuple != p.Tuple || f.TCPFlags != p.TCPFlags || f.Seq != p.Seq {
			t.Fatalf("field disagreement: frame {%v %v %v} vs packet {%v %v %v}",
				f.Tuple, f.TCPFlags, f.Seq, p.Tuple, p.TCPFlags, p.Seq)
		}
		if !bytes.Equal(f.Payload(), p.Payload) {
			t.Fatalf("payload disagreement: %q vs %q", f.Payload(), p.Payload)
		}
		var q Packet
		f.Packet(&q)
		if q.Tuple != p.Tuple || q.TCPFlags != p.TCPFlags || q.Seq != p.Seq || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatalf("Frame.Packet fill disagrees with Decode: %+v vs %+v", q, p)
		}
	}
	// Rejections must agree too.
	bad := [][]byte{
		nil,
		{},
		{0x20},        // bad version
		inputs[0][:1], // truncated v4 header
		inputs[0][:19],
		inputs[0][:25], // truncated TCP header
		inputs[2][:39], // truncated v6 header
	}
	for _, raw := range bad {
		var p Packet
		var f Frame
		perr := Decode(raw, &p)
		ferr := ParseFrame(raw, &f)
		if perr == nil || ferr == nil {
			t.Fatalf("truncated input accepted: Decode=%v ParseFrame=%v (len %d)", perr, ferr, len(raw))
		}
	}
}

// TestWireLenAgreesUnderCanonicalFraming is the meter-consistency
// regression test: for canonically framed packets (Marshal output) the
// frame's actual wire length must equal the struct's reconstructed
// WireLen, so the two currencies charge meters and byte counters
// identically. Non-canonical framing (IPv4 options, trailing garbage)
// diverges by design: the frame charges what was really on the wire.
func TestWireLenAgreesUnderCanonicalFraming(t *testing.T) {
	for _, raw := range framePackets(t) {
		var p Packet
		var f Frame
		if err := Decode(raw, &p); err != nil {
			t.Fatal(err)
		}
		if err := ParseFrame(raw, &f); err != nil {
			t.Fatal(err)
		}
		if f.WireLen() != p.WireLen() {
			t.Fatalf("%v: frame WireLen %d != packet WireLen %d", p.Tuple, f.WireLen(), p.WireLen())
		}
		if f.WireLen() != len(raw) {
			t.Fatalf("%v: frame WireLen %d != raw length %d", p.Tuple, f.WireLen(), len(raw))
		}
	}
	// With 4 bytes of IPv4 options the actual wire length exceeds the
	// canonical reconstruction by exactly the options.
	raw := framePackets(t)[1]
	opt := withIPv4Options(t, raw, 1)
	var p Packet
	var f Frame
	if err := Decode(opt, &p); err != nil {
		t.Fatal(err)
	}
	if err := ParseFrame(opt, &f); err != nil {
		t.Fatal(err)
	}
	if f.WireLen() != p.WireLen()+4 {
		t.Fatalf("options packet: frame WireLen %d, packet WireLen %d", f.WireLen(), p.WireLen())
	}
}

// checkChecksums fails the test unless pkt's IPv4 header checksum (when
// IPv4) and L4 checksum are both valid for its current contents.
func checkChecksums(t *testing.T, pkt []byte) {
	t.Helper()
	var f Frame
	if err := ParseFrame(pkt, &f); err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if f.Tuple.Src.Is4() {
		if got := checksum(pkt[:f.L4], 0); got != 0 {
			t.Fatalf("IPv4 header checksum invalid: residue %#x", got)
		}
	}
	// fillL4Checksum is deterministic: recomputing on a copy must be a
	// fixed point if the stored checksum is correct.
	cp := append([]byte(nil), pkt...)
	fillL4Checksum(cp, f.Tuple, f.L4)
	if !bytes.Equal(cp, pkt) {
		t.Fatal("L4 checksum not a fixed point of recomputation")
	}
}

// TestFrameRewriteDst exercises the in-place rewrite on every packet shape:
// the tuple, raw destination bytes and both checksums must all come out
// consistent, and rewriting back must restore the original bytes exactly.
func TestFrameRewriteDst(t *testing.T) {
	dip4 := netip.MustParseAddrPort("10.9.8.7:6543")
	dip6 := netip.MustParseAddrPort("[2001:db8::9]:6543")
	inputs := framePackets(t)
	inputs = append(inputs, withIPv4Options(t, inputs[0], 2))
	for _, orig := range inputs {
		raw := append([]byte(nil), orig...)
		var f Frame
		if err := ParseFrame(raw, &f); err != nil {
			t.Fatal(err)
		}
		before := f.Tuple
		dip := dip4
		if !f.Tuple.Dst.Is4() {
			dip = dip6
		}
		if err := f.RewriteDst(dip); err != nil {
			t.Fatalf("%v: RewriteDst: %v", before, err)
		}
		if f.Tuple.Dst != dip.Addr() || f.Tuple.DstPort != dip.Port() {
			t.Fatalf("tuple not updated: %v", f.Tuple)
		}
		var p Packet
		if err := Decode(raw, &p); err != nil {
			t.Fatalf("rewritten packet undecodable: %v", err)
		}
		if p.Tuple.Dst != dip.Addr() || p.Tuple.DstPort != dip.Port() {
			t.Fatalf("bytes not rewritten: %v", p.Tuple)
		}
		if p.Tuple.Src != before.Src || p.Tuple.SrcPort != before.SrcPort {
			t.Fatalf("source corrupted: %v", p.Tuple)
		}
		checkChecksums(t, raw)
		// Round trip back to the original destination restores the exact
		// original bytes (checksums included).
		if err := f.RewriteDst(netip.AddrPortFrom(before.Dst, before.DstPort)); err != nil {
			t.Fatalf("rewrite back: %v", err)
		}
		if !bytes.Equal(raw, orig) {
			t.Fatalf("%v: rewrite round trip not byte-identical", before)
		}
	}
}

func TestFrameRewriteDstFamilyMismatch(t *testing.T) {
	raw := framePackets(t)[0]
	var f Frame
	if err := ParseFrame(raw, &f); err != nil {
		t.Fatal(err)
	}
	if err := f.RewriteDst(netip.MustParseAddrPort("[2001:db8::9]:80")); err == nil {
		t.Fatal("v6 rewrite of a v4 frame accepted")
	}
}

// TestFrameLaneHashCache checks the memoized lane hash: it equals the
// direct hash, is recomputed under a different seed, and is invalidated by
// RewriteDst (the tuple changed).
func TestFrameLaneHashCache(t *testing.T) {
	raw := append([]byte(nil), framePackets(t)[1]...)
	var f Frame
	if err := ParseFrame(raw, &f); err != nil {
		t.Fatal(err)
	}
	want := LaneHash(42, &f.Tuple)
	if got := f.LaneHash(42); got != want {
		t.Fatalf("LaneHash = %#x, want %#x", got, want)
	}
	if got := f.LaneHash(42); got != want {
		t.Fatalf("cached LaneHash = %#x, want %#x", got, want)
	}
	if got, want := f.LaneHash(43), LaneHash(43, &f.Tuple); got != want {
		t.Fatalf("reseeded LaneHash = %#x, want %#x", got, want)
	}
	if err := f.RewriteDst(netip.MustParseAddrPort("10.0.0.9:99")); err != nil {
		t.Fatal(err)
	}
	if got, want := f.LaneHash(43), LaneHash(43, &f.Tuple); got != want {
		t.Fatalf("post-rewrite LaneHash = %#x, want %#x (stale cache?)", got, want)
	}
}

// TestRewriteDstZeroAlloc is the satellite regression for the old
// RewriteDst, which re-decoded the whole packet (and allocated) on every
// call: both the frame method and the package-level form must be
// allocation-free.
func TestRewriteDstZeroAlloc(t *testing.T) {
	raw := append([]byte(nil), framePackets(t)[1]...)
	var f Frame
	if err := ParseFrame(raw, &f); err != nil {
		t.Fatal(err)
	}
	a := netip.MustParseAddrPort("10.0.0.8:8080")
	b := netip.MustParseAddrPort("10.0.0.9:9090")
	if n := testing.AllocsPerRun(200, func() {
		_ = f.RewriteDst(a)
		_ = f.RewriteDst(b)
	}); n != 0 {
		t.Fatalf("Frame.RewriteDst allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = RewriteDst(raw, a)
		_ = RewriteDst(raw, b)
	}); n != 0 {
		t.Fatalf("RewriteDst allocates %v per run", n)
	}
}

// BenchmarkRewriteDst measures the in-place rewrite round trip (two
// rewrites per iteration, alternating destinations so the bytes really
// change each time).
func BenchmarkRewriteDst(b *testing.B) {
	raw := append([]byte(nil), framePackets(b)[1]...)
	var f Frame
	if err := ParseFrame(raw, &f); err != nil {
		b.Fatal(err)
	}
	x := netip.MustParseAddrPort("10.0.0.8:8080")
	y := netip.MustParseAddrPort("10.0.0.9:9090")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.RewriteDst(x); err != nil {
			b.Fatal(err)
		}
		if err := f.RewriteDst(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseFrame measures the single-pass parse on a reused frame.
func BenchmarkParseFrame(b *testing.B) {
	raw := framePackets(b)[1]
	var f Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ParseFrame(raw, &f); err != nil {
			b.Fatal(err)
		}
	}
}
