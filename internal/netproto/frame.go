package netproto

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Frame is the parse-once view of a raw packet — the wire-native currency
// of the packet path. Where Packet is a decoded struct that has forgotten
// the bytes it came from, a Frame keeps the raw buffer and carries the
// header offsets forward, so every later stage (pipe sharding, hashing,
// metering, destination rewrite, TX encapsulation) works on the original
// bytes with zero re-decode. This is the software analogue of how a
// switching ASIC structures the pipeline: parse once at ingress, thread
// the extracted fields and offsets through the match-action stages, and
// apply rewrites in place at deparse.
//
// ParseFrame fills a Frame in a single pass. The Data slice aliases (a
// prefix of) the caller's buffer; the Frame is valid only as long as those
// bytes are. Reusing one Frame across packets is the intended pattern —
// ParseFrame fully resets it.
//
// Ownership/aliasing rules (see DESIGN.md "Wire path"):
//   - Data aliases the parse input; nothing in the pipeline retains it
//     past the processing call.
//   - The pipeline reads a Frame but never writes it, so a batch of
//     frames can be processed by per-pipe workers concurrently.
//   - RewriteDst mutates Data in place (and Tuple to match); it must only
//     run after processing decided the verdict, on the TX side.
type Frame struct {
	// Data is the raw L3 frame, trimmed to the IP total length when the
	// header declares less than the buffer holds (trailing bytes beyond
	// the IP framing are not part of the packet).
	Data []byte

	// Tuple, TCPFlags and Seq are the fields the pipeline matches on,
	// extracted by the single parse pass (Seq and TCPFlags are zero for
	// UDP).
	Tuple    FiveTuple
	TCPFlags uint8
	Seq      uint32

	// L4 is the transport header's offset into Data (the IPv4 IHL or 40
	// for IPv6); PayloadOff is the payload's offset (past the TCP data
	// offset or the 8-byte UDP header).
	L4         int
	PayloadOff int

	// Cached chip-level lane hash (LaneHash memoization), keyed by seed so
	// a frame crossing chips with different seeds cannot serve a stale
	// value. laneOK distinguishes "not computed" from a computed value
	// under seed zero.
	laneSeed uint64
	lane     uint64
	laneOK   bool
}

// ParseFrame parses a raw IPv4/IPv6 packet into f in one pass: five-tuple,
// TCP flags, header offsets. It accepts exactly the packets Decode accepts
// and extracts identical fields; f.Data aliases data (trimmed to the IP
// framing). Any previous contents of f are discarded.
func ParseFrame(data []byte, f *Frame) error {
	*f = Frame{}
	if len(data) < 1 {
		return ErrTruncated
	}
	switch data[0] >> 4 {
	case 4:
		if len(data) < 20 {
			return ErrTruncated
		}
		ihl := int(data[0]&0x0f) * 4
		if ihl < 20 || len(data) < ihl {
			return ErrTruncated
		}
		total := int(binary.BigEndian.Uint16(data[2:]))
		if total > len(data) {
			return ErrTruncated
		}
		if total >= ihl {
			data = data[:total]
		}
		f.Tuple.Proto = Proto(data[9])
		f.Tuple.Src = netip.AddrFrom4([4]byte(data[12:16]))
		f.Tuple.Dst = netip.AddrFrom4([4]byte(data[16:20]))
		f.L4 = ihl
	case 6:
		if len(data) < 40 {
			return ErrTruncated
		}
		plen := int(binary.BigEndian.Uint16(data[4:]))
		if plen <= len(data)-40 {
			data = data[:40+plen]
		}
		f.Tuple.Proto = Proto(data[6])
		f.Tuple.Src = netip.AddrFrom16([16]byte(data[8:24]))
		f.Tuple.Dst = netip.AddrFrom16([16]byte(data[24:40]))
		f.L4 = 40
	default:
		return ErrBadVersion
	}
	l4 := data[f.L4:]
	switch f.Tuple.Proto {
	case ProtoTCP:
		if len(l4) < 20 {
			return ErrTruncated
		}
		off := int(l4[12]>>4) * 4
		if off < 20 || off > len(l4) {
			return ErrTruncated
		}
		f.Tuple.SrcPort = binary.BigEndian.Uint16(l4[0:])
		f.Tuple.DstPort = binary.BigEndian.Uint16(l4[2:])
		f.Seq = binary.BigEndian.Uint32(l4[4:])
		f.TCPFlags = l4[13]
		f.PayloadOff = f.L4 + off
	case ProtoUDP:
		if len(l4) < 8 {
			return ErrTruncated
		}
		f.Tuple.SrcPort = binary.BigEndian.Uint16(l4[0:])
		f.Tuple.DstPort = binary.BigEndian.Uint16(l4[2:])
		f.PayloadOff = f.L4 + 8
	default:
		return ErrBadProtocol
	}
	f.Data = data
	return nil
}

// WireLen returns the frame's actual on-the-wire length in bytes — the L3
// byte count meters and byte counters charge on the wire path. Unlike
// Packet.WireLen (a canonical-framing reconstruction for synthetic
// packets), this is the length of the bytes that really arrived; the two
// agree for canonically framed packets (Marshal output).
func (f *Frame) WireLen() int { return len(f.Data) }

// Payload returns the transport payload (aliasing Data).
func (f *Frame) Payload() []byte { return f.Data[f.PayloadOff:] }

// IsSYN reports whether this is a bare SYN (connection-opening) segment.
func (f *Frame) IsSYN() bool { return f.TCPFlags&FlagSYN != 0 && f.TCPFlags&FlagACK == 0 }

// IsFIN reports whether the FIN flag is set.
func (f *Frame) IsFIN() bool { return f.TCPFlags&FlagFIN != 0 }

// LaneHash returns the chip-level ingress lane hash of the frame's
// connection under seed, computing it on first use and serving the cached
// value afterwards — the "hash once at ingress" the multi-pipe engine
// derives pipe choice, key hash and digest from. The cache is keyed by
// seed; RewriteDst invalidates it (the tuple changes).
func (f *Frame) LaneHash(seed uint64) uint64 {
	if !f.laneOK || f.laneSeed != seed {
		f.lane = LaneHash(seed, &f.Tuple)
		f.laneSeed = seed
		f.laneOK = true
	}
	return f.lane
}

// Packet fills p with the frame's decoded form (Payload aliases Data) for
// callers still on the struct currency.
func (f *Frame) Packet(p *Packet) {
	p.Tuple = f.Tuple
	p.TCPFlags = f.TCPFlags
	p.Seq = f.Seq
	p.Payload = f.Data[f.PayloadOff:]
}

// RewriteDst rewrites the frame's destination address and port in place to
// dip — the forwarding action the SilkRoad ASIC applies at deparse —
// fixing the IPv4 header checksum and the L4 checksum using the offsets
// cached at parse time: no re-decode. The address family of dip must match
// the frame's. Tuple is updated to the rewritten destination and the lane
// hash cache invalidated.
func (f *Frame) RewriteDst(dip netip.AddrPort) error {
	if dip.Addr().Is4() != f.Tuple.Dst.Is4() {
		return fmt.Errorf("netproto: address family mismatch rewriting to %v", dip)
	}
	pkt := f.Data
	if f.Tuple.Dst.Is4() {
		b := dip.Addr().As4()
		copy(pkt[16:20], b[:])
		// Recompute IPv4 header checksum over the cached header extent.
		pkt[10], pkt[11] = 0, 0
		binary.BigEndian.PutUint16(pkt[10:], checksum(pkt[:f.L4], 0))
	} else {
		b := dip.Addr().As16()
		copy(pkt[24:40], b[:])
	}
	binary.BigEndian.PutUint16(pkt[f.L4+2:], dip.Port())
	f.Tuple.Dst = dip.Addr()
	f.Tuple.DstPort = dip.Port()
	f.laneOK = false
	fillL4Checksum(pkt, f.Tuple, f.L4)
	return nil
}
