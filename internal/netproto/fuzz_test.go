package netproto

import (
	"net/netip"
	"testing"
)

// FuzzDecode hammers the packet decoder: it must never panic, and any
// packet it accepts must survive a re-marshal/re-decode round trip of its
// tuple.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid v4/v6 TCP/UDP packets plus truncations.
	p4, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN, Payload: []byte("seed")}).Marshal(nil)
	p6, _ := (&Packet{Tuple: tcpTuple6(), TCPFlags: FlagACK}).Marshal(nil)
	udp := tcpTuple4()
	udp.Proto = ProtoUDP
	pu, _ := (&Packet{Tuple: udp, Payload: []byte("u")}).Marshal(nil)
	f.Add(p4)
	f.Add(p6)
	f.Add(pu)
	f.Add(p4[:10])
	f.Add([]byte{})
	f.Add([]byte{0x60})

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := Decode(data, &p); err != nil {
			return
		}
		if !p.Tuple.IsValid() {
			// Decoders may accept packets with zero addresses; that's
			// fine as long as nothing panicked.
			return
		}
		raw, err := p.Marshal(nil)
		if err != nil {
			t.Fatalf("accepted packet failed to re-marshal: %v", err)
		}
		var q Packet
		if err := Decode(raw, &q); err != nil {
			t.Fatalf("re-marshaled packet failed to decode: %v", err)
		}
		if q.Tuple != p.Tuple {
			t.Fatalf("tuple changed across round trip: %v vs %v", q.Tuple, p.Tuple)
		}
	})
}

// FuzzDecapIPIP checks the decapsulator never panics and only accepts
// protocol-4 IPv4 packets.
func FuzzDecapIPIP(f *testing.F) {
	inner, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN}).Marshal(nil)
	enc, _ := EncapIPIP(nil, netip.MustParseAddr("1.1.1.1"), netip.MustParseAddr("2.2.2.2"), inner)
	f.Add(enc)
	f.Add(enc[:24])
	f.Add(inner)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, src, dst, err := DecapIPIP(data)
		if err != nil {
			return
		}
		if !src.Is4() || !dst.Is4() {
			t.Fatal("accepted decap with non-IPv4 outer addresses")
		}
		if len(got) > len(data) {
			t.Fatal("inner longer than input")
		}
	})
}
