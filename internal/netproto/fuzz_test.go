package netproto

import (
	"net/netip"
	"testing"
)

// FuzzDecode hammers the packet decoder: it must never panic, and any
// packet it accepts must survive a re-marshal/re-decode round trip of its
// tuple.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid v4/v6 TCP/UDP packets plus truncations.
	p4, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN, Payload: []byte("seed")}).Marshal(nil)
	p6, _ := (&Packet{Tuple: tcpTuple6(), TCPFlags: FlagACK}).Marshal(nil)
	udp := tcpTuple4()
	udp.Proto = ProtoUDP
	pu, _ := (&Packet{Tuple: udp, Payload: []byte("u")}).Marshal(nil)
	f.Add(p4)
	f.Add(p6)
	f.Add(pu)
	f.Add(p4[:10])
	f.Add([]byte{})
	f.Add([]byte{0x60})

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := Decode(data, &p); err != nil {
			return
		}
		if !p.Tuple.IsValid() {
			// Decoders may accept packets with zero addresses; that's
			// fine as long as nothing panicked.
			return
		}
		raw, err := p.Marshal(nil)
		if err != nil {
			t.Fatalf("accepted packet failed to re-marshal: %v", err)
		}
		var q Packet
		if err := Decode(raw, &q); err != nil {
			t.Fatalf("re-marshaled packet failed to decode: %v", err)
		}
		if q.Tuple != p.Tuple {
			t.Fatalf("tuple changed across round trip: %v vs %v", q.Tuple, p.Tuple)
		}
	})
}

// FuzzParseFrame locks the frame parser to the struct decoder under
// arbitrary input: it must never panic, must accept exactly what Decode
// accepts, and must extract identical fields. Accepted frames must keep
// their offsets inside Data (no out-of-range aliasing).
func FuzzParseFrame(f *testing.F) {
	p4, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN, Payload: []byte("seed")}).Marshal(nil)
	p6, _ := (&Packet{Tuple: tcpTuple6(), TCPFlags: FlagACK}).Marshal(nil)
	udp := tcpTuple4()
	udp.Proto = ProtoUDP
	pu, _ := (&Packet{Tuple: udp, Payload: []byte("odd")}).Marshal(nil)
	f.Add(p4)
	f.Add(p6)
	f.Add(pu)
	f.Add(p4[:17])
	f.Add([]byte{0x46}) // IPv4 with options, truncated
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		var fr Frame
		perr := Decode(data, &p)
		ferr := ParseFrame(data, &fr)
		if (perr == nil) != (ferr == nil) {
			t.Fatalf("accept disagreement: Decode=%v ParseFrame=%v", perr, ferr)
		}
		if ferr != nil {
			return
		}
		if fr.Tuple != p.Tuple || fr.TCPFlags != p.TCPFlags || fr.Seq != p.Seq {
			t.Fatalf("field disagreement: frame {%v %v %v} vs packet {%v %v %v}",
				fr.Tuple, fr.TCPFlags, fr.Seq, p.Tuple, p.TCPFlags, p.Seq)
		}
		if len(fr.Data) > len(data) {
			t.Fatal("frame Data longer than input")
		}
		if fr.L4 < 0 || fr.L4 > len(fr.Data) || fr.PayloadOff < fr.L4 || fr.PayloadOff > len(fr.Data) {
			t.Fatalf("offsets out of range: L4=%d PayloadOff=%d len=%d", fr.L4, fr.PayloadOff, len(fr.Data))
		}
		if string(fr.Payload()) != string(p.Payload) {
			t.Fatalf("payload disagreement: %q vs %q", fr.Payload(), p.Payload)
		}
	})
}

// FuzzFrameRewrite drives the in-place rewrite and the IP-in-IP encap round
// trip over arbitrary accepted packets (truncated headers, IPv4 options,
// odd-length payloads): no panic, the rewrite must stay inside the frame's
// bytes, rewriting back must restore the original exactly, and an encap/
// decap round trip must preserve the (rewritten) inner packet.
func FuzzFrameRewrite(f *testing.F) {
	p4, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagACK, Payload: []byte("abc")}).Marshal(nil)
	udp := tcpTuple4()
	udp.Proto = ProtoUDP
	pu, _ := (&Packet{Tuple: udp, Payload: []byte("abcde")}).Marshal(nil)
	f.Add(p4, uint32(0x0a000009), uint16(80))
	f.Add(pu, uint32(0xc0a80101), uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, addr uint32, port uint16) {
		var fr Frame
		if err := ParseFrame(data, &fr); err != nil {
			return
		}
		before := fr.Tuple
		// Canonicalize first: arbitrary accepted input carries junk
		// checksums, and every rewrite recomputes them, so byte-identity
		// under a round trip only holds from a canonical starting point.
		if err := fr.RewriteDst(netip.AddrPortFrom(before.Dst, before.DstPort)); err != nil {
			t.Fatalf("identity RewriteDst failed: %v", err)
		}
		orig := append([]byte(nil), fr.Data...)
		var dipAddr netip.Addr
		if before.Dst.Is4() {
			dipAddr = netip.AddrFrom4([4]byte{byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr)})
		} else {
			var b [16]byte
			b[0], b[1], b[2], b[3] = byte(addr>>24), byte(addr>>16), byte(addr>>8), byte(addr)
			b[15] = 1
			dipAddr = netip.AddrFrom16(b)
		}
		dip := netip.AddrPortFrom(dipAddr, port)
		if err := fr.RewriteDst(dip); err != nil {
			t.Fatalf("same-family RewriteDst failed: %v", err)
		}
		if fr.Tuple.Dst != dipAddr || fr.Tuple.DstPort != port {
			t.Fatalf("tuple not rewritten: %v", fr.Tuple)
		}
		// Reparsing the rewritten bytes must agree with the updated tuple.
		var back Frame
		if err := ParseFrame(fr.Data, &back); err != nil {
			t.Fatalf("rewritten frame unparseable: %v", err)
		}
		if back.Tuple != fr.Tuple {
			t.Fatalf("reparse disagreement: %v vs %v", back.Tuple, fr.Tuple)
		}
		// Encap/decap round trip preserves the inner bytes (v4 outer only).
		if enc, err := EncapIPIP(nil, netip.MustParseAddr("1.1.1.1"), netip.MustParseAddr("2.2.2.2"), fr.Data); err == nil {
			inner, _, _, derr := DecapIPIP(enc)
			if derr != nil {
				t.Fatalf("decap of fresh encap failed: %v", derr)
			}
			if string(inner) != string(fr.Data) {
				t.Fatal("inner packet corrupted across encap round trip")
			}
		}
		// Rewriting back restores the original bytes exactly.
		if err := fr.RewriteDst(netip.AddrPortFrom(before.Dst, before.DstPort)); err != nil {
			t.Fatalf("rewrite back failed: %v", err)
		}
		if string(fr.Data) != string(orig) {
			t.Fatal("rewrite round trip not byte-identical")
		}
	})
}

// FuzzDecapIPIP checks the decapsulator never panics and only accepts
// protocol-4 IPv4 packets.
func FuzzDecapIPIP(f *testing.F) {
	inner, _ := (&Packet{Tuple: tcpTuple4(), TCPFlags: FlagSYN}).Marshal(nil)
	enc, _ := EncapIPIP(nil, netip.MustParseAddr("1.1.1.1"), netip.MustParseAddr("2.2.2.2"), inner)
	f.Add(enc)
	f.Add(enc[:24])
	f.Add(inner)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, src, dst, err := DecapIPIP(data)
		if err != nil {
			return
		}
		if !src.Is4() || !dst.Is4() {
			t.Fatal("accepted decap with non-IPv4 outer addresses")
		}
		if len(got) > len(data) {
			t.Fatal("inner longer than input")
		}
	})
}
