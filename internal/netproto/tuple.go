// Package netproto implements the packet substrate: 5-tuples, IPv4/IPv6 and
// TCP/UDP header encoding/decoding, and a lightweight packet representation
// that the SilkRoad pipeline processes.
//
// The design follows the layering style of gopacket (each protocol is its
// own decode/serialize unit, with an allocation-free fast path for the known
// ether/IP/L4 stack), restricted to exactly the layers an L4 load balancer
// touches.
package netproto

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"

	"repro/internal/hashing"
)

// Proto is an IP protocol number.
type Proto uint8

// The protocols an L4 load balancer distinguishes.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// String returns the conventional protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// FiveTuple identifies a transport connection. It is comparable and usable
// as a map key; control-plane shadow tables key on it directly.
type FiveTuple struct {
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// String renders the tuple as "src:port->dst:port/proto".
func (t FiveTuple) String() string {
	return fmt.Sprintf("%s->%s/%s",
		netip.AddrPortFrom(t.Src, t.SrcPort),
		netip.AddrPortFrom(t.Dst, t.DstPort), t.Proto)
}

// IsValid reports whether both addresses are set and of the same family.
func (t FiveTuple) IsValid() bool {
	return t.Src.IsValid() && t.Dst.IsValid() && t.Src.Is4() == t.Dst.Is4()
}

// ParseFiveTuple parses the String rendering, "src:port->dst:port/proto"
// (e.g. "192.168.0.1:1234->10.0.0.1:80/tcp"). An optional "proto:" prefix
// is also accepted ("tcp:src:port->dst:port"), matching the inspect CLI's
// input form. Protocols: tcp, udp.
func ParseFiveTuple(s string) (FiveTuple, error) {
	var t FiveTuple
	// Protocol, either prefixed or suffixed.
	switch {
	case strings.HasPrefix(s, "tcp:"):
		t.Proto, s = ProtoTCP, s[len("tcp:"):]
	case strings.HasPrefix(s, "udp:"):
		t.Proto, s = ProtoUDP, s[len("udp:"):]
	case strings.HasSuffix(s, "/tcp"):
		t.Proto, s = ProtoTCP, s[:len(s)-len("/tcp")]
	case strings.HasSuffix(s, "/udp"):
		t.Proto, s = ProtoUDP, s[:len(s)-len("/udp")]
	default:
		return FiveTuple{}, fmt.Errorf("netproto: five-tuple %q: missing protocol (tcp:... or .../tcp)", s)
	}
	src, dst, ok := strings.Cut(s, "->")
	if !ok {
		return FiveTuple{}, fmt.Errorf("netproto: five-tuple %q: want src:port->dst:port", s)
	}
	sap, err := netip.ParseAddrPort(src)
	if err != nil {
		return FiveTuple{}, fmt.Errorf("netproto: five-tuple source %q: %w", src, err)
	}
	dap, err := netip.ParseAddrPort(dst)
	if err != nil {
		return FiveTuple{}, fmt.Errorf("netproto: five-tuple destination %q: %w", dst, err)
	}
	t.Src, t.SrcPort = sap.Addr(), sap.Port()
	t.Dst, t.DstPort = dap.Addr(), dap.Port()
	if !t.IsValid() {
		return FiveTuple{}, fmt.Errorf("netproto: five-tuple %q: mixed or invalid address families", s)
	}
	return t, nil
}

// Reverse returns the tuple of the opposite direction.
func (t FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: t.Dst, Dst: t.Src, SrcPort: t.DstPort, DstPort: t.SrcPort, Proto: t.Proto}
}

// KeyBytes serializes the tuple into buf as the canonical ConnTable match
// key (the "37 bytes for IPv6 / 13 bytes for IPv4" layout the paper sizes
// SRAM by) and returns the filled prefix. buf must have capacity >= 37.
//
// Layout: src addr | dst addr | src port | dst port | proto, with 4-byte
// addresses for IPv4 tuples and 16-byte addresses for IPv6.
func (t FiveTuple) KeyBytes(buf []byte) []byte {
	buf = buf[:0]
	if t.Src.Is4() {
		a := t.Src.As4()
		b := t.Dst.As4()
		buf = append(buf, a[:]...)
		buf = append(buf, b[:]...)
	} else {
		a := t.Src.As16()
		b := t.Dst.As16()
		buf = append(buf, a[:]...)
		buf = append(buf, b[:]...)
	}
	buf = append(buf,
		byte(t.SrcPort>>8), byte(t.SrcPort),
		byte(t.DstPort>>8), byte(t.DstPort),
		byte(t.Proto))
	return buf
}

// LaneHash hashes the tuple by packing it into 64-bit lanes and mixing
// them with fixed-width rounds — no KeyBytes serialization, no byte-slice
// traffic. It is the software stand-in for a chip-level ingress hash unit:
// computed once per packet at ingress, with downstream consumers (pipe
// sharding, per-pipe key hashing and digests) deriving their values from
// it rather than re-reading the packet. Src and dst do not commute, so the
// two directions of a flow hash apart, as with KeyBytes. LaneHash values
// are unrelated to Hash64 over KeyBytes; a table keyed by one scheme must
// never be probed with the other.
func LaneHash(seed uint64, t *FiveTuple) uint64 {
	aux := uint64(t.SrcPort)<<24 | uint64(t.DstPort)<<8 | uint64(t.Proto)
	if t.Src.Is4() {
		a, b := t.Src.As4(), t.Dst.As4()
		lo := uint64(binary.BigEndian.Uint32(a[:]))<<32 | uint64(binary.BigEndian.Uint32(b[:]))
		return hashing.HashUint64(hashing.HashUint64(seed, lo), aux)
	}
	a, b := t.Src.As16(), t.Dst.As16()
	h := hashing.HashUint64(seed, binary.BigEndian.Uint64(a[:8]))
	h = hashing.HashUint64(h, binary.BigEndian.Uint64(a[8:]))
	h = hashing.HashUint64(h, binary.BigEndian.Uint64(b[:8]))
	h = hashing.HashUint64(h, binary.BigEndian.Uint64(b[8:]))
	return hashing.HashUint64(h, aux)
}

// KeySize returns the match-key width in bytes: 13 for IPv4, 37 for IPv6.
func (t FiveTuple) KeySize() int {
	if t.Src.Is4() {
		return 13
	}
	return 37
}

// VIPKey returns the (destination IP, destination port, proto) triple that
// VIPTable matches on, encoded into buf.
func (t FiveTuple) VIPKey(buf []byte) []byte {
	buf = buf[:0]
	if t.Dst.Is4() {
		b := t.Dst.As4()
		buf = append(buf, b[:]...)
	} else {
		b := t.Dst.As16()
		buf = append(buf, b[:]...)
	}
	return append(buf, byte(t.DstPort>>8), byte(t.DstPort), byte(t.Proto))
}
