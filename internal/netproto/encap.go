package netproto

import (
	"encoding/binary"
	"errors"
	"net/netip"
)

// IP-in-IP encapsulation (RFC 2003), the forwarding mode software load
// balancers like Maglev use instead of destination rewriting: the original
// packet is carried intact to the DIP, which decapsulates and sees the
// original VIP destination (required for direct server return). SilkRoad
// on a ToR typically rewrites instead, but cmd/silkroadd exposes both.

// ProtoIPIP is the IPv4-in-IPv4 protocol number.
const ProtoIPIP Proto = 4

// ErrNotIPIP is returned by DecapIPIP for non-encapsulated input.
var ErrNotIPIP = errors.New("netproto: not an IPv4-in-IPv4 packet")

// EncapIPIP wraps an inner IPv4 packet in an outer IPv4 header addressed
// from src to dst, appending to buf. The inner packet must be IPv4.
func EncapIPIP(buf []byte, src, dst netip.Addr, inner []byte) ([]byte, error) {
	if len(inner) < 20 || inner[0]>>4 != 4 {
		return nil, errors.New("netproto: inner packet is not IPv4")
	}
	if !src.Is4() || !dst.Is4() {
		return nil, errors.New("netproto: outer addresses must be IPv4")
	}
	total := 20 + len(inner)
	if total > 0xffff {
		return nil, errors.New("netproto: encapsulated packet too large")
	}
	start := len(buf)
	buf = append(buf,
		0x45, 0, byte(total>>8), byte(total),
		0, 0, 0x40, 0,
		64, byte(ProtoIPIP), 0, 0)
	s4 := src.As4()
	d4 := dst.As4()
	buf = append(buf, s4[:]...)
	buf = append(buf, d4[:]...)
	cs := checksum(buf[start:start+20], 0)
	binary.BigEndian.PutUint16(buf[start+10:], cs)
	return append(buf, inner...), nil
}

// DecapIPIP strips the outer IPv4 header of an IP-in-IP packet and returns
// the inner packet (aliasing data) plus the outer source and destination.
func DecapIPIP(data []byte) (inner []byte, outerSrc, outerDst netip.Addr, err error) {
	if len(data) < 20 || data[0]>>4 != 4 {
		return nil, netip.Addr{}, netip.Addr{}, ErrNotIPIP
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl+20 {
		return nil, netip.Addr{}, netip.Addr{}, ErrTruncated
	}
	if Proto(data[9]) != ProtoIPIP {
		return nil, netip.Addr{}, netip.Addr{}, ErrNotIPIP
	}
	total := int(binary.BigEndian.Uint16(data[2:]))
	if total > len(data) {
		return nil, netip.Addr{}, netip.Addr{}, ErrTruncated
	}
	outerSrc = netip.AddrFrom4([4]byte(data[12:16]))
	outerDst = netip.AddrFrom4([4]byte(data[16:20]))
	return data[ihl:total], outerSrc, outerDst, nil
}
