// Package health implements §7's DIP failure handling: a BFD-style health
// checker running on the switch, probing every DIP on a fixed interval and
// driving pool membership through the control plane — remove a DIP after a
// run of missed probes, re-add it after a run of successes.
//
// The paper sizes this at 10K DIPs probed every 10 seconds with 100-byte
// packets, about 800 Kbps of probe bandwidth; Metrics reproduces that
// arithmetic. The probe transport is injected so the simulator supplies
// virtual-time liveness and cmd/silkroadd could supply real sockets.
package health

import (
	"fmt"
	"sync"

	"repro/internal/dataplane"
	"repro/internal/simtime"
)

// PoolManager is the slice of the control plane the checker drives.
type PoolManager interface {
	AddDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error
	RemoveDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error
}

// ProbeFunc reports whether dip answered a probe sent at now.
type ProbeFunc func(now simtime.Time, dip dataplane.DIP) bool

// Config parameterizes the checker.
type Config struct {
	Interval         simtime.Duration // probe period per DIP (paper: 10 s)
	FailThreshold    int              // consecutive misses before removal (BFD-style multiplier)
	RecoverThreshold int              // consecutive successes before re-adding
	ProbeBytes       int              // probe packet size (paper: 100 B)
}

// DefaultConfig returns the §7 operating point.
func DefaultConfig() Config {
	return Config{
		Interval:         simtime.Duration(10 * simtime.Second),
		FailThreshold:    3,
		RecoverThreshold: 2,
		ProbeBytes:       100,
	}
}

// Metrics counts checker activity.
type Metrics struct {
	ProbesSent  uint64
	ProbeBytes  uint64
	Failovers   uint64 // DIPs removed for health
	Recoveries  uint64 // DIPs re-added after recovery
	ManagerErrs uint64
}

// BandwidthBps returns the probe bandwidth for n targets under cfg — the
// paper's "800 Kbps for 10K DIPs every 10 s" figure.
func (c Config) BandwidthBps(n int) float64 {
	return float64(n) * float64(c.ProbeBytes) * 8 / c.Interval.Seconds()
}

type targetKey struct {
	vip dataplane.VIP
	dip dataplane.DIP
}

type targetState struct {
	misses    int
	successes int
	down      bool
}

// Checker probes watched (VIP, DIP) pairs and drives pool membership.
//
// Checker is safe for concurrent use: the wall-clock runtime advances it
// from the driver goroutine while the application watches and unwatches
// targets from its own. Probe and pool-manager callbacks run with the
// checker's lock held — they must not call back into the checker.
type Checker struct {
	cfg   Config
	mgr   PoolManager
	probe ProbeFunc

	mu      sync.Mutex
	targets map[targetKey]*targetState
	nextRun simtime.Time
	started bool
	metrics Metrics
}

// New builds a checker.
func New(cfg Config, mgr PoolManager, probe ProbeFunc) *Checker {
	if cfg.Interval <= 0 || cfg.FailThreshold <= 0 || cfg.RecoverThreshold <= 0 {
		panic("health: degenerate config")
	}
	if mgr == nil || probe == nil {
		panic("health: manager and probe are required")
	}
	return &Checker{
		cfg:     cfg,
		mgr:     mgr,
		probe:   probe,
		targets: make(map[targetKey]*targetState),
	}
}

// Metrics returns a copy of the counters.
func (c *Checker) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics
}

// Watch starts probing dip on behalf of vip.
func (c *Checker) Watch(vip dataplane.VIP, dip dataplane.DIP) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := targetKey{vip, dip}
	if _, dup := c.targets[k]; !dup {
		c.targets[k] = &targetState{}
	}
}

// Unwatch stops probing dip for vip.
func (c *Checker) Unwatch(vip dataplane.VIP, dip dataplane.DIP) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.targets, targetKey{vip, dip})
}

// Watching returns the number of probe targets.
func (c *Checker) Watching() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.targets)
}

// Down reports whether the checker currently considers dip failed.
func (c *Checker) Down(vip dataplane.VIP, dip dataplane.DIP) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.targets[targetKey{vip, dip}]
	return ok && st.down
}

// NextEventTime returns when the next probe round is due.
func (c *Checker) NextEventTime() (simtime.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.targets) == 0 {
		return 0, false
	}
	return c.nextRun, true
}

// Advance runs every probe round due at or before now.
func (c *Checker) Advance(now simtime.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.targets) == 0 {
		return
	}
	if !c.started {
		c.started = true
		c.nextRun = now
	}
	for !c.nextRun.After(now) {
		c.runRound(c.nextRun)
		c.nextRun = c.nextRun.Add(c.cfg.Interval)
	}
}

// runRound probes every target once.
func (c *Checker) runRound(now simtime.Time) {
	for k, st := range c.targets {
		c.metrics.ProbesSent++
		c.metrics.ProbeBytes += uint64(c.cfg.ProbeBytes)
		if c.probe(now, k.dip) {
			st.misses = 0
			if st.down {
				st.successes++
				if st.successes >= c.cfg.RecoverThreshold {
					if err := c.mgr.AddDIP(now, k.vip, k.dip); err != nil {
						c.metrics.ManagerErrs++
					} else {
						st.down = false
						st.successes = 0
						c.metrics.Recoveries++
					}
				}
			}
			continue
		}
		st.successes = 0
		if st.down {
			continue
		}
		st.misses++
		if st.misses >= c.cfg.FailThreshold {
			if err := c.mgr.RemoveDIP(now, k.vip, k.dip); err != nil {
				c.metrics.ManagerErrs++
			} else {
				st.down = true
				st.misses = 0
				c.metrics.Failovers++
			}
		}
	}
}

// String summarizes checker state.
func (c *Checker) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	down := 0
	for _, st := range c.targets {
		if st.down {
			down++
		}
	}
	return fmt.Sprintf("health: %d targets, %d down, %.0f bps probe bandwidth",
		len(c.targets), down, c.cfg.BandwidthBps(len(c.targets)))
}
