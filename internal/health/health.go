// Package health implements §7's DIP failure handling: a BFD-style health
// checker running on the switch, probing every DIP on a fixed interval and
// driving pool membership through the control plane — remove a DIP after a
// run of missed probes, re-add it after a run of successes.
//
// The paper sizes this at 10K DIPs probed every 10 seconds with 100-byte
// packets, about 800 Kbps of probe bandwidth; Metrics reproduces that
// arithmetic. The probe transport is injected so the simulator supplies
// virtual-time liveness and cmd/silkroadd could supply real sockets.
package health

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dataplane"
	"repro/internal/simtime"
)

// PoolManager is the slice of the control plane the checker drives.
type PoolManager interface {
	AddDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error
	RemoveDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error
}

// ProbeFunc reports whether dip answered a probe sent at now.
type ProbeFunc func(now simtime.Time, dip dataplane.DIP) bool

// Config parameterizes the checker.
type Config struct {
	Interval         simtime.Duration // probe period per DIP (paper: 10 s)
	FailThreshold    int              // consecutive misses before removal (BFD-style multiplier)
	RecoverThreshold int              // consecutive successes before re-adding
	ProbeBytes       int              // probe packet size (paper: 100 B)
}

// DefaultConfig returns the §7 operating point.
func DefaultConfig() Config {
	return Config{
		Interval:         simtime.Duration(10 * simtime.Second),
		FailThreshold:    3,
		RecoverThreshold: 2,
		ProbeBytes:       100,
	}
}

// Metrics counts checker activity.
type Metrics struct {
	ProbesSent  uint64
	ProbeBytes  uint64
	Failovers   uint64 // DIPs removed for health
	Recoveries  uint64 // DIPs re-added after recovery
	ManagerErrs uint64
}

// BandwidthBps returns the probe bandwidth for n targets under cfg — the
// paper's "800 Kbps for 10K DIPs every 10 s" figure.
func (c Config) BandwidthBps(n int) float64 {
	return float64(n) * float64(c.ProbeBytes) * 8 / c.Interval.Seconds()
}

type targetKey struct {
	vip dataplane.VIP
	dip dataplane.DIP
}

// less orders probe targets deterministically (VIP address, port, proto,
// then DIP address, port) so a probe round visits targets in the same
// order every run regardless of map iteration order.
func (a targetKey) less(b targetKey) bool {
	if c := a.vip.Addr.Compare(b.vip.Addr); c != 0 {
		return c < 0
	}
	if a.vip.Port != b.vip.Port {
		return a.vip.Port < b.vip.Port
	}
	if a.vip.Proto != b.vip.Proto {
		return a.vip.Proto < b.vip.Proto
	}
	if c := a.dip.Addr().Compare(b.dip.Addr()); c != 0 {
		return c < 0
	}
	return a.dip.Port() < b.dip.Port()
}

type targetState struct {
	misses    int
	successes int
	down      bool
}

// Checker probes watched (VIP, DIP) pairs and drives pool membership.
//
// Checker is safe for concurrent use: the wall-clock runtime advances it
// from the driver goroutine while the application watches and unwatches
// targets from its own. Probe and pool-manager callbacks run with the
// checker's lock released, so they may call back into the checker
// (Down, Watching, Watch, Unwatch, ...) without deadlocking. A target
// unwatched while a callback for it is in flight is simply skipped when
// the round resumes.
type Checker struct {
	cfg   Config
	mgr   PoolManager
	probe ProbeFunc

	mu        sync.Mutex
	targets   map[targetKey]*targetState
	nextRun   simtime.Time
	started   bool
	advancing bool // a probe round is in flight (guards reentrant Advance)
	metrics   Metrics
}

// New builds a checker.
func New(cfg Config, mgr PoolManager, probe ProbeFunc) *Checker {
	if cfg.Interval <= 0 || cfg.FailThreshold <= 0 || cfg.RecoverThreshold <= 0 {
		panic("health: degenerate config")
	}
	if mgr == nil || probe == nil {
		panic("health: manager and probe are required")
	}
	return &Checker{
		cfg:     cfg,
		mgr:     mgr,
		probe:   probe,
		targets: make(map[targetKey]*targetState),
	}
}

// Metrics returns a copy of the counters.
func (c *Checker) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics
}

// Watch starts probing dip on behalf of vip.
func (c *Checker) Watch(vip dataplane.VIP, dip dataplane.DIP) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := targetKey{vip, dip}
	if _, dup := c.targets[k]; !dup {
		c.targets[k] = &targetState{}
	}
}

// Unwatch stops probing dip for vip.
func (c *Checker) Unwatch(vip dataplane.VIP, dip dataplane.DIP) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.targets, targetKey{vip, dip})
}

// Watching returns the number of probe targets.
func (c *Checker) Watching() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.targets)
}

// Down reports whether the checker currently considers dip failed.
func (c *Checker) Down(vip dataplane.VIP, dip dataplane.DIP) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.targets[targetKey{vip, dip}]
	return ok && st.down
}

// NextEventTime returns when the next probe round is due.
func (c *Checker) NextEventTime() (simtime.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.targets) == 0 {
		return 0, false
	}
	return c.nextRun, true
}

// Advance runs every probe round due at or before now. Reentrant calls
// (a probe or manager callback driving the scheduler back into the
// checker) are no-ops: the outer round finishes first.
func (c *Checker) Advance(now simtime.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.advancing || len(c.targets) == 0 {
		return
	}
	c.advancing = true
	defer func() { c.advancing = false }()
	if !c.started {
		c.started = true
		c.nextRun = now
	}
	for len(c.targets) > 0 && !c.nextRun.After(now) {
		at := c.nextRun
		c.nextRun = c.nextRun.Add(c.cfg.Interval)
		c.runRound(at)
	}
}

// runRound probes every target once, in deterministic key order. Called
// (and returns) with c.mu held; the lock is released around every probe
// and pool-manager call, and the target is re-looked-up afterwards so a
// concurrent Unwatch simply drops it from the round.
func (c *Checker) runRound(now simtime.Time) {
	keys := make([]targetKey, 0, len(c.targets))
	for k := range c.targets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	for _, k := range keys {
		if _, ok := c.targets[k]; !ok {
			continue // unwatched mid-round
		}
		c.metrics.ProbesSent++
		c.metrics.ProbeBytes += uint64(c.cfg.ProbeBytes)
		c.mu.Unlock()
		up := c.probe(now, k.dip)
		c.mu.Lock()
		st, ok := c.targets[k]
		if !ok {
			continue
		}
		if up {
			st.misses = 0
			if !st.down {
				continue
			}
			st.successes++
			if st.successes < c.cfg.RecoverThreshold {
				continue
			}
			c.mu.Unlock()
			err := c.mgr.AddDIP(now, k.vip, k.dip)
			c.mu.Lock()
			if st, ok = c.targets[k]; !ok {
				continue
			}
			if err != nil {
				c.metrics.ManagerErrs++
				continue
			}
			st.down = false
			st.successes = 0
			c.metrics.Recoveries++
			continue
		}
		st.successes = 0
		if st.down {
			continue
		}
		st.misses++
		if st.misses < c.cfg.FailThreshold {
			continue
		}
		c.mu.Unlock()
		err := c.mgr.RemoveDIP(now, k.vip, k.dip)
		c.mu.Lock()
		if st, ok = c.targets[k]; !ok {
			continue
		}
		if err != nil {
			c.metrics.ManagerErrs++
			continue
		}
		st.down = true
		st.misses = 0
		c.metrics.Failovers++
	}
}

// String summarizes checker state.
func (c *Checker) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	down := 0
	for _, st := range c.targets {
		if st.down {
			down++
		}
	}
	return fmt.Sprintf("health: %d targets, %d down, %.0f bps probe bandwidth",
		len(c.targets), down, c.cfg.BandwidthBps(len(c.targets)))
}
