package health

import (
	"net/netip"
	"testing"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

func ctrlplaneNew(sw *dataplane.Switch) *ctrlplane.ControlPlane {
	return ctrlplane.New(sw, ctrlplane.DefaultConfig())
}

type fakeMgr struct {
	added, removed []dataplane.DIP
	fail           bool
}

func (m *fakeMgr) AddDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error {
	if m.fail {
		return errFake
	}
	m.added = append(m.added, dip)
	return nil
}

func (m *fakeMgr) RemoveDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error {
	if m.fail {
		return errFake
	}
	m.removed = append(m.removed, dip)
	return nil
}

var errFake = errFakeT{}

type errFakeT struct{}

func (errFakeT) Error() string { return "fake" }

func vip() dataplane.VIP {
	return dataplane.VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 80, Proto: netproto.ProtoTCP}
}

func dip(i int) dataplane.DIP {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}), 20)
}

func sec(n int) simtime.Time { return simtime.Time(n) * simtime.Time(simtime.Second) }

func TestFailoverAfterThresholdMisses(t *testing.T) {
	mgr := &fakeMgr{}
	alive := map[dataplane.DIP]bool{dip(1): true, dip(2): true}
	c := New(DefaultConfig(), mgr, func(now simtime.Time, d dataplane.DIP) bool { return alive[d] })
	c.Watch(vip(), dip(1))
	c.Watch(vip(), dip(2))

	c.Advance(sec(0))
	if len(mgr.removed) != 0 {
		t.Fatal("healthy DIPs removed")
	}
	// dip(1) dies. Removal requires 3 consecutive misses (30 s at 10 s
	// interval), not one.
	alive[dip(1)] = false
	c.Advance(sec(10))
	c.Advance(sec(20))
	if len(mgr.removed) != 0 {
		t.Fatal("removed before threshold")
	}
	c.Advance(sec(30))
	if len(mgr.removed) != 1 || mgr.removed[0] != dip(1) {
		t.Fatalf("removed = %v", mgr.removed)
	}
	if !c.Down(vip(), dip(1)) || c.Down(vip(), dip(2)) {
		t.Fatal("down-state wrong")
	}
	// Recovery: 2 consecutive successes re-add.
	alive[dip(1)] = true
	c.Advance(sec(40))
	if len(mgr.added) != 0 {
		t.Fatal("re-added before recovery threshold")
	}
	c.Advance(sec(50))
	if len(mgr.added) != 1 || mgr.added[0] != dip(1) {
		t.Fatalf("added = %v", mgr.added)
	}
	m := c.Metrics()
	if m.Failovers != 1 || m.Recoveries != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestFlappingDoesNotTriggerRemoval(t *testing.T) {
	mgr := &fakeMgr{}
	up := true
	c := New(DefaultConfig(), mgr, func(simtime.Time, dataplane.DIP) bool {
		up = !up // alternate miss/success: misses never run 3 deep
		return up
	})
	c.Watch(vip(), dip(1))
	for s := 0; s <= 300; s += 10 {
		c.Advance(sec(s))
	}
	if len(mgr.removed) != 0 {
		t.Fatal("flapping DIP removed despite non-consecutive misses")
	}
}

func TestBandwidthMatchesPaper(t *testing.T) {
	// §7: 10K DIPs every 10 s with 100 B packets ~ 800 Kbps.
	got := DefaultConfig().BandwidthBps(10000)
	if got != 800_000 {
		t.Fatalf("probe bandwidth = %.0f bps, want 800000", got)
	}
}

func TestCatchUpRounds(t *testing.T) {
	mgr := &fakeMgr{}
	c := New(DefaultConfig(), mgr, func(simtime.Time, dataplane.DIP) bool { return false })
	c.Watch(vip(), dip(1))
	// A single Advance far in the future must run all missed rounds, so
	// the failure threshold is crossed.
	c.Advance(sec(0))
	c.Advance(sec(100))
	if len(mgr.removed) != 1 {
		t.Fatalf("catch-up rounds did not fire: removed=%v", mgr.removed)
	}
	if c.Metrics().ProbesSent < 3 {
		t.Fatalf("ProbesSent = %d", c.Metrics().ProbesSent)
	}
}

func TestUnwatchStopsProbing(t *testing.T) {
	mgr := &fakeMgr{}
	c := New(DefaultConfig(), mgr, func(simtime.Time, dataplane.DIP) bool { return false })
	c.Watch(vip(), dip(1))
	c.Unwatch(vip(), dip(1))
	if c.Watching() != 0 {
		t.Fatal("Unwatch failed")
	}
	c.Advance(sec(100))
	if len(mgr.removed) != 0 {
		t.Fatal("unwatched DIP removed")
	}
	if _, ok := c.NextEventTime(); ok {
		t.Fatal("no targets but an event scheduled")
	}
}

func TestManagerErrorsCounted(t *testing.T) {
	mgr := &fakeMgr{fail: true}
	c := New(DefaultConfig(), mgr, func(simtime.Time, dataplane.DIP) bool { return false })
	c.Watch(vip(), dip(1))
	for s := 0; s <= 60; s += 10 {
		c.Advance(sec(s))
	}
	if c.Metrics().ManagerErrs == 0 {
		t.Fatal("manager errors not counted")
	}
	// The DIP stays up in checker state so removal retries.
	if c.Down(vip(), dip(1)) {
		t.Fatal("DIP marked down despite failed removal")
	}
}

func TestWatchIdempotent(t *testing.T) {
	mgr := &fakeMgr{}
	c := New(DefaultConfig(), mgr, func(simtime.Time, dataplane.DIP) bool { return true })
	c.Watch(vip(), dip(1))
	c.Watch(vip(), dip(1))
	if c.Watching() != 1 {
		t.Fatalf("Watching = %d", c.Watching())
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(Config{}, &fakeMgr{}, func(simtime.Time, dataplane.DIP) bool { return true }) },
		func() { New(DefaultConfig(), nil, func(simtime.Time, dataplane.DIP) bool { return true }) },
		func() { New(DefaultConfig(), &fakeMgr{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad New did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestEndToEndWithControlPlane wires the checker to a real switch: a DIP
// failure drives a PCC-preserving pool update.
func TestEndToEndWithControlPlane(t *testing.T) {
	sw, err := dataplane.New(dataplane.DefaultConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	cp := ctrlplaneNew(sw)
	pool := []dataplane.DIP{dip(1), dip(2), dip(3)}
	if err := cp.AddVIP(0, vip(), pool, 0); err != nil {
		t.Fatal(err)
	}
	alive := map[dataplane.DIP]bool{dip(1): true, dip(2): true, dip(3): true}
	c := New(DefaultConfig(), cp, func(now simtime.Time, d dataplane.DIP) bool { return alive[d] })
	for _, d := range pool {
		c.Watch(vip(), d)
	}
	alive[dip(2)] = false
	for s := 0; s <= 60; s += 10 {
		c.Advance(sec(s))
		cp.Advance(sec(s))
	}
	cur, _ := cp.CurrentPool(vip())
	if len(cur) != 2 {
		t.Fatalf("pool after failover = %v", cur)
	}
	for _, d := range cur {
		if d == dip(2) {
			t.Fatal("failed DIP still in pool")
		}
	}
	// Recovery re-adds it.
	alive[dip(2)] = true
	for s := 70; s <= 120; s += 10 {
		c.Advance(sec(s))
		cp.Advance(sec(s))
	}
	cur, _ = cp.CurrentPool(vip())
	if len(cur) != 3 {
		t.Fatalf("pool after recovery = %v", cur)
	}
}

// TestProbeMayCallBackIntoChecker locks in the unlocked-callback contract:
// a probe that queries the checker (as a fault injector wrapping the probe
// does) must not deadlock.
func TestProbeMayCallBackIntoChecker(t *testing.T) {
	mgr := &fakeMgr{}
	var c *Checker
	c = New(DefaultConfig(), mgr, func(now simtime.Time, d dataplane.DIP) bool {
		// Reentrant reads: these deadlocked when probes ran under c.mu.
		_ = c.Watching()
		_ = c.Down(vip(), d)
		c.Advance(now) // reentrant Advance must be a no-op, not a deadlock
		return false
	})
	c.Watch(vip(), dip(1))
	for s := 0; s <= 30; s += 10 {
		c.Advance(sec(s))
	}
	if len(mgr.removed) != 1 {
		t.Fatalf("removed = %v", mgr.removed)
	}
}

// unwatchMgr unwatches the very target being acted on from inside the
// pool-manager callback, as a control plane tearing down a VIP would.
type unwatchMgr struct {
	c       *Checker
	removed int
}

func (m *unwatchMgr) AddDIP(simtime.Time, dataplane.VIP, dataplane.DIP) error { return nil }

func (m *unwatchMgr) RemoveDIP(now simtime.Time, v dataplane.VIP, d dataplane.DIP) error {
	m.removed++
	m.c.Unwatch(v, d)
	return nil
}

func TestManagerCallbackMayUnwatch(t *testing.T) {
	mgr := &unwatchMgr{}
	c := New(DefaultConfig(), mgr, func(simtime.Time, dataplane.DIP) bool { return false })
	mgr.c = c
	c.Watch(vip(), dip(1))
	c.Watch(vip(), dip(2))
	for s := 0; s <= 60; s += 10 {
		c.Advance(sec(s))
	}
	if mgr.removed != 2 {
		t.Fatalf("removed = %d, want 2", mgr.removed)
	}
	if c.Watching() != 0 {
		t.Fatalf("Watching = %d after callbacks unwatched everything", c.Watching())
	}
	// The post-callback re-lookup must have seen the deletion: Failovers
	// counts only committed state transitions, and both targets were gone
	// before the commit.
	if got := c.Metrics().Failovers; got != 0 {
		t.Fatalf("Failovers = %d, want 0 (targets unwatched mid-callback)", got)
	}
}

// TestProbeOrderDeterministic: rounds visit targets in sorted key order,
// not map order.
type orderMgr struct{ order []dataplane.DIP }

func (m *orderMgr) AddDIP(simtime.Time, dataplane.VIP, dataplane.DIP) error { return nil }
func (m *orderMgr) RemoveDIP(now simtime.Time, v dataplane.VIP, d dataplane.DIP) error {
	m.order = append(m.order, d)
	return nil
}

func TestProbeOrderDeterministic(t *testing.T) {
	mgr := &orderMgr{}
	c := New(DefaultConfig(), mgr, func(simtime.Time, dataplane.DIP) bool { return false })
	for i := 9; i >= 1; i-- { // watch in reverse order
		c.Watch(vip(), dip(i))
	}
	for s := 0; s <= 30; s += 10 {
		c.Advance(sec(s))
	}
	if len(mgr.order) != 9 {
		t.Fatalf("removed %d targets, want 9", len(mgr.order))
	}
	for i, d := range mgr.order {
		if d != dip(i+1) {
			t.Fatalf("removal order[%d] = %v, want %v", i, d, dip(i+1))
		}
	}
}
