package regarray

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestArrayBasics(t *testing.T) {
	a := New(16, 8)
	if a.Len() != 16 || a.Width() != 8 {
		t.Fatalf("Len/Width = %d/%d", a.Len(), a.Width())
	}
	if a.SizeBytes() != 16 {
		t.Fatalf("SizeBytes = %d, want 16", a.SizeBytes())
	}
	a.Write(3, 0x1ff) // truncated to 8 bits
	if got := a.Read(3); got != 0xff {
		t.Fatalf("Read = %#x, want 0xff (width truncation)", got)
	}
}

func TestArrayBitWidth(t *testing.T) {
	a := New(100, 1)
	a.Write(0, 3)
	if a.Read(0) != 1 {
		t.Fatal("1-bit cell did not truncate")
	}
	if a.SizeBytes() != 13 { // ceil(100/8)
		t.Fatalf("SizeBytes = %d, want 13", a.SizeBytes())
	}
	a64 := New(2, 64)
	a64.Write(1, ^uint64(0))
	if a64.Read(1) != ^uint64(0) {
		t.Fatal("64-bit cell truncated")
	}
}

func TestArrayUpdateTransactional(t *testing.T) {
	a := New(4, 32)
	a.Write(0, 10)
	old, now := a.Update(0, func(v uint64) uint64 { return v + 5 })
	if old != 10 || now != 15 || a.Read(0) != 15 {
		t.Fatalf("Update: old=%d new=%d read=%d", old, now, a.Read(0))
	}
	// The next update must see the previous update's result — the packet
	// transactional semantics the TransitTable depends on.
	old2, _ := a.Update(0, func(v uint64) uint64 { return v * 2 })
	if old2 != 15 {
		t.Fatalf("second update saw %d, want 15", old2)
	}
}

func TestArrayClear(t *testing.T) {
	a := New(8, 16)
	for i := 0; i < 8; i++ {
		a.Write(i, uint64(i+1))
	}
	a.Clear()
	for i := 0; i < 8; i++ {
		if a.Read(i) != 0 {
			t.Fatalf("cell %d not cleared", i)
		}
	}
}

func TestArrayPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 8) },
		func() { New(4, 0) },
		func() { New(4, 65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad New did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(100)
	c.Add(52)
	if c.Packets != 2 || c.Bytes != 152 {
		t.Fatalf("counter = %+v", c)
	}
}

func TestMeterGreenWithinCIR(t *testing.T) {
	// 10 Gbps CIR expressed in B/s, generous burst.
	m := NewMeter(1.25e9, 1.25e6, 1.25e8, 1.25e5)
	now := simtime.Time(0)
	// Send at exactly CIR: 1250-byte packets every microsecond = 1.25 GB/s.
	red := 0
	for i := 0; i < 10000; i++ {
		if m.Mark(now, 1250) == Red {
			red++
		}
		now = now.Add(simtime.Microsecond)
	}
	if red != 0 {
		t.Fatalf("in-profile traffic marked red %d times", red)
	}
}

func TestMeterRedAboveRates(t *testing.T) {
	m := NewMeter(1000, 1000, 1000, 1000) // 1 KB/s committed and excess
	now := simtime.Time(0)
	colors := map[Color]int{}
	// Burst 10 KB instantly: first ~1KB green, next ~1KB yellow, rest red.
	for i := 0; i < 100; i++ {
		colors[m.Mark(now, 100)]++
	}
	if colors[Green] != 10 || colors[Yellow] != 10 || colors[Red] != 80 {
		t.Fatalf("colors = %v, want 10 green / 10 yellow / 80 red", colors)
	}
}

func TestMeterRefills(t *testing.T) {
	m := NewMeter(1000, 1000, 0, 1) // refill only committed bucket
	now := simtime.Time(0)
	if m.Mark(now, 1000) != Green {
		t.Fatal("first packet should be green")
	}
	if m.Mark(now, 1000) == Green {
		t.Fatal("bucket should be empty")
	}
	now = now.Add(simtime.Second) // refills 1000 bytes
	if m.Mark(now, 1000) != Green {
		t.Fatal("bucket should have refilled")
	}
}

// TestMeterAccuracy reproduces the §5.2 metering experiment in miniature:
// offered 2x CIR, the green fraction must be CIR/offered within 1%.
func TestMeterAccuracy(t *testing.T) {
	cir := 1.25e9 / 2 // 5 Gbps in B/s
	m := NewMeter(cir, cir/100, 1, 1)
	now := simtime.Time(0)
	greenBytes, totalBytes := 0.0, 0.0
	const pkt = 1250
	// Offer 10 Gbps: one 1250B packet every 1 us.
	for i := 0; i < 2_000_000; i++ {
		if m.Mark(now, pkt) == Green {
			greenBytes += pkt
		}
		totalBytes += pkt
		now = now.Add(simtime.Microsecond)
	}
	gotRate := greenBytes / now.Sub(0).Seconds()
	err := (gotRate - cir) / cir
	if err < -0.01 || err > 0.01 {
		t.Fatalf("metered rate error = %.4f, want |err| < 1%%", err)
	}
}

func TestMeterPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad meter config did not panic")
		}
	}()
	NewMeter(-1, 1, 1, 1)
}

func TestMeterBank(t *testing.T) {
	b := NewMeterBank(40000, func(i int) *Meter { return NewMeter(1e6, 1e4, 1e5, 1e3) })
	if b.Len() != 40000 {
		t.Fatalf("Len = %d", b.Len())
	}
	// 40K meters ~ 1.28 MB, about 1% of a 100+MB-class ASIC SRAM (§5.2).
	if got := b.SRAMBytes(); got != 40000*32 {
		t.Fatalf("SRAMBytes = %d", got)
	}
	if c := b.Mark(7, 0, 100); c != Green {
		t.Fatalf("first packet color = %v", c)
	}
}

func TestColorString(t *testing.T) {
	if Green.String() != "green" || Yellow.String() != "yellow" || Red.String() != "red" {
		t.Fatal("color names wrong")
	}
	if Color(9).String() != "color(9)" {
		t.Fatal("unknown color name wrong")
	}
}

// Property: Update always truncates to width and stores what it returns.
func TestUpdateProperty(t *testing.T) {
	a := New(1, 12)
	f := func(v uint64) bool {
		_, newV := a.Update(0, func(uint64) uint64 { return v })
		return newV == v&0xfff && a.Read(0) == newV
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMeterMark(b *testing.B) {
	m := NewMeter(1e9, 1e7, 1e8, 1e6)
	for i := 0; i < b.N; i++ {
		m.Mark(simtime.Time(i)*1000, 1250)
	}
}
