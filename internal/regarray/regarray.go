// Package regarray models the transactional stateful memory of a switching
// ASIC: register arrays with read-check-modify-write in a single clock
// cycle, packet/byte counters, and RFC 4115 two-rate three-color meters.
//
// The paper (§4.1) relies on exactly this primitive to build the
// TransitTable bloom filter: unlike the cuckoo-managed exact-match tables,
// register updates need no switch-CPU involvement, so an update by one
// packet is visible to the very next packet. In this model that property is
// trivially provided by sequential method calls; what we preserve is the
// *resource envelope* — a register array occupies SRAM and a stateful ALU,
// which the asic package accounts for.
package regarray

import (
	"fmt"

	"repro/internal/simtime"
)

// Array is a register array of fixed-width cells (1..64 bits).
type Array struct {
	width int
	mask  uint64
	cells []uint64
}

// New creates a register array with n cells of the given bit width.
func New(n, widthBits int) *Array {
	if n <= 0 {
		panic("regarray: size must be positive")
	}
	if widthBits <= 0 || widthBits > 64 {
		panic("regarray: width must be in 1..64")
	}
	mask := ^uint64(0)
	if widthBits < 64 {
		mask = 1<<uint(widthBits) - 1
	}
	return &Array{width: widthBits, mask: mask, cells: make([]uint64, n)}
}

// Len returns the number of cells.
func (a *Array) Len() int { return len(a.cells) }

// Width returns the cell width in bits.
func (a *Array) Width() int { return a.width }

// SizeBytes returns the SRAM footprint in bytes (width*n rounded up).
func (a *Array) SizeBytes() int { return (a.width*len(a.cells) + 7) / 8 }

// Read returns cell i.
func (a *Array) Read(i int) uint64 { return a.cells[i] }

// Write stores v (truncated to the cell width) into cell i.
func (a *Array) Write(i int, v uint64) { a.cells[i] = v & a.mask }

// Update applies f to cell i transactionally and returns the old and new
// values. This is the generalized read-check-modify-write primitive P4
// exposes as a RegisterAction.
func (a *Array) Update(i int, f func(old uint64) uint64) (old, new uint64) {
	old = a.cells[i]
	new = f(old) & a.mask
	a.cells[i] = new
	return old, new
}

// Clear zeroes every cell.
func (a *Array) Clear() {
	for i := range a.cells {
		a.cells[i] = 0
	}
}

// Counter is a packets+bytes counter pair, as attached to match entries.
type Counter struct {
	Packets uint64
	Bytes   uint64
}

// Add records one packet of the given byte length.
func (c *Counter) Add(bytes int) {
	c.Packets++
	c.Bytes += uint64(bytes)
}

// Color is the result of metering a packet.
type Color uint8

// Meter colors per RFC 4115 / RFC 2698 terminology.
const (
	Green Color = iota
	Yellow
	Red
)

// String returns the color name.
func (c Color) String() string {
	switch c {
	case Green:
		return "green"
	case Yellow:
		return "yellow"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("color(%d)", uint8(c))
	}
}

// Meter is an RFC 4115 two-rate three-color marker with efficient handling
// of in-profile traffic. SilkRoad attaches one per VIP to throttle DDoS or
// flash-crowd traffic entirely in hardware (§5.2).
//
// CIR/EIR are in bytes per second of virtual time; CBS/EBS in bytes.
type Meter struct {
	CIR, EIR float64 // committed / excess information rate, B/s
	CBS, EBS float64 // committed / excess burst size, B

	tc, te float64 // current token buckets
	last   simtime.Time
	init   bool
}

// NewMeter creates a meter with the given rates and bursts.
func NewMeter(cir, cbs, eir, ebs float64) *Meter {
	if cir < 0 || cbs <= 0 || eir < 0 || ebs <= 0 {
		panic("regarray: meter rates must be non-negative and bursts positive")
	}
	return &Meter{CIR: cir, EIR: eir, CBS: cbs, EBS: ebs}
}

// Mark meters a packet of the given length arriving at now and returns its
// color. Per RFC 4115 (color-blind mode): in-profile traffic consumes the
// committed bucket; out-of-profile traffic consumes the excess bucket;
// traffic exceeding both is red.
func (m *Meter) Mark(now simtime.Time, bytes int) Color {
	if !m.init {
		m.tc, m.te = m.CBS, m.EBS
		m.last = now
		m.init = true
	}
	if now.After(m.last) {
		dt := now.Sub(m.last).Seconds()
		m.tc += m.CIR * dt
		if m.tc > m.CBS {
			m.tc = m.CBS
		}
		m.te += m.EIR * dt
		if m.te > m.EBS {
			m.te = m.EBS
		}
		m.last = now
	}
	b := float64(bytes)
	if m.tc >= b {
		m.tc -= b
		return Green
	}
	if m.te >= b {
		m.te -= b
		return Yellow
	}
	return Red
}

// MeterBank is an addressable array of meters, mirroring the "thousands of
// meters" arrays in ASICs. Creating 40K instances costs ~1% of chip SRAM in
// the paper's prototype; SRAMBytes exposes the equivalent footprint here.
type MeterBank struct {
	meters []Meter
}

// NewMeterBank creates n meters, each configured by conf.
func NewMeterBank(n int, conf func(i int) *Meter) *MeterBank {
	b := &MeterBank{meters: make([]Meter, n)}
	for i := range b.meters {
		b.meters[i] = *conf(i)
	}
	return b
}

// Mark meters a packet against meter i.
func (b *MeterBank) Mark(i int, now simtime.Time, bytes int) Color {
	return b.meters[i].Mark(now, bytes)
}

// Len returns the number of meters.
func (b *MeterBank) Len() int { return len(b.meters) }

// SRAMBytes returns the modeled SRAM cost: each meter holds two buckets and
// a timestamp plus configuration, ~32 bytes of stateful memory.
func (b *MeterBank) SRAMBytes() int { return BankSRAMBytes(len(b.meters)) }

// BankSRAMBytes returns the SRAM cost of a bank of n meters without
// building it, for budget checks ahead of allocation.
func BankSRAMBytes(n int) int { return n * 32 }
