package cuckoo

import (
	"math/rand"
	"testing"
)

func mixedConfig(buckets int) Config {
	cfg := testConfig(buckets)
	cfg.DigestBits = 24
	cfg.DigestBitsPerStage = []int{24, 24, 16, 16}
	return cfg
}

func digest24(key uint64) uint32 {
	return uint32(key*0x2545f4914f6cdd1d>>40) & 0xffffff
}

func TestMixedDigestInsertPrefersWideStages(t *testing.T) {
	tab := New(mixedConfig(64))
	rng := rand.New(rand.NewSource(20))
	// At low occupancy every entry should land in the 24-bit stages.
	for i := 0; i < 100; i++ {
		k := rng.Uint64()
		if _, err := tab.Insert(k, digest24(k), 1); err != nil {
			t.Fatal(err)
		}
		_, h, ok := tab.Lookup(k, digest24(k))
		if !ok {
			t.Fatal("lost entry")
		}
		if h.Stage >= 2 {
			t.Fatalf("entry %d landed in 16-bit stage %d at low occupancy", i, h.Stage)
		}
	}
}

func TestMixedDigestLookupCorrectness(t *testing.T) {
	tab := New(mixedConfig(64))
	rng := rand.New(rand.NewSource(21))
	keys := map[uint64]uint32{}
	// Fill past the wide stages so entries spill into narrow ones.
	for i := 0; i < tab.Capacity()*3/4; i++ {
		k := rng.Uint64()
		if _, err := tab.Insert(k, digest24(k), uint32(i%64)); err != nil {
			break
		}
		keys[k] = uint32(i % 64)
	}
	for k, v := range keys {
		got, h, ok := tab.Lookup(k, digest24(k))
		if !ok {
			t.Fatalf("key %x lost", k)
		}
		if kh, _ := tab.EntryKeyHash(h); kh != k {
			continue // tolerated alias; exactness checked via value below
		}
		if got != v {
			t.Fatalf("key %x value %d, want %d", k, got, v)
		}
	}
	// Deletion still works across stage widths.
	for k := range keys {
		if !tab.Delete(k) {
			t.Fatalf("delete %x failed", k)
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

// TestMixedDigestFPReduction is the §7 ablation: at moderate occupancy
// (entries mostly in 24-bit stages), the mixed table's false-positive rate
// beats uniform 16-bit, while costing less SRAM than uniform 24-bit.
func TestMixedDigestFPReduction(t *testing.T) {
	const buckets = 512
	fill := func(tab *Table, frac float64, dig func(uint64) uint32) {
		n := int(float64(tab.Capacity()) * frac)
		for i := 0; i < n; i++ {
			k := uint64(i)*0x9e3779b97f4a7c15 + 3
			tab.Insert(k, dig(k), 0)
		}
	}
	probeFP := func(tab *Table, dig func(uint64) uint32) float64 {
		hits := 0
		const probes = 100000
		for i := 0; i < probes; i++ {
			k := uint64(1<<40) + uint64(i)*0x9e3779b97f4a7c15
			if _, _, ok := tab.Lookup(k, dig(k)); ok {
				hits++
			}
		}
		return float64(hits) / probes
	}

	uni16 := New(testConfig(buckets)) // 16-bit everywhere
	dig16 := func(k uint64) uint32 { return uint32(k*0x2545f4914f6cdd1d>>48) & 0xffff }
	fill(uni16, 0.45, dig16)
	fp16 := probeFP(uni16, dig16)

	cfg24 := testConfig(buckets)
	cfg24.DigestBits = 24
	uni24 := New(cfg24)
	fill(uni24, 0.45, digest24)
	fp24 := probeFP(uni24, digest24)

	mixed := New(mixedConfig(buckets))
	fill(mixed, 0.45, digest24)
	fpMixed := probeFP(mixed, digest24)

	if !(fpMixed < fp16) {
		t.Fatalf("mixed FP %.6f should beat uniform-16 %.6f at 45%% load", fpMixed, fp16)
	}
	if !(fp24 <= fpMixed) {
		t.Fatalf("uniform-24 FP %.6f should be the floor (mixed %.6f)", fp24, fpMixed)
	}
	if !(mixed.SRAMBytes() < uni24.SRAMBytes()) {
		t.Fatalf("mixed SRAM %d should undercut uniform-24 %d", mixed.SRAMBytes(), uni24.SRAMBytes())
	}
	if !(mixed.SRAMBytes() > uni16.SRAMBytes()) {
		t.Fatalf("mixed SRAM %d should exceed uniform-16 %d", mixed.SRAMBytes(), uni16.SRAMBytes())
	}
}

func TestMixedDigestConfigValidation(t *testing.T) {
	for _, bad := range [][]int{
		{24, 24},         // wrong length
		{24, 24, 16, 0},  // zero width
		{24, 24, 16, 25}, // exceeds DigestBits
	} {
		cfg := mixedConfig(8)
		cfg.DigestBitsPerStage = bad
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %v did not panic", bad)
				}
			}()
			New(cfg)
		}()
	}
}

func TestEntryBitsStage(t *testing.T) {
	tab := New(mixedConfig(8))
	if tab.EntryBitsStage(0) != 24+6+6 || tab.EntryBitsStage(3) != 16+6+6 {
		t.Fatalf("per-stage entry bits: %d, %d", tab.EntryBitsStage(0), tab.EntryBitsStage(3))
	}
	if tab.EntryBits() != 36 {
		t.Fatalf("EntryBits = %d", tab.EntryBits())
	}
}
