package cuckoo

import (
	"fmt"
	"math/rand"
	"testing"
)

// occupancyAtFirstFailure fills a table until an insert fails and returns
// the achieved load factor.
func occupancyAtFirstFailure(stages, ways, buckets int, seed int64) float64 {
	cfg := Config{
		Stages: stages, BucketsPerStage: buckets, Ways: ways,
		DigestBits: 16, ValueBits: 6, OverheadBits: 6, Seed: uint64(seed),
	}
	tab := New(cfg)
	rng := rand.New(rand.NewSource(seed))
	for {
		k := rng.Uint64()
		if _, err := tab.Insert(k, uint32(k>>48), 0); err != nil {
			return tab.Occupancy()
		}
	}
}

// TestOccupancyAblation quantifies the design-choice table in DESIGN.md:
// more stage-choices and more ways per bucket both raise the load factor
// the cuckoo table reaches before inserts fail.
func TestOccupancyAblation(t *testing.T) {
	type variant struct {
		stages, ways int
		minOcc       float64
	}
	variants := []variant{
		{2, 1, 0.40}, // 2 choices, direct-mapped: poor
		{2, 4, 0.85},
		{4, 1, 0.80},
		{4, 4, 0.93}, // the paper's operating point
	}
	occ := map[string]float64{}
	for _, v := range variants {
		buckets := 4096 / v.ways
		o := occupancyAtFirstFailure(v.stages, v.ways, buckets, 31)
		occ[fmt.Sprintf("%dx%d", v.stages, v.ways)] = o
		if o < v.minOcc {
			t.Errorf("stages=%d ways=%d occupancy %.3f < %.2f", v.stages, v.ways, o, v.minOcc)
		}
	}
	if occ["4x4"] <= occ["2x1"] {
		t.Fatalf("associativity did not help: %v", occ)
	}
}

// BenchmarkOccupancyAblation reports the achieved load factor per
// configuration as a benchmark metric.
func BenchmarkOccupancyAblation(b *testing.B) {
	for _, v := range []struct{ stages, ways int }{{2, 1}, {2, 4}, {4, 1}, {4, 4}, {8, 4}} {
		b.Run(fmt.Sprintf("stages=%d,ways=%d", v.stages, v.ways), func(b *testing.B) {
			var occ float64
			for i := 0; i < b.N; i++ {
				occ = occupancyAtFirstFailure(v.stages, v.ways, 2048/v.ways, int64(i+1))
			}
			b.ReportMetric(occ*100, "%occupancy")
		})
	}
}

// BenchmarkMovesPerInsert reports how many displacement moves inserts cost
// as the table fills — the switch-CPU work the paper's 200K/s budget must
// cover.
func BenchmarkMovesPerInsert(b *testing.B) {
	for _, load := range []float64{0.5, 0.8, 0.9} {
		b.Run(fmt.Sprintf("load=%.0f%%", load*100), func(b *testing.B) {
			cfg := testConfig(4096)
			tab := New(cfg)
			rng := rand.New(rand.NewSource(32))
			target := int(float64(tab.Capacity()) * load)
			for tab.Len() < target {
				k := rng.Uint64()
				tab.Insert(k, digestOf(k), 0)
			}
			movesBefore := tab.TotalMoves
			inserted := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := rng.Uint64()
				if _, err := tab.Insert(k, digestOf(k), 0); err == nil {
					inserted++
					tab.Delete(k)
				}
			}
			if inserted > 0 {
				b.ReportMetric(float64(tab.TotalMoves-movesBefore)/float64(inserted), "moves/insert")
			}
		})
	}
}
