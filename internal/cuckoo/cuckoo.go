// Package cuckoo implements the multi-stage exact-match table substrate that
// SilkRoad's ConnTable compiles to (§4.1-4.2 of the paper).
//
// A large exact-match table on a switching ASIC is instantiated across
// several physical pipeline stages. Each stage holds an array of SRAM
// words; with word packing, one 112-bit word stores four 28-bit connection
// entries (16-bit digest + 6-bit version + 6-bit overhead). Each stage uses
// an independent hash function to address its words, so an entry can live
// in any one of Stages alternative buckets — a (Stages x Ways)-way cuckoo
// table. Lookups probe all stages and take the first digest match in
// pipeline order; inserts and deletes are performed by the switch CPU,
// which runs a breadth-first search over displacement moves to make room.
//
// Because the match field is a digest rather than the full key, two
// distinct keys can alias: same bucket in some stage, same digest. The
// table exposes the paper's remedy — relocating the aliased entry to a
// different stage whose hash function separates the two keys — via
// post-insert verification (VerifyAndFix).
package cuckoo

import (
	"errors"
	"fmt"

	"repro/internal/hashing"
)

// Config parameterizes a table.
type Config struct {
	Stages          int // physical stages the table spans
	BucketsPerStage int // SRAM words per stage
	Ways            int // entries packed into one word
	DigestBits      int // match-field width (paper: 16 or 24)
	// DigestBitsPerStage optionally assigns each stage its own digest
	// width (§7: "use different digest sizes in different stages to reduce
	// the overall false positives"). Widths must not exceed DigestBits;
	// insertion prefers wider-digest stages while they have room. Nil
	// means every stage uses DigestBits.
	DigestBitsPerStage []int
	ValueBits          int    // action-data width (paper: 6-bit version)
	OverheadBits       int    // per-entry packing overhead (paper: 6)
	WordBits           int    // SRAM word width (paper: 112)
	Seed               uint64 // hash family master seed
	MaxBFSNodes        int    // insertion search budget (0 = default 4096)
}

// DefaultConfig returns the paper's operating point sized for n entries at
// ~90% target occupancy.
func DefaultConfig(n int) Config {
	stages := 4
	ways := 4
	buckets := n / (stages * ways * 9 / 10)
	if buckets < 1 {
		buckets = 1
	}
	return Config{
		Stages:          stages,
		BucketsPerStage: buckets,
		Ways:            ways,
		DigestBits:      16,
		ValueBits:       6,
		OverheadBits:    6,
		WordBits:        112,
		Seed:            0x51_1c_0a_d0,
	}
}

// Handle identifies a physical entry location.
type Handle struct {
	Stage, Bucket, Way int
}

type slot struct {
	occupied bool
	digest   uint32
	value    uint32
	// keyHash is the software shadow of the full key (the switch CPU keeps
	// complete 5-tuples for every installed entry). The hardware lookup
	// path never consults it; relocation and deletion do.
	keyHash uint64
}

// Table is a multi-stage cuckoo hash table.
type Table struct {
	cfg        Config
	stages     [][]slot // [stage][bucket*ways+way]
	family     *hashing.Family
	len        int
	stageBits  []int // digest width per stage
	stageOrder []int // stages in descending digest width (insert preference)
	limit      int   // artificial entry cap (0 = none); see SetOccupancyLimit

	// metrics
	TotalMoves     int // displacement moves performed by inserts
	Relocations    int // alias-resolving relocations (digest collisions)
	FailedInserts  int
	AliasesFixed   int
	lookupsCounter uint64
}

// Errors returned by Insert and relocation.
var (
	ErrTableFull  = errors.New("cuckoo: no insertion path found (table full)")
	ErrNotFound   = errors.New("cuckoo: entry not found")
	ErrUnresolved = errors.New("cuckoo: could not resolve digest alias")
	errBadHandle  = errors.New("cuckoo: invalid handle")
	ErrDuplicate  = errors.New("cuckoo: key already present")
)

// New creates a table from cfg.
func New(cfg Config) *Table {
	if cfg.Stages <= 0 || cfg.BucketsPerStage <= 0 || cfg.Ways <= 0 {
		panic("cuckoo: stages, buckets and ways must be positive")
	}
	if cfg.DigestBits <= 0 || cfg.DigestBits > 32 {
		panic("cuckoo: digest bits must be in 1..32")
	}
	if cfg.MaxBFSNodes == 0 {
		cfg.MaxBFSNodes = 4096
	}
	if cfg.WordBits == 0 {
		cfg.WordBits = 112
	}
	bits := make([]int, cfg.Stages)
	for s := range bits {
		bits[s] = cfg.DigestBits
	}
	if cfg.DigestBitsPerStage != nil {
		if len(cfg.DigestBitsPerStage) != cfg.Stages {
			panic("cuckoo: DigestBitsPerStage length must equal Stages")
		}
		for s, b := range cfg.DigestBitsPerStage {
			if b <= 0 || b > cfg.DigestBits {
				panic("cuckoo: per-stage digest width must be in 1..DigestBits")
			}
			bits[s] = b
		}
	}
	order := make([]int, cfg.Stages)
	for s := range order {
		order[s] = s
	}
	// Stable sort by descending width so wider-digest (lower-FP) stages
	// fill first.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && bits[order[j]] > bits[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	t := &Table{
		cfg:        cfg,
		stages:     make([][]slot, cfg.Stages),
		family:     hashing.NewFamily(cfg.Stages, cfg.Seed),
		stageBits:  bits,
		stageOrder: order,
	}
	for s := range t.stages {
		t.stages[s] = make([]slot, cfg.BucketsPerStage*cfg.Ways)
	}
	return t
}

// stageDigest truncates a full-width digest to stage s's width (hardware
// stores only the top bits in narrower stages; software keeps the full
// digest for relocations).
func (t *Table) stageDigest(s int, digest uint32) uint32 {
	return digest >> uint(t.cfg.DigestBits-t.stageBits[s])
}

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// Len returns the number of installed entries.
func (t *Table) Len() int { return t.len }

// Capacity returns the total number of entry slots.
func (t *Table) Capacity() int { return t.cfg.Stages * t.cfg.BucketsPerStage * t.cfg.Ways }

// Occupancy returns Len/Capacity.
func (t *Table) Occupancy() float64 { return float64(t.len) / float64(t.Capacity()) }

// SetOccupancyLimit caps how many entries Insert will accept: at or above
// limit, insertions fail with ErrTableFull even though physical slots
// remain. It models SRAM pressure (a smaller chip, or other tables eating
// the budget) without rebuilding the table, and is the hook the fault
// injector squeezes. limit <= 0 removes the cap. Existing entries are
// never evicted; lookups, relocations and deletes are unaffected.
func (t *Table) SetOccupancyLimit(limit int) {
	if limit < 0 {
		limit = 0
	}
	t.limit = limit
}

// OccupancyLimit returns the current artificial entry cap (0 = none).
func (t *Table) OccupancyLimit() int { return t.limit }

// EffectiveCapacity returns the entry budget insertions actually have:
// Capacity, lowered to the occupancy limit while one is set.
func (t *Table) EffectiveCapacity() int {
	if c := t.Capacity(); t.limit <= 0 || t.limit > c {
		return c
	}
	return t.limit
}

// EntryBits returns the packed width of one entry at the widest stage.
func (t *Table) EntryBits() int { return t.cfg.DigestBits + t.cfg.ValueBits + t.cfg.OverheadBits }

// EntryBitsStage returns the packed entry width in stage s.
func (t *Table) EntryBitsStage(s int) int {
	return t.stageBits[s] + t.cfg.ValueBits + t.cfg.OverheadBits
}

// SRAMBytes returns the table's SRAM footprint. With uniform digests every
// stage costs the same words; narrower-digest stages pack more entries per
// word and need fewer words for the same way count.
func (t *Table) SRAMBytes() int { return t.cfg.SRAMBytes() }

// SRAMBytes returns the SRAM footprint a table built from cfg would occupy,
// without building it — the asic package checks this against the chip
// budget before committing to an allocation. It applies the same defaults
// New does (112-bit words, uniform digests unless DigestBitsPerStage).
func (cfg Config) SRAMBytes() int {
	wordBits := cfg.WordBits
	if wordBits == 0 {
		wordBits = 112
	}
	total := 0
	for s := 0; s < cfg.Stages; s++ {
		digest := cfg.DigestBits
		if cfg.DigestBitsPerStage != nil && s < len(cfg.DigestBitsPerStage) {
			digest = cfg.DigestBitsPerStage[s]
		}
		perWord := wordBits / (digest + cfg.ValueBits + cfg.OverheadBits)
		if perWord < 1 {
			perWord = 1
		}
		slots := cfg.BucketsPerStage * cfg.Ways
		words := (slots + perWord - 1) / perWord
		total += words * wordBits / 8
	}
	return total
}

// bucketIndex returns the bucket of keyHash in stage s.
func (t *Table) bucketIndex(s int, keyHash uint64) int {
	return int(t.family.HashUint64(s, keyHash) % uint64(t.cfg.BucketsPerStage))
}

// Lookup performs the hardware lookup: probe each stage's bucket in
// pipeline order and return the first slot whose digest matches. The
// returned handle lets software-side callers inspect the matched entry.
func (t *Table) Lookup(keyHash uint64, digest uint32) (value uint32, h Handle, ok bool) {
	t.lookupsCounter++
	for s := 0; s < t.cfg.Stages; s++ {
		b := t.bucketIndex(s, keyHash)
		base := b * t.cfg.Ways
		want := t.stageDigest(s, digest)
		for w := 0; w < t.cfg.Ways; w++ {
			sl := &t.stages[s][base+w]
			if sl.occupied && t.stageDigest(s, sl.digest) == want {
				return sl.value, Handle{s, b, w}, true
			}
		}
	}
	return 0, Handle{}, false
}

// EntryKeyHash exposes the software shadow of the entry at h, used by the
// control plane to detect digest false positives (a SYN that matched an
// entry whose true key differs).
func (t *Table) EntryKeyHash(h Handle) (uint64, error) {
	sl, err := t.slotAt(h)
	if err != nil {
		return 0, err
	}
	if !sl.occupied {
		return 0, ErrNotFound
	}
	return sl.keyHash, nil
}

// ValueAt returns the value stored at h.
func (t *Table) ValueAt(h Handle) (uint32, error) {
	sl, err := t.slotAt(h)
	if err != nil {
		return 0, err
	}
	if !sl.occupied {
		return 0, ErrNotFound
	}
	return sl.value, nil
}

func (t *Table) slotAt(h Handle) (*slot, error) {
	if h.Stage < 0 || h.Stage >= t.cfg.Stages ||
		h.Bucket < 0 || h.Bucket >= t.cfg.BucketsPerStage ||
		h.Way < 0 || h.Way >= t.cfg.Ways {
		return nil, errBadHandle
	}
	return &t.stages[h.Stage][h.Bucket*t.cfg.Ways+h.Way], nil
}

// findExact locates the entry whose software shadow matches keyHash.
func (t *Table) findExact(keyHash uint64) (Handle, bool) {
	for s := 0; s < t.cfg.Stages; s++ {
		b := t.bucketIndex(s, keyHash)
		base := b * t.cfg.Ways
		for w := 0; w < t.cfg.Ways; w++ {
			if sl := &t.stages[s][base+w]; sl.occupied && sl.keyHash == keyHash {
				return Handle{s, b, w}, true
			}
		}
	}
	return Handle{}, false
}

// Insert installs keyHash->value with the given digest, running the cuckoo
// BFS if all candidate slots are taken, then verifies that a lookup of the
// new key actually resolves to the new entry, relocating aliased entries if
// necessary. Returns the number of displacement moves performed.
func (t *Table) Insert(keyHash uint64, digest uint32, value uint32) (moves int, err error) {
	if _, dup := t.findExact(keyHash); dup {
		return 0, ErrDuplicate
	}
	if t.limit > 0 && t.len >= t.limit {
		t.FailedInserts++
		return 0, ErrTableFull
	}
	h, moves, err := t.place(keyHash, digest, value)
	if err != nil {
		t.FailedInserts++
		return moves, err
	}
	t.len++
	if err := t.verifyAndFix(keyHash, digest, h); err != nil {
		return moves, err
	}
	return moves, nil
}

// place finds a slot for the new entry, displacing existing entries if
// needed, and returns the final handle of the new entry.
func (t *Table) place(keyHash uint64, digest uint32, value uint32) (Handle, int, error) {
	// Fast path: a free way in any candidate bucket, preferring
	// wider-digest stages (lower false-positive probability).
	for _, s := range t.stageOrder {
		b := t.bucketIndex(s, keyHash)
		base := b * t.cfg.Ways
		for w := 0; w < t.cfg.Ways; w++ {
			if !t.stages[s][base+w].occupied {
				t.stages[s][base+w] = slot{occupied: true, digest: digest, value: value, keyHash: keyHash}
				return Handle{s, b, w}, 0, nil
			}
		}
	}
	// BFS over displacement moves: nodes are (handle of an occupied slot we
	// would vacate). Expanding a node means moving its occupant to one of
	// its alternative buckets; if that bucket has a free way we found a
	// path.
	var queue []bfsNode
	visited := map[Handle]bool{}
	for s := 0; s < t.cfg.Stages; s++ {
		b := t.bucketIndex(s, keyHash)
		for w := 0; w < t.cfg.Ways; w++ {
			h := Handle{s, b, w}
			queue = append(queue, bfsNode{h, -1})
			visited[h] = true
		}
	}
	for i := 0; i < len(queue) && len(queue) < t.cfg.MaxBFSNodes; i++ {
		cur := queue[i]
		occ, _ := t.slotAt(cur.h)
		// Try to move occ's occupant to each of its alternative buckets.
		for s := 0; s < t.cfg.Stages; s++ {
			if s == cur.h.Stage {
				continue
			}
			b := t.bucketIndex(s, occ.keyHash)
			base := b * t.cfg.Ways
			for w := 0; w < t.cfg.Ways; w++ {
				dst := Handle{s, b, w}
				dstSlot := &t.stages[s][base+w]
				if !dstSlot.occupied {
					// Found a free slot: unwind the move chain. Move
					// cur's occupant to dst, then each ancestor's
					// occupant into the slot its child vacated.
					moves := t.applyChain(queue, cur, dst)
					// The root slot (first ancestor) is now free for the
					// new entry.
					root := cur
					for root.parent != -1 {
						root = queue[root.parent]
					}
					rootSlot, _ := t.slotAt(root.h)
					*rootSlot = slot{occupied: true, digest: digest, value: value, keyHash: keyHash}
					t.TotalMoves += moves
					return root.h, moves, nil
				}
				if !visited[dst] {
					visited[dst] = true
					queue = append(queue, bfsNode{dst, i})
				}
			}
		}
	}
	return Handle{}, 0, ErrTableFull
}

// bfsNode is one frontier element of the insertion search: an occupied slot
// and the index of the node whose expansion reached it.
type bfsNode struct {
	h      Handle
	parent int
}

// applyChain moves occupants along the BFS parent chain: the occupant of
// leaf moves to free, the occupant of leaf's parent moves into leaf's old
// slot, and so on up to the root. Returns the number of moves.
func (t *Table) applyChain(queue []bfsNode, leaf bfsNode, free Handle) int {
	moves := 0
	cur := leaf
	dst := free
	for {
		src, _ := t.slotAt(cur.h)
		d, _ := t.slotAt(dst)
		*d = *src
		src.occupied = false
		moves++
		if cur.parent == -1 {
			break
		}
		dst = cur.h
		cur = queue[cur.parent]
	}
	return moves
}

// verifyAndFix ensures that looking up keyHash returns the entry at want.
// If an entry in an earlier stage aliases (same bucket index for this key,
// same digest, different key), it is relocated to another stage where the
// keys separate — the paper's SYN-collision resolution. Bounded retries.
func (t *Table) verifyAndFix(keyHash uint64, digest uint32, want Handle) error {
	for attempt := 0; attempt < 8; attempt++ {
		_, got, ok := t.Lookup(keyHash, digest)
		if !ok {
			return ErrNotFound // cannot happen if want is installed
		}
		sl, _ := t.slotAt(got)
		if sl.keyHash == keyHash {
			return nil
		}
		// got aliases keyHash: relocate the aliasing entry.
		if err := t.relocate(got); err != nil {
			return fmt.Errorf("%w: %v", ErrUnresolved, err)
		}
		t.AliasesFixed++
	}
	return ErrUnresolved
}

// Relocate moves the entry at h to a different stage, resolving a digest
// collision detected by the control plane (a redirected SYN). The entry's
// own lookup invariant is re-verified after the move.
func (t *Table) Relocate(h Handle) error { return t.relocate(h) }

func (t *Table) relocate(h Handle) error {
	src, err := t.slotAt(h)
	if err != nil {
		return err
	}
	if !src.occupied {
		return ErrNotFound
	}
	moved := *src
	for s := 0; s < t.cfg.Stages; s++ {
		if s == h.Stage {
			continue
		}
		b := t.bucketIndex(s, moved.keyHash)
		base := b * t.cfg.Ways
		for w := 0; w < t.cfg.Ways; w++ {
			if !t.stages[s][base+w].occupied {
				t.stages[s][base+w] = moved
				src.occupied = false
				t.Relocations++
				// The moved entry must still resolve to itself.
				return t.verifyAndFix(moved.keyHash, moved.digest, Handle{s, b, w})
			}
		}
	}
	return ErrTableFull
}

// Delete removes the entry whose software shadow is keyHash. Returns false
// if no such entry exists.
func (t *Table) Delete(keyHash uint64) bool {
	h, ok := t.findExact(keyHash)
	if !ok {
		return false
	}
	sl, _ := t.slotAt(h)
	sl.occupied = false
	t.len--
	return true
}

// UpdateValue rewrites the action data of the entry for keyHash.
func (t *Table) UpdateValue(keyHash uint64, value uint32) error {
	h, ok := t.findExact(keyHash)
	if !ok {
		return ErrNotFound
	}
	sl, _ := t.slotAt(h)
	sl.value = value
	return nil
}

// Iterate calls fn for every installed entry until fn returns false.
func (t *Table) Iterate(fn func(keyHash uint64, digest uint32, value uint32) bool) {
	for s := range t.stages {
		for i := range t.stages[s] {
			sl := &t.stages[s][i]
			if sl.occupied {
				if !fn(sl.keyHash, sl.digest, sl.value) {
					return
				}
			}
		}
	}
}

// Lookups returns the number of Lookup calls served (hardware probe count).
func (t *Table) Lookups() uint64 { return t.lookupsCounter }

// StageStats describes the fill level of one physical stage — the raw
// material for an SRAM occupancy heatmap.
type StageStats struct {
	Stage      int `json:"stage"`
	Used       int `json:"used"`
	Slots      int `json:"slots"`
	DigestBits int `json:"digest_bits"`
	EntryBits  int `json:"entry_bits"`
}

// StageOccupancy returns per-stage slot usage in stage (pipeline) order.
func (t *Table) StageOccupancy() []StageStats {
	out := make([]StageStats, t.cfg.Stages)
	for s := range t.stages {
		used := 0
		for i := range t.stages[s] {
			if t.stages[s][i].occupied {
				used++
			}
		}
		out[s] = StageStats{
			Stage:      s,
			Used:       used,
			Slots:      t.cfg.BucketsPerStage * t.cfg.Ways,
			DigestBits: t.stageBits[s],
			EntryBits:  t.EntryBitsStage(s),
		}
	}
	return out
}

// Entry is the introspection view of one installed entry: its physical
// location plus the software shadow of its contents.
type Entry struct {
	Stage   int    `json:"stage"`
	Bucket  int    `json:"bucket"`
	Way     int    `json:"way"`
	KeyHash uint64 `json:"key_hash"`
	Digest  uint32 `json:"digest"`
	Value   uint32 `json:"value"`
}

// Entries dumps every installed entry in physical (stage, bucket, way)
// order. Intended for debug surfaces; cost is O(capacity).
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, t.len)
	for s := range t.stages {
		for i := range t.stages[s] {
			sl := &t.stages[s][i]
			if sl.occupied {
				out = append(out, Entry{
					Stage:   s,
					Bucket:  i / t.cfg.Ways,
					Way:     i % t.cfg.Ways,
					KeyHash: sl.keyHash,
					Digest:  sl.digest,
					Value:   sl.value,
				})
			}
		}
	}
	return out
}
