package cuckoo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hashing"
)

func testConfig(buckets int) Config {
	return Config{
		Stages:          4,
		BucketsPerStage: buckets,
		Ways:            4,
		DigestBits:      16,
		ValueBits:       6,
		OverheadBits:    6,
		WordBits:        112,
		Seed:            42,
	}
}

func digestOf(key uint64) uint32 {
	return uint32(hashing.HashUint64(0xd16e57, key) >> 48)
}

func TestInsertLookup(t *testing.T) {
	tab := New(testConfig(64))
	key := uint64(0xabcdef)
	if _, err := tab.Insert(key, digestOf(key), 5); err != nil {
		t.Fatal(err)
	}
	v, h, ok := tab.Lookup(key, digestOf(key))
	if !ok || v != 5 {
		t.Fatalf("Lookup = (%d,%v)", v, ok)
	}
	kh, err := tab.EntryKeyHash(h)
	if err != nil || kh != key {
		t.Fatalf("EntryKeyHash = %x, %v", kh, err)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	tab := New(testConfig(64))
	if _, err := tab.Insert(1, digestOf(1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(1, digestOf(1), 1); err != ErrDuplicate {
		t.Fatalf("duplicate insert: err = %v, want ErrDuplicate", err)
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	tab := New(testConfig(64))
	tab.Insert(7, digestOf(7), 1)
	if err := tab.UpdateValue(7, 3); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := tab.Lookup(7, digestOf(7)); v != 3 {
		t.Fatalf("after update v=%d", v)
	}
	if !tab.Delete(7) {
		t.Fatal("Delete returned false")
	}
	if tab.Delete(7) {
		t.Fatal("double delete returned true")
	}
	if _, _, ok := tab.Lookup(7, digestOf(7)); ok {
		t.Fatal("deleted entry still found")
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if err := tab.UpdateValue(7, 1); err != ErrNotFound {
		t.Fatalf("UpdateValue on missing = %v", err)
	}
}

// TestHighOccupancy verifies the cuckoo BFS sustains the packing ratio the
// paper relies on: a 4-stage x 4-way table should fill well past 90%.
func TestHighOccupancy(t *testing.T) {
	tab := New(testConfig(256)) // capacity 4096
	rng := rand.New(rand.NewSource(8))
	inserted := []uint64{}
	for {
		key := rng.Uint64()
		if _, err := tab.Insert(key, digestOf(key), uint32(len(inserted)%64)); err != nil {
			break
		}
		inserted = append(inserted, key)
	}
	if occ := tab.Occupancy(); occ < 0.90 {
		t.Fatalf("occupancy at first failure = %.3f, want >= 0.90", occ)
	}
	// Every inserted key must still resolve to its own entry with the right
	// value (moves must never lose or corrupt entries).
	for i, key := range inserted {
		v, h, ok := tab.Lookup(key, digestOf(key))
		if !ok {
			t.Fatalf("key %d lost after %d inserts", i, len(inserted))
		}
		kh, _ := tab.EntryKeyHash(h)
		if kh != key {
			t.Fatalf("key %d lookup resolved to an alias", i)
		}
		if v != uint32(i%64) {
			t.Fatalf("key %d value = %d, want %d", i, v, i%64)
		}
	}
}

// TestAliasResolution forces two keys with identical digests into the same
// stage-0 bucket and verifies the post-insert relocation separates them
// (the paper's SYN-collision fix).
func TestAliasResolution(t *testing.T) {
	tab := New(testConfig(8))
	// Find two keys that collide in stage 0 and share a digest.
	rng := rand.New(rand.NewSource(9))
	k1 := rng.Uint64()
	d := digestOf(k1)
	var k2 uint64
	for {
		k2 = rng.Uint64()
		if k2 != k1 && tab.bucketIndex(0, k2) == tab.bucketIndex(0, k1) {
			break
		}
	}
	if _, err := tab.Insert(k1, d, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(k2, d, 2); err != nil { // same digest on purpose
		t.Fatal(err)
	}
	for _, tc := range []struct {
		key  uint64
		want uint32
	}{{k1, 1}, {k2, 2}} {
		v, h, ok := tab.Lookup(tc.key, d)
		if !ok || v != tc.want {
			t.Fatalf("key %x -> (%d,%v), want %d", tc.key, v, ok, tc.want)
		}
		kh, _ := tab.EntryKeyHash(h)
		if kh != tc.key {
			t.Fatalf("key %x still aliased", tc.key)
		}
	}
	if tab.AliasesFixed == 0 {
		t.Fatal("expected at least one alias fix")
	}
}

// TestFalsePositiveSemantics: a key never inserted can falsely hit when it
// shares a bucket and digest with a stored entry — hardware semantics the
// dataplane's SYN redirect path depends on detecting.
func TestFalsePositiveSemantics(t *testing.T) {
	tab := New(testConfig(4))
	k1 := uint64(111)
	tab.Insert(k1, digestOf(k1), 9)
	// Search for a foreign key aliasing k1 in any stage.
	var foreign uint64
	found := false
	for c := uint64(0); c < 2_000_00 && !found; c++ {
		cand := c*2654435761 + 17
		if cand == k1 {
			continue
		}
		for s := 0; s < 4; s++ {
			if tab.bucketIndex(s, cand) == tab.bucketIndex(s, k1) {
				foreign = cand
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no aliasing candidate found (tiny table should make this immediate)")
	}
	v, h, ok := tab.Lookup(foreign, digestOf(k1))
	if !ok || v != 9 {
		t.Fatalf("expected false-positive hit, got (%d,%v)", v, ok)
	}
	kh, _ := tab.EntryKeyHash(h)
	if kh == foreign {
		t.Fatal("shadow key should reveal the mismatch")
	}
}

func TestRelocateExplicit(t *testing.T) {
	tab := New(testConfig(16))
	k := uint64(5)
	tab.Insert(k, digestOf(k), 1)
	_, h, _ := tab.Lookup(k, digestOf(k))
	if err := tab.Relocate(h); err != nil {
		t.Fatal(err)
	}
	v, h2, ok := tab.Lookup(k, digestOf(k))
	if !ok || v != 1 {
		t.Fatal("entry lost after relocation")
	}
	if h2.Stage == h.Stage {
		t.Fatalf("relocation stayed in stage %d", h.Stage)
	}
	if tab.Relocations != 1 {
		t.Fatalf("Relocations = %d", tab.Relocations)
	}
}

func TestRelocateErrors(t *testing.T) {
	tab := New(testConfig(4))
	if err := tab.Relocate(Handle{0, 0, 0}); err != ErrNotFound {
		t.Fatalf("relocate empty slot: %v", err)
	}
	if err := tab.Relocate(Handle{99, 0, 0}); err == nil {
		t.Fatal("bad handle accepted")
	}
}

func TestTableFull(t *testing.T) {
	cfg := testConfig(1) // capacity 16
	cfg.MaxBFSNodes = 64
	tab := New(cfg)
	rng := rand.New(rand.NewSource(10))
	var err error
	for i := 0; i < 1000; i++ {
		key := rng.Uint64()
		if _, err = tab.Insert(key, digestOf(key), 0); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("insert into full table never failed")
	}
	if tab.FailedInserts == 0 {
		t.Fatal("FailedInserts not counted")
	}
}

func TestSRAMAccounting(t *testing.T) {
	tab := New(testConfig(256))
	// 4 stages x 256 words x 112 bits = 14336 bytes.
	if got := tab.SRAMBytes(); got != 4*256*112/8 {
		t.Fatalf("SRAMBytes = %d", got)
	}
	if got := tab.EntryBits(); got != 28 {
		t.Fatalf("EntryBits = %d, want 28 (16+6+6)", got)
	}
	if tab.Capacity() != 4*256*4 {
		t.Fatalf("Capacity = %d", tab.Capacity())
	}
}

func TestIterate(t *testing.T) {
	tab := New(testConfig(64))
	keys := map[uint64]uint32{1: 1, 2: 2, 3: 3}
	for k, v := range keys {
		tab.Insert(k, digestOf(k), v)
	}
	seen := map[uint64]uint32{}
	tab.Iterate(func(kh uint64, d uint32, v uint32) bool {
		seen[kh] = v
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("Iterate saw %d entries", len(seen))
	}
	for k, v := range keys {
		if seen[k] != v {
			t.Fatalf("Iterate: key %d value %d, want %d", k, seen[k], v)
		}
	}
	// Early termination.
	n := 0
	tab.Iterate(func(uint64, uint32, uint32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop Iterate visited %d", n)
	}
}

func TestDefaultConfigSizing(t *testing.T) {
	cfg := DefaultConfig(10_000_000)
	tab := New(cfg)
	if tab.Capacity() < 10_000_000 {
		t.Fatalf("capacity %d cannot hold 10M entries", tab.Capacity())
	}
	// Paper: 10M IPv6 connections fit in tens of MB with 28-bit entries.
	if mb := float64(tab.SRAMBytes()) / (1 << 20); mb > 64 {
		t.Fatalf("10M-entry ConnTable = %.1f MB, want < 64 MB", mb)
	}
}

func TestNewPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Stages: 0, BucketsPerStage: 1, Ways: 1, DigestBits: 16},
		{Stages: 1, BucketsPerStage: 1, Ways: 1, DigestBits: 0},
		{Stages: 1, BucketsPerStage: 1, Ways: 1, DigestBits: 33},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: insert/delete round trip preserves lookup behaviour for
// arbitrary key sets that fit comfortably in the table.
func TestInsertDeleteProperty(t *testing.T) {
	prop := func(keys []uint64) bool {
		if len(keys) > 200 {
			keys = keys[:200]
		}
		tab := New(testConfig(64))
		uniq := map[uint64]bool{}
		for _, k := range keys {
			if uniq[k] {
				continue
			}
			uniq[k] = true
			if _, err := tab.Insert(k, digestOf(k), uint32(k%64)); err != nil {
				return false
			}
		}
		for k := range uniq {
			v, _, ok := tab.Lookup(k, digestOf(k))
			if !ok || v != uint32(k%64) {
				return false
			}
			if !tab.Delete(k) {
				return false
			}
		}
		return tab.Len() == 0
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tab := New(testConfig(4096))
	rng := rand.New(rand.NewSource(12))
	keys := make([]uint64, 40000)
	for i := range keys {
		keys[i] = rng.Uint64()
		tab.Insert(keys[i], digestOf(keys[i]), uint32(i%64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		tab.Lookup(k, digestOf(k))
	}
}

func BenchmarkInsertAt80Percent(b *testing.B) {
	cfg := testConfig(16384) // capacity 262144
	tab := New(cfg)
	rng := rand.New(rand.NewSource(13))
	target := tab.Capacity() * 8 / 10
	for tab.Len() < target {
		k := rng.Uint64()
		tab.Insert(k, digestOf(k), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := rng.Uint64()
		if _, err := tab.Insert(k, digestOf(k), 0); err == nil {
			tab.Delete(k)
		}
	}
}

func TestOccupancyLimit(t *testing.T) {
	tab := New(testConfig(64))
	if got := tab.EffectiveCapacity(); got != tab.Capacity() {
		t.Fatalf("unlimited EffectiveCapacity = %d, want %d", got, tab.Capacity())
	}
	for i := uint64(1); i <= 4; i++ {
		if _, err := tab.Insert(i, uint32(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	tab.SetOccupancyLimit(4)
	if got := tab.EffectiveCapacity(); got != 4 {
		t.Fatalf("EffectiveCapacity = %d, want 4", got)
	}
	failedBefore := tab.FailedInserts
	if _, err := tab.Insert(99, 99, 0); err != ErrTableFull {
		t.Fatalf("insert at limit: %v, want ErrTableFull", err)
	}
	if tab.FailedInserts != failedBefore+1 {
		t.Fatal("FailedInserts not counted for limit rejection")
	}
	// Duplicates are still detected ahead of the limit check.
	if _, err := tab.Insert(1, 1, 0); err != ErrDuplicate {
		t.Fatalf("duplicate at limit: %v, want ErrDuplicate", err)
	}
	// Deleting below the limit reopens the table.
	if !tab.Delete(1) {
		t.Fatal("Delete failed")
	}
	if _, err := tab.Insert(99, 99, 0); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
	// Lifting the limit restores full capacity; a limit beyond capacity is
	// inert.
	tab.SetOccupancyLimit(0)
	if got := tab.EffectiveCapacity(); got != tab.Capacity() {
		t.Fatalf("lifted EffectiveCapacity = %d", got)
	}
	tab.SetOccupancyLimit(tab.Capacity() * 2)
	if got := tab.EffectiveCapacity(); got != tab.Capacity() {
		t.Fatalf("oversized limit EffectiveCapacity = %d", got)
	}
}
