package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	data := []byte("1.2.3.4:1234->20.0.0.1:80/tcp")
	a := Hash64(42, data)
	b := Hash64(42, data)
	if a != b {
		t.Fatalf("Hash64 not deterministic: %x != %x", a, b)
	}
}

func TestHash64SeedIndependence(t *testing.T) {
	data := []byte("same input")
	if Hash64(1, data) == Hash64(2, data) {
		t.Fatal("different seeds produced identical hashes (astronomically unlikely)")
	}
}

func TestHash64EmptyAndShort(t *testing.T) {
	// Must not panic, and short inputs of different lengths must differ.
	seen := map[uint64][]byte{}
	inputs := [][]byte{{}, {0}, {0, 0}, {0, 0, 0}, {0, 0, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0, 0, 0}}
	for _, in := range inputs {
		h := Hash64(7, in)
		if prev, dup := seen[h]; dup {
			t.Fatalf("length-dependent collision between %v and %v", prev, in)
		}
		seen[h] = in
	}
}

func TestHash64TailLengthMatters(t *testing.T) {
	// Inputs that share a prefix but differ only in trailing zero count must
	// still hash differently (the tail encoding folds in the length).
	a := Hash64(9, []byte{1, 2, 3})
	b := Hash64(9, []byte{1, 2, 3, 0})
	if a == b {
		t.Fatal("trailing zero byte did not change the hash")
	}
}

func TestHash32Folds(t *testing.T) {
	data := []byte("fold me")
	h64 := Hash64(3, data)
	want := uint32(h64) ^ uint32(h64>>32)
	if got := Hash32(3, data); got != want {
		t.Fatalf("Hash32 = %x, want %x", got, want)
	}
}

func TestFamilyIndependence(t *testing.T) {
	f := NewFamily(8, 12345)
	if f.Size() != 8 {
		t.Fatalf("Size = %d, want 8", f.Size())
	}
	data := []byte("a connection tuple")
	seen := map[uint64]bool{}
	for i := 0; i < f.Size(); i++ {
		h := f.Hash(i, data)
		if seen[h] {
			t.Fatalf("stage %d repeated a hash value", i)
		}
		seen[h] = true
	}
}

func TestFamilyDeterministicAcrossConstruction(t *testing.T) {
	a := NewFamily(4, 99)
	b := NewFamily(4, 99)
	for i := 0; i < 4; i++ {
		if a.Seed(i) != b.Seed(i) {
			t.Fatalf("family seeds diverge at %d", i)
		}
	}
}

func TestFamilyPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFamily(0) did not panic")
		}
	}()
	NewFamily(0, 1)
}

func TestDigestWidth(t *testing.T) {
	data := []byte("tuple")
	for bits := 1; bits <= 32; bits++ {
		d := Digest(5, bits, data)
		if bits < 32 && d >= 1<<uint(bits) {
			t.Fatalf("Digest(%d bits) = %#x exceeds width", bits, d)
		}
	}
}

func TestDigestPanicsOnBadWidth(t *testing.T) {
	for _, bits := range []int{0, 33, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Digest(bits=%d) did not panic", bits)
				}
			}()
			Digest(1, bits, []byte("x"))
		}()
	}
}

// TestHash64Avalanche checks that flipping any single input bit flips close
// to half the output bits on average — the property that makes bucket
// addressing and digests behave independently.
func TestHash64Avalanche(t *testing.T) {
	base := []byte("avalanche-test-input-0123456789")
	h0 := Hash64(11, base)
	total, samples := 0, 0
	for bytePos := 0; bytePos < len(base); bytePos++ {
		for bit := 0; bit < 8; bit++ {
			mod := append([]byte(nil), base...)
			mod[bytePos] ^= 1 << uint(bit)
			diff := h0 ^ Hash64(11, mod)
			total += popcount64(diff)
			samples++
		}
	}
	mean := float64(total) / float64(samples)
	if math.Abs(mean-32) > 3 {
		t.Fatalf("avalanche mean flipped bits = %.2f, want ~32", mean)
	}
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Property: HashUint64 is deterministic and seed-sensitive.
func TestHashUint64Property(t *testing.T) {
	f := func(seed, x uint64) bool {
		return HashUint64(seed, x) == HashUint64(seed, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(x uint64) bool {
		return HashUint64(1, x) != HashUint64(2, x) || x == 0 && false
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Digest is a pure function of (seed, bits, data).
func TestDigestProperty(t *testing.T) {
	f := func(seed uint64, data []byte) bool {
		return Digest(seed, 16, data) == Digest(seed, 16, data) &&
			Digest(seed, 16, data) < 1<<16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDigestCollisionRate checks the 16-bit digest collision probability is
// near 2^-16 for random pairs, the figure the paper's 0.01% false-positive
// estimate rests on.
func TestDigestCollisionRate(t *testing.T) {
	const n = 1 << 14
	counts := make(map[uint32]int, n)
	var buf [12]byte
	for i := 0; i < n; i++ {
		buf[0], buf[1], buf[2], buf[3] = byte(i), byte(i>>8), byte(i>>16), 0x5a
		counts[Digest(77, 16, buf[:])]++
	}
	// With 2^14 keys into 2^16 slots, expected max load is tiny; assert no
	// slot exceeds 6 (p < 1e-9 under uniformity).
	for d, c := range counts {
		if c > 6 {
			t.Fatalf("digest %#x appeared %d times; distribution is skewed", d, c)
		}
	}
}

func BenchmarkHash64Tuple(b *testing.B) {
	data := []byte("1.2.3.4:1234->20.0.0.1:80/tcp---37-byte-ipv6-key")
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Hash64(uint64(i), data)
	}
}

func BenchmarkHashUint64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashUint64(42, uint64(i))
	}
}
