// Package hashing provides the deterministic hash primitives used throughout
// the SilkRoad reproduction: a seeded 64-bit mixing hash, families of
// pairwise-independent hash functions (one per pipeline stage, as in the
// paper's multi-stage ConnTable), and connection digests.
//
// Switching ASICs expose generic hash units (CRC variants with configurable
// polynomials) that functions like ECMP, LAG and exact-match addressing
// share. We model that with a software hash of equivalent quality: a
// murmur-style finalizer over FNV-style lane mixing, parameterized by a
// 64-bit seed. Different seeds behave as independent functions, which is all
// the cuckoo table, bloom filter, and ECMP need.
package hashing

import "encoding/binary"

// mix64 is the splitmix64 finalizer; it is a bijection on uint64 with good
// avalanche behaviour, so distinct seeds give effectively independent hashes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash64 hashes data with the given seed. It processes 8-byte lanes with
// multiply-xor mixing and finalizes with splitmix64.
func Hash64(seed uint64, data []byte) uint64 {
	h := mix64(seed ^ 0x9e3779b97f4a7c15)
	for len(data) >= 8 {
		k := binary.LittleEndian.Uint64(data)
		h = (h ^ mix64(k)) * 0x2545f4914f6cdd1d
		data = data[8:]
	}
	if len(data) > 0 {
		var tail [8]byte
		copy(tail[:], data)
		k := binary.LittleEndian.Uint64(tail[:]) | uint64(len(data))<<56
		h = (h ^ mix64(k)) * 0x2545f4914f6cdd1d
	}
	return mix64(h)
}

// Hash32 hashes data with the given seed, folded to 32 bits.
func Hash32(seed uint64, data []byte) uint32 {
	h := Hash64(seed, data)
	return uint32(h) ^ uint32(h>>32)
}

// HashUint64 hashes a single 64-bit value with the given seed. It is used on
// hot paths where the key is already a fixed-width integer (e.g. a packed
// 5-tuple hash), avoiding byte-slice traffic.
func HashUint64(seed, x uint64) uint64 {
	return mix64(mix64(seed^0x9e3779b97f4a7c15) ^ mix64(x))
}

// Family is an ordered set of independent hash functions. The ASIC model
// assigns one member per physical stage so that an entry colliding in one
// stage can be relocated to another stage where the two keys hash apart
// (§4.2 of the paper).
type Family struct {
	seeds []uint64
}

// NewFamily derives n independent hash functions from a master seed.
func NewFamily(n int, masterSeed uint64) *Family {
	if n <= 0 {
		panic("hashing: family size must be positive")
	}
	seeds := make([]uint64, n)
	s := masterSeed
	for i := range seeds {
		s = mix64(s + 0x9e3779b97f4a7c15)
		seeds[i] = s
	}
	return &Family{seeds: seeds}
}

// Size returns the number of functions in the family.
func (f *Family) Size() int { return len(f.seeds) }

// Hash applies function i to data.
func (f *Family) Hash(i int, data []byte) uint64 {
	return Hash64(f.seeds[i], data)
}

// HashUint64 applies function i to a fixed-width key.
func (f *Family) HashUint64(i int, x uint64) uint64 {
	return HashUint64(f.seeds[i], x)
}

// Seed exposes the seed of function i, letting callers derive further
// sub-functions deterministically.
func (f *Family) Seed(i int) uint64 { return f.seeds[i] }

// Digest computes a b-bit connection digest (1..32 bits) of data, as stored
// in ConnTable match fields instead of the full 5-tuple. Digests use a seed
// disjoint from the stage-addressing family so that "same bucket" and "same
// digest" are independent events, which is what keeps the false-positive
// rate at (collisions per bucket) x 2^-b.
func Digest(seedBits uint64, bits int, data []byte) uint32 {
	if bits <= 0 || bits > 32 {
		panic("hashing: digest width must be in 1..32")
	}
	return uint32(Hash64(seedBits^0xd1ce5fca11ab1e00, data) >> (64 - uint(bits)))
}

// DigestUint64 computes a b-bit connection digest of a key already reduced
// to a fixed-width 64-bit value (the derived-hash scheme of multi-pipe
// chips, where one chip-level lane hash feeds every per-pipe hash unit).
// The seed-disjointness rules of Digest apply; the two functions produce
// unrelated digests and must not be mixed on one table.
func DigestUint64(seedBits uint64, bits int, x uint64) uint32 {
	if bits <= 0 || bits > 32 {
		panic("hashing: digest width must be in 1..32")
	}
	return uint32(HashUint64(seedBits^0xd1ce5fca11ab1e00, x) >> (64 - uint(bits)))
}
