// Package stats provides the small statistics toolkit the evaluation
// harness uses: empirical CDFs, percentiles, histograms, and fixed-width
// text rendering of distribution tables matching the figures in the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
// The zero value is an empty distribution ready for Add.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF builds a CDF from the given samples (copied).
func NewCDF(samples []float64) *CDF {
	c := &CDF{samples: append([]float64(nil), samples...)}
	c.sort()
	return c
}

// Add appends a sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.samples) }

// Quantile returns the value at quantile p in [0,1] using nearest-rank.
// It panics on an empty CDF.
func (c *CDF) Quantile(p float64) float64 {
	if len(c.samples) == 0 {
		panic("stats: quantile of empty CDF")
	}
	c.sort()
	if p <= 0 {
		return c.samples[0]
	}
	if p >= 1 {
		return c.samples[len(c.samples)-1]
	}
	rank := int(math.Ceil(p*float64(len(c.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.samples[rank]
}

// Median returns the 50th percentile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// P99 returns the 99th percentile.
func (c *CDF) P99() float64 { return c.Quantile(0.99) }

// Mean returns the arithmetic mean, or 0 for an empty CDF.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Max returns the largest sample, or 0 for an empty CDF.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	return c.samples[len(c.samples)-1]
}

// Min returns the smallest sample, or 0 for an empty CDF.
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	return c.samples[0]
}

// FractionAbove returns the fraction of samples strictly greater than x.
// This is the "Y% of clusters have more than X" reading used by Figure 2.
func (c *CDF) FractionAbove(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	// First index with sample > x.
	i := sort.Search(len(c.samples), func(i int) bool { return c.samples[i] > x })
	return float64(len(c.samples)-i) / float64(len(c.samples))
}

// FractionAtOrBelow returns P(X <= x).
func (c *CDF) FractionAtOrBelow(x float64) float64 {
	return 1 - c.FractionAbove(x)
}

// Points returns (x, P(X<=x)) pairs at each distinct sample value, suitable
// for plotting or table output.
func (c *CDF) Points() (xs, ps []float64) {
	c.sort()
	n := len(c.samples)
	for i := 0; i < n; i++ {
		if i+1 < n && c.samples[i+1] == c.samples[i] {
			continue
		}
		xs = append(xs, c.samples[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	return xs, ps
}

// Table renders the CDF as a fixed set of quantile rows, in the style used
// by the experiment harness.
func (c *CDF) Table(label, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s n=%d\n", label, c.N())
	if c.N() == 0 {
		return b.String()
	}
	for _, q := range []float64{0.05, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0} {
		fmt.Fprintf(&b, "  p%-4.3g %14.4g %s\n", q*100, c.Quantile(q), unit)
	}
	return b.String()
}

// Histogram is a fixed-bucket counting histogram.
type Histogram struct {
	bounds []float64 // ascending upper bounds; final bucket is overflow
	counts []int64
	total  int64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. A value v lands in the first bucket with v <= bound, or in the
// overflow bucket.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// NewHistogramFromCounts rebuilds a histogram from externally captured
// bucket counts (e.g. a telemetry snapshot): counts must have
// len(bounds)+1 entries, the last being the overflow bucket. The counts
// are copied.
func NewHistogramFromCounts(bounds []float64, counts []int64) *Histogram {
	h := NewHistogram(bounds)
	if len(counts) != len(h.counts) {
		panic("stats: counts must have len(bounds)+1 entries")
	}
	copy(h.counts, counts)
	for _, c := range counts {
		h.total += c
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.total++
}

// Total returns the number of observed samples.
func (h *Histogram) Total() int64 { return h.total }

// Bucket returns the count of bucket i (len(bounds) = overflow).
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// Fractions returns each bucket's share of the total.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Counter accumulates a labeled breakdown (e.g. root causes in Figure 3).
type Counter struct {
	counts map[string]int64
	order  []string
	total  int64
}

// NewCounter creates an empty labeled counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int64)}
}

// Inc adds n to the given label.
func (c *Counter) Inc(label string, n int64) {
	if _, ok := c.counts[label]; !ok {
		c.order = append(c.order, label)
	}
	c.counts[label] += n
	c.total += n
}

// Fraction returns label's share of the total (0 if empty).
func (c *Counter) Fraction(label string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[label]) / float64(c.total)
}

// Total returns the sum over all labels.
func (c *Counter) Total() int64 { return c.total }

// Labels returns labels in first-seen order.
func (c *Counter) Labels() []string { return append([]string(nil), c.order...) }

// Count returns the raw count for a label.
func (c *Counter) Count(label string) int64 { return c.counts[label] }
