package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFQuantiles(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := c.Median(); got != 5 {
		t.Fatalf("Median = %v, want 5", got)
	}
	if got := c.Quantile(0.1); got != 1 {
		t.Fatalf("p10 = %v, want 1", got)
	}
	if got := c.Quantile(1.0); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
}

func TestCDFAddUnsorted(t *testing.T) {
	var c CDF
	for _, v := range []float64{5, 1, 9, 3} {
		c.Add(v)
	}
	if got := c.Min(); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
	if got := c.Max(); got != 9 {
		t.Fatalf("Max = %v, want 9", got)
	}
	if got := c.N(); got != 4 {
		t.Fatalf("N = %d, want 4", got)
	}
}

func TestCDFEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty CDF did not panic")
		}
	}()
	(&CDF{}).Quantile(0.5)
}

func TestCDFEmptySafeAccessors(t *testing.T) {
	var c CDF
	if c.Mean() != 0 || c.Max() != 0 || c.Min() != 0 || c.FractionAbove(1) != 0 {
		t.Fatal("empty CDF accessors should all return 0")
	}
}

func TestFractionAbove(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 1.0}, {1, 0.75}, {2.5, 0.5}, {4, 0}, {5, 0},
	}
	for _, tc := range cases {
		if got := c.FractionAbove(tc.x); got != tc.want {
			t.Errorf("FractionAbove(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.FractionAtOrBelow(2.5); got != 0.5 {
		t.Errorf("FractionAtOrBelow(2.5) = %v, want 0.5", got)
	}
}

func TestCDFPointsDedup(t *testing.T) {
	c := NewCDF([]float64{1, 1, 2, 2, 2, 3})
	xs, ps := c.Points()
	if len(xs) != 3 {
		t.Fatalf("Points returned %d xs, want 3", len(xs))
	}
	if xs[0] != 1 || xs[1] != 2 || xs[2] != 3 {
		t.Fatalf("xs = %v", xs)
	}
	if ps[2] != 1.0 {
		t.Fatalf("final p = %v, want 1.0", ps[2])
	}
}

func TestCDFMean(t *testing.T) {
	c := NewCDF([]float64{2, 4, 6})
	if got := c.Mean(); got != 4 {
		t.Fatalf("Mean = %v, want 4", got)
	}
}

// Property: Quantile is monotone in p and bounded by [Min, Max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		c := NewCDF(raw)
		prev := c.Min()
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := c.Quantile(p)
			if q < prev || q > c.Max() {
				return false
			}
			prev = q
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: FractionAbove is the complement of FractionAtOrBelow and is
// non-increasing in x.
func TestFractionAboveProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		c := NewCDF(raw)
		sort.Float64s(raw)
		prev := 1.0
		for _, x := range raw {
			fa := c.FractionAbove(x)
			if fa > prev {
				return false
			}
			if diff := fa + c.FractionAtOrBelow(x) - 1; diff > 1e-12 || diff < -1e-12 {
				return false
			}
			prev = fa
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	// 0.5 and 1 land in bucket 0 (v <= 1); 5 in bucket 1; 50 in bucket 2; 500 overflow.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Errorf("Bucket(%d) = %d, want %d", i, got, w)
		}
	}
	fr := h.Fractions()
	if fr[0] != 0.4 {
		t.Errorf("Fractions[0] = %v, want 0.4", fr[0])
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	NewHistogram([]float64{10, 1})
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("upgrade", 827)
	c.Inc("failure", 100)
	c.Inc("upgrade", 173)
	if c.Total() != 1100 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.Fraction("upgrade"); got != 1000.0/1100.0 {
		t.Fatalf("Fraction(upgrade) = %v", got)
	}
	if got := c.Labels(); len(got) != 2 || got[0] != "upgrade" || got[1] != "failure" {
		t.Fatalf("Labels = %v", got)
	}
	if c.Count("failure") != 100 {
		t.Fatalf("Count(failure) = %d", c.Count("failure"))
	}
	if NewCounter().Fraction("x") != 0 {
		t.Fatal("empty counter Fraction should be 0")
	}
}

func TestCDFTableRenders(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	s := c.Table("test metric", "MB")
	if s == "" {
		t.Fatal("empty table")
	}
	if (&CDF{}).Table("empty", "x") == "" {
		t.Fatal("empty CDF table should still render header")
	}
}
