package dataplane

// Memory layout models for ConnTable and DIPPoolTable, used by the
// scalability experiments (Figures 12 and 14) and by capacity planning in
// the netwide package. All sizes follow §4.2/§6.1 of the paper:
//
//   - naive layout: full 5-tuple match key (13 B IPv4 / 37 B IPv6) plus the
//     DIP as action data (6 B IPv4 / 18 B IPv6) plus 2 B packing overhead;
//   - digest-only: a 16- or 24-bit digest replaces the key, DIP stays;
//   - digest+version: digest plus a 6-bit version, 6 bits of overhead,
//     packed four-per-112-bit-word (28-bit entries), with the DIP pools
//     moved into DIPPoolTable (one row per active version).

// Layout describes one ConnTable entry encoding.
type Layout struct {
	Name      string
	EntryBits int
	// WordPacked: entries are packed into 112-bit SRAM words; otherwise
	// each entry occupies whole bytes.
	WordPacked bool
}

// LayoutNaive is the strawman layout storing full key and full DIP.
func LayoutNaive(ipv6 bool) Layout {
	key, action := 13, 6
	if ipv6 {
		key, action = 37, 18
	}
	return Layout{Name: "naive", EntryBits: (key + action + 2) * 8}
}

// LayoutDigestOnly replaces the match key with a digest but keeps the DIP
// as action data.
func LayoutDigestOnly(digestBits int, ipv6 bool) Layout {
	action := 6
	if ipv6 {
		action = 18
	}
	return Layout{Name: "digest", EntryBits: digestBits + action*8 + 6}
}

// LayoutDigestVersion is the SilkRoad layout: digest match, version action.
func LayoutDigestVersion(digestBits, versionBits int) Layout {
	return Layout{Name: "digest+version", EntryBits: digestBits + versionBits + 6, WordPacked: true}
}

// TableBytes returns the SRAM bytes n entries occupy under l, including
// word-packing effects: packed layouts round to whole 112-bit words; others
// round each entry to whole bytes.
func (l Layout) TableBytes(n int) int {
	if n <= 0 {
		return 0
	}
	if l.WordPacked {
		perWord := 112 / l.EntryBits
		if perWord < 1 {
			perWord = 1
		}
		words := (n + perWord - 1) / perWord
		return words * 112 / 8
	}
	return n * ((l.EntryBits + 7) / 8)
}

// DIPPoolTableBytes returns the SRAM cost of storing every active pool
// version: one row per (vip, version) holding len(pool) DIP entries.
func DIPPoolTableBytes(totalPoolEntries int, ipv6 bool) int {
	per := 6
	if ipv6 {
		per = 18
	}
	return totalPoolEntries * per
}

// MemoryBreakdown reports the current SRAM consumption of a live switch.
type MemoryBreakdown struct {
	ConnTableBytes   int
	DIPPoolBytes     int
	TransitBytes     int
	LearnFilterBytes int
	VIPTableBytes    int
}

// Total sums all components.
func (m MemoryBreakdown) Total() int {
	return m.ConnTableBytes + m.DIPPoolBytes + m.TransitBytes + m.LearnFilterBytes + m.VIPTableBytes
}

// Add accumulates o into m (per-pipe to chip-level aggregation).
func (m *MemoryBreakdown) Add(o MemoryBreakdown) {
	m.ConnTableBytes += o.ConnTableBytes
	m.DIPPoolBytes += o.DIPPoolBytes
	m.TransitBytes += o.TransitBytes
	m.LearnFilterBytes += o.LearnFilterBytes
	m.VIPTableBytes += o.VIPTableBytes
}

// Memory returns the switch's current SRAM breakdown. ConnTable reports
// allocated words (capacity), DIPPoolTable the live rows.
func (s *Switch) Memory() MemoryBreakdown {
	m := MemoryBreakdown{
		ConnTableBytes:   s.conn.SRAMBytes(),
		LearnFilterBytes: s.cfg.LearnFilterCapacity * 16,
	}
	if s.transit != nil {
		m.TransitBytes = s.transit.SizeBytes()
	}
	for _, vs := range s.vips {
		// VIPTable row: VIP key (19 B IPv6 worst case) + version + flags.
		m.VIPTableBytes += 24
		for _, row := range vs.pools {
			for _, d := range row.dips {
				if d.Addr().Is4() {
					m.DIPPoolBytes += 6
				} else {
					m.DIPPoolBytes += 18
				}
			}
		}
	}
	return m
}

// ProvisionedBytes estimates the SRAM a SilkRoad switch must provision for
// a workload of nConns connections (ConnTable sized at 90% occupancy,
// word-packed) plus pools totalling poolEntries DIPs across all active
// versions. This is the Figure 12 model.
func ProvisionedBytes(nConns int, digestBits, versionBits int, poolEntries int, ipv6 bool) int {
	l := LayoutDigestVersion(digestBits, versionBits)
	slots := nConns * 10 / 9 // 90% occupancy target
	return l.TableBytes(slots) + DIPPoolTableBytes(poolEntries, ipv6) + 256
}
