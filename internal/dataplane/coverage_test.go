package dataplane

import (
	"net/netip"
	"testing"

	"repro/internal/cuckoo"
	"repro/internal/netproto"
)

func TestVerdictStrings(t *testing.T) {
	want := map[Verdict]string{
		VerdictForward:            "forward",
		VerdictNoVIP:              "no-vip",
		VerdictMeterDrop:          "meter-drop",
		VerdictRedirectSYNConn:    "redirect-syn-conntable",
		VerdictRedirectSYNTransit: "redirect-syn-transittable",
		Verdict(99):               "verdict(99)",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
}

func TestAccessors(t *testing.T) {
	s := newTestSwitch(t)
	if s.Config().DigestBits != 16 {
		t.Fatal("Config accessor")
	}
	if s.Chip() == nil || s.ConnTable() == nil || s.LearnFilter() == nil {
		t.Fatal("nil component accessors")
	}
	vips := s.VIPs()
	if len(vips) != 1 || vips[0] != testVIP() {
		t.Fatalf("VIPs = %v", vips)
	}
}

func TestWritePoolBuckets(t *testing.T) {
	s := newTestSwitch(t)
	vip := testVIP()
	dips := testPool(4)
	buckets := make([]DIP, 16)
	for i := range buckets {
		buckets[i] = dips[i%len(dips)]
	}
	if err := s.WritePoolBuckets(vip, 0, dips, buckets); err != nil {
		t.Fatal(err)
	}
	// Selection goes through the bucket table and stays deterministic.
	d1, err := s.SelectDIP(vip, 0, clientTuple(1))
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := s.SelectDIP(vip, 0, clientTuple(1))
	if d1 != d2 || !d1.IsValid() {
		t.Fatalf("bucket selection unstable: %v vs %v", d1, d2)
	}
	// Error paths.
	if err := s.WritePoolBuckets(vip, 0, dips, nil); err == nil {
		t.Fatal("empty buckets accepted")
	}
	foreign := netip.MustParseAddrPort("9.9.9.9:9")
	if err := s.WritePoolBuckets(vip, 0, dips, []DIP{foreign}); err == nil {
		t.Fatal("bucket pointing outside members accepted")
	}
	other := VIP{Addr: netip.MustParseAddr("8.8.8.8"), Port: 1, Proto: netproto.ProtoTCP}
	if err := s.WritePoolBuckets(other, 0, dips, buckets); err != ErrUnknownVIP {
		t.Fatalf("unknown VIP: %v", err)
	}
	if err := s.WritePoolBuckets(vip, 1<<20, dips, buckets); err == nil {
		t.Fatal("oversized version accepted")
	}
}

func TestSetCurrentVersion(t *testing.T) {
	s := newTestSwitch(t)
	vip := testVIP()
	s.WritePool(vip, 3, testPool(2))
	if err := s.SetCurrentVersion(vip, 3); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.CurrentVersion(vip); v != 3 {
		t.Fatalf("version = %d", v)
	}
	if err := s.SetCurrentVersion(vip, 42); err != ErrUnknownVersion {
		t.Fatalf("unknown version: %v", err)
	}
	other := VIP{Addr: netip.MustParseAddr("8.8.8.8"), Port: 1, Proto: netproto.ProtoTCP}
	if err := s.SetCurrentVersion(other, 0); err != ErrUnknownVIP {
		t.Fatalf("unknown vip: %v", err)
	}
	if err := s.SetRecording(other, true); err != ErrUnknownVIP {
		t.Fatalf("SetRecording unknown vip: %v", err)
	}
	if err := s.EndTransition(other); err != ErrUnknownVIP {
		t.Fatalf("EndTransition unknown vip: %v", err)
	}
	if s.InUpdate(other) {
		t.Fatal("unknown vip in update")
	}
}

func TestSelectDIPEmptyPool(t *testing.T) {
	s := newTestSwitch(t)
	vip := testVIP()
	s.WritePool(vip, 5, nil)
	d, err := s.SelectDIP(vip, 5, clientTuple(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.IsValid() {
		t.Fatal("empty pool produced a DIP")
	}
}

func TestResolveSYNCollisionBadHandle(t *testing.T) {
	s := newTestSwitch(t)
	res := Result{ConnHandle: cuckoo.Handle{Stage: 99}}
	if _, err := s.ResolveSYNCollision(clientTuple(1), res); err == nil {
		t.Fatal("bad handle accepted")
	}
}

func TestProcessUDPConnection(t *testing.T) {
	// UDP flows have no SYN; they learn on first packet and pin like TCP.
	s, _ := New(DefaultConfig(1000))
	vip := VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 53, Proto: netproto.ProtoUDP}
	s.InstallVIP(vip, 0, testPool(4), 0)
	tup := clientTuple(1)
	tup.DstPort = 53
	tup.Proto = netproto.ProtoUDP
	res := s.Process(0, &netproto.Packet{Tuple: tup})
	if res.Verdict != VerdictForward || !res.Learned {
		t.Fatalf("udp first packet: %+v", res)
	}
	if err := s.InsertConn(tup, 0); err != nil {
		t.Fatal(err)
	}
	res2 := s.Process(100, &netproto.Packet{Tuple: tup})
	if !res2.ConnHit || res2.DIP != res.DIP {
		t.Fatal("udp conn not pinned")
	}
}
