package dataplane

import (
	"testing"

	"repro/internal/telemetry"
)

// Telemetry mirrors the verdict enum instead of importing this package
// (it is a leaf); the numeric values must stay in lockstep.
func TestTelemetryVerdictAlignment(t *testing.T) {
	pairs := []struct {
		dp  Verdict
		tel telemetry.Verdict
	}{
		{VerdictForward, telemetry.VerdictForward},
		{VerdictNoVIP, telemetry.VerdictNoVIP},
		{VerdictMeterDrop, telemetry.VerdictMeterDrop},
		{VerdictRedirectSYNConn, telemetry.VerdictRedirectSYNConn},
		{VerdictRedirectSYNTransit, telemetry.VerdictRedirectSYNTransit},
		{VerdictNoBackend, telemetry.VerdictNoBackend},
	}
	for _, p := range pairs {
		if uint8(p.dp) != uint8(p.tel) {
			t.Fatalf("verdict %v (=%d) does not align with telemetry %v (=%d)",
				p.dp, uint8(p.dp), p.tel, uint8(p.tel))
		}
	}
	if int(telemetry.NumVerdicts) != len(pairs) {
		t.Fatalf("telemetry.NumVerdicts = %d, want %d — add the new verdict to both enums",
			telemetry.NumVerdicts, len(pairs))
	}
}
