package dataplane

import (
	"errors"
	"fmt"

	"repro/internal/netproto"
	"repro/internal/regarray"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// CPU-side table primitives. These mutate the hardware tables the way the
// switch driver software does: one operation at a time, with the pipeline
// continuing to forward between operations. Timing (how long the CPU takes
// per insertion, when batches drain) is the control plane's concern.

// Errors returned by table operations.
var (
	ErrUnknownVIP     = errors.New("dataplane: unknown VIP")
	ErrUnknownVersion = errors.New("dataplane: unknown pool version")
	ErrVIPExists      = errors.New("dataplane: VIP already installed")
	ErrPoolInUse      = errors.New("dataplane: pool version is current")
)

// InstallVIP creates the VIPTable row for vip with an initial pool version.
// meterBytesPerSec > 0 attaches a two-rate three-color meter sized at that
// committed rate (excess = 10% above committed).
func (s *Switch) InstallVIP(vip VIP, ver uint32, pool []DIP, meterBytesPerSec float64) error {
	if _, dup := s.vips[vip]; dup {
		return ErrVIPExists
	}
	if err := s.checkVer(ver); err != nil {
		return err
	}
	vs := &vipState{
		vip:    vip,
		id:     s.nextID,
		curVer: ver,
		pools:  map[uint32]poolRow{ver: {dips: clonePool(pool)}},
	}
	if meterBytesPerSec > 0 {
		vs.meter = regarray.NewMeter(meterBytesPerSec, meterBytesPerSec/100,
			meterBytesPerSec/10, meterBytesPerSec/100)
	}
	if s.tracer != nil {
		// Resolve the per-VIP telemetry series once; the packet path carries
		// the handle instead of looking it up.
		vs.tel = s.tracer.RegisterVIP(s.pipe, vip.TelemetryKey())
	}
	s.nextID++
	s.vips[vip] = vs
	return nil
}

// RemoveVIP deletes the VIPTable row and all DIPPoolTable rows of vip.
func (s *Switch) RemoveVIP(vip VIP) error {
	if _, ok := s.vips[vip]; !ok {
		return ErrUnknownVIP
	}
	delete(s.vips, vip)
	s.lastVS = nil // the packet path's one-entry cache may hold this row
	return nil
}

// HasVIP reports whether vip is installed.
func (s *Switch) HasVIP(vip VIP) bool {
	_, ok := s.vips[vip]
	return ok
}

// VIPs returns the installed VIPs.
func (s *Switch) VIPs() []VIP {
	out := make([]VIP, 0, len(s.vips))
	for v := range s.vips {
		out = append(out, v)
	}
	return out
}

// WritePool writes (or overwrites, for version reuse) the DIPPoolTable row
// (vip, ver) -> pool.
func (s *Switch) WritePool(vip VIP, ver uint32, pool []DIP) error {
	vs, ok := s.vips[vip]
	if !ok {
		return ErrUnknownVIP
	}
	if err := s.checkVer(ver); err != nil {
		return err
	}
	vs.pools[ver] = poolRow{dips: clonePool(pool)}
	vs.rowValid = false
	return nil
}

// WritePoolBuckets writes a resilient DIPPoolTable row: selection goes
// through the fixed bucket table (every bucket must reference a member of
// dips). Used by the control plane's §7 resilient failover.
func (s *Switch) WritePoolBuckets(vip VIP, ver uint32, dips, buckets []DIP) error {
	vs, ok := s.vips[vip]
	if !ok {
		return ErrUnknownVIP
	}
	if err := s.checkVer(ver); err != nil {
		return err
	}
	if len(buckets) == 0 {
		return errors.New("dataplane: resilient row needs buckets")
	}
	member := make(map[DIP]bool, len(dips))
	for _, d := range dips {
		member[d] = true
	}
	for _, b := range buckets {
		if !member[b] {
			return fmt.Errorf("dataplane: bucket DIP %v not in member list", b)
		}
	}
	vs.pools[ver] = poolRow{dips: clonePool(dips), buckets: clonePool(buckets)}
	vs.rowValid = false
	return nil
}

// DeletePool removes the DIPPoolTable row for a retired version.
func (s *Switch) DeletePool(vip VIP, ver uint32) error {
	vs, ok := s.vips[vip]
	if !ok {
		return ErrUnknownVIP
	}
	if _, ok := vs.pools[ver]; !ok {
		return ErrUnknownVersion
	}
	if ver == vs.curVer || (vs.inUpdate && ver == vs.oldVer) {
		return ErrPoolInUse
	}
	delete(vs.pools, ver)
	vs.rowValid = false
	return nil
}

// Pool returns the DIP pool stored for (vip, ver).
func (s *Switch) Pool(vip VIP, ver uint32) ([]DIP, error) {
	vs, ok := s.vips[vip]
	if !ok {
		return nil, ErrUnknownVIP
	}
	p, ok := vs.pools[ver]
	if !ok {
		return nil, ErrUnknownVersion
	}
	return clonePool(p.dips), nil
}

// CurrentVersion returns the version new connections of vip map to.
func (s *Switch) CurrentVersion(vip VIP) (uint32, error) {
	vs, ok := s.vips[vip]
	if !ok {
		return 0, ErrUnknownVIP
	}
	return vs.curVer, nil
}

// PoolVersions returns the active pool versions of vip.
func (s *Switch) PoolVersions(vip VIP) ([]uint32, error) {
	vs, ok := s.vips[vip]
	if !ok {
		return nil, ErrUnknownVIP
	}
	out := make([]uint32, 0, len(vs.pools))
	for v := range vs.pools {
		out = append(out, v)
	}
	return out, nil
}

// SetRecording enables/disables step 1 of the PCC update: while recording,
// every ConnTable miss of this VIP inserts the connection into the
// TransitTable bloom filter.
func (s *Switch) SetRecording(vip VIP, on bool) error {
	vs, ok := s.vips[vip]
	if !ok {
		return ErrUnknownVIP
	}
	vs.recording = on
	return nil
}

// BeginTransition executes the VIPTable version swap (t_exec): the new pool
// version becomes current, and misses consult the TransitTable to decide
// between old and new versions (step 2). Recording stops atomically with
// the swap.
func (s *Switch) BeginTransition(vip VIP, newVer uint32) error {
	vs, ok := s.vips[vip]
	if !ok {
		return ErrUnknownVIP
	}
	if _, ok := vs.pools[newVer]; !ok {
		return ErrUnknownVersion
	}
	vs.oldVer = vs.curVer
	vs.curVer = newVer
	vs.inUpdate = true
	vs.recording = false
	return nil
}

// EndTransition finishes step 3 for vip: misses no longer consult the
// TransitTable.
func (s *Switch) EndTransition(vip VIP) error {
	vs, ok := s.vips[vip]
	if !ok {
		return ErrUnknownVIP
	}
	vs.inUpdate = false
	return nil
}

// SetCurrentVersion swaps the VIPTable version with no PCC machinery — the
// behaviour of SilkRoad-without-TransitTable used as an ablation (Fig. 16).
func (s *Switch) SetCurrentVersion(vip VIP, ver uint32) error {
	vs, ok := s.vips[vip]
	if !ok {
		return ErrUnknownVIP
	}
	if _, ok := vs.pools[ver]; !ok {
		return ErrUnknownVersion
	}
	vs.curVer = ver
	vs.inUpdate = false
	vs.recording = false
	return nil
}

// InUpdate reports whether vip is between t_exec and t_finish (step 2).
func (s *Switch) InUpdate(vip VIP) bool {
	vs, ok := s.vips[vip]
	return ok && vs.inUpdate
}

// ClearTransit empties the TransitTable (end of step 3, when no update
// remains in flight).
func (s *Switch) ClearTransit() {
	if s.transit != nil {
		s.transit.Clear()
	}
}

// TransitInserts returns the number of keys inserted into the TransitTable
// since it was last cleared (0 when the filter is disabled).
func (s *Switch) TransitInserts() int {
	if s.transit == nil {
		return 0
	}
	return s.transit.Inserts()
}

// InsertConn installs the connection entry tuple -> ver. The cuckoo search
// and digest-alias fixes run as they would on the switch CPU. Telemetry is
// stamped at virtual time zero; CPU-scheduled callers use InsertConnAt.
func (s *Switch) InsertConn(t netproto.FiveTuple, ver uint32) error {
	return s.InsertConnAt(0, t, ver)
}

// InsertConnAt is InsertConn with an explicit virtual time for the cuckoo
// telemetry event (kick-chain length, alias relocations, table occupancy).
func (s *Switch) InsertConnAt(now simtime.Time, t netproto.FiveTuple, ver uint32) error {
	keyHash, digest := s.KeyHash(t), s.ConnDigest(t)
	relocBefore := s.conn.Relocations
	moves, err := s.conn.Insert(keyHash, digest, ver)
	if s.tracer != nil {
		s.tracer.OnCuckoo(telemetry.CuckooEvent{
			Now:         now,
			Pipe:        s.pipe,
			Op:          telemetry.CuckooInsert,
			KeyHash:     keyHash,
			Digest:      digest,
			Version:     ver,
			Moves:       moves,
			Relocations: s.conn.Relocations - relocBefore,
			OK:          err == nil,
			Len:         s.conn.Len(),
			Capacity:    s.conn.Capacity(),
			Effective:   s.conn.EffectiveCapacity(),
		})
	}
	return err
}

// DeleteConn removes tuple's entry; it reports whether one existed.
// Telemetry is stamped at virtual time zero; use DeleteConnAt when the
// caller knows when the CPU performed the delete.
func (s *Switch) DeleteConn(t netproto.FiveTuple) bool {
	return s.DeleteConnAt(0, t)
}

// DeleteConnAt is DeleteConn with an explicit virtual time for telemetry.
func (s *Switch) DeleteConnAt(now simtime.Time, t netproto.FiveTuple) bool {
	keyHash := s.KeyHash(t)
	ok := s.conn.Delete(keyHash)
	if ok && s.tracer != nil {
		if vs, live := s.vips[VIPOf(t)]; live && vs.tel != nil {
			vs.tel.ConnsEnded.Inc()
		}
		s.tracer.OnCuckoo(telemetry.CuckooEvent{
			Now:       now,
			Pipe:      s.pipe,
			Op:        telemetry.CuckooDelete,
			KeyHash:   keyHash,
			Digest:    s.ConnDigest(t),
			OK:        true,
			Len:       s.conn.Len(),
			Capacity:  s.conn.Capacity(),
			Effective: s.conn.EffectiveCapacity(),
		})
	}
	return ok
}

// LookupConn returns the installed version for tuple, resolving by the
// CPU's exact shadow (not subject to digest false positives).
func (s *Switch) LookupConn(t netproto.FiveTuple) (uint32, bool) {
	keyHash := s.KeyHash(t)
	ver, h, ok := s.conn.Lookup(keyHash, s.ConnDigest(t))
	if !ok {
		return 0, false
	}
	if kh, err := s.conn.EntryKeyHash(h); err != nil || kh != keyHash {
		return 0, false
	}
	return ver, true
}

// ResolveSYNCollision is the CPU handler for VerdictRedirectSYNConn: the
// SYN of connection t matched entry h. If h's shadow shows a different
// connection, the existing entry is relocated to another stage so the two
// keys separate; the caller then proceeds to learn/insert t normally.
// It returns true if a genuine false positive was found and fixed.
func (s *Switch) ResolveSYNCollision(t netproto.FiveTuple, res Result) (bool, error) {
	return s.ResolveSYNCollisionAt(0, t, res)
}

// ResolveSYNCollisionAt is ResolveSYNCollision with an explicit virtual
// time for the relocation (migration) telemetry event.
func (s *Switch) ResolveSYNCollisionAt(now simtime.Time, t netproto.FiveTuple, res Result) (bool, error) {
	kh, err := s.conn.EntryKeyHash(res.ConnHandle)
	if err != nil {
		return false, err
	}
	if kh == res.KeyHash {
		// Retransmitted SYN of an already-installed connection: no action.
		return false, nil
	}
	relocBefore := s.conn.Relocations
	relocErr := s.conn.Relocate(res.ConnHandle)
	if s.tracer != nil {
		s.tracer.OnCuckoo(telemetry.CuckooEvent{
			Now:         now,
			Pipe:        s.pipe,
			Op:          telemetry.CuckooRelocate,
			KeyHash:     kh, // the aliasing entry that migrated
			Digest:      res.Digest,
			Moves:       0,
			Relocations: s.conn.Relocations - relocBefore,
			OK:          relocErr == nil,
			Len:         s.conn.Len(),
			Capacity:    s.conn.Capacity(),
			Effective:   s.conn.EffectiveCapacity(),
		})
	}
	if relocErr != nil {
		return false, fmt.Errorf("dataplane: relocating collided entry: %w", relocErr)
	}
	return true, nil
}

func (s *Switch) checkVer(ver uint32) error {
	if ver >= 1<<uint(s.cfg.VersionBits) {
		return fmt.Errorf("dataplane: version %d exceeds %d-bit field", ver, s.cfg.VersionBits)
	}
	return nil
}

func clonePool(pool []DIP) []DIP { return append([]DIP(nil), pool...) }
