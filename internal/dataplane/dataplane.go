// Package dataplane implements the SilkRoad switch data plane — the part of
// the system that is a ~400-line P4 program in the paper (Figure 10):
//
//	packet -> ConnTable (digest -> version) --hit--> DIPPoolTable -> forward
//	            |miss
//	            v
//	         VIPTable (VIP -> version), and if the VIP is mid-update,
//	         TransitTable (bloom filter of pending connections) decides
//	         between the old and new version; misses trigger learning.
//
// Everything here corresponds to hardware behaviour: lookups, per-packet
// bloom reads/writes, learn-event generation, metering and forwarding. All
// table mutations (inserts, version swaps, pool writes) are CPU-side
// operations exposed as methods for the ctrlplane package to call —
// mirroring the ASIC/switch-CPU split that creates the PCC problem in the
// first place.
package dataplane

import (
	"errors"
	"fmt"
	"net/netip"

	"repro/internal/asic"
	"repro/internal/bloom"
	"repro/internal/cuckoo"
	"repro/internal/hashing"
	"repro/internal/learnfilter"
	"repro/internal/netproto"
	"repro/internal/regarray"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// VIP identifies a load-balanced service: a virtual address, port and
// protocol. It is comparable and used as the VIPTable key.
type VIP struct {
	Addr  netip.Addr
	Port  uint16
	Proto netproto.Proto
}

// String renders the VIP as addr:port/proto.
func (v VIP) String() string {
	return fmt.Sprintf("%s/%s", netip.AddrPortFrom(v.Addr, v.Port), v.Proto)
}

// VIPOf extracts the VIP a packet is addressed to.
func VIPOf(t netproto.FiveTuple) VIP {
	return VIP{Addr: t.Dst, Port: t.DstPort, Proto: t.Proto}
}

// TelemetryKey converts the VIP to its telemetry-series key.
func (v VIP) TelemetryKey() telemetry.VIPKey {
	return telemetry.VIPKey{Addr: v.Addr, Port: v.Port, Proto: uint8(v.Proto)}
}

// DIP is a direct (backend) address: IP and port.
type DIP = netip.AddrPort

// Config parameterizes a SilkRoad switch instance.
type Config struct {
	Chip                asic.Config
	ConnTableEntries    int              // sizing target for ConnTable
	DigestBits          int              // 16 (paper default) or 24
	VersionBits         int              // 6 (paper default)
	TransitTableBytes   int              // 256 (paper default)
	TransitTableHashes  int              // 4
	LearnFilterCapacity int              // 2048
	LearnFilterTimeout  simtime.Duration // 1 ms
	DisableTransit      bool             // ablation: SilkRoad w/o TransitTable
	Seed                uint64
	// DerivedHashes switches the per-packet connection hashes (KeyHash,
	// ConnDigest) from byte hashes over the serialized KeyBytes layout to
	// derivations of one chip-level lane hash of the 5-tuple
	// (netproto.LaneHash under LaneSeed). The multi-pipe engine enables it
	// so every pipe derives its key hash and digest from the single ingress
	// hash the chip already computed to pick the pipe — one fixed-width
	// hash per packet instead of two serialize-and-byte-hash rounds per
	// pipe. The two schemes produce unrelated values: never flip the flag
	// on a switch whose ConnTable holds live entries.
	DerivedHashes bool
	// LaneSeed seeds the chip-level lane hash when DerivedHashes is set. It
	// is shared by every pipe of a chip (unlike Seed, which is diversified
	// per pipe) and is used verbatim — zero included — so a configuration
	// never collapses silently onto a different seed.
	LaneSeed uint64
	// DegradedHighWatermark and DegradedLowWatermark enable degraded mode:
	// fractions of ConnTable's effective capacity (0 < Low < High <= 1).
	// When occupancy reaches the high watermark the switch stops learning
	// new flows — they are served stateless through the per-version
	// VIPTable hash, which is stable as long as the version's pool is —
	// and resumes learning only once occupancy falls below the low
	// watermark (hysteresis). Zero disables degraded mode: the switch
	// learns until cuckoo insertion fails, as before.
	DegradedHighWatermark float64
	DegradedLowWatermark  float64
	// Tracer receives telemetry events from this switch and the components
	// it owns (learning filter, control plane). Nil disables tracing at the
	// cost of one branch per event site.
	Tracer telemetry.Tracer
	// Pipe is this switch's pipeline index on the chip, labelling its
	// telemetry events (0 for a single-pipe switch).
	Pipe int
}

// DefaultConfig returns the paper's operating point for a switch expected
// to hold n connections.
func DefaultConfig(n int) Config {
	return Config{
		Chip:                asic.Tofino64(),
		ConnTableEntries:    n,
		DigestBits:          16,
		VersionBits:         6,
		TransitTableBytes:   256,
		TransitTableHashes:  4,
		LearnFilterCapacity: 2048,
		LearnFilterTimeout:  simtime.Duration(simtime.Millisecond),
		Seed:                0xa5a5,
	}
}

// Verdict classifies the outcome of processing one packet.
type Verdict uint8

// Verdicts.
const (
	// VerdictForward: the packet was forwarded to Result.DIP at line rate.
	VerdictForward Verdict = iota
	// VerdictNoVIP: destination is not a registered VIP.
	VerdictNoVIP
	// VerdictMeterDrop: the VIP's meter marked the packet red.
	VerdictMeterDrop
	// VerdictRedirectSYNConn: a SYN matched an existing ConnTable entry —
	// a suspected digest false positive; the CPU must arbitrate (§4.2).
	VerdictRedirectSYNConn
	// VerdictRedirectSYNTransit: a SYN matched the TransitTable during
	// step 2 of an update — a suspected bloom false positive (§4.3).
	VerdictRedirectSYNTransit
	// VerdictNoBackend: the selected DIP pool version holds no backends, so
	// the packet is dropped rather than forwarded to a zero-valued address.
	VerdictNoBackend
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictForward:
		return "forward"
	case VerdictNoVIP:
		return "no-vip"
	case VerdictMeterDrop:
		return "meter-drop"
	case VerdictRedirectSYNConn:
		return "redirect-syn-conntable"
	case VerdictRedirectSYNTransit:
		return "redirect-syn-transittable"
	case VerdictNoBackend:
		return "no-backend"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Result reports what the pipeline did with a packet.
type Result struct {
	Verdict    Verdict
	DIP        DIP    // meaningful when Verdict is VerdictForward or a redirect
	Version    uint32 // DIP pool version used
	ConnHit    bool   // served from ConnTable
	TransitHit bool   // bloom said "pending"
	Learned    bool   // generated a learn event
	ConnHandle cuckoo.Handle
	KeyHash    uint64
	Digest     uint32
	Metered    bool           // the VIP's meter saw this packet
	Meter      regarray.Color // its color (valid only when Metered)
}

// Stats are the data plane's hardware counters.
type Stats struct {
	Packets             uint64
	NoVIP               uint64
	NoBackend           uint64 // drops because the pool version was empty
	MeterDrops          uint64
	ConnHits            uint64
	ConnMisses          uint64
	TransitChecks       uint64
	TransitHits         uint64
	TransitInserts      uint64
	SYNRedirectConn     uint64
	SYNRedirectTransit  uint64
	LearnOffers         uint64
	ForwardedOldVersion uint64 // packets pinned to an old pool by TransitTable
	DegradedPackets     uint64 // miss-path packets served stateless in degraded mode
	DegradedTransitions uint64 // watermark crossings, both directions
}

// Add accumulates o into s — the per-pipe to chip-level aggregation used by
// the multi-pipe engine.
func (s *Stats) Add(o Stats) {
	s.Packets += o.Packets
	s.NoVIP += o.NoVIP
	s.NoBackend += o.NoBackend
	s.MeterDrops += o.MeterDrops
	s.ConnHits += o.ConnHits
	s.ConnMisses += o.ConnMisses
	s.TransitChecks += o.TransitChecks
	s.TransitHits += o.TransitHits
	s.TransitInserts += o.TransitInserts
	s.SYNRedirectConn += o.SYNRedirectConn
	s.SYNRedirectTransit += o.SYNRedirectTransit
	s.LearnOffers += o.LearnOffers
	s.ForwardedOldVersion += o.ForwardedOldVersion
	s.DegradedPackets += o.DegradedPackets
	s.DegradedTransitions += o.DegradedTransitions
}

// vipState is the hardware state for one VIP: its VIPTable row, update
// flags, meter, and DIPPoolTable rows.
type vipState struct {
	vip       VIP
	id        uint32
	curVer    uint32
	oldVer    uint32
	inUpdate  bool // step 2: misses consult TransitTable
	recording bool // step 1: misses are inserted into TransitTable
	pools     map[uint32]poolRow
	meter     *regarray.Meter      // nil = unmetered
	tel       *telemetry.VIPSeries // nil when untraced

	// rowVer/rowValid/row memoize the last pools[ver] lookup: nearly every
	// packet resolves the current version, so the packet path pays one
	// comparison instead of a map access. The DIPPoolTable mutators
	// (WritePool, WritePoolBuckets, DeletePool) invalidate the cache.
	rowVer   uint32
	rowValid bool
	row      poolRow
}

// Switch is one SilkRoad data plane instance on a chip.
type Switch struct {
	cfg     Config
	chip    *asic.Chip
	conn    *cuckoo.Table
	transit *bloom.Filter
	learn   *learnfilter.Filter
	vips    map[VIP]*vipState
	// lastVS memoizes the previous packet's VIPTable resolution. Hashing
	// the VIP struct key dominates the map access cost, and consecutive
	// packets overwhelmingly hit the same VIP, so the packet path pays a
	// struct comparison instead. RemoveVIP invalidates the cache (install
	// cannot alias: a cached pointer always belongs to a still-live VIP).
	lastVS *vipState
	nextID uint32

	connSeed   uint64 // key hashing
	digestSeed uint64
	dipSeed    uint64 // DIP selection within a pool

	tracer telemetry.Tracer // nil = untraced
	pipe   int

	// Degraded mode (occupancy watermarks): degHigh/degLow are the
	// configured fractions converted to entry counts against the table's
	// effective capacity; degHigh == 0 means the mode is disabled.
	degraded        bool
	degHigh, degLow int

	stats Stats
}

// New builds a switch, allocating its tables on the chip and accounting
// their hardware resources.
func New(cfg Config) (*Switch, error) {
	if cfg.ConnTableEntries <= 0 {
		return nil, errors.New("dataplane: ConnTableEntries must be positive")
	}
	if cfg.VersionBits <= 0 || cfg.VersionBits > 16 {
		return nil, errors.New("dataplane: VersionBits must be in 1..16")
	}
	if cfg.DegradedHighWatermark != 0 || cfg.DegradedLowWatermark != 0 {
		if cfg.DegradedHighWatermark <= 0 || cfg.DegradedHighWatermark > 1 ||
			cfg.DegradedLowWatermark <= 0 || cfg.DegradedLowWatermark >= cfg.DegradedHighWatermark {
			return nil, errors.New("dataplane: degraded watermarks must satisfy 0 < low < high <= 1")
		}
	}
	chip := asic.NewChip(cfg.Chip)
	tcfg := cuckoo.DefaultConfig(cfg.ConnTableEntries)
	tcfg.DigestBits = cfg.DigestBits
	tcfg.ValueBits = cfg.VersionBits
	tcfg.Seed = cfg.Seed ^ 0xc077
	// IPv6 worst case key width feeds the crossbar.
	conn, err := chip.AllocExactMatch("ConnTable", tcfg, 37*8)
	if err != nil {
		return nil, fmt.Errorf("dataplane: ConnTable: %w", err)
	}
	var transit *bloom.Filter
	if !cfg.DisableTransit {
		transit, err = chip.AllocBloom("TransitTable", cfg.TransitTableBytes, cfg.TransitTableHashes, cfg.Seed^0x7a51)
		if err != nil {
			return nil, fmt.Errorf("dataplane: TransitTable: %w", err)
		}
	}
	learn, err := chip.AllocLearnFilter(cfg.LearnFilterCapacity, cfg.LearnFilterTimeout)
	if err != nil {
		return nil, fmt.Errorf("dataplane: learning filter: %w", err)
	}
	if cfg.Tracer != nil {
		learn.SetTracer(cfg.Tracer, cfg.Pipe)
	}
	sw := &Switch{
		cfg:        cfg,
		chip:       chip,
		conn:       conn,
		transit:    transit,
		learn:      learn,
		vips:       make(map[VIP]*vipState),
		connSeed:   cfg.Seed ^ 0x5eed_c0_11,
		digestSeed: cfg.Seed ^ 0xd16e_57,
		dipSeed:    cfg.Seed ^ 0xd1_90_01,
		tracer:     cfg.Tracer,
		pipe:       cfg.Pipe,
	}
	sw.refreshWatermarks()
	return sw, nil
}

// refreshWatermarks recomputes the degraded-mode entry thresholds from the
// configured fractions and ConnTable's current effective capacity (which
// an injected occupancy limit can shrink).
func (s *Switch) refreshWatermarks() {
	if s.cfg.DegradedHighWatermark <= 0 {
		s.degHigh, s.degLow = 0, 0
		return
	}
	capa := float64(s.conn.EffectiveCapacity())
	s.degHigh = int(s.cfg.DegradedHighWatermark * capa)
	if s.degHigh < 1 {
		s.degHigh = 1
	}
	s.degLow = int(s.cfg.DegradedLowWatermark * capa)
	if s.degLow >= s.degHigh {
		s.degLow = s.degHigh - 1
	}
}

// evalDegraded applies the watermark hysteresis against the current
// ConnTable occupancy and reports whether the switch is degraded. Called
// on the miss path before learning; transitions count in Stats and emit
// OnDegraded.
func (s *Switch) evalDegraded(now simtime.Time) bool {
	if s.degHigh <= 0 {
		return false
	}
	n := s.conn.Len()
	switch {
	case !s.degraded && n >= s.degHigh:
		s.setDegraded(now, true, n)
	case s.degraded && n < s.degLow:
		s.setDegraded(now, false, n)
	}
	return s.degraded
}

func (s *Switch) setDegraded(now simtime.Time, to bool, entries int) {
	s.degraded = to
	s.stats.DegradedTransitions++
	if s.tracer != nil {
		s.tracer.OnDegraded(telemetry.DegradedEvent{
			Now:      now,
			Pipe:     s.pipe,
			Degraded: to,
			Entries:  entries,
			Capacity: s.conn.EffectiveCapacity(),
		})
	}
}

// Degraded reports whether the switch is currently in degraded mode. The
// flag is evaluated on the miss path, so it reflects the state as of the
// last learned-or-skipped packet.
func (s *Switch) Degraded() bool { return s.degraded }

// OccupancyInfo returns ConnTable's entry count and effective capacity
// (the watermark base).
func (s *Switch) OccupancyInfo() (entries, capacity int) {
	return s.conn.Len(), s.conn.EffectiveCapacity()
}

// SetConnTableLimit injects an artificial ConnTable entry cap (SRAM
// pressure; 0 removes it) and recomputes the degraded-mode watermarks
// against the shrunken capacity. Fault-injection hook.
func (s *Switch) SetConnTableLimit(limit int) {
	s.conn.SetOccupancyLimit(limit)
	s.refreshWatermarks()
}

// Config returns the switch configuration.
func (s *Switch) Config() Config { return s.cfg }

// Chip exposes the hosting chip (for resource reports).
func (s *Switch) Chip() *asic.Chip { return s.chip }

// ConnTable exposes the connection table (read-mostly; the control plane
// mutates it through InsertConn/DeleteConn).
func (s *Switch) ConnTable() *cuckoo.Table { return s.conn }

// LearnFilter exposes the learning filter for the control plane to drain.
func (s *Switch) LearnFilter() *learnfilter.Filter { return s.learn }

// Stats returns a copy of the hardware counters.
func (s *Switch) Stats() Stats { return s.stats }

// Tracer returns the telemetry tracer this switch reports to (nil when
// untraced). The control plane reads it so both planes share one sink.
func (s *Switch) Tracer() telemetry.Tracer { return s.tracer }

// PipeIndex returns the pipeline index labelling this switch's telemetry.
func (s *Switch) PipeIndex() int { return s.pipe }

// VIPTelemetry returns the telemetry series of an installed VIP (nil when
// the VIP is unknown or the switch is untraced).
func (s *Switch) VIPTelemetry(vip VIP) *telemetry.VIPSeries {
	if vs, ok := s.vips[vip]; ok {
		return vs.tel
	}
	return nil
}

// KeyHash returns the 64-bit connection key hash used for table addressing
// and bloom membership. Under Config.DerivedHashes it is derived from the
// chip-level lane hash; otherwise it byte-hashes the serialized key. Every
// tuple-keyed path (packet processing, CPU inserts and deletes, SYN
// arbitration) funnels through this method or through Result.KeyHash
// values it produced, so the two schemes never mix on one table.
func (s *Switch) KeyHash(t netproto.FiveTuple) uint64 {
	if s.cfg.DerivedHashes {
		return hashing.HashUint64(s.connSeed, netproto.LaneHash(s.cfg.LaneSeed, &t))
	}
	var buf [37]byte
	return hashing.Hash64(s.connSeed, t.KeyBytes(buf[:]))
}

// ConnDigest returns the connection digest stored as the ConnTable match
// field (derived from the lane hash under Config.DerivedHashes).
func (s *Switch) ConnDigest(t netproto.FiveTuple) uint32 {
	if s.cfg.DerivedHashes {
		return hashing.DigestUint64(s.digestSeed, s.cfg.DigestBits,
			netproto.LaneHash(s.cfg.LaneSeed, &t))
	}
	var buf [37]byte
	return hashing.Digest(s.digestSeed, s.cfg.DigestBits, t.KeyBytes(buf[:]))
}

// Process runs one packet through the pipeline (Figure 10) and returns the
// forwarding decision. It never blocks and performs no CPU-side work; it
// may enqueue a learn event or redirect a SYN to the CPU.
func (s *Switch) Process(now simtime.Time, pkt *netproto.Packet) Result {
	var lane uint64
	if s.cfg.DerivedHashes {
		lane = netproto.LaneHash(s.cfg.LaneSeed, &pkt.Tuple)
	}
	var res Result
	s.runInto(now, pkt, lane, &res)
	return res
}

// ProcessLane is Process for callers that already computed the packet's
// chip-level lane hash — the multi-pipe batch path computes it once per
// packet to pick the pipe and passes it down so the pipeline does not hash
// the tuple again. lane must equal netproto.LaneHash(Config.LaneSeed,
// &pkt.Tuple); it is ignored unless Config.DerivedHashes is set.
func (s *Switch) ProcessLane(now simtime.Time, pkt *netproto.Packet, lane uint64) Result {
	var res Result
	s.runInto(now, pkt, lane, &res)
	return res
}

// ProcessLaneInto is ProcessLane writing the decision into *out instead of
// returning it. The multi-pipe batch path uses it to fill each result slot
// in place — the Result struct is wide enough that the value-returning
// call chain costs a measurable fraction of the per-packet budget.
func (s *Switch) ProcessLaneInto(now simtime.Time, pkt *netproto.Packet, lane uint64, out *Result) {
	s.runInto(now, pkt, lane, out)
}

// ProcessFrame runs one parsed wire frame through the pipeline. It is
// Process on the bytes-native currency: the five-tuple, flags and lane
// hash come from the frame's single parse pass, and the meter charges the
// frame's actual on-the-wire length rather than a canonical-framing
// reconstruction.
func (s *Switch) ProcessFrame(now simtime.Time, f *netproto.Frame) Result {
	var lane uint64
	if s.cfg.DerivedHashes {
		lane = f.LaneHash(s.cfg.LaneSeed)
	}
	var res Result
	s.frameInto(now, f, lane, &res)
	return res
}

// ProcessFrameInto is ProcessFrame for the multi-pipe batch path: the lane
// hash was already taken from the frame to pick the pipe and is passed
// down, and the decision is written into *out in place. lane is ignored
// unless Config.DerivedHashes is set.
func (s *Switch) ProcessFrameInto(now simtime.Time, f *netproto.Frame, lane uint64, out *Result) {
	s.frameInto(now, f, lane, out)
}

// runInto is the struct-currency entry: it feeds the shared pipeline core
// with the packet's fields and its canonical WireLen.
func (s *Switch) runInto(now simtime.Time, pkt *netproto.Packet, lane uint64, res *Result) {
	s.pipelineInto(now, &pkt.Tuple, pkt.TCPFlags, pkt.WireLen(), lane, false, res)
}

// frameInto is the wire-currency entry: same core, actual frame length.
func (s *Switch) frameInto(now simtime.Time, f *netproto.Frame, lane uint64, res *Result) {
	s.pipelineInto(now, &f.Tuple, f.TCPFlags, f.WireLen(), lane, true, res)
}

// pipelineInto runs the pipeline body and emits the telemetry event. Both
// packet currencies (decoded structs and wire frames) funnel through here,
// so verdicts, hashes, metering and tracing cannot diverge between them;
// wire marks frame-path packets in the emitted telemetry.
func (s *Switch) pipelineInto(now simtime.Time, tuple *netproto.FiveTuple, tcpFlags uint8, wireLen int, lane uint64, wire bool, res *Result) {
	vs := s.process(now, tuple, tcpFlags, wireLen, lane, res)
	if s.tracer != nil {
		var tel *telemetry.VIPSeries
		if vs != nil {
			tel = vs.tel
		}
		if res.Verdict == VerdictMeterDrop {
			s.tracer.OnMeterDrop(telemetry.MeterDropEvent{
				Now: now, Pipe: s.pipe, VIP: tel, WireLen: wireLen,
			})
		}
		stage := -1
		if res.ConnHit {
			stage = res.ConnHandle.Stage
		}
		meter := telemetry.MeterNone
		if res.Metered {
			meter = telemetry.MeterColor(res.Meter)
		}
		s.tracer.OnVerdict(telemetry.VerdictEvent{
			Now:        now,
			Pipe:       s.pipe,
			VIP:        tel,
			Verdict:    telemetry.Verdict(res.Verdict),
			WireLen:    wireLen,
			Wire:       wire,
			ConnHit:    res.ConnHit,
			Learned:    res.Learned,
			Tuple:      *tuple,
			KeyHash:    res.KeyHash,
			Digest:     res.Digest,
			Version:    res.Version,
			DIP:        res.DIP,
			Stage:      stage,
			TransitHit: res.TransitHit,
			Meter:      meter,
		})
	}
}

// isSYN reports a bare SYN (connection-opening) flag set.
func isSYN(tcpFlags uint8) bool {
	return tcpFlags&netproto.FlagSYN != 0 && tcpFlags&netproto.FlagACK == 0
}

// process is the pipeline body, writing the forwarding decision into *res
// (whose previous contents are overwritten). It returns the matched VIP
// state so the tracing wrapper can label the event without a second map
// lookup.
func (s *Switch) process(now simtime.Time, tuple *netproto.FiveTuple, tcpFlags uint8, wireLen int, lane uint64, res *Result) *vipState {
	s.stats.Packets++
	vip := VIPOf(*tuple)
	vs := s.lastVS
	if vs == nil || vs.vip != vip {
		var ok bool
		vs, ok = s.vips[vip]
		if !ok {
			s.stats.NoVIP++
			*res = Result{Verdict: VerdictNoVIP}
			return nil
		}
		s.lastVS = vs
	}
	var meterColor regarray.Color
	metered := vs.meter != nil
	if metered {
		meterColor = vs.meter.Mark(now, wireLen)
		if meterColor == regarray.Red {
			s.stats.MeterDrops++
			*res = Result{Verdict: VerdictMeterDrop, Metered: true, Meter: meterColor}
			return vs
		}
	}
	var keyHash uint64
	var digest uint32
	if s.cfg.DerivedHashes {
		keyHash = hashing.HashUint64(s.connSeed, lane)
		digest = hashing.DigestUint64(s.digestSeed, s.cfg.DigestBits, lane)
	} else {
		keyHash = s.KeyHash(*tuple)
		digest = s.ConnDigest(*tuple)
	}
	*res = Result{KeyHash: keyHash, Digest: digest, Metered: metered, Meter: meterColor}

	if ver, h, hit := s.conn.Lookup(keyHash, digest); hit {
		s.stats.ConnHits++
		res.ConnHit = true
		res.Version = ver
		res.ConnHandle = h
		res.DIP = s.selectDIP(vs, ver, keyHash)
		if !res.DIP.IsValid() {
			// The pinned version's pool is empty: nothing to forward to,
			// SYN or not — drop instead of emitting a zero destination.
			s.stats.NoBackend++
			res.Verdict = VerdictNoBackend
			return vs
		}
		if isSYN(tcpFlags) {
			// A connection-opening packet should miss; a hit suggests a
			// digest false positive (or a retransmitted SYN of a pending
			// connection). The CPU arbitrates using its 5-tuple shadow.
			s.stats.SYNRedirectConn++
			res.Verdict = VerdictRedirectSYNConn
			return vs
		}
		res.Verdict = VerdictForward
		return vs
	}
	s.stats.ConnMisses++

	// ConnTable miss: VIPTable decides the version.
	ver := vs.curVer
	if vs.inUpdate && s.transit != nil {
		s.stats.TransitChecks++
		if s.transit.MaybeContains(keyHash) {
			s.stats.TransitHits++
			res.TransitHit = true
			ver = vs.oldVer
			s.stats.ForwardedOldVersion++
			if isSYN(tcpFlags) {
				// A new connection cannot be pending; suspected bloom
				// false positive — CPU arbitrates (§4.3).
				s.stats.SYNRedirectTransit++
				res.Version = ver
				res.DIP = s.selectDIP(vs, ver, keyHash)
				if !res.DIP.IsValid() {
					s.stats.NoBackend++
					res.Verdict = VerdictNoBackend
					return vs
				}
				res.Verdict = VerdictRedirectSYNTransit
				return vs
			}
		}
	}
	if vs.recording && s.transit != nil {
		// Step 1: remember every pending connection of this VIP.
		s.transit.Insert(keyHash)
		s.stats.TransitInserts++
	}
	res.Version = ver
	res.DIP = s.selectDIP(vs, ver, keyHash)
	if !res.DIP.IsValid() {
		// Empty pool version: drop, and do not learn — installing ConnTable
		// state for an unroutable connection would only waste SRAM.
		s.stats.NoBackend++
		res.Verdict = VerdictNoBackend
		return vs
	}
	// Degraded mode: past the high watermark the switch stops learning —
	// the flow is served stateless by the per-version hash above, which
	// stays stable while the version's pool does. Hysteresis returns to
	// stateful service below the low watermark.
	if s.evalDegraded(now) {
		s.stats.DegradedPackets++
		res.Verdict = VerdictForward
		return vs
	}
	// Trigger learning: the CPU will install keyHash -> ver.
	if s.learn.Offer(learnfilter.Event{
		Tuple:   *tuple,
		KeyHash: keyHash,
		Digest:  digest,
		VIPID:   vs.id,
		Version: ver,
		At:      now,
	}) {
		res.Learned = true
		s.stats.LearnOffers++
	}
	res.Verdict = VerdictForward
	return vs
}

// poolRow is one DIPPoolTable row. Plain rows select by hash-mod over the
// DIP list; resilient rows (§7's alternative failure handling) select
// through a fixed bucket table so that one member's failure only remaps
// that member's buckets.
type poolRow struct {
	dips    []DIP
	buckets []DIP // nil for plain rows
}

// selectDIP picks the DIP for a connection within a fixed pool version by
// hashing the connection key over the pool (the per-version hash the paper
// relies on: a pool never changes once created, so the choice is stable),
// or through the row's resilient bucket table when one is installed.
func (s *Switch) selectDIP(vs *vipState, ver uint32, keyHash uint64) DIP {
	if !vs.rowValid || vs.rowVer != ver {
		// A missing version caches the zero row, matching the uncached
		// lookup's "no backend" result until the version is written (which
		// invalidates the cache).
		vs.row = vs.pools[ver]
		vs.rowVer, vs.rowValid = ver, true
	}
	row := vs.row
	if len(row.buckets) > 0 {
		return row.buckets[hashing.HashUint64(s.dipSeed, keyHash)%uint64(len(row.buckets))]
	}
	if len(row.dips) == 0 {
		return DIP{}
	}
	return row.dips[hashing.HashUint64(s.dipSeed, keyHash)%uint64(len(row.dips))]
}

// SelectDIP is the exported form used by the control plane when resolving
// redirected SYNs.
func (s *Switch) SelectDIP(vip VIP, ver uint32, t netproto.FiveTuple) (DIP, error) {
	vs, ok := s.vips[vip]
	if !ok {
		return DIP{}, fmt.Errorf("dataplane: unknown VIP %v", vip)
	}
	if _, ok := vs.pools[ver]; !ok {
		return DIP{}, fmt.Errorf("dataplane: VIP %v has no pool version %d", vip, ver)
	}
	return s.selectDIP(vs, ver, s.KeyHash(t)), nil
}
