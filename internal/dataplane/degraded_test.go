package dataplane

import (
	"testing"

	"repro/internal/netproto"
)

// TestDegradedModeHysteresis: above the high watermark the switch serves
// new flows stateless (no learning); below the low watermark it resumes
// stateful service. Established flows keep their ConnTable pins
// throughout.
func TestDegradedModeHysteresis(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.DegradedHighWatermark = 0.5
	cfg.DegradedLowWatermark = 0.25
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InstallVIP(testVIP(), 0, testPool(4), 0); err != nil {
		t.Fatal(err)
	}
	// Cap occupancy at 20 entries: degraded entry at 10, exit below 5.
	s.SetConnTableLimit(20)
	for i := 0; i < 10; i++ {
		if err := s.InsertConnAt(0, clientTuple(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Degraded() {
		t.Fatal("degraded before any packet evaluated the watermark")
	}

	// A miss at the high watermark: forwarded, not learned, stateless.
	syn := &netproto.Packet{Tuple: clientTuple(100), TCPFlags: netproto.FlagSYN}
	res := s.Process(1, syn)
	if res.Verdict != VerdictForward || res.Learned {
		t.Fatalf("degraded miss: verdict=%v learned=%v", res.Verdict, res.Learned)
	}
	if !s.Degraded() {
		t.Fatal("high watermark did not enter degraded mode")
	}
	st := s.Stats()
	if st.DegradedPackets != 1 || st.DegradedTransitions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Stateless service is stable: the per-version hash keeps picking the
	// same DIP for the same flow.
	res2 := s.Process(2, &netproto.Packet{Tuple: clientTuple(100), TCPFlags: netproto.FlagACK})
	if res2.DIP != res.DIP {
		t.Fatalf("stateless DIP moved: %v -> %v", res.DIP, res2.DIP)
	}
	// Established flows still hit ConnTable.
	est := s.Process(3, &netproto.Packet{Tuple: clientTuple(1), TCPFlags: netproto.FlagACK})
	if !est.ConnHit {
		t.Fatal("established flow lost its pin in degraded mode")
	}

	// Hysteresis: draining to the entry threshold is not enough ...
	for i := 0; i < 4; i++ {
		s.DeleteConnAt(4, clientTuple(i))
	}
	s.Process(5, &netproto.Packet{Tuple: clientTuple(101), TCPFlags: netproto.FlagSYN})
	if !s.Degraded() {
		t.Fatal("left degraded mode between the watermarks")
	}
	// ... but dropping below the low watermark exits and resumes learning.
	for i := 4; i < 8; i++ {
		s.DeleteConnAt(6, clientTuple(i))
	}
	res3 := s.Process(7, &netproto.Packet{Tuple: clientTuple(102), TCPFlags: netproto.FlagSYN})
	if s.Degraded() {
		t.Fatal("did not exit degraded mode below the low watermark")
	}
	if !res3.Learned {
		t.Fatal("post-recovery miss did not learn")
	}
	if got := s.Stats().DegradedTransitions; got != 2 {
		t.Fatalf("DegradedTransitions = %d, want 2", got)
	}
	entries, capacity := s.OccupancyInfo()
	if capacity != 20 || entries != s.ConnTable().Len() {
		t.Fatalf("OccupancyInfo = (%d, %d)", entries, capacity)
	}
}

func TestDegradedWatermarkValidation(t *testing.T) {
	for _, wm := range [][2]float64{{0.5, 0.6}, {1.2, 0.5}, {0.9, 0}} {
		cfg := DefaultConfig(1000)
		cfg.DegradedHighWatermark = wm[0]
		cfg.DegradedLowWatermark = wm[1]
		if _, err := New(cfg); err == nil {
			t.Fatalf("watermarks %v accepted", wm)
		}
	}
	// Zero high watermark = feature off: never degrades.
	cfg := DefaultConfig(1000)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatal("degraded with the feature disabled")
	}
}
