package dataplane

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/netproto"
	"repro/internal/simtime"
)

func testVIP() VIP {
	return VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 80, Proto: netproto.ProtoTCP}
}

func testPool(n int) []DIP {
	out := make([]DIP, n)
	for i := range out {
		out[i] = netip.MustParseAddrPort(fmt.Sprintf("10.0.0.%d:20", i+1))
	}
	return out
}

func clientTuple(i int) netproto.FiveTuple {
	return netproto.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{1, 2, byte(i >> 8), byte(i)}),
		Dst:     netip.MustParseAddr("20.0.0.1"),
		SrcPort: uint16(1024 + i%50000),
		DstPort: 80,
		Proto:   netproto.ProtoTCP,
	}
}

func newTestSwitch(t *testing.T) *Switch {
	t.Helper()
	cfg := DefaultConfig(100000)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InstallVIP(testVIP(), 0, testPool(4), 0); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProcessNoVIP(t *testing.T) {
	s := newTestSwitch(t)
	pkt := &netproto.Packet{Tuple: clientTuple(1)}
	pkt.Tuple.Dst = netip.MustParseAddr("99.99.99.99")
	res := s.Process(0, pkt)
	if res.Verdict != VerdictNoVIP {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if s.Stats().NoVIP != 1 {
		t.Fatal("NoVIP counter not bumped")
	}
}

func TestProcessMissSelectsAndLearns(t *testing.T) {
	s := newTestSwitch(t)
	pkt := &netproto.Packet{Tuple: clientTuple(1), TCPFlags: netproto.FlagSYN}
	res := s.Process(0, pkt)
	if res.Verdict != VerdictForward {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.ConnHit {
		t.Fatal("fresh connection hit ConnTable")
	}
	if !res.Learned {
		t.Fatal("miss did not trigger learning")
	}
	if !res.DIP.IsValid() {
		t.Fatal("no DIP selected")
	}
	if res.Version != 0 {
		t.Fatalf("version = %d, want current 0", res.Version)
	}
	if s.LearnFilter().Len() != 1 {
		t.Fatal("learn filter empty")
	}
}

func TestProcessConsistentSelectionBeforeInsertion(t *testing.T) {
	s := newTestSwitch(t)
	tup := clientTuple(7)
	first := s.Process(0, &netproto.Packet{Tuple: tup, TCPFlags: netproto.FlagSYN})
	for i := 0; i < 10; i++ {
		res := s.Process(simtime.Time(i)*100, &netproto.Packet{Tuple: tup, TCPFlags: netproto.FlagACK})
		if res.DIP != first.DIP {
			t.Fatalf("pending packets diverged: %v vs %v", res.DIP, first.DIP)
		}
		if res.ConnHit {
			t.Fatal("no entry was installed; cannot hit")
		}
	}
	// Duplicate learn events must be suppressed while buffered.
	if s.LearnFilter().Len() != 1 {
		t.Fatalf("filter holds %d events, want 1", s.LearnFilter().Len())
	}
}

func TestProcessHitAfterInsert(t *testing.T) {
	s := newTestSwitch(t)
	tup := clientTuple(3)
	res1 := s.Process(0, &netproto.Packet{Tuple: tup, TCPFlags: netproto.FlagSYN})
	if err := s.InsertConn(tup, res1.Version); err != nil {
		t.Fatal(err)
	}
	res2 := s.Process(100, &netproto.Packet{Tuple: tup, TCPFlags: netproto.FlagACK})
	if !res2.ConnHit {
		t.Fatal("packet after insertion missed ConnTable")
	}
	if res2.DIP != res1.DIP {
		t.Fatalf("DIP changed across insertion: %v vs %v", res2.DIP, res1.DIP)
	}
	if v, ok := s.LookupConn(tup); !ok || v != res1.Version {
		t.Fatalf("LookupConn = (%d,%v)", v, ok)
	}
}

func TestSYNOnExistingEntryRedirects(t *testing.T) {
	s := newTestSwitch(t)
	tup := clientTuple(4)
	s.Process(0, &netproto.Packet{Tuple: tup, TCPFlags: netproto.FlagSYN})
	s.InsertConn(tup, 0)
	res := s.Process(10, &netproto.Packet{Tuple: tup, TCPFlags: netproto.FlagSYN})
	if res.Verdict != VerdictRedirectSYNConn {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	// CPU arbitration: same connection -> retransmitted SYN, no relocation.
	fixed, err := s.ResolveSYNCollision(tup, res)
	if err != nil {
		t.Fatal(err)
	}
	if fixed {
		t.Fatal("retransmitted SYN misdiagnosed as digest collision")
	}
}

func TestUpdateFlowVersions(t *testing.T) {
	s := newTestSwitch(t)
	vip := testVIP()
	// Prepare version 1 with a different pool.
	if err := s.WritePool(vip, 1, testPool(3)); err != nil {
		t.Fatal(err)
	}
	// Step 1: record pending connections.
	if err := s.SetRecording(vip, true); err != nil {
		t.Fatal(err)
	}
	pending := clientTuple(10)
	resOld := s.Process(0, &netproto.Packet{Tuple: pending, TCPFlags: netproto.FlagSYN})
	if resOld.Version != 0 {
		t.Fatalf("recording phase version = %d", resOld.Version)
	}
	if s.TransitInserts() != 1 {
		t.Fatalf("TransitInserts = %d", s.TransitInserts())
	}
	// Step 2: swap versions.
	if err := s.BeginTransition(vip, 1); err != nil {
		t.Fatal(err)
	}
	if !s.InUpdate(vip) {
		t.Fatal("InUpdate false after BeginTransition")
	}
	// The pending connection (still no ConnTable entry) must stay on v0.
	res := s.Process(100, &netproto.Packet{Tuple: pending, TCPFlags: netproto.FlagACK})
	if res.Version != 0 || !res.TransitHit {
		t.Fatalf("pending conn got version %d (transitHit=%v), want 0", res.Version, res.TransitHit)
	}
	if res.DIP != resOld.DIP {
		t.Fatal("pending connection changed DIP across the update — PCC violation")
	}
	// A brand-new connection maps to v1.
	fresh := clientTuple(11)
	resNew := s.Process(200, &netproto.Packet{Tuple: fresh, TCPFlags: netproto.FlagSYN})
	if resNew.Version != 1 {
		t.Fatalf("fresh conn version = %d, want 1", resNew.Version)
	}
	// Step 3.
	if err := s.EndTransition(vip); err != nil {
		t.Fatal(err)
	}
	s.ClearTransit()
	if s.InUpdate(vip) {
		t.Fatal("still in update after EndTransition")
	}
}

func TestNewSYNDuringTransitionRedirectsOnBloomHit(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.TransitTableBytes = 8 // tiny filter: force false positives
	cfg.TransitTableHashes = 1
	s, _ := New(cfg)
	vip := testVIP()
	s.InstallVIP(vip, 0, testPool(4), 0)
	s.WritePool(vip, 1, testPool(3))
	s.SetRecording(vip, true)
	// Record many pending connections to saturate the 8B filter.
	for i := 0; i < 500; i++ {
		s.Process(simtime.Time(i), &netproto.Packet{Tuple: clientTuple(i), TCPFlags: netproto.FlagSYN})
	}
	s.BeginTransition(vip, 1)
	// New SYNs now falsely hit the bloom and must be redirected.
	redirects := 0
	for i := 500; i < 600; i++ {
		res := s.Process(simtime.Time(i), &netproto.Packet{Tuple: clientTuple(i), TCPFlags: netproto.FlagSYN})
		if res.Verdict == VerdictRedirectSYNTransit {
			redirects++
		}
	}
	if redirects == 0 {
		t.Fatal("saturated 8B filter produced no SYN redirects")
	}
	if s.Stats().SYNRedirectTransit == 0 {
		t.Fatal("redirect counter not bumped")
	}
}

func TestDisableTransitAblation(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.DisableTransit = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vip := testVIP()
	s.InstallVIP(vip, 0, testPool(4), 0)
	s.WritePool(vip, 1, testPool(3))
	s.SetRecording(vip, true) // no-op without a filter
	pending := clientTuple(1)
	resOld := s.Process(0, &netproto.Packet{Tuple: pending, TCPFlags: netproto.FlagSYN})
	s.BeginTransition(vip, 1)
	res := s.Process(10, &netproto.Packet{Tuple: pending, TCPFlags: netproto.FlagACK})
	if res.Version != 1 {
		t.Fatalf("without TransitTable, pending conn version = %d, want 1 (the hazard)", res.Version)
	}
	_ = resOld
	if s.TransitInserts() != 0 {
		t.Fatal("disabled filter recorded inserts")
	}
}

func TestMeterDropsExcessTraffic(t *testing.T) {
	s, _ := New(DefaultConfig(1000))
	vip := testVIP()
	// 1 KB/s committed rate: the second large burst packet must go red.
	if err := s.InstallVIP(vip, 0, testPool(2), 1000); err != nil {
		t.Fatal(err)
	}
	tup := clientTuple(1)
	drops := 0
	for i := 0; i < 100; i++ {
		res := s.Process(0, &netproto.Packet{Tuple: tup, Payload: make([]byte, 1000)})
		if res.Verdict == VerdictMeterDrop {
			drops++
		}
	}
	if drops < 90 {
		t.Fatalf("meter dropped %d of 100 burst packets, want >= 90", drops)
	}
}

func TestPoolManagement(t *testing.T) {
	s := newTestSwitch(t)
	vip := testVIP()
	if err := s.WritePool(vip, 2, testPool(5)); err != nil {
		t.Fatal(err)
	}
	p, err := s.Pool(vip, 2)
	if err != nil || len(p) != 5 {
		t.Fatalf("Pool = %v, %v", p, err)
	}
	vers, _ := s.PoolVersions(vip)
	if len(vers) != 2 {
		t.Fatalf("PoolVersions = %v", vers)
	}
	if err := s.DeletePool(vip, 0); err != ErrPoolInUse {
		t.Fatalf("deleting current pool: %v", err)
	}
	if err := s.DeletePool(vip, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pool(vip, 2); err != ErrUnknownVersion {
		t.Fatalf("Pool after delete: %v", err)
	}
	if cur, _ := s.CurrentVersion(vip); cur != 0 {
		t.Fatalf("CurrentVersion = %d", cur)
	}
}

func TestVIPManagementErrors(t *testing.T) {
	s := newTestSwitch(t)
	vip := testVIP()
	if err := s.InstallVIP(vip, 1, testPool(1), 0); err != ErrVIPExists {
		t.Fatalf("duplicate InstallVIP: %v", err)
	}
	other := VIP{Addr: netip.MustParseAddr("20.0.0.2"), Port: 80, Proto: netproto.ProtoTCP}
	if err := s.WritePool(other, 0, testPool(1)); err != ErrUnknownVIP {
		t.Fatalf("WritePool unknown VIP: %v", err)
	}
	if err := s.BeginTransition(vip, 63); err != ErrUnknownVersion {
		t.Fatalf("BeginTransition unknown version: %v", err)
	}
	if err := s.InstallVIP(other, 64, testPool(1), 0); err == nil {
		t.Fatal("version beyond 6-bit field accepted")
	}
	if err := s.RemoveVIP(other); err != ErrUnknownVIP {
		t.Fatalf("RemoveVIP unknown: %v", err)
	}
	if err := s.RemoveVIP(vip); err != nil {
		t.Fatal(err)
	}
	if s.HasVIP(vip) {
		t.Fatal("VIP survives RemoveVIP")
	}
}

func TestDeleteConn(t *testing.T) {
	s := newTestSwitch(t)
	tup := clientTuple(9)
	s.InsertConn(tup, 0)
	if !s.DeleteConn(tup) {
		t.Fatal("DeleteConn returned false")
	}
	if s.DeleteConn(tup) {
		t.Fatal("double delete returned true")
	}
}

func TestSelectDIPStableWithinVersion(t *testing.T) {
	s := newTestSwitch(t)
	vip := testVIP()
	tup := clientTuple(2)
	d1, err := s.SelectDIP(vip, 0, tup)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := s.SelectDIP(vip, 0, tup)
	if d1 != d2 {
		t.Fatal("selection not deterministic")
	}
	if _, err := s.SelectDIP(vip, 42, tup); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestMemoryBreakdown(t *testing.T) {
	s := newTestSwitch(t)
	m := s.Memory()
	if m.ConnTableBytes == 0 || m.TransitBytes != 256 || m.VIPTableBytes == 0 {
		t.Fatalf("Memory = %+v", m)
	}
	if m.DIPPoolBytes != 4*6 { // 4 IPv4 DIPs x 6 B
		t.Fatalf("DIPPoolBytes = %d", m.DIPPoolBytes)
	}
	if m.Total() <= m.ConnTableBytes {
		t.Fatal("Total not summing")
	}
}

func TestLayoutModels(t *testing.T) {
	// Paper: naive IPv6 layout needs ~550 MB for 10M conns.
	naive := LayoutNaive(true)
	if mb := float64(naive.TableBytes(10_000_000)) / (1 << 20); mb < 500 || mb > 600 {
		t.Fatalf("naive 10M IPv6 = %.0f MB, want ~550", mb)
	}
	// SilkRoad layout: 28-bit entries, 4 per word.
	sr := LayoutDigestVersion(16, 6)
	if sr.EntryBits != 28 {
		t.Fatalf("EntryBits = %d", sr.EntryBits)
	}
	if got := sr.TableBytes(4); got != 14 { // one 112-bit word
		t.Fatalf("4 entries = %d bytes, want 14", got)
	}
	// 10M conns at 28b packed: 10M/4 words x 14B = 35 MB.
	if mb := float64(sr.TableBytes(10_000_000)) / (1 << 20); mb > 40 {
		t.Fatalf("SilkRoad 10M = %.0f MB, want ~33", mb)
	}
	// digest-only sits in between.
	d := LayoutDigestOnly(16, true)
	if d.EntryBits <= sr.EntryBits || d.EntryBits >= naive.EntryBits {
		t.Fatalf("digest-only entry bits = %d out of order", d.EntryBits)
	}
	if LayoutNaive(false).TableBytes(0) != 0 {
		t.Fatal("zero entries should cost zero")
	}
}

func TestProvisionedBytesFigure12Scale(t *testing.T) {
	// Peak Backend cluster: 15M IPv6 conns, 64 versions x 4187 DIPs.
	got := ProvisionedBytes(15_000_000, 16, 6, 64*4187, true)
	mb := float64(got) / (1 << 20)
	if mb < 40 || mb > 75 {
		t.Fatalf("peak Backend provisioning = %.1f MB, paper says ~58", mb)
	}
}

func TestVIPString(t *testing.T) {
	if testVIP().String() != "20.0.0.1:80/tcp" {
		t.Fatalf("VIP.String = %s", testVIP())
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := DefaultConfig(100)
	cfg.VersionBits = 99
	if _, err := New(cfg); err == nil {
		t.Fatal("bad version bits accepted")
	}
}

func BenchmarkProcessHit(b *testing.B) {
	cfg := DefaultConfig(100000)
	s, _ := New(cfg)
	s.InstallVIP(testVIP(), 0, testPool(16), 0)
	tup := clientTuple(1)
	s.Process(0, &netproto.Packet{Tuple: tup, TCPFlags: netproto.FlagSYN})
	s.InsertConn(tup, 0)
	pkt := &netproto.Packet{Tuple: tup, TCPFlags: netproto.FlagACK}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(simtime.Time(i), pkt)
	}
}

func BenchmarkProcessMiss(b *testing.B) {
	cfg := DefaultConfig(100000)
	s, _ := New(cfg)
	s.InstallVIP(testVIP(), 0, testPool(16), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := &netproto.Packet{Tuple: clientTuple(i), TCPFlags: netproto.FlagSYN}
		s.Process(simtime.Time(i), pkt)
		if s.LearnFilter().Full() {
			s.LearnFilter().Drain()
		}
	}
}
