package dataplane

// Regression tests for pipeline-correctness fixes: empty-pool drops and
// wire-length metering.

import (
	"net/netip"
	"testing"

	"repro/internal/netproto"
	"repro/internal/simtime"
)

// TestEmptyPoolDrops asserts that a packet whose VIP resolves to an empty
// DIP pool version is dropped with VerdictNoBackend rather than forwarded
// to a zero-valued DIP{}.
func TestEmptyPoolDrops(t *testing.T) {
	sw, err := New(DefaultConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	vip := testVIP()
	if err := sw.InstallVIP(vip, 0, nil, 0); err != nil {
		t.Fatal(err)
	}
	pkt := &netproto.Packet{Tuple: clientTuple(1), TCPFlags: netproto.FlagSYN}
	res := sw.Process(0, pkt)
	if res.Verdict != VerdictNoBackend {
		t.Fatalf("empty pool: verdict = %v, want %v", res.Verdict, VerdictNoBackend)
	}
	if res.DIP.IsValid() {
		t.Fatalf("empty pool: DIP = %v, want invalid", res.DIP)
	}
	if sw.Stats().NoBackend != 1 {
		t.Fatalf("NoBackend counter = %d, want 1", sw.Stats().NoBackend)
	}
	// Dropped connections must not be learned: installing ConnTable state
	// for an unroutable connection would waste SRAM and CPU.
	if res.Learned || sw.Stats().LearnOffers != 0 {
		t.Fatalf("empty-pool drop generated a learn event: %+v", res)
	}
	// Non-SYN traffic drops the same way.
	data := &netproto.Packet{Tuple: clientTuple(2), TCPFlags: netproto.FlagACK}
	if res := sw.Process(0, data); res.Verdict != VerdictNoBackend {
		t.Fatalf("data packet: verdict = %v, want %v", res.Verdict, VerdictNoBackend)
	}
}

// TestEmptyPoolDropsOnConnHit covers the ConnTable-hit path: a connection
// pinned to a version whose pool row was later emptied must drop, not
// forward to DIP{}.
func TestEmptyPoolDropsOnConnHit(t *testing.T) {
	sw, err := New(DefaultConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	vip := testVIP()
	if err := sw.InstallVIP(vip, 0, testPool(4), 0); err != nil {
		t.Fatal(err)
	}
	tup := clientTuple(7)
	if err := sw.InsertConn(tup, 0); err != nil {
		t.Fatal(err)
	}
	pkt := &netproto.Packet{Tuple: tup, TCPFlags: netproto.FlagACK}
	if res := sw.Process(0, pkt); res.Verdict != VerdictForward || !res.ConnHit {
		t.Fatalf("sanity: verdict = %v (connHit=%v), want forward hit", res.Verdict, res.ConnHit)
	}
	if err := sw.WritePool(vip, 0, nil); err != nil {
		t.Fatal(err)
	}
	res := sw.Process(0, pkt)
	if res.Verdict != VerdictNoBackend {
		t.Fatalf("hit on emptied pool: verdict = %v, want %v", res.Verdict, VerdictNoBackend)
	}
}

// TestMeterChargesWireLength asserts the VIP meter charges the packet's
// actual framed length (IPv4/IPv6 x TCP/UDP) rather than a hardcoded
// 40-byte header guess. An IPv6 UDP packet is 48 B on the wire with an
// empty payload; with CBS = EBS = 41 B it must be marked red immediately,
// while the same flow over IPv4 (28 B) passes.
func TestMeterChargesWireLength(t *testing.T) {
	sw, err := New(DefaultConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	// meterBytesPerSec r gives CBS = EBS = r/100.
	const rate = 4100 // CBS = EBS = 41 B

	vip6 := VIP{Addr: netip.MustParseAddr("2001:db8::1"), Port: 53, Proto: netproto.ProtoUDP}
	pool6 := []DIP{netip.MustParseAddrPort("[2001:db8::10]:53")}
	if err := sw.InstallVIP(vip6, 0, pool6, rate); err != nil {
		t.Fatal(err)
	}
	p6 := &netproto.Packet{Tuple: netproto.FiveTuple{
		Src: netip.MustParseAddr("2001:db8::99"), Dst: vip6.Addr,
		SrcPort: 4242, DstPort: 53, Proto: netproto.ProtoUDP,
	}}
	if got := p6.WireLen(); got != 48 {
		t.Fatalf("IPv6 UDP WireLen = %d, want 48", got)
	}
	if res := sw.Process(0, p6); res.Verdict != VerdictMeterDrop {
		t.Fatalf("IPv6 UDP at 48 B vs 41 B burst: verdict = %v, want %v",
			res.Verdict, VerdictMeterDrop)
	}

	vip4 := VIP{Addr: netip.MustParseAddr("20.0.0.9"), Port: 53, Proto: netproto.ProtoUDP}
	pool4 := []DIP{netip.MustParseAddrPort("10.0.0.1:53")}
	if err := sw.InstallVIP(vip4, 0, pool4, rate); err != nil {
		t.Fatal(err)
	}
	p4 := &netproto.Packet{Tuple: netproto.FiveTuple{
		Src: netip.MustParseAddr("1.2.3.4"), Dst: vip4.Addr,
		SrcPort: 4242, DstPort: 53, Proto: netproto.ProtoUDP,
	}}
	if got := p4.WireLen(); got != 28 {
		t.Fatalf("IPv4 UDP WireLen = %d, want 28", got)
	}
	if res := sw.Process(0, p4); res.Verdict != VerdictForward {
		t.Fatalf("IPv4 UDP at 28 B vs 41 B burst: verdict = %v, want forward", res.Verdict)
	}

	// TCP framing is charged too: 20 B IPv4 + 20 B TCP = 40 B fits a 41 B
	// burst once, and the bucket refills at CIR for the next second.
	vipT := VIP{Addr: netip.MustParseAddr("20.0.0.10"), Port: 80, Proto: netproto.ProtoTCP}
	if err := sw.InstallVIP(vipT, 0, []DIP{netip.MustParseAddrPort("10.0.0.2:80")}, rate); err != nil {
		t.Fatal(err)
	}
	pT := &netproto.Packet{Tuple: netproto.FiveTuple{
		Src: netip.MustParseAddr("1.2.3.5"), Dst: vipT.Addr,
		SrcPort: 999, DstPort: 80, Proto: netproto.ProtoTCP,
	}, TCPFlags: netproto.FlagSYN, Payload: []byte{1, 2}}
	if got := pT.WireLen(); got != 42 {
		t.Fatalf("IPv4 TCP +2B payload WireLen = %d, want 42", got)
	}
	if res := sw.Process(simtime.Time(0), pT); res.Verdict != VerdictMeterDrop {
		t.Fatalf("IPv4 TCP at 42 B vs 41 B burst: verdict = %v, want %v",
			res.Verdict, VerdictMeterDrop)
	}
}
