// Package slb implements the software load balancer baseline (Ananta [36] /
// Maglev [20] style): both VIPTable and ConnTable live in server software.
//
// Functionally an SLB is the gold standard for per-connection consistency —
// VIPTable updates are atomic with ConnTable insertions because both are
// memory writes under one lock — but it pays for that in x86 capacity: the
// paper's cost model is 12 Mpps per 8-core server and a 10 Gbps NIC, which
// is what Figure 13 divides cluster load by.
package slb

import (
	"errors"
	"math"

	"repro/internal/dataplane"
	"repro/internal/ecmp"
	"repro/internal/hashing"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

// CapacityModel is the per-server throughput model used by the paper.
type CapacityModel struct {
	PPS         float64 // packets per second (12M on 8 cores, 52B packets)
	Bps         float64 // NIC line rate in bits per second (10G)
	Connections int     // practical connection-table size per server
	PowerWatts  float64 // Intel Xeon E5-2660 class
	CostUSD     float64
}

// DefaultCapacity returns the §2.2/§6.1 SLB figures.
func DefaultCapacity() CapacityModel {
	return CapacityModel{
		PPS:         12e6,
		Bps:         10e9,
		Connections: 4_000_000,
		PowerWatts:  200,
		CostUSD:     3000,
	}
}

// ServersNeeded returns how many SLB servers a cluster needs for the given
// peak load (packets/s, bits/s, simultaneous connections).
func (c CapacityModel) ServersNeeded(peakPPS, peakBps float64, peakConns int) int {
	n := 1.0
	if c.PPS > 0 {
		n = math.Max(n, math.Ceil(peakPPS/c.PPS))
	}
	if c.Bps > 0 {
		n = math.Max(n, math.Ceil(peakBps/c.Bps))
	}
	if c.Connections > 0 {
		n = math.Max(n, math.Ceil(float64(peakConns)/float64(c.Connections)))
	}
	return int(n)
}

// Config parameterizes a Balancer.
type Config struct {
	MaglevTableSize uint64
	// ProcessingLatency is the software path's added latency (50us-1ms in
	// the paper); recorded in stats for comparisons.
	ProcessingLatency simtime.Duration
	Seed              uint64
}

// DefaultConfig returns a standard SLB configuration.
func DefaultConfig() Config {
	return Config{
		MaglevTableSize:   ecmp.SmallM,
		ProcessingLatency: simtime.Duration(300 * simtime.Microsecond),
		Seed:              0x51b,
	}
}

// Stats counts SLB activity.
type Stats struct {
	Packets      uint64
	ConnHits     uint64
	ConnInstalls uint64
	ConnsEnded   uint64
	Updates      uint64
	LatencySum   simtime.Duration
	PeakConns    int
}

type vipState struct {
	pool   []dataplane.DIP
	maglev *ecmp.Maglev
}

// Balancer is one software load balancer instance.
type Balancer struct {
	cfg   Config
	vips  map[dataplane.VIP]*vipState
	conns map[uint64]dataplane.DIP // keyHash -> assigned DIP
	stats Stats
}

// New creates an empty software load balancer.
func New(cfg Config) *Balancer {
	if cfg.MaglevTableSize == 0 {
		cfg.MaglevTableSize = ecmp.SmallM
	}
	return &Balancer{
		cfg:   cfg,
		vips:  make(map[dataplane.VIP]*vipState),
		conns: make(map[uint64]dataplane.DIP),
	}
}

// Stats returns a copy of the counters.
func (b *Balancer) Stats() Stats { return b.stats }

// Conns returns the live connection count.
func (b *Balancer) Conns() int { return len(b.conns) }

// AddVIP announces a VIP.
func (b *Balancer) AddVIP(vip dataplane.VIP, pool []dataplane.DIP) error {
	if len(pool) == 0 {
		return errors.New("slb: empty pool")
	}
	if _, dup := b.vips[vip]; dup {
		return errors.New("slb: VIP exists")
	}
	b.vips[vip] = &vipState{
		pool:   append([]dataplane.DIP(nil), pool...),
		maglev: ecmp.NewMaglev(poolNames(pool), b.cfg.MaglevTableSize, b.cfg.Seed),
	}
	return nil
}

// RemoveVIP withdraws a VIP and its connections.
func (b *Balancer) RemoveVIP(vip dataplane.VIP) {
	delete(b.vips, vip)
}

// Update atomically replaces vip's pool. Existing connections keep their
// DIP via ConnTable (software atomicity: the lock-and-buffer dance of
// §2.1 collapses to a single map swap here).
func (b *Balancer) Update(vip dataplane.VIP, pool []dataplane.DIP) error {
	vs, ok := b.vips[vip]
	if !ok {
		return errors.New("slb: unknown VIP")
	}
	if len(pool) == 0 {
		return errors.New("slb: empty pool")
	}
	vs.pool = append([]dataplane.DIP(nil), pool...)
	vs.maglev.SetMembers(poolNames(pool))
	b.stats.Updates++
	return nil
}

// Pool returns vip's current pool.
func (b *Balancer) Pool(vip dataplane.VIP) ([]dataplane.DIP, bool) {
	vs, ok := b.vips[vip]
	if !ok {
		return nil, false
	}
	return append([]dataplane.DIP(nil), vs.pool...), true
}

// keyHash derives the ConnTable key.
func (b *Balancer) keyHash(t netproto.FiveTuple) uint64 {
	var buf [37]byte
	return hashing.Hash64(b.cfg.Seed^0x5e1ec7, t.KeyBytes(buf[:]))
}

// Packet processes one packet: ConnTable hit or Maglev selection plus an
// immediate (software, atomic) ConnTable install. Returns the chosen DIP
// and false if the destination is not a VIP.
func (b *Balancer) Packet(now simtime.Time, t netproto.FiveTuple) (dataplane.DIP, bool) {
	b.stats.Packets++
	b.stats.LatencySum += b.cfg.ProcessingLatency
	kh := b.keyHash(t)
	if dip, ok := b.conns[kh]; ok {
		b.stats.ConnHits++
		return dip, true
	}
	vs, ok := b.vips[dataplane.VIPOf(t)]
	if !ok {
		return dataplane.DIP{}, false
	}
	dip := vs.pool[vs.maglev.Select(kh)]
	b.conns[kh] = dip
	b.stats.ConnInstalls++
	if len(b.conns) > b.stats.PeakConns {
		b.stats.PeakConns = len(b.conns)
	}
	return dip, true
}

// PinConnection installs an externally decided connection->DIP binding —
// the hybrid SilkRoad+SLB deployment (§7) pins switch-overflow connections
// to the DIP their packets were already hashed to. It reports whether the
// binding was newly installed (false: already pinned).
func (b *Balancer) PinConnection(t netproto.FiveTuple, dip dataplane.DIP) bool {
	kh := b.keyHash(t)
	if _, dup := b.conns[kh]; dup {
		return false
	}
	b.conns[kh] = dip
	b.stats.ConnInstalls++
	if len(b.conns) > b.stats.PeakConns {
		b.stats.PeakConns = len(b.conns)
	}
	return true
}

// HasConn reports whether the balancer holds state for t.
func (b *Balancer) HasConn(t netproto.FiveTuple) bool {
	_, ok := b.conns[b.keyHash(t)]
	return ok
}

// ConnEnd removes a terminated connection's state.
func (b *Balancer) ConnEnd(t netproto.FiveTuple) {
	kh := b.keyHash(t)
	if _, ok := b.conns[kh]; ok {
		delete(b.conns, kh)
		b.stats.ConnsEnded++
	}
}

func poolNames(pool []dataplane.DIP) []string {
	out := make([]string, len(pool))
	for i, d := range pool {
		out[i] = d.String()
	}
	return out
}
