package slb

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
)

func vip() dataplane.VIP {
	return dataplane.VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 80, Proto: netproto.ProtoTCP}
}

func pool(n int) []dataplane.DIP {
	out := make([]dataplane.DIP, n)
	for i := range out {
		out[i] = netip.MustParseAddrPort(fmt.Sprintf("10.0.0.%d:20", i+1))
	}
	return out
}

func tup(i int) netproto.FiveTuple {
	return netproto.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{1, 2, byte(i >> 8), byte(i)}),
		Dst:     netip.MustParseAddr("20.0.0.1"),
		SrcPort: uint16(1024 + i),
		DstPort: 80,
		Proto:   netproto.ProtoTCP,
	}
}

func TestServersNeededFig13Model(t *testing.T) {
	c := DefaultCapacity()
	// 40K-server DC with 15 Tbps LB traffic needs 1500 SLBs at NIC line
	// rate (§2.2).
	if got := c.ServersNeeded(0, 15e12, 0); got != 1500 {
		t.Fatalf("15Tbps needs %d SLBs, want 1500", got)
	}
	// PPS-bound case.
	if got := c.ServersNeeded(120e6, 0, 0); got != 10 {
		t.Fatalf("120Mpps needs %d, want 10", got)
	}
	// Connection-bound case.
	if got := c.ServersNeeded(0, 0, 10_000_000); got != 3 {
		t.Fatalf("10M conns needs %d, want 3", got)
	}
	// Minimum one server.
	if got := c.ServersNeeded(0, 0, 0); got != 1 {
		t.Fatalf("zero load needs %d, want 1", got)
	}
}

func TestPacketFlowAndPCC(t *testing.T) {
	b := New(DefaultConfig())
	if err := b.AddVIP(vip(), pool(8)); err != nil {
		t.Fatal(err)
	}
	first := map[int]dataplane.DIP{}
	for i := 0; i < 100; i++ {
		d, ok := b.Packet(0, tup(i))
		if !ok {
			t.Fatal("VIP not found")
		}
		first[i] = d
	}
	// Update: remove a DIP. Established connections must keep their DIP.
	if err := b.Update(vip(), pool(7)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d, _ := b.Packet(1, tup(i))
		if d != first[i] {
			t.Fatalf("conn %d moved from %v to %v across update", i, first[i], d)
		}
	}
	s := b.Stats()
	if s.ConnInstalls != 100 || s.ConnHits != 100 {
		t.Fatalf("stats: %+v", s)
	}
	if s.PeakConns != 100 {
		t.Fatalf("PeakConns = %d", s.PeakConns)
	}
}

func TestNewConnsUseNewPool(t *testing.T) {
	b := New(DefaultConfig())
	b.AddVIP(vip(), pool(8))
	removed := pool(8)[7]
	b.Update(vip(), pool(7)) // drops 10.0.0.8
	for i := 0; i < 200; i++ {
		d, _ := b.Packet(0, tup(i))
		if d == removed {
			t.Fatalf("new conn mapped to removed DIP %v", removed)
		}
	}
}

func TestConnEnd(t *testing.T) {
	b := New(DefaultConfig())
	b.AddVIP(vip(), pool(4))
	b.Packet(0, tup(1))
	if b.Conns() != 1 {
		t.Fatalf("Conns = %d", b.Conns())
	}
	b.ConnEnd(tup(1))
	if b.Conns() != 0 || b.Stats().ConnsEnded != 1 {
		t.Fatal("ConnEnd did not clean up")
	}
	b.ConnEnd(tup(1)) // idempotent
	if b.Stats().ConnsEnded != 1 {
		t.Fatal("double end counted")
	}
}

func TestUnknownVIP(t *testing.T) {
	b := New(DefaultConfig())
	if _, ok := b.Packet(0, tup(1)); ok {
		t.Fatal("packet to unknown VIP accepted")
	}
	if err := b.Update(vip(), pool(2)); err == nil {
		t.Fatal("update of unknown VIP accepted")
	}
}

func TestVIPManagement(t *testing.T) {
	b := New(DefaultConfig())
	if err := b.AddVIP(vip(), nil); err == nil {
		t.Fatal("empty pool accepted")
	}
	if err := b.AddVIP(vip(), pool(2)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddVIP(vip(), pool(2)); err == nil {
		t.Fatal("duplicate VIP accepted")
	}
	if p, ok := b.Pool(vip()); !ok || len(p) != 2 {
		t.Fatalf("Pool = %v,%v", p, ok)
	}
	if err := b.Update(vip(), nil); err == nil {
		t.Fatal("empty update accepted")
	}
	b.RemoveVIP(vip())
	if _, ok := b.Pool(vip()); ok {
		t.Fatal("pool survives RemoveVIP")
	}
}

func TestLoadSpread(t *testing.T) {
	b := New(DefaultConfig())
	b.AddVIP(vip(), pool(8))
	counts := map[dataplane.DIP]int{}
	for i := 0; i < 8000; i++ {
		d, _ := b.Packet(0, tup(i))
		counts[d]++
	}
	for d, c := range counts {
		if c < 600 || c > 1500 {
			t.Fatalf("DIP %v got %d of 8000 (imbalanced)", d, c)
		}
	}
}

func BenchmarkPacketHit(b *testing.B) {
	lb := New(DefaultConfig())
	lb.AddVIP(vip(), pool(16))
	lb.Packet(0, tup(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lb.Packet(0, tup(1))
	}
}
