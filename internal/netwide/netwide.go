// Package netwide implements §5.3 of the paper: network-wide deployment of
// SilkRoad across a Clos topology. Every switch can announce every VIP, but
// ConnTable SRAM is finite, so the operator assigns each VIP to one layer
// (ToR, Aggregation, or Core); traffic for the VIP is ECMP-split across
// that layer's switches, dividing its connection state among them.
//
// The adaptive VIP assignment is a bin-packing problem: minimize the
// maximum SRAM utilization across switches subject to per-switch SRAM and
// forwarding-capacity budgets. This package solves it with binary search
// over the bottleneck utilization plus a first-fit-decreasing feasibility
// check, and supports incremental deployment (only a subset of switches is
// SilkRoad-enabled).
package netwide

import (
	"errors"
	"fmt"
	"sort"
)

// Layer identifies a tier of the Clos fabric.
type Layer int

// Layers.
const (
	ToR Layer = iota
	Agg
	Core
	numLayers
)

// String names the layer.
func (l Layer) String() string {
	switch l {
	case ToR:
		return "ToR"
	case Agg:
		return "Agg"
	case Core:
		return "Core"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Topology describes the fabric: switch counts per layer and per-switch
// budgets. Enabled[l] is the number of SilkRoad-capable switches in layer
// l (incremental deployment: Enabled <= Count).
type Topology struct {
	Count    [3]int     // switches per layer
	Enabled  [3]int     // SilkRoad-enabled switches per layer
	SRAM     [3]int     // per-switch SRAM budget for load balancing, bytes
	Capacity [3]float64 // per-switch forwarding budget for VIP traffic, bps
}

// Uniform builds a topology with all switches enabled.
func Uniform(tors, aggs, cores, sramBytes int, capBps float64) Topology {
	return Topology{
		Count:    [3]int{tors, aggs, cores},
		Enabled:  [3]int{tors, aggs, cores},
		SRAM:     [3]int{sramBytes, sramBytes, sramBytes},
		Capacity: [3]float64{capBps, capBps, capBps},
	}
}

// VIPDemand is one VIP's resource demand: the SRAM its connections consume
// and its traffic volume. When assigned to a layer, both divide evenly
// over that layer's enabled switches (ECMP splitting).
type VIPDemand struct {
	Name       string
	SRAMBytes  int
	TrafficBps float64
}

// Assignment maps each VIP (by index into the demand slice) to a layer.
type Assignment struct {
	Layer       []Layer
	MaxSRAMUtil float64 // bottleneck SRAM utilization achieved
	MaxCapUtil  float64
}

// ErrInfeasible is returned when no assignment fits the budgets.
var ErrInfeasible = errors.New("netwide: demands do not fit any layer assignment")

// Assign computes a VIP-to-layer assignment minimizing the maximum SRAM
// utilization across switches while respecting both SRAM and capacity
// budgets on every layer.
func Assign(topo Topology, vips []VIPDemand) (Assignment, error) {
	for l := 0; l < int(numLayers); l++ {
		if topo.Enabled[l] < 0 || topo.Enabled[l] > topo.Count[l] {
			return Assignment{}, fmt.Errorf("netwide: layer %v has %d enabled of %d",
				Layer(l), topo.Enabled[l], topo.Count[l])
		}
	}
	// Binary search the bottleneck SRAM utilization u: is there an
	// assignment where every layer's total SRAM load <= u * budget and
	// capacity load <= budget?
	lo, hi := 0.0, 1.0
	feasible := func(u float64) ([]Layer, bool) { return pack(topo, vips, u) }
	if _, ok := feasible(1.0); !ok {
		return Assignment{}, ErrInfeasible
	}
	var best []Layer
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		if asg, ok := feasible(mid); ok {
			best = asg
			hi = mid
		} else {
			lo = mid
		}
	}
	if best == nil {
		best, _ = feasible(1.0)
	}
	a := Assignment{Layer: best}
	a.MaxSRAMUtil, a.MaxCapUtil = Utilization(topo, vips, best)
	return a, nil
}

// pack runs first-fit-decreasing by SRAM demand: each VIP goes to the
// enabled layer with the most remaining SRAM headroom under the cap.
func pack(topo Topology, vips []VIPDemand, u float64) ([]Layer, bool) {
	type layerState struct {
		sramFree float64
		capFree  float64
		enabled  bool
	}
	var ls [3]layerState
	for l := 0; l < 3; l++ {
		if topo.Enabled[l] > 0 {
			ls[l].enabled = true
			ls[l].sramFree = u * float64(topo.SRAM[l]) * float64(topo.Enabled[l])
			ls[l].capFree = topo.Capacity[l] * float64(topo.Enabled[l])
		}
	}
	order := make([]int, len(vips))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return vips[order[a]].SRAMBytes > vips[order[b]].SRAMBytes
	})
	out := make([]Layer, len(vips))
	for _, i := range order {
		v := vips[i]
		bestL, bestFree := -1, -1.0
		for l := 0; l < 3; l++ {
			if !ls[l].enabled {
				continue
			}
			if ls[l].sramFree >= float64(v.SRAMBytes) && ls[l].capFree >= v.TrafficBps {
				if ls[l].sramFree > bestFree {
					bestFree = ls[l].sramFree
					bestL = l
				}
			}
		}
		if bestL < 0 {
			return nil, false
		}
		ls[bestL].sramFree -= float64(v.SRAMBytes)
		ls[bestL].capFree -= v.TrafficBps
		out[i] = Layer(bestL)
	}
	return out, true
}

// Utilization computes the per-switch bottleneck SRAM and capacity
// utilization of an assignment.
func Utilization(topo Topology, vips []VIPDemand, asg []Layer) (sramUtil, capUtil float64) {
	var sram [3]float64
	var cap_ [3]float64
	for i, v := range vips {
		l := asg[i]
		sram[l] += float64(v.SRAMBytes)
		cap_[l] += v.TrafficBps
	}
	for l := 0; l < 3; l++ {
		if topo.Enabled[l] == 0 {
			if sram[l] > 0 {
				return 2, 2 // assigned to a disabled layer: over budget
			}
			continue
		}
		perSwitchSRAM := sram[l] / float64(topo.Enabled[l])
		perSwitchCap := cap_[l] / float64(topo.Enabled[l])
		if topo.SRAM[l] > 0 {
			if u := perSwitchSRAM / float64(topo.SRAM[l]); u > sramUtil {
				sramUtil = u
			}
		}
		if topo.Capacity[l] > 0 {
			if u := perSwitchCap / topo.Capacity[l]; u > capUtil {
				capUtil = u
			}
		}
	}
	return sramUtil, capUtil
}
