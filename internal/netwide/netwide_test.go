package netwide

import (
	"fmt"
	"math/rand"
	"testing"
)

func demands(n, sram int, bps float64) []VIPDemand {
	out := make([]VIPDemand, n)
	for i := range out {
		out[i] = VIPDemand{Name: fmt.Sprintf("vip%d", i), SRAMBytes: sram, TrafficBps: bps}
	}
	return out
}

func TestAssignBalances(t *testing.T) {
	topo := Uniform(8, 4, 2, 1<<20, 1e12)
	vips := demands(100, 100<<10, 1e9)
	asg, err := Assign(topo, vips)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg.Layer) != 100 {
		t.Fatal("assignment incomplete")
	}
	// Total demand 100*100KB = 10MB over 14 switches x 1MB = 14MB budget.
	// A balanced packing should land near 10/14 ~ 0.71 bottleneck.
	if asg.MaxSRAMUtil > 0.95 {
		t.Fatalf("bottleneck SRAM util = %.3f, packing is unbalanced", asg.MaxSRAMUtil)
	}
	if asg.MaxCapUtil > 1 {
		t.Fatalf("capacity exceeded: %.3f", asg.MaxCapUtil)
	}
}

func TestInfeasible(t *testing.T) {
	topo := Uniform(2, 0, 0, 1<<10, 1e9)
	topo.Enabled[Agg], topo.Enabled[Core] = 0, 0
	vips := demands(10, 1<<20, 1) // 10 MB into 2 KB
	if _, err := Assign(topo, vips); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestCapacityBound(t *testing.T) {
	// SRAM is plentiful but traffic exceeds one layer's capacity: VIPs
	// must spread across layers.
	topo := Uniform(4, 4, 4, 1<<30, 10e9)
	vips := demands(12, 1<<10, 9e9) // 108 Gbps total, 40 Gbps per layer
	asg, err := Assign(topo, vips)
	if err != nil {
		t.Fatal(err)
	}
	layerSeen := map[Layer]bool{}
	for _, l := range asg.Layer {
		layerSeen[l] = true
	}
	if len(layerSeen) < 3 {
		t.Fatalf("traffic should force use of all layers, got %v", layerSeen)
	}
	if asg.MaxCapUtil > 1 {
		t.Fatalf("capacity exceeded: %.3f", asg.MaxCapUtil)
	}
}

func TestIncrementalDeployment(t *testing.T) {
	// Only 2 of 8 ToRs are SilkRoad-enabled: the effective ToR budget
	// shrinks and more VIPs land on Agg/Core.
	full := Uniform(8, 4, 2, 1<<20, 1e12)
	partial := full
	partial.Enabled[ToR] = 2
	vips := demands(30, 200<<10, 1e9)
	fullAsg, err := Assign(full, vips)
	if err != nil {
		t.Fatal(err)
	}
	partAsg, err := Assign(partial, vips)
	if err != nil {
		t.Fatal(err)
	}
	countTor := func(a Assignment) int {
		n := 0
		for _, l := range a.Layer {
			if l == ToR {
				n++
			}
		}
		return n
	}
	if countTor(partAsg) >= countTor(fullAsg) {
		t.Fatalf("partial deployment should shift VIPs off ToRs: %d vs %d",
			countTor(partAsg), countTor(fullAsg))
	}
}

func TestBadTopology(t *testing.T) {
	topo := Uniform(2, 2, 2, 1<<20, 1e9)
	topo.Enabled[ToR] = 5 // more enabled than exist
	if _, err := Assign(topo, demands(1, 1, 1)); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestUtilizationDisabledLayer(t *testing.T) {
	topo := Uniform(2, 0, 0, 1<<20, 1e9)
	topo.Enabled[Agg] = 0
	s, c := Utilization(topo, demands(1, 100, 1), []Layer{Agg})
	if s <= 1 || c <= 1 {
		t.Fatal("assignment to disabled layer must read as over budget")
	}
}

// TestMinimizesBottleneck compares against random assignments: the solver
// must never be worse than the best of 200 random tries.
func TestMinimizesBottleneck(t *testing.T) {
	topo := Uniform(6, 3, 2, 1<<20, 1e13)
	rng := rand.New(rand.NewSource(1))
	vips := make([]VIPDemand, 40)
	for i := range vips {
		vips[i] = VIPDemand{
			Name:       fmt.Sprintf("v%d", i),
			SRAMBytes:  10<<10 + rng.Intn(400<<10),
			TrafficBps: 1e9,
		}
	}
	asg, err := Assign(topo, vips)
	if err != nil {
		t.Fatal(err)
	}
	bestRandom := 10.0
	for trial := 0; trial < 200; trial++ {
		r := make([]Layer, len(vips))
		for i := range r {
			r[i] = Layer(rng.Intn(3))
		}
		s, c := Utilization(topo, vips, r)
		if c <= 1 && s < bestRandom {
			bestRandom = s
		}
	}
	if asg.MaxSRAMUtil > bestRandom+0.01 {
		t.Fatalf("solver bottleneck %.3f worse than random best %.3f", asg.MaxSRAMUtil, bestRandom)
	}
}

func TestLayerString(t *testing.T) {
	if ToR.String() != "ToR" || Agg.String() != "Agg" || Core.String() != "Core" {
		t.Fatal("layer names")
	}
	if Layer(7).String() == "" {
		t.Fatal("unknown layer name")
	}
}
