package cluster

import (
	"errors"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

// pumpDrain drives the active drain to cutover, advancing the cluster's
// virtual clock between steps.
func pumpDrain(t *testing.T, c *Cluster, from simtime.Time) simtime.Time {
	t.Helper()
	now := from
	for i := 0; ; i++ {
		if i > 20000 {
			t.Fatal("drain did not converge")
		}
		_, done, err := c.DrainStep(now, 256)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return now
		}
		now = now.Add(simtime.Duration(simtime.Millisecond))
		c.Advance(now)
	}
}

// pumpRejoin drives the active rejoin to cutover.
func pumpRejoin(t *testing.T, c *Cluster, from simtime.Time) simtime.Time {
	t.Helper()
	now := from
	for i := 0; ; i++ {
		if i > 20000 {
			t.Fatal("rejoin did not converge")
		}
		_, done, err := c.RejoinStep(now, 256)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return now
		}
		now = now.Add(simtime.Duration(simtime.Millisecond))
		c.Advance(now)
	}
}

// establish sends SYNs for tuples [lo,hi) and returns each flow's first
// DIP and switch.
func establish(t *testing.T, c *Cluster, lo, hi int, at simtime.Time) (map[int]dataplane.DIP, map[int]int) {
	t.Helper()
	dips := map[int]dataplane.DIP{}
	sws := map[int]int{}
	now := at
	for i := lo; i < hi; i++ {
		d, sw, ok := c.Packet(now, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagSYN})
		if !ok {
			t.Fatalf("flow %d dropped at establishment", i)
		}
		dips[i] = d
		sws[i] = sw
		now = now.Add(simtime.Duration(10 * simtime.Microsecond))
	}
	return dips, sws
}

// midUpdateFlows builds a cluster where flows [0,400) are established on
// pool(8), an update to pool(7) is requested, and flows [400,480) are
// learned INSIDE the update's recording window — pinned to the retiring
// version. Returns the cluster, each flow's established DIP and switch,
// and the post-update time.
func midUpdateFlows(t *testing.T) (*Cluster, map[int]dataplane.DIP, map[int]int, simtime.Time) {
	t.Helper()
	c := newCluster(t, 3)
	dips, sws := establish(t, c, 0, 400, 0)
	c.Advance(ms(50))
	// Queue fresh learns so the update's recording window stays open,
	// then land more flows inside it: they pin to the OLD version.
	late, lateSw := establish(t, c, 400, 440, ms(100))
	if err := c.Update(ms(100), vip(), pool(7)); err != nil {
		t.Fatal(err)
	}
	mid, midSw := establish(t, c, 440, 480, ms(100).Add(simtime.Duration(100*simtime.Microsecond)))
	for i, d := range late {
		dips[i], sws[i] = d, lateSw[i]
	}
	for i, d := range mid {
		dips[i], sws[i] = d, midSw[i]
	}
	c.Advance(ms(400))
	return c, dips, sws, ms(400)
}

// TestMidUpdateFlowBreaksOnFailButSurvivesDrain pins the robustness gap
// this package closes: a flow learned mid-update is pinned to a retiring
// pool version that exists only in its own switch's ConnTable. Cold
// failover (FailSwitch) loses that state and the flow rehashes onto the
// new pool; a warm drain migrates the pinned mapping and the flow
// survives byte-for-byte.
func TestMidUpdateFlowBreaksOnFailButSurvivesDrain(t *testing.T) {
	const donor = 1

	// Cold path: FailSwitch drops the donor's table. At least one
	// old-version flow must change DIP — the documented §7 breakage.
	cold, dips, sws, now := midUpdateFlows(t)
	if err := cold.FailSwitch(donor); err != nil {
		t.Fatal(err)
	}
	broken := 0
	for i, first := range dips {
		if sws[i] != donor {
			continue
		}
		d, _, ok := cold.Packet(now, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagACK})
		if !ok || d != first {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("cold failover broke no flows — the regression this test pins is gone")
	}

	// Warm path: identical cluster, identical flows, but the donor drains
	// before going down. Every flow keeps its DIP — including those
	// pinned to the retired version mid-update.
	warm, dips, sws, now := midUpdateFlows(t)
	if err := warm.DrainSwitch(now, donor); err != nil {
		t.Fatal(err)
	}
	end := pumpDrain(t, warm, now)
	if err := warm.UpgradeSwitch(donor); err != nil {
		t.Fatal(err)
	}
	onDonor := 0
	for i, first := range dips {
		if sws[i] != donor {
			continue
		}
		onDonor++
		d, sw, ok := warm.Packet(end, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagACK})
		if !ok {
			t.Fatalf("flow %d dropped after warm drain", i)
		}
		if sw == donor {
			t.Fatalf("flow %d still routed to the drained switch", i)
		}
		if d != first {
			t.Fatalf("flow %d changed DIP across warm drain: %v -> %v", i, first, d)
		}
	}
	if onDonor == 0 {
		t.Fatal("no flows were on the drained switch")
	}
	if warm.Migrated == 0 || warm.LastHandoff.Imported == 0 {
		t.Fatalf("no migration recorded: Migrated=%d stats=%+v", warm.Migrated, warm.LastHandoff)
	}
}

// TestDrainDonorNeverPauses: the donor keeps learning new flows while
// its shard is exported — the delta stream carries them over.
func TestDrainDonorNeverPauses(t *testing.T) {
	c := newCluster(t, 3)
	dips, sws := establish(t, c, 0, 600, 0)
	c.Advance(ms(50))
	const donor = 0
	if err := c.DrainSwitch(ms(50), donor); err != nil {
		t.Fatal(err)
	}
	// Pump one bounded step, then land new flows on the donor mid-drain.
	if _, done, err := c.DrainStep(ms(51), 64); err != nil || done {
		t.Fatalf("drain finished in one bounded step (done=%v err=%v)", done, err)
	}
	late, lateSw := establish(t, c, 600, 700, ms(52))
	donorSawLate := false
	for i, sw := range lateSw {
		dips[i], sws[i] = late[i], sw
		if sw == donor {
			donorSawLate = true
		}
	}
	if !donorSawLate {
		t.Fatal("no mid-drain flow landed on the donor — packet path paused?")
	}
	end := pumpDrain(t, c, ms(53))
	if c.LastHandoff.Deltas == 0 {
		t.Fatal("mid-drain flows did not ride the delta stream")
	}
	for i, first := range dips {
		d, sw, ok := c.Packet(end, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagACK})
		if !ok {
			t.Fatalf("flow %d dropped", i)
		}
		if sw == donor {
			t.Fatalf("flow %d routed to drained switch", i)
		}
		if d != first {
			t.Fatalf("flow %d changed DIP (established on switch %d)", i, sws[i])
		}
	}
}

// TestDrainCancelRollsBack: an abandoned drain leaves the spray, the
// donor, and the receivers exactly as they were.
func TestDrainCancelRollsBack(t *testing.T) {
	c := newCluster(t, 3)
	dips, _ := establish(t, c, 0, 600, 0)
	c.Advance(ms(50))
	before := make([]int, len(c.spray))
	copy(before, c.spray)
	donorConns := c.Member(1).TrackedConns()
	peerConns := c.Member(0).TrackedConns() + c.Member(2).TrackedConns()

	if err := c.DrainSwitch(ms(50), 1); err != nil {
		t.Fatal(err)
	}
	if _, done, err := c.DrainStep(ms(51), 64); err != nil || done {
		t.Fatalf("drain finished early (done=%v err=%v)", done, err)
	}
	c.Advance(ms(60))
	if err := c.CancelDrain(ms(60)); err != nil {
		t.Fatal(err)
	}
	c.Advance(ms(70))
	for b := range c.spray {
		if c.spray[b] != before[b] {
			t.Fatal("cancel left the spray modified")
		}
	}
	if got := c.Member(1).TrackedConns(); got != donorConns {
		t.Fatalf("donor tracks %d conns after cancel, want %d", got, donorConns)
	}
	if got := c.Member(0).TrackedConns() + c.Member(2).TrackedConns(); got != peerConns {
		t.Fatalf("receivers track %d imported conns after unwind, want %d", got, peerConns)
	}
	// Traffic is undisturbed.
	for i, first := range dips {
		d, _, ok := c.Packet(ms(70), &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagACK})
		if !ok || d != first {
			t.Fatalf("flow %d disturbed by cancelled drain", i)
		}
	}
	// A second drain starts clean and completes.
	if err := c.DrainSwitch(ms(71), 1); err != nil {
		t.Fatal(err)
	}
	pumpDrain(t, c, ms(71))
}

// TestUpgradeSwitchRequiresDrain: the upgrade path refuses to take down
// a switch that still owns traffic.
func TestUpgradeSwitchRequiresDrain(t *testing.T) {
	c := newCluster(t, 3)
	if err := c.UpgradeSwitch(0); !errors.Is(err, ErrNotDrained) {
		t.Fatalf("undrained upgrade: %v, want ErrNotDrained", err)
	}
	if err := c.DrainSwitch(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.DrainSwitch(0, 1); !errors.Is(err, ErrTransferActive) {
		t.Fatalf("overlapping drain: %v, want ErrTransferActive", err)
	}
	pumpDrain(t, c, 0)
	if err := c.UpgradeSwitch(0); err != nil {
		t.Fatal(err)
	}
	if c.AliveCount() != 2 {
		t.Fatal("upgrade did not take the switch down")
	}
	if err := c.UpgradeSwitch(0); err == nil {
		t.Fatal("double upgrade accepted")
	}
}

// TestDrainBackstopPins: when a receiver cannot host an entry (VIP
// withdrawn there), the drain pins the flow to the SLB backstop with its
// donor-resolved DIP instead of dropping it.
func TestDrainBackstopPins(t *testing.T) {
	c := newCluster(t, 2)
	_, sws := establish(t, c, 0, 400, 0)
	c.Advance(ms(50))
	onDonor := 0
	for _, sw := range sws {
		if sw == 0 {
			onDonor++
		}
	}
	// The only peer withdraws the VIP: imports fail terminally.
	if err := c.Member(1).RemoveVIP(ms(50), vip()); err != nil {
		t.Fatal(err)
	}
	pinned := map[netproto.FiveTuple]dataplane.DIP{}
	c.SetBackstop(
		func(now simtime.Time, tu netproto.FiveTuple, dip dataplane.DIP) bool {
			pinned[tu] = dip
			return true
		},
		func(now simtime.Time, tu netproto.FiveTuple) { delete(pinned, tu) },
	)
	if err := c.DrainSwitch(ms(51), 0); err != nil {
		t.Fatal(err)
	}
	pumpDrain(t, c, ms(51))
	if int(c.BackstopPins) != onDonor || len(pinned) != onDonor {
		t.Fatalf("backstop pinned %d/%d flows (counter %d)", len(pinned), onDonor, c.BackstopPins)
	}
}

// TestShadowDIP: the cluster-wide PCC probe follows the spray and
// resolves the pinned backend, before and after a migration.
func TestShadowDIP(t *testing.T) {
	c := newCluster(t, 3)
	dips, sws := establish(t, c, 0, 300, 0)
	c.Advance(ms(50))
	for i, first := range dips {
		m, d, ok := c.ShadowDIP(vip(), tup(i))
		if !ok || m != sws[i] || d != first {
			t.Fatalf("flow %d shadow mismatch: member=%d dip=%v ok=%v", i, m, d, ok)
		}
	}
	if err := c.DrainSwitch(ms(50), 2); err != nil {
		t.Fatal(err)
	}
	pumpDrain(t, c, ms(50))
	for i, first := range dips {
		m, d, ok := c.ShadowDIP(vip(), tup(i))
		if !ok {
			t.Fatalf("flow %d lost its shadow after drain", i)
		}
		if m == 2 {
			t.Fatalf("flow %d shadow still on drained member", i)
		}
		if d != first {
			t.Fatalf("flow %d shadow DIP moved: %v -> %v", i, first, d)
		}
	}
}
