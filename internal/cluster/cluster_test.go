package cluster

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

func vip() dataplane.VIP {
	return dataplane.VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 80, Proto: netproto.ProtoTCP}
}

func pool(n int) []dataplane.DIP {
	out := make([]dataplane.DIP, n)
	for i := range out {
		out[i] = netip.MustParseAddrPort(fmt.Sprintf("10.0.0.%d:20", i+1))
	}
	return out
}

func tup(i int) netproto.FiveTuple {
	return netproto.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{1, byte(i >> 16), byte(i >> 8), byte(i)}),
		Dst:     netip.MustParseAddr("20.0.0.1"),
		SrcPort: uint16(1024 + i%60000), DstPort: 80, Proto: netproto.ProtoTCP,
	}
}

func ms(n int) simtime.Time { return simtime.Time(n) * simtime.Time(simtime.Millisecond) }

func newCluster(t *testing.T, switches int) *Cluster {
	t.Helper()
	c, err := New(DefaultConfig(switches, 50000))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddVIP(0, vip(), pool(8)); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSprayDistributesConnections(t *testing.T) {
	c := newCluster(t, 4)
	perSwitch := map[int]int{}
	for i := 0; i < 2000; i++ {
		_, sw, ok := c.Packet(simtime.Time(i)*1000, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagSYN})
		if !ok {
			t.Fatal("packet dropped")
		}
		perSwitch[sw]++
	}
	for i := 0; i < 4; i++ {
		if perSwitch[i] < 300 || perSwitch[i] > 700 {
			t.Fatalf("switch %d got %d of 2000 (imbalanced): %v", i, perSwitch[i], perSwitch)
		}
	}
	c.Advance(ms(100))
	if got := c.TotalConns(); got != 2000 {
		t.Fatalf("TotalConns = %d", got)
	}
}

func TestSameMappingAcrossSwitches(t *testing.T) {
	// Switches share hash seeds: a given connection maps to the same DIP
	// regardless of which switch serves it — the property that makes
	// failover work for latest-version connections.
	c := newCluster(t, 3)
	for i := 0; i < 200; i++ {
		tuple := tup(i)
		pkt := &netproto.Packet{Tuple: tuple, TCPFlags: netproto.FlagSYN}
		var dips []dataplane.DIP
		for s := 0; s < 3; s++ {
			d, err := c.Member(s).Switch().SelectDIP(vip(), 0, tuple)
			if err != nil {
				t.Fatal(err)
			}
			dips = append(dips, d)
		}
		if dips[0] != dips[1] || dips[1] != dips[2] {
			t.Fatalf("conn %d maps differently across switches: %v", i, dips)
		}
		_ = pkt
	}
}

// TestSwitchFailureLatestVersionSurvives reproduces §7's failure claim:
// after a switch dies, its latest-version connections land on survivors
// with the same DIP; only stale-version connections break.
func TestSwitchFailureLatestVersionSurvives(t *testing.T) {
	c := newCluster(t, 4)
	first := map[int]dataplane.DIP{}
	firstSwitch := map[int]int{}
	const conns = 1200
	now := simtime.Time(0)
	for i := 0; i < conns; i++ {
		d, sw, ok := c.Packet(now, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagSYN})
		if !ok {
			t.Fatal("drop")
		}
		first[i] = d
		firstSwitch[i] = sw
		now = now.Add(simtime.Duration(10 * simtime.Microsecond))
	}
	c.Advance(now.Add(simtime.Duration(simtime.Second)))
	// All connections are on version 0, the latest everywhere. Fail one
	// switch: every redirected connection must keep its DIP.
	if err := c.FailSwitch(2); err != nil {
		t.Fatal(err)
	}
	if c.AliveCount() != 3 {
		t.Fatal("AliveCount wrong")
	}
	moved, redirected := 0, 0
	for i := 0; i < conns; i++ {
		d, sw, ok := c.Packet(now, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagACK})
		if !ok {
			t.Fatalf("conn %d dropped after failover", i)
		}
		if firstSwitch[i] == 2 {
			redirected++
			if sw == 2 {
				t.Fatal("packet routed to dead switch")
			}
		} else if sw != firstSwitch[i] {
			t.Fatalf("conn %d moved switches (%d->%d) though its switch is healthy", i, firstSwitch[i], sw)
		}
		if d != first[i] {
			moved++
		}
	}
	if redirected == 0 {
		t.Fatal("no connections were on the failed switch")
	}
	if moved != 0 {
		t.Fatalf("%d latest-version connections changed DIP across switch failure, want 0", moved)
	}
}

// TestSwitchFailureStaleVersionBreaks: connections pinned to an OLD pool
// version at the failed switch lose that pinning (the new switch's
// ConnTable doesn't know them) and rehash onto the latest pool — the
// breakage §7 concedes.
func TestSwitchFailureStaleVersionBreaks(t *testing.T) {
	c := newCluster(t, 4)
	const conns = 1200
	now := simtime.Time(0)
	first := map[int]dataplane.DIP{}
	firstSwitch := map[int]int{}
	for i := 0; i < conns; i++ {
		d, sw, _ := c.Packet(now, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagSYN})
		first[i] = d
		firstSwitch[i] = sw
		now = now.Add(simtime.Duration(10 * simtime.Microsecond))
	}
	c.Advance(now.Add(simtime.Duration(simtime.Second)))
	// Update: drop one DIP. Established conns stay pinned to v0 at their
	// own switch.
	if err := c.Update(now, vip(), pool(7)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(simtime.Duration(200 * simtime.Millisecond))
	c.Advance(now)
	// Fail a switch: its conns (pinned to the OLD version there) land on
	// survivors, which only know the new pool for misses.
	c.FailSwitch(1)
	movedRedirected, movedStayed := 0, 0
	for i := 0; i < conns; i++ {
		d, _, ok := c.Packet(now, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagACK})
		if !ok {
			continue
		}
		if d != first[i] {
			if firstSwitch[i] == 1 {
				movedRedirected++
			} else {
				movedStayed++
			}
		}
	}
	if movedRedirected == 0 {
		t.Fatal("stale-version conns on the failed switch should break (~7/8 remap)")
	}
	if movedStayed != 0 {
		t.Fatalf("%d conns on healthy switches moved", movedStayed)
	}
}

func TestRestoreSwitch(t *testing.T) {
	c := newCluster(t, 3)
	c.FailSwitch(0)
	if err := c.RestoreSwitch(0); err != nil {
		t.Fatal(err)
	}
	if c.AliveCount() != 3 {
		t.Fatal("restore failed")
	}
	// A restored switch has a COLD table: it must not take traffic until
	// it has rejoined. Its old buckets stay with the survivors.
	for i := 5000; i < 5400; i++ {
		_, sw, ok := c.Packet(ms(1), &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagSYN})
		if sw == 0 {
			t.Fatal("cold restored switch received traffic before rejoin")
		}
		if !ok {
			t.Fatal("survivor dropped a packet")
		}
	}
	// The warm gate holds until the VIPs are re-announced.
	if err := c.RejoinSwitch(ms(2), 0); err != ErrNotWarm {
		t.Fatalf("rejoin before re-announce: %v, want ErrNotWarm", err)
	}
	latest, _ := c.Member(1).CurrentPool(vip())
	if err := c.ReannounceTo(ms(2), 0, map[dataplane.VIP][]dataplane.DIP{vip(): latest}); err != nil {
		t.Fatal(err)
	}
	c.Advance(ms(3))
	if err := c.RejoinSwitch(ms(3), 0); err != nil {
		t.Fatal(err)
	}
	end := pumpRejoin(t, c, ms(4))
	// Buckets are back and the warm member serves.
	served := false
	for i := 5000; i < 5400; i++ {
		_, sw, ok := c.Packet(end, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagACK})
		if sw == 0 {
			if !ok {
				t.Fatal("rejoined switch dropped a packet")
			}
			served = true
		}
	}
	if !served {
		t.Fatal("no traffic reached the rejoined switch")
	}
}

func TestFailureErrors(t *testing.T) {
	c := newCluster(t, 2)
	if err := c.FailSwitch(9); err == nil {
		t.Fatal("bad index accepted")
	}
	if err := c.RestoreSwitch(0); err == nil {
		t.Fatal("restoring a live switch accepted")
	}
	c.FailSwitch(0)
	if err := c.FailSwitch(0); err == nil {
		t.Fatal("double failure accepted")
	}
	if err := c.FailSwitch(1); err == nil {
		t.Fatal("failing the last switch accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestClusterWideUpdateKeepsPCC(t *testing.T) {
	c := newCluster(t, 4)
	const conns = 800
	now := simtime.Time(0)
	first := map[int]dataplane.DIP{}
	for i := 0; i < conns; i++ {
		d, _, _ := c.Packet(now, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagSYN})
		first[i] = d
		now = now.Add(simtime.Duration(10 * simtime.Microsecond))
	}
	c.Advance(now.Add(simtime.Duration(simtime.Second)))
	if err := c.Update(now, vip(), pool(7)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(simtime.Duration(200 * simtime.Millisecond))
	c.Advance(now)
	for i := 0; i < conns; i++ {
		d, _, ok := c.Packet(now, &netproto.Packet{Tuple: tup(i), TCPFlags: netproto.FlagACK})
		if ok && d != first[i] {
			t.Fatalf("conn %d moved across cluster-wide update", i)
		}
	}
}
