package cluster

import (
	"errors"

	"repro/internal/dataplane"
	"repro/internal/intent"
	"repro/internal/simtime"
)

// ErrSwitchDown is returned by reconcile writes against an out-of-service
// member: the reconciler treats it like any transient apply failure and
// retries with backoff until the switch is restored (or the rollout rolls
// back).
var ErrSwitchDown = errors.New("cluster: switch out of service")

// memberTarget adapts one member as an intent.Target. It holds the
// *member, not its planes: RestoreSwitch replaces sw/cp with fresh ones,
// and the adapter must follow so post-restore reconciles (and the drift
// scans that re-install lost VIPs) hit the new instance.
type memberTarget struct{ m *member }

func (t memberTarget) ObservedVIPs() []dataplane.VIP {
	if !t.m.alive {
		return nil
	}
	return t.m.sw.VIPs()
}

func (t memberTarget) ObservedPool(vip dataplane.VIP) ([]dataplane.DIP, bool) {
	if !t.m.alive {
		return nil, false
	}
	pool, err := t.m.cp.TargetPool(vip)
	return pool, err == nil
}

func (t memberTarget) AddVIP(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP, meterBytesPerSec float64) error {
	if !t.m.alive {
		return ErrSwitchDown
	}
	return t.m.cp.AddVIP(now, vip, pool, meterBytesPerSec)
}

func (t memberTarget) RemoveVIP(now simtime.Time, vip dataplane.VIP) error {
	if !t.m.alive {
		return ErrSwitchDown
	}
	return t.m.cp.RemoveVIP(now, vip)
}

func (t memberTarget) UpdatePool(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	if !t.m.alive {
		return ErrSwitchDown
	}
	return t.m.cp.RequestUpdate(now, vip, pool)
}

func (t memberTarget) PendingWork() int {
	if !t.m.alive {
		return 0
	}
	return t.m.cp.PendingWork()
}

// Target adapts member i as an intent.Target (fleet reconciliation).
func (c *Cluster) Target(i int) intent.Target { return memberTarget{c.members[i]} }

// clusterFleet adapts the deployment as an intent.Fleet.
type clusterFleet struct{ c *Cluster }

func (f clusterFleet) Members() int               { return len(f.c.members) }
func (f clusterFleet) Target(i int) intent.Target { return f.c.Target(i) }

// Fleet exposes the deployment to an intent.ClusterReconciler: rolling
// spec-driven updates replace the hand-rolled AddVIP/Update loops above.
func (c *Cluster) Fleet() intent.Fleet { return clusterFleet{c} }
