package cluster

import (
	"errors"
	"sort"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/handoff"
	"repro/internal/hashing"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

// Handoff orchestration errors.
var (
	// ErrTransferActive rejects overlapping drains/rejoins: the cluster
	// runs one connection-state transfer at a time.
	ErrTransferActive = errors.New("cluster: a drain or rejoin is already active")
	// ErrNoTransfer is returned by step/cancel calls with nothing active.
	ErrNoTransfer = errors.New("cluster: no active drain or rejoin")
	// ErrNotDrained rejects UpgradeSwitch while spray buckets still point
	// at the switch — take-down before migration would drop its flows.
	ErrNotDrained = errors.New("cluster: switch still owns spray buckets")
	// ErrNotWarm rejects RejoinSwitch until the member has every VIP a
	// healthy peer announces and no pending control-plane work — the gate
	// that keeps a rebooted member from taking traffic with a cold table.
	// It aliases handoff.ErrNotWarm so the upgrade orchestrator can match
	// it without importing this package.
	ErrNotWarm = handoff.ErrNotWarm
	// ErrNoPeer rejects a drain with no alive peer to migrate to.
	ErrNoPeer = errors.New("cluster: no alive peer to migrate to")
)

// bucketOf returns the resilient-ECMP bucket a tuple hashes to (the
// stable routing key; sprayIndex is spray[bucketOf]).
func (c *Cluster) bucketOf(t netproto.FiveTuple) int {
	var buf [37]byte
	h := hashing.Hash64(c.cfg.SpraySeed, t.KeyBytes(buf[:]))
	return int(h % uint64(len(c.spray)))
}

// SetBackstop registers the software-load-balancer backstop (§7's
// "ConnTable as a cache" taken fleet-wide; internal/hybrid wires an
// slb.Balancer here). During a drain, an entry whose peer import fails
// terminally — version space exhausted, VIP withdrawn — is pinned to the
// backstop with its donor-resolved DIP instead of being dropped, so the
// flow survives even when the switching tier cannot hold it. end is
// called on delta deletes so the backstop releases its pin.
func (c *Cluster) SetBackstop(pin func(now simtime.Time, t netproto.FiveTuple, dip dataplane.DIP) bool,
	end func(now simtime.Time, t netproto.FiveTuple)) {
	c.backstop, c.backstopEnd = pin, end
}

// drainState is one in-flight DrainSwitch.
type drainState struct {
	donor   int
	tr      *handoff.Transfer
	planned map[int]int                 // donor bucket -> destination member
	ims     map[int]*ctrlplane.Importer // per destination
	dests   []int                       // sorted destination members
}

// routeImporter fans a donor's export across the planned destinations:
// each entry lands on the member its bucket will spray to after cutover,
// so cutover changes nothing about where the connection's state lives.
type routeImporter struct {
	c *Cluster
	d *drainState
}

func (r routeImporter) Import(now simtime.Time, e handoff.Entry) error {
	dest, ok := r.d.planned[r.c.bucketOf(e.Tuple)]
	if !ok {
		return nil // not a donor bucket (stale entry); nothing to move
	}
	err := r.d.ims[dest].Import(now, e)
	if err != nil && !errors.Is(err, handoff.ErrBackpressure) &&
		r.c.backstop != nil && e.DIP.IsValid() {
		if r.c.backstop(now, e.Tuple, e.DIP) {
			r.c.BackstopPins++
			return nil
		}
	}
	return err
}

func (r routeImporter) Delete(now simtime.Time, e handoff.Entry) {
	if dest, ok := r.d.planned[r.c.bucketOf(e.Tuple)]; ok {
		r.d.ims[dest].Delete(now, e)
	}
	if r.c.backstopEnd != nil {
		r.c.backstopEnd(now, e.Tuple)
	}
}

// DrainSwitch begins warm-migrating switch i's shard to the surviving
// peers: a conn-table export session opens on the donor and the planned
// post-drain spray is computed (the same redistribution FailSwitch would
// apply) WITHOUT touching the live spray — the donor keeps forwarding at
// full rate while DrainStep pumps its state out. Cutover happens inside
// DrainStep at a quiescent instant, so the receivers hold the donor's
// exact table the moment they start seeing its traffic.
func (c *Cluster) DrainSwitch(now simtime.Time, i int) error {
	if c.drain != nil || c.rejoin != nil {
		return ErrTransferActive
	}
	if i < 0 || i >= len(c.members) {
		return errors.New("cluster: no such switch")
	}
	m := c.members[i]
	if !m.alive {
		return errors.New("cluster: cannot drain a failed switch")
	}
	var survivors []int
	for j, o := range c.members {
		if j != i && o.alive {
			survivors = append(survivors, j)
		}
	}
	if len(survivors) == 0 {
		return ErrNoPeer
	}
	planned := make(map[int]int)
	k := 0
	for b := range c.spray {
		if c.spray[b] == i {
			planned[b] = survivors[k%len(survivors)]
			k++
		}
	}
	ims := make(map[int]*ctrlplane.Importer, len(survivors))
	for _, s := range survivors {
		ims[s] = ctrlplane.NewImporter(c.members[s].cp)
	}
	d := &drainState{donor: i, planned: planned, ims: ims, dests: survivors}
	d.tr = handoff.NewTransfer(m.cp.BeginExport(now), routeImporter{c, d}, handoff.Config{
		ChunkSize: 128, Tracer: m.sw.Tracer(), Donor: i, Receiver: -1,
	})
	c.drain = d
	return nil
}

// DrainStep pumps the active drain: up to budget records move (budget
// <= 0 means unbounded), pausing on receiver backpressure. When the
// transfer has converged AND the donor and every receiver are quiescent
// (no pending learns, inserts or updates — so no straggler could install
// after cutover), the spray flips to the planned destinations atomically
// and the drain completes. Returns the records moved this call — the
// progress signal stall detection watches.
func (c *Cluster) DrainStep(now simtime.Time, budget int) (moved int, done bool, err error) {
	d := c.drain
	if d == nil {
		return 0, false, ErrNoTransfer
	}
	moved, tdone := d.tr.Step(now, budget)
	if !tdone || c.members[d.donor].cp.PendingWork() > 0 {
		return moved, false, nil
	}
	for _, dest := range d.dests {
		if c.members[dest].cp.PendingWork() > 0 {
			return moved, false, nil
		}
	}
	// Quiescent instant: receivers hold the donor's exact shard. Cut over.
	for b, dest := range d.planned {
		c.spray[b] = dest
	}
	c.Migrated += uint64(len(d.planned))
	d.tr.Finish(now)
	c.LastHandoff = d.tr.Stats()
	c.drain = nil
	return moved, true, nil
}

// CancelDrain abandons the active drain (stall rollback): the receivers
// unwind every imported entry, the donor keeps its table and its
// traffic, and the spray is untouched.
func (c *Cluster) CancelDrain(now simtime.Time) error {
	d := c.drain
	if d == nil {
		return ErrNoTransfer
	}
	d.tr.Cancel(now)
	for _, dest := range d.dests {
		d.ims[dest].Unwind(now)
	}
	c.drain = nil
	return nil
}

// Draining returns the active drain's donor, if any.
func (c *Cluster) Draining() (donor int, active bool) {
	if c.drain == nil {
		return 0, false
	}
	return c.drain.donor, true
}

// UpgradeSwitch takes a DRAINED switch out of service: unlike
// FailSwitch it refuses while any spray bucket still points at i, so an
// upgrade can never drop flows that were not migrated first.
func (c *Cluster) UpgradeSwitch(i int) error {
	if i < 0 || i >= len(c.members) {
		return errors.New("cluster: no such switch")
	}
	m := c.members[i]
	if !m.alive {
		return errors.New("cluster: switch already out of service")
	}
	for b := range c.spray {
		if c.spray[b] == i {
			return ErrNotDrained
		}
	}
	m.alive = false
	return nil
}

// rejoinState is one in-flight RejoinSwitch: reverse migration of the
// member's original buckets from every survivor currently holding them.
type rejoinState struct {
	member  int
	donors  []int
	trs     map[int]*handoff.Transfer
	ims     map[int]*ctrlplane.Importer
	buckets map[int]bool // buckets to reclaim at cutover
}

// filterImporter admits only entries whose bucket is being reclaimed —
// donors export their whole shard; the rejoin takes just the slice that
// originally belonged to the returning member.
type filterImporter struct {
	c       *Cluster
	buckets map[int]bool
	inner   *ctrlplane.Importer
}

func (f filterImporter) Import(now simtime.Time, e handoff.Entry) error {
	if !f.buckets[f.c.bucketOf(e.Tuple)] {
		return nil
	}
	return f.inner.Import(now, e)
}

func (f filterImporter) Delete(now simtime.Time, e handoff.Entry) {
	if f.buckets[f.c.bucketOf(e.Tuple)] {
		f.inner.Delete(now, e)
	}
}

// RejoinSwitch begins migrating member i's original spray buckets back
// after a restore + re-announce. It is gated on warmth: the member must
// be alive, announce every VIP a healthy peer announces, and have no
// pending control-plane work — the drain-gated re-entry path that keeps
// a cold member from taking traffic (ErrNotWarm until then; callers
// retry as the reconciler converges the member). Traffic moves only at
// RejoinStep's quiescent cutover, after the state has moved.
func (c *Cluster) RejoinSwitch(now simtime.Time, i int) error {
	if c.drain != nil || c.rejoin != nil {
		return ErrTransferActive
	}
	if i < 0 || i >= len(c.members) {
		return errors.New("cluster: no such switch")
	}
	if err := c.warmCheck(i); err != nil {
		return err
	}
	buckets := make(map[int]bool)
	donorSet := make(map[int]bool)
	for b := range c.spray {
		if c.origin[b] == i && c.spray[b] != i {
			buckets[b] = true
			donorSet[c.spray[b]] = true
		}
	}
	rj := &rejoinState{
		member: i, buckets: buckets,
		trs: make(map[int]*handoff.Transfer),
		ims: make(map[int]*ctrlplane.Importer),
	}
	for d := range donorSet {
		rj.donors = append(rj.donors, d)
	}
	sort.Ints(rj.donors)
	for _, d := range rj.donors {
		im := ctrlplane.NewImporter(c.members[i].cp)
		rj.ims[d] = im
		rj.trs[d] = handoff.NewTransfer(c.members[d].cp.BeginExport(now),
			filterImporter{c, buckets, im}, handoff.Config{
				ChunkSize: 128, Tracer: c.members[d].sw.Tracer(), Donor: d, Receiver: i,
			})
	}
	c.rejoin = rj
	return nil
}

// warmCheck verifies member i can serve: every VIP a healthy peer
// announces is installed and no control-plane work is pending.
func (c *Cluster) warmCheck(i int) error {
	m := c.members[i]
	if !m.alive {
		return ErrNotWarm
	}
	for j, o := range c.members {
		if j == i || !o.alive {
			continue
		}
		for _, vip := range o.sw.VIPs() {
			if !m.sw.HasVIP(vip) {
				return ErrNotWarm
			}
		}
		break
	}
	if m.cp.PendingWork() > 0 {
		return ErrNotWarm
	}
	return nil
}

// RejoinStep pumps the active rejoin across every donor. When all
// transfers have converged and the donors and the member are quiescent,
// the reclaimed buckets flip back and each donor releases its copies of
// the migrated connections (state ownership moves with the traffic).
func (c *Cluster) RejoinStep(now simtime.Time, budget int) (moved int, done bool, err error) {
	rj := c.rejoin
	if rj == nil {
		return 0, false, ErrNoTransfer
	}
	allDone := true
	for _, d := range rj.donors {
		mv, tdone := rj.trs[d].Step(now, budget)
		moved += mv
		if !tdone || c.members[d].cp.PendingWork() > 0 {
			allDone = false
		}
	}
	if !allDone || c.members[rj.member].cp.PendingWork() > 0 {
		return moved, false, nil
	}
	for b := range rj.buckets {
		c.spray[b] = rj.member
	}
	c.Migrated += uint64(len(rj.buckets))
	for _, d := range rj.donors {
		for _, tup := range rj.ims[d].Imported() {
			c.members[d].cp.EndImported(now, tup)
		}
		rj.trs[d].Finish(now)
		c.LastHandoff = rj.trs[d].Stats()
	}
	c.rejoin = nil
	return moved, true, nil
}

// CancelRejoin abandons the active rejoin: the member unwinds every
// imported entry and the donors keep serving their buckets.
func (c *Cluster) CancelRejoin(now simtime.Time) error {
	rj := c.rejoin
	if rj == nil {
		return ErrNoTransfer
	}
	for _, d := range rj.donors {
		rj.trs[d].Cancel(now)
		rj.ims[d].Unwind(now)
	}
	c.rejoin = nil
	return nil
}

// Rejoining returns the active rejoin's member, if any.
func (c *Cluster) Rejoining() (member int, active bool) {
	if c.rejoin == nil {
		return 0, false
	}
	return c.rejoin.member, true
}

// ShadowDIP resolves a connection's pinned backend through the
// exact-tuple shadow of whichever switch its tuple currently sprays to —
// the cluster-wide PCC ground truth. Version numbers are switch-local,
// so cross-member PCC is checked by DIP: shared hash seeds guarantee the
// same pool content selects the same backend on any member.
func (c *Cluster) ShadowDIP(vip dataplane.VIP, t netproto.FiveTuple) (member int, dip dataplane.DIP, ok bool) {
	i := c.sprayIndex(t)
	m := c.members[i]
	if !m.alive {
		return i, dataplane.DIP{}, false
	}
	v, found := m.sw.LookupConn(t)
	if !found {
		return i, dataplane.DIP{}, false
	}
	d, err := m.sw.SelectDIP(vip, v, t)
	if err != nil || !d.IsValid() {
		return i, dataplane.DIP{}, false
	}
	return i, d, true
}
