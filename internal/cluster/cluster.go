// Package cluster models a network-wide SilkRoad deployment (§5.3/§7):
// every switch in a layer announces every VIP, upstream routers spray
// connections across the switches with resilient ECMP, and each switch
// holds ConnTable state only for the connections sprayed to it.
//
// The package exists to exercise the paper's two network-wide claims:
//
//   - DIP pool updates are applied to every switch; because all switches
//     run the same VIPTable and the same hash functions, a connection
//     that lands on any switch while on the *latest* pool version maps to
//     the same DIP everywhere.
//   - When a switch fails, its connections are redirected to the
//     surviving switches by ECMP. Connections that were using the latest
//     version keep their DIP (the new switch computes the same mapping);
//     connections pinned to an older version at the failed switch can
//     break — "the same issue with an SLB failure in the software load
//     balancing case" (§7).
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/handoff"
	"repro/internal/hashing"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

// Config parameterizes a deployment.
type Config struct {
	Switches         int
	BucketsPerSwitch int // resilient-ECMP spray granularity
	Dataplane        dataplane.Config
	Controlplane     ctrlplane.Config
	SpraySeed        uint64
}

// DefaultConfig returns an n-switch deployment where each switch is
// provisioned for connsPerSwitch connections.
func DefaultConfig(n, connsPerSwitch int) Config {
	return Config{
		Switches:         n,
		BucketsPerSwitch: 128,
		Dataplane:        dataplane.DefaultConfig(connsPerSwitch),
		Controlplane:     ctrlplane.DefaultConfig(),
		SpraySeed:        0x5b4a7,
	}
}

type member struct {
	sw    *dataplane.Switch
	cp    *ctrlplane.ControlPlane
	alive bool
}

// Cluster is one layer's SilkRoad deployment.
type Cluster struct {
	cfg     Config
	members []*member
	// spray is the upstream resilient-ECMP table: bucket -> switch index.
	spray  []int
	origin []int // original owner of each bucket (for rejoin)

	// in-flight connection-state transfers (handoff.go)
	drain  *drainState
	rejoin *rejoinState
	// SLB backstop hooks (SetBackstop)
	backstop    func(now simtime.Time, t netproto.FiveTuple, dip dataplane.DIP) bool
	backstopEnd func(now simtime.Time, t netproto.FiveTuple)

	// stats
	Redirected   uint64        // connections moved cold by switch failures
	Migrated     uint64        // spray buckets moved warm by drains/rejoins
	BackstopPins uint64        // entries pinned to the SLB backstop
	LastHandoff  handoff.Stats // counters of the last completed transfer
}

// New builds the deployment. All switches share hash seeds (the paper's
// design requires identical VIPTable behaviour across switches).
func New(cfg Config) (*Cluster, error) {
	if cfg.Switches <= 0 {
		return nil, errors.New("cluster: need at least one switch")
	}
	if cfg.BucketsPerSwitch <= 0 {
		cfg.BucketsPerSwitch = 128
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Switches; i++ {
		sw, err := dataplane.New(cfg.Dataplane)
		if err != nil {
			return nil, fmt.Errorf("cluster: switch %d: %w", i, err)
		}
		c.members = append(c.members, &member{
			sw:    sw,
			cp:    ctrlplane.New(sw, cfg.Controlplane),
			alive: true,
		})
	}
	n := cfg.Switches * cfg.BucketsPerSwitch
	c.spray = make([]int, n)
	c.origin = make([]int, n)
	for i := range c.spray {
		c.spray[i] = i % cfg.Switches
		c.origin[i] = i % cfg.Switches
	}
	return c, nil
}

// Switches returns the number of switches.
func (c *Cluster) Switches() int { return len(c.members) }

// Member exposes switch i's control plane (inspection, direct driving).
func (c *Cluster) Member(i int) *ctrlplane.ControlPlane { return c.members[i].cp }

// AliveCount returns the number of healthy switches.
func (c *Cluster) AliveCount() int {
	n := 0
	for _, m := range c.members {
		if m.alive {
			n++
		}
	}
	return n
}

// Alive reports whether switch i is in service.
func (c *Cluster) Alive(i int) bool { return c.members[i].alive }

// AddVIP announces a VIP on every switch.
func (c *Cluster) AddVIP(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	for i, m := range c.members {
		if err := m.cp.AddVIP(now, vip, pool, 0); err != nil {
			return fmt.Errorf("cluster: switch %d: %w", i, err)
		}
	}
	return nil
}

// Update applies a PCC-preserving DIP pool update on every switch — the
// network-wide equivalent of one operational change.
func (c *Cluster) Update(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	for i, m := range c.members {
		if err := m.cp.RequestUpdate(now, vip, pool); err != nil {
			return fmt.Errorf("cluster: switch %d: %w", i, err)
		}
	}
	return nil
}

// sprayIndex picks the switch for a connection.
func (c *Cluster) sprayIndex(t netproto.FiveTuple) int {
	var buf [37]byte
	h := hashing.Hash64(c.cfg.SpraySeed, t.KeyBytes(buf[:]))
	return c.spray[h%uint64(len(c.spray))]
}

// Packet routes one packet: resilient ECMP to a switch, then that
// switch's full pipeline. It returns the chosen DIP, the switch index,
// and whether the packet was forwarded.
func (c *Cluster) Packet(now simtime.Time, pkt *netproto.Packet) (dataplane.DIP, int, bool) {
	i := c.sprayIndex(pkt.Tuple)
	m := c.members[i]
	if !m.alive {
		// The spray table should never point at a dead switch; treat as a
		// blackhole if it does (misconfiguration).
		return dataplane.DIP{}, i, false
	}
	m.cp.Advance(now)
	res := m.sw.Process(now, pkt)
	res = m.cp.HandleResult(now, pkt, res)
	return res.DIP, i, res.Verdict == dataplane.VerdictForward
}

// ConnEnd releases a connection on its current switch.
func (c *Cluster) ConnEnd(now simtime.Time, t netproto.FiveTuple) {
	i := c.sprayIndex(t)
	c.members[i].cp.EndConnection(now, t)
}

// Advance runs background work on every switch.
func (c *Cluster) Advance(now simtime.Time) {
	for _, m := range c.members {
		if m.alive {
			m.cp.Advance(now)
		}
	}
}

// FailSwitch takes switch i out of service: its spray buckets move to
// survivors (resilient ECMP), redirecting its connections; the switch's
// ConnTable state is lost.
func (c *Cluster) FailSwitch(i int) error {
	if i < 0 || i >= len(c.members) {
		return errors.New("cluster: no such switch")
	}
	m := c.members[i]
	if !m.alive {
		return errors.New("cluster: switch already failed")
	}
	survivors := make([]int, 0, len(c.members)-1)
	for j, o := range c.members {
		if j != i && o.alive {
			survivors = append(survivors, j)
		}
	}
	if len(survivors) == 0 {
		return errors.New("cluster: cannot fail the last switch")
	}
	k := 0
	for b := range c.spray {
		if c.spray[b] == i {
			c.spray[b] = survivors[k%len(survivors)]
			k++
			c.Redirected++
		}
	}
	m.alive = false
	return nil
}

// RestoreSwitch brings switch i back with a FRESH, empty ConnTable (state
// does not survive reboots). It does NOT return the member's spray
// buckets: a rebooted switch with a cold table must not take traffic —
// connections pinned to retired pool versions would break on it. The
// survivors keep serving until RejoinSwitch has re-announced state,
// passed the warm gate, and migrated the member's shard back.
func (c *Cluster) RestoreSwitch(i int) error {
	if i < 0 || i >= len(c.members) {
		return errors.New("cluster: no such switch")
	}
	m := c.members[i]
	if m.alive {
		return errors.New("cluster: switch is alive")
	}
	sw, err := dataplane.New(c.cfg.Dataplane)
	if err != nil {
		return err
	}
	m.sw = sw
	m.cp = ctrlplane.New(sw, c.cfg.Controlplane)
	m.alive = true
	return nil
}

// ReannounceTo re-installs the current VIP state on a restored switch
// (the BGP re-announce after reboot). The caller supplies the latest
// VIP->pool map, typically from any healthy member.
func (c *Cluster) ReannounceTo(now simtime.Time, i int, vips map[dataplane.VIP][]dataplane.DIP) error {
	m := c.members[i]
	for vip, pool := range vips {
		if err := m.cp.AddVIP(now, vip, pool, 0); err != nil {
			return err
		}
	}
	return nil
}

// Dataplane exposes switch i's data plane (fault injection, shadow
// inspection). After RestoreSwitch the returned pointer is the fresh
// instance; callers must not cache it across restores.
func (c *Cluster) Dataplane(i int) *dataplane.Switch { return c.members[i].sw }

// ShadowVersion reads a connection's pinned pool version through the
// exact-tuple CPU shadow of the switch its tuple currently sprays to —
// the PCC ground truth (digest aliasing cannot touch it). Returns the
// member index even when the entry is absent, so callers can tell
// redirection from expiry.
func (c *Cluster) ShadowVersion(t netproto.FiveTuple) (member int, version uint32, ok bool) {
	i := c.sprayIndex(t)
	m := c.members[i]
	if !m.alive {
		return i, 0, false
	}
	v, ok := m.sw.LookupConn(t)
	return i, v, ok
}

// TotalConns sums tracked connections across healthy switches.
func (c *Cluster) TotalConns() int {
	n := 0
	for _, m := range c.members {
		if m.alive {
			n += m.cp.TrackedConns()
		}
	}
	return n
}
