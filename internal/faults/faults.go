// Package faults is the seeded fault-injection layer behind the chaos
// experiments: a deterministic schedule of component misbehaviours —
// correlated DIP failure bursts, switch-CPU stalls and slowdowns, forced
// ConnTable pressure, learning-filter digest loss — applied to a running
// switch through the same event scheduler that drives everything else.
//
// A Plan is data: a seed plus a time-ordered list of Events. Generate
// builds one from a seeded RNG, so the same GenConfig always yields the
// same schedule. An Injector executes a Plan against a Target (the
// facade's multi-pipe switch) as a sched.Source: each fault fires at its
// virtual-time deadline, interleaved with packets, learn flushes and CPU
// insertions in strict time order. Runs are therefore reproducible down
// to the individual fault — the property the chaos soak's
// identical-report invariant rests on.
//
// The injector deliberately attacks components through the same narrow
// knobs an operator or a broken environment would: DIP health is faked by
// failing probes (WrapProbe), CPU trouble goes through the control
// plane's stall/rate hooks, SRAM pressure through the ConnTable occupancy
// limit, digest loss through the learning filter's loss hook. Nothing in
// the forwarding path knows the faults package exists.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/dataplane"
	"repro/internal/health"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Kind identifies one fault class.
type Kind int

const (
	// DIPDown marks a DIP failed: probes wrapped by WrapProbe report it
	// dead until a matching DIPUp. Duration > 0 auto-schedules the DIPUp.
	DIPDown Kind = iota
	// DIPUp clears a DIPDown.
	DIPUp
	// CPUStall freezes the switch CPU: every queued insertion and the
	// CPU-free horizon slip by Duration, as if the insertion thread lost
	// the CPU entirely.
	CPUStall
	// CPUSlow scales the CPU's insertion rate by Scale (0.5 = half speed)
	// for Duration, then restores full speed. A per-pipe brownout.
	CPUSlow
	// TableLimit caps ConnTable occupancy at Limit entries for Duration,
	// forcing ErrTableFull and SRAM-watermark pressure without filling
	// real memory.
	TableLimit
	// DigestLoss drops each new learn digest with probability Scale for
	// Duration, as if the hardware learning channel were lossy.
	DigestLoss

	kindCount int = iota
)

// String names the fault kind as it appears in telemetry and journals.
func (k Kind) String() string {
	switch k {
	case DIPDown:
		return "dip_down"
	case DIPUp:
		return "dip_up"
	case CPUStall:
		return "cpu_stall"
	case CPUSlow:
		return "cpu_slow"
	case TableLimit:
		return "table_limit"
	case DigestLoss:
		return "digest_loss"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault. Which fields matter depends on Kind:
// every event has At; Pipe selects a pipe (-1 = all pipes) for CPU,
// table and digest faults; DIP names the victim of DIPDown/DIPUp;
// Duration bounds transient faults (0 = permanent for CPUSlow,
// TableLimit and DigestLoss, instantaneous for CPUStall whose stall
// length is Duration itself); Scale is the CPUSlow rate multiplier
// (0.25 = 4x slower) or the DigestLoss drop probability; Limit is the
// TableLimit entry cap.
type Event struct {
	At       simtime.Time
	Kind     Kind
	Pipe     int // -1 = all pipes
	DIP      dataplane.DIP
	Duration simtime.Duration
	Scale    float64
	Limit    int
}

// Plan is a deterministic fault schedule: the seed it was generated from
// (also the base seed for digest-loss RNG streams) and its events.
type Plan struct {
	Seed   uint64
	Events []Event
}

// GenConfig parameterizes Generate. Counts of zero disable a category.
// The generator knows nothing about the switch, so TableLimit is an
// absolute entry count chosen by the caller.
type GenConfig struct {
	Seed       uint64
	Start, End simtime.Time // window the faults land in
	Pipes      int          // pipe count; per-pipe faults pick 0..Pipes-1

	DIPs       []dataplane.DIP  // victims for failure bursts
	DIPBursts  int              // correlated failure bursts
	BurstSize  int              // DIPs per burst (capped at len(DIPs))
	DIPDownFor simtime.Duration // outage length per failed DIP

	CPUStalls int // hard CPU freezes
	StallFor  simtime.Duration

	Brownouts     int     // CPUSlow events
	BrownoutScale float64 // insertion-rate multiplier (0.25 = 4x slower)
	BrownoutFor   simtime.Duration

	TableSqueezes int // TableLimit events
	TableLimit    int // absolute occupancy cap during a squeeze
	SqueezeFor    simtime.Duration

	DigestLossWindows int
	DigestLossRate    float64
	DigestLossFor     simtime.Duration
}

// Generate builds a Plan from cfg. Same cfg (including Seed) ⇒ same
// Plan: categories are generated in a fixed order from one seeded RNG
// stream and then stably sorted by time.
func Generate(cfg GenConfig) Plan {
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	span := int64(cfg.End.Sub(cfg.Start))
	at := func() simtime.Time {
		if span <= 0 {
			return cfg.Start
		}
		return cfg.Start.Add(simtime.Duration(rng.Int63n(span)))
	}
	pipe := func() int {
		if cfg.Pipes <= 1 {
			return 0
		}
		return rng.Intn(cfg.Pipes)
	}
	var evs []Event

	burst := cfg.BurstSize
	if burst > len(cfg.DIPs) {
		burst = len(cfg.DIPs)
	}
	for b := 0; b < cfg.DIPBursts && burst > 0; b++ {
		t := at()
		picked := rng.Perm(len(cfg.DIPs))[:burst]
		sort.Ints(picked) // stable victim order within a burst
		for _, i := range picked {
			evs = append(evs, Event{
				At: t, Kind: DIPDown, Pipe: -1,
				DIP: cfg.DIPs[i], Duration: cfg.DIPDownFor,
			})
		}
	}
	for i := 0; i < cfg.CPUStalls; i++ {
		evs = append(evs, Event{At: at(), Kind: CPUStall, Pipe: pipe(), Duration: cfg.StallFor})
	}
	for i := 0; i < cfg.Brownouts; i++ {
		evs = append(evs, Event{
			At: at(), Kind: CPUSlow, Pipe: pipe(),
			Duration: cfg.BrownoutFor, Scale: cfg.BrownoutScale,
		})
	}
	for i := 0; i < cfg.TableSqueezes; i++ {
		evs = append(evs, Event{
			At: at(), Kind: TableLimit, Pipe: -1,
			Duration: cfg.SqueezeFor, Limit: cfg.TableLimit,
		})
	}
	for i := 0; i < cfg.DigestLossWindows; i++ {
		evs = append(evs, Event{
			At: at(), Kind: DigestLoss, Pipe: pipe(),
			Duration: cfg.DigestLossFor, Scale: cfg.DigestLossRate,
		})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
	return Plan{Seed: cfg.Seed, Events: evs}
}

// Target is the slice of the switch the injector manipulates. All calls
// are made with the injector's lock released.
type Target interface {
	NumPipes() int
	// StallCPU freezes pipe's insertion CPU for d starting at now.
	StallCPU(now simtime.Time, pipe int, d simtime.Duration)
	// SetInsertRateScale multiplies pipe's insertion rate (0.5 = half
	// speed; 1 or 0 = normal).
	SetInsertRateScale(pipe int, scale float64)
	// SetConnTableLimit caps pipe's ConnTable occupancy (0 = uncapped).
	SetConnTableLimit(pipe int, limit int)
	// SetLearnLoss drops new learn digests on pipe with the given
	// probability from a seed-deterministic stream (rate <= 0 = off).
	SetLearnLoss(pipe int, rate float64, seed uint64)
}

// Metrics counts applied fault actions.
type Metrics struct {
	Injected uint64          // total actions applied (including reverts)
	ByKind   map[Kind]uint64 // per-kind action counts
}

// action is one normalized step of the plan: reverts for transient
// faults are synthesized at build time so execution is a pure
// time-ordered walk.
type action struct {
	at simtime.Time
	ev Event
}

// Injector executes a Plan against a Target as a sched.Source.
//
// It is safe for concurrent use. Fault actions, tracer callbacks and
// Target calls run with the injector's lock released, so a probe or
// tracer may call back into the injector.
type Injector struct {
	mu       sync.Mutex
	target   Target
	tracer   telemetry.Tracer
	actions  []action
	next     int
	down     map[dataplane.DIP]int // DIP -> outstanding DIPDown count
	counts   [kindCount]uint64
	injected uint64
	seed     uint64
}

// NewInjector builds an injector for plan. Transient events are expanded
// into apply/revert action pairs and the whole schedule is stably sorted
// by time.
func NewInjector(plan Plan, target Target) *Injector {
	if target == nil {
		panic("faults: target is required")
	}
	inj := &Injector{
		target: target,
		down:   make(map[dataplane.DIP]int),
		seed:   plan.Seed,
	}
	for _, ev := range plan.Events {
		inj.actions = append(inj.actions, action{at: ev.At, ev: ev})
		if ev.Duration <= 0 {
			continue
		}
		end := ev.At.Add(ev.Duration)
		switch ev.Kind {
		case DIPDown:
			inj.actions = append(inj.actions, action{at: end,
				ev: Event{At: end, Kind: DIPUp, Pipe: ev.Pipe, DIP: ev.DIP}})
		case CPUSlow:
			inj.actions = append(inj.actions, action{at: end,
				ev: Event{At: end, Kind: CPUSlow, Pipe: ev.Pipe, Scale: 1}})
		case TableLimit:
			inj.actions = append(inj.actions, action{at: end,
				ev: Event{At: end, Kind: TableLimit, Pipe: ev.Pipe, Limit: 0}})
		case DigestLoss:
			inj.actions = append(inj.actions, action{at: end,
				ev: Event{At: end, Kind: DigestLoss, Pipe: ev.Pipe, Scale: 0}})
		}
	}
	sort.SliceStable(inj.actions, func(i, j int) bool {
		return inj.actions[i].at.Before(inj.actions[j].at)
	})
	return inj
}

// SetTracer attaches a telemetry tracer: every applied action emits one
// OnFault event.
func (inj *Injector) SetTracer(tr telemetry.Tracer) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.tracer = tr
}

// NextEventTime returns the deadline of the next unapplied action.
func (inj *Injector) NextEventTime() (simtime.Time, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.next >= len(inj.actions) {
		return 0, false
	}
	return inj.actions[inj.next].at, true
}

// Advance applies every action due at or before now, in schedule order.
// DIP state flips under the lock (so WrapProbe observes the change
// atomically); Target and tracer calls run unlocked.
func (inj *Injector) Advance(now simtime.Time) {
	inj.mu.Lock()
	var due []action
	for inj.next < len(inj.actions) && !inj.actions[inj.next].at.After(now) {
		a := inj.actions[inj.next]
		inj.next++
		switch a.ev.Kind {
		case DIPDown:
			inj.down[a.ev.DIP]++
		case DIPUp:
			if inj.down[a.ev.DIP]--; inj.down[a.ev.DIP] <= 0 {
				delete(inj.down, a.ev.DIP)
			}
		}
		inj.counts[a.ev.Kind]++
		inj.injected++
		due = append(due, a)
	}
	target, tracer, seed := inj.target, inj.tracer, inj.seed
	inj.mu.Unlock()

	for _, a := range due {
		inj.apply(target, seed, a)
		if tracer != nil {
			tracer.OnFault(telemetry.FaultEvent{
				Now: a.at, Pipe: a.ev.Pipe, Kind: a.ev.Kind.String(),
				DIP: a.ev.DIP, Duration: a.ev.Duration,
				Scale: a.ev.Scale, Limit: a.ev.Limit,
			})
		}
	}
}

// apply executes one action against the target, fanning Pipe == -1 out
// to every pipe.
func (inj *Injector) apply(target Target, seed uint64, a action) {
	if a.ev.Kind == DIPDown || a.ev.Kind == DIPUp {
		return // probe-level faults: no target call; WrapProbe does the work
	}
	lo, hi := a.ev.Pipe, a.ev.Pipe+1
	if a.ev.Pipe < 0 {
		lo, hi = 0, target.NumPipes()
	}
	for p := lo; p < hi; p++ {
		switch a.ev.Kind {
		case CPUStall:
			target.StallCPU(a.at, p, a.ev.Duration)
		case CPUSlow:
			target.SetInsertRateScale(p, a.ev.Scale)
		case TableLimit:
			target.SetConnTableLimit(p, a.ev.Limit)
		case DigestLoss:
			// Diversify the stream per pipe so parallel pipes do not drop
			// the same offer positions.
			target.SetLearnLoss(p, a.ev.Scale, seed^(uint64(p+1)*0x9e3779b97f4a7c15))
		}
	}
}

// DIPDown reports whether dip is currently held down by the injector.
func (inj *Injector) DIPDown(dip dataplane.DIP) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.down[dip] > 0
}

// WrapProbe layers injected DIP failures over a real probe: a held-down
// DIP never answers; otherwise the wrapped probe decides (nil = always
// healthy).
func (inj *Injector) WrapProbe(p health.ProbeFunc) health.ProbeFunc {
	return func(now simtime.Time, dip dataplane.DIP) bool {
		if inj.DIPDown(dip) {
			return false
		}
		if p == nil {
			return true
		}
		return p(now, dip)
	}
}

// Metrics returns a copy of the action counters.
func (inj *Injector) Metrics() Metrics {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	m := Metrics{Injected: inj.injected, ByKind: make(map[Kind]uint64)}
	for k, n := range inj.counts {
		if n > 0 {
			m.ByKind[Kind(k)] = n
		}
	}
	return m
}

// Remaining returns the number of unapplied actions.
func (inj *Injector) Remaining() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return len(inj.actions) - inj.next
}

// Len returns the total number of actions in the normalized schedule
// (plan events plus synthesized reverts).
func (inj *Injector) Len() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return len(inj.actions)
}
