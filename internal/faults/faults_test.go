package faults

import (
	"net/netip"
	"reflect"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

func fdip(i int) dataplane.DIP {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}), 20)
}

func ms(n int) simtime.Time        { return simtime.Time(n) * simtime.Time(simtime.Millisecond) }
func msDur(n int) simtime.Duration { return simtime.Duration(n) * simtime.Millisecond }
func genCfg(seed uint64) GenConfig {
	return GenConfig{
		Seed:  seed,
		Start: ms(1), End: ms(100),
		Pipes:     2,
		DIPs:      []dataplane.DIP{fdip(1), fdip(2), fdip(3), fdip(4)},
		DIPBursts: 2, BurstSize: 2, DIPDownFor: msDur(20),
		CPUStalls: 1, StallFor: msDur(5),
		Brownouts: 1, BrownoutScale: 4, BrownoutFor: msDur(10),
		TableSqueezes: 1, TableLimit: 100, SqueezeFor: msDur(15),
		DigestLossWindows: 1, DigestLossRate: 0.5, DigestLossFor: msDur(10),
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(genCfg(7)), Generate(genCfg(7))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := Generate(genCfg(8))
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
	// 2 bursts × 2 DIPs + 1 stall + 1 brownout + 1 squeeze + 1 loss window.
	if len(a.Events) != 8 {
		t.Fatalf("events = %d, want 8", len(a.Events))
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At.Before(a.Events[i-1].At) {
			t.Fatal("plan not time-sorted")
		}
	}
	for _, ev := range a.Events {
		if ev.At.Before(ms(1)) || !ev.At.Before(ms(100)) {
			t.Fatalf("event at %v outside window", ev.At)
		}
	}
}

// fakeTarget records every call the injector makes.
type fakeTarget struct {
	pipes  int
	calls  []string
	stalls map[int]simtime.Duration
	scales map[int]float64
	limits map[int]int
	loss   map[int]float64
	seeds  map[int]uint64
}

func newFakeTarget(pipes int) *fakeTarget {
	return &fakeTarget{
		pipes:  pipes,
		stalls: map[int]simtime.Duration{}, scales: map[int]float64{},
		limits: map[int]int{}, loss: map[int]float64{}, seeds: map[int]uint64{},
	}
}

func (f *fakeTarget) NumPipes() int { return f.pipes }
func (f *fakeTarget) StallCPU(now simtime.Time, pipe int, d simtime.Duration) {
	f.calls = append(f.calls, "stall")
	f.stalls[pipe] += d
}
func (f *fakeTarget) SetInsertRateScale(pipe int, s float64) {
	f.calls = append(f.calls, "scale")
	f.scales[pipe] = s
}
func (f *fakeTarget) SetConnTableLimit(pipe, limit int) {
	f.calls = append(f.calls, "limit")
	f.limits[pipe] = limit
}
func (f *fakeTarget) SetLearnLoss(pipe int, rate float64, seed uint64) {
	f.calls = append(f.calls, "loss")
	f.loss[pipe] = rate
	f.seeds[pipe] = seed
}

func TestInjectorAppliesAndReverts(t *testing.T) {
	plan := Plan{Seed: 3, Events: []Event{
		{At: ms(10), Kind: CPUSlow, Pipe: 0, Scale: 4, Duration: msDur(10)},
		{At: ms(12), Kind: TableLimit, Pipe: -1, Limit: 50, Duration: msDur(5)},
		{At: ms(14), Kind: DigestLoss, Pipe: 1, Scale: 0.25, Duration: msDur(4)},
		{At: ms(15), Kind: CPUStall, Pipe: 1, Duration: msDur(2)},
	}}
	tgt := newFakeTarget(2)
	inj := NewInjector(plan, tgt)
	if inj.Len() != 7 { // 4 events + 3 reverts (CPUStall has none)
		t.Fatalf("Len = %d, want 7", inj.Len())
	}

	inj.Advance(ms(14)) // slow, limit, loss applied; stall not yet
	if tgt.scales[0] != 4 {
		t.Fatalf("scale[0] = %v", tgt.scales[0])
	}
	if tgt.limits[0] != 50 || tgt.limits[1] != 50 {
		t.Fatalf("limits = %v (Pipe=-1 should fan out)", tgt.limits)
	}
	if tgt.loss[1] != 0.25 || tgt.loss[0] != 0 {
		t.Fatalf("loss = %v", tgt.loss)
	}
	if tgt.stalls[1] != 0 {
		t.Fatal("stall fired early")
	}

	inj.Advance(ms(30)) // stall plus all reverts
	if tgt.stalls[1] != msDur(2) {
		t.Fatalf("stall[1] = %v", tgt.stalls[1])
	}
	if tgt.scales[0] != 1 || tgt.limits[0] != 0 || tgt.limits[1] != 0 || tgt.loss[1] != 0 {
		t.Fatalf("reverts missing: scales=%v limits=%v loss=%v", tgt.scales, tgt.limits, tgt.loss)
	}
	if inj.Remaining() != 0 {
		t.Fatalf("Remaining = %d", inj.Remaining())
	}
	m := inj.Metrics()
	if m.Injected != 7 || m.ByKind[CPUSlow] != 2 || m.ByKind[CPUStall] != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if _, ok := inj.NextEventTime(); ok {
		t.Fatal("drained injector still schedules events")
	}
}

func TestWrapProbeTracksDownSet(t *testing.T) {
	plan := Plan{Events: []Event{
		{At: ms(10), Kind: DIPDown, DIP: fdip(1), Pipe: -1, Duration: msDur(20)},
		{At: ms(15), Kind: DIPDown, DIP: fdip(2), Pipe: -1}, // permanent
	}}
	inj := NewInjector(plan, newFakeTarget(1))
	probes := 0
	probe := inj.WrapProbe(func(now simtime.Time, d dataplane.DIP) bool {
		probes++
		return true
	})

	if !probe(ms(0), fdip(1)) {
		t.Fatal("DIP down before its event")
	}
	inj.Advance(ms(15))
	if probe(ms(16), fdip(1)) || probe(ms(16), fdip(2)) {
		t.Fatal("held-down DIP answered a probe")
	}
	if !inj.DIPDown(fdip(1)) {
		t.Fatal("DIPDown not reported")
	}
	inj.Advance(ms(30)) // fdip(1) auto-recovers, fdip(2) is permanent
	if !probe(ms(31), fdip(1)) {
		t.Fatal("recovered DIP still failing probes")
	}
	if probe(ms(31), fdip(2)) {
		t.Fatal("permanently-down DIP recovered")
	}
	// Underlying probe consulted only for up DIPs: fdip(1) before its
	// outage and after recovery.
	if probes != 2 {
		t.Fatalf("inner probe called %d times, want 2", probes)
	}
	// nil inner probe = always healthy when not held down.
	p := inj.WrapProbe(nil)
	if !p(ms(31), fdip(3)) || p(ms(31), fdip(2)) {
		t.Fatal("nil-probe wrapper wrong")
	}
}

func TestInjectorEmitsFaultEvents(t *testing.T) {
	rec := telemetry.NewRegistry()
	plan := Plan{Events: []Event{
		{At: ms(1), Kind: TableLimit, Pipe: 0, Limit: 10, Duration: msDur(2)},
		{At: ms(2), Kind: DIPDown, DIP: fdip(1), Pipe: -1},
	}}
	inj := NewInjector(plan, newFakeTarget(1))
	inj.SetTracer(rec)
	inj.Advance(ms(10))
	snap := rec.Snapshot(ms(10))
	if got := snap.Counters[telemetry.MetricFaultsInjected]; got != 3 {
		t.Fatalf("%s = %v, want 3", telemetry.MetricFaultsInjected, got)
	}
}

func TestPerPipeDigestSeedsDiffer(t *testing.T) {
	plan := Plan{Seed: 42, Events: []Event{
		{At: ms(1), Kind: DigestLoss, Pipe: -1, Scale: 0.5},
	}}
	tgt := newFakeTarget(2)
	NewInjectorAdvanced(plan, tgt, ms(1))
	if tgt.seeds[0] == tgt.seeds[1] {
		t.Fatal("per-pipe digest-loss seeds identical")
	}
}

// NewInjectorAdvanced is a test helper: build and advance in one step.
func NewInjectorAdvanced(plan Plan, tgt Target, now simtime.Time) *Injector {
	inj := NewInjector(plan, tgt)
	inj.Advance(now)
	return inj
}
