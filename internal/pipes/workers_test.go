package pipes

// Tests for the persistent-worker batch path (ring.go), the explicit
// shard-seed handling, and the fanout rollback — the regression surface of
// the multi-pipe hot-path rework.

import (
	"sync"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

func newTestEngine(t *testing.T, pipes, conns int) *Engine {
	t.Helper()
	e, err := New(testConfig(pipes, conns))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddVIP(0, testVIP(), testPool(8), 0); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestZeroShardSeedExplicit pins the shard-seed derivation: a zero
// ShardSeed derives from the chip seed, and the one configuration where
// that XOR lands on zero (Dataplane.Seed == shardSeedSalt) falls back to
// the salt explicitly instead of silently hashing unseeded. Sharding must
// stay deterministic across engines in every case.
func TestZeroShardSeedExplicit(t *testing.T) {
	cfg := testConfig(4, 1000)
	cfg.Dataplane.Seed = shardSeedSalt // XOR with the salt collapses to 0
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.seed == 0 {
		t.Fatal("derived shard seed collapsed to zero")
	}
	if a.seed != shardSeedSalt {
		t.Fatalf("zero-XOR fallback seed = %#x, want the salt %#x", a.seed, uint64(shardSeedSalt))
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if pa, pb := a.PipeOf(tupleN(i)), b.PipeOf(tupleN(i)); pa != pb {
			t.Fatalf("conn %d: sharding not deterministic (%d vs %d)", i, pa, pb)
		}
	}
	cfg.ShardSeed = 7
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.seed != 7 {
		t.Fatalf("explicit ShardSeed ignored: seed = %#x", c.seed)
	}
}

// TestFanoutRollsBackOnPipeFailure forces pipe 2 to fail mid-fanout and
// asserts the pipes that had already applied the operation are rolled
// back, so the chip's healthy pipes keep identical pools (the old fanout
// returned the first error and left them diverged).
func TestFanoutRollsBackOnPipeFailure(t *testing.T) {
	e := newTestEngine(t, 4, 10000)
	victim := testPool(8)[3]
	// Diverge pipe 2 behind the engine's back: its pool no longer holds
	// the victim DIP, so the engine-level RemoveDIP will fail there after
	// succeeding on pipes 0 and 1.
	if err := e.Controlplane(2).RemoveDIP(0, testVIP(), victim); err != nil {
		t.Fatal(err)
	}
	now := simtime.Time(simtime.Second)
	e.Advance(now)
	if err := e.RemoveDIP(now, testVIP(), victim); err == nil {
		t.Fatal("RemoveDIP should fail: pipe 2 does not hold the DIP")
	}
	// Let the rollback updates settle.
	now = now.Add(simtime.Duration(10 * simtime.Second))
	e.Advance(now)
	for _, pi := range []int{0, 1, 3} {
		pool, err := e.Controlplane(pi).TargetPool(testVIP())
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, d := range pool {
			if d == victim {
				found = true
			}
		}
		if !found {
			t.Fatalf("pipe %d lost %v despite rollback: %v", pi, victim, pool)
		}
		if len(pool) != 8 {
			t.Fatalf("pipe %d pool size %d after rollback, want 8", pi, len(pool))
		}
	}
}

// TestWorkerBatchMatchesSequential drives the worker path through many
// batches (SYNs, then established traffic, across an update) and asserts
// input-order results identical in the stable fields to the same workload
// run packet-at-a-time on a twin engine — the ring path must not reorder
// or cross-wire result slots.
func TestWorkerBatchMatchesSequential(t *testing.T) {
	batched := newTestEngine(t, 4, 10000)
	seq := newTestEngine(t, 4, 10000)
	const conns = 300
	now := simtime.Time(0)
	for round := 0; round < 6; round++ {
		var pkts []*netproto.Packet
		for i := 0; i < conns; i++ {
			flags := netproto.FlagACK
			if round == 0 {
				flags = netproto.FlagSYN
			}
			pkts = append(pkts, &netproto.Packet{Tuple: tupleN(i), TCPFlags: flags})
		}
		got := batched.ProcessBatch(now, pkts)
		for i, pkt := range pkts {
			cp := *pkt
			want := seq.Process(now, &cp)
			if got[i].Verdict != want.Verdict || got[i].DIP != want.DIP || got[i].Version != want.Version {
				t.Fatalf("round %d packet %d: batch %+v, sequential %+v", round, i, got[i], want)
			}
		}
		now = now.Add(simtime.Duration(simtime.Second))
		batched.Advance(now)
		seq.Advance(now)
	}
	// Shard balance: the worker path must spread work like PipeOf says.
	st := batched.Stats()
	for pi, n := range st.PipePackets {
		if n == 0 {
			t.Fatalf("pipe %d processed no packets: %v", pi, st.PipePackets)
		}
	}
	if st.Dataplane.Packets != uint64(6*conns) {
		t.Fatalf("chip packets = %d, want %d", st.Dataplane.Packets, 6*conns)
	}
}

// TestInterleavedBatchesRace interleaves ProcessBatch calls from two
// goroutines with config fanout, stats reads and a Close, all under the
// race detector: the batch lock must serialize producers without
// corrupting shard state, and Close must wait out in-flight batches.
func TestInterleavedBatchesRace(t *testing.T) {
	e := newTestEngine(t, 4, 20000)
	const rounds = 30
	now := simtime.Time(simtime.Second)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var pkts []*netproto.Packet
				for i := 0; i < 150; i++ {
					flags := netproto.FlagSYN
					if r > 0 {
						flags = netproto.FlagACK
					}
					pkts = append(pkts, &netproto.Packet{Tuple: tupleN(g*1000 + i), TCPFlags: flags})
				}
				res := e.ProcessBatch(now, pkts)
				for i := range res {
					if res[i].Verdict != dataplane.VerdictForward &&
						res[i].Verdict != dataplane.VerdictNoBackend {
						t.Errorf("goroutine %d round %d pkt %d: %v", g, r, i, res[i].Verdict)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		extra := testPool(9)[8]
		for r := 0; r < rounds; r++ {
			if err := e.AddDIP(now, testVIP(), extra); err != nil {
				t.Errorf("AddDIP: %v", err)
			}
			_ = e.Stats()
			if err := e.RemoveDIP(now, testVIP(), extra); err != nil {
				t.Errorf("RemoveDIP: %v", err)
			}
			// Exercised for race coverage; emptiness is legitimate once
			// the concurrent batches' Advance calls drain the updates.
			_, _ = e.NextDue()
		}
	}()
	wg.Wait()
	e.Close()
	// The engine stays usable after Close: batches run on the caller.
	res := e.ProcessBatch(now.Add(simtime.Duration(simtime.Second)), []*netproto.Packet{
		{Tuple: tupleN(5), TCPFlags: netproto.FlagACK},
	})
	if res[0].Verdict != dataplane.VerdictForward {
		t.Fatalf("post-Close batch: %v", res[0].Verdict)
	}
	e.Close() // idempotent
}

// TestNextDueWhileWorkersParked asserts the engine's deadline surface
// stays live while the batch workers are parked between batches: a
// learned batch schedules its filter flush, and NextDue must surface it
// without any packet or Advance activity to "kick" the pipes.
func TestNextDueWhileWorkersParked(t *testing.T) {
	e := newTestEngine(t, 4, 10000)
	var pkts []*netproto.Packet
	for i := 0; i < 64; i++ {
		pkts = append(pkts, &netproto.Packet{Tuple: tupleN(i), TCPFlags: netproto.FlagSYN})
	}
	now := simtime.Time(0)
	res := e.ProcessBatch(now, pkts)
	learned := false
	for i := range res {
		learned = learned || res[i].Learned
	}
	if !learned {
		t.Fatal("SYN batch learned nothing")
	}
	// Workers are parked now (ProcessBatch returned). The learn flush and
	// the pending inserts are due within a few filter timeouts; NextDue
	// must surface that deadline.
	at, ok := e.NextDue()
	if !ok {
		t.Fatal("NextDue empty after a learned batch")
	}
	if limit := now.Add(simtime.Duration(10 * simtime.Millisecond)); at.After(limit) {
		t.Fatalf("NextDue = %v, want a deadline by %v", at, limit)
	}
	// And it must still drain normally from here.
	e.Advance(now.Add(simtime.Duration(10 * simtime.Second)))
	if got := e.Stats().Connections; got != 64 {
		t.Fatalf("connections after drain = %d, want 64", got)
	}
}

// TestBatchSteadyStateAllocs guards the allocation-free claim: once
// connections are established, a ProcessBatchInto round trip must not
// allocate per packet.
func TestBatchSteadyStateAllocs(t *testing.T) {
	e := newTestEngine(t, 4, 10000)
	const conns = 256
	var pkts []*netproto.Packet
	for i := 0; i < conns; i++ {
		pkts = append(pkts, &netproto.Packet{Tuple: tupleN(i), TCPFlags: netproto.FlagSYN})
	}
	now := simtime.Time(0)
	e.ProcessBatch(now, pkts)
	now = now.Add(simtime.Duration(10 * simtime.Second))
	e.Advance(now)
	for i := range pkts {
		pkts[i].TCPFlags = netproto.FlagACK
	}
	results := make([]dataplane.Result, conns)
	e.ProcessBatchInto(now, pkts, results) // warm the reusable buffers
	avg := testing.AllocsPerRun(20, func() {
		e.ProcessBatchInto(now, pkts, results)
	})
	// Budget: well under one allocation per packet; the shard machinery
	// itself must contribute zero in steady state.
	if avg > 8 {
		t.Fatalf("steady-state batch allocates %.1f times per %d packets", avg, conns)
	}
}
