package pipes

// Tests for the wire-native batch path: frames through the persistent
// worker rings must behave exactly like structs through ProcessBatch, and
// the steady-state frames sweep must not allocate.

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

// framesN materializes frames for connections [0, n): each tuple marshaled
// to wire bytes and parsed once, like the tunnel's receive path.
func framesN(t *testing.T, n int, flags uint8) []netproto.Frame {
	t.Helper()
	frames := make([]netproto.Frame, n)
	var arena, scratch []byte
	offs := make([]int, n+1)
	for i := 0; i < n; i++ {
		p := netproto.Packet{Tuple: tupleN(i), TCPFlags: flags}
		raw, err := p.Marshal(scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = raw
		arena = append(arena, raw...)
		offs[i+1] = len(arena)
	}
	for i := 0; i < n; i++ {
		if err := netproto.ParseFrame(arena[offs[i]:offs[i+1]:offs[i+1]], &frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	return frames
}

// TestFramesBatchMatchesStructBatch runs the same workload — SYN round,
// established rounds, a DIP pool update in the middle — through a frames
// engine and a structs twin. Every packet must get the identical verdict,
// DIP and version: the wire currency and the struct currency are two entry
// points into one pipeline, never two pipelines.
func TestFramesBatchMatchesStructBatch(t *testing.T) {
	framesEng := newTestEngine(t, 4, 10000)
	structEng := newTestEngine(t, 4, 10000)
	const conns = 300
	now := simtime.Time(0)
	results := make([]dataplane.Result, conns)
	for round := 0; round < 6; round++ {
		flags := netproto.FlagACK
		if round == 0 {
			flags = netproto.FlagSYN
		}
		frames := framesN(t, conns, flags)
		pkts := make([]*netproto.Packet, conns)
		for i := 0; i < conns; i++ {
			pkts[i] = &netproto.Packet{Tuple: tupleN(i), TCPFlags: flags}
		}
		framesEng.ProcessFramesInto(now, frames, results)
		want := structEng.ProcessBatch(now, pkts)
		for i := range results {
			if results[i].Verdict != want[i].Verdict || results[i].DIP != want[i].DIP ||
				results[i].Version != want[i].Version {
				t.Fatalf("round %d packet %d: frames %+v, structs %+v", round, i, results[i], want[i])
			}
		}
		if round == 2 {
			// Shrink the pool mid-workload on both engines: the frame path
			// must ride the 3-step update identically.
			if err := framesEng.RemoveDIP(now, testVIP(), testPool(8)[7]); err != nil {
				t.Fatal(err)
			}
			if err := structEng.RemoveDIP(now, testVIP(), testPool(8)[7]); err != nil {
				t.Fatal(err)
			}
		}
		now = now.Add(simtime.Duration(simtime.Second))
		framesEng.Advance(now)
		structEng.Advance(now)
	}
	// Both engines must have sharded identically (same seeds, same lanes).
	fs, ss := framesEng.Stats(), structEng.Stats()
	for pi := range fs.PipePackets {
		if fs.PipePackets[pi] != ss.PipePackets[pi] {
			t.Fatalf("pipe %d: frames engine %d packets, struct engine %d — shard divergence",
				pi, fs.PipePackets[pi], ss.PipePackets[pi])
		}
	}
}

// TestEngineProcessFrameSingle covers the one-at-a-time frame entry point:
// it must pin connections to the same pipe as the batch path.
func TestEngineProcessFrameSingle(t *testing.T) {
	e := newTestEngine(t, 4, 10000)
	now := simtime.Time(0)
	syn := framesN(t, 64, netproto.FlagSYN)
	for i := range syn {
		if res := e.ProcessFrame(now, &syn[i]); res.Verdict != dataplane.VerdictForward {
			t.Fatalf("SYN %d: %v", i, res.Verdict)
		}
	}
	now = now.Add(simtime.Duration(10 * simtime.Second))
	e.Advance(now)
	ack := framesN(t, 64, netproto.FlagACK)
	for i := range ack {
		res := e.ProcessFrame(now, &ack[i])
		if res.Verdict != dataplane.VerdictForward || !res.ConnHit {
			t.Fatalf("ACK %d not a ConnTable hit: %+v", i, res)
		}
	}
	if got := e.Stats().Connections; got != 64 {
		t.Fatalf("connections = %d, want 64", got)
	}
}

// TestFramesBatchSteadyStateAllocs guards the wire path's allocation-free
// claim through the worker rings: established frames swept with
// ProcessFramesInto must allocate nothing.
func TestFramesBatchSteadyStateAllocs(t *testing.T) {
	e := newTestEngine(t, 4, 10000)
	const conns = 256
	now := simtime.Time(0)
	e.ProcessFrames(now, framesN(t, conns, netproto.FlagSYN))
	now = now.Add(simtime.Duration(10 * simtime.Second))
	e.Advance(now)
	frames := framesN(t, conns, netproto.FlagACK)
	results := make([]dataplane.Result, conns)
	e.ProcessFramesInto(now, frames, results) // warm the reusable buffers
	avg := testing.AllocsPerRun(20, func() {
		e.ProcessFramesInto(now, frames, results)
	})
	if avg != 0 {
		t.Fatalf("steady-state frames batch allocates %.1f times per %d packets, want 0", avg, conns)
	}
}
