package pipes

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

func testConfig(pipes, conns int) Config {
	return Config{
		Pipes:        pipes,
		Dataplane:    dataplane.DefaultConfig(conns),
		Controlplane: ctrlplane.DefaultConfig(),
	}
}

func testVIP() dataplane.VIP {
	return dataplane.VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 80, Proto: netproto.ProtoTCP}
}

func testPool(n int) []dataplane.DIP {
	out := make([]dataplane.DIP, n)
	for i := range out {
		out[i] = netip.MustParseAddrPort(fmt.Sprintf("10.0.0.%d:80", i+1))
	}
	return out
}

func tupleN(i int) netproto.FiveTuple {
	return netproto.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{9, byte(i >> 16), byte(i >> 8), byte(i)}),
		Dst:     netip.MustParseAddr("20.0.0.1"),
		SrcPort: uint16(1024 + i%50000), DstPort: 80, Proto: netproto.ProtoTCP,
	}
}

// TestShardingPinsConnections asserts every connection maps to a stable
// pipe, traffic spreads across pipes, and per-pipe ConnTables stay
// disjoint.
func TestShardingPinsConnections(t *testing.T) {
	e, err := New(testConfig(4, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddVIP(0, testVIP(), testPool(8), 0); err != nil {
		t.Fatal(err)
	}
	const conns = 800
	seen := map[int]int{}
	for i := 0; i < conns; i++ {
		tup := tupleN(i)
		pi := e.PipeOf(tup)
		if again := e.PipeOf(tup); again != pi {
			t.Fatalf("PipeOf not stable: %d then %d", pi, again)
		}
		seen[pi]++
		res := e.Process(0, &netproto.Packet{Tuple: tup, TCPFlags: netproto.FlagSYN})
		if res.Verdict != dataplane.VerdictForward {
			t.Fatalf("conn %d: verdict = %v", i, res.Verdict)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 pipes saw traffic: %v", len(seen), seen)
	}
	for pi, n := range seen {
		// A uniform shard puts ~200 connections on each pipe; a pipe with
		// fewer than half or more than double signals a broken shard hash.
		if n < conns/8 || n > conns/2 {
			t.Errorf("pipe %d holds %d/%d connections — shard badly skewed", pi, n, conns)
		}
	}
	st := e.Stats()
	if st.Dataplane.Packets != conns {
		t.Fatalf("aggregate packets = %d, want %d", st.Dataplane.Packets, conns)
	}
	var sum uint64
	for _, p := range st.PipePackets {
		sum += p
	}
	if sum != conns {
		t.Fatalf("per-pipe packet sum = %d, want %d", sum, conns)
	}
}

// TestBatchMatchesSequential asserts ProcessBatch returns, in input order,
// exactly the results a sequential per-packet run yields on an identical
// engine.
func TestBatchMatchesSequential(t *testing.T) {
	mk := func() *Engine {
		e, err := New(testConfig(4, 10000))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AddVIP(0, testVIP(), testPool(8), 0); err != nil {
			t.Fatal(err)
		}
		return e
	}
	var pkts []*netproto.Packet
	for i := 0; i < 300; i++ {
		pkts = append(pkts, &netproto.Packet{Tuple: tupleN(i % 120), TCPFlags: netproto.FlagSYN})
	}

	batched := mk().ProcessBatch(1000, pkts)
	seq := mk()
	for i, pkt := range pkts {
		want := seq.Process(1000, pkt)
		got := batched[i]
		if got.Verdict != want.Verdict || got.DIP != want.DIP || got.Version != want.Version {
			t.Fatalf("packet %d: batch = %+v, sequential = %+v", i, got, want)
		}
	}
}

// TestPerConnectionConsistencyAcrossBatches asserts a connection keeps its
// DIP across batches and across a PCC pool update, on every pipe.
func TestPerConnectionConsistencyAcrossBatches(t *testing.T) {
	e, err := New(testConfig(4, 10000))
	if err != nil {
		t.Fatal(err)
	}
	vip := testVIP()
	pool := testPool(8)
	if err := e.AddVIP(0, vip, pool, 0); err != nil {
		t.Fatal(err)
	}
	const conns = 400
	first := make(map[int]dataplane.DIP, conns)
	var pkts []*netproto.Packet
	for i := 0; i < conns; i++ {
		pkts = append(pkts, &netproto.Packet{Tuple: tupleN(i), TCPFlags: netproto.FlagSYN})
	}
	now := simtime.Time(0)
	for i, res := range e.ProcessBatch(now, pkts) {
		if res.Verdict != dataplane.VerdictForward {
			t.Fatalf("conn %d: verdict %v", i, res.Verdict)
		}
		first[i] = res.DIP
	}
	// Let every pipe's CPU install the learned connections, then remove a
	// DIP under PCC.
	now = now.Add(simtime.Duration(simtime.Second))
	e.Advance(now)
	removed := pool[0]
	if err := e.RemoveDIP(now, vip, removed); err != nil {
		t.Fatal(err)
	}
	now = now.Add(simtime.Duration(simtime.Second))
	e.Advance(now)

	var data []*netproto.Packet
	for i := 0; i < conns; i++ {
		data = append(data, &netproto.Packet{Tuple: tupleN(i), TCPFlags: netproto.FlagACK})
	}
	for i, res := range e.ProcessBatch(now, data) {
		if first[i] == removed {
			continue // pinned to the DIP that left service; exempt
		}
		if res.Verdict != dataplane.VerdictForward || res.DIP != first[i] {
			t.Fatalf("conn %d: PCC violated: first %v, now (%v, %v)",
				i, first[i], res.Verdict, res.DIP)
		}
	}
}

// TestAggregatedStats asserts engine stats equal the sum over per-pipe
// stats, and that connection counts and SRAM figures aggregate.
func TestAggregatedStats(t *testing.T) {
	e, err := New(testConfig(3, 9000))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddVIP(0, testVIP(), testPool(4), 0); err != nil {
		t.Fatal(err)
	}
	var pkts []*netproto.Packet
	for i := 0; i < 500; i++ {
		pkts = append(pkts, &netproto.Packet{Tuple: tupleN(i), TCPFlags: netproto.FlagSYN})
	}
	e.ProcessBatch(0, pkts)
	e.Advance(simtime.Time(simtime.Second))

	var want dataplane.Stats
	var conns, mem int
	var inserted uint64
	for i := 0; i < e.NumPipes(); i++ {
		want.Add(e.Dataplane(i).Stats())
		conns += e.Controlplane(i).TrackedConns()
		mem += e.Dataplane(i).Memory().Total()
		inserted += e.Controlplane(i).Metrics().Inserted
	}
	got := e.Stats()
	if got.Dataplane != want {
		t.Fatalf("aggregate dataplane stats:\n got %+v\nwant %+v", got.Dataplane, want)
	}
	if got.Connections != conns || got.MemoryBytes != mem {
		t.Fatalf("aggregate conns/mem = (%d, %d), want (%d, %d)",
			got.Connections, got.MemoryBytes, conns, mem)
	}
	if got.Controlplane.Inserted != inserted || inserted == 0 {
		t.Fatalf("aggregate inserted = %d, want %d (nonzero)", got.Controlplane.Inserted, inserted)
	}
	if got.MemoryBytes != e.Memory().Total() {
		t.Fatalf("Stats.MemoryBytes = %d, Memory().Total() = %d", got.MemoryBytes, e.Memory().Total())
	}
}

// TestPerPipeSRAMBudget asserts each pipe is provisioned with its share of
// the chip budget, so chip-level allocated SRAM stays within the chip.
func TestPerPipeSRAMBudget(t *testing.T) {
	cfg := testConfig(4, 100000)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perPipe := cfg.Dataplane.Chip.SRAMBytes / 4
	for i := 0; i < 4; i++ {
		chip := e.Dataplane(i).Chip()
		if chip.Config().SRAMBytes != perPipe {
			t.Errorf("pipe %d budget = %d, want %d", i, chip.Config().SRAMBytes, perPipe)
		}
	}
	if used := e.Used().SRAMBytes; used > cfg.Dataplane.Chip.SRAMBytes {
		t.Errorf("chip-level allocated SRAM %d exceeds chip budget %d",
			used, cfg.Dataplane.Chip.SRAMBytes)
	}
}

// TestEmptyPoolDropsMultiPipe asserts the empty-pool drop verdict holds on
// the sharded path: with every pipe's current pool emptied, packets drop
// with VerdictNoBackend on whichever pipe they shard to.
func TestEmptyPoolDropsMultiPipe(t *testing.T) {
	e, err := New(testConfig(4, 4000))
	if err != nil {
		t.Fatal(err)
	}
	vip := testVIP()
	if err := e.AddVIP(0, vip, testPool(2), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.NumPipes(); i++ {
		if err := e.Dataplane(i).WritePool(vip, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	var pkts []*netproto.Packet
	for i := 0; i < 200; i++ {
		pkts = append(pkts, &netproto.Packet{Tuple: tupleN(i), TCPFlags: netproto.FlagSYN})
	}
	for i, res := range e.ProcessBatch(0, pkts) {
		if res.Verdict != dataplane.VerdictNoBackend {
			t.Fatalf("packet %d: verdict = %v, want %v", i, res.Verdict, dataplane.VerdictNoBackend)
		}
		if res.DIP.IsValid() {
			t.Fatalf("packet %d: forwarded to %v from an empty pool", i, res.DIP)
		}
	}
	if st := e.Stats(); st.Dataplane.NoBackend != 200 {
		t.Fatalf("aggregate NoBackend = %d, want 200", st.Dataplane.NoBackend)
	}
}

// TestAddVIPRollsBackOnFailure asserts a failed chip-wide AddVIP leaves no
// pipe with a half-programmed VIP.
func TestAddVIPRollsBackOnFailure(t *testing.T) {
	e, err := New(testConfig(3, 3000))
	if err != nil {
		t.Fatal(err)
	}
	vip := testVIP()
	if err := e.AddVIP(0, vip, testPool(2), 0); err != nil {
		t.Fatal(err)
	}
	// Duplicate announcement fails on every pipe; the original must stay.
	if err := e.AddVIP(0, vip, testPool(3), 0); err == nil {
		t.Fatal("duplicate AddVIP should fail")
	}
	for i := 0; i < e.NumPipes(); i++ {
		if !e.Dataplane(i).HasVIP(vip) {
			t.Fatalf("pipe %d lost the original VIP after failed re-add", i)
		}
	}
	pool, err := e.CurrentPool(vip)
	if err != nil || len(pool) != 2 {
		t.Fatalf("original pool damaged: %v, %v", pool, err)
	}
}

// TestConcurrentTrafficAndUpdates drives packets, pool updates, stats
// reads and connection terminations from concurrent goroutines — the
// sharded path must be race-clean (run under -race).
func TestConcurrentTrafficAndUpdates(t *testing.T) {
	e, err := New(testConfig(4, 20000))
	if err != nil {
		t.Fatal(err)
	}
	vip := testVIP()
	if err := e.AddVIP(0, vip, testPool(8), 0); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 300
	now := simtime.Time(simtime.Second)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var pkts []*netproto.Packet
			for i := 0; i < perWorker; i++ {
				pkts = append(pkts, &netproto.Packet{
					Tuple: tupleN(w*perWorker + i), TCPFlags: netproto.FlagSYN,
				})
			}
			for _, res := range e.ProcessBatch(now, pkts) {
				if res.Verdict != dataplane.VerdictForward &&
					res.Verdict != dataplane.VerdictNoBackend {
					t.Errorf("unexpected verdict %v", res.Verdict)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		extra := netip.MustParseAddrPort("10.0.9.9:80")
		for i := 0; i < 20; i++ {
			if err := e.AddDIP(now, vip, extra); err != nil {
				t.Errorf("AddDIP: %v", err)
				return
			}
			if err := e.RemoveDIP(now, vip, extra); err != nil {
				t.Errorf("RemoveDIP: %v", err)
				return
			}
			_ = e.Stats()
			e.EndConnection(now, tupleN(i))
		}
	}()
	wg.Wait()
	e.Advance(now.Add(simtime.Duration(simtime.Second)))
	if st := e.Stats(); st.Dataplane.Packets != workers*perWorker {
		t.Fatalf("aggregate packets = %d, want %d", st.Dataplane.Packets, workers*perWorker)
	}
}
