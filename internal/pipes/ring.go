package pipes

// The batch hot path: persistent per-pipe workers fed by bounded SPSC
// descriptor rings, in the run-to-completion style of software fast paths
// (DPDK, Maglev). ProcessBatch is the single producer — serialized by the
// engine's batch lock — and each pipe's worker is the single consumer of
// its ring. A descriptor covers a pipe's whole share of one batch, so the
// ring traffic is O(pipes) per batch, not O(packets).
//
// Claiming: every descriptor carries an atomic claim flag, and whoever wins
// the CAS — the pipe's worker, or the producer in its assist pass — runs
// the job. The assist pass keeps the batch path fast when workers are slow
// to wake (or the host has fewer cores than pipes: the producer then runs
// every job inline with zero context switches), while on multi-core hosts
// the workers pick their jobs off the rings concurrently and the chip's
// pipes genuinely run in parallel. Ring pushes are best-effort for the same
// reason: a full ring only means the descriptor is not offered to the
// worker, never that the job is lost — the assist pass executes it.

import (
	"sync"
	"sync/atomic"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

// Descriptor claim states.
const (
	jobQueued  uint32 = iota // published, nobody has claimed it
	jobClaimed               // an executor won the CAS and owns the job
)

// batchJob describes one pipe's share of a ProcessBatch call. The engine
// keeps one reusable descriptor per pipe: the producer republishes it each
// batch by rewriting the fields and resetting state to jobQueued. A stale
// ring entry can therefore alias a republished descriptor; the claim CAS
// makes that harmless — each publication is executed exactly once, by
// exactly one goroutine, whichever entry it was claimed through.
type batchJob struct {
	now simtime.Time
	// Exactly one of pkts and frames is non-nil: the descriptor carries a
	// struct-currency batch or a wire-frame batch.
	pkts    []*netproto.Packet
	frames  []netproto.Frame
	idxs    []int32  // indices into pkts/frames owned by this pipe, arrival order
	lanes   []uint64 // chip-level lane hash per packet (indexed like pkts)
	results []dataplane.Result
	state   atomic.Uint32
	wg      *sync.WaitGroup // the engine's batch completion group
}

// ringSize bounds each pipe's descriptor ring. With producers serialized
// by the batch lock at most one live descriptor per pipe is outstanding;
// the slack absorbs stale entries a parked worker has not reclaimed yet.
const ringSize = 8

// spscRing is a bounded single-producer single-consumer ring of job
// descriptors. The producer owns tail, the consumer owns head; the
// atomic tail store publishes the slot write that precedes it.
type spscRing struct {
	buf  [ringSize]*batchJob
	head atomic.Uint32
	tail atomic.Uint32
}

// push appends j, reporting false when the ring is full (the caller then
// runs the job inline instead of handing it to the worker).
func (r *spscRing) push(j *batchJob) bool {
	t := r.tail.Load()
	if t-r.head.Load() == ringSize {
		return false
	}
	r.buf[t%ringSize] = j
	r.tail.Store(t + 1)
	return true
}

// pop removes and returns the oldest descriptor, or nil when empty.
func (r *spscRing) pop() *batchJob {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil
	}
	j := r.buf[h%ringSize]
	r.head.Store(h + 1)
	return j
}

// pipeWorker is the long-lived consumer side of one pipe's batch path.
type pipeWorker struct {
	ring spscRing
	// notify wakes a parked worker after a push; it is buffered so the
	// producer never blocks and redundant wakes coalesce.
	notify chan struct{}
}

// worker is pipe pi's run-to-completion loop: park until notified, drain
// the ring, repeat until the engine closes. Started lazily by the first
// multi-pipe batch; exits via Engine.Close.
func (e *Engine) worker(pi int) {
	defer e.workerWG.Done()
	w := e.workers[pi]
	for {
		select {
		case <-e.quit:
			// Close holds the batch lock, so no batch is in flight; any
			// remaining ring entries are stale claimed descriptors. Drain
			// them anyway so nothing is left referencing caller memory.
			for w.ring.pop() != nil {
			}
			return
		case <-w.notify:
		}
		for j := w.ring.pop(); j != nil; j = w.ring.pop() {
			e.executeJob(pi, j)
		}
	}
}

// executeJob claims and runs j on pipe pi; descriptors already claimed by
// the other side (worker vs producer assist) are skipped.
func (e *Engine) executeJob(pi int, j *batchJob) {
	if !j.state.CompareAndSwap(jobQueued, jobClaimed) {
		return
	}
	e.runJob(pi, j)
	j.wg.Done()
}

// runJob processes one pipe's shard under the pipe lock. Background CPU
// work is advanced once for the whole shard — every packet of a job shares
// its timestamp, so the per-packet Advance of the single-packet path would
// re-discover "nothing due" len(idxs)-1 times. Packets then run in arrival
// order; disjoint index sets across pipes make each result slot
// single-writer.
func (e *Engine) runJob(pi int, j *batchJob) {
	p := e.pipes[pi]
	p.mu.Lock()
	p.cp.Advance(j.now)
	if j.frames != nil {
		for _, i := range j.idxs {
			f := &j.frames[i]
			p.dp.ProcessFrameInto(j.now, f, j.lanes[i], &j.results[i])
			p.processed++
			p.cp.HandleTupleResultInto(j.now, f.Tuple, &j.results[i])
		}
	} else {
		for _, i := range j.idxs {
			pkt := j.pkts[i]
			p.dp.ProcessLaneInto(j.now, pkt, j.lanes[i], &j.results[i])
			p.processed++
			p.cp.HandleResultInto(j.now, pkt, &j.results[i])
		}
	}
	p.mu.Unlock()
}
