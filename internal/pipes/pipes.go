// Package pipes models the multi-pipeline organisation of a real switching
// ASIC. Tofino-class chips do not forward through one pipeline: the chip is
// built from 2-4 independent pipes, each with its own match stages, SRAM
// budget, learning filter and (logically) its own slice of the management
// CPU. A port belongs to exactly one pipe, so every packet of a connection
// traverses the same pipe, and each pipe keeps its own ConnTable — the
// chip-level connection state is the disjoint union of per-pipe tables.
//
// The Engine reproduces that structure: N dataplane.Switch+
// ctrlplane.ControlPlane pairs, each guarded by its own mutex, with traffic
// sharded by a hash of the connection 5-tuple (the stand-in for "which
// ingress port group the flow enters on"). Because the shard is by
// connection, per-connection consistency is untouched: a connection is
// pinned to one pipe and its ConnTable for life. VIP and DIP-pool
// configuration is replicated to every pipe, exactly as the control plane
// programs identical VIPTable/DIPPoolTable contents into each pipeline.
//
// ProcessBatch drives the pipes through N long-lived worker goroutines —
// one per pipe, started lazily on the first batch and stopped by Close —
// fed by bounded SPSC descriptor rings (see ring.go). The batch path is
// allocation-free in steady state: shard buffers and lane-hash buffers are
// per-engine and reused, the pipe choice and the per-pipe key hashes all
// derive from one chip-level lane hash per packet (no 37-byte KeyBytes
// serialization on the hot path), and each result slot is written in place
// by exactly one executor. This both exercises the sharded path under the
// race detector and, on multi-core hosts, lets the simulation itself
// scale. Aggregate Stats, Metrics and SRAM figures are chip-level sums
// over the pipes.
package pipes

import (
	"fmt"
	"sync"

	"repro/internal/asic"
	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/hashing"
	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Config parameterizes a multi-pipe engine. Dataplane describes the chip
// as a whole — the engine divides the SRAM budget and the ConnTable sizing
// target evenly across pipes (asic.Config.PerPipe).
type Config struct {
	// Pipes is the number of independent forwarding pipelines (1-4 on real
	// chips; any positive count is accepted). Values below 1 mean 1.
	Pipes int
	// Dataplane is the chip-level data-plane configuration.
	Dataplane dataplane.Config
	// Controlplane configures each pipe's slice of the switch software.
	Controlplane ctrlplane.Config
	// ShardSeed seeds the 5-tuple -> pipe hash. Zero derives one from the
	// data-plane seed.
	ShardSeed uint64
	// Tracer receives telemetry from every pipe, labelled with the pipe
	// index. It overrides Dataplane.Tracer (which would mislabel all pipes
	// with one index). Implementations must be safe for concurrent use:
	// pipes emit events in parallel under ProcessBatch.
	Tracer telemetry.Tracer
}

// pipe is one forwarding pipeline: a data plane, its control-plane slice,
// and the lock that serializes access to both (the per-pipe equivalent of
// the single-pipe facade mutex).
type pipe struct {
	mu        sync.Mutex
	dp        *dataplane.Switch
	cp        *ctrlplane.ControlPlane
	processed uint64 // packets this pipe has handled (for occupancy stats)
}

// Engine is a chip of N parallel pipes behind one management interface.
// Multi-pipe engines own per-pipe worker goroutines for the batch path;
// callers that batch should Close the engine when done with it (Close is
// optional for single-pipe engines and engines that never batched).
type Engine struct {
	cfg      Config
	seed     uint64 // shard seed (tuple -> pipe)
	laneSeed uint64 // chip-level ingress lane hash seed (multi-pipe)
	pipes    []*pipe

	// Batch path state (multi-pipe only). batchMu serializes producers:
	// it keeps each pipe's ring single-producer and lets the shard/lane
	// buffers below be reused allocation-free across batches.
	batchMu  sync.Mutex
	workers  []*pipeWorker
	jobs     []*batchJob
	shards   [][]int32 // per-pipe packet indices, reused
	lanes    []uint64  // per-packet lane hashes, reused
	batchWG  sync.WaitGroup
	started  bool // workers launched (lazily, on first batch)
	closed   bool // Close ran; later batches execute on the caller
	quit     chan struct{}
	workerWG sync.WaitGroup
}

// Stats aggregates per-pipe hardware and software counters into chip-level
// totals.
type Stats struct {
	Dataplane    dataplane.Stats
	Controlplane ctrlplane.Metrics
	Connections  int // sum of per-pipe software shadows
	MemoryBytes  int // sum of per-pipe SRAM consumption
	// PipePackets[i] is the number of packets pipe i processed; the spread
	// across pipes is the shard balance.
	PipePackets []uint64
}

// New builds an engine of cfg.Pipes pipes. Each pipe receives 1/N of the
// chip SRAM and of the ConnTable sizing target; seeds are diversified per
// pipe so the pipes' hash functions are independent, as on real hardware.
// shardSeedSalt diversifies the default shard seed away from the chip
// seed, so sharding and in-pipe hashing stay independent functions.
const shardSeedSalt = 0x9155_0a1d_70_4e5

func New(cfg Config) (*Engine, error) {
	n := cfg.Pipes
	if n < 1 {
		n = 1
	}
	seed := cfg.ShardSeed
	if seed == 0 {
		seed = cfg.Dataplane.Seed ^ shardSeedSalt
		if seed == 0 {
			// Dataplane.Seed == shardSeedSalt: the XOR would collapse to
			// zero and the shard hash would silently run unseeded. Keep the
			// derivation explicit and deterministic instead.
			seed = shardSeedSalt
		}
	}
	e := &Engine{
		cfg:      cfg,
		seed:     seed,
		laneSeed: cfg.Dataplane.Seed,
		pipes:    make([]*pipe, n),
		quit:     make(chan struct{}),
	}
	for i := range e.pipes {
		dcfg := cfg.Dataplane
		dcfg.Chip = dcfg.Chip.PerPipe(n)
		dcfg.ConnTableEntries = (cfg.Dataplane.ConnTableEntries + n - 1) / n
		dcfg.Seed = cfg.Dataplane.Seed ^ (0x9e3779b97f4a7c15 * uint64(i+1))
		if n > 1 {
			// Multi-pipe chips hash the tuple once at ingress and let every
			// pipe derive its key hash and digest from that lane hash; the
			// single-pipe engine keeps the byte-hashing scheme bit-for-bit.
			dcfg.DerivedHashes = true
			dcfg.LaneSeed = e.laneSeed
		}
		if cfg.Tracer != nil {
			dcfg.Tracer = cfg.Tracer
		}
		dcfg.Pipe = i
		dp, err := dataplane.New(dcfg)
		if err != nil {
			return nil, fmt.Errorf("pipes: pipe %d: %w", i, err)
		}
		e.pipes[i] = &pipe{dp: dp, cp: ctrlplane.New(dp, cfg.Controlplane)}
	}
	if n > 1 {
		e.workers = make([]*pipeWorker, n)
		e.jobs = make([]*batchJob, n)
		e.shards = make([][]int32, n)
		for i := range e.workers {
			e.workers[i] = &pipeWorker{notify: make(chan struct{}, 1)}
			e.jobs[i] = &batchJob{wg: &e.batchWG}
			e.jobs[i].state.Store(jobClaimed) // nothing published yet
		}
	}
	return e, nil
}

// Close stops the engine's per-pipe batch workers and waits for them to
// exit. It is idempotent, safe to call concurrently with ProcessBatch —
// in-flight batches complete first — and does not disable the engine:
// later batches still work, executing on the caller's goroutine through
// the same job path. Single-pipe engines have no workers; Close is a
// no-op.
func (e *Engine) Close() {
	if len(e.pipes) == 1 {
		return
	}
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.started {
		close(e.quit)
		e.workerWG.Wait()
	}
}

// NumPipes returns the number of pipes.
func (e *Engine) NumPipes() int { return len(e.pipes) }

// PipeOf returns the index of the pipe that carries connection t. The
// shard hashes the full 5-tuple — through the chip-level lane hash, not a
// KeyBytes serialization round-trip — so sharding stays stable for a
// connection's lifetime and per-pipe ConnTables never see each other's
// flows. Every tuple-addressed entry point (Process, ProcessBatch,
// EndConnection) uses this one mapping.
func (e *Engine) PipeOf(t netproto.FiveTuple) int {
	if len(e.pipes) == 1 {
		return 0
	}
	return int(hashing.HashUint64(e.seed, netproto.LaneHash(e.laneSeed, &t)) % uint64(len(e.pipes)))
}

// Dataplane exposes pipe i's data plane for inspection. Callers must not
// interleave direct mutations with concurrent ProcessBatch calls; the
// accessor bypasses the pipe lock.
func (e *Engine) Dataplane(i int) *dataplane.Switch { return e.pipes[i].dp }

// Controlplane exposes pipe i's switch software (same caveat as Dataplane).
func (e *Engine) Controlplane(i int) *ctrlplane.ControlPlane { return e.pipes[i].cp }

// Inspect runs fn against pipe i's planes under the pipe lock, so debug
// surfaces can read table state safely while ProcessBatch workers run on
// other goroutines. fn must not retain the pointers past its return.
func (e *Engine) Inspect(i int, fn func(dp *dataplane.Switch, cp *ctrlplane.ControlPlane)) {
	p := e.pipes[i]
	p.mu.Lock()
	defer p.mu.Unlock()
	fn(p.dp, p.cp)
}

// process runs one packet on pipe p. Callers hold p.mu.
func (p *pipe) process(now simtime.Time, pkt *netproto.Packet) dataplane.Result {
	p.cp.Advance(now)
	res := p.dp.Process(now, pkt)
	p.processed++
	return p.cp.HandleResult(now, pkt, res)
}

// processFrame runs one wire frame on pipe p. Callers hold p.mu.
func (p *pipe) processFrame(now simtime.Time, f *netproto.Frame) dataplane.Result {
	p.cp.Advance(now)
	res := p.dp.ProcessFrame(now, f)
	p.processed++
	p.cp.HandleTupleResultInto(now, f.Tuple, &res)
	return res
}

// Process runs one packet through its owning pipe.
func (e *Engine) Process(now simtime.Time, pkt *netproto.Packet) dataplane.Result {
	p := e.pipes[e.PipeOf(pkt.Tuple)]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.process(now, pkt)
}

// ProcessFrame runs one wire frame through its owning pipe. The frame's
// cached lane hash doubles as the shard key, so the tuple is hashed at most
// once across sharding and pipeline.
func (e *Engine) ProcessFrame(now simtime.Time, f *netproto.Frame) dataplane.Result {
	pi := 0
	if len(e.pipes) > 1 {
		pi = int(hashing.HashUint64(e.seed, f.LaneHash(e.laneSeed)) % uint64(len(e.pipes)))
	}
	p := e.pipes[pi]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.processFrame(now, f)
}

// ProcessBatch runs a batch of packets through the chip: packets are
// scattered to their owning pipes, each pipe processes its share in
// arrival order, and results are gathered back in input order. Result i
// corresponds to pkts[i]. On a multi-pipe engine the shares run as jobs on
// the per-pipe workers (see ring.go); the call returns once every share
// has completed.
func (e *Engine) ProcessBatch(now simtime.Time, pkts []*netproto.Packet) []dataplane.Result {
	results := make([]dataplane.Result, len(pkts))
	e.ProcessBatchInto(now, pkts, results)
	return results
}

// ProcessBatchInto is ProcessBatch writing into a caller-provided results
// slice (len(results) >= len(pkts)), the allocation-free form for callers
// that reuse buffers across batches. results[i] corresponds to pkts[i];
// slots past len(pkts) are untouched.
func (e *Engine) ProcessBatchInto(now simtime.Time, pkts []*netproto.Packet, results []dataplane.Result) {
	if len(pkts) == 0 {
		return
	}
	if len(e.pipes) == 1 {
		// The single-pipe case keeps the plain lock-based loop: there is
		// nothing to shard and nothing to hand off.
		p := e.pipes[0]
		p.mu.Lock()
		for i, pkt := range pkts {
			results[i] = p.process(now, pkt)
		}
		p.mu.Unlock()
		return
	}
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	// Scatter: one lane hash per packet feeds both the pipe choice and —
	// via ProcessLane — the pipe's key hash and digest, so the tuple is
	// hashed exactly once on this path. Index lists preserve arrival order
	// within a pipe.
	lanes := e.shard(len(pkts), func(i int) uint64 {
		return netproto.LaneHash(e.laneSeed, &pkts[i].Tuple)
	})
	e.runShards(now, pkts, nil, lanes, results)
}

// ProcessFrames is ProcessBatch on the wire-native currency: each frame is
// routed to its owning pipe by its cached lane hash and processed with zero
// re-decode. results[i] corresponds to frames[i]. Frames are read, never
// written, by the pipeline — TX rewrites belong to the caller after the
// verdicts return.
func (e *Engine) ProcessFrames(now simtime.Time, frames []netproto.Frame) []dataplane.Result {
	results := make([]dataplane.Result, len(frames))
	e.ProcessFramesInto(now, frames, results)
	return results
}

// ProcessFramesInto is ProcessFrames writing into a caller-provided results
// slice (len(results) >= len(frames)), the allocation-free form for the
// socket RX loop that reuses frame and result buffers across batches.
func (e *Engine) ProcessFramesInto(now simtime.Time, frames []netproto.Frame, results []dataplane.Result) {
	if len(frames) == 0 {
		return
	}
	if len(e.pipes) == 1 {
		p := e.pipes[0]
		p.mu.Lock()
		for i := range frames {
			results[i] = p.processFrame(now, &frames[i])
		}
		p.mu.Unlock()
		return
	}
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	// The frame memoizes its lane hash at first use (the producer computes
	// it here, before publication), so re-batching the same frames — e.g. a
	// retried TX — never re-hashes the tuple.
	lanes := e.shard(len(frames), func(i int) uint64 {
		return frames[i].LaneHash(e.laneSeed)
	})
	e.runShards(now, nil, frames, lanes, results)
}

// shard fills e.shards with per-pipe packet index lists from one lane hash
// per packet and returns the reused lane buffer. Callers hold batchMu.
func (e *Engine) shard(count int, laneOf func(i int) uint64) []uint64 {
	if cap(e.lanes) < count {
		e.lanes = make([]uint64, count)
	}
	lanes := e.lanes[:count]
	n := uint64(len(e.pipes))
	for pi := range e.shards {
		e.shards[pi] = e.shards[pi][:0]
	}
	for i := 0; i < count; i++ {
		lane := laneOf(i)
		lanes[i] = lane
		pi := hashing.HashUint64(e.seed, lane) % n
		e.shards[pi] = append(e.shards[pi], int32(i))
	}
	return lanes
}

// runShards publishes one descriptor per non-empty shard, wakes the
// workers, assists, and waits for batch completion. Exactly one of pkts and
// frames is non-nil — the descriptor carries whichever currency the batch
// uses. Callers hold batchMu.
func (e *Engine) runShards(now simtime.Time, pkts []*netproto.Packet, frames []netproto.Frame, lanes []uint64, results []dataplane.Result) {
	if !e.started && !e.closed {
		e.started = true
		for pi := range e.pipes {
			e.workerWG.Add(1)
			go e.worker(pi)
		}
	}
	// Publish one descriptor per non-empty shard and wake its worker. A
	// full ring or a closed engine just skips the hand-off: the assist
	// pass below runs the job inline.
	for pi := range e.pipes {
		if len(e.shards[pi]) == 0 {
			continue
		}
		j := e.jobs[pi]
		j.now, j.pkts, j.frames, j.idxs, j.lanes, j.results = now, pkts, frames, e.shards[pi], lanes, results
		// Order matters: the completion count and the job fields must be in
		// place before the state reset publishes the job — a worker can
		// claim it through a stale ring entry the instant state reads
		// jobQueued, before the push below.
		e.batchWG.Add(1)
		j.state.Store(jobQueued)
		if e.started && !e.closed && e.workers[pi].ring.push(j) {
			select {
			case e.workers[pi].notify <- struct{}{}:
			default:
			}
		}
	}
	// Producer assist: claim and run whatever the workers have not picked
	// up yet, then wait out the jobs they did claim.
	for pi := range e.pipes {
		if len(e.shards[pi]) > 0 {
			e.executeJob(pi, e.jobs[pi])
		}
	}
	e.batchWG.Wait()
	// Drop the caller's memory from the reusable descriptors so the engine
	// does not pin the last batch's packets between calls.
	for pi := range e.pipes {
		j := e.jobs[pi]
		j.pkts, j.frames, j.idxs, j.lanes, j.results = nil, nil, nil, nil, nil
	}
}

// AddVIP announces a VIP with an initial pool on every pipe (VIP
// configuration is replicated chip-wide). On failure the VIP is rolled back
// from pipes already programmed, so the pipes never diverge.
func (e *Engine) AddVIP(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP, meterBytesPerSec float64) error {
	for i, p := range e.pipes {
		p.mu.Lock()
		err := p.cp.AddVIP(now, vip, pool, meterBytesPerSec)
		p.mu.Unlock()
		if err != nil {
			for j := 0; j < i; j++ {
				q := e.pipes[j]
				q.mu.Lock()
				_ = q.cp.RemoveVIP(now, vip)
				q.mu.Unlock()
			}
			return err
		}
	}
	return nil
}

// RemoveVIP withdraws a VIP from every pipe. Unlike the pool operations
// below, a failure triggers no rollback: every pipe is attempted and the
// first error returned, because the target state — "VIP absent" — is
// already identical on every pipe that succeeded or never had the VIP, so
// the operation converges without repair.
func (e *Engine) RemoveVIP(now simtime.Time, vip dataplane.VIP) error {
	var first error
	for _, p := range e.pipes {
		p.mu.Lock()
		err := p.cp.RemoveVIP(now, vip)
		p.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AddDIP adds a backend to vip's pool on every pipe with PCC. A mid-fanout
// failure removes the backend again from the pipes already updated.
func (e *Engine) AddDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error {
	return e.fanout(
		func(p *pipe) error { return p.cp.AddDIP(now, vip, dip) },
		func(p *pipe) { _ = p.cp.RemoveDIP(now, vip, dip) },
	)
}

// RemoveDIP removes a backend from vip's pool on every pipe with PCC. A
// mid-fanout failure re-adds the backend on the pipes already updated.
func (e *Engine) RemoveDIP(now simtime.Time, vip dataplane.VIP, dip dataplane.DIP) error {
	return e.fanout(
		func(p *pipe) error { return p.cp.RemoveDIP(now, vip, dip) },
		func(p *pipe) { _ = p.cp.AddDIP(now, vip, dip) },
	)
}

// RequestUpdate replaces vip's pool wholesale on every pipe with PCC. A
// mid-fanout failure re-requests, on the pipes already updated, the target
// pool each was heading for before the call.
func (e *Engine) RequestUpdate(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	prior := make(map[*pipe][]dataplane.DIP, len(e.pipes))
	return e.fanout(
		func(p *pipe) error {
			if before, err := p.cp.TargetPool(vip); err == nil {
				prior[p] = before
			}
			return p.cp.RequestUpdate(now, vip, pool)
		},
		func(p *pipe) {
			if before, ok := prior[p]; ok {
				_ = p.cp.RequestUpdate(now, vip, before)
			}
		},
	)
}

// fanout applies op to the pipes in order; on the first failure it applies
// undo to the pipes already mutated, in reverse order, and returns the
// error — the same discipline as AddVIP, so a mid-fanout failure cannot
// leave the chip with diverged per-pipe pools. Config errors are
// deterministic across pipes when VIP state is replicated, so in the
// common case pipe 0 fails and there is nothing to undo; the rollback
// covers the pathological cases (a pipe diverged through direct
// Controlplane access, version exhaustion on one pipe).
func (e *Engine) fanout(op func(p *pipe) error, undo func(p *pipe)) error {
	for i, p := range e.pipes {
		p.mu.Lock()
		err := op(p)
		p.mu.Unlock()
		if err != nil {
			for j := i - 1; j >= 0; j-- {
				q := e.pipes[j]
				q.mu.Lock()
				undo(q)
				q.mu.Unlock()
			}
			return err
		}
	}
	return nil
}

// CurrentPool returns the pool new connections map to (identical on every
// pipe; read from pipe 0).
func (e *Engine) CurrentPool(vip dataplane.VIP) ([]dataplane.DIP, error) {
	p := e.pipes[0]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cp.CurrentPool(vip)
}

// PendingWork sums every pipe's control-plane pending work (undrained
// learn events, queued inserts, in-flight and queued pool updates). Zero
// means the whole chip is drained — the rolling-update gate.
func (e *Engine) PendingWork() int {
	n := 0
	for _, p := range e.pipes {
		p.mu.Lock()
		n += p.cp.PendingWork()
		p.mu.Unlock()
	}
	return n
}

// EndConnection tells the owning pipe that a connection terminated.
func (e *Engine) EndConnection(now simtime.Time, t netproto.FiveTuple) {
	p := e.pipes[e.PipeOf(t)]
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cp.EndConnection(now, t)
}

// Advance runs background work due at or before now on every pipe.
func (e *Engine) Advance(now simtime.Time) {
	for _, p := range e.pipes {
		p.mu.Lock()
		p.cp.Advance(now)
		p.mu.Unlock()
	}
}

// NextEventTime returns the earliest time any pipe has background work due.
func (e *Engine) NextEventTime() (simtime.Time, bool) {
	var best simtime.Time
	have := false
	for _, p := range e.pipes {
		p.mu.Lock()
		at, ok := p.cp.NextEventTime()
		p.mu.Unlock()
		if ok && (!have || at.Before(best)) {
			best, have = at, true
		}
	}
	return best, have
}

// NextDue returns the earliest deadline of any kind across the pipes —
// background work (NextEventTime) or aging-wheel ticks. The wall-clock
// runtime sleeps on this value; the simulation path keeps NextEventTime,
// which excludes aging, so event sequences are unchanged.
func (e *Engine) NextDue() (simtime.Time, bool) {
	var best simtime.Time
	have := false
	consider := func(at simtime.Time, ok bool) {
		if ok && (!have || at.Before(best)) {
			best, have = at, true
		}
	}
	for _, p := range e.pipes {
		p.mu.Lock()
		at, ok := p.cp.NextEventTime()
		ag, agOK := p.cp.NextAging()
		tr, trOK := p.cp.NextTransition()
		p.mu.Unlock()
		consider(at, ok)
		consider(ag, agOK)
		consider(tr, trOK)
	}
	return best, have
}

// PipeStats is one pipe's view of the chip: its own hardware counters,
// software metrics and SRAM consumption. The facade exposes the same type
// for single-pipe switches, so callers inspect per-pipe state without
// branching on the pipe count.
type PipeStats struct {
	Pipe         int // pipe index on the chip
	Dataplane    dataplane.Stats
	Controlplane ctrlplane.Metrics
	Connections  int    // software shadow size of this pipe
	MemoryBytes  int    // SRAM consumed by this pipe's tables
	Packets      uint64 // packets this pipe processed (shard balance)
}

// PerPipe returns each pipe's individual counters in pipe order.
func (e *Engine) PerPipe() []PipeStats {
	out := make([]PipeStats, len(e.pipes))
	for i, p := range e.pipes {
		p.mu.Lock()
		out[i] = PipeStats{
			Pipe:         i,
			Dataplane:    p.dp.Stats(),
			Controlplane: p.cp.Metrics(),
			Connections:  p.cp.TrackedConns(),
			MemoryBytes:  p.dp.Memory().Total(),
			Packets:      p.processed,
		}
		p.mu.Unlock()
	}
	return out
}

// Stats returns chip-level totals summed over the pipes.
func (e *Engine) Stats() Stats {
	out := Stats{PipePackets: make([]uint64, len(e.pipes))}
	for i, p := range e.pipes {
		p.mu.Lock()
		ds := p.dp.Stats()
		ms := p.cp.Metrics()
		out.Connections += p.cp.TrackedConns()
		out.MemoryBytes += p.dp.Memory().Total()
		out.PipePackets[i] = p.processed
		p.mu.Unlock()
		out.Dataplane.Add(ds)
		out.Controlplane.Add(ms)
	}
	return out
}

// Memory returns the chip-level SRAM breakdown summed over pipes.
func (e *Engine) Memory() dataplane.MemoryBreakdown {
	var m dataplane.MemoryBreakdown
	for _, p := range e.pipes {
		p.mu.Lock()
		pm := p.dp.Memory()
		p.mu.Unlock()
		m.Add(pm)
	}
	return m
}

// Used returns the chip-level allocated hardware resources summed over
// pipes (Table 2 classes).
func (e *Engine) Used() asic.Resources {
	var r asic.Resources
	for _, p := range e.pipes {
		p.mu.Lock()
		u := p.dp.Chip().Used()
		p.mu.Unlock()
		r.Add(u)
	}
	return r
}
