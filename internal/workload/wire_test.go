package workload

import (
	"bytes"
	"net/netip"
	"testing"

	"repro/internal/netproto"
)

func testWireConfig() WireConfig {
	return WireConfig{
		Conns:      300,
		VIP:        netip.MustParseAddrPort("20.0.0.1:80"),
		TCPFlags:   netproto.FlagACK,
		PayloadLen: 9, // odd length exercises checksum padding
	}
}

// TestWireTrafficCurrenciesAgree locks the two currencies together: every
// frame must parse to exactly the struct it was marshaled from, with
// canonical framing (frame length == struct WireLen == arena slice).
func TestWireTrafficCurrenciesAgree(t *testing.T) {
	for _, v6 := range []bool{false, true} {
		cfg := testWireConfig()
		if v6 {
			cfg.IPv6 = true
			cfg.VIP = netip.MustParseAddrPort("[2001:db8::1]:80")
		}
		w, err := NewWireTraffic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if w.Len() != cfg.Conns {
			t.Fatalf("Len = %d, want %d", w.Len(), cfg.Conns)
		}
		pkts, frames := w.Packets(), w.Frames()
		seen := make(map[netproto.FiveTuple]bool, w.Len())
		total := 0
		for i := range frames {
			if frames[i].Tuple != pkts[i].Tuple {
				t.Fatalf("conn %d: frame tuple %v != packet tuple %v", i, frames[i].Tuple, pkts[i].Tuple)
			}
			if frames[i].TCPFlags != pkts[i].TCPFlags {
				t.Fatalf("conn %d: flags diverge", i)
			}
			if !bytes.Equal(frames[i].Payload(), pkts[i].Payload) {
				t.Fatalf("conn %d: payload diverges", i)
			}
			if got, want := frames[i].WireLen(), pkts[i].WireLen(); got != want {
				t.Fatalf("conn %d: frame WireLen %d != packet WireLen %d", i, got, want)
			}
			if seen[frames[i].Tuple] {
				t.Fatalf("conn %d: duplicate tuple %v", i, frames[i].Tuple)
			}
			seen[frames[i].Tuple] = true
			total += frames[i].WireLen()
		}
		if total != w.WireBytes() {
			t.Fatalf("sum of frame lengths %d != WireBytes %d", total, w.WireBytes())
		}
	}
}

// TestWireTrafficDeterministic: same config, byte-identical arena.
func TestWireTrafficDeterministic(t *testing.T) {
	a, err := NewWireTraffic(testWireConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWireTraffic(testWireConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.arena, b.arena) {
		t.Fatal("two builds from the same config produced different wire bytes")
	}
}

// TestWireTrafficRejectsBadConfig covers the constructor's validation.
func TestWireTrafficRejectsBadConfig(t *testing.T) {
	if _, err := NewWireTraffic(WireConfig{Conns: 0, VIP: netip.MustParseAddrPort("20.0.0.1:80")}); err == nil {
		t.Error("Conns=0 accepted")
	}
	if _, err := NewWireTraffic(WireConfig{Conns: 1}); err == nil {
		t.Error("missing VIP accepted")
	}
	if _, err := NewWireTraffic(WireConfig{Conns: 1, VIP: netip.MustParseAddrPort("20.0.0.1:80"), IPv6: true}); err == nil {
		t.Error("family mismatch accepted")
	}
}

// TestWireTrafficUDP exercises the UDP branch (no flags on the wire).
func TestWireTrafficUDP(t *testing.T) {
	cfg := testWireConfig()
	cfg.Proto = netproto.ProtoUDP
	w, err := NewWireTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range w.Frames() {
		if f.Tuple.Proto != netproto.ProtoUDP {
			t.Fatalf("conn %d: proto %v", i, f.Tuple.Proto)
		}
		if f.TCPFlags != 0 {
			t.Fatalf("conn %d: UDP frame with TCP flags", i)
		}
	}
}
