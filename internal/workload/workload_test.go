package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/simtime"
	"repro/internal/stats"
)

func TestFleetComposition(t *testing.T) {
	fleet := Fleet(1)
	if len(fleet) != 100 {
		t.Fatalf("fleet size = %d, want 100 (paper: ~a hundred clusters)", len(fleet))
	}
	counts := map[ClusterType]int{}
	for _, c := range fleet {
		counts[c.Type]++
		if c.ToRs <= 0 || c.VIPs <= 0 || c.DIPsPerVIP <= 0 {
			t.Fatalf("cluster %s has degenerate shape: %+v", c.Name, c)
		}
		if c.ActiveConnsPerToRP99 < c.ActiveConnsPerToRMedian {
			t.Fatalf("cluster %s: p99 < median", c.Name)
		}
		if c.Type == Backend && !c.IPv6 {
			t.Fatalf("backend %s should be IPv6", c.Name)
		}
	}
	if counts[Backend] < counts[PoP] {
		t.Fatal("backends should dominate the fleet")
	}
}

func TestFleetDeterministic(t *testing.T) {
	a := Fleet(7)
	b := Fleet(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fleet not reproducible at %d", i)
		}
	}
	c := Fleet(8)
	if a[0] == c[0] {
		t.Fatal("different seeds gave identical clusters")
	}
}

// TestFigure6Shape checks active-connection spreads: the most loaded PoPs
// and Backends around 10M+ per ToR, Frontends well under 1M.
func TestFigure6Shape(t *testing.T) {
	fleet := Fleet(2)
	perType := map[ClusterType]*stats.CDF{PoP: {}, Frontend: {}, Backend: {}}
	for _, c := range fleet {
		perType[c.Type].Add(float64(c.ActiveConnsPerToRP99))
	}
	if max := perType[Backend].Max(); max < 8e6 || max > 1.6e7 {
		t.Fatalf("backend max conns = %.2g, want ~15M", max)
	}
	if max := perType[PoP].Max(); max < 6e6 || max > 1.2e7 {
		t.Fatalf("pop max conns = %.2g, want ~11M", max)
	}
	if max := perType[Frontend].Max(); max > 1.5e6 {
		t.Fatalf("frontend max conns = %.2g, want < 1M-ish", max)
	}
}

// TestFigure2Shape reproduces the headline Figure 2 claims on the p99
// minute: roughly 32% of clusters above 10 updates/min and a small tail
// above 50.
func TestFigure2Shape(t *testing.T) {
	fleet := Fleet(3)
	rng := rand.New(rand.NewSource(4))
	var p99s, medians stats.CDF
	const minutes = 4320 // 3 days is enough for stable p99-of-minutes
	for _, c := range fleet {
		series := c.MinuteUpdateSeries(rng, minutes)
		cdf := stats.CDF{}
		for _, v := range series {
			cdf.Add(float64(v))
		}
		p99s.Add(cdf.P99())
		medians.Add(cdf.Median())
	}
	fracAbove10 := p99s.FractionAbove(10)
	if fracAbove10 < 0.15 || fracAbove10 > 0.55 {
		t.Fatalf("clusters with p99 minute > 10 updates = %.2f, want ~0.32", fracAbove10)
	}
	fracAbove50 := p99s.FractionAbove(50)
	if fracAbove50 == 0 || fracAbove50 > 0.15 {
		t.Fatalf("clusters with p99 minute > 50 updates = %.2f, want small but nonzero", fracAbove50)
	}
	// Some clusters see updates in their median minute.
	if medians.Max() < 1 {
		t.Fatal("no cluster has updates in its median minute")
	}
}

func TestMinuteSeriesNonNegative(t *testing.T) {
	c := Fleet(5)[0]
	rng := rand.New(rand.NewSource(6))
	for _, v := range c.MinuteUpdateSeries(rng, 1000) {
		if v < 0 {
			t.Fatal("negative update count")
		}
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Small rate: mean close to lambda.
	sum := 0
	for i := 0; i < 20000; i++ {
		sum += poisson(rng, 3.0)
	}
	if mean := float64(sum) / 20000; math.Abs(mean-3.0) > 0.1 {
		t.Fatalf("poisson(3) mean = %.3f", mean)
	}
	// Large rate path.
	sum = 0
	for i := 0; i < 5000; i++ {
		sum += poisson(rng, 200)
	}
	if mean := float64(sum) / 5000; math.Abs(mean-200) > 2 {
		t.Fatalf("poisson(200) mean = %.2f", mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("nonpositive rate should give 0")
	}
}

// TestFigure3Shape: fleet-wide root causes are dominated by upgrades.
func TestFigure3Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	counter := stats.NewCounter()
	for i := 0; i < 50000; i++ {
		counter.Inc(SampleCause(rng, Backend).String(), 1)
	}
	if f := counter.Fraction("upgrade"); f < 0.79 || f < CauseWeight(Upgrade)-0.03 || f > CauseWeight(Upgrade)+0.03 {
		t.Fatalf("backend upgrade fraction = %.3f, want ~0.827", f)
	}
	// PoPs never see upgrades.
	for i := 0; i < 1000; i++ {
		if c := SampleCause(rng, PoP); c == Upgrade || c == Testing {
			t.Fatalf("PoP sampled cause %v", c)
		}
	}
}

// TestFigure4Shape: upgrade downtime 3 min median, ~100 min p99.
func TestFigure4Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var cdf stats.CDF
	for i := 0; i < 20000; i++ {
		cdf.Add(SampleDowntime(rng, Upgrade).Minutes())
	}
	if med := cdf.Median(); med < 2 || med > 4.5 {
		t.Fatalf("upgrade downtime median = %.1f min, want ~3", med)
	}
	if p99 := cdf.P99(); p99 < 40 || p99 > 260 {
		t.Fatalf("upgrade downtime p99 = %.0f min, want ~100", p99)
	}
	if SampleDowntime(rng, Provisioning) != 0 {
		t.Fatal("provisioning has no downtime")
	}
	if SampleDowntime(rng, Removing) < simtime.Duration(simtime.Hour) {
		t.Fatal("removed DIPs should not come back")
	}
}

// TestFlowDurations: Hadoop 10 s median, cache 4.5 min median.
func TestFlowDurations(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var hadoop, cache stats.CDF
	for i := 0; i < 20000; i++ {
		hadoop.Add(SampleFlowDuration(rng, Hadoop).Seconds())
		cache.Add(SampleFlowDuration(rng, Cache).Seconds())
	}
	if med := hadoop.Median(); med < 8 || med > 12 {
		t.Fatalf("hadoop median = %.1f s, want ~10", med)
	}
	if med := cache.Median(); med < 220 || med > 330 {
		t.Fatalf("cache median = %.0f s, want ~270", med)
	}
}

// TestFigure8Shape: per-VIP new connection rates reach tens of millions
// per minute in the tail.
func TestFigure8Shape(t *testing.T) {
	fleet := Fleet(11)
	rng := rand.New(rand.NewSource(12))
	var cdf stats.CDF
	for _, c := range fleet {
		for v := 0; v < 50; v++ {
			cdf.Add(c.SampleNewConnsPerVIPMinute(rng))
		}
	}
	if max := cdf.Max(); max < 3e6 {
		t.Fatalf("max new conns/VIP/min = %.2g, want a multi-million tail", max)
	}
	if med := cdf.Median(); med < 500 || med > 1e6 {
		t.Fatalf("median new conns/VIP/min = %.2g", med)
	}
}

func TestStringers(t *testing.T) {
	if PoP.String() != "PoP" || Frontend.String() != "Frontend" || Backend.String() != "Backend" {
		t.Fatal("cluster type names")
	}
	if ClusterType(9).String() == "" {
		t.Fatal("unknown type name empty")
	}
	for c := Upgrade; c <= Removing; c++ {
		if c.String() == "" {
			t.Fatal("cause name empty")
		}
	}
	if Cause(99).String() == "" {
		t.Fatal("unknown cause name empty")
	}
}

func TestCauseWeightsSumToOne(t *testing.T) {
	sum := 0.0
	for c := Upgrade; c <= Removing; c++ {
		sum += CauseWeight(c)
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("cause weights sum to %.4f", sum)
	}
}
