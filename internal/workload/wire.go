package workload

// Wire-byte trace emission: the same synthetic connections the simulators
// drive as structs, materialized as raw packets for the wire-native path.
// Everything is preallocated into one backing arena at construction, so
// benchmarks and equivalence tests can sweep the frames without allocating
// or re-marshaling in their timed regions.

import (
	"fmt"
	"net/netip"

	"repro/internal/netproto"
)

// WireConfig parameterizes a WireTraffic set.
type WireConfig struct {
	// Conns is how many distinct connections to materialize. Required.
	Conns int
	// VIP is the destination of every packet. Required.
	VIP netip.AddrPort
	// Proto selects TCP (default) or UDP.
	Proto netproto.Proto
	// TCPFlags is the flag byte stamped on every TCP packet
	// (e.g. netproto.FlagACK for established traffic; ignored for UDP).
	TCPFlags uint8
	// PayloadLen is the per-packet payload size (default 0: minimum-size
	// packets, the line-rate worst case).
	PayloadLen int
	// IPv6 draws IPv6 source addresses instead of IPv4.
	IPv6 bool
}

// WireTraffic is a deterministic, preallocated wire workload: Conns
// connections to one VIP, each materialized both as a synthetic Packet and
// as marshaled wire bytes parsed into a Frame. The two currencies describe
// byte-for-byte the same traffic, which is what lets callers compare the
// struct path and the frame path on identical input.
type WireTraffic struct {
	pkts   []netproto.Packet
	frames []netproto.Frame
	arena  []byte // every frame's Data aliases into here
}

// connTuple derives connection i's five-tuple: unique source address and
// port, purely from the index (no RNG — wire traces must be reproducible
// byte-for-byte across runs and hosts).
func connTuple(cfg *WireConfig, i int) netproto.FiveTuple {
	var src netip.Addr
	if cfg.IPv6 {
		var b [16]byte
		b[0], b[1] = 0xfd, 0x00
		b[12], b[13], b[14], b[15] = byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
		src = netip.AddrFrom16(b)
	} else {
		src = netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
	}
	proto := cfg.Proto
	if proto == 0 {
		proto = netproto.ProtoTCP
	}
	return netproto.FiveTuple{
		Src:     src,
		Dst:     cfg.VIP.Addr(),
		SrcPort: uint16(1024 + i%60000),
		DstPort: cfg.VIP.Port(),
		Proto:   proto,
	}
}

// NewWireTraffic materializes the workload. All allocation happens here.
func NewWireTraffic(cfg WireConfig) (*WireTraffic, error) {
	if cfg.Conns <= 0 {
		return nil, fmt.Errorf("workload: WireConfig.Conns must be positive, got %d", cfg.Conns)
	}
	if !cfg.VIP.IsValid() {
		return nil, fmt.Errorf("workload: WireConfig.VIP is required")
	}
	if cfg.IPv6 != cfg.VIP.Addr().Is6() {
		return nil, fmt.Errorf("workload: VIP family must match IPv6=%v", cfg.IPv6)
	}
	w := &WireTraffic{
		pkts:   make([]netproto.Packet, cfg.Conns),
		frames: make([]netproto.Frame, cfg.Conns),
	}
	payload := make([]byte, cfg.PayloadLen)
	// First pass: build the structs and marshal each into the shared arena.
	// Offsets are recorded so the second pass can parse frames after the
	// arena has stopped growing (append may move it while it grows).
	offs := make([]int, cfg.Conns+1)
	var scratch []byte
	for i := 0; i < cfg.Conns; i++ {
		w.pkts[i] = netproto.Packet{
			Tuple:   connTuple(&cfg, i),
			Payload: payload,
		}
		if w.pkts[i].Tuple.Proto == netproto.ProtoTCP {
			w.pkts[i].TCPFlags = cfg.TCPFlags
		}
		raw, err := w.pkts[i].Marshal(scratch)
		if err != nil {
			return nil, fmt.Errorf("workload: marshal conn %d: %w", i, err)
		}
		scratch = raw
		w.arena = append(w.arena, raw...)
		offs[i+1] = len(w.arena)
	}
	for i := 0; i < cfg.Conns; i++ {
		if err := netproto.ParseFrame(w.arena[offs[i]:offs[i+1]:offs[i+1]], &w.frames[i]); err != nil {
			return nil, fmt.Errorf("workload: reparse conn %d: %w", i, err)
		}
	}
	return w, nil
}

// Len is the number of connections.
func (w *WireTraffic) Len() int { return len(w.pkts) }

// Packets returns the struct currency of the workload. The slice and its
// elements are shared — treat as read-only.
func (w *WireTraffic) Packets() []netproto.Packet { return w.pkts }

// Frames returns the wire currency of the workload: one parsed frame per
// connection, all aliasing one backing arena. Rewriting a frame in place
// mutates the arena; callers that need pristine bytes per run should
// rebuild the WireTraffic.
func (w *WireTraffic) Frames() []netproto.Frame { return w.frames }

// WireBytes reports the total bytes on the wire across the whole set (the
// figure a byte-rate meter should charge for one full sweep).
func (w *WireTraffic) WireBytes() int { return len(w.arena) }
