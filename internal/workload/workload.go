// Package workload synthesizes the production traces the paper's
// evaluation consumes. The original data — about a hundred clusters of a
// large web service provider — is proprietary, so this package regenerates
// traces from the *published* marginal distributions, which is exactly the
// interface the evaluation reads them through:
//
//	Figure 2: DIP pool updates per minute (median & p99 minute in a month)
//	Figure 3: root causes of DIP additions/removals
//	Figure 4: DIP downtime durations by root cause
//	Figure 6: active connections per ToR switch (median & p99)
//	Figure 8: new connections per VIP per minute
//	§3.2/6: flow durations (Hadoop 10 s median, cache 4.5 min median [39])
//
// All sampling is driven by an explicit *rand.Rand so every experiment is
// reproducible from its seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/simtime"
)

// ClusterType is the paper's three-way cluster taxonomy.
type ClusterType int

// Cluster types.
const (
	PoP ClusterType = iota
	Frontend
	Backend
)

// String names the cluster type.
func (t ClusterType) String() string {
	switch t {
	case PoP:
		return "PoP"
	case Frontend:
		return "Frontend"
	case Backend:
		return "Backend"
	default:
		return fmt.Sprintf("ClusterType(%d)", int(t))
	}
}

// TrafficClass selects the flow-duration distribution ([39]'s workloads).
type TrafficClass int

// Traffic classes.
const (
	Hadoop TrafficClass = iota // median flow 10 s
	Cache                      // median flow 4.5 min
)

// Cluster is one synthesized cluster with the aggregates the experiments
// need. Per-ToR quantities are what a SilkRoad deployed at ToRs would see.
type Cluster struct {
	Name string
	Type ClusterType
	ToRs int
	IPv6 bool // Backends mostly IPv6; PoPs/Frontends mostly IPv4 (§6.1)

	VIPs       int
	DIPsPerVIP int

	// Active connections per ToR switch: the p99-minute figure is what
	// ConnTable must be provisioned for (Figure 6).
	ActiveConnsPerToRMedian int
	ActiveConnsPerToRP99    int

	// New connections per VIP per minute, median across VIPs (Figure 8).
	NewConnsPerVIPMinute float64

	// TotalConns is the cluster-wide peak of simultaneous connections
	// (what Figure 13's capacity planning divides by a balancer's
	// connection capacity). Volume-centric Backends keep this low via
	// persistent connections even when their traffic is enormous.
	TotalConns int

	// DIP pool update process: a per-minute base rate with log-normal
	// burst mixing reproduces Figure 2's heavy tail.
	UpdateRatePerMin float64
	UpdateBurstSigma float64

	// Peak cluster load for the Figure 13 capacity comparison.
	PeakBps float64
	PeakPPS float64
}

// lognormal draws exp(N(ln(median), sigma)).
func lognormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}

// clampF bounds v to [lo, hi].
func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Fleet synthesizes the study's ~100 clusters: a mix of PoPs, Frontends
// and Backends whose aggregate distributions match Figures 2, 6, 8 and the
// capacity spreads behind Figures 12-13.
func Fleet(seed int64) []Cluster {
	rng := rand.New(rand.NewSource(seed))
	var out []Cluster
	add := func(n int, t ClusterType, f func(i int, rng *rand.Rand) Cluster) {
		for i := 0; i < n; i++ {
			out = append(out, f(i, rng))
		}
	}
	// pps derives packets/s from bits/s with a sampled mean packet size.
	pps := func(rng *rand.Rand, bps float64) float64 {
		pkt := clampF(lognormal(rng, 700, 0.4), 200, 1400) // bytes
		return bps / 8 / pkt
	}
	// 24 PoPs: user-facing, many short connections, IPv4, shared DIPs
	// (one DIP change fans out across VIPs -> bursty updates).
	add(24, PoP, func(i int, rng *rand.Rand) Cluster {
		conns := clampF(lognormal(rng, 3.6e6, 0.55), 4e5, 1.1e7)
		bps := clampF(lognormal(rng, 25e9, 0.8), 3e9, 4e11)
		return Cluster{
			Name: fmt.Sprintf("pop%02d", i), Type: PoP, IPv6: false,
			ToRs: 8 + rng.Intn(24),
			VIPs: 100 + rng.Intn(120), DIPsPerVIP: 20 + rng.Intn(60),
			ActiveConnsPerToRMedian: int(conns * 0.6),
			ActiveConnsPerToRP99:    int(conns),
			NewConnsPerVIPMinute:    clampF(lognormal(rng, 18700, 0.9), 500, 5e7),
			TotalConns:              int(clampF(lognormal(rng, 5e6, 0.8), 5e5, 5e7)),
			UpdateRatePerMin:        clampF(lognormal(rng, 0.45, 1.1), 0.02, 12),
			UpdateBurstSigma:        1.6, // shared-DIP fan-out bursts
			PeakBps:                 bps,
			PeakPPS:                 pps(rng, bps),
		}
	})
	// 26 Frontends: few persistent high-volume connections from PoPs.
	add(26, Frontend, func(i int, rng *rand.Rand) Cluster {
		conns := clampF(lognormal(rng, 2.5e5, 0.6), 3e4, 8e5)
		bps := clampF(lognormal(rng, 110e9, 0.6), 10e9, 6e11)
		return Cluster{
			Name: fmt.Sprintf("fe%02d", i), Type: Frontend, IPv6: false,
			ToRs: 16 + rng.Intn(48),
			VIPs: 40 + rng.Intn(80), DIPsPerVIP: 30 + rng.Intn(80),
			ActiveConnsPerToRMedian: int(conns * 0.6),
			ActiveConnsPerToRP99:    int(conns),
			NewConnsPerVIPMinute:    clampF(lognormal(rng, 900, 0.8), 50, 2e5),
			TotalConns:              int(clampF(lognormal(rng, 1e6, 0.7), 1e5, 8e6)),
			UpdateRatePerMin:        clampF(lognormal(rng, 0.35, 1.0), 0.02, 10),
			UpdateBurstSigma:        1.5,
			PeakBps:                 bps,
			PeakPPS:                 pps(rng, bps),
		}
	})
	// 50 Backends: service-to-service, IPv6, volume-centric persistent
	// connections (few conns, enormous traffic in the tail), continuous
	// service evolution -> frequent updates.
	add(50, Backend, func(i int, rng *rand.Rand) Cluster {
		conns := clampF(lognormal(rng, 4e6, 0.75), 2e5, 1.5e7)
		bps := clampF(lognormal(rng, 30e9, 1.5), 3e9, 2.8e12)
		return Cluster{
			Name: fmt.Sprintf("be%02d", i), Type: Backend, IPv6: true,
			ToRs: 24 + rng.Intn(72),
			VIPs: 60 + rng.Intn(200), DIPsPerVIP: 40 + rng.Intn(260),
			ActiveConnsPerToRMedian: int(conns * 0.55),
			ActiveConnsPerToRP99:    int(conns),
			NewConnsPerVIPMinute:    clampF(lognormal(rng, 9000, 1.3), 100, 5.2e7),
			TotalConns:              int(clampF(lognormal(rng, 3e6, 1.0), 2e5, 3e7)),
			UpdateRatePerMin:        clampF(lognormal(rng, 1.7, 1.0), 0.05, 16),
			UpdateBurstSigma:        1.4,
			PeakBps:                 bps,
			PeakPPS:                 pps(rng, bps),
		}
	})
	// The study's peak volume-centric Backend: storage-style persistent
	// connections moving ~2.8 Tbps through few connections. This is the
	// cluster behind the paper's "one SilkRoad replaces 277 SLBs".
	giant := &out[len(out)-1]
	giant.PeakBps = 2.8e12
	giant.PeakPPS = giant.PeakBps / 8 / 1250
	giant.TotalConns = 8_000_000
	return out
}

// MinuteUpdateSeries simulates the per-minute DIP pool update counts for a
// month (or any number of minutes): a Poisson process whose rate is
// log-normally modulated per minute (operational burstiness: one service
// upgrade touches many DIPs back-to-back).
func (c *Cluster) MinuteUpdateSeries(rng *rand.Rand, minutes int) []int {
	out := make([]int, minutes)
	for m := range out {
		rate := c.UpdateRatePerMin * math.Exp(rng.NormFloat64()*c.UpdateBurstSigma-c.UpdateBurstSigma*c.UpdateBurstSigma/2)
		out[m] = poisson(rng, rate)
	}
	return out
}

// poisson draws a Poisson variate (Knuth for small rates, normal
// approximation for large).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Cause is a root cause of a DIP addition/removal (Figure 3).
type Cause int

// Root causes, in Figure 3's vocabulary.
const (
	Upgrade Cause = iota
	Testing
	Failure
	Preempting
	Provisioning
	Removing
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case Upgrade:
		return "upgrade"
	case Testing:
		return "testing"
	case Failure:
		return "failure"
	case Preempting:
		return "preempting"
	case Provisioning:
		return "provisioning"
	case Removing:
		return "removing"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// causeWeights is Figure 3's fleet-wide distribution: 82.7% of DIP
// additions/removals come from Backend service upgrades; everything else
// is small because it touches a handful of DIPs at a time.
var causeWeights = map[Cause]float64{
	Upgrade:      0.827,
	Testing:      0.052,
	Failure:      0.035,
	Preempting:   0.031,
	Provisioning: 0.029,
	Removing:     0.026,
}

// CauseWeight returns the fleet-wide share of a cause.
func CauseWeight(c Cause) float64 { return causeWeights[c] }

// SampleCause draws a root cause for an update in a cluster of type t.
// Upgrades and testing are Backend phenomena (§3.1); other cluster types
// only see failure/preempting/provisioning/removing.
func SampleCause(rng *rand.Rand, t ClusterType) Cause {
	if t == Backend {
		r := rng.Float64()
		acc := 0.0
		for _, c := range []Cause{Upgrade, Testing, Failure, Preempting, Provisioning, Removing} {
			acc += causeWeights[c]
			if r <= acc {
				return c
			}
		}
		return Removing
	}
	switch rng.Intn(4) {
	case 0:
		return Failure
	case 1:
		return Preempting
	case 2:
		return Provisioning
	default:
		return Removing
	}
}

// SampleDowntime draws the DIP downtime (reboot-to-alive) for a removal
// with the given cause: 3 minutes median, 100 minutes at p99 for upgrades
// (Figure 4); failures/preemptions recover slower, provisioning has no
// downtime (the DIP is new).
func SampleDowntime(rng *rand.Rand, c Cause) simtime.Duration {
	var median, sigma float64 // seconds
	switch c {
	case Upgrade, Testing:
		median, sigma = 180, 1.5 // p99 = 180*exp(2.326*1.5) ~ 100 min
	case Failure:
		median, sigma = 600, 1.3
	case Preempting:
		median, sigma = 400, 1.2
	case Provisioning:
		return 0
	default: // Removing: the DIP never comes back
		return simtime.Duration(math.MaxInt64 / 4)
	}
	s := clampF(lognormal(rng, median, sigma), 5, 86400)
	return simtime.Duration(s * float64(simtime.Second))
}

// SampleFlowDuration draws a flow duration for the given traffic class:
// Hadoop flows have a 10 s median, cache flows 4.5 min ([39], §3.2).
func SampleFlowDuration(rng *rand.Rand, tc TrafficClass) simtime.Duration {
	var median float64 // seconds
	switch tc {
	case Hadoop:
		median = 10
	case Cache:
		median = 270
	default:
		median = 10
	}
	s := clampF(lognormal(rng, median, 1.0), 0.05, 7200)
	return simtime.Duration(s * float64(simtime.Second))
}

// SampleNewConnsPerVIPMinute draws one VIP's new-connection rate within a
// cluster (the Figure 8 spread across VIPs: a heavy tail reaching tens of
// millions per minute).
func (c *Cluster) SampleNewConnsPerVIPMinute(rng *rand.Rand) float64 {
	return clampF(lognormal(rng, c.NewConnsPerVIPMinute, 1.6), 10, 5.2e7)
}
