package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(256, 4, 1)
	keys := make([]uint64, 200)
	rng := rand.New(rand.NewSource(5))
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	for _, k := range keys {
		if !f.MaybeContains(k) {
			t.Fatalf("false negative for %#x", k)
		}
	}
}

func TestClear(t *testing.T) {
	f := New(64, 3, 2)
	f.Insert(42)
	if !f.MaybeContains(42) {
		t.Fatal("inserted key missing")
	}
	if f.Inserts() != 1 {
		t.Fatalf("Inserts = %d", f.Inserts())
	}
	f.Clear()
	if f.MaybeContains(42) {
		t.Fatal("key survived Clear")
	}
	if f.Inserts() != 0 || f.FillRatio() != 0 {
		t.Fatal("Clear did not reset state")
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(256, 4, 3)
	hits := 0
	for i := uint64(0); i < 1000; i++ {
		if f.MaybeContains(i) {
			hits++
		}
	}
	if hits != 0 {
		t.Fatalf("empty filter matched %d keys", hits)
	}
}

// TestFalsePositiveRate256B checks the paper's operating point: a 256-byte
// filter holding one learning window's pending connections (a few thousand
// at 2.77M conns/min x 1ms... ~46, allow hundreds) keeps FPR tiny.
func TestFalsePositiveRate256B(t *testing.T) {
	f := New(256, 4, 7)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ { // pending connections in one window
		f.Insert(rng.Uint64())
	}
	fp := 0
	const probes = 200000
	for i := 0; i < probes; i++ {
		if f.MaybeContains(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.002 {
		t.Fatalf("FPR = %.5f with 100 keys in 256B, want < 0.002", rate)
	}
}

// TestTinyFilterDegrades verifies the Figure 18 effect: an 8-byte filter
// saturates quickly and produces false positives under load.
func TestTinyFilterDegrades(t *testing.T) {
	f := New(8, 2, 8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		f.Insert(rng.Uint64())
	}
	if f.FillRatio() < 0.9 {
		t.Fatalf("8B filter fill = %.2f after 200 inserts, expected near-saturation", f.FillRatio())
	}
	if f.EstimatedFPR() < 0.5 {
		t.Fatalf("tiny filter FPR estimate = %.3f, expected high", f.EstimatedFPR())
	}
}

func TestSizeAndK(t *testing.T) {
	f := New(256, 4, 9)
	if f.SizeBytes() != 256 || f.K() != 4 {
		t.Fatalf("SizeBytes/K = %d/%d", f.SizeBytes(), f.K())
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 4, 1) },
		func() { New(8, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad New did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: anything inserted is always contained (no false negatives),
// regardless of interleaving with other inserts.
func TestNoFalseNegativeProperty(t *testing.T) {
	f := New(128, 3, 11)
	inserted := map[uint64]bool{}
	prop := func(k uint64) bool {
		f.Insert(k)
		inserted[k] = true
		for ik := range inserted {
			if !f.MaybeContains(ik) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFillRatioMonotone(t *testing.T) {
	f := New(64, 2, 13)
	prev := 0.0
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 50; i++ {
		f.Insert(rng.Uint64())
		fr := f.FillRatio()
		if fr < prev {
			t.Fatal("fill ratio decreased on insert")
		}
		prev = fr
	}
}

func BenchmarkInsert(b *testing.B) {
	f := New(256, 4, 15)
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i))
	}
}

func BenchmarkMaybeContains(b *testing.B) {
	f := New(256, 4, 16)
	for i := 0; i < 100; i++ {
		f.Insert(uint64(i * 7919))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MaybeContains(uint64(i))
	}
}
