// Package bloom implements the binary bloom filter SilkRoad uses as its
// TransitTable (§4.3): a membership set over pending connections, built on
// the ASIC's transactional register memory so that an insert by one packet
// is visible to the next packet with no CPU involvement.
//
// The filter is deliberately tiny — the paper shows 256 bytes suffice even
// under the most frequent DIP pool updates observed in production — because
// the 3-step update process bounds its population to the connections that
// arrive during one learning-insertion window.
package bloom

import (
	"repro/internal/hashing"
	"repro/internal/regarray"
)

// Filter is a binary bloom filter over 64-bit keys.
type Filter struct {
	bits    *regarray.Array
	nbits   uint64
	hashes  *hashing.Family
	k       int
	inserts int
}

// New creates a filter of the given size in bytes with k hash functions.
// Sizes as small as 8 bytes are meaningful (Figure 18 sweeps 8 B..1 KiB).
func New(sizeBytes, k int, seed uint64) *Filter {
	if sizeBytes <= 0 {
		panic("bloom: size must be positive")
	}
	if k <= 0 {
		panic("bloom: need at least one hash function")
	}
	return &Filter{
		bits:   regarray.New(sizeBytes*8, 1),
		nbits:  uint64(sizeBytes * 8),
		hashes: hashing.NewFamily(k, seed),
		k:      k,
	}
}

// Insert adds key to the set.
func (f *Filter) Insert(key uint64) {
	for i := 0; i < f.k; i++ {
		f.bits.Write(int(f.hashes.HashUint64(i, key)%f.nbits), 1)
	}
	f.inserts++
}

// MaybeContains reports whether key may be in the set. False positives are
// possible; false negatives are not.
func (f *Filter) MaybeContains(key uint64) bool {
	for i := 0; i < f.k; i++ {
		if f.bits.Read(int(f.hashes.HashUint64(i, key)%f.nbits)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the filter (step 3 of the PCC update).
func (f *Filter) Clear() {
	f.bits.Clear()
	f.inserts = 0
}

// Inserts returns the number of Insert calls since the last Clear.
func (f *Filter) Inserts() int { return f.inserts }

// SizeBytes returns the filter's SRAM footprint.
func (f *Filter) SizeBytes() int { return int(f.nbits / 8) }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// FillRatio returns the fraction of set bits, a cheap indicator of the
// expected false-positive rate ((fill)^k).
func (f *Filter) FillRatio() float64 {
	set := 0
	for i := 0; i < int(f.nbits); i++ {
		if f.bits.Read(i) != 0 {
			set++
		}
	}
	return float64(set) / float64(f.nbits)
}

// EstimatedFPR returns the classical false-positive estimate
// (1-e^{-kn/m})^k for the current population.
func (f *Filter) EstimatedFPR() float64 {
	fill := f.FillRatio()
	p := 1.0
	for i := 0; i < f.k; i++ {
		p *= fill
	}
	return p
}
