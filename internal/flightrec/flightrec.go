// Package flightrec is the switch's flight recorder: fixed-size ring
// buffers that capture (a) INT-style per-packet trace records for sampled
// or filter-matched flows — the full verdict path a packet took through
// the pipeline — and (b) a journal of every control-plane event (DIP pool
// update steps, version bumps, cuckoo insertions with their kick-chain
// lengths, learn-filter flushes, entry migrations) with before/after state
// deltas.
//
// The Recorder implements telemetry.Tracer and wraps an inner tracer
// (typically the metrics Registry), so attaching it adds no branch to the
// untraced hot path: the dataplane keeps its single `tracer != nil` check
// and the recorder forwards every event downstream. When no flow filter is
// armed and sampling is off, the per-packet cost is one atomic load.
//
// Ring discipline: a single atomic counter claims gap-free sequence
// numbers; each slot is guarded by its own mutex, so concurrent writers on
// different pipes only contend when they land on the same slot, and a
// drain never observes a torn record. The rings overwrite oldest-first and
// never block the pipeline.
package flightrec

import (
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Record kinds in the packet ring.
const (
	KindVerdict = "verdict" // a packet traversed the pipeline
	KindInsert  = "insert"  // the CPU installed the flow's ConnTable entry
)

// Journal record kinds.
const (
	KindPoolUpdate = "pool_update"
	KindCuckoo     = "cuckoo"
	KindLearnFlush = "learn_flush"
	// KindInsertPressure: the CPU insertion path shed a learn event at the
	// queue bound or re-queued a full-table insertion with backoff.
	KindInsertPressure = "insert_pressure"
	// KindDegraded: a pipe crossed a ConnTable occupancy watermark and
	// switched between stateful and stateless (degraded) service.
	KindDegraded = "degraded"
	// KindFault: the fault-injection layer applied a fault.
	KindFault = "fault"
	// KindReconcile: the desired-state reconciler (internal/intent) took a
	// step: a round, an apply/noop, a retry, a rollback or a drift hit.
	KindReconcile = "reconcile"
	// KindHandoff: a connection-state transfer began, converged or was
	// cancelled (internal/handoff). Chunk/delta/retry steps are counted by
	// the metrics registry, not journaled.
	KindHandoff = "handoff"
)

// PacketRecord is one INT-style trace record: the pipeline decisions one
// packet (or one CPU insertion on behalf of a flow) experienced.
type PacketRecord struct {
	Seq     uint64             `json:"seq"`
	Now     simtime.Time       `json:"now_ns"`
	Pipe    int                `json:"pipe"`
	Kind    string             `json:"kind"` // KindVerdict or KindInsert
	Tuple   netproto.FiveTuple `json:"-"`
	Flow    string             `json:"flow"`    // tuple rendered for JSON
	Verdict string             `json:"verdict"` // verdict or insert outcome
	WireLen int                `json:"wire_len,omitempty"`
	Wire    bool               `json:"wire,omitempty"` // raw wire bytes (frame path), not a synthetic struct

	// Pipeline path annotations (KindVerdict).
	ConnHit    bool   `json:"conn_hit"`
	Stage      int    `json:"stage"` // ConnTable stage that matched; -1 on miss
	TransitHit bool   `json:"transit_hit"`
	Learned    bool   `json:"learned"`
	Meter      string `json:"meter,omitempty"` // meter color; empty when unmetered
	KeyHash    uint64 `json:"key_hash"`
	Digest     uint32 `json:"digest"`
	Version    uint32 `json:"version"`
	DIP        string `json:"dip,omitempty"` // chosen backend

	// CPU-side annotations (KindInsert).
	ArrivedAt  simtime.Time `json:"arrived_at_ns,omitempty"`
	QueueDepth int          `json:"queue_depth,omitempty"`
}

// JournalRecord is one control-plane event with its state delta.
type JournalRecord struct {
	Seq  uint64       `json:"seq"`
	Now  simtime.Time `json:"now_ns"`
	Pipe int          `json:"pipe"`
	Kind string       `json:"kind"`

	// Pool updates (KindPoolUpdate): the 3-step PCC machinery.
	Step        string       `json:"step,omitempty"` // requested/recording/transition/done
	VIP         string       `json:"vip,omitempty"`
	PrevVersion uint32       `json:"prev_version,omitempty"`
	Version     uint32       `json:"version,omitempty"`
	Before      []string     `json:"before,omitempty"` // pool before the bump
	After       []string     `json:"after,omitempty"`  // pool after the bump
	ReqAt       simtime.Time `json:"t_req_ns,omitempty"`
	ExecAt      simtime.Time `json:"t_exec_ns,omitempty"`

	// Cuckoo operations (KindCuckoo): insertions, migrations, deletes.
	Op          string `json:"op,omitempty"` // insert/relocate/delete
	KeyHash     uint64 `json:"key_hash,omitempty"`
	Digest      uint32 `json:"digest,omitempty"`
	Moves       int    `json:"moves,omitempty"` // kick-chain length
	Relocations int    `json:"relocations,omitempty"`
	OK          bool   `json:"ok"`
	Len         int    `json:"len,omitempty"`      // table entries after the op
	Capacity    int    `json:"capacity,omitempty"` // table slot capacity

	// Learn-filter flushes (KindLearnFlush).
	Batch int  `json:"batch,omitempty"`
	Full  bool `json:"full,omitempty"`

	// Insert pressure (KindInsertPressure): Op is the outcome ("retry" or
	// "shed") and QueueDepth the CPU queue length after the event.
	QueueDepth int `json:"queue_depth,omitempty"`

	// Degraded transitions (KindDegraded): Op is "enter" or "exit"; Len and
	// Capacity above carry the occupancy at the crossing.

	// Injected faults (KindFault): Op is the fault kind; the remaining
	// fields carry its parameters.
	DIP      string           `json:"dip,omitempty"`
	Duration simtime.Duration `json:"duration_ns,omitempty"`
	Scale    float64          `json:"scale,omitempty"`
	Limit    int              `json:"limit,omitempty"`

	// Reconciler steps (KindReconcile): Step is the reconcile step name,
	// Op the write kind (add/update/remove), Pipe the fleet member index;
	// Duration carries the apply latency and Error any failure.
	Generation uint64 `json:"generation,omitempty"`
	Retries    int    `json:"retries,omitempty"`
	Error      string `json:"error,omitempty"`

	// Handoff steps (KindHandoff): Step is begin/done/cancel, Pipe the
	// donor member, Receiver the receiving member, Len the entry count,
	// Batch the delta count, Cursor the donor's journal sequence at
	// snapshot capture, Duration begin-to-finish.
	Receiver int    `json:"receiver,omitempty"`
	Cursor   uint64 `json:"cursor,omitempty"`
}

// slot is one ring cell. seq is the claimed sequence number plus one, so
// the zero value means "never written".
type slot[T any] struct {
	mu  sync.Mutex
	seq uint64
	rec T
}

// ring is a fixed-size overwrite-oldest MPMC buffer. A lock-free atomic
// counter claims globally ordered sequence numbers; the per-slot mutex
// makes each write and each drain copy atomic without ever blocking one
// writer on another writing a different slot.
type ring[T any] struct {
	head  atomic.Uint64
	slots []slot[T]
}

func newRing[T any](n int) *ring[T] { return &ring[T]{slots: make([]slot[T], n)} }

// put claims the next sequence number and stores rec, returning the seq.
func (r *ring[T]) put(rec T, stamp func(*T, uint64)) uint64 {
	seq := r.head.Add(1) - 1
	s := &r.slots[seq%uint64(len(r.slots))]
	s.mu.Lock()
	// A slower writer that claimed an older seq for this slot may arrive
	// after a faster one already wrote a newer generation; keep the newest.
	if s.seq == 0 || seq+1 > s.seq {
		stamp(&rec, seq)
		s.rec = rec
		s.seq = seq + 1
	}
	s.mu.Unlock()
	return seq
}

// next returns the next sequence number to be claimed (== total records
// ever written).
func (r *ring[T]) next() uint64 { return r.head.Load() }

// snapshot copies every written slot, ordered by sequence number.
func (r *ring[T]) snapshot() []T {
	type numbered struct {
		seq uint64
		rec T
	}
	tmp := make([]numbered, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.seq != 0 {
			tmp = append(tmp, numbered{s.seq, s.rec})
		}
		s.mu.Unlock()
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].seq < tmp[j].seq })
	out := make([]T, len(tmp))
	for i := range tmp {
		out[i] = tmp[i].rec
	}
	return out
}

// Config sizes a Recorder.
type Config struct {
	// PacketRing is the packet-trace ring capacity (default 4096).
	PacketRing int
	// JournalRing is the control-plane journal capacity (default 8192).
	JournalRing int
	// SampleEvery records every Nth packet regardless of flow filters
	// (0 disables sampling; filters still work).
	SampleEvery int
	// Inner is the downstream tracer every event is forwarded to,
	// typically the metrics Registry. Nil means the recorder is the only
	// sink.
	Inner telemetry.Tracer
}

// Recorder is the flight recorder. It implements telemetry.Tracer.
type Recorder struct {
	inner       telemetry.Tracer
	packets     *ring[PacketRecord]
	journal     *ring[JournalRecord]
	sampleEvery uint64
	sampleCtr   atomic.Uint64
	armed       atomic.Int32 // len(flows); checked before taking mu
	mu          sync.RWMutex
	flows       map[netproto.FiveTuple]*Flow
}

// New builds a Recorder from cfg.
func New(cfg Config) *Recorder {
	if cfg.PacketRing <= 0 {
		cfg.PacketRing = 4096
	}
	if cfg.JournalRing <= 0 {
		cfg.JournalRing = 8192
	}
	return &Recorder{
		inner:       cfg.Inner,
		packets:     newRing[PacketRecord](cfg.PacketRing),
		journal:     newRing[JournalRecord](cfg.JournalRing),
		sampleEvery: uint64(cfg.SampleEvery),
		flows:       make(map[netproto.FiveTuple]*Flow),
	}
}

// SetInner replaces the downstream tracer. Wiring-time only — call before
// the recorder is attached to a switch, never while events are flowing.
func (r *Recorder) SetInner(t telemetry.Tracer) { r.inner = t }

// Flow is an armed flow filter: a handle for collecting one connection's
// recorded path.
type Flow struct {
	rec   *Recorder
	tuple netproto.FiveTuple
}

// Tuple returns the flow's five-tuple.
func (f *Flow) Tuple() netproto.FiveTuple { return f.tuple }

// Records returns the flow's trace records currently in the ring, oldest
// first.
func (f *Flow) Records() []PacketRecord { return f.rec.FlowTrace(f.tuple) }

// Stop disarms the filter. The flow's records stay in the ring until
// overwritten.
func (f *Flow) Stop() { f.rec.Disarm(f.tuple) }

// Arm installs a flow filter: every subsequent packet of t (and every CPU
// insertion on its behalf) is recorded. Arming an already-armed tuple
// returns the existing handle.
func (r *Recorder) Arm(t netproto.FiveTuple) *Flow {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.flows[t]; ok {
		return f
	}
	f := &Flow{rec: r, tuple: t}
	r.flows[t] = f
	r.armed.Store(int32(len(r.flows)))
	return f
}

// Disarm removes the filter for t (no-op when not armed).
func (r *Recorder) Disarm(t netproto.FiveTuple) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.flows, t)
	r.armed.Store(int32(len(r.flows)))
}

// Armed returns the currently armed tuples.
func (r *Recorder) Armed() []netproto.FiveTuple {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]netproto.FiveTuple, 0, len(r.flows))
	for t := range r.flows {
		out = append(out, t)
	}
	return out
}

// matches reports whether a packet for t should be recorded: an armed
// filter matches it, or sampling selects it. The armed==0 fast path is a
// single atomic load, keeping the recorder invisible to untraced flows.
func (r *Recorder) matches(t netproto.FiveTuple) bool {
	if r.sampleEvery > 0 && (r.sampleCtr.Add(1)-1)%r.sampleEvery == 0 {
		return true
	}
	if r.armed.Load() == 0 {
		return false
	}
	r.mu.RLock()
	_, ok := r.flows[t]
	r.mu.RUnlock()
	return ok
}

// filterMatch is matches without consuming a sampling tick (CPU-side
// events should not skew packet sampling).
func (r *Recorder) filterMatch(t netproto.FiveTuple) bool {
	if r.armed.Load() == 0 {
		return false
	}
	r.mu.RLock()
	_, ok := r.flows[t]
	r.mu.RUnlock()
	return ok
}

// Packets returns a snapshot of the packet-trace ring, oldest first.
func (r *Recorder) Packets() []PacketRecord { return r.packets.snapshot() }

// Journal returns a snapshot of the control-plane journal, oldest first.
func (r *Recorder) Journal() []JournalRecord { return r.journal.snapshot() }

// PacketSeq returns the total number of packet records ever written; the
// ring currently holds the trailing min(PacketSeq, capacity) of them.
func (r *Recorder) PacketSeq() uint64 { return r.packets.next() }

// JournalSeq returns the total number of journal records ever written.
// Sequence numbers are gap-free: a journal whose ring is large enough to
// hold every event contains exactly seqs 0..JournalSeq()-1.
func (r *Recorder) JournalSeq() uint64 { return r.journal.next() }

// FlowTrace returns the records of one flow currently in the ring, oldest
// first — the packet's full verdict path plus its CPU insertion, if both
// are still resident.
func (r *Recorder) FlowTrace(t netproto.FiveTuple) []PacketRecord {
	all := r.packets.snapshot()
	out := all[:0:0]
	for _, pr := range all {
		if pr.Tuple == t {
			out = append(out, pr)
		}
	}
	return out
}

// --- telemetry.Tracer implementation -----------------------------------

// RegisterVIP forwards to the inner tracer.
func (r *Recorder) RegisterVIP(pipe int, vip telemetry.VIPKey) *telemetry.VIPSeries {
	if r.inner == nil {
		return nil
	}
	return r.inner.RegisterVIP(pipe, vip)
}

// OnVerdict records the packet's pipeline path when its flow is armed or
// sampled, then forwards the event.
func (r *Recorder) OnVerdict(e telemetry.VerdictEvent) {
	if r.matches(e.Tuple) {
		r.packets.put(PacketRecord{
			Now:        e.Now,
			Pipe:       e.Pipe,
			Kind:       KindVerdict,
			Tuple:      e.Tuple,
			Flow:       e.Tuple.String(),
			Verdict:    e.Verdict.String(),
			WireLen:    e.WireLen,
			Wire:       e.Wire,
			ConnHit:    e.ConnHit,
			Stage:      e.Stage,
			TransitHit: e.TransitHit,
			Learned:    e.Learned,
			Meter:      meterString(e.Meter),
			KeyHash:    e.KeyHash,
			Digest:     e.Digest,
			Version:    e.Version,
			DIP:        dipString(e.DIP),
		}, stampPacket)
	}
	if r.inner != nil {
		r.inner.OnVerdict(e)
	}
}

// OnInsert records the CPU-side installation for armed flows, journals
// queue-pressure outcomes (sheds and retries), then forwards the event.
func (r *Recorder) OnInsert(e telemetry.InsertEvent) {
	if e.Outcome == telemetry.InsertRetry || e.Outcome == telemetry.InsertShed {
		r.journal.put(JournalRecord{
			Now:        e.Now,
			Pipe:       e.Pipe,
			Kind:       KindInsertPressure,
			Op:         e.Outcome.String(),
			Version:    e.Version,
			QueueDepth: e.QueueDepth,
			OK:         true,
		}, stampJournal)
	}
	if r.filterMatch(e.Tuple) {
		r.packets.put(PacketRecord{
			Now:        e.Now,
			Pipe:       e.Pipe,
			Kind:       KindInsert,
			Tuple:      e.Tuple,
			Flow:       e.Tuple.String(),
			Verdict:    e.Kind.String() + "/" + e.Outcome.String(),
			Stage:      -1,
			Version:    e.Version,
			ArrivedAt:  e.ArrivedAt,
			QueueDepth: e.QueueDepth,
		}, stampPacket)
	}
	if r.inner != nil {
		r.inner.OnInsert(e)
	}
}

// OnUpdateStep journals the pool-update step with its version bump and
// before/after pools, then forwards the event.
func (r *Recorder) OnUpdateStep(e telemetry.UpdateStepEvent) {
	r.journal.put(JournalRecord{
		Now:         e.Now,
		Pipe:        e.Pipe,
		Kind:        KindPoolUpdate,
		Step:        e.Step.String(),
		VIP:         e.Key.String(),
		PrevVersion: e.PrevVersion,
		Version:     e.Version,
		Before:      poolStrings(e.Before),
		After:       poolStrings(e.After),
		ReqAt:       e.ReqAt,
		ExecAt:      e.ExecAt,
		OK:          true,
	}, stampJournal)
	if r.inner != nil {
		r.inner.OnUpdateStep(e)
	}
}

// OnLearnFlush journals the learning-filter drain, then forwards.
func (r *Recorder) OnLearnFlush(e telemetry.LearnFlushEvent) {
	r.journal.put(JournalRecord{
		Now:   e.Now,
		Pipe:  e.Pipe,
		Kind:  KindLearnFlush,
		Batch: e.Batch,
		Full:  e.Full,
		OK:    true,
	}, stampJournal)
	if r.inner != nil {
		r.inner.OnLearnFlush(e)
	}
}

// OnMeterDrop forwards (the drop already appears in the verdict trace).
func (r *Recorder) OnMeterDrop(e telemetry.MeterDropEvent) {
	if r.inner != nil {
		r.inner.OnMeterDrop(e)
	}
}

// OnCuckoo journals the ConnTable operation — insertion kick chains,
// alias-resolving migrations, deletes — then forwards.
func (r *Recorder) OnCuckoo(e telemetry.CuckooEvent) {
	r.journal.put(JournalRecord{
		Now:         e.Now,
		Pipe:        e.Pipe,
		Kind:        KindCuckoo,
		Op:          e.Op.String(),
		KeyHash:     e.KeyHash,
		Digest:      e.Digest,
		Version:     e.Version,
		Moves:       e.Moves,
		Relocations: e.Relocations,
		OK:          e.OK,
		Len:         e.Len,
		Capacity:    e.Capacity,
	}, stampJournal)
	if r.inner != nil {
		r.inner.OnCuckoo(e)
	}
}

// OnDegraded journals the watermark crossing, then forwards.
func (r *Recorder) OnDegraded(e telemetry.DegradedEvent) {
	op := "exit"
	if e.Degraded {
		op = "enter"
	}
	r.journal.put(JournalRecord{
		Now:      e.Now,
		Pipe:     e.Pipe,
		Kind:     KindDegraded,
		Op:       op,
		Len:      e.Entries,
		Capacity: e.Capacity,
		OK:       true,
	}, stampJournal)
	if r.inner != nil {
		r.inner.OnDegraded(e)
	}
}

// OnFault journals the injected fault with its parameters, then forwards.
func (r *Recorder) OnFault(e telemetry.FaultEvent) {
	r.journal.put(JournalRecord{
		Now:      e.Now,
		Pipe:     e.Pipe,
		Kind:     KindFault,
		Op:       e.Kind,
		DIP:      dipString(e.DIP),
		Duration: e.Duration,
		Scale:    e.Scale,
		Limit:    e.Limit,
		OK:       true,
	}, stampJournal)
	if r.inner != nil {
		r.inner.OnFault(e)
	}
}

// OnReconcile journals the reconciler step with its key, generation and
// outcome, then forwards. Round events are not journaled (one per round
// would crowd out the interesting records); the metrics registry counts
// them.
func (r *Recorder) OnReconcile(e telemetry.ReconcileEvent) {
	if e.Step != telemetry.ReconcileRound {
		rec := JournalRecord{
			Now:        e.Now,
			Pipe:       e.Member,
			Kind:       KindReconcile,
			Step:       e.Step.String(),
			Op:         e.Op,
			Generation: e.Generation,
			Retries:    e.Retries,
			Duration:   e.Latency,
			Error:      e.Err,
			OK:         e.Err == "",
		}
		if e.VIP != (telemetry.VIPKey{}) {
			rec.VIP = e.VIP.String()
		}
		r.journal.put(rec, stampJournal)
	}
	if r.inner != nil {
		r.inner.OnReconcile(e)
	}
}

// OnHandoff journals transfer begin/done/cancel records (the consistency
// cursor's anchor points) and forwards. Chunk, delta and retry steps are
// high-frequency and left to the metrics registry, like Round events.
func (r *Recorder) OnHandoff(e telemetry.HandoffEvent) {
	switch e.Step {
	case telemetry.HandoffBegin, telemetry.HandoffDone, telemetry.HandoffCancel:
		r.journal.put(JournalRecord{
			Now:      e.Now,
			Pipe:     e.Donor,
			Kind:     KindHandoff,
			Step:     e.Step.String(),
			Receiver: e.Receiver,
			Len:      e.Entries,
			Batch:    e.Deltas,
			Cursor:   e.Cursor,
			Duration: e.Duration,
			OK:       e.Step != telemetry.HandoffCancel,
		}, stampJournal)
	}
	if r.inner != nil {
		r.inner.OnHandoff(e)
	}
}

func stampPacket(p *PacketRecord, seq uint64)   { p.Seq = seq }
func stampJournal(j *JournalRecord, seq uint64) { j.Seq = seq }

func meterString(c telemetry.MeterColor) string {
	if c == telemetry.MeterNone {
		return ""
	}
	return c.String()
}

func dipString(d netip.AddrPort) string {
	if !d.IsValid() {
		return ""
	}
	return d.String()
}

func poolStrings(pool []netip.AddrPort) []string {
	if pool == nil {
		return nil
	}
	out := make([]string, len(pool))
	for i, d := range pool {
		out[i] = d.String()
	}
	return out
}
