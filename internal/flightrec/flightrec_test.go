package flightrec

import (
	"net/netip"
	"sync"
	"testing"

	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

func tuple(i int) netproto.FiveTuple {
	return netproto.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{192, 168, byte(i >> 8), byte(i)}),
		Dst:     netip.MustParseAddr("10.0.0.1"),
		SrcPort: uint16(1024 + i),
		DstPort: 80,
		Proto:   netproto.ProtoTCP,
	}
}

func verdictEvent(i int, t netproto.FiveTuple) telemetry.VerdictEvent {
	return telemetry.VerdictEvent{
		Now: simtime.Time(0).Add(simtime.Duration(i) * simtime.Millisecond), Pipe: i % 4, Tuple: t,
		Verdict: telemetry.VerdictForward, WireLen: 64,
		KeyHash: uint64(i), Digest: uint32(i), Version: 1, Stage: -1,
		Meter: telemetry.MeterNone,
	}
}

func TestArmedFlowRecorded(t *testing.T) {
	r := New(Config{})
	target := tuple(1)
	other := tuple(2)

	f := r.Arm(target)
	r.OnVerdict(telemetry.VerdictEvent{Tuple: target, Verdict: telemetry.VerdictForward,
		Stage: 2, Meter: telemetry.MeterNone, ConnHit: true, Version: 3,
		DIP: netip.MustParseAddrPort("20.0.0.1:80")})
	r.OnVerdict(telemetry.VerdictEvent{Tuple: other, Verdict: telemetry.VerdictForward,
		Stage: -1, Meter: telemetry.MeterNone})

	recs := f.Records()
	if len(recs) != 1 {
		t.Fatalf("want 1 record for armed flow, got %d", len(recs))
	}
	got := recs[0]
	if got.Kind != KindVerdict || !got.ConnHit || got.Stage != 2 ||
		got.Version != 3 || got.DIP != "20.0.0.1:80" || got.Verdict != "forward" {
		t.Fatalf("trace record mismatch: %+v", got)
	}
	if got.Meter != "" {
		t.Fatalf("unmetered flow should have empty meter, got %q", got.Meter)
	}
	if len(r.FlowTrace(other)) != 0 {
		t.Fatal("unarmed flow must not be recorded")
	}

	f.Stop()
	r.OnVerdict(telemetry.VerdictEvent{Tuple: target, Verdict: telemetry.VerdictForward,
		Stage: -1, Meter: telemetry.MeterNone})
	if len(r.FlowTrace(target)) != 1 {
		t.Fatal("disarmed flow must stop recording")
	}
}

func TestInsertRecordJoinsFlowTrace(t *testing.T) {
	r := New(Config{})
	target := tuple(7)
	r.Arm(target)
	r.OnVerdict(telemetry.VerdictEvent{Tuple: target, Verdict: telemetry.VerdictForward,
		Learned: true, Stage: -1, Meter: telemetry.MeterNone})
	r.OnInsert(telemetry.InsertEvent{Tuple: target, Kind: telemetry.InsertLearned,
		Outcome: telemetry.InsertOK, Version: 2})

	recs := r.FlowTrace(target)
	if len(recs) != 2 {
		t.Fatalf("want verdict+insert, got %d records", len(recs))
	}
	if recs[0].Kind != KindVerdict || recs[1].Kind != KindInsert {
		t.Fatalf("record kinds out of order: %q, %q", recs[0].Kind, recs[1].Kind)
	}
	if recs[1].Verdict != "learned/ok" || recs[1].Version != 2 {
		t.Fatalf("insert record mismatch: %+v", recs[1])
	}
}

func TestSampling(t *testing.T) {
	r := New(Config{SampleEvery: 10})
	for i := 0; i < 100; i++ {
		r.OnVerdict(verdictEvent(i, tuple(i)))
	}
	if got := len(r.Packets()); got != 10 {
		t.Fatalf("1-in-10 sampling over 100 packets: want 10 records, got %d", got)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(Config{PacketRing: 8, SampleEvery: 1})
	for i := 0; i < 20; i++ {
		r.OnVerdict(verdictEvent(i, tuple(i)))
	}
	recs := r.Packets()
	if len(recs) != 8 {
		t.Fatalf("ring of 8 after 20 writes: want 8 records, got %d", len(recs))
	}
	for i, pr := range recs {
		if want := uint64(12 + i); pr.Seq != want {
			t.Fatalf("record %d: want seq %d, got %d", i, want, pr.Seq)
		}
	}
	if r.PacketSeq() != 20 {
		t.Fatalf("want 20 total records, got %d", r.PacketSeq())
	}
}

func TestJournalKinds(t *testing.T) {
	r := New(Config{})
	r.OnUpdateStep(telemetry.UpdateStepEvent{
		Now: 5, Pipe: 1, Step: telemetry.StepTransition,
		Key:         telemetry.VIPKey{Addr: netip.MustParseAddr("10.0.0.1"), Port: 80, Proto: 6},
		PrevVersion: 1, Version: 2,
		Before: []netip.AddrPort{netip.MustParseAddrPort("20.0.0.1:80")},
		After: []netip.AddrPort{netip.MustParseAddrPort("20.0.0.1:80"),
			netip.MustParseAddrPort("20.0.0.2:80")},
	})
	r.OnCuckoo(telemetry.CuckooEvent{Now: 6, Op: telemetry.CuckooInsert,
		KeyHash: 42, Moves: 3, OK: true, Len: 1, Capacity: 64})
	r.OnLearnFlush(telemetry.LearnFlushEvent{Now: 7, Batch: 5, Full: true})

	j := r.Journal()
	if len(j) != 3 {
		t.Fatalf("want 3 journal records, got %d", len(j))
	}
	if j[0].Kind != KindPoolUpdate || j[0].Step != "transition" ||
		j[0].VIP != "10.0.0.1:80/tcp" || j[0].PrevVersion != 1 || j[0].Version != 2 ||
		len(j[0].Before) != 1 || len(j[0].After) != 2 {
		t.Fatalf("pool update record mismatch: %+v", j[0])
	}
	if j[1].Kind != KindCuckoo || j[1].Op != "insert" || j[1].Moves != 3 || !j[1].OK {
		t.Fatalf("cuckoo record mismatch: %+v", j[1])
	}
	if j[2].Kind != KindLearnFlush || j[2].Batch != 5 || !j[2].Full {
		t.Fatalf("learn flush record mismatch: %+v", j[2])
	}
	for i, rec := range j {
		if rec.Seq != uint64(i) {
			t.Fatalf("journal seq %d at index %d: not gap-free", rec.Seq, i)
		}
	}
}

func TestForwardsToInner(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := New(Config{Inner: reg})
	vs := r.RegisterVIP(0, telemetry.VIPKey{Addr: netip.MustParseAddr("10.0.0.1"), Port: 80, Proto: 6})
	if vs == nil {
		t.Fatal("RegisterVIP must forward to the inner registry")
	}
	r.OnVerdict(telemetry.VerdictEvent{VIP: vs, Verdict: telemetry.VerdictForward,
		WireLen: 64, Stage: -1, Meter: telemetry.MeterNone})
	snap := reg.Snapshot(1)
	if snap.VIPs["10.0.0.1:80/tcp"].Packets != 1 {
		t.Fatal("verdict not forwarded to inner registry")
	}
}

func TestConcurrentWritersGapFreeSeqs(t *testing.T) {
	const writers = 8
	const perWriter = 500
	r := New(Config{JournalRing: writers * perWriter})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.OnCuckoo(telemetry.CuckooEvent{Pipe: w, KeyHash: uint64(w*perWriter + i),
					Op: telemetry.CuckooInsert, OK: true})
			}
		}()
	}
	wg.Wait()
	j := r.Journal()
	if len(j) != writers*perWriter {
		t.Fatalf("want %d journal records, got %d", writers*perWriter, len(j))
	}
	for i, rec := range j {
		if rec.Seq != uint64(i) {
			t.Fatalf("journal seq gap at index %d: seq %d", i, rec.Seq)
		}
	}
}
