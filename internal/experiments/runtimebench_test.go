package experiments

import (
	"encoding/json"
	"testing"
)

// TestRuntimeBenchShape runs the event-runtime overhead comparison at test
// scale and asserts the artifact round-trips with both driving modes
// measured on the same workload. The 5% overhead bar itself is asserted in
// the root package's BenchmarkRuntimeOverhead, not here — wall-clock
// ratios on a loaded test host are too noisy for a hard test failure.
func TestRuntimeBenchShape(t *testing.T) {
	rep, err := RuntimeBench(testScale, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ArtifactName != "BENCH_runtime.json" || len(rep.Artifact) == 0 {
		t.Fatalf("missing artifact: %q (%d bytes)", rep.ArtifactName, len(rep.Artifact))
	}
	var res RuntimeBenchResult
	if err := json.Unmarshal(rep.Artifact, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(res.Rows) != 2 || res.Rows[0].Mode != "hand" || res.Rows[1].Mode != "sched" {
		t.Fatalf("rows = %+v, want hand then sched", res.Rows)
	}
	hand, schd := res.Rows[0], res.Rows[1]
	if hand.Packets == 0 || hand.Packets != schd.Packets {
		t.Fatalf("workloads differ: %d vs %d packets", hand.Packets, schd.Packets)
	}
	if hand.Connections == 0 || hand.Connections != schd.Connections {
		t.Fatalf("tracked connections differ: %d vs %d", hand.Connections, schd.Connections)
	}
	if hand.NsPerPacket <= 0 || schd.NsPerPacket <= 0 {
		t.Fatalf("unmeasured rows: hand %.1f ns, sched %.1f ns", hand.NsPerPacket, schd.NsPerPacket)
	}
}
