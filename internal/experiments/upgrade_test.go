package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestUpgradeSoak is the rolling-upgrade soak as a regression gate (CI
// runs it under -race): a fixed seed, every rollout invariant — zero PCC
// violations against the exact-tuple shadow (including flows learned
// mid-update on the drained member), zero established-flow drops, every
// member rolled — and byte-identical reports across two runs.
func TestUpgradeSoak(t *testing.T) {
	const scale, seed = 1.0, 42

	r1, err := RunUpgradeSoak(scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r1.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !r1.InvariantsOK {
		t.Fatalf("report: %+v", r1)
	}

	// Sanity beyond the report's own checks: the soak exercised what it
	// claims to.
	if r1.FlowsEstablished < r1.FlowsStarted/4 {
		t.Errorf("established only %d of %d flows", r1.FlowsEstablished, r1.FlowsStarted)
	}
	if r1.HandoffDeltas == 0 {
		t.Error("no delta was ever replayed: the donor paused or traffic missed the transfer window")
	}
	if r1.MovedFlows < r1.FlowsEstablished/10 {
		t.Errorf("only %d of %d established flows were ever served by a second member",
			r1.MovedFlows, r1.FlowsEstablished)
	}

	r2, err := RunUpgradeSoak(scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed, different reports:\n%s\n%s", b1, b2)
	}

	// A different seed must yield a different run — the soak is seeded,
	// not hard-coded.
	r3, err := RunUpgradeSoak(scale, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := json.Marshal(r3)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b3) {
		t.Error("seed change did not change the report")
	}
}
