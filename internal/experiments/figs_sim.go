package experiments

import (
	"fmt"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/duet"
	"repro/internal/flowsim"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// Fig5 regenerates Figure 5: the dilemma of keeping ConnTable in SLBs.
// For each update rate, the three migration policies trade SLB load (5a)
// against PCC violations (5b).
func Fig5(scale float64, seed int64) (*Report, error) {
	r := &Report{ID: "fig5", Title: "SLB load vs PCC violations with ConnTable in SLBs (Duet-style)"}
	// The duration must cover several Migrate-10min periods, or that
	// policy never gets to migrate (and never gets to break connections).
	dur := scaledDuration(simtime.Duration(25*simtime.Minute), scale, simtime.Duration(21*simtime.Minute))
	rates := []float64{1, 10, 25, 50}
	r.Printf("%-18s %12s %14s %16s", "policy", "updates/min", "SLB load", "broken conns")
	for _, policy := range []duet.Policy{duet.Migrate10min, duet.Migrate1min, duet.MigratePCC} {
		for _, rate := range rates {
			cfg := flowsim.Config{
				VIPs:          24,
				PoolSize:      16,
				ArrivalRate:   150 * scale,
				FlowClass:     workload.Hadoop,
				UpdatesPerMin: rate,
				Duration:      dur,
				Seed:          seed,
				ClusterType:   workload.PoP,
			}
			if cfg.ArrivalRate < 50 {
				cfg.ArrivalRate = 50
			}
			bal := flowsim.NewDuet(policy, uint64(seed))
			sim, err := flowsim.New(cfg, bal)
			if err != nil {
				return nil, err
			}
			if err := sim.AnnounceVIPs(bal.AddVIP); err != nil {
				return nil, err
			}
			res := sim.Run()
			r.Printf("%-18s %12.0f %13.1f%% %9d (%.3f%%)",
				policy.String(), rate, 100*res.SLBLoadFraction, res.BrokenConns, 100*res.BrokenFraction())
		}
	}
	r.Printf("paper @50/min: Migrate-10min 74%% SLB load / 0.3%% broken; Migrate-1min 13%% / 1.4%%; Migrate-PCC 94%% / 0%%")
	return r, nil
}

// silkroadSim runs one flow simulation against a SilkRoad switch.
func silkroadSim(cfg flowsim.Config, dmod func(*dataplane.Config), cmod func(*ctrlplane.Config), label string) (flowsim.Results, error) {
	dcfg := dataplane.DefaultConfig(1_000_000)
	ccfg := ctrlplane.DefaultConfig()
	if dmod != nil {
		dmod(&dcfg)
	}
	if cmod != nil {
		cmod(&ccfg)
	}
	bal, err := flowsim.NewSilkRoad(label, dcfg, ccfg)
	if err != nil {
		return flowsim.Results{}, err
	}
	sim, err := flowsim.New(cfg, bal)
	if err != nil {
		return flowsim.Results{}, err
	}
	if err := sim.AnnounceVIPs(bal.AddVIP); err != nil {
		return flowsim.Results{}, err
	}
	return sim.Run(), nil
}

// fig16BaseConfig is the §6.2 traffic setting scaled down: the paper's PoP
// trace offers 2.77M new connections per minute (46K/s); the default scale
// runs ~1/30 of that, concentrated on few VIPs so that the per-update
// pending population (arrival rate per VIP x insertion latency) — the
// quantity that actually drives PCC violations — stays measurable. The
// window covers the Migrate-10min period so the Duet baseline migrates.
func fig16BaseConfig(scale float64, seed int64) flowsim.Config {
	cfg := flowsim.Config{
		VIPs:        4,
		PoolSize:    24,
		ArrivalRate: 1500 * scale,
		FlowClass:   workload.Hadoop,
		Duration:    scaledDuration(simtime.Duration(25*simtime.Minute), scale, simtime.Duration(12*simtime.Minute+30*simtime.Second)),
		Seed:        seed,
		ClusterType: workload.PoP,
	}
	if cfg.ArrivalRate < 100 {
		cfg.ArrivalRate = 100
	}
	return cfg
}

// Fig16 regenerates Figure 16: connections with PCC violations per minute
// under increasing DIP pool update frequency, for Duet (Migrate-10min),
// SilkRoad without TransitTable, and full SilkRoad.
func Fig16(scale float64, seed int64) (*Report, error) {
	r := &Report{ID: "fig16", Title: "PCC violations vs DIP pool update frequency"}
	rates := []float64{1, 10, 25, 50}
	r.Printf("%-26s %12s %14s %14s", "design", "updates/min", "broken/min", "broken frac")
	for _, rate := range rates {
		cfg := fig16BaseConfig(scale, seed)
		cfg.UpdatesPerMin = rate

		// Duet Migrate-10min.
		bal := flowsim.NewDuet(duet.Migrate10min, uint64(seed))
		sim, err := flowsim.New(cfg, bal)
		if err != nil {
			return nil, err
		}
		sim.AnnounceVIPs(bal.AddVIP)
		dres := sim.Run()
		r.Printf("%-26s %12.0f %14.1f %13.4f%%", dres.Balancer, rate, dres.BrokenPerMinute(), 100*dres.BrokenFraction())

		// SilkRoad without TransitTable.
		nres, err := silkroadSim(cfg,
			func(d *dataplane.Config) { d.DisableTransit = true },
			func(c *ctrlplane.Config) { c.Mode = ctrlplane.ModeNoTransit },
			"SilkRoad w/o TransitTable")
		if err != nil {
			return nil, err
		}
		r.Printf("%-26s %12.0f %14.1f %13.4f%%", nres.Balancer, rate, nres.BrokenPerMinute(), 100*nres.BrokenFraction())

		// Full SilkRoad.
		sres, err := silkroadSim(cfg, nil, nil, "SilkRoad")
		if err != nil {
			return nil, err
		}
		r.Printf("%-26s %12.0f %14.1f %13.4f%%", sres.Balancer, rate, sres.BrokenPerMinute(), 100*sres.BrokenFraction())
		if sres.BrokenConns > 0 {
			r.Printf("!! SilkRoad broke %d connections — PCC regression", sres.BrokenConns)
		}
	}
	r.Printf("paper @10/min: Duet breaks 0.08%% of connections, w/o TransitTable 0.00005%%, SilkRoad 0")
	return r, nil
}

// Fig17 regenerates Figure 17: PCC violations per minute as the new
// connection arrival rate scales from 0.1x to 2x the PoP trace.
func Fig17(scale float64, seed int64) (*Report, error) {
	r := &Report{ID: "fig17", Title: "PCC violations vs new-connection arrival rate (10 updates/min)"}
	r.Printf("%-26s %12s %14s", "design", "rate scale", "broken/min")
	for _, mult := range []float64{0.1, 0.5, 1.0, 2.0} {
		cfg := fig16BaseConfig(scale, seed)
		cfg.UpdatesPerMin = 10
		cfg.ArrivalRate *= mult
		if cfg.ArrivalRate < 20 {
			cfg.ArrivalRate = 20
		}

		bal := flowsim.NewDuet(duet.Migrate10min, uint64(seed))
		sim, err := flowsim.New(cfg, bal)
		if err != nil {
			return nil, err
		}
		sim.AnnounceVIPs(bal.AddVIP)
		dres := sim.Run()
		r.Printf("%-26s %12.1f %14.1f", dres.Balancer, mult, dres.BrokenPerMinute())

		nres, err := silkroadSim(cfg,
			func(d *dataplane.Config) { d.DisableTransit = true },
			func(c *ctrlplane.Config) { c.Mode = ctrlplane.ModeNoTransit },
			"SilkRoad w/o TransitTable")
		if err != nil {
			return nil, err
		}
		r.Printf("%-26s %12.1f %14.1f", nres.Balancer, mult, nres.BrokenPerMinute())

		sres, err := silkroadSim(cfg, nil, nil, "SilkRoad")
		if err != nil {
			return nil, err
		}
		r.Printf("%-26s %12.1f %14.1f", sres.Balancer, mult, sres.BrokenPerMinute())
	}
	r.Printf("paper: SilkRoad with a 256B TransitTable has zero violations at every rate;")
	r.Printf("       the others grow with the arrival rate")
	return r, nil
}

// Fig18 regenerates Figure 18: PCC violations as a function of the
// TransitTable size, for three learning-filter timeouts. Larger timeouts
// hold more pending connections, so tiny filters saturate and their false
// positives surface.
func Fig18(scale float64, seed int64) (*Report, error) {
	r := &Report{ID: "fig18", Title: "PCC violations vs TransitTable size (10 updates/min)"}
	sizes := []int{8, 32, 64, 256}
	timeouts := []simtime.Duration{
		simtime.Duration(500 * simtime.Microsecond),
		simtime.Duration(simtime.Millisecond),
		simtime.Duration(5 * simtime.Millisecond),
	}
	r.Printf("%-18s %12s %14s %14s", "learn timeout", "filter bytes", "broken conns", "bloom FPs fixed")
	for _, to := range timeouts {
		for _, size := range sizes {
			cfg := fig16BaseConfig(scale, seed)
			// Fig18 needs saturated learning windows, not the Duet
			// migration horizon: concentrate the offered load on one VIP
			// (the paper's 2.77M conns/min land on one switch) over a
			// short run with many step-2 windows.
			cfg.VIPs = 1
			cfg.ArrivalRate = 5000 * scale
			if cfg.ArrivalRate < 2000 {
				cfg.ArrivalRate = 2000
			}
			cfg.Duration = simtime.Duration(90 * simtime.Second)
			cfg.UpdatesPerMin = 10
			var fpFixed uint64
			res, err := func() (flowsim.Results, error) {
				dcfg := dataplane.DefaultConfig(1_000_000)
				dcfg.TransitTableBytes = size
				dcfg.LearnFilterTimeout = to
				ccfg := ctrlplane.DefaultConfig()
				bal, err := flowsim.NewSilkRoad(fmt.Sprintf("SilkRoad/%dB", size), dcfg, ccfg)
				if err != nil {
					return flowsim.Results{}, err
				}
				sim, err := flowsim.New(cfg, bal)
				if err != nil {
					return flowsim.Results{}, err
				}
				if err := sim.AnnounceVIPs(bal.AddVIP); err != nil {
					return flowsim.Results{}, err
				}
				res := sim.Run()
				fpFixed = bal.CP.Metrics().BloomFPsResolved
				return res, nil
			}()
			if err != nil {
				return nil, err
			}
			r.Printf("%-18v %12d %14d %14d", to, size, res.BrokenConns, fpFixed)
		}
	}
	r.Printf("paper: 8B suffices at <=1ms timeouts; 5ms needs 256B; SYN arbitration absorbs bloom FPs")
	return r, nil
}

// Fig15 regenerates Figure 15: the number of DIP pool versions a VIP needs
// in a ten-minute window, with and without version reuse, as the update
// rate grows. Rolling reboots (remove a DIP, re-add it after downtime)
// drive the churn; live connections (median lifetime a few minutes) pin
// old versions until they terminate, which is what makes the version field
// width matter.
func Fig15(scale float64, seed int64) (*Report, error) {
	r := &Report{ID: "fig15", Title: "DIP pool versions needed in a 10-minute window"}
	r.Printf("%-16s %24s %24s", "updates/10min", "no reuse (minted/active)", "with reuse (minted/active)")
	rates := []int{10, 50, 120, 330}
	for _, updates := range rates {
		nm, na, err := fig15Run(updates, seed, true)
		if err != nil {
			return nil, err
		}
		rm, ra, err := fig15Run(updates, seed, false)
		if err != nil {
			return nil, err
		}
		r.Printf("%-16d %15d / %-6d %15d / %-6d", updates, nm, na, rm, ra)
	}
	r.Printf("paper: 330 updates/10min need up to 330 versions (9 bits) without reuse,")
	r.Printf("       but at most 51 concurrently (6 bits suffice) with reuse")
	return r, nil
}

// fig15Run replays a rolling-reboot sequence of n updates on one VIP over
// a ten-minute window with connections arriving before every update and
// living 2.5 minutes. It returns the number of versions minted and the
// maximum held concurrently.
func fig15Run(n int, seed int64, disableReuse bool) (minted, maxActive int, err error) {
	dcfg := dataplane.DefaultConfig(100000)
	dcfg.VersionBits = 16 // headroom so demand, not wrap-around, is measured
	sw, err := dataplane.New(dcfg)
	if err != nil {
		return 0, 0, err
	}
	ccfg := ctrlplane.DefaultConfig()
	ccfg.DisableVersionReuse = disableReuse
	cp := ctrlplane.New(sw, ccfg)
	vip := expVIP()
	pool := expPool(64)
	if err := cp.AddVIP(0, vip, pool, 0); err != nil {
		return 0, 0, err
	}
	window := simtime.Duration(10 * simtime.Minute)
	life := simtime.Duration(150 * simtime.Second)
	step := simtime.Duration(int64(window) / int64(n+1))
	now := simtime.Time(0)
	type ending struct {
		at    simtime.Time
		tuple int
	}
	var endings []ending
	var down []dataplane.DIP
	nextTuple := 0
	for i := 0; i < n; i++ {
		now = now.Add(step)
		cp.Advance(now)
		// Terminate connections whose lifetime elapsed.
		for len(endings) > 0 && !endings[0].at.After(now) {
			cp.EndConnection(now, expTuple(endings[0].tuple))
			endings = endings[1:]
		}
		// A connection arrives and pins the current version.
		pkt := synPacket(nextTuple)
		res := sw.Process(now, pkt)
		cp.HandleResult(now, pkt, res)
		endings = append(endings, ending{at: now.Add(life), tuple: nextTuple})
		nextTuple++
		// Rolling reboot step.
		if i%2 == 0 || len(down) == 0 {
			victim := pool[(i/2)%len(pool)]
			if e := cp.RemoveDIP(now, vip, victim); e == nil {
				down = append(down, victim)
			}
		} else {
			d := down[0]
			down = down[1:]
			if e := cp.AddDIP(now, vip, d); e != nil {
				return 0, 0, e
			}
		}
	}
	cp.Advance(now.Add(simtime.Minute))
	return cp.VersionsAllocated(vip), cp.MaxActiveVersions(vip), nil
}
