package experiments

// Rolling-upgrade soak: an intent.Upgrader rolls a 3-switch cluster
// through drain -> warm migrate -> upgrade -> rejoin, one member at a
// time, while pulsed traffic keeps arriving — including connections
// learned mid-pool-update, whose version pinning exists only in their
// switch's table and would break under a cold failover. Every established
// connection's DIP is pinned at establishment and checked against the
// exact-tuple shadow on every revisit and just before it dies: the soak
// demands ZERO PCC violations and zero forwarding drops across the whole
// rollout, because the handoff moves the exact table entries with the
// traffic. Emits UPGRADE_soak.json; the same seed must reproduce it byte
// for byte.

import (
	"encoding/json"
	"fmt"
	"net/netip"

	"repro/internal/cluster"
	"repro/internal/dataplane"
	"repro/internal/intent"
	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Soak shape, in ticks of upTick virtual time. Traffic arrives in bursts
// with real quiet windows between them — the drain/rejoin cutovers only
// flip at a quiescent instant (transfer converged, donor and receivers
// with zero pending work), so the gaps are where handoffs complete.
const (
	upTick      = 100 * simtime.Microsecond
	upLoadTicks = 2800 // arrivals for 280 ms — the whole rollout under load
	upLifeTicks = 600  // each flow lives 60 ms
	upStride    = 16   // live flows revisit the data path every 16 ticks
	upMembers   = 3
	upPerTick   = 2   // SYNs per burst tick
	upBurstLen  = 20  // ticks of arrivals per burst
	upBurstGap  = 80  // burst period (quiet for upBurstGap-upBurstLen)
	upStartTick = 160 // the rollout begins mid-load
	upPaceTicks = 30  // one rollout step every 3 ms: a member's cycle
	//                       spans several bursts and pool updates, so its
	//                       out-of-service window is long enough for every
	//                       live flow to be served by a survivor meanwhile
	upUpdateEvery  = 200  // a PCC-preserving pool swap every 20 ms
	upUpdateWindow = 40   // arrivals this soon after a swap are mid-update
	upTailTicks    = 8000 // rollout budget after the load is over
)

// UpgradeReport is the machine-readable outcome written to
// UPGRADE_soak.json. Everything derives from virtual time and seeded
// randomness: same (scale, seed) ⇒ identical bytes.
type UpgradeReport struct {
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
	Members int     `json:"members"`

	FlowsStarted         int    `json:"flows_started"`
	FlowsEstablished     int    `json:"flows_established"`
	MidUpdateEstablished int    `json:"mid_update_established"`
	Packets              uint64 `json:"packets"`
	Forwarded            uint64 `json:"forwarded"`
	Drops                int    `json:"established_flow_drops"`
	PoolUpdates          int    `json:"pool_updates"`

	RolloutDone  bool     `json:"rollout_done"`
	RolloutTicks int      `json:"rollout_ticks"`
	FinalPhases  []string `json:"final_phases"`
	Rollbacks    uint64   `json:"rollbacks"`

	BucketsMigrated uint64 `json:"buckets_migrated_warm"`
	MovedFlows      int    `json:"flows_moved_members"`

	HandoffTransfers uint64 `json:"handoff_transfers"`
	HandoffImported  uint64 `json:"handoff_entries_imported"`
	HandoffChunks    uint64 `json:"handoff_chunks"`
	HandoffDeltas    uint64 `json:"handoff_delta_replays"`
	HandoffRetries   uint64 `json:"handoff_import_retries"`
	HandoffCancels   uint64 `json:"handoff_cancels"`

	PCCViolations int `json:"pcc_violations"`

	Violations   []string `json:"invariant_violations"`
	InvariantsOK bool     `json:"invariants_ok"`
}

// upCounts accumulates handoff telemetry for the report.
type upCounts struct {
	transfers, imported, chunks, deltas, retries, cancels uint64
}

// upTracer counts handoff events on top of an inner tracer (NopTracer, or
// the registry under --metrics).
type upTracer struct {
	telemetry.Tracer
	c *upCounts
}

func (t upTracer) OnHandoff(e telemetry.HandoffEvent) {
	switch e.Step {
	case telemetry.HandoffChunk:
		t.c.chunks++
	case telemetry.HandoffDelta:
		t.c.deltas += uint64(e.Deltas)
	case telemetry.HandoffRetry:
		t.c.retries++
	case telemetry.HandoffDone:
		t.c.transfers++
		t.c.imported += uint64(e.Entries)
	case telemetry.HandoffCancel:
		t.c.cancels++
	}
	t.Tracer.OnHandoff(e)
}

// upPoolFor returns generation g's DIP pool: the base pool with one slot
// swapped, so each swap is exactly one PCC-preserving update per switch.
func upPoolFor(g int) []dataplane.DIP {
	pool := expPool(6)
	pool[g%len(pool)] = netip.AddrPortFrom(
		netip.AddrFrom4([4]byte{10, 8, 0, byte(g)}), 20)
	return pool
}

// upFlow is one connection's PCC bookkeeping: the DIP and member pinned
// when the exact-tuple shadow first confirmed establishment.
type upFlow struct {
	born      int
	dip       dataplane.DIP
	member    int
	est       bool
	midUpdate bool // SYN landed inside an update's recording window
	moved     bool // later served by a different member (warm handoff)
}

// RunUpgradeSoak drives the rolling-upgrade soak once and returns its
// report. Same (scale, seed) ⇒ identical report.
func RunUpgradeSoak(scale float64, seed int64) (*UpgradeReport, error) {
	connTarget := int(2048 * scale)
	if connTarget < 1024 {
		connTarget = 1024
	}
	counts := &upCounts{}
	var inner telemetry.Tracer = telemetry.NopTracer{}
	if CollectTelemetry {
		inner = telemetry.NewRegistry()
	}
	tracer := upTracer{Tracer: inner, c: counts}

	ccfg := cluster.DefaultConfig(upMembers, connTarget)
	ccfg.Dataplane.Seed = uint64(seed)
	ccfg.Dataplane.Tracer = tracer
	clu, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}

	rep := &UpgradeReport{Scale: scale, Seed: seed, Members: upMembers}
	vip := expVIP()
	curPool := upPoolFor(1)
	if err := clu.AddVIP(0, vip, curPool); err != nil {
		return nil, err
	}

	// The rolling upgrade: the Upgrader drives the cluster's drain/rejoin
	// surface directly; Reannounce restores the freshly rebooted member's
	// VIP state with the pool of the moment.
	u := intent.NewUpgrader(clu, nil, intent.UpgradeConfig{
		Budget:       64,
		StallTimeout: 20 * simtime.Millisecond,
		BaseBackoff:  simtime.Millisecond,
		MaxBackoff:   10 * simtime.Millisecond,
		MaxRetries:   6,
		WarmTimeout:  5 * simtime.Millisecond,
		Reannounce: func(now simtime.Time, m int) error {
			return clu.ReannounceTo(now, m, map[dataplane.VIP][]dataplane.DIP{vip: curPool})
		},
		Tracer: tracer,
	})

	// applyPool lands a pool swap on every in-service member that has the
	// VIP announced; a member that is down or cold mid-rollout catches up
	// through the Reannounce above, which always carries the latest pool.
	applyPool := func(now simtime.Time, pool []dataplane.DIP) error {
		for i := 0; i < clu.Switches(); i++ {
			if !clu.Alive(i) || !clu.Dataplane(i).HasVIP(vip) {
				continue
			}
			if err := clu.Member(i).RequestUpdate(now, vip, pool); err != nil {
				return fmt.Errorf("upgrade: switch %d: %w", i, err)
			}
		}
		return nil
	}

	tickTime := func(t int) simtime.Time { return simtime.Time(int64(t) * int64(upTick)) }
	var flows []upFlow
	firstLive := 0
	gen := 1
	lastUpdate := -upUpdateWindow - 1

	for t := 0; ; t++ {
		now := tickTime(t)
		clu.Advance(now)

		if u.Done() && rep.RolloutTicks == 0 {
			rep.RolloutTicks = t - upStartTick
		}
		drained := t > upLoadTicks+upLifeTicks
		if drained && (u.Done() || t > upLoadTicks+upLifeTicks+upTailTicks) {
			break
		}

		// Pool churn: one slot swapped every upUpdateEvery ticks while
		// traffic still arrives. SYNs landing in the recording window are
		// pinned to the OLD version — state that exists only in their
		// switch's table, which the handoff must carry.
		if t > 0 && t%upUpdateEvery == 0 && t < upLoadTicks {
			gen++
			curPool = upPoolFor(gen)
			if err := applyPool(now, curPool); err != nil {
				return nil, err
			}
			rep.PoolUpdates++
			lastUpdate = t
		}

		// The rollout, one paced Step once it begins.
		if t >= upStartTick && t%upPaceTicks == 0 && !u.Done() {
			if _, err := u.Step(now); err != nil {
				return nil, fmt.Errorf("upgrade: rollout step at tick %d: %w", t, err)
			}
		}

		// Flows born upLifeTicks ago end; each is audited against the
		// exact-tuple shadow one last time on its way out.
		for firstLive < len(flows) && flows[firstLive].born <= t-upLifeTicks {
			f := &flows[firstLive]
			tup := expTuple(firstLive)
			if f.est {
				if _, sdip, ok := clu.ShadowDIP(vip, tup); ok && sdip != f.dip {
					rep.PCCViolations++
				}
				if f.moved {
					rep.MovedFlows++
				}
			}
			clu.ConnEnd(now, tup)
			firstLive++
		}

		// Established traffic: a rotating 1/upStride sample of live flows.
		for i := firstLive; i < len(flows); i++ {
			if i%upStride != t%upStride {
				continue
			}
			pkt := &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagACK}
			dip, m, fwd := clu.Packet(now, pkt)
			rep.Packets++
			if fwd {
				rep.Forwarded++
			}
			f := &flows[i]
			if !f.est {
				if sm, sdip, ok := clu.ShadowDIP(vip, expTuple(i)); ok {
					f.dip, f.member, f.est = sdip, sm, true
					rep.FlowsEstablished++
					if f.midUpdate {
						rep.MidUpdateEstablished++
					}
				}
				continue
			}
			if !fwd {
				rep.Drops++
				continue
			}
			if dip != f.dip {
				rep.PCCViolations++
			}
			if m != f.member {
				f.moved = true
			}
		}

		// Arrivals, in bursts.
		if t < upLoadTicks && t%upBurstGap < upBurstLen {
			for k := 0; k < upPerTick; k++ {
				i := len(flows)
				flows = append(flows, upFlow{born: t, midUpdate: t-lastUpdate < upUpdateWindow})
				pkt := &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagSYN}
				_, _, fwd := clu.Packet(now, pkt)
				rep.Packets++
				if fwd {
					rep.Forwarded++
				}
			}
		}
	}
	rep.FlowsStarted = len(flows)
	rep.RolloutDone = u.Done() && len(u.Failed()) == 0
	rep.Rollbacks = u.Rollbacks
	for i := 0; i < upMembers; i++ {
		rep.FinalPhases = append(rep.FinalPhases, u.Phase(i).String())
	}
	rep.BucketsMigrated = clu.Migrated
	rep.HandoffTransfers = counts.transfers
	rep.HandoffImported = counts.imported
	rep.HandoffChunks = counts.chunks
	rep.HandoffDeltas = counts.deltas
	rep.HandoffRetries = counts.retries
	rep.HandoffCancels = counts.cancels

	rep.Violations = upgradeInvariants(rep)
	rep.InvariantsOK = len(rep.Violations) == 0
	return rep, nil
}

// upgradeInvariants checks the rollout contract against a finished run,
// in a fixed order for report determinism.
func upgradeInvariants(r *UpgradeReport) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	if r.PCCViolations != 0 {
		fail("PCC broken: %d established flows changed DIP", r.PCCViolations)
	}
	if r.Drops != 0 {
		fail("%d established-flow packets dropped during the rollout", r.Drops)
	}
	if !r.RolloutDone {
		fail("rollout did not finish cleanly: phases %v", r.FinalPhases)
	}
	for i, p := range r.FinalPhases {
		if p != "done" {
			fail("member %d finished in phase %q", i, p)
		}
	}
	if r.BucketsMigrated == 0 {
		fail("no spray bucket ever moved warm")
	}
	if r.HandoffTransfers == 0 || r.HandoffImported == 0 {
		fail("no connection state was ever handed off (transfers %d, imported %d)",
			r.HandoffTransfers, r.HandoffImported)
	}
	if r.MovedFlows == 0 {
		fail("no established flow was ever served by a second member")
	}
	if r.MidUpdateEstablished == 0 {
		fail("no flow established inside an update's recording window")
	}
	if r.PoolUpdates < 2 {
		fail("only %d pool updates landed", r.PoolUpdates)
	}
	if r.FlowsEstablished == 0 {
		fail("no flow ever established")
	}
	if r.Forwarded == 0 {
		fail("nothing forwarded")
	}
	return v
}

// Upgrade is the registered experiment: two runs with the same seed must
// produce byte-identical reports; the first is emitted as
// UPGRADE_soak.json.
func Upgrade(scale float64, seed int64) (*Report, error) {
	r1, err := RunUpgradeSoak(scale, seed)
	if err != nil {
		return nil, err
	}
	b1, err := json.MarshalIndent(r1, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("upgrade: %w", err)
	}
	r2, err := RunUpgradeSoak(scale, seed)
	if err != nil {
		return nil, err
	}
	b2, err := json.Marshal(r2)
	if err != nil {
		return nil, fmt.Errorf("upgrade: %w", err)
	}
	b1c, _ := json.Marshal(r1)
	deterministic := string(b1c) == string(b2)

	rep := &Report{ID: "upgrade", Title: "Rolling-upgrade soak: warm handoff, zero dropped flows"}
	rep.Printf("rollout: %d members, done=%v in %d ticks  rollbacks %d  phases %v",
		r1.Members, r1.RolloutDone, r1.RolloutTicks, r1.Rollbacks, r1.FinalPhases)
	rep.Printf("handoff: %d transfers  %d entries imported (%d chunks, %d delta replays, %d retries, %d cancels)  %d buckets moved warm",
		r1.HandoffTransfers, r1.HandoffImported, r1.HandoffChunks, r1.HandoffDeltas,
		r1.HandoffRetries, r1.HandoffCancels, r1.BucketsMigrated)
	rep.Printf("flows %d (established %d, mid-update %d, moved members %d)  packets %d (forwarded %d)  pool updates %d",
		r1.FlowsStarted, r1.FlowsEstablished, r1.MidUpdateEstablished, r1.MovedFlows,
		r1.Packets, r1.Forwarded, r1.PoolUpdates)
	rep.Printf("PCC violations %d  established-flow drops %d", r1.PCCViolations, r1.Drops)
	if r1.InvariantsOK {
		rep.Printf("invariants: all hold")
	} else {
		for _, s := range r1.Violations {
			rep.Printf("INVARIANT VIOLATED: %s", s)
		}
	}
	if deterministic {
		rep.Printf("determinism: second run with seed %d reproduced the report byte for byte", seed)
	} else {
		rep.Printf("DETERMINISM VIOLATED: same seed produced a different report")
	}
	if !r1.InvariantsOK || !deterministic {
		return nil, fmt.Errorf("upgrade soak failed: %v (deterministic=%v)", r1.Violations, deterministic)
	}
	rep.ArtifactName = "UPGRADE_soak.json"
	rep.Artifact = append(b1, '\n')
	return rep, nil
}
