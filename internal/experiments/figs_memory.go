package experiments

import (
	"repro/internal/dataplane"
	"repro/internal/slb"
	"repro/internal/stats"
	"repro/internal/workload"
)

// clusterProvisioning computes the SRAM one SilkRoad ToR switch of the
// cluster must provision (the Figure 12 model): ConnTable sized for the
// p99-minute connection count at 90% occupancy, DIPPoolTable for the
// active versions, plus the TransitTable.
func clusterProvisioning(c *workload.Cluster) int {
	// Active pool versions held concurrently: Backends churn the most.
	versions := 8
	if c.Type == workload.Backend {
		versions = 64
	}
	poolEntries := c.VIPs * c.DIPsPerVIP * versions / 16 // most versions differ in a few DIPs; amortized rows
	if poolEntries < c.VIPs*c.DIPsPerVIP {
		poolEntries = c.VIPs * c.DIPsPerVIP
	}
	return dataplane.ProvisionedBytes(c.ActiveConnsPerToRP99, 16, 6, poolEntries, c.IPv6)
}

// Fig12 regenerates Figure 12: per-ToR SRAM a SilkRoad deployment consumes
// in each cluster.
func Fig12(seed int64) *Report {
	fleet := workload.Fleet(seed)
	r := &Report{ID: "fig12", Title: "SRAM usage of SilkRoad on ToR switches across clusters (MB)"}
	r.Printf("%-10s %10s %10s %10s", "type", "median", "p90", "max")
	fits := 0
	for _, t := range []workload.ClusterType{workload.PoP, workload.Frontend, workload.Backend} {
		var cdf stats.CDF
		for i := range fleet {
			if fleet[i].Type != t {
				continue
			}
			mb := float64(clusterProvisioning(&fleet[i])) / (1 << 20)
			cdf.Add(mb)
			if mb <= 100 {
				fits++
			}
		}
		r.Printf("%-10s %10.1f %10.1f %10.1f", t.String(), cdf.Median(), cdf.Quantile(0.9), cdf.Max())
	}
	r.Printf("clusters fitting a 50-100 MB ASIC: %d/%d", fits, len(fleet))
	r.Printf("paper: PoPs 14 MB median / 32 MB peak; Backends 15 MB median / 58 MB peak; Frontends < 2 MB")
	return r
}

// Fig13 regenerates Figure 13: how many SLB servers one SilkRoad switch
// replaces in each cluster, from peak throughput and connection counts.
func Fig13(seed int64) *Report {
	fleet := workload.Fleet(seed)
	cap_ := slb.DefaultCapacity()
	r := &Report{ID: "fig13", Title: "Number of SLBs replaced per SilkRoad switch across clusters"}
	r.Printf("%-10s %10s %10s %10s", "type", "median", "p90", "max")
	const (
		silkroadConns = 10_000_000 // one SilkRoad holds 10M connections
		silkroadBps   = 6.4e12
		silkroadPPS   = 10e9
	)
	for _, t := range []workload.ClusterType{workload.PoP, workload.Frontend, workload.Backend} {
		var cdf stats.CDF
		for i := range fleet {
			c := &fleet[i]
			if c.Type != t {
				continue
			}
			slbs := cap_.ServersNeeded(c.PeakPPS, c.PeakBps, c.TotalConns)
			silkroads := 1
			if n := (c.TotalConns + silkroadConns - 1) / silkroadConns; n > silkroads {
				silkroads = n
			}
			if n := int(c.PeakBps/silkroadBps) + 1; n > silkroads {
				silkroads = n
			}
			if n := int(c.PeakPPS/silkroadPPS) + 1; n > silkroads {
				silkroads = n
			}
			cdf.Add(float64(slbs) / float64(silkroads))
		}
		r.Printf("%-10s %10.1f %10.1f %10.1f", t.String(), cdf.Median(), cdf.Quantile(0.9), cdf.Max())
	}
	r.Printf("paper: PoPs 2-3x, Frontends ~11x median, Backends 3x median up to 277x peak")
	return r
}

// Fig14 regenerates Figure 14: ConnTable memory saved by replacing full
// keys with digests, and DIPs with pool versions, per cluster.
func Fig14(seed int64) *Report {
	fleet := workload.Fleet(seed)
	r := &Report{ID: "fig14", Title: "ConnTable memory saving from digests and versions (percent vs naive layout)"}
	r.Printf("%-10s %16s %16s", "type", "digest only", "digest+version")
	for _, t := range []workload.ClusterType{workload.PoP, workload.Frontend, workload.Backend} {
		var dOnly, dVer stats.CDF
		for i := range fleet {
			c := &fleet[i]
			if c.Type != t {
				continue
			}
			n := c.ActiveConnsPerToRP99
			naive := dataplane.LayoutNaive(c.IPv6).TableBytes(n)
			digest := dataplane.LayoutDigestOnly(16, c.IPv6).TableBytes(n)
			ver := dataplane.LayoutDigestVersion(16, 6).TableBytes(n)
			dOnly.Add(100 * (1 - float64(digest)/float64(naive)))
			dVer.Add(100 * (1 - float64(ver)/float64(naive)))
		}
		r.Printf("%-10s %15.1f%% %15.1f%%", t.String(), dOnly.Median(), dVer.Median())
	}
	r.Printf("paper: all clusters save > 40%%; PoPs ~85%% with digest+version; Backends 60-95%%")
	return r
}
