package experiments

// Reconcile soak: declarative spec churn rolled across a 3-switch cluster
// while traffic flows, with a mid-rollout switch failure (writes against
// it fail, the rollout rolls back and retries until the switch is
// restored), injected control-plane faults (CPU stalls, brownouts, digest
// loss) from internal/faults, and one out-of-band pool mutation repaired
// by drift detection. Asserts the controller contract: convergence within
// a bounded number of rounds after the last generation, zero PCC
// violations against the exact-tuple shadow, rollback + retry + drift all
// exercised, and an idempotent re-apply issuing zero writes. Emits
// RECONCILE_soak.json; the same seed must reproduce it byte for byte.

import (
	"encoding/json"
	"fmt"
	"net/netip"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/intent"
	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Soak shape, in ticks of recTick virtual time. Traffic arrives in bursts
// (recBurstLen on, then quiet until the period repeats) so the rolling
// drain gate — next switch only after the previous one's PendingWork hits
// zero — sees real quiet windows between real load, like a ToR between
// connection storms.
const (
	recTick      = 100 * simtime.Microsecond
	recLoadTicks = 1200 // arrivals for 120 ms
	recLifeTicks = 600  // each flow lives 60 ms
	recStride    = 16   // live flows revisit the data path every 16 ticks
	recMembers   = 3
	recPerTick   = 2   // SYNs per burst tick
	recBurstLen  = 20  // ticks of arrivals per burst
	recBurstGap  = 80  // burst period (quiet for recBurstGap-recBurstLen)
	recGenEvery  = 200 // a new spec generation every 20 ms
	recGens      = 5   // generations 2..6 land during the load phase
	recFailAt    = 350 // switch 1 fails at 35 ms (mid-churn)
	recRestoreAt = 850 // and reboots empty at 85 ms
	recDriftAt   = 1300
	recConverge  = 400 // round budget for the final convergence loop
)

// ReconcileReport is the machine-readable outcome written to
// RECONCILE_soak.json. Everything derives from virtual time and seeded
// randomness: same (scale, seed) ⇒ identical bytes.
type ReconcileReport struct {
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
	Members int     `json:"members"`

	FinalGeneration uint64 `json:"final_generation"`

	FlowsStarted     int    `json:"flows_started"`
	FlowsEstablished int    `json:"flows_established"`
	Packets          uint64 `json:"packets"`
	Forwarded        uint64 `json:"forwarded"`

	Rounds        uint64 `json:"reconcile_rounds"`
	Applies       uint64 `json:"reconcile_applies"`
	Noops         uint64 `json:"reconcile_noops"`
	Retries       uint64 `json:"reconcile_retries"`
	Rollbacks     uint64 `json:"reconcile_rollbacks"`
	Errors        uint64 `json:"reconcile_errors"`
	DriftDetected uint64 `json:"drift_detected"`
	Writes        uint64 `json:"target_writes"`

	FaultsInjected  uint64            `json:"faults_injected"`
	FaultsByKind    map[string]uint64 `json:"faults_by_kind"`
	FaultsRemaining int               `json:"faults_remaining"`

	BucketsRedirected uint64 `json:"buckets_redirected"`
	RedirectedFlows   int    `json:"redirected_flows"`
	PCCViolations     int    `json:"pcc_violations"`

	RoundsToConverge int    `json:"rounds_to_converge"`
	ConvergedAtEnd   bool   `json:"converged_at_end"`
	PoolMismatches   int    `json:"final_pool_mismatches"`
	IdempotentWrites uint64 `json:"idempotent_reapply_writes"`

	Violations   []string `json:"invariant_violations"`
	InvariantsOK bool     `json:"invariants_ok"`
}

// recTracer counts reconcile events by step on top of an inner tracer
// (NopTracer, or the registry under --metrics).
type recTracer struct {
	telemetry.Tracer
	counts *[8]uint64
}

func (t recTracer) OnReconcile(e telemetry.ReconcileEvent) {
	if int(e.Step) < len(t.counts) {
		t.counts[e.Step]++
	}
	t.Tracer.OnReconcile(e)
}

// clusterFaultTarget adapts the deployment to the fault injector: "pipe"
// indices are cluster members. Accessors are re-read per call so faults
// land on the fresh planes after a RestoreSwitch.
type clusterFaultTarget struct{ c *cluster.Cluster }

func (t clusterFaultTarget) NumPipes() int { return t.c.Switches() }

func (t clusterFaultTarget) StallCPU(now simtime.Time, m int, d simtime.Duration) {
	t.c.Member(m).StallCPU(now, d)
}

func (t clusterFaultTarget) SetInsertRateScale(m int, scale float64) {
	t.c.Member(m).SetInsertRateScale(scale)
}

func (t clusterFaultTarget) SetConnTableLimit(m int, limit int) {
	t.c.Dataplane(m).SetConnTableLimit(limit)
}

func (t clusterFaultTarget) SetLearnLoss(m int, rate float64, seed uint64) {
	t.c.Dataplane(m).LearnFilter().SetLoss(rate, seed)
}

// recPoolFor returns generation g's DIP pool: the base pool with one slot
// swapped for a generation-specific DIP, so every rollout is exactly one
// pool update per switch.
func recPoolFor(g int) []string {
	dips := expPool(6)
	out := make([]string, len(dips))
	for i := range dips {
		out[i] = dips[i].String()
	}
	out[g%len(out)] = netip.AddrPortFrom(
		netip.AddrFrom4([4]byte{10, 9, 0, byte(g)}), 20).String()
	return out
}

// recSpecFor builds generation g's spec (Generation left 0: auto-assigned
// last+1 on apply).
func recSpecFor(g int) *intent.ClusterSpec {
	return &intent.ClusterSpec{
		Version: intent.SpecVersion,
		VIPs: []intent.VIPSpec{{
			VIP:  "20.0.0.1:80",
			Pool: recPoolFor(g),
		}},
	}
}

// recFlow is one connection's PCC bookkeeping: the member and shadow
// version pinned after establishment. A flow observed on a different
// member at any later revisit was redirected by the ECMP spray reacting
// to the switch failure; §7 accepts those breaking PCC, so they are
// counted separately and excluded from the violation check. The restored
// member comes back cold and takes no traffic (rejoining it warm is the
// upgrade soak's business), so a redirect is permanent here.
type recFlow struct {
	member     int
	version    uint32
	vset       bool
	redirected bool
}

// RunReconcileSoak drives the declarative-churn soak once and returns its
// report. Same (scale, seed) ⇒ identical report.
func RunReconcileSoak(scale float64, seed int64) (*ReconcileReport, error) {
	connTarget := int(2048 * scale)
	if connTarget < 1024 {
		connTarget = 1024
	}
	ccfg := cluster.DefaultConfig(recMembers, connTarget)
	ccfg.Dataplane.Seed = uint64(seed)
	clu, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}

	counts := new([8]uint64)
	var inner telemetry.Tracer = telemetry.NopTracer{}
	var reg *telemetry.Registry
	if CollectTelemetry {
		reg = telemetry.NewRegistry()
		inner = reg
	}
	rc := intent.NewCluster(clu.Fleet(), intent.FleetConfig{
		Config: intent.Config{
			BaseBackoff: 200 * simtime.Microsecond,
			MaxBackoff:  2 * simtime.Millisecond,
			MaxRetries:  3,
			Tracer:      recTracer{Tracer: inner, counts: counts},
		},
		RolloutBackoff: simtime.Millisecond,
	})

	rep := &ReconcileReport{Scale: scale, Seed: seed, Members: recMembers}
	vip := expVIP()

	// Generation 1 converges before traffic starts (the bootstrap apply).
	if err := rc.SetSpec(0, recSpecFor(1)); err != nil {
		return nil, err
	}
	for i := 0; i < 4*recMembers && !rc.Step(0); i++ {
	}
	if !rc.Converged() {
		return nil, fmt.Errorf("reconcile: bootstrap never converged")
	}

	// Control-plane faults from internal/faults, landing inside the churn
	// window: CPU stalls and brownouts slow the very insertions the drain
	// gate waits on; digest loss stresses re-learning.
	ms := func(n int) simtime.Duration { return simtime.Duration(n) * simtime.Millisecond }
	plan := faults.Generate(faults.GenConfig{
		Seed:  uint64(seed),
		Start: simtime.Time(0).Add(ms(10)),
		End:   simtime.Time(0).Add(ms(100)),
		Pipes: recMembers,

		CPUStalls: 2, StallFor: ms(3),
		Brownouts: 2, BrownoutScale: 0.25, BrownoutFor: ms(10),
		DigestLossWindows: 1, DigestLossRate: 0.2, DigestLossFor: ms(10),
	})
	inj := faults.NewInjector(plan, clusterFaultTarget{clu})
	if reg != nil {
		inj.SetTracer(reg)
	}

	tickTime := func(t int) simtime.Time { return simtime.Time(int64(t) * int64(recTick)) }
	var flows []recFlow
	firstLive := 0
	gen := 1

	shadow := func(i int) (int, uint32, bool) { return clu.ShadowVersion(expTuple(i)) }

	for t := 0; t <= recLoadTicks+recLifeTicks; t++ {
		now := tickTime(t)
		inj.Advance(now)
		clu.Advance(now)

		// Spec churn: a new generation every recGenEvery ticks.
		if t > 0 && t%recGenEvery == 0 && gen < 1+recGens {
			gen++
			if err := rc.SetSpec(now, recSpecFor(gen)); err != nil {
				return nil, fmt.Errorf("reconcile: gen %d rejected: %w", gen, err)
			}
		}
		// The mid-rollout switch fault: writes against member 1 fail with
		// ErrSwitchDown until it reboots (empty) at recRestoreAt.
		if t == recFailAt {
			if err := clu.FailSwitch(1); err != nil {
				return nil, err
			}
		}
		if t == recRestoreAt {
			if err := clu.RestoreSwitch(1); err != nil {
				return nil, err
			}
		}
		// Out-of-band pool mutation on member 2 (an operator bypassing the
		// spec): PCC-preserving at the switch, caught and reverted by the
		// drift scan below.
		if t == recDriftAt {
			drifted := append(expPool(6), netip.AddrPortFrom(
				netip.AddrFrom4([4]byte{10, 9, 9, 9}), 20))
			if err := clu.Member(2).RequestUpdate(now, vip, drifted); err != nil {
				return nil, err
			}
		}

		rc.Step(now)
		if t%100 == 0 {
			rc.DetectDrift(now)
		}

		// Flows born recLifeTicks ago end; just before each one goes, its
		// shadow version is compared against the version pinned at
		// establishment. A flow whose tuple now sprays to a different
		// member was redirected by the switch failure — §7 accepts those
		// breaking, so they are counted, not asserted.
		if bt := t - recLifeTicks; bt >= 0 {
			for i := firstLive; i < len(flows); i++ {
				if born(i) >= bt {
					break
				}
				f := &flows[i]
				if f.vset {
					m, v, ok := shadow(i)
					switch {
					case f.redirected || (ok && m != f.member):
						rep.RedirectedFlows++
					case ok && v != f.version:
						rep.PCCViolations++
					}
				}
				clu.ConnEnd(now, expTuple(i))
				firstLive = i + 1
			}
		}

		// Established traffic: a rotating 1/recStride sample of live flows.
		for i := firstLive; i < len(flows); i++ {
			if i%recStride == t%recStride {
				pkt := &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagACK}
				_, m, fwd := clu.Packet(now, pkt)
				rep.Packets++
				if fwd {
					rep.Forwarded++
				}
				f := &flows[i]
				if !f.vset {
					if sm, v, ok := shadow(i); ok && sm == m {
						f.member, f.version, f.vset = sm, v, true
						rep.FlowsEstablished++
					}
				} else if m != f.member {
					f.redirected = true
				}
			}
		}
		// Arrivals, in bursts: recPerTick SYNs while the burst window is
		// open, then quiet until the next period.
		if t < recLoadTicks && t%recBurstGap < recBurstLen {
			for k := 0; k < recPerTick; k++ {
				i := len(flows)
				flows = append(flows, recFlow{})
				pkt := &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagSYN}
				_, _, fwd := clu.Packet(now, pkt)
				rep.Packets++
				if fwd {
					rep.Forwarded++
				}
			}
		}
	}
	rep.FlowsStarted = len(flows)

	// Convergence loop: the churn is over; the fleet must reach the final
	// generation — and a clean drift scan — within recConverge rounds.
	now := tickTime(recLoadTicks + recLifeTicks)
	converged := false
	rounds := 0
	for ; rounds < recConverge; rounds++ {
		clu.Advance(now)
		if rc.Step(now) && rc.DetectDrift(now) == 0 && rc.Converged() {
			converged = true
			break
		}
		if due, ok := rc.NextDue(); ok && due.After(now) {
			now = due
		} else {
			now = now.Add(recTick)
		}
	}
	rep.RoundsToConverge = rounds
	rep.ConvergedAtEnd = converged
	rep.FinalGeneration = rc.Generation()

	// Final pools: every member must serve exactly the last generation.
	want, err := recSpecFor(gen).Normalize(0)
	if err != nil {
		return nil, err
	}
	for i := 0; i < clu.Switches(); i++ {
		obs, ok := clu.Target(i).ObservedPool(vip)
		if !ok || !intent.SamePool(obs, want.VIPs[vip].Pool) {
			rep.PoolMismatches++
		}
	}

	// Idempotency golden: re-submitting the final generation with
	// identical content must issue zero writes.
	var writesBefore uint64
	for i := 0; i < recMembers; i++ {
		writesBefore += rc.Member(i).Writes()
	}
	reapply := recSpecFor(gen)
	reapply.Generation = rc.Generation()
	if err := rc.SetSpec(now, reapply); err != nil {
		return nil, fmt.Errorf("reconcile: idempotent re-apply rejected: %w", err)
	}
	rc.Step(now)
	for i := 0; i < recMembers; i++ {
		rep.IdempotentWrites += rc.Member(i).Writes()
	}
	rep.IdempotentWrites -= writesBefore
	rep.Writes = writesBefore + rep.IdempotentWrites

	rep.Rounds = counts[telemetry.ReconcileRound]
	rep.Applies = counts[telemetry.ReconcileApply]
	rep.Noops = counts[telemetry.ReconcileNoop]
	rep.Retries = counts[telemetry.ReconcileRetry]
	rep.Rollbacks = counts[telemetry.ReconcileRollback]
	rep.Errors = counts[telemetry.ReconcileError]
	rep.DriftDetected = counts[telemetry.ReconcileDrift]
	im := inj.Metrics()
	rep.FaultsInjected = im.Injected
	rep.FaultsByKind = make(map[string]uint64, len(im.ByKind))
	for k, n := range im.ByKind {
		rep.FaultsByKind[k.String()] = n
	}
	rep.FaultsRemaining = inj.Remaining()
	rep.BucketsRedirected = clu.Redirected

	rep.Violations = reconcileInvariants(rep)
	rep.InvariantsOK = len(rep.Violations) == 0
	return rep, nil
}

// born returns the tick flow i was created on (inverse of the arrival
// schedule: recPerTick flows per burst tick).
func born(i int) int {
	burstTick := i / recPerTick // i-th burst tick overall
	return (burstTick/recBurstLen)*recBurstGap + burstTick%recBurstLen
}

// reconcileInvariants checks the controller contract against a finished
// run, in a fixed order for report determinism.
func reconcileInvariants(r *ReconcileReport) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	if r.PCCViolations != 0 {
		fail("PCC broken: %d established flows changed pool version", r.PCCViolations)
	}
	if !r.ConvergedAtEnd {
		fail("fleet never converged within %d rounds of the final generation", recConverge)
	}
	if r.FinalGeneration != 1+recGens {
		fail("final generation %d, want %d", r.FinalGeneration, 1+recGens)
	}
	if r.PoolMismatches != 0 {
		fail("%d members not serving the final pool", r.PoolMismatches)
	}
	if r.IdempotentWrites != 0 {
		fail("idempotent re-apply issued %d writes", r.IdempotentWrites)
	}
	if r.Rollbacks == 0 {
		fail("mid-rollout switch failure never triggered a rollback")
	}
	if r.Retries == 0 {
		fail("no apply was ever retried")
	}
	if r.DriftDetected == 0 {
		fail("out-of-band mutation never detected as drift")
	}
	if r.BucketsRedirected == 0 {
		fail("switch failure redirected no spray buckets")
	}
	if r.FaultsRemaining != 0 {
		fail("%d fault actions never fired", r.FaultsRemaining)
	}
	if r.FlowsEstablished == 0 {
		fail("no flow ever established")
	}
	if r.Forwarded == 0 {
		fail("nothing forwarded")
	}
	return v
}

// Reconcile is the registered experiment: two runs with the same seed must
// produce byte-identical reports; the first is emitted as
// RECONCILE_soak.json.
func Reconcile(scale float64, seed int64) (*Report, error) {
	r1, err := RunReconcileSoak(scale, seed)
	if err != nil {
		return nil, err
	}
	b1, err := json.MarshalIndent(r1, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("reconcile: %w", err)
	}
	r2, err := RunReconcileSoak(scale, seed)
	if err != nil {
		return nil, err
	}
	b2, err := json.Marshal(r2)
	if err != nil {
		return nil, fmt.Errorf("reconcile: %w", err)
	}
	b1c, _ := json.Marshal(r1)
	deterministic := string(b1c) == string(b2)

	rep := &Report{ID: "reconcile", Title: "Reconcile soak: declarative spec churn, rolling updates, rollback"}
	rep.Printf("generations %d  reconcile rounds %d  writes %d (applies %d, noops %d)",
		r1.FinalGeneration, r1.Rounds, r1.Writes, r1.Applies, r1.Noops)
	rep.Printf("faults: injected %d %v  retries %d  rollbacks %d  errors %d  drift %d",
		r1.FaultsInjected, r1.FaultsByKind, r1.Retries, r1.Rollbacks, r1.Errors, r1.DriftDetected)
	rep.Printf("flows %d (established %d)  packets %d (forwarded %d)  redirected flows %d",
		r1.FlowsStarted, r1.FlowsEstablished, r1.Packets, r1.Forwarded, r1.RedirectedFlows)
	rep.Printf("PCC violations %d  converged in %d rounds  idempotent re-apply writes %d",
		r1.PCCViolations, r1.RoundsToConverge, r1.IdempotentWrites)
	if r1.InvariantsOK {
		rep.Printf("invariants: all hold")
	} else {
		for _, s := range r1.Violations {
			rep.Printf("INVARIANT VIOLATED: %s", s)
		}
	}
	if deterministic {
		rep.Printf("determinism: second run with seed %d reproduced the report byte for byte", seed)
	} else {
		rep.Printf("DETERMINISM VIOLATED: same seed produced a different report")
	}
	if !r1.InvariantsOK || !deterministic {
		return nil, fmt.Errorf("reconcile soak failed: %v (deterministic=%v)", r1.Violations, deterministic)
	}
	rep.ArtifactName = "RECONCILE_soak.json"
	rep.Artifact = append(b1, '\n')
	return rep, nil
}
