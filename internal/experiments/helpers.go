package experiments

import (
	"net/netip"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/regarray"
	"repro/internal/simtime"
)

// greenMeter wraps a two-rate three-color meter for accuracy measurement.
type greenMeter struct{ m *regarray.Meter }

func newMeter(cirBytesPerSec float64) greenMeter {
	return greenMeter{m: regarray.NewMeter(cirBytesPerSec, cirBytesPerSec/100, 1, 1)}
}

// MarkGreen reports whether the packet is in the committed profile.
func (g greenMeter) MarkGreen(now simtime.Time, bytes int) bool {
	return g.m.Mark(now, bytes) == regarray.Green
}

// expVIP builds the experiment's canonical VIP.
func expVIP() dataplane.VIP {
	return dataplane.VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 80, Proto: netproto.ProtoTCP}
}

// expPool builds n IPv4 DIPs.
func expPool(n int) []dataplane.DIP {
	out := make([]dataplane.DIP, n)
	for i := range out {
		out[i] = netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}), 20)
	}
	return out
}

// expTuple builds the i-th client connection to the canonical VIP.
func expTuple(i int) netproto.FiveTuple {
	return netproto.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{1, byte(i >> 16), byte(i >> 8), byte(i)}),
		Dst:     netip.MustParseAddr("20.0.0.1"),
		SrcPort: uint16(1024 + i%60000),
		DstPort: 80,
		Proto:   netproto.ProtoTCP,
	}
}

// synPacket builds the i-th client's SYN to the canonical VIP.
func synPacket(i int) *netproto.Packet {
	return &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagSYN}
}

// insertionThroughput offers SYNs faster than the CPU's configured rate
// and measures sustained insertions per virtual second plus the mean
// arrival-to-install delay.
func insertionThroughput(scale float64) (ratePerSec float64, meanDelay simtime.Duration) {
	dur := simtime.Duration(float64(simtime.Second) * 0.5 * scale)
	if dur < simtime.Duration(100*simtime.Millisecond) {
		dur = simtime.Duration(100 * simtime.Millisecond)
	}
	sw, err := dataplane.New(dataplane.DefaultConfig(1_000_000))
	if err != nil {
		panic(err)
	}
	cp := ctrlplane.New(sw, ctrlplane.DefaultConfig())
	if err := cp.AddVIP(0, expVIP(), expPool(32), 0); err != nil {
		panic(err)
	}
	// Offer at 2x the CPU rate so the pipeline saturates.
	offered := 400_000.0
	interval := simtime.Duration(float64(simtime.Second) / offered)
	now := simtime.Time(0)
	i := 0
	for now.Before(simtime.Time(0).Add(dur)) {
		cp.Advance(now)
		pkt := &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagSYN}
		res := sw.Process(now, pkt)
		cp.HandleResult(now, pkt, res)
		now = now.Add(interval)
		i++
	}
	// Let the backlog drain to measure steady-state throughput over the
	// busy period only.
	m := cp.Metrics()
	busySeconds := simtime.Duration(now.Sub(0)).Seconds()
	return float64(m.Inserted) / busySeconds, m.MeanInsertDelay()
}
