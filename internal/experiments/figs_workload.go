package experiments

import (
	"math/rand"

	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig2 regenerates Figure 2: the distribution across clusters of DIP pool
// updates per minute, for the median and 99th-percentile minute of a
// simulated month.
func Fig2(scale float64, seed int64) *Report {
	fleet := workload.Fleet(seed)
	rng := rand.New(rand.NewSource(seed + 1))
	minutes := int(43200 * scale)
	if minutes < 1440 {
		minutes = 1440
	}
	perType := map[workload.ClusterType][2]*stats.CDF{}
	for _, t := range []workload.ClusterType{workload.PoP, workload.Frontend, workload.Backend} {
		perType[t] = [2]*stats.CDF{{}, {}}
	}
	var allMed, allP99 stats.CDF
	for i := range fleet {
		c := &fleet[i]
		series := c.MinuteUpdateSeries(rng, minutes)
		var cdf stats.CDF
		for _, v := range series {
			cdf.Add(float64(v))
		}
		med, p99 := cdf.Median(), cdf.P99()
		perType[c.Type][0].Add(med)
		perType[c.Type][1].Add(p99)
		allMed.Add(med)
		allP99.Add(p99)
	}
	r := &Report{ID: "fig2", Title: "Y% of clusters with more than X updates/min (median and p99 minute of a month)"}
	r.Printf("%-28s %8s %8s %8s %8s", "series", ">1/min", ">10/min", ">50/min", ">100/min")
	row := func(name string, c *stats.CDF) {
		r.Printf("%-28s %7.0f%% %7.0f%% %7.0f%% %7.0f%%",
			name, 100*c.FractionAbove(1), 100*c.FractionAbove(10),
			100*c.FractionAbove(50), 100*c.FractionAbove(100))
	}
	row("all clusters (p99 minute)", &allP99)
	row("all clusters (median minute)", &allMed)
	for _, t := range []workload.ClusterType{workload.PoP, workload.Frontend, workload.Backend} {
		row(t.String()+" (p99 minute)", perType[t][1])
	}
	r.Printf("paper: 32%% of clusters >10 and 3%% >50 updates in the p99 minute; half of Backends >16")
	return r
}

// Fig3 regenerates Figure 3: the distribution of root causes behind DIP
// additions and removals over a month of events.
func Fig3(scale float64, seed int64) *Report {
	rng := rand.New(rand.NewSource(seed + 2))
	n := int(200000 * scale)
	if n < 20000 {
		n = 20000
	}
	counter := stats.NewCounter()
	// Fleet-wide mix: most update events come from Backends (they both
	// dominate the fleet and update most often).
	for i := 0; i < n; i++ {
		t := workload.Backend
		if rng.Float64() < 0.09 { // small share of events from PoPs/Frontends
			if rng.Intn(2) == 0 {
				t = workload.PoP
			} else {
				t = workload.Frontend
			}
		}
		counter.Inc(workload.SampleCause(rng, t).String(), 1)
	}
	r := &Report{ID: "fig3", Title: "Distribution of root causes for DIP additions and removals (one month)"}
	for _, label := range counter.Labels() {
		r.Printf("%-14s %6.1f%%", label, 100*counter.Fraction(label))
	}
	r.Printf("paper: 82.7%% of additions/removals come from VIP service upgrades in Backends")
	return r
}

// Fig4 regenerates Figure 4: the CDF of DIP downtime (reboot to back
// alive) by root cause.
func Fig4(scale float64, seed int64) *Report {
	rng := rand.New(rand.NewSource(seed + 3))
	n := int(50000 * scale)
	if n < 5000 {
		n = 5000
	}
	r := &Report{ID: "fig4", Title: "DIP downtime duration by root cause (minutes)"}
	r.Printf("%-14s %10s %10s %10s", "cause", "median", "p90", "p99")
	for _, c := range []workload.Cause{workload.Upgrade, workload.Testing, workload.Failure, workload.Preempting} {
		var cdf stats.CDF
		for i := 0; i < n; i++ {
			cdf.Add(workload.SampleDowntime(rng, c).Minutes())
		}
		r.Printf("%-14s %10.1f %10.1f %10.1f", c.String(), cdf.Median(), cdf.Quantile(0.9), cdf.P99())
	}
	r.Printf("%-14s %10s", workload.Provisioning.String(), "no downtime")
	r.Printf("paper: upgrades are down 3 min in the median, 100 min at p99")
	return r
}

// Fig6 regenerates Figure 6: active connections per ToR switch across
// clusters (median and p99 minute snapshots).
func Fig6(seed int64) *Report {
	fleet := workload.Fleet(seed)
	r := &Report{ID: "fig6", Title: "Active connections per ToR switch across clusters (millions)"}
	r.Printf("%-10s %10s %10s %10s %10s", "type", "med(med)", "med(p99)", "max(p99)", "clusters")
	for _, t := range []workload.ClusterType{workload.PoP, workload.Frontend, workload.Backend} {
		var med, p99 stats.CDF
		n := 0
		for _, c := range fleet {
			if c.Type != t {
				continue
			}
			med.Add(float64(c.ActiveConnsPerToRMedian) / 1e6)
			p99.Add(float64(c.ActiveConnsPerToRP99) / 1e6)
			n++
		}
		r.Printf("%-10s %10.2f %10.2f %10.2f %10d", t.String(), med.Median(), p99.Median(), p99.Max(), n)
	}
	r.Printf("paper: the most loaded PoPs and Backends carry ~10M-15M connections per ToR; Frontends far fewer")
	return r
}

// Fig8 regenerates Figure 8: the distribution of new connections per VIP
// per minute.
func Fig8(scale float64, seed int64) *Report {
	fleet := workload.Fleet(seed)
	rng := rand.New(rand.NewSource(seed + 4))
	var cdf stats.CDF
	perVIP := int(100 * scale)
	if perVIP < 20 {
		perVIP = 20
	}
	for i := range fleet {
		for v := 0; v < perVIP; v++ {
			cdf.Add(fleet[i].SampleNewConnsPerVIPMinute(rng))
		}
	}
	r := &Report{ID: "fig8", Title: "New connections per VIP per minute"}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		r.Printf("p%-5.3g %14.0f conns/min", q*100, cdf.Quantile(q))
	}
	r.Printf("paper: a VIP can see more than 50M new connections in a minute")
	return r
}

// scaledDuration converts a base virtual duration by the scale knob with a
// floor, shared by the simulation figures.
func scaledDuration(base simtime.Duration, scale float64, floor simtime.Duration) simtime.Duration {
	d := simtime.Duration(float64(base) * scale)
	if d < floor {
		d = floor
	}
	return d
}
