package experiments

import (
	"math/rand"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/hybrid"
	"repro/internal/netproto"
	"repro/internal/netwide"
	"repro/internal/simtime"
	"repro/internal/slb"
	"repro/internal/workload"
)

// Netwide regenerates the §5.3 deployment analysis: bin-pack a synthetic
// cluster's VIPs across a Clos fabric's layers, minimizing the bottleneck
// SRAM utilization, and compare against all-at-ToR and an incremental
// deployment.
func Netwide(scale float64, seed int64) (*Report, error) {
	r := &Report{ID: "netwide", Title: "Network-wide VIP assignment (§5.3)"}
	fleet := workload.Fleet(seed)
	rng := rand.New(rand.NewSource(seed + 9))
	// Pick the largest Backend cluster: the hardest packing instance.
	var c *workload.Cluster
	for i := range fleet {
		if fleet[i].Type != workload.Backend {
			continue
		}
		if c == nil || fleet[i].ActiveConnsPerToRP99 > c.ActiveConnsPerToRP99 {
			c = &fleet[i]
		}
	}
	topo := netwide.Uniform(c.ToRs, c.ToRs/4+1, 4, 50<<20, 6.4e12)
	// VIP demands: split the cluster's connections and traffic across its
	// VIPs with a heavy tail.
	vips := make([]netwide.VIPDemand, c.VIPs)
	totalConns := float64(c.ActiveConnsPerToRP99) * float64(c.ToRs)
	weights := make([]float64, c.VIPs)
	sum := 0.0
	for i := range weights {
		weights[i] = rng.ExpFloat64() + 0.05
		sum += weights[i]
	}
	for i := range vips {
		conns := int(totalConns * weights[i] / sum)
		vips[i] = netwide.VIPDemand{
			Name:       c.Name,
			SRAMBytes:  dataplane.LayoutDigestVersion(16, 6).TableBytes(conns),
			TrafficBps: c.PeakBps * weights[i] / sum,
		}
	}
	asg, err := netwide.Assign(topo, vips)
	if err != nil {
		return nil, err
	}
	counts := map[netwide.Layer]int{}
	for _, l := range asg.Layer {
		counts[l]++
	}
	r.Printf("cluster %s: %d ToRs, %d VIPs, %.1fM conns, %.0f Gbps",
		c.Name, c.ToRs, c.VIPs, totalConns/1e6, c.PeakBps/1e9)
	r.Printf("optimized: ToR=%d Agg=%d Core=%d VIPs; bottleneck SRAM %.1f%%, capacity %.1f%%",
		counts[netwide.ToR], counts[netwide.Agg], counts[netwide.Core],
		100*asg.MaxSRAMUtil, 100*asg.MaxCapUtil)
	naive := make([]netwide.Layer, len(vips))
	s, cap_ := netwide.Utilization(topo, vips, naive)
	r.Printf("all-at-ToR:  bottleneck SRAM %.1f%%, capacity %.1f%%", 100*s, 100*cap_)
	partial := topo
	partial.Enabled[netwide.ToR] = topo.Count[netwide.ToR] / 4
	if pasg, err := netwide.Assign(partial, vips); err == nil {
		r.Printf("incremental (1/4 of ToRs enabled): bottleneck SRAM %.1f%%", 100*pasg.MaxSRAMUtil)
	} else {
		r.Printf("incremental (1/4 of ToRs enabled): infeasible (%v)", err)
	}
	return r, nil
}

// Hybrid regenerates the §7 cache analysis: sweep the hardware ConnTable
// size against a fixed connection population and report the share of
// traffic that spills to the software tier.
func Hybrid(scale float64, seed int64) (*Report, error) {
	r := &Report{ID: "hybrid", Title: "ConnTable as a cache with an SLB overflow tier (§7)"}
	connCount := int(8000 * scale)
	if connCount < 2000 {
		connCount = 2000
	}
	r.Printf("%14s %14s %16s %14s", "table entries", "cached conns", "overflow conns", "sw pkt share")
	for _, capEntries := range []int{connCount / 8, connCount / 4, connCount / 2, connCount * 2} {
		b, err := hybrid.New(dataplane.DefaultConfig(capEntries), ctrlplane.DefaultConfig(), slb.DefaultConfig())
		if err != nil {
			return nil, err
		}
		vip := expVIP()
		if err := b.AddVIP(0, vip, expPool(16)); err != nil {
			return nil, err
		}
		now := simtime.Time(0)
		for i := 0; i < connCount; i++ {
			b.Packet(now, &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagSYN})
			now = now.Add(simtime.Duration(20 * simtime.Microsecond))
		}
		b.Advance(now.Add(simtime.Duration(simtime.Second)))
		// Steady traffic on every connection.
		for round := 0; round < 3; round++ {
			for i := 0; i < connCount; i++ {
				b.Packet(now, &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagACK})
			}
			now = now.Add(simtime.Duration(100 * simtime.Millisecond))
		}
		st := b.Stats()
		r.Printf("%14d %14d %16d %13.1f%%",
			capEntries, connCount-int(st.OverflowConns), st.OverflowConns, 100*b.SoftwareShare())
	}
	r.Printf("the cache keeps the hot majority in hardware; overflow connections stay")
	r.Printf("consistent at the SLB tier (see internal/hybrid tests)")
	return r, nil
}
