package experiments

import (
	"encoding/json"
	"testing"
)

// TestPipesBenchShape asserts the multi-pipe acceptance claim: a 4-pipe
// chip's modeled aggregate throughput is at least 2x a single pipe's on
// the same workload, bounded only by shard balance, and the JSON artifact
// round-trips.
func TestPipesBenchShape(t *testing.T) {
	rep, err := PipesBench(testScale, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ArtifactName != "BENCH_pipes.json" || len(rep.Artifact) == 0 {
		t.Fatalf("missing artifact: %q (%d bytes)", rep.ArtifactName, len(rep.Artifact))
	}
	var res PipesBenchResult
	if err := json.Unmarshal(rep.Artifact, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(res.Configs) != 2 || res.Configs[0].Pipes != 1 || res.Configs[1].Pipes != 4 {
		t.Fatalf("configs = %+v, want pipes 1 and 4", res.Configs)
	}
	one, four := res.Configs[0], res.Configs[1]
	if one.Packets != four.Packets || one.Packets == 0 {
		t.Fatalf("workloads differ: %d vs %d packets", one.Packets, four.Packets)
	}
	if res.ModeledSpeedup < 2 {
		t.Fatalf("modeled speedup = %.2fx, want >= 2x", res.ModeledSpeedup)
	}
	// The shard must actually spread: every pipe sees traffic, none more
	// than half of it.
	if len(four.PipePackets) != 4 {
		t.Fatalf("pipe_packets = %v", four.PipePackets)
	}
	for i, n := range four.PipePackets {
		if n == 0 || n > four.Packets/2 {
			t.Fatalf("pipe %d carries %d of %d packets — shard skewed", i, n, four.Packets)
		}
	}
	if one.Connections != four.Connections || one.Connections == 0 {
		t.Fatalf("tracked connections differ: %d vs %d", one.Connections, four.Connections)
	}
}
