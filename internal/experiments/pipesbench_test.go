package experiments

import (
	"encoding/json"
	"testing"
)

// TestPipesBenchShape asserts the multi-pipe acceptance claim: a 4-pipe
// chip's modeled aggregate throughput is at least 2x a single pipe's on
// the same workload, bounded only by shard balance, and the JSON artifact
// round-trips.
func TestPipesBenchShape(t *testing.T) {
	rep, err := PipesBench(testScale, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ArtifactName != "BENCH_pipes.json" || len(rep.Artifact) == 0 {
		t.Fatalf("missing artifact: %q (%d bytes)", rep.ArtifactName, len(rep.Artifact))
	}
	var res PipesBenchResult
	if err := json.Unmarshal(rep.Artifact, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(res.Configs) != 2 || res.Configs[0].Pipes != 1 || res.Configs[1].Pipes != 4 {
		t.Fatalf("configs = %+v, want pipes 1 and 4", res.Configs)
	}
	one, four := res.Configs[0], res.Configs[1]
	if one.Packets != four.Packets || one.Packets == 0 {
		t.Fatalf("workloads differ: %d vs %d packets", one.Packets, four.Packets)
	}
	if res.ModeledSpeedup < 2 {
		t.Fatalf("modeled speedup = %.2fx, want >= 2x", res.ModeledSpeedup)
	}
	// The shard must actually spread: every pipe sees traffic, none more
	// than half of it.
	if len(four.PipePackets) != 4 {
		t.Fatalf("pipe_packets = %v", four.PipePackets)
	}
	for i, n := range four.PipePackets {
		if n == 0 || n > four.Packets/2 {
			t.Fatalf("pipe %d carries %d of %d packets — shard skewed", i, n, four.Packets)
		}
	}
	if one.Connections != four.Connections || one.Connections == 0 {
		t.Fatalf("tracked connections differ: %d vs %d", one.Connections, four.Connections)
	}
}

// TestGatePipes pins the perf-gate policy: >30% ratio regression against
// the latest same-scale point fails, anything else — improvements,
// different scales, missing history — passes.
func TestGatePipes(t *testing.T) {
	mk := func(pts ...PipesTrendPoint) PipesBenchResult {
		return PipesBenchResult{Trajectory: pts}
	}
	pt := func(scale, speedup float64) PipesTrendPoint {
		return PipesTrendPoint{When: "test", Scale: scale, WallclockSpeedX: speedup}
	}
	if err := GatePipes(mk()); err != nil {
		t.Fatalf("empty trajectory: %v", err)
	}
	if err := GatePipes(mk(pt(1, 2.0))); err != nil {
		t.Fatalf("first recorded run: %v", err)
	}
	if err := GatePipes(mk(pt(1, 2.0), pt(1, 1.5))); err != nil {
		t.Fatalf("25%% drop must pass: %v", err)
	}
	if err := GatePipes(mk(pt(1, 2.0), pt(1, 1.3))); err == nil {
		t.Fatal("35% drop must fail the gate")
	}
	if err := GatePipes(mk(pt(1, 2.0), pt(0.05, 0.5))); err != nil {
		t.Fatalf("different scale has no baseline, must pass: %v", err)
	}
	// The comparison picks the latest point at the matching scale, skipping
	// interleaved runs at other scales.
	if err := GatePipes(mk(pt(0.05, 1.0), pt(1, 2.0), pt(0.05, 1.1))); err != nil {
		t.Fatalf("same-scale comparison across interleaved scales: %v", err)
	}
	// 2.0 against a 3.0 baseline is a 33% drop: the gate must fail even
	// with a different-scale run recorded in between.
	if err := GatePipes(mk(pt(1, 3.0), pt(0.05, 1.0), pt(1, 2.0))); err == nil {
		t.Fatal("33% drop across interleaved scales must fail the gate")
	}

	// The frames gate is in-run: frames-mode pps below 90% of struct mode
	// fails regardless of history; at or above the floor passes; points
	// recorded before the frame path existed (ratio 0) are exempt.
	ptf := func(frames float64) PipesTrendPoint {
		return PipesTrendPoint{When: "test", Scale: 1, WallclockSpeedX: 2.0, FramesVsStructX: frames}
	}
	if err := GatePipes(mk(ptf(1.05))); err != nil {
		t.Fatalf("frames ahead of struct must pass: %v", err)
	}
	if err := GatePipes(mk(ptf(0.93))); err != nil {
		t.Fatalf("frames within the 10%% band must pass: %v", err)
	}
	if err := GatePipes(mk(ptf(0.8))); err == nil {
		t.Fatal("frames at 0.8x of struct must fail the gate")
	}
	if err := GatePipes(mk(ptf(0))); err != nil {
		t.Fatalf("pre-frames point must pass: %v", err)
	}
}
