package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the fig16/17/18 golden files")

// TestFigGoldenDeterminism pins the seeded flowsim outputs of Figures 16,
// 17 and 18 to golden files. These figures exercise the whole timed stack —
// Poisson arrivals, probe trains, rolling-reboot updates, learning-filter
// drains, rate-limited CPU insertions and the 3-step PCC update — so any
// change to event ordering (e.g. in the internal/sched event loop that now
// drives flowsim) shows up as a byte-level diff here.
//
// Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestFigGoldenDeterminism -update
func TestFigGoldenDeterminism(t *testing.T) {
	for _, id := range []string{"fig16", "fig17", "fig18"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			rep, err := r.Run(testScale, testSeed)
			if err != nil {
				t.Fatal(err)
			}
			got := rep.String()
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s output diverged from golden file:\n%s", id, firstDiff(string(want), got))
			}
		})
	}
}

// firstDiff renders the first differing line of want vs got.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  golden: %q\n  got:    %q", i+1, w, g)
		}
	}
	return "(no line diff; lengths differ)"
}
