package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/pipes"
	"repro/internal/sched"
	"repro/internal/simtime"
)

// RuntimeBenchRow is one measured driving mode.
type RuntimeBenchRow struct {
	// Mode is "hand" (the caller interleaves ProcessBatch with explicit
	// Advance calls, the pre-runtime convention) or "sched" (a wall-clock
	// scheduler driver owns background work; the packet path only pokes it).
	Mode         string  `json:"mode"`
	Packets      uint64  `json:"packets"`
	Connections  int     `json:"connections"`
	WallclockPPS float64 `json:"wallclock_pps"`
	NsPerPacket  float64 `json:"ns_per_packet"`
}

// RuntimeBenchResult is the machine-readable payload written to
// BENCH_runtime.json.
type RuntimeBenchResult struct {
	Scale float64           `json:"scale"`
	Seed  int64             `json:"seed"`
	Note  string            `json:"note"`
	Rows  []RuntimeBenchRow `json:"rows"`
	// OverheadPct is (sched ns/pkt / hand ns/pkt - 1) x 100: the packet-path
	// cost of letting the event runtime own background work. The acceptance
	// bar for the runtime refactor is <= 5%.
	OverheadPct float64 `json:"overhead_pct"`
}

const runtimeBenchNote = "overhead_pct compares ProcessBatch cost with background work " +
	"driven by the wall-clock scheduler driver (sched) against explicit per-batch Advance " +
	"calls (hand) on the same 4-pipe workload; both are wall-clock measurements of this " +
	"simulator on the build host and jitter with host load."

// engineSource adapts a pipes.Engine as a scheduler source the way the
// silkroad facade does: deadlines come from NextDue (background work plus
// aging), advancing runs the engine's legacy Advance path.
type engineSource struct{ eng *pipes.Engine }

func (s engineSource) NextEventTime() (simtime.Time, bool) { return s.eng.NextDue() }
func (s engineSource) Advance(now simtime.Time)            { s.eng.Advance(now) }

// runRuntimeConfig measures one driving mode over the shared workload.
func runRuntimeConfig(schedDriven bool, conns, pktsPerConn, batchSize int, seed int64) (RuntimeBenchRow, error) {
	dcfg := dataplane.DefaultConfig(200_000)
	dcfg.Seed = uint64(seed)
	eng, err := pipes.New(pipes.Config{
		Pipes:        4,
		Dataplane:    dcfg,
		Controlplane: ctrlplane.DefaultConfig(),
	})
	if err != nil {
		return RuntimeBenchRow{}, err
	}
	if err := eng.AddVIP(0, expVIP(), expPool(8), 0); err != nil {
		return RuntimeBenchRow{}, err
	}

	// Establish the connection working set outside the timed region, then
	// measure steady-state ACK batches.
	batch := make([]*netproto.Packet, 0, batchSize)
	for base := 0; base < conns; base += batchSize {
		batch = batch[:0]
		for i := base; i < base+batchSize && i < conns; i++ {
			batch = append(batch, &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagSYN})
		}
		eng.ProcessBatch(0, batch)
	}
	eng.Advance(simtime.Time(5 * simtime.Millisecond))
	now := simtime.Time(10 * simtime.Millisecond)

	var (
		clock  *sched.ManualClock
		driver *sched.WallDriver
		done   chan error
		cancel context.CancelFunc
	)
	if schedDriven {
		rt := sched.New()
		rt.AddSource(engineSource{eng})
		clock = sched.NewManualClock(now)
		driver = sched.NewWallDriver(clock, rt, &sync.Mutex{})
		var ctx context.Context
		ctx, cancel = context.WithCancel(context.Background())
		defer cancel()
		done = make(chan error, 1)
		go func() { done <- driver.Run(ctx) }()
	}

	pktsTotal := conns * pktsPerConn
	start := time.Now()
	for p := 0; p < pktsTotal; p += batchSize {
		batch = batch[:0]
		for i := p; i < p+batchSize && i < pktsTotal; i++ {
			batch = append(batch, &netproto.Packet{Tuple: expTuple(i % conns), TCPFlags: netproto.FlagACK})
		}
		if schedDriven {
			clock.Set(now)
			eng.ProcessBatch(now, batch)
			driver.Poke()
		} else {
			eng.ProcessBatch(now, batch)
			eng.Advance(now)
		}
		now = now.Add(simtime.Duration(simtime.Microsecond))
	}
	elapsed := time.Since(start).Seconds()

	if schedDriven {
		cancel()
		if err := <-done; err != nil {
			return RuntimeBenchRow{}, err
		}
	} else {
		eng.Advance(now)
	}

	st := eng.Stats()
	row := RuntimeBenchRow{
		Mode:        "hand",
		Packets:     st.Dataplane.Packets,
		Connections: st.Connections,
	}
	if schedDriven {
		row.Mode = "sched"
	}
	if elapsed > 0 && pktsTotal > 0 {
		row.WallclockPPS = float64(pktsTotal) / elapsed
		row.NsPerPacket = elapsed * 1e9 / float64(pktsTotal)
	}
	return row, nil
}

// RuntimeBench measures the packet-path overhead of the unified event
// runtime: the same steady-state batch workload with background work
// driven by hand versus by the wall-clock scheduler driver. The report
// carries a BENCH_runtime.json artifact.
func RuntimeBench(scale float64, seed int64) (*Report, error) {
	conns := int(20_000 * scale)
	if conns < 1000 {
		conns = 1000
	}
	const pktsPerConn = 5
	const batchSize = 256

	result := RuntimeBenchResult{Scale: scale, Seed: seed, Note: runtimeBenchNote}
	for _, schedDriven := range []bool{false, true} {
		row, err := runRuntimeConfig(schedDriven, conns, pktsPerConn, batchSize, seed)
		if err != nil {
			return nil, err
		}
		result.Rows = append(result.Rows, row)
	}
	hand, schd := result.Rows[0], result.Rows[1]
	if hand.NsPerPacket > 0 {
		result.OverheadPct = (schd.NsPerPacket/hand.NsPerPacket - 1) * 100
	}

	rep := &Report{ID: "runtime", Title: "Event-runtime overhead: scheduler-driven vs hand-driven ProcessBatch"}
	rep.Printf("%-6s %12s %12s %14s %14s", "mode", "packets", "conns", "wallclock pps", "ns/packet")
	for _, r := range result.Rows {
		rep.Printf("%-6s %12d %12d %14.3g %14.1f", r.Mode, r.Packets, r.Connections, r.WallclockPPS, r.NsPerPacket)
	}
	rep.Printf("scheduler overhead %+.1f%% (wall-clock on this host — informational; bar is <= 5%%)", result.OverheadPct)

	art, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("runtime bench: %w", err)
	}
	rep.ArtifactName = "BENCH_runtime.json"
	rep.Artifact = append(art, '\n')
	return rep, nil
}
