package experiments

import (
	"strings"
	"testing"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
)

const (
	testScale = 0.1
	testSeed  = 1
)

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("registered %d experiments, want 24", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if r.ID == "" || r.Desc == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
	}
	if _, ok := ByID("fig16"); !ok {
		t.Fatal("ByID(fig16) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
	if len(IDs()) != 24 {
		t.Fatal("IDs incomplete")
	}
}

func TestTable1(t *testing.T) {
	r := Table1()
	s := r.String()
	if !strings.Contains(s, "2016") || !strings.Contains(s, "SRAM") {
		t.Fatalf("table1 output:\n%s", s)
	}
}

func TestTable2MatchesPaperBand(t *testing.T) {
	_, data, err := table2Build()
	if err != nil {
		t.Fatal(err)
	}
	u := data.Usage
	// The paper's Table 2 values with generous bands (the baseline
	// switch.p4 absolute usage is calibrated, see asic.BaselineSwitchP4).
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"SRAM", u.SRAM, 0.2792, 0.15},
		{"crossbar", u.MatchCrossbar, 0.3753, 0.20},
		{"hash bits", u.HashBits, 0.3417, 0.20},
		{"stateful ALUs", u.StatefulALUs, 0.4444, 0.25},
		{"TCAM", u.TCAM, 0, 0.001},
	}
	for _, c := range checks {
		if c.got < c.want-c.tol || c.got > c.want+c.tol {
			t.Errorf("%s = %.4f, paper %.4f (tol %.2f)", c.name, c.got, c.want, c.tol)
		}
	}
	if rep, err := Table2(); err != nil || rep.String() == "" {
		t.Fatalf("Table2 render: %v", err)
	}
}

func TestFig2Renders(t *testing.T) {
	r := Fig2(testScale, testSeed)
	if !strings.Contains(r.String(), "p99 minute") {
		t.Fatal("fig2 missing rows")
	}
}

func TestFig3UpgradeDominates(t *testing.T) {
	r := Fig3(testScale, testSeed)
	s := r.String()
	if !strings.Contains(s, "upgrade") {
		t.Fatalf("fig3:\n%s", s)
	}
}

func TestFig4And6And8Render(t *testing.T) {
	for _, rep := range []*Report{Fig4(testScale, testSeed), Fig6(testSeed), Fig8(testScale, testSeed)} {
		if len(rep.String()) < 50 {
			t.Fatalf("%s too short", rep.ID)
		}
	}
}

func TestFig12WithinASICBudget(t *testing.T) {
	r := Fig12(testSeed)
	s := r.String()
	if !strings.Contains(s, "Backend") {
		t.Fatalf("fig12:\n%s", s)
	}
}

func TestFig13And14Render(t *testing.T) {
	if s := Fig13(testSeed).String(); !strings.Contains(s, "Frontend") {
		t.Fatalf("fig13:\n%s", s)
	}
	if s := Fig14(testSeed).String(); !strings.Contains(s, "digest") {
		t.Fatalf("fig14:\n%s", s)
	}
}

// TestFig15ShapeHolds asserts the paper's version-reuse claim: without
// reuse the minted-version count tracks the update count; with reuse the
// concurrent demand stays within a 6-bit field even at 330 updates per
// 10 minutes.
func TestFig15ShapeHolds(t *testing.T) {
	noMint, noActive, err := fig15Run(330, testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	reMint, reActive, err := fig15Run(330, testSeed, false)
	if err != nil {
		t.Fatal(err)
	}
	if noMint < 300 {
		t.Fatalf("no-reuse minted %d versions for 330 updates, should track updates", noMint)
	}
	if noActive <= 64 {
		t.Fatalf("no-reuse max active = %d; paper needs 9 bits here", noActive)
	}
	if reActive > 64 {
		t.Fatalf("with reuse, max active = %d versions exceed a 6-bit field", reActive)
	}
	if reMint >= noMint {
		t.Fatalf("reuse minted %d >= no-reuse %d", reMint, noMint)
	}
}

// TestFig16ShapeHolds is the headline result: SilkRoad has zero broken
// connections at every update rate while both baselines break some.
func TestFig16ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := fig16BaseConfig(testScale, testSeed)
	cfg.UpdatesPerMin = 50

	sres, err := silkroadSim(cfg, nil, nil, "SilkRoad")
	if err != nil {
		t.Fatal(err)
	}
	if sres.BrokenConns != 0 {
		t.Fatalf("SilkRoad broke %d connections", sres.BrokenConns)
	}
	nres, err := silkroadSim(cfg,
		func(d *dataplane.Config) { d.DisableTransit = true },
		func(c *ctrlplane.Config) { c.Mode = ctrlplane.ModeNoTransit },
		"SilkRoad w/o TransitTable")
	if err != nil {
		t.Fatal(err)
	}
	if nres.BrokenConns == 0 {
		t.Fatal("no-TransitTable ablation broke nothing at 50 upd/min (suspicious)")
	}
}

func TestFig5Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r, err := Fig5(0.05, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "Migrate-PCC") {
		t.Fatalf("fig5:\n%s", r)
	}
}

func TestNetwideAndHybridRender(t *testing.T) {
	r, err := Netwide(testScale, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "bottleneck SRAM") {
		t.Fatalf("netwide:\n%s", r)
	}
	h, err := Hybrid(testScale, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(h.String(), "overflow") {
		t.Fatalf("hybrid:\n%s", h)
	}
}

func TestSec52Renders(t *testing.T) {
	r, err := Sec52(0.2, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	if !strings.Contains(s, "meter accuracy") || !strings.Contains(s, "insertion throughput") {
		t.Fatalf("sec52:\n%s", s)
	}
}

func TestDigestFPRateOrdering(t *testing.T) {
	fp16 := digestFPRate(16, testSeed)
	fp24 := digestFPRate(24, testSeed)
	if fp16 <= fp24 {
		t.Fatalf("fp16=%.6f should exceed fp24=%.6f", fp16, fp24)
	}
	if fp16 > 0.01 {
		t.Fatalf("fp16=%.5f implausibly high", fp16)
	}
}

func TestMeterAccuracyWithinOnePercent(t *testing.T) {
	if acc := meterAccuracy(); acc < -0.01 || acc > 0.01 {
		t.Fatalf("meter accuracy error = %.4f", acc)
	}
}

func TestInsertionThroughputNearConfigured(t *testing.T) {
	rate, delay := insertionThroughput(0.3)
	if rate < 150_000 || rate > 210_000 {
		t.Fatalf("insertion rate = %.0f, want ~200K (saturated)", rate)
	}
	if delay <= 0 {
		t.Fatal("no insert delay recorded")
	}
}
