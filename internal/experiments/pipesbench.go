package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/pipes"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// perPipePacketRate is the line rate of one forwarding pipeline in packets
// per second. A Tofino-class pipe forwards minimum-size packets at about
// 1 Bpps (roughly 1.6 Tb/s per pipe at 200 B average frames); the exact
// constant cancels out of the speedup ratio.
const perPipePacketRate = 1e9

// PipesBenchConfig is the measured outcome for one pipe count.
type PipesBenchConfig struct {
	Pipes       int      `json:"pipes"`
	Packets     uint64   `json:"packets"`
	PipePackets []uint64 `json:"pipe_packets"`
	Connections int      `json:"connections"`
	// ModeledPPS is the chip's aggregate forwarding rate under the ASIC
	// model: each pipe drains its shard at the per-pipe line rate, so the
	// chip finishes when its most-loaded pipe does.
	ModeledPPS float64 `json:"modeled_pps"`
	// WallclockPPS is established-traffic packets per wall-clock second of
	// this simulation run on the build host: connections are primed and
	// drained before the timer starts, so the figure is the steady-state
	// batch-path rate, not a mix of handshakes and table churn.
	WallclockPPS float64 `json:"wallclock_pps"`
	// FramesPPS is the same steady-state measurement over the wire-native
	// path: the identical connections pre-marshaled to raw bytes and
	// pre-parsed once, then swept through ProcessFramesInto. Parsing stays
	// outside the timed region (the tunnel parses each packet exactly once
	// on receive), so this is the frame currency's per-packet table cost.
	FramesPPS float64 `json:"frames_pps,omitempty"`
}

// PipesTrendPoint is one recorded run of the benchmark: the wallclock
// trajectory BENCH_pipes.json accumulates so regressions in the multi-pipe
// hot path show up as a ratio drop between consecutive points at the same
// scale.
type PipesTrendPoint struct {
	When            string  `json:"when"` // RFC 3339, build-host clock
	Scale           float64 `json:"scale"`
	OnePipePPS      float64 `json:"one_pipe_pps"`
	FourPipePPS     float64 `json:"four_pipe_pps"`
	WallclockSpeedX float64 `json:"wallclock_speedup"`
	// FourPipeFramesPPS and FramesVsStructX record the wire-native path at
	// 4 pipes: its absolute rate and its ratio to the struct path on the
	// same run (the frames gate's series). Zero on points recorded before
	// the frame path existed.
	FourPipeFramesPPS float64 `json:"four_pipe_frames_pps,omitempty"`
	FramesVsStructX   float64 `json:"frames_vs_struct,omitempty"`
}

// maxTrajectory bounds how many trend points the artifact keeps (oldest
// dropped first).
const maxTrajectory = 50

// PipesBenchResult is the machine-readable payload written to
// BENCH_pipes.json.
type PipesBenchResult struct {
	Scale           float64            `json:"scale"`
	Seed            int64              `json:"seed"`
	Note            string             `json:"note"`
	Configs         []PipesBenchConfig `json:"configs"`
	ModeledSpeedup  float64            `json:"modeled_speedup"`
	WallclockSpeedX float64            `json:"wallclock_speedup"`
	// FramesVsStructX is frames-mode wallclock pps over struct-mode
	// wallclock pps at 4 pipes for this run. The frame path skips the
	// per-batch tuple hashing the struct path pays (frames carry their lane
	// hash from the single parse), so this is expected to sit at or above
	// 1.0; GatePipes fails a run where it falls below 0.9.
	FramesVsStructX float64 `json:"frames_vs_struct,omitempty"`
	// Trajectory carries this run's point appended to the points recorded
	// by previous runs (read back from the existing artifact, if any).
	Trajectory []PipesTrendPoint `json:"trajectory,omitempty"`
}

const pipesBenchNote = "modeled_pps is the aggregate throughput under the ASIC model: each pipe " +
	"forwards its shard at the per-pipe line rate (1e9 pps), so the chip-level rate is " +
	"total_packets / max_pipe_packets x line rate. wallclock_pps measures this simulator's " +
	"steady-state batch path on the build host (established traffic only; priming and drains " +
	"untimed); frames_pps is the same measurement over the wire-native path (pre-parsed raw " +
	"frames through ProcessFramesInto). wallclock_speedup = 4-pipe pps / 1-pipe pps and " +
	"frames_vs_struct = 4-pipe frames pps / struct pps are the gated headlines; the " +
	"trajectory records both per run so CI can fail on a ratio regression."

// pipesMetrics is the METRICS_pipes.json payload: one telemetry snapshot
// per benchmarked pipe count, taken at end of run in virtual time.
type pipesMetrics struct {
	Note    string `json:"note"`
	Configs []struct {
		Pipes     int                `json:"pipes"`
		Telemetry telemetry.Snapshot `json:"telemetry"`
	} `json:"configs"`
}

const pipesMetricsNote = "end-of-run telemetry snapshots per pipe count; " +
	"histogram sums are in seconds of virtual time (e.g. the pending window " +
	"silkroad_insert_pending_window_seconds)."

// pipesBenchPackets pregenerates one packet per connection, outside the
// timed region: the measurement loops then only flip TCP flags and reuse
// the slice, so packet construction (address formatting in particular)
// never pollutes the wallclock figure.
func pipesBenchPackets(conns int) []*netproto.Packet {
	backing := make([]netproto.Packet, conns)
	pkts := make([]*netproto.Packet, conns)
	for i := range pkts {
		backing[i].Tuple = expTuple(i)
		pkts[i] = &backing[i]
	}
	return pkts
}

// pipesBenchFrames materializes the same connections as raw wire bytes
// parsed into frames, all outside the timed region — the tunnel parses
// each received packet exactly once, so the frames measurement charges
// only the table path, like the struct measurement does.
func pipesBenchFrames(pkts []*netproto.Packet) ([]netproto.Frame, error) {
	var arena, scratch []byte
	offs := make([]int, len(pkts)+1)
	for i, p := range pkts {
		raw, err := p.Marshal(scratch)
		if err != nil {
			return nil, fmt.Errorf("pipes bench: marshal conn %d: %w", i, err)
		}
		scratch = raw
		arena = append(arena, raw...)
		offs[i+1] = len(arena)
	}
	frames := make([]netproto.Frame, len(pkts))
	for i := range frames {
		if err := netproto.ParseFrame(arena[offs[i]:offs[i+1]:offs[i+1]], &frames[i]); err != nil {
			return nil, fmt.Errorf("pipes bench: reparse conn %d: %w", i, err)
		}
	}
	return frames, nil
}

// runPipesConfig drives one engine through the benchmark workload and
// returns its measured row, plus an end-of-run telemetry snapshot when
// CollectTelemetry is on (nil otherwise, keeping the hot path untraced).
//
// The workload has three phases: an untimed priming phase that opens every
// connection with SYN batches, an untimed drain that lets each pipe's CPU
// flush its learning filter and insertion queue, and the timed measurement
// phase — measurePasses ACK-only sweeps over the whole connection set
// through ProcessBatchInto with a reused results buffer. The timed region
// is therefore the steady-state batch path: hits in the ConnTable, no
// learns, no allocation.
func runPipesConfig(nPipes, conns, measurePasses, batchSize int, seed int64) (PipesBenchConfig, *telemetry.Snapshot, error) {
	tableTarget := 200_000
	if conns*2 > tableTarget {
		tableTarget = conns * 2 // keep every primed connection resident
	}
	dcfg := dataplane.DefaultConfig(tableTarget)
	dcfg.Seed = uint64(seed)
	pcfg := pipes.Config{
		Pipes:        nPipes,
		Dataplane:    dcfg,
		Controlplane: ctrlplane.DefaultConfig(),
	}
	var reg *telemetry.Registry
	if CollectTelemetry {
		reg = telemetry.NewRegistry()
		pcfg.Tracer = reg
	}
	eng, err := pipes.New(pcfg)
	if err != nil {
		return PipesBenchConfig{}, nil, err
	}
	defer eng.Close()
	if err := eng.AddVIP(0, expVIP(), expPool(8), 0); err != nil {
		return PipesBenchConfig{}, nil, err
	}

	pkts := pipesBenchPackets(conns)
	results := make([]dataplane.Result, batchSize)
	now := simtime.Time(0)

	// Prime: open every connection. A millisecond of virtual time per batch
	// keeps the learning filters flushing while the CPUs insert.
	for _, p := range pkts {
		p.TCPFlags = netproto.FlagSYN
	}
	for off := 0; off < conns; off += batchSize {
		end := off + batchSize
		if end > conns {
			end = conns
		}
		eng.ProcessBatchInto(now, pkts[off:end], results)
		now = now.Add(simtime.Duration(simtime.Millisecond))
		eng.Advance(now)
	}
	// Drain: let every pending insertion land so the measured passes run
	// against a fully populated ConnTable.
	now = now.Add(simtime.Duration(10 * simtime.Second))
	eng.Advance(now)

	// Measure: established traffic only. The work is repeated in three
	// independently timed repetitions and the fastest one is reported —
	// interference on a shared build host only ever slows a repetition
	// down, so the max-rate repetition is the closest to the code's true
	// cost and the most stable series for the gate to compare.
	for _, p := range pkts {
		p.TCPFlags = netproto.FlagACK
	}
	const measureReps = 3
	var bestPPS float64
	for rep := 0; rep < measureReps; rep++ {
		before := eng.Stats().Dataplane.Packets
		start := time.Now()
		for pass := 0; pass < measurePasses; pass++ {
			for off := 0; off < conns; off += batchSize {
				end := off + batchSize
				if end > conns {
					end = conns
				}
				eng.ProcessBatchInto(now, pkts[off:end], results)
				now = now.Add(simtime.Duration(simtime.Microsecond))
				eng.Advance(now)
			}
		}
		elapsed := time.Since(start).Seconds()
		if done := eng.Stats().Dataplane.Packets - before; elapsed > 0 && done > 0 {
			if pps := float64(done) / elapsed; pps > bestPPS {
				bestPPS = pps
			}
		}
	}

	// Frames mode: the identical established connections as pre-parsed wire
	// frames through ProcessFramesInto, timed the same way (best of three
	// repetitions). The connections are already resident, so both modes
	// measure pure ConnTable hits on the same switch state.
	frames, err := pipesBenchFrames(pkts)
	if err != nil {
		return PipesBenchConfig{}, nil, err
	}
	var bestFramesPPS float64
	for rep := 0; rep < measureReps; rep++ {
		before := eng.Stats().Dataplane.Packets
		start := time.Now()
		for pass := 0; pass < measurePasses; pass++ {
			for off := 0; off < conns; off += batchSize {
				end := off + batchSize
				if end > conns {
					end = conns
				}
				eng.ProcessFramesInto(now, frames[off:end], results)
				now = now.Add(simtime.Duration(simtime.Microsecond))
				eng.Advance(now)
			}
		}
		elapsed := time.Since(start).Seconds()
		if done := eng.Stats().Dataplane.Packets - before; elapsed > 0 && done > 0 {
			if pps := float64(done) / elapsed; pps > bestFramesPPS {
				bestFramesPPS = pps
			}
		}
	}
	st := eng.Stats()

	var maxPipe uint64
	for _, n := range st.PipePackets {
		if n > maxPipe {
			maxPipe = n
		}
	}
	row := PipesBenchConfig{
		Pipes:       nPipes,
		Packets:     st.Dataplane.Packets,
		PipePackets: st.PipePackets,
		Connections: st.Connections,
	}
	if maxPipe > 0 {
		row.ModeledPPS = float64(st.Dataplane.Packets) / float64(maxPipe) * perPipePacketRate
	}
	row.WallclockPPS = bestPPS
	row.FramesPPS = bestFramesPPS
	var snap *telemetry.Snapshot
	if reg != nil {
		s := reg.Snapshot(now)
		snap = &s
	}
	return row, snap, nil
}

// pipesArtifactName is where silkroad-bench writes the benchmark payload;
// PipesBench also reads it back (from the working directory) to extend the
// recorded wallclock trajectory.
const pipesArtifactName = "BENCH_pipes.json"

// priorTrajectory loads the trend points recorded by previous runs. A
// missing or unreadable artifact yields no history — the benchmark still
// runs, it just starts a fresh trajectory. Artifacts written before the
// trajectory existed contribute their headline ratio as a synthetic point,
// so the first trajectory-aware run still has a comparison baseline.
func priorTrajectory() []PipesTrendPoint {
	raw, err := os.ReadFile(pipesArtifactName)
	if err != nil {
		return nil
	}
	var prior PipesBenchResult
	if err := json.Unmarshal(raw, &prior); err != nil {
		return nil
	}
	if len(prior.Trajectory) == 0 && prior.WallclockSpeedX > 0 {
		pt := PipesTrendPoint{When: "(pre-trajectory artifact)", Scale: prior.Scale, WallclockSpeedX: prior.WallclockSpeedX}
		for _, c := range prior.Configs {
			switch c.Pipes {
			case 1:
				pt.OnePipePPS = c.WallclockPPS
			case 4:
				pt.FourPipePPS = c.WallclockPPS
			}
		}
		return []PipesTrendPoint{pt}
	}
	return prior.Trajectory
}

// GatePipes is the perf gate over the recorded trajectory: it fails when
// this run's 4-pipe vs 1-pipe wallclock speedup regressed by more than 30%
// against the most recent previous point at the same scale. Comparing the
// ratio rather than raw pps keeps the gate stable across build hosts of
// different speeds; comparing at equal scale keeps it honest across
// workload sizes. With no comparable history the gate passes.
//
// It also gates the wire-native path within the run itself: frames-mode
// wallclock pps at 4 pipes must stay at or above 90% of struct-mode pps
// (the two modes sweep the same resident connections, so the ratio is
// host-independent; the 10% band absorbs timer jitter).
func GatePipes(res PipesBenchResult) error {
	n := len(res.Trajectory)
	if n == 0 {
		return nil
	}
	cur := res.Trajectory[n-1]
	if cur.FramesVsStructX > 0 && cur.FramesVsStructX < 0.9 {
		return fmt.Errorf("pipes perf gate: frames-mode wallclock is %.2fx of struct mode at 4 pipes, floor is 0.90x",
			cur.FramesVsStructX)
	}
	for i := n - 2; i >= 0; i-- {
		prev := res.Trajectory[i]
		if prev.Scale != cur.Scale || prev.WallclockSpeedX <= 0 {
			continue
		}
		if cur.WallclockSpeedX < 0.7*prev.WallclockSpeedX {
			return fmt.Errorf("pipes perf gate: wallclock speedup %.2fx is down more than 30%% from %.2fx (recorded %s at scale %g)",
				cur.WallclockSpeedX, prev.WallclockSpeedX, prev.When, prev.Scale)
		}
		return nil
	}
	return nil
}

// PipesBench measures aggregate throughput of a single-pipe chip against a
// 4-pipe chip on the same workload. The report carries a BENCH_pipes.json
// artifact whose trajectory section accumulates the wallclock speedup of
// every run (the series GatePipes checks).
func PipesBench(scale float64, seed int64) (*Report, error) {
	conns := int(20_000 * scale)
	if conns < 1000 {
		conns = 1000
	}
	const batchSize = 512
	// Floor the timed work at ~200K packets regardless of scale: at small
	// scales three sweeps over a 1000-connection set finish in well under a
	// millisecond, and timer jitter alone can swing the speedup ratio past
	// the gate's 30% band. More passes over the same established set change
	// only measurement duration, never behaviour.
	measurePasses := 3
	if conns*measurePasses < 200_000 {
		measurePasses = (200_000 + conns - 1) / conns
	}

	result := PipesBenchResult{Scale: scale, Seed: seed, Note: pipesBenchNote}
	metrics := pipesMetrics{Note: pipesMetricsNote}
	for _, n := range []int{1, 4} {
		row, snap, err := runPipesConfig(n, conns, measurePasses, batchSize, seed)
		if err != nil {
			return nil, err
		}
		result.Configs = append(result.Configs, row)
		if snap != nil {
			metrics.Configs = append(metrics.Configs, struct {
				Pipes     int                `json:"pipes"`
				Telemetry telemetry.Snapshot `json:"telemetry"`
			}{Pipes: n, Telemetry: *snap})
		}
	}
	one, four := result.Configs[0], result.Configs[1]
	if one.ModeledPPS > 0 {
		result.ModeledSpeedup = four.ModeledPPS / one.ModeledPPS
	}
	if one.WallclockPPS > 0 {
		result.WallclockSpeedX = four.WallclockPPS / one.WallclockPPS
	}
	if four.WallclockPPS > 0 {
		result.FramesVsStructX = four.FramesPPS / four.WallclockPPS
	}
	result.Trajectory = append(priorTrajectory(), PipesTrendPoint{
		When:              time.Now().UTC().Format(time.RFC3339),
		Scale:             scale,
		OnePipePPS:        one.WallclockPPS,
		FourPipePPS:       four.WallclockPPS,
		WallclockSpeedX:   result.WallclockSpeedX,
		FourPipeFramesPPS: four.FramesPPS,
		FramesVsStructX:   result.FramesVsStructX,
	})
	if len(result.Trajectory) > maxTrajectory {
		result.Trajectory = result.Trajectory[len(result.Trajectory)-maxTrajectory:]
	}

	rep := &Report{ID: "pipes", Title: "Multi-pipe aggregate throughput (1 vs 4 pipes)"}
	rep.Printf("%-7s %12s %14s %16s %14s  %s", "pipes", "packets", "modeled pps", "wallclock pps", "frames pps", "per-pipe packets")
	for _, c := range result.Configs {
		rep.Printf("%-7d %12d %14.3g %16.3g %14.3g  %v", c.Pipes, c.Packets, c.ModeledPPS, c.WallclockPPS, c.FramesPPS, c.PipePackets)
	}
	rep.Printf("modeled speedup  %.2fx (line-rate model; shard balance bound)", result.ModeledSpeedup)
	rep.Printf("wallclock speedup %.2fx (steady-state batch path on this host — gated)", result.WallclockSpeedX)
	rep.Printf("frames vs struct  %.2fx at 4 pipes (wire-native path — gated, floor 0.90x)", result.FramesVsStructX)
	for _, pt := range result.Trajectory {
		rep.Printf("trajectory %-28s scale %-6g 1-pipe %10.3g  4-pipe %10.3g  speedup %.2fx  frames %.2fx",
			pt.When, pt.Scale, pt.OnePipePPS, pt.FourPipePPS, pt.WallclockSpeedX, pt.FramesVsStructX)
	}

	art, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("pipes bench: %w", err)
	}
	rep.ArtifactName = pipesArtifactName
	rep.Artifact = append(art, '\n')
	if len(metrics.Configs) > 0 {
		m, err := json.MarshalIndent(metrics, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("pipes bench metrics: %w", err)
		}
		rep.MetricsName = "METRICS_pipes.json"
		rep.Metrics = append(m, '\n')
	}
	return rep, nil
}
