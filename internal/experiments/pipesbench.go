package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/pipes"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// perPipePacketRate is the line rate of one forwarding pipeline in packets
// per second. A Tofino-class pipe forwards minimum-size packets at about
// 1 Bpps (roughly 1.6 Tb/s per pipe at 200 B average frames); the exact
// constant cancels out of the speedup ratio.
const perPipePacketRate = 1e9

// PipesBenchConfig is the measured outcome for one pipe count.
type PipesBenchConfig struct {
	Pipes       int      `json:"pipes"`
	Packets     uint64   `json:"packets"`
	PipePackets []uint64 `json:"pipe_packets"`
	Connections int      `json:"connections"`
	// ModeledPPS is the chip's aggregate forwarding rate under the ASIC
	// model: each pipe drains its shard at the per-pipe line rate, so the
	// chip finishes when its most-loaded pipe does.
	ModeledPPS float64 `json:"modeled_pps"`
	// WallclockPPS is packets per wall-clock second of this simulation run
	// on the build host. It measures the simulator, not the ASIC, and
	// depends on host core count.
	WallclockPPS float64 `json:"wallclock_pps"`
}

// PipesBenchResult is the machine-readable payload written to
// BENCH_pipes.json.
type PipesBenchResult struct {
	Scale           float64            `json:"scale"`
	Seed            int64              `json:"seed"`
	Note            string             `json:"note"`
	Configs         []PipesBenchConfig `json:"configs"`
	ModeledSpeedup  float64            `json:"modeled_speedup"`
	WallclockSpeedX float64            `json:"wallclock_speedup"`
}

const pipesBenchNote = "modeled_pps is the headline aggregate throughput: each pipe " +
	"forwards its shard at the per-pipe line rate (1e9 pps), so the chip-level rate is " +
	"total_packets / max_pipe_packets x line rate. wallclock_pps measures this " +
	"simulator on the build host and scales with host cores, not with modeled pipes."

// pipesMetrics is the METRICS_pipes.json payload: one telemetry snapshot
// per benchmarked pipe count, taken at end of run in virtual time.
type pipesMetrics struct {
	Note    string `json:"note"`
	Configs []struct {
		Pipes     int                `json:"pipes"`
		Telemetry telemetry.Snapshot `json:"telemetry"`
	} `json:"configs"`
}

const pipesMetricsNote = "end-of-run telemetry snapshots per pipe count; " +
	"histogram sums are in seconds of virtual time (e.g. the pending window " +
	"silkroad_insert_pending_window_seconds)."

// runPipesConfig drives one engine through the benchmark workload and
// returns its measured row, plus an end-of-run telemetry snapshot when
// CollectTelemetry is on (nil otherwise, keeping the hot path untraced).
func runPipesConfig(nPipes, conns, pktsPerConn, batchSize int, seed int64) (PipesBenchConfig, *telemetry.Snapshot, error) {
	dcfg := dataplane.DefaultConfig(200_000)
	dcfg.Seed = uint64(seed)
	pcfg := pipes.Config{
		Pipes:        nPipes,
		Dataplane:    dcfg,
		Controlplane: ctrlplane.DefaultConfig(),
	}
	var reg *telemetry.Registry
	if CollectTelemetry {
		reg = telemetry.NewRegistry()
		pcfg.Tracer = reg
	}
	eng, err := pipes.New(pcfg)
	if err != nil {
		return PipesBenchConfig{}, nil, err
	}
	if err := eng.AddVIP(0, expVIP(), expPool(8), 0); err != nil {
		return PipesBenchConfig{}, nil, err
	}

	// Interleave connections so each batch mixes SYNs and established
	// traffic across the whole tuple space, like a ToR sees.
	pktsTotal := conns * pktsPerConn
	batch := make([]*netproto.Packet, 0, batchSize)
	now := simtime.Time(0)
	start := time.Now()
	for p := 0; p < pktsTotal; p += batchSize {
		batch = batch[:0]
		for i := p; i < p+batchSize && i < pktsTotal; i++ {
			conn := i % conns
			flags := netproto.FlagACK
			if i < conns { // first pass over the tuple space: handshakes
				flags = netproto.FlagSYN
			}
			batch = append(batch, &netproto.Packet{Tuple: expTuple(conn), TCPFlags: flags})
		}
		eng.ProcessBatch(now, batch)
		// ~1 us of virtual time per batch keeps the per-pipe CPUs draining
		// their learning filters while traffic flows.
		now = now.Add(simtime.Duration(simtime.Microsecond))
		eng.Advance(now)
	}
	elapsed := time.Since(start).Seconds()
	// Let every pipe's CPU drain its learning filter and insertion queue so
	// the connection count reflects the workload, not the flush timeout.
	end := now.Add(simtime.Duration(simtime.Second))
	eng.Advance(end)
	st := eng.Stats()

	var maxPipe uint64
	for _, n := range st.PipePackets {
		if n > maxPipe {
			maxPipe = n
		}
	}
	row := PipesBenchConfig{
		Pipes:       nPipes,
		Packets:     st.Dataplane.Packets,
		PipePackets: st.PipePackets,
		Connections: st.Connections,
	}
	if maxPipe > 0 {
		row.ModeledPPS = float64(st.Dataplane.Packets) / float64(maxPipe) * perPipePacketRate
	}
	if elapsed > 0 {
		row.WallclockPPS = float64(st.Dataplane.Packets) / elapsed
	}
	var snap *telemetry.Snapshot
	if reg != nil {
		s := reg.Snapshot(end)
		snap = &s
	}
	return row, snap, nil
}

// PipesBench measures aggregate throughput of a single-pipe chip against a
// 4-pipe chip on the same workload. The report carries a BENCH_pipes.json
// artifact.
func PipesBench(scale float64, seed int64) (*Report, error) {
	conns := int(20_000 * scale)
	if conns < 1000 {
		conns = 1000
	}
	const pktsPerConn = 5
	const batchSize = 512

	result := PipesBenchResult{Scale: scale, Seed: seed, Note: pipesBenchNote}
	metrics := pipesMetrics{Note: pipesMetricsNote}
	for _, n := range []int{1, 4} {
		row, snap, err := runPipesConfig(n, conns, pktsPerConn, batchSize, seed)
		if err != nil {
			return nil, err
		}
		result.Configs = append(result.Configs, row)
		if snap != nil {
			metrics.Configs = append(metrics.Configs, struct {
				Pipes     int                `json:"pipes"`
				Telemetry telemetry.Snapshot `json:"telemetry"`
			}{Pipes: n, Telemetry: *snap})
		}
	}
	one, four := result.Configs[0], result.Configs[1]
	if one.ModeledPPS > 0 {
		result.ModeledSpeedup = four.ModeledPPS / one.ModeledPPS
	}
	if one.WallclockPPS > 0 {
		result.WallclockSpeedX = four.WallclockPPS / one.WallclockPPS
	}

	rep := &Report{ID: "pipes", Title: "Multi-pipe aggregate throughput (1 vs 4 pipes)"}
	rep.Printf("%-7s %12s %14s %16s  %s", "pipes", "packets", "modeled pps", "wallclock pps", "per-pipe packets")
	for _, c := range result.Configs {
		rep.Printf("%-7d %12d %14.3g %16.3g  %v", c.Pipes, c.Packets, c.ModeledPPS, c.WallclockPPS, c.PipePackets)
	}
	rep.Printf("modeled speedup  %.2fx (line-rate model; shard balance bound)", result.ModeledSpeedup)
	rep.Printf("wallclock speedup %.2fx (simulator on this host — informational)", result.WallclockSpeedX)

	art, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("pipes bench: %w", err)
	}
	rep.ArtifactName = "BENCH_pipes.json"
	rep.Artifact = append(art, '\n')
	if len(metrics.Configs) > 0 {
		m, err := json.MarshalIndent(metrics, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("pipes bench metrics: %w", err)
		}
		rep.MetricsName = "METRICS_pipes.json"
		rep.Metrics = append(m, '\n')
	}
	return rep, nil
}
