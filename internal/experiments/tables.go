package experiments

import (
	"repro/internal/asic"
	"repro/internal/cuckoo"
	"repro/internal/dataplane"
	"repro/internal/simtime"
)

// Table1 renders the ASIC generation catalogue (Table 1 of the paper):
// SRAM grew about five times across four years, reaching the 50-100 MB
// that makes switch-resident connection state feasible.
func Table1() *Report {
	r := &Report{ID: "table1", Title: "Trend of SRAM size and switching capacity in ASICs"}
	r.Printf("%-40s %-6s %-10s %s", "ASIC generation", "Year", "Tbps", "SRAM (MB)")
	for _, g := range asic.Generations {
		r.Printf("%-40s %-6d %-10.1f %d", g.Name, g.Year, g.CapacityTbps, g.SRAMMB)
	}
	first := asic.Generations[0]
	last := asic.Generations[len(asic.Generations)-1]
	r.Printf("growth %d->%d: SRAM x%.1f, capacity x%.1f",
		first.Year, last.Year,
		float64(last.SRAMMB)/float64(first.SRAMMB),
		last.CapacityTbps/first.CapacityTbps)
	return r
}

// Table2Data is the structured result of the Table 2 experiment.
type Table2Data struct {
	Usage asic.RelativeUsage
}

// table2Build allocates a 1M-connection SilkRoad on a chip and returns the
// additional resource usage relative to the baseline switch.p4.
func table2Build() (*dataplane.Switch, Table2Data, error) {
	cfg := dataplane.DefaultConfig(1_000_000)
	sw, err := dataplane.New(cfg)
	if err != nil {
		return nil, Table2Data{}, err
	}
	used := sw.Chip().Used()
	return sw, Table2Data{Usage: used.RelativeTo(asic.BaselineSwitchP4)}, nil
}

// Table2 regenerates Table 2: the hardware resources SilkRoad adds on top
// of the baseline switch.p4 when provisioned for 1M connections with
// 16-bit digests and 6-bit versions.
func Table2() (*Report, error) {
	sw, data, err := table2Build()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "table2", Title: "Additional H/W resources used by SilkRoad (1M connections), normalized by baseline switch.p4"}
	r.Printf("%s", data.Usage.String())
	r.Printf("paper reports: crossbar 37.53%%, SRAM 27.92%%, TCAM 0%%, VLIW 18.89%%, hash 34.17%%, sALU 44.44%%, PHV 0.98%%")
	mem := sw.Memory()
	r.Printf("ConnTable footprint: %.1f MB for %d-entry capacity (28-bit packed entries)",
		float64(mem.ConnTableBytes)/(1<<20), sw.ConnTable().Capacity())
	// Feasibility check the paper makes in §5.2: 10M connections fit.
	big := dataplane.DefaultConfig(10_000_000)
	if sw10, err := dataplane.New(big); err == nil {
		r.Printf("10M-connection ConnTable: %.1f MB (fits 50-100 MB on-chip SRAM)",
			float64(sw10.Memory().ConnTableBytes)/(1<<20))
	}
	return r, nil
}

// Sec52 reproduces the §5.2 prototype microbenchmarks at simulation scale:
// meter marking accuracy, the control plane's sustained insertion rate,
// digest false-positive rates at 16 vs 24 bits, and the §6.1 power/cost
// comparison.
func Sec52(scale float64, seed int64) (*Report, error) {
	r := &Report{ID: "sec52", Title: "Prototype performance and overhead"}

	// Meter accuracy: offer 2x the committed rate; green share must be
	// within 1% of CIR (the paper: <1% average error).
	acc := meterAccuracy()
	r.Printf("meter accuracy at 2x offered load: committed-rate error = %+.3f%% (paper: <1%%)", acc*100)

	// Insertion pipeline: the modeled CPU sustains its configured 200K/s.
	rate, delay := insertionThroughput(scale)
	r.Printf("ConnTable insertion throughput: %.0f entries/s (configured 200K/s), mean arrival-to-install %.2f ms",
		rate, float64(delay)/float64(simtime.Millisecond))

	// Digest false positives: probability a foreign connection falsely
	// hits, at the paper's two digest widths.
	fp16 := digestFPRate(16, seed)
	fp24 := digestFPRate(24, seed)
	r.Printf("digest false-positive rate: %.5f%% @16-bit, %.6f%% @24-bit (paper: 0.01%% and 0.00004%%)",
		fp16*100, fp24*100)

	// §6.1 cost model: SilkRoad at 6.4 Tbps / ~10 Gpps vs SLBs at 12 Mpps.
	const (
		slbPPS, slbWatt, slbUSD = 12e6, 200.0, 3000.0
		srPPS, srWatt, srUSD    = 10e9, 300.0, 10000.0
	)
	slbs := srPPS / slbPPS
	r.Printf("equal-throughput cost: 1 SilkRoad (~10 Gpps) = %.0f SLBs; power 1/%.0f, capital 1/%.0f",
		slbs, slbs*slbWatt/srWatt, slbs*slbUSD/srUSD)
	return r, nil
}

// meterAccuracy returns the relative error of the metered green rate
// against the committed rate under 2x offered load.
func meterAccuracy() float64 {
	cir := 625e6 // 5 Gbps in B/s
	m := newMeter(cir)
	now := simtime.Time(0)
	green, offered := 0.0, 0.0
	const pkt = 1250.0
	// 3 s of offered load so the one-off burst credit (CBS) amortizes.
	for i := 0; i < 3_000_000; i++ {
		if m.MarkGreen(now, int(pkt)) {
			green += pkt
		}
		offered += pkt
		now = now.Add(simtime.Microsecond) // 10 Gbps offered
	}
	rate := green / now.Sub(0).Seconds()
	return (rate - cir) / cir
}

// digestFPRate measures the probability that a never-inserted connection
// falsely hits a ConnTable populated to the paper's density.
func digestFPRate(bits int, seed int64) float64 {
	cfg := cuckoo.Config{
		Stages: 4, BucketsPerStage: 4096, Ways: 4,
		DigestBits: bits, ValueBits: 6, OverheadBits: 6, Seed: uint64(seed) + 7,
	}
	tab := cuckoo.New(cfg)
	key := func(i uint64) uint64 { return i*0x9e3779b97f4a7c15 + 1 }
	dig := func(k uint64) uint32 {
		return uint32(k*0x2545f4914f6cdd1d>>(64-uint(bits))) & (1<<uint(bits) - 1)
	}
	n := tab.Capacity() * 8 / 10
	for i := 0; i < n; i++ {
		k := key(uint64(i))
		tab.Insert(k, dig(k), uint32(i%64))
	}
	probes := 2_000_00
	hits := 0
	for i := 0; i < probes; i++ {
		k := key(uint64(n + i))
		if _, _, ok := tab.Lookup(k, dig(k)); ok {
			hits++
		}
	}
	return float64(hits) / float64(probes)
}
