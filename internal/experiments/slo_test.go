package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSLOSoak runs the full three-phase soak: the SLO() wrapper itself
// errors on any invariant violation or determinism break, so the test
// only needs to check the artifact landed.
func TestSLOSoak(t *testing.T) {
	rep, err := SLO(testScale, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ArtifactName != "SLO_soak.json" || len(rep.Artifact) == 0 {
		t.Fatalf("artifact = %q (%d bytes), want SLO_soak.json", rep.ArtifactName, len(rep.Artifact))
	}
	out := rep.String()
	for _, want := range []string{"fire/resolve cycle", "exhaustion predicted", "rollout held"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}

// TestAlertTimelineGolden pins the phase-A alert transition timeline —
// the exact virtual times, state edges and journal cursors the seeded
// brownout produces — to a golden file. Any change to fault timing,
// telemetry accounting, SLI derivation or the alert state machine shows
// up as a byte-level diff here.
//
// Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestAlertTimelineGolden -update
func TestAlertTimelineGolden(t *testing.T) {
	rep, err := RunSLOSoak(testScale, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	got := SLOTimelineString(rep)
	if !strings.Contains(got, "-> firing") || !strings.Contains(got, "-> resolved") {
		t.Fatalf("timeline lacks a full fire/resolve cycle:\n%s", got)
	}
	path := filepath.Join("testdata", "slo_timeline.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("alert timeline diverged from golden file:\n%s", firstDiff(string(want), got))
	}
}
