package experiments

// SLO soak: the telemetry -> SLO -> alerting -> fleet-gate loop end to
// end, in three seeded phases.
//
// Phase A (burn): a two-pipe switch under steady connection churn takes a
// CPU brownout plus learning-channel digest loss from a fault plan. The
// insert path backs up, the burn-rate rules trip Pending -> Firing, the
// fault clears, and the alerts walk back to Resolved — each transition
// stamped with a flight-recorder journal cursor. The full alert timeline
// is the golden-tested artifact.
//
// Phase B (forecast): a small-table switch fills at a steady flow rate;
// the occupancy forecaster must predict time-to-exhaustion while the
// table still has headroom, before occupancy actually pins at capacity.
//
// Phase C (fleet gate): a three-member cluster stages a rolling update
// while one member's page alert fires; the rollout must hold at the
// frontier until the alert resolves, then converge.
//
// Everything runs on manual virtual clocks; the same (scale, seed) must
// reproduce SLO_soak.json byte for byte.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/netip"
	"strings"

	silkroad "repro"
	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

const (
	sloTick      = simtime.Millisecond // workload step
	sloInterval  = 10 * simtime.Millisecond
	sloBurnStart = 100 // tick the faults land on
	sloBurnEnd   = 250 // tick the brownout lifts
	sloBurnTicks = 500 // phase A length
)

// SLOTimelineEntry is one alert transition in the soak's golden timeline.
type SLOTimelineEntry struct {
	AtMS   int64  `json:"at_ms"`
	Rule   string `json:"rule"`
	From   string `json:"from"`
	To     string `json:"to"`
	Cursor uint64 `json:"cursor"`
}

// SLOSoakReport is the machine-readable outcome written to SLO_soak.json.
type SLOSoakReport struct {
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`

	// Phase A: burn-rate alerting under faults.
	BurnEvals       uint64             `json:"burn_evals"`
	BurnFlows       int                `json:"burn_flows"`
	BurnFireCycles  int                `json:"burn_fire_resolve_cycles"`
	BurnMaxPending  float64            `json:"burn_max_pending_p99_seconds"`
	BurnMaxPressure float64            `json:"burn_max_insert_pressure"`
	Timeline        []SLOTimelineEntry `json:"timeline"`

	// Phase B: occupancy forecasting.
	ForecastCapacity     int64   `json:"forecast_capacity"`
	ForecastPredictedAt  float64 `json:"forecast_predicted_at_fill_frac"`
	ForecastTTEAtPredict float64 `json:"forecast_tte_seconds_at_predict"`
	ForecastLeadEvals    int     `json:"forecast_lead_evals"` // evals between prediction and actual fill
	ForecastAlertFired   bool    `json:"forecast_alert_fired"`

	// Phase C: the fleet rollout gate.
	GatePausedSteps   int    `json:"gate_paused_steps"`
	GateConverged     bool   `json:"gate_converged"`
	GateFinalGen      uint64 `json:"gate_final_generation"`
	GateResumedCycles int    `json:"gate_member_fire_cycles"`

	Violations   []string `json:"invariant_violations"`
	InvariantsOK bool     `json:"invariants_ok"`
}

// sloBurnRules is phase A/C's alert policy, tuned so the seeded brownout
// deterministically walks both rules through a full fire/resolve cycle.
func sloBurnRules() []silkroad.SLORule {
	return []silkroad.SLORule{
		{
			Name: "insert-pressure", Severity: silkroad.SeverityPage,
			Threshold: 50, FireAfter: 2, ClearAfter: 3,
			Value: func(s silkroad.SLOSignals) float64 { return s.InsertPressure },
		},
		{
			Name: "pending-p99", Severity: silkroad.SeverityTicket,
			Threshold: 0.002, FireAfter: 2, ClearAfter: 3,
			Value: func(s silkroad.SLOSignals) float64 { return s.PendingP99 },
		},
	}
}

// sloSyn builds a distinct-flow SYN aimed at the soak VIP.
func sloSyn(i int) *netproto.Packet {
	return &netproto.Packet{
		Tuple: netproto.FiveTuple{
			Src:     netip.AddrFrom4([4]byte{10, 99, byte(i >> 8), byte(i)}),
			Dst:     netip.MustParseAddr("20.0.0.1"),
			SrcPort: uint16(1024 + i%60000),
			DstPort: 80,
			Proto:   netproto.ProtoTCP,
		},
		TCPFlags: netproto.FlagSYN,
	}
}

func sloVIP() silkroad.VIP {
	return silkroad.NewVIP("20.0.0.1", 80, netproto.ProtoTCP)
}

// runSLOBurn is phase A.
func runSLOBurn(rep *SLOSoakReport, seed int64) error {
	cfg := silkroad.Defaults(200000)
	cfg.Pipes = 2
	cfg.Clock = silkroad.NewManualClock(0)
	cfg.Telemetry = silkroad.NewTelemetry()
	cfg.FlightRecorder = silkroad.NewFlightRecorder(silkroad.FlightRecorderConfig{})
	cfg.Controlplane.MaxInsertQueue = 64
	cfg.SLO = &silkroad.SLOConfig{
		Interval:      sloInterval,
		WindowSamples: 32,
		FastWindow:    2,
		SlowWindow:    5,
		Rules:         sloBurnRules(),
	}
	cfg.Faults = &silkroad.FaultPlan{
		Seed: uint64(seed),
		Events: []silkroad.FaultEvent{
			{At: simtime.Time(sloBurnStart * sloTick), Kind: silkroad.FaultCPUSlow,
				Pipe: -1, Scale: 0.02, Duration: simtime.Duration(sloBurnEnd-sloBurnStart) * sloTick},
			{At: simtime.Time(sloBurnStart * sloTick), Kind: silkroad.FaultDigestLoss,
				Pipe: -1, Scale: 0.3, Duration: simtime.Duration(sloBurnEnd-sloBurnStart) * sloTick},
		},
	}
	sw, err := silkroad.NewSwitch(cfg)
	if err != nil {
		return err
	}
	defer sw.Close()
	if err := sw.AddVIP(0, sloVIP(), silkroad.Pool("10.0.0.1:20", "10.0.0.2:20")); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	flow := 0
	var now simtime.Time
	for tick := 0; tick < sloBurnTicks; tick++ {
		// 30 new flows per millisecond, with a seeded jitter of repeat
		// packets from recent flows to keep the pipes busy.
		for i := 0; i < 30; i++ {
			sw.Process(now, sloSyn(flow))
			flow++
		}
		for i := 0; i < 10 && flow > 100; i++ {
			old := sloSyn(flow - 1 - rng.Intn(100))
			old.TCPFlags = netproto.FlagACK
			sw.Process(now, old)
		}
		now = now.Add(sloTick)
		sw.AdvanceTo(now)

		repNow := sw.SLO().Report()
		if repNow.Fast.PendingP99 > rep.BurnMaxPending {
			rep.BurnMaxPending = repNow.Fast.PendingP99
		}
		if repNow.Fast.InsertPressure > rep.BurnMaxPressure {
			rep.BurnMaxPressure = repNow.Fast.InsertPressure
		}
	}
	rep.BurnFlows = flow
	rep.BurnEvals = sw.SLO().Report().Evals

	for _, tr := range sw.SLO().History() {
		rep.Timeline = append(rep.Timeline, SLOTimelineEntry{
			AtMS: int64(tr.Time) / int64(simtime.Millisecond),
			Rule: tr.Rule, From: tr.From, To: tr.To, Cursor: tr.Cursor,
		})
		if tr.To == "resolved" {
			rep.BurnFireCycles++
		}
	}
	return nil
}

// runSLOForecast is phase B.
func runSLOForecast(rep *SLOSoakReport) error {
	cfg := silkroad.Defaults(2000)
	cfg.Clock = silkroad.NewManualClock(0)
	cfg.Telemetry = silkroad.NewTelemetry()
	cfg.SLO = &silkroad.SLOConfig{
		Interval:       sloInterval,
		WindowSamples:  32,
		FastWindow:     2,
		SlowWindow:     5,
		ForecastWindow: 8,
	}
	sw, err := silkroad.NewSwitch(cfg)
	if err != nil {
		return err
	}
	defer sw.Close()
	if err := sw.AddVIP(0, sloVIP(), silkroad.Pool("10.0.0.1:20")); err != nil {
		return err
	}

	flow := 0
	var now simtime.Time
	predictEval := -1
	fullEval := -1
	for tick := 0; tick < 1500; tick++ {
		for i := 0; i < 5; i++ {
			sw.Process(now, sloSyn(flow))
			flow++
		}
		now = now.Add(sloTick)
		sw.AdvanceTo(now)

		r := sw.SLO().Report()
		if len(r.Pipes) == 0 {
			continue
		}
		p := r.Pipes[0]
		if rep.ForecastCapacity == 0 && p.Capacity > 0 {
			rep.ForecastCapacity = p.Capacity
		}
		if predictEval < 0 && p.TTESeconds >= 0 {
			predictEval = int(r.Evals)
			rep.ForecastPredictedAt = p.FillFrac
			rep.ForecastTTEAtPredict = p.TTESeconds
		}
		if fullEval < 0 && p.FillFrac >= 0.99 {
			fullEval = int(r.Evals)
			break
		}
	}
	if predictEval >= 0 && fullEval > predictEval {
		rep.ForecastLeadEvals = fullEval - predictEval
	}
	for _, a := range sw.SLO().Alerts() {
		if a.Rule == "conntable-exhaustion" && (a.State == "firing" || a.State == "resolved") {
			rep.ForecastAlertFired = true
		}
	}
	return nil
}

// runSLOGate is phase C.
func runSLOGate(rep *SLOSoakReport) error {
	cfg := silkroad.Defaults(10000)
	cfg.Clock = silkroad.NewManualClock(0)
	cfg.Telemetry = silkroad.NewTelemetry()
	cfg.SLO = &silkroad.SLOConfig{
		Interval:      sloInterval,
		WindowSamples: 16,
		FastWindow:    1,
		SlowWindow:    2,
		Rules: []silkroad.SLORule{{
			Name: "insert-pressure", Severity: silkroad.SeverityPage,
			Threshold: 100, FireAfter: 1, ClearAfter: 1,
			Value: func(s silkroad.SLOSignals) float64 { return s.InsertPressure },
		}},
	}
	c, err := silkroad.NewCluster(silkroad.ClusterConfig{Switches: 3, Switch: cfg})
	if err != nil {
		return err
	}
	defer c.Close()

	spec := func(pool ...string) *silkroad.ClusterSpec {
		return &silkroad.ClusterSpec{Version: silkroad.SpecVersion, VIPs: []silkroad.VIPSpec{
			{VIP: "20.0.0.1:80", Pool: pool},
		}}
	}
	var now simtime.Time
	if _, err := c.Apply(now, spec("10.0.0.1:20")); err != nil {
		return err
	}
	converge := func() bool {
		for i := 0; i < 200; i++ {
			now = now.Add(sloTick)
			c.AdvanceTo(now)
			if c.Reconcile(now) && c.Converged() {
				return true
			}
		}
		return false
	}
	if !converge() {
		return fmt.Errorf("slo gate: generation 1 never converged")
	}

	// Burn member 2 until its page fires, stage generation 2 mid-burn,
	// count the held steps, then let the alert resolve and converge.
	burn := func(ticks int) {
		reg := c.Switch(2).Telemetry()
		for t := 0; t < ticks; t++ {
			for i := 0; i < 50; i++ {
				reg.OnInsert(telemetry.InsertEvent{Now: now, Outcome: telemetry.InsertRetry})
			}
			now = now.Add(sloInterval)
			c.AdvanceTo(now)
		}
	}
	burn(4)
	if !c.Switch(2).SLO().PageFiring() {
		return fmt.Errorf("slo gate: member 2 page never fired")
	}
	if _, err := c.Apply(now, spec("10.0.0.1:20", "10.0.0.2:20")); err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		now = now.Add(sloTick)
		c.AdvanceTo(now)
		c.Reconcile(now)
		if c.RolloutPaused() {
			rep.GatePausedSteps++
		}
	}
	for t := 0; t < 6; t++ { // quiet interval: the alert resolves
		now = now.Add(sloInterval)
		c.AdvanceTo(now)
	}
	rep.GateConverged = converge()
	rep.GateFinalGen = c.Generation()
	for _, tr := range c.Switch(2).SLO().History() {
		if tr.To == "resolved" {
			rep.GateResumedCycles++
		}
	}
	return nil
}

// sloInvariants checks the soak's promises in a fixed order.
func sloInvariants(r *SLOSoakReport) []string {
	var v []string
	if r.BurnFireCycles < 1 {
		v = append(v, fmt.Sprintf("phase A: no firing->resolved cycle (timeline %d entries)", len(r.Timeline)))
	}
	firingCursor := false
	for _, tr := range r.Timeline {
		if tr.To == "firing" && tr.Cursor > 0 {
			firingCursor = true
		}
	}
	if !firingCursor {
		v = append(v, "phase A: no firing transition carries a journal cursor exemplar")
	}
	if r.ForecastPredictedAt <= 0 || r.ForecastPredictedAt >= 1 {
		v = append(v, fmt.Sprintf("phase B: exhaustion predicted at fill fraction %.3f, want inside (0,1)", r.ForecastPredictedAt))
	}
	if r.ForecastLeadEvals < 1 {
		v = append(v, "phase B: forecaster gave no lead time before the table filled")
	}
	if !r.ForecastAlertFired {
		v = append(v, "phase B: conntable-exhaustion alert never fired")
	}
	if r.GatePausedSteps < 1 {
		v = append(v, "phase C: rollout never held while the page fired")
	}
	if !r.GateConverged || r.GateFinalGen != 2 {
		v = append(v, fmt.Sprintf("phase C: rollout did not converge at generation 2 (converged=%v gen=%d)", r.GateConverged, r.GateFinalGen))
	}
	return v
}

// RunSLOSoak drives the three phases once.
func RunSLOSoak(scale float64, seed int64) (*SLOSoakReport, error) {
	rep := &SLOSoakReport{Scale: scale, Seed: seed}
	if err := runSLOBurn(rep, seed); err != nil {
		return nil, fmt.Errorf("slo soak: %w", err)
	}
	if err := runSLOForecast(rep); err != nil {
		return nil, fmt.Errorf("slo soak: %w", err)
	}
	if err := runSLOGate(rep); err != nil {
		return nil, fmt.Errorf("slo soak: %w", err)
	}
	rep.Violations = sloInvariants(rep)
	rep.InvariantsOK = len(rep.Violations) == 0
	return rep, nil
}

// SLOTimelineString renders the phase-A alert timeline, one transition
// per line — the golden-file format.
func SLOTimelineString(rep *SLOSoakReport) string {
	var b strings.Builder
	for _, tr := range rep.Timeline {
		fmt.Fprintf(&b, "t=%-6dms %-18s %-10s -> %-10s cursor=%d\n",
			tr.AtMS, tr.Rule, tr.From, tr.To, tr.Cursor)
	}
	return b.String()
}

// SLO is the registered experiment: two runs with the same seed must
// produce byte-identical reports; the first becomes SLO_soak.json.
func SLO(scale float64, seed int64) (*Report, error) {
	r1, err := RunSLOSoak(scale, seed)
	if err != nil {
		return nil, err
	}
	b1, err := json.MarshalIndent(r1, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("slo: %w", err)
	}
	r2, err := RunSLOSoak(scale, seed)
	if err != nil {
		return nil, err
	}
	b2, err := json.Marshal(r2)
	if err != nil {
		return nil, fmt.Errorf("slo: %w", err)
	}
	b1c, _ := json.Marshal(r1)
	deterministic := string(b1c) == string(b2)

	rep := &Report{ID: "slo", Title: "SLO soak: burn-rate alerting, occupancy forecasting, fleet rollout gate"}
	rep.Printf("phase A: %d flows, %d evals, %d fire/resolve cycle(s), %d timeline transition(s)",
		r1.BurnFlows, r1.BurnEvals, r1.BurnFireCycles, len(r1.Timeline))
	rep.Printf("phase A: peak pending p99 %.3fms, peak insert pressure %.0f/s",
		1e3*r1.BurnMaxPending, r1.BurnMaxPressure)
	rep.Printf("phase B: capacity %d, exhaustion predicted at %.0f%% fill (tte %.1fs), %d eval(s) of lead, alert fired %v",
		r1.ForecastCapacity, 100*r1.ForecastPredictedAt, r1.ForecastTTEAtPredict,
		r1.ForecastLeadEvals, r1.ForecastAlertFired)
	rep.Printf("phase C: rollout held %d step(s) under a firing page, converged=%v at generation %d",
		r1.GatePausedSteps, r1.GateConverged, r1.GateFinalGen)
	if r1.InvariantsOK {
		rep.Printf("invariants: all hold")
	} else {
		for _, s := range r1.Violations {
			rep.Printf("INVARIANT VIOLATED: %s", s)
		}
	}
	if deterministic {
		rep.Printf("determinism: second run with seed %d reproduced the report byte for byte", seed)
	} else {
		rep.Printf("DETERMINISM VIOLATED: same seed produced a different report")
	}
	if !r1.InvariantsOK || !deterministic {
		return nil, fmt.Errorf("slo soak failed: %v (deterministic=%v)", r1.Violations, deterministic)
	}
	rep.ArtifactName = "SLO_soak.json"
	rep.Artifact = append(b1, '\n')
	return rep, nil
}
