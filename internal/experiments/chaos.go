package experiments

// Chaos soak: connection churn under a seeded schedule of injected faults
// — correlated DIP failure bursts, switch-CPU stalls and brownouts, an
// SRAM squeeze that forces ErrTableFull, and learning-channel digest loss
// — with the graceful-degradation machinery (bounded insert queue,
// retry-with-backoff, occupancy-watermark degraded mode, BFD failover)
// absorbing the abuse. The run asserts the robustness invariants the
// design promises and emits them as CHAOS_soak.json; the same seed must
// reproduce the report byte for byte.

import (
	"encoding/json"
	"fmt"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/netproto"
	"repro/internal/pipes"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Soak shape, in ticks of chaosTick virtual time. Flows start at a steady
// rate for chaosLoadTicks, each living chaosLifeTicks before its
// connection ends; the fault window sits inside the loaded phase so every
// fault lands while the switch is busy.
const (
	chaosTick      = 100 * simtime.Microsecond
	chaosLoadTicks = 1600 // flows keep starting for 160 ms
	chaosLifeTicks = 800  // each flow lives 80 ms
	chaosStride    = 16   // each live flow sends a packet every 16 ticks
	chaosQueueMax  = 64   // MaxInsertQueue under test
	chaosProbes    = 64   // fresh flows probing degraded-exit after drain
)

// ChaosReport is the machine-readable outcome written to CHAOS_soak.json.
// Everything in it is derived from virtual time and seeded randomness, so
// the same (scale, seed) must produce identical bytes.
type ChaosReport struct {
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	Pipes      int     `json:"pipes"`
	QueueBound int     `json:"queue_bound"`
	// Capacity is the chip-wide effective ConnTable capacity at start; the
	// workload is sized to it so the occupancy watermarks are crossed.
	Capacity int `json:"conn_capacity"`

	FlowsStarted     int    `json:"flows_started"`
	FlowsEstablished int    `json:"flows_established"`
	Packets          uint64 `json:"packets"`
	Forwarded        uint64 `json:"forwarded"`

	FaultsInjected uint64            `json:"faults_injected"`
	FaultsByKind   map[string]uint64 `json:"faults_by_kind"`
	Failovers      uint64            `json:"failovers"`
	Recoveries     uint64            `json:"recoveries"`

	DegradedPackets        uint64 `json:"degraded_packets"`
	DegradedTransitions    uint64 `json:"degraded_transitions"`
	ForwardedWhileDegraded uint64 `json:"forwarded_while_degraded"`
	Inserted               uint64 `json:"inserted"`
	InsertRetries          uint64 `json:"insert_retries"`
	InsertSheds            uint64 `json:"insert_sheds"`
	Overflows              uint64 `json:"overflows"`
	MaxInsertQueue         int    `json:"max_insert_queue"`
	DigestsLost            uint64 `json:"digests_lost"`

	PCCViolations     int  `json:"pcc_violations"`
	MisforwardedFlows int  `json:"misforwarded_flows"`
	QueueAfterDrain   int  `json:"queue_after_drain"`
	LearnAfterDrain   int  `json:"learn_after_drain"`
	FaultsRemaining   int  `json:"faults_remaining"`
	DegradedAtEnd     bool `json:"degraded_at_end"`

	// Violations lists every failed invariant in a fixed order;
	// InvariantsOK is its emptiness.
	Violations   []string `json:"invariant_violations"`
	InvariantsOK bool     `json:"invariants_ok"`
}

// engineTarget adapts the multi-pipe engine to the fault injector's
// Target: CPU faults hit a pipe's control plane, table and digest faults
// its data plane, all under the pipe lock via Inspect.
type engineTarget struct{ eng *pipes.Engine }

func (t engineTarget) NumPipes() int { return t.eng.NumPipes() }

func (t engineTarget) StallCPU(now simtime.Time, pipe int, d simtime.Duration) {
	t.eng.Inspect(pipe, func(_ *dataplane.Switch, cp *ctrlplane.ControlPlane) {
		cp.StallCPU(now, d)
	})
}

func (t engineTarget) SetInsertRateScale(pipe int, scale float64) {
	t.eng.Inspect(pipe, func(_ *dataplane.Switch, cp *ctrlplane.ControlPlane) {
		cp.SetInsertRateScale(scale)
	})
}

func (t engineTarget) SetConnTableLimit(pipe int, limit int) {
	t.eng.Inspect(pipe, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
		dp.SetConnTableLimit(limit)
	})
}

func (t engineTarget) SetLearnLoss(pipe int, rate float64, seed uint64) {
	t.eng.Inspect(pipe, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
		dp.LearnFilter().SetLoss(rate, seed)
	})
}

// chaosFlow tracks one connection two ways. The PCC ground truth is the
// pinned pool version read through the exact-tuple CPU shadow
// (LookupConn), which digest false positives cannot touch: once vset, the
// version must never change while the entry lives. The observed DIP of
// ConnTable hits is tracked separately — a change there is a digest-FP
// misforward (an aliased entry answered), which the paper accepts at the
// digest's collision rate, so it is bounded rather than forbidden.
type chaosFlow struct {
	dip         dataplane.DIP
	version     uint32
	established bool
	vset        bool
	broken      bool
}

// RunChaosSoak drives the churn-under-faults soak once and returns its
// report. Same (scale, seed) ⇒ identical report; the chaos experiment and
// TestChaosSoak both rest on that.
func RunChaosSoak(scale float64, seed int64) (*ChaosReport, error) {
	connTarget := int(2048 * scale)
	if connTarget < 1024 {
		connTarget = 1024
	}
	dcfg := dataplane.DefaultConfig(connTarget)
	dcfg.Seed = uint64(seed)
	dcfg.DegradedHighWatermark = 0.85
	dcfg.DegradedLowWatermark = 0.60
	ccfg := ctrlplane.DefaultConfig()
	ccfg.MaxInsertQueue = chaosQueueMax
	ccfg.MaxInsertRetries = 3
	pcfg := pipes.Config{Pipes: 2, Dataplane: dcfg, Controlplane: ccfg}
	var reg *telemetry.Registry
	if CollectTelemetry {
		reg = telemetry.NewRegistry()
		pcfg.Tracer = reg
	}
	eng, err := pipes.New(pcfg)
	if err != nil {
		return nil, err
	}
	pool := expPool(8)
	if err := eng.AddVIP(0, expVIP(), pool, 0); err != nil {
		return nil, err
	}

	rep := &ChaosReport{
		Scale: scale, Seed: seed, Pipes: eng.NumPipes(), QueueBound: chaosQueueMax,
	}
	perPipeCap := 0
	for p := 0; p < eng.NumPipes(); p++ {
		eng.Inspect(p, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
			_, capa := dp.OccupancyInfo()
			rep.Capacity += capa
			if capa > perPipeCap {
				perPipeCap = capa
			}
		})
	}

	// The fault schedule: everything lands in [20 ms, 120 ms], inside the
	// loaded phase. The table squeeze caps each pipe well below its live
	// occupancy, so queued insertions hit ErrTableFull and the shrunken
	// watermarks force degraded mode even if churn alone did not.
	ms := func(n int) simtime.Duration { return simtime.Duration(n) * simtime.Millisecond }
	plan := faults.Generate(faults.GenConfig{
		Seed:  uint64(seed),
		Start: simtime.Time(0).Add(ms(20)),
		End:   simtime.Time(0).Add(ms(120)),
		Pipes: eng.NumPipes(),

		DIPs: pool, DIPBursts: 2, BurstSize: 3, DIPDownFor: ms(30),
		CPUStalls: 2, StallFor: ms(6),
		Brownouts: 2, BrownoutScale: 0.25, BrownoutFor: ms(20),
		TableSqueezes: 1, TableLimit: perPipeCap * 2 / 5, SqueezeFor: ms(30),
		DigestLossWindows: 2, DigestLossRate: 0.3, DigestLossFor: ms(15),
	})
	// One extra squeeze is pinned early in the load phase, while learning
	// is still hot: whatever the seed does with the random schedule, the
	// insertions pending at 25 ms must hit a capped table and retry. (A
	// randomly-placed squeeze can land after churn has already degraded
	// the switch, when no insertions are in flight to fail.)
	plan.Events = append(plan.Events,
		faults.Event{
			At: simtime.Time(0).Add(ms(25)), Kind: faults.TableLimit, Pipe: -1,
			Duration: ms(30), Limit: perPipeCap / 10,
		},
		// Likewise one digest-loss window before the storm, while every new
		// flow still offers a digest — a random window can fall entirely
		// inside a degraded stretch, where there is nothing to lose.
		faults.Event{
			At: simtime.Time(0).Add(ms(10)), Kind: faults.DigestLoss, Pipe: -1,
			Duration: ms(10), Scale: 0.3,
		},
	)
	inj := faults.NewInjector(plan, engineTarget{eng})
	if reg != nil {
		inj.SetTracer(reg)
	}

	// BFD-style health checking rides the injected DIP outages: 5 ms
	// probes with a fail threshold of 3 detect a 30 ms outage mid-way and
	// re-add the DIP two clean probes after it recovers.
	hcfg := health.Config{
		Interval:         ms(5),
		FailThreshold:    3,
		RecoverThreshold: 2,
		ProbeBytes:       100,
	}
	hc := health.New(hcfg, eng, inj.WrapProbe(nil))
	for _, dip := range pool {
		hc.Watch(expVIP(), dip)
	}

	// Flow arrival rate: size the steady-state flow population to the
	// chip's ConnTable capacity, so occupancy climbs through the high
	// watermark on its own.
	perTick := rep.Capacity / chaosLifeTicks
	if perTick < 1 {
		perTick = 1
	}
	flows := make([]chaosFlow, 0, chaosLoadTicks*perTick+chaosProbes)
	var (
		batch     []*netproto.Packet
		batchIdx  []int
		firstLive int
	)
	degradedNow := func() bool {
		d := false
		for p := 0; p < eng.NumPipes(); p++ {
			eng.Inspect(p, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
				d = d || dp.Degraded()
			})
		}
		return d
	}
	// shadowVersion reads flow i's pinned pool version through the CPU's
	// exact-tuple shadow — the digest-FP-proof view of the ConnTable.
	shadowVersion := func(i int) (uint32, bool) {
		tup := expTuple(i)
		var (
			v  uint32
			ok bool
		)
		eng.Inspect(eng.PipeOf(tup), func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
			v, ok = dp.LookupConn(tup)
		})
		return v, ok
	}
	runBatch := func(now simtime.Time) {
		res := eng.ProcessBatch(now, batch)
		var fwd uint64
		for j, r := range res {
			rep.Packets++
			if r.Verdict == dataplane.VerdictForward {
				rep.Forwarded++
				fwd++
			}
			if !r.ConnHit {
				continue
			}
			i := batchIdx[j]
			f := &flows[i]
			switch {
			case !f.established:
				f.established, f.dip = true, r.DIP
				rep.FlowsEstablished++
			case !f.broken && r.DIP != f.dip:
				f.broken = true
				rep.MisforwardedFlows++
			}
			if !f.vset {
				if v, ok := shadowVersion(i); ok {
					f.version, f.vset = v, true
				}
			}
		}
		if degradedNow() {
			rep.ForwardedWhileDegraded += fwd
		}
	}

	for t := 0; t < chaosLoadTicks+chaosLifeTicks; t++ {
		now := simtime.Time(int64(t) * int64(chaosTick))
		inj.Advance(now)
		hc.Advance(now)
		eng.Advance(now)

		// Flows born chaosLifeTicks ago close their connections. Just
		// before each one ends, its shadow version is compared against the
		// version pinned at establishment — the PCC ground truth.
		if bt := t - chaosLifeTicks; bt >= 0 && bt < chaosLoadTicks {
			for i := bt * perTick; i < (bt+1)*perTick; i++ {
				if f := &flows[i]; f.vset {
					if v, ok := shadowVersion(i); ok && v != f.version {
						rep.PCCViolations++
					}
				}
				eng.EndConnection(now, expTuple(i))
			}
			firstLive = (bt + 1) * perTick
		}
		batch, batchIdx = batch[:0], batchIdx[:0]
		// Established traffic: a rotating 1/chaosStride sample of the live
		// flows, so every flow revisits the data path a few times per
		// lifetime without the soak ballooning.
		for i := firstLive; i < len(flows); i++ {
			if i%chaosStride == t%chaosStride {
				batch = append(batch, &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagACK})
				batchIdx = append(batchIdx, i)
			}
		}
		if t < chaosLoadTicks {
			for k := 0; k < perTick; k++ {
				i := len(flows)
				flows = append(flows, chaosFlow{})
				batch = append(batch, &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagSYN})
				batchIdx = append(batchIdx, i)
			}
		}
		runBatch(now)
	}
	rep.FlowsStarted = len(flows)

	// Drain: every transient fault has reverted by now; let the CPUs chew
	// through backoffs and retries, the checker re-add recovered DIPs, and
	// the aged-out flows disappear.
	drainAt := simtime.Time(int64(chaosLoadTicks+chaosLifeTicks) * int64(chaosTick)).Add(ms(150))
	inj.Advance(drainAt)
	hc.Advance(drainAt)
	eng.Advance(drainAt)

	// Degraded mode is evaluated lazily on the miss path, so a handful of
	// fresh flows probe the exit transition (and must be served normally).
	batch, batchIdx = batch[:0], batchIdx[:0]
	for k := 0; k < chaosProbes; k++ {
		i := len(flows)
		flows = append(flows, chaosFlow{})
		batch = append(batch, &netproto.Packet{Tuple: expTuple(i), TCPFlags: netproto.FlagSYN})
		batchIdx = append(batchIdx, i)
	}
	runBatch(drainAt)
	rep.FlowsStarted = len(flows)
	end := drainAt.Add(ms(50))
	hc.Advance(end)
	eng.Advance(end)

	st := eng.Stats()
	rep.DegradedPackets = st.Dataplane.DegradedPackets
	rep.DegradedTransitions = st.Dataplane.DegradedTransitions
	rep.Inserted = st.Controlplane.Inserted
	rep.InsertRetries = st.Controlplane.InsertRetries
	rep.InsertSheds = st.Controlplane.InsertSheds
	rep.Overflows = st.Controlplane.Overflows
	rep.MaxInsertQueue = st.Controlplane.MaxInsertQueue
	im := inj.Metrics()
	rep.FaultsInjected = im.Injected
	rep.FaultsByKind = make(map[string]uint64, len(im.ByKind))
	for k, n := range im.ByKind {
		rep.FaultsByKind[k.String()] = n
	}
	rep.FaultsRemaining = inj.Remaining()
	hm := hc.Metrics()
	rep.Failovers, rep.Recoveries = hm.Failovers, hm.Recoveries
	for p := 0; p < eng.NumPipes(); p++ {
		eng.Inspect(p, func(dp *dataplane.Switch, cp *ctrlplane.ControlPlane) {
			rep.QueueAfterDrain += cp.QueueDepth()
			rep.LearnAfterDrain += dp.LearnFilter().Len()
			rep.DigestsLost += dp.LearnFilter().Lost
			rep.DegradedAtEnd = rep.DegradedAtEnd || dp.Degraded()
		})
	}

	rep.Violations = chaosInvariants(rep)
	rep.InvariantsOK = len(rep.Violations) == 0
	return rep, nil
}

// chaosInvariants checks the robustness contract against a finished run
// and returns every violation, in a fixed order for report determinism.
func chaosInvariants(r *ChaosReport) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	if r.PCCViolations != 0 {
		fail("PCC broken: %d installed flows changed pool version", r.PCCViolations)
	}
	// Digest false positives misforward at the digest collision rate; the
	// invariant is that aliasing stays rare, not that it never happens.
	if r.MisforwardedFlows*50 > r.FlowsEstablished {
		fail("digest-FP misforwards above 2%% of flows (%d of %d)",
			r.MisforwardedFlows, r.FlowsEstablished)
	}
	if r.MaxInsertQueue > r.QueueBound {
		fail("insert queue peaked at %d, above the %d bound", r.MaxInsertQueue, r.QueueBound)
	}
	if r.QueueAfterDrain != 0 || r.LearnAfterDrain != 0 {
		fail("pending entries leaked: queue=%d learn=%d after drain", r.QueueAfterDrain, r.LearnAfterDrain)
	}
	if r.FaultsRemaining != 0 {
		fail("%d fault actions never fired", r.FaultsRemaining)
	}
	if r.DegradedPackets == 0 || r.ForwardedWhileDegraded == 0 {
		fail("degraded mode never served traffic (degraded_packets=%d, forwarded_while_degraded=%d)",
			r.DegradedPackets, r.ForwardedWhileDegraded)
	}
	if r.DegradedAtEnd {
		fail("switch still degraded after the load cleared")
	}
	if r.DegradedTransitions < 2 {
		fail("degraded_transitions=%d: never both entered and exited", r.DegradedTransitions)
	}
	if r.InsertRetries == 0 || r.InsertSheds == 0 {
		fail("pressure paths unexercised (retries=%d, sheds=%d)", r.InsertRetries, r.InsertSheds)
	}
	if r.DigestsLost == 0 {
		fail("digest-loss windows dropped nothing")
	}
	if r.Failovers == 0 || r.Recoveries == 0 {
		fail("health checker idle (failovers=%d, recoveries=%d)", r.Failovers, r.Recoveries)
	}
	if r.FlowsEstablished == 0 {
		fail("no flow ever established")
	}
	if r.Forwarded == 0 {
		fail("nothing forwarded")
	}
	return v
}

// Chaos is the registered experiment: it runs the soak twice with the
// same seed, insists the two reports are byte-identical, and emits the
// first as CHAOS_soak.json.
func Chaos(scale float64, seed int64) (*Report, error) {
	r1, err := RunChaosSoak(scale, seed)
	if err != nil {
		return nil, err
	}
	b1, err := json.MarshalIndent(r1, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	r2, err := RunChaosSoak(scale, seed)
	if err != nil {
		return nil, err
	}
	b2, err := json.Marshal(r2)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	b1c, _ := json.Marshal(r1)
	deterministic := string(b1c) == string(b2)

	rep := &Report{ID: "chaos", Title: "Chaos soak: fault injection under churn, degradation invariants"}
	rep.Printf("flows %d (established %d)  packets %d (forwarded %d)",
		r1.FlowsStarted, r1.FlowsEstablished, r1.Packets, r1.Forwarded)
	rep.Printf("faults injected %d %v  failovers %d recoveries %d",
		r1.FaultsInjected, r1.FaultsByKind, r1.Failovers, r1.Recoveries)
	rep.Printf("degraded: packets %d, transitions %d, forwarded-while-degraded %d",
		r1.DegradedPackets, r1.DegradedTransitions, r1.ForwardedWhileDegraded)
	rep.Printf("pressure: retries %d sheds %d overflows %d queue-peak %d/%d digests-lost %d",
		r1.InsertRetries, r1.InsertSheds, r1.Overflows, r1.MaxInsertQueue, r1.QueueBound, r1.DigestsLost)
	rep.Printf("PCC violations %d  digest-FP misforwarded flows %d", r1.PCCViolations, r1.MisforwardedFlows)
	if r1.InvariantsOK {
		rep.Printf("invariants: all hold")
	} else {
		for _, s := range r1.Violations {
			rep.Printf("INVARIANT VIOLATED: %s", s)
		}
	}
	if deterministic {
		rep.Printf("determinism: second run with seed %d reproduced the report byte for byte", seed)
	} else {
		rep.Printf("DETERMINISM VIOLATED: same seed produced a different report")
	}
	if !r1.InvariantsOK || !deterministic {
		return nil, fmt.Errorf("chaos soak failed: %v (deterministic=%v)", r1.Violations, deterministic)
	}
	rep.ArtifactName = "CHAOS_soak.json"
	rep.Artifact = append(b1, '\n')
	return rep, nil
}
