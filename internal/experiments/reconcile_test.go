package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestReconcileSoak is the reconcile soak as a regression gate (CI runs it
// under -race): a fixed seed, every controller invariant — convergence,
// zero PCC violations, rollback + retry + drift exercised, idempotent
// re-apply — and byte-identical reports across two runs.
func TestReconcileSoak(t *testing.T) {
	const scale, seed = 1.0, 42

	r1, err := RunReconcileSoak(scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r1.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !r1.InvariantsOK {
		t.Fatalf("report: %+v", r1)
	}

	// Sanity beyond the report's own checks: the soak exercised what it
	// claims to.
	if r1.FlowsEstablished < r1.FlowsStarted/4 {
		t.Errorf("established only %d of %d flows", r1.FlowsEstablished, r1.FlowsStarted)
	}
	if r1.FaultsInjected == 0 {
		t.Error("no faults injected")
	}
	if r1.Applies == 0 {
		t.Error("no reconcile applies recorded")
	}

	r2, err := RunReconcileSoak(scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed, different reports:\n%s\n%s", b1, b2)
	}

	// A different seed must yield a different run — the soak is seeded,
	// not hard-coded.
	r3, err := RunReconcileSoak(scale, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := json.Marshal(r3)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b3) {
		t.Error("seed change did not change the report")
	}
}
