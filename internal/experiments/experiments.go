// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a pure function from a Scale (run-time
// budget knob) and a seed to a Report: a printable block plus the
// structured series the tests assert the paper's shape claims against.
//
// Scale semantics: Scale=1 runs the reduced-scale defaults documented in
// EXPERIMENTS.md (minutes of virtual time, thousands of connections per
// second). Larger scales lengthen simulations proportionally; the shapes
// are stable across scales because every rate is normalized.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	ID    string // "table1", "fig16", ...
	Title string
	lines []string

	// ArtifactName and Artifact optionally carry a machine-readable payload
	// (e.g. JSON) that silkroad-bench writes to a file of that name next to
	// the printed report.
	ArtifactName string
	Artifact     []byte

	// MetricsName and Metrics optionally carry a telemetry snapshot (JSON)
	// captured during the run; populated only when CollectTelemetry is set
	// (silkroad-bench --metrics) and written next to the main artifact.
	MetricsName string
	Metrics     []byte
}

// Printf appends a formatted row.
func (r *Report) Printf(format string, args ...any) {
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// CollectTelemetry makes experiments that support it attach a
// telemetry.Registry to the system under test and export the snapshot as a
// Metrics artifact. Off by default so benchmark numbers measure the
// untraced hot path; silkroad-bench --metrics turns it on before running.
var CollectTelemetry bool

// Runner is the registry entry for one experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(scale float64, seed int64) (*Report, error)
}

// All returns every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"table1", "SRAM and switching capacity by ASIC generation", func(s float64, seed int64) (*Report, error) { return Table1(), nil }},
		{"table2", "Additional H/W resources for SilkRoad @1M connections", func(s float64, seed int64) (*Report, error) { return Table2() }},
		{"fig2", "DIP pool update frequency across clusters", func(s float64, seed int64) (*Report, error) { return Fig2(s, seed), nil }},
		{"fig3", "Root causes of DIP additions/removals", func(s float64, seed int64) (*Report, error) { return Fig3(s, seed), nil }},
		{"fig4", "DIP downtime durations by root cause", func(s float64, seed int64) (*Report, error) { return Fig4(s, seed), nil }},
		{"fig5", "SLB load vs PCC violations dilemma (ConnTable in SLBs)", func(s float64, seed int64) (*Report, error) { return Fig5(s, seed) }},
		{"fig6", "Active connections per ToR switch", func(s float64, seed int64) (*Report, error) { return Fig6(seed), nil }},
		{"fig8", "New connections per VIP per minute", func(s float64, seed int64) (*Report, error) { return Fig8(s, seed), nil }},
		{"fig12", "SilkRoad SRAM usage across clusters", func(s float64, seed int64) (*Report, error) { return Fig12(seed), nil }},
		{"fig13", "SLBs replaced by one SilkRoad across clusters", func(s float64, seed int64) (*Report, error) { return Fig13(seed), nil }},
		{"fig14", "ConnTable memory saving from digests and versions", func(s float64, seed int64) (*Report, error) { return Fig14(seed), nil }},
		{"fig15", "DIP pool versions needed with and without reuse", func(s float64, seed int64) (*Report, error) { return Fig15(s, seed) }},
		{"fig16", "PCC violations vs DIP pool update frequency", func(s float64, seed int64) (*Report, error) { return Fig16(s, seed) }},
		{"fig17", "PCC violations vs new-connection arrival rate", func(s float64, seed int64) (*Report, error) { return Fig17(s, seed) }},
		{"fig18", "PCC violations vs TransitTable size and learn timeout", func(s float64, seed int64) (*Report, error) { return Fig18(s, seed) }},
		{"sec52", "Prototype microbenchmarks: meters, insertion rate, digest FPs, cost", func(s float64, seed int64) (*Report, error) { return Sec52(s, seed) }},
		{"netwide", "Network-wide VIP-to-layer assignment (§5.3)", func(s float64, seed int64) (*Report, error) { return Netwide(s, seed) }},
		{"hybrid", "ConnTable-as-cache with SLB overflow tier (§7)", func(s float64, seed int64) (*Report, error) { return Hybrid(s, seed) }},
		{"pipes", "Multi-pipe aggregate throughput, 1 vs 4 pipes (BENCH_pipes.json)", func(s float64, seed int64) (*Report, error) { return PipesBench(s, seed) }},
		{"runtime", "Event-runtime overhead, scheduler vs hand-driven (BENCH_runtime.json)", func(s float64, seed int64) (*Report, error) { return RuntimeBench(s, seed) }},
		{"chaos", "Chaos soak: fault injection under churn, degradation invariants (CHAOS_soak.json)", func(s float64, seed int64) (*Report, error) { return Chaos(s, seed) }},
		{"reconcile", "Reconcile soak: spec churn, rolling fleet updates, rollback (RECONCILE_soak.json)", func(s float64, seed int64) (*Report, error) { return Reconcile(s, seed) }},
		{"upgrade", "Rolling-upgrade soak: warm handoff, zero dropped flows (UPGRADE_soak.json)", func(s float64, seed int64) (*Report, error) { return Upgrade(s, seed) }},
		{"slo", "SLO soak: burn-rate alerting, occupancy forecasting, fleet rollout gate (SLO_soak.json)", func(s float64, seed int64) (*Report, error) { return SLO(s, seed) }},
	}
}

// ByID returns the runner with the given id.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns all experiment ids.
func IDs() []string {
	var out []string
	for _, r := range All() {
		out = append(out, r.ID)
	}
	sort.Strings(out)
	return out
}
