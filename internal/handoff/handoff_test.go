package handoff

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/netproto"
	"repro/internal/simtime"
)

// fakeExporter serves a fixed snapshot plus scripted delta rounds.
type fakeExporter struct {
	snap   []Entry
	pos    int
	deltas [][]Entry // successive Deltas() results
	closed bool
}

func (f *fakeExporter) Pending() int { return len(f.snap) - f.pos }

func (f *fakeExporter) NextChunk(max int) []Entry {
	if max <= 0 || f.pos+max > len(f.snap) {
		max = len(f.snap) - f.pos
	}
	out := f.snap[f.pos : f.pos+max]
	f.pos += max
	return out
}

func (f *fakeExporter) Deltas() []Entry {
	if len(f.deltas) == 0 {
		return nil
	}
	d := f.deltas[0]
	f.deltas = f.deltas[1:]
	return d
}

func (f *fakeExporter) Cursor() uint64 { return 7 }
func (f *fakeExporter) Close()         { f.closed = true }

// fakeImporter records applied ops and backpressures on request.
type fakeImporter struct {
	got     []Entry
	dels    []Entry
	pressed int // Import calls to reject with ErrBackpressure first
}

func (f *fakeImporter) Import(now simtime.Time, e Entry) error {
	if f.pressed > 0 {
		f.pressed--
		return ErrBackpressure
	}
	f.got = append(f.got, e)
	return nil
}

func (f *fakeImporter) Delete(now simtime.Time, e Entry) { f.dels = append(f.dels, e) }

func entryN(i int) Entry {
	return Entry{
		Tuple: netproto.FiveTuple{
			Src:     netip.AddrFrom4([4]byte{1, 2, byte(i >> 8), byte(i)}),
			Dst:     netip.MustParseAddr("20.0.0.1"),
			SrcPort: uint16(1000 + i), DstPort: 80, Proto: netproto.ProtoTCP,
		},
		KeyHash: uint64(i), Version: 3,
		DIP: netip.MustParseAddrPort(fmt.Sprintf("10.0.0.%d:20", i%250+1)),
	}
}

func snapN(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = entryN(i)
	}
	return out
}

func TestTransferOrderAndConvergence(t *testing.T) {
	ex := &fakeExporter{
		snap: snapN(10),
		deltas: [][]Entry{
			nil,
			{entryN(100), {Op: OpDelete, Tuple: entryN(3).Tuple, KeyHash: 3}},
		},
	}
	im := &fakeImporter{}
	tr := NewTransfer(ex, im, Config{ChunkSize: 4})

	moved, done := tr.Step(1, 6)
	if done || moved != 6 {
		t.Fatalf("step1: moved=%d done=%v", moved, done)
	}
	for i := 0; i < 10 && !done; i++ {
		_, done = tr.Step(simtime.Time(i+2), 6)
	}
	if !done {
		t.Fatal("transfer never converged")
	}
	// Snapshot entries arrive in order, then the delta upsert.
	if len(im.got) != 11 {
		t.Fatalf("imported %d entries, want 11", len(im.got))
	}
	for i := 0; i < 10; i++ {
		if im.got[i].KeyHash != uint64(i) {
			t.Fatalf("entry %d out of order: %d", i, im.got[i].KeyHash)
		}
	}
	if im.got[10].KeyHash != 100 {
		t.Fatal("delta upsert not applied last")
	}
	if len(im.dels) != 1 || im.dels[0].KeyHash != 3 {
		t.Fatalf("delta delete not replayed: %+v", im.dels)
	}
	st := tr.Stats()
	if st.Chunks != 3 || st.Exported != 12 || st.Imported != 11 || st.Deltas != 2 {
		t.Fatalf("stats = %+v", st)
	}
	tr.Finish(20)
	if !ex.closed {
		t.Fatal("Finish did not close the exporter")
	}
	if !tr.Done() {
		t.Fatal("transfer not marked done")
	}
}

func TestTransferBackpressureResumes(t *testing.T) {
	ex := &fakeExporter{snap: snapN(5)}
	im := &fakeImporter{pressed: 2}
	tr := NewTransfer(ex, im, Config{ChunkSize: 8})

	moved, done := tr.Step(1, 0)
	if done || moved != 0 {
		t.Fatalf("pressed step: moved=%d done=%v", moved, done)
	}
	moved, done = tr.Step(2, 0) // one more rejection, then flow
	if done || moved != 0 {
		t.Fatalf("pressed step 2: moved=%d done=%v", moved, done)
	}
	moved, done = tr.Step(3, 0)
	if !done || moved != 5 {
		t.Fatalf("resume step: moved=%d done=%v", moved, done)
	}
	if tr.Stats().Backoffs != 2 {
		t.Fatalf("backoffs = %d", tr.Stats().Backoffs)
	}
	// No entry was lost or reordered across the pauses.
	for i, e := range im.got {
		if e.KeyHash != uint64(i) {
			t.Fatalf("entry %d out of order after backpressure", i)
		}
	}
}

func TestTransferCancel(t *testing.T) {
	ex := &fakeExporter{snap: snapN(4)}
	tr := NewTransfer(ex, &fakeImporter{}, Config{})
	tr.Step(1, 2)
	tr.Cancel(2)
	if !ex.closed {
		t.Fatal("Cancel did not close the exporter")
	}
	if moved, done := tr.Step(3, 0); moved != 0 || !done {
		t.Fatal("cancelled transfer still pumping")
	}
}
