// Package handoff implements connection-state transfer between SilkRoad
// switches: a versioned snapshot of a donor's ConnTable shard streamed in
// bounded chunks, plus a delta stream that replays the inserts and deletes
// landing while the snapshot is in flight. A receiver pumping a Transfer
// converges to the donor's exact table without the donor's packet path
// ever pausing — the warm-migration primitive behind switch drains,
// rolling upgrades, and rejoin-after-restore.
//
// The package is deliberately a leaf: it defines the wire types (Entry,
// Snapshot), the small Exporter/Importer interfaces, and the Transfer
// pump. The control plane provides the concrete Exporter (an
// ExportSession over its connection shadow) and Importer (rate-bounded
// imports through the CPU insertion queue); the cluster layer routes
// entries across receivers and decides when to cut traffic over.
package handoff

import (
	"errors"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// ErrBackpressure is returned by an Importer whose insert queue is at its
// bound: the transfer pauses and resumes after the receiver's CPU drains.
// It deliberately mirrors the learn-path shed bound — imported entries
// must not starve the receiver's own learning.
var ErrBackpressure = errors.New("handoff: receiver insert queue full, back off")

// ErrNotWarm gates re-entry of a restored fleet member: it is returned
// until the member announces every VIP a healthy peer announces and has
// no pending control-plane work. It lives here (the leaf package) so the
// cluster that enforces it and the upgrade orchestrator that retries on
// it need not import each other.
var ErrNotWarm = errors.New("handoff: member not warm (VIPs missing or work pending)")

// Op distinguishes snapshot/delta records.
type Op uint8

// Delta operations. Snapshot entries are always OpUpsert.
const (
	OpUpsert Op = iota
	OpDelete
)

func (o Op) String() string {
	if o == OpDelete {
		return "delete"
	}
	return "upsert"
}

// Entry is one connection's transferable state. Version is the donor's
// pool-version number — meaningless on the receiver, which remaps it by
// Pool content (version numbers are switch-local; pool contents plus the
// shared hash seeds are what make DIP selection portable). DIP is the
// donor's resolved backend, carried so receivers that cannot host table
// state (the SLB backstop) can still pin the connection, and so auditors
// can verify PCC without re-deriving the mapping.
type Entry struct {
	Op      Op                 `json:"op,omitempty"`
	Tuple   netproto.FiveTuple `json:"tuple"`
	KeyHash uint64             `json:"key_hash"`
	Digest  uint32             `json:"digest"`
	VIP     dataplane.VIP      `json:"vip"`
	Version uint32             `json:"version"`
	DIP     dataplane.DIP      `json:"dip"`
	Pool    []dataplane.DIP    `json:"pool,omitempty"`
}

// Snapshot is a point-in-time export of a switch's ConnTable in portable
// form — what Switch.Export returns and what silkroad-inspect's snapshot
// subcommand pretty-prints and diffs. Cursor is the flight-recorder
// journal sequence at capture: two snapshots of the same switch order by
// it, and a delta stream starting at the cursor reconstructs everything
// the snapshot missed.
type Snapshot struct {
	TakenAt simtime.Time `json:"taken_at_ns"`
	Cursor  uint64       `json:"cursor"`
	Pipes   int          `json:"pipes"`
	Entries []Entry      `json:"entries"`
}

// Exporter is the donor side of a transfer: a stable snapshot drained in
// bounded chunks plus the deltas accumulated since the last drain. The
// control plane's ExportSession implements it.
type Exporter interface {
	// Pending returns the number of snapshot entries not yet chunked out.
	Pending() int
	// NextChunk returns up to max snapshot entries, advancing the stream.
	NextChunk(max int) []Entry
	// Deltas drains the inserts/deletes recorded since the last call.
	Deltas() []Entry
	// Cursor is the donor's journal sequence at snapshot time.
	Cursor() uint64
	// Close detaches the session from the donor's delta feed.
	Close()
}

// Importer is the receiver side. Import returns ErrBackpressure to pause
// the pump (the entry will be re-offered), any other error to drop the
// entry. Delete replays a delta delete.
type Importer interface {
	Import(now simtime.Time, e Entry) error
	Delete(now simtime.Time, e Entry)
}

// Config parameterizes a Transfer.
type Config struct {
	// ChunkSize bounds entries pulled from the exporter per Step call
	// segment (default 256) — the unit the chunk counter counts.
	ChunkSize int
	// Tracer receives HandoffEvents (nil = NopTracer).
	Tracer telemetry.Tracer
	// Donor and Receiver label telemetry events.
	Donor, Receiver int
}

// Stats counts a transfer's work.
type Stats struct {
	Exported uint64 `json:"exported"` // entries pulled from the donor
	Imported uint64 `json:"imported"` // entries accepted by the receiver
	Deltas   uint64 `json:"deltas"`   // delta records replayed
	Chunks   uint64 `json:"chunks"`   // snapshot chunks pulled
	Backoffs uint64 `json:"backoffs"` // pump pauses on ErrBackpressure
}

// Transfer pumps one Exporter into one Importer: snapshot chunks first,
// then delta rounds, pausing on backpressure and converging when the
// snapshot is exhausted and the delta stream runs dry. It never blocks
// the donor: exports read a frozen snapshot plus an append-only delta
// buffer, so the donor's packet path proceeds at full rate throughout.
type Transfer struct {
	cfg Config
	ex  Exporter
	im  Importer

	buf     []Entry // entries pulled but not yet imported (backpressure)
	began   simtime.Time
	started bool
	closed  bool
	stats   Stats
}

// NewTransfer builds a transfer of ex into im.
func NewTransfer(ex Exporter, im Importer, cfg Config) *Transfer {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 256
	}
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.NopTracer{}
	}
	return &Transfer{cfg: cfg, ex: ex, im: im}
}

// Stats returns the transfer's counters so far.
func (t *Transfer) Stats() Stats { return t.stats }

// Step pumps up to budget entries (snapshot before deltas) and reports
// whether the transfer has converged: snapshot exhausted, no buffered
// entries, delta stream dry. budget <= 0 means unbounded. On receiver
// backpressure the remaining entries stay buffered and Step returns
// early; the caller retries after advancing the receiver's virtual time.
// The returned moved count is the number of records applied this call —
// the progress signal rollback logic watches for stalls.
func (t *Transfer) Step(now simtime.Time, budget int) (moved int, done bool) {
	if t.closed {
		return 0, true
	}
	if !t.started {
		t.started = true
		t.began = now
		t.cfg.Tracer.OnHandoff(telemetry.HandoffEvent{
			Now: now, Donor: t.cfg.Donor, Receiver: t.cfg.Receiver,
			Step: telemetry.HandoffBegin, Entries: t.ex.Pending(),
			Cursor: t.ex.Cursor(),
		})
	}
	for budget <= 0 || moved < budget {
		if len(t.buf) == 0 {
			if !t.fill() {
				break
			}
		}
		e := t.buf[0]
		if e.Op == OpDelete {
			t.im.Delete(now, e)
			t.buf = t.buf[1:]
			moved++
			continue
		}
		if err := t.im.Import(now, e); err != nil {
			if errors.Is(err, ErrBackpressure) {
				t.stats.Backoffs++
				return moved, false
			}
			// Non-retryable (VIP withdrawn on the receiver, version space
			// exhausted): drop the entry rather than wedge the transfer;
			// the connection falls back to unpinned VIPTable resolution.
		} else {
			t.stats.Imported++
		}
		t.buf = t.buf[1:]
		moved++
	}
	if t.ex.Pending() == 0 && len(t.buf) == 0 {
		// Converged up to the delta frontier. One more dry check: a delta
		// may have landed while we imported the last batch.
		if d := t.ex.Deltas(); len(d) > 0 {
			t.buf = append(t.buf, d...)
			t.noteDeltas(now, len(d))
			return moved, false
		}
		return moved, true
	}
	return moved, false
}

// fill pulls the next batch into the buffer: a snapshot chunk while the
// snapshot lasts, then a delta round. Reports whether anything arrived.
func (t *Transfer) fill() bool {
	if t.ex.Pending() > 0 {
		chunk := t.ex.NextChunk(t.cfg.ChunkSize)
		if len(chunk) > 0 {
			t.buf = append(t.buf, chunk...)
			t.stats.Chunks++
			t.stats.Exported += uint64(len(chunk))
			t.cfg.Tracer.OnHandoff(telemetry.HandoffEvent{
				Donor: t.cfg.Donor, Receiver: t.cfg.Receiver,
				Step: telemetry.HandoffChunk, Entries: len(chunk),
			})
			return true
		}
	}
	if d := t.ex.Deltas(); len(d) > 0 {
		t.buf = append(t.buf, d...)
		t.noteDeltas(0, len(d))
		return true
	}
	return false
}

func (t *Transfer) noteDeltas(now simtime.Time, n int) {
	t.stats.Deltas += uint64(n)
	t.stats.Exported += uint64(n)
	t.cfg.Tracer.OnHandoff(telemetry.HandoffEvent{
		Now: now, Donor: t.cfg.Donor, Receiver: t.cfg.Receiver,
		Step: telemetry.HandoffDelta, Deltas: n,
	})
}

// Finish marks the transfer complete and emits the Done event with the
// transfer's duration. Call after Step reports done and any final delta
// drain (post-cutover) has been applied.
func (t *Transfer) Finish(now simtime.Time) {
	if t.closed {
		return
	}
	t.closed = true
	t.cfg.Tracer.OnHandoff(telemetry.HandoffEvent{
		Now: now, Donor: t.cfg.Donor, Receiver: t.cfg.Receiver,
		Step: telemetry.HandoffDone,
		Entries: int(t.stats.Imported), Deltas: int(t.stats.Deltas),
		Cursor: t.ex.Cursor(), Duration: now.Sub(t.began),
	})
	t.ex.Close()
}

// Cancel abandons the transfer (rollback path): the session closes, the
// receiver keeps whatever it imported (callers unwind it), and the Cancel
// event is journaled.
func (t *Transfer) Cancel(now simtime.Time) {
	if t.closed {
		return
	}
	t.closed = true
	t.cfg.Tracer.OnHandoff(telemetry.HandoffEvent{
		Now: now, Donor: t.cfg.Donor, Receiver: t.cfg.Receiver,
		Step: telemetry.HandoffCancel,
		Entries: int(t.stats.Imported), Deltas: int(t.stats.Deltas),
		Duration: now.Sub(t.began),
	})
	t.ex.Close()
}

// Done reports whether Finish or Cancel has run.
func (t *Transfer) Done() bool { return t.closed }
