// Package learnfilter models the connection-learning filter of a switching
// ASIC (§4.1, §4.3 of the paper).
//
// Entry insertion into an exact-match table is the job of the switch CPU,
// but the trigger is a hardware event: the first packet of a connection
// missing ConnTable. The learning filter batches those events, removes
// duplicates (subsequent packets of the same still-pending connection), and
// notifies the CPU either when the filter fills or when a configurable
// timeout (0.5 ms – 5 ms in the paper's experiments) elapses after the
// first buffered event. The window between a connection's arrival and its
// installation — the "pending" window — is precisely what creates the PCC
// hazard SilkRoad's TransitTable closes.
package learnfilter

import (
	"math/rand"

	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Event is one learn notification: a new connection, the DIP-pool version
// its first packet used, and when it arrived.
type Event struct {
	Tuple   netproto.FiveTuple
	KeyHash uint64
	Digest  uint32
	VIPID   uint32
	Version uint32
	At      simtime.Time
}

// Filter batches learn events.
type Filter struct {
	capacity int
	timeout  simtime.Duration

	pending map[uint64]int // keyHash -> index in batch
	batch   []Event
	first   simtime.Time // arrival of the oldest buffered event
	fullAt  simtime.Time // arrival of the event that filled the batch

	// metrics
	Offered    uint64 // events offered
	Duplicates uint64 // suppressed duplicates
	Flushes    uint64
	FullFlush  uint64 // flushes triggered by capacity rather than timeout
	Lost       uint64 // events dropped by injected digest loss

	// Injected digest loss (fault injection): each newly-buffered event is
	// dropped with probability lossRate, as if the hardware learn digest
	// never reached the CPU. The flow's later packets keep re-offering, so
	// loss stretches the pending window instead of losing the flow.
	lossRate float64
	lossRNG  *rand.Rand

	tracer telemetry.Tracer // nil = untraced
	pipe   int
}

// New creates a filter holding up to capacity events, flushing after
// timeout from the first buffered event.
func New(capacity int, timeout simtime.Duration) *Filter {
	if capacity <= 0 {
		panic("learnfilter: capacity must be positive")
	}
	if timeout <= 0 {
		panic("learnfilter: timeout must be positive")
	}
	return &Filter{
		capacity: capacity,
		timeout:  timeout,
		pending:  make(map[uint64]int),
	}
}

// Offer buffers a learn event. Duplicate events (same key hash while still
// buffered) are suppressed, mirroring the hardware filter. It returns true
// if the event was newly buffered.
func (f *Filter) Offer(ev Event) bool {
	f.Offered++
	if _, dup := f.pending[ev.KeyHash]; dup {
		f.Duplicates++
		return false
	}
	if f.lossRate > 0 && f.lossRNG.Float64() < f.lossRate {
		f.Lost++
		return false
	}
	if len(f.batch) == 0 {
		f.first = ev.At
	}
	f.pending[ev.KeyHash] = len(f.batch)
	f.batch = append(f.batch, ev)
	if len(f.batch) == f.capacity {
		f.fullAt = ev.At
	}
	return true
}

// Len returns the number of buffered events.
func (f *Filter) Len() int { return len(f.batch) }

// Full reports whether the filter has reached capacity.
func (f *Filter) Full() bool { return len(f.batch) >= f.capacity }

// NextFlush returns the time at which the current batch should be
// delivered to the CPU, and whether a batch is buffered at all. A full
// filter flushes the moment it filled — the arrival of the event that
// reached capacity, never earlier (flushing at the *first* event's time
// would schedule CPU insertions before the filling event existed). When
// the capacity flush and the timeout flush land on the same tick, the
// earlier of the two fires; both drain the identical batch exactly once.
func (f *Filter) NextFlush() (simtime.Time, bool) {
	if len(f.batch) == 0 {
		return 0, false
	}
	timeoutAt := f.first.Add(f.timeout)
	if f.Full() {
		if f.fullAt.Before(timeoutAt) {
			return f.fullAt, true
		}
		return timeoutAt, true
	}
	return timeoutAt, true
}

// SetTracer attaches a telemetry tracer: each Drain then emits one
// OnLearnFlush event labelled with the given pipe index.
func (f *Filter) SetTracer(tr telemetry.Tracer, pipe int) {
	f.tracer = tr
	f.pipe = pipe
}

// Drain hands the buffered batch to the CPU and resets the filter. The
// returned slice is owned by the caller.
func (f *Filter) Drain() []Event {
	if len(f.batch) == 0 {
		return nil
	}
	flushAt, _ := f.NextFlush() // before reset: the batch's delivery time
	out := f.batch
	f.batch = nil
	f.pending = make(map[uint64]int, f.capacity)
	f.Flushes++
	full := len(out) >= f.capacity
	if full {
		f.FullFlush++
	}
	if f.tracer != nil {
		f.tracer.OnLearnFlush(telemetry.LearnFlushEvent{
			Now: flushAt, Pipe: f.pipe, Batch: len(out), Full: full,
		})
	}
	return out
}

// Contains reports whether a connection is currently buffered (i.e. is
// pending in the filter, not yet handed to the CPU).
func (f *Filter) Contains(keyHash uint64) bool {
	_, ok := f.pending[keyHash]
	return ok
}

// Get returns the buffered event for keyHash, if one is buffered.
func (f *Filter) Get(keyHash uint64) (Event, bool) {
	i, ok := f.pending[keyHash]
	if !ok {
		return Event{}, false
	}
	return f.batch[i], true
}

// OldestAt returns the arrival time of the oldest buffered event, and
// whether any event is buffered. The control plane uses this watermark to
// decide when every connection that arrived before an update request has
// left the hardware filter.
func (f *Filter) OldestAt() (simtime.Time, bool) {
	if len(f.batch) == 0 {
		return 0, false
	}
	return f.first, true
}

// Pending returns a copy of the currently buffered batch in arrival order —
// the filter's pending set, i.e. the connections inside the §4.2 window
// between first packet and CPU hand-off. Intended for debug surfaces.
func (f *Filter) Pending() []Event {
	if len(f.batch) == 0 {
		return nil
	}
	out := make([]Event, len(f.batch))
	copy(out, f.batch)
	return out
}

// SetLoss injects digest loss: each event that would be newly buffered is
// instead dropped with probability rate, drawn from a rate-seeded
// deterministic stream (same seed + same offer sequence = same drops).
// rate <= 0 turns loss back off. Fault-injection hook.
func (f *Filter) SetLoss(rate float64, seed uint64) {
	if rate <= 0 {
		f.lossRate, f.lossRNG = 0, nil
		return
	}
	f.lossRate = rate
	f.lossRNG = rand.New(rand.NewSource(int64(seed)))
}

// Capacity returns the configured batch capacity.
func (f *Filter) Capacity() int { return f.capacity }

// Timeout returns the configured flush timeout.
func (f *Filter) Timeout() simtime.Duration { return f.timeout }
