package learnfilter

import (
	"testing"

	"repro/internal/simtime"
)

func ev(key uint64, at simtime.Time) Event {
	return Event{KeyHash: key, Digest: uint32(key), At: at}
}

func TestOfferAndDedup(t *testing.T) {
	f := New(8, simtime.Duration(simtime.Millisecond))
	if !f.Offer(ev(1, 0)) {
		t.Fatal("first offer rejected")
	}
	if f.Offer(ev(1, 10)) {
		t.Fatal("duplicate not suppressed")
	}
	if !f.Offer(ev(2, 20)) {
		t.Fatal("distinct key rejected")
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.Duplicates != 1 || f.Offered != 3 {
		t.Fatalf("metrics: dup=%d offered=%d", f.Duplicates, f.Offered)
	}
	if !f.Contains(1) || f.Contains(3) {
		t.Fatal("Contains wrong")
	}
}

func TestTimeoutFlush(t *testing.T) {
	f := New(100, simtime.Duration(simtime.Millisecond))
	if _, ok := f.NextFlush(); ok {
		t.Fatal("empty filter has a flush time")
	}
	f.Offer(ev(1, simtime.Time(5*simtime.Microsecond)))
	f.Offer(ev(2, simtime.Time(500*simtime.Microsecond)))
	at, ok := f.NextFlush()
	if !ok {
		t.Fatal("no flush scheduled")
	}
	// Flush is timed from the FIRST buffered event.
	want := simtime.Time(5 * simtime.Microsecond).Add(simtime.Duration(simtime.Millisecond))
	if at != want {
		t.Fatalf("NextFlush = %v, want %v", at, want)
	}
}

func TestFullTriggersImmediateFlush(t *testing.T) {
	f := New(3, simtime.Duration(simtime.Millisecond))
	for i := uint64(0); i < 3; i++ {
		f.Offer(ev(i, simtime.Time(i)))
	}
	if !f.Full() {
		t.Fatal("filter should be full")
	}
	at, ok := f.NextFlush()
	// A full filter flushes immediately — at the arrival of the event that
	// filled it (t=2), not at the first event's time, which would schedule
	// CPU work before the filling event existed.
	if !ok || at != 2 {
		t.Fatalf("full filter NextFlush = (%v,%v), want t=2", at, ok)
	}
}

// TestTimeoutFlushRacesCapacityFlush covers the corner where the timeout
// flush and a capacity flush land on the same tick: the batch must flush
// exactly once, at that tick — never at the first event's arrival time,
// which would schedule CPU insertions before the filling event existed.
func TestTimeoutFlushRacesCapacityFlush(t *testing.T) {
	timeout := simtime.Duration(simtime.Millisecond)
	f := New(4, timeout)
	t0 := simtime.Time(10 * simtime.Microsecond)
	tick := t0.Add(timeout)

	for i := uint64(0); i < 3; i++ {
		f.Offer(ev(i, t0))
	}
	if at, ok := f.NextFlush(); !ok || at != tick {
		t.Fatalf("pre-fill NextFlush = (%v,%v), want timeout tick %v", at, ok, tick)
	}
	// The filling event arrives exactly at the timeout tick.
	f.Offer(ev(99, tick))
	if !f.Full() {
		t.Fatal("filter should be full")
	}
	at, ok := f.NextFlush()
	if !ok || at != tick {
		t.Fatalf("racing flushes: NextFlush = (%v,%v), want the shared tick %v", at, ok, tick)
	}
	// Causality: no scheduled flush may precede any buffered event.
	for _, e := range f.batch {
		if at.Before(e.At) {
			t.Fatalf("flush at %v precedes buffered event at %v", at, e.At)
		}
	}
	batch := f.Drain()
	if len(batch) != 4 {
		t.Fatalf("drained %d events, want 4 (one flush, no split)", len(batch))
	}
	if f.Flushes != 1 || f.FullFlush != 1 {
		t.Fatalf("flush accounting = (%d flushes, %d full), want (1, 1)", f.Flushes, f.FullFlush)
	}
	if _, ok := f.NextFlush(); ok || f.Len() != 0 {
		t.Fatal("filter not empty after the single drain")
	}
	// A capacity fill strictly before the timeout flushes at fill time.
	f2 := New(2, timeout)
	f2.Offer(ev(1, t0))
	fillAt := t0.Add(simtime.Duration(5 * simtime.Microsecond))
	f2.Offer(ev(2, fillAt))
	if at, ok := f2.NextFlush(); !ok || at != fillAt {
		t.Fatalf("capacity flush = (%v,%v), want fill time %v", at, ok, fillAt)
	}
}

func TestDrainResets(t *testing.T) {
	f := New(4, simtime.Duration(simtime.Millisecond))
	f.Offer(ev(1, 0))
	f.Offer(ev(2, 0))
	batch := f.Drain()
	if len(batch) != 2 {
		t.Fatalf("Drain returned %d events", len(batch))
	}
	if batch[0].KeyHash != 1 || batch[1].KeyHash != 2 {
		t.Fatalf("batch order wrong: %+v", batch)
	}
	if f.Len() != 0 || f.Contains(1) {
		t.Fatal("Drain did not reset")
	}
	if f.Flushes != 1 {
		t.Fatalf("Flushes = %d", f.Flushes)
	}
	// Same key can be learned again after drain (e.g. entry later deleted).
	if !f.Offer(ev(1, 100)) {
		t.Fatal("re-offer after drain rejected")
	}
	if f.Drain() == nil {
		t.Fatal("second drain empty")
	}
	if f.Drain() != nil {
		t.Fatal("drain of empty filter should be nil")
	}
}

func TestFullFlushCounter(t *testing.T) {
	f := New(2, simtime.Duration(simtime.Millisecond))
	f.Offer(ev(1, 0))
	f.Offer(ev(2, 0))
	f.Drain()
	f.Offer(ev(3, 0))
	f.Drain()
	if f.FullFlush != 1 || f.Flushes != 2 {
		t.Fatalf("FullFlush=%d Flushes=%d", f.FullFlush, f.Flushes)
	}
}

func TestAccessors(t *testing.T) {
	f := New(7, simtime.Duration(2*simtime.Millisecond))
	if f.Capacity() != 7 || f.Timeout() != simtime.Duration(2*simtime.Millisecond) {
		t.Fatal("accessors wrong")
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 1) },
		func() { New(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad New did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestPendingWindowModel reproduces the §4.3 arithmetic: at a steady 1M new
// connections/minute, a 500us learning window always holds ~8 pending
// connections, so there is never an empty instant to apply an update.
func TestPendingWindowModel(t *testing.T) {
	f := New(2048, simtime.Duration(500*simtime.Microsecond))
	rate := 1_000_000.0 / 60.0 // conns per second
	interval := simtime.Duration(float64(simtime.Second) / rate)
	now := simtime.Time(0)
	key := uint64(0)
	// Drive until just before the first flush and count buffered events.
	flushAt := simtime.Time(0).Add(simtime.Duration(500 * simtime.Microsecond))
	for now.Before(flushAt) {
		f.Offer(ev(key, now))
		key++
		now = now.Add(interval)
	}
	if f.Len() < 7 || f.Len() > 10 {
		t.Fatalf("pending connections in 500us window = %d, want ~8", f.Len())
	}
}

func BenchmarkOfferDrain(b *testing.B) {
	f := New(2048, simtime.Duration(simtime.Millisecond))
	for i := 0; i < b.N; i++ {
		f.Offer(ev(uint64(i), simtime.Time(i)))
		if f.Full() {
			f.Drain()
		}
	}
}

func TestInjectedDigestLoss(t *testing.T) {
	mkEvents := func() []Event {
		evs := make([]Event, 64)
		for i := range evs {
			evs[i] = Event{KeyHash: uint64(i + 1)}
		}
		return evs
	}
	offer := func(f *Filter) (buffered int) {
		for _, ev := range mkEvents() {
			if f.Offer(ev) {
				buffered++
			}
			f.Drain() // keep the filter empty so every offer is fresh
		}
		return buffered
	}

	a := New(8, simtime.Duration(simtime.Millisecond))
	a.SetLoss(0.5, 7)
	gotA := offer(a)
	if a.Lost == 0 || gotA == 64 {
		t.Fatalf("no loss injected: buffered=%d Lost=%d", gotA, a.Lost)
	}
	if a.Lost+uint64(gotA) != 64 {
		t.Fatalf("Lost(%d) + buffered(%d) != offered(64)", a.Lost, gotA)
	}

	// Same seed, same offer sequence: identical drops.
	b := New(8, simtime.Duration(simtime.Millisecond))
	b.SetLoss(0.5, 7)
	if gotB := offer(b); gotB != gotA || b.Lost != a.Lost {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", gotA, a.Lost, gotB, b.Lost)
	}

	// Duplicates are suppressed before the loss coin flip.
	c := New(8, simtime.Duration(simtime.Millisecond))
	c.SetLoss(1.0, 1)
	if c.Offer(Event{KeyHash: 5}) {
		t.Fatal("rate-1.0 loss buffered an event")
	}
	if c.Lost != 1 {
		t.Fatalf("Lost = %d", c.Lost)
	}
	// Turning loss off restores normal behaviour.
	c.SetLoss(0, 0)
	if !c.Offer(Event{KeyHash: 5}) {
		t.Fatal("offer failed after loss disabled")
	}
}
