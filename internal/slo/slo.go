// Package slo is the judgment layer over the telemetry plane: a periodic
// evaluator (a sched.Source) that samples the atomic telemetry.Registry
// into a fixed ring of interval snapshots and derives service-level
// indicators from the deltas — new-flow rate, pending-window p99, insert
// pressure, digest-FP rate, degraded-mode exposure, and a PCC-risk proxy —
// plus an occupancy forecaster (time-to-exhaustion per pipe, the paper's
// §2.2 sizing question asked live) and a burn-rate alert engine with
// multi-window thresholds and hysteresis.
//
// Cost discipline matches the tracer's bar: when no Evaluator is attached
// nothing runs; when armed, each tick performs atomic loads into
// preallocated ring buffers — the packet path is never touched and no lock
// shared with ProcessBatch is ever taken (the registry readers are plain
// atomics plus the registry's registration mutex, which hot-path hooks do
// not use).
package slo

import (
	"math"
	"sort"
	"sync"

	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Metric names for the evaluator's own exposition instruments.
const (
	MetricEvals         = "silkroad_slo_evals_total"
	MetricAlertsPending = "silkroad_slo_alerts_pending"
	MetricAlertsFiring  = "silkroad_slo_alerts_firing"
	MetricMinTTE        = "silkroad_slo_min_tte_seconds"
)

// Config parameterizes an Evaluator. The zero value is usable: every field
// defaults sensibly in New.
type Config struct {
	// Interval is the evaluation period in virtual time (default 1s).
	Interval simtime.Duration
	// WindowSamples is the ring depth — the longest lookback any window
	// can use (default 64 samples).
	WindowSamples int
	// FastWindow and SlowWindow are the burn-rate windows, in samples
	// (defaults 5 and 30). The fast window detects, the slow window
	// confirms: an alert fires only when both breach.
	FastWindow int
	SlowWindow int
	// ForecastWindow is how many recent samples the occupancy fit uses
	// (default 30).
	ForecastWindow int
	// MaxPipes and MaxVIPs bound the preallocated per-sample buffers
	// (defaults 8 and 32). VIPs beyond the bound are not tracked
	// per-VIP (chip-wide SLIs still include them).
	MaxPipes int
	MaxVIPs  int
	// Rules is the alert policy; nil means DefaultRules().
	Rules []Rule
	// Journal, when set, supplies the flight-recorder journal cursor
	// captured on every alert transition as an exemplar: replaying the
	// journal up to the cursor reproduces the state that tripped it.
	Journal func() uint64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = simtime.Second
	}
	if c.WindowSamples <= 0 {
		c.WindowSamples = 64
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 30
	}
	if c.SlowWindow >= c.WindowSamples {
		c.SlowWindow = c.WindowSamples - 1
	}
	if c.FastWindow > c.SlowWindow {
		c.FastWindow = c.SlowWindow
	}
	if c.ForecastWindow <= 0 {
		c.ForecastWindow = 30
	}
	if c.ForecastWindow >= c.WindowSamples {
		c.ForecastWindow = c.WindowSamples - 1
	}
	if c.MaxPipes <= 0 {
		c.MaxPipes = 8
	}
	if c.MaxVIPs <= 0 {
		c.MaxVIPs = 32
	}
	if c.Rules == nil {
		c.Rules = DefaultRules()
	}
	return c
}

// Signals are the chip-wide SLIs derived from one window of interval
// deltas. All rates are per virtual second.
type Signals struct {
	// Seconds is the window's virtual width.
	Seconds float64 `json:"seconds"`
	// PPS is the packet rate summed over pipes.
	PPS float64 `json:"pps"`
	// NewFlowRate is learned ConnTable insertions per second.
	NewFlowRate float64 `json:"new_flow_rate"`
	// InsertPressure is retries+sheds+overflows per second — the rate at
	// which the insertion path is refusing or deferring work.
	InsertPressure float64 `json:"insert_pressure"`
	// PendingP99 is the p99 of the §4.2 pending window over this window's
	// learned insertions, in seconds (overflow capped at the top bound).
	PendingP99 float64 `json:"pending_p99_seconds"`
	// DigestFPRate is digest false positives per learned insertion.
	DigestFPRate float64 `json:"digest_fp_rate"`
	// DegradedFrac is the fraction of pipes currently degraded.
	DegradedFrac float64 `json:"degraded_fraction"`
	// ExhaustionRisk is horizon/TTE for the worst pipe (0 = no exhaustion
	// predicted, >=1 = predicted within the slow window's horizon).
	ExhaustionRisk float64 `json:"exhaustion_risk"`
	// PCCRisk is the fraction of new flows exposed to per-connection
	// consistency loss: flows shed/overflowed at insert (never pinned) or
	// arriving while pipes serve stateless in degraded mode.
	PCCRisk float64 `json:"pcc_risk"`
}

// VIPSLI is one VIP's per-window indicators.
type VIPSLI struct {
	VIP           string  `json:"vip"`
	PPS           float64 `json:"pps"`
	NewFlowRate   float64 `json:"new_flow_rate"`
	ConnHitRate   float64 `json:"conn_hit_rate"` // hits per packet
	NoBackendRate float64 `json:"no_backend_rate"`
	MeterDropRate float64 `json:"meter_drop_rate"`
}

// PipeForecast is the occupancy forecaster's output for one pipe.
type PipeForecast struct {
	Pipe     int     `json:"pipe"`
	Entries  int64   `json:"entries"`
	Capacity int64   `json:"capacity"`
	FillFrac float64 `json:"fill_fraction"`
	// SlopePerSec is the fitted entry growth rate (entries/second).
	SlopePerSec float64 `json:"slope_per_sec"`
	// TTESeconds is the predicted time to exhaustion, or -1 when the fit
	// predicts no exhaustion (flat or draining).
	TTESeconds float64 `json:"tte_seconds"`
	Degraded   bool    `json:"degraded,omitempty"`
}

// Report is the evaluator's published state after a tick: SLIs over the
// fast and slow windows, per-VIP indicators, per-pipe forecasts, and the
// alert board. The JSON shape is the /slo endpoint's contract and is
// byte-deterministic for a deterministic run.
type Report struct {
	Now   simtime.Time `json:"now_ns"`
	Evals uint64       `json:"evals"`
	Fast  Signals      `json:"fast"`
	Slow  Signals      `json:"slow"`
	// DegradedSeconds is cumulative virtual time integrated over the
	// degraded pipe fraction (2 pipes degraded for 3s of 4 = 1.5s).
	DegradedSeconds float64        `json:"degraded_seconds"`
	VIPs            []VIPSLI       `json:"vips,omitempty"`
	Pipes           []PipeForecast `json:"pipes,omitempty"`
	Alerts          []AlertStatus  `json:"alerts"`
}

// sample is one ring slot: a full allocation-free capture of the registry.
type sample struct {
	t      simtime.Time
	core   telemetry.CoreStats
	pend   telemetry.HistogramSnapshot
	pipes  []telemetry.PipeOccupancy
	npipes int
	vips   []telemetry.VIPSnapshot
	vipGen int // which key list the vips slice is indexed by
}

// Evaluator is the periodic SLO engine. Attach it to a scheduler as a
// Source; read it from any goroutine via Report/Alerts/History.
type Evaluator struct {
	cfg Config
	reg *telemetry.Registry

	next simtime.Time

	ring  []sample
	count int // samples captured (saturates at len(ring))
	head  int // index of the most recent sample

	vipKeys   []telemetry.VIPKey
	vipLabels []string
	vipGen    int

	alerts  []alert
	history []Transition

	// exposition instruments (registered on the same registry).
	mEvals   *telemetry.Counter
	mPending *telemetry.Gauge
	mFiring  *telemetry.Gauge
	mMinTTE  *telemetry.Gauge

	// rep is the published report, guarded by repMu: written by the tick
	// (scheduler goroutine), copied out by readers. Never contended with
	// the packet path.
	repMu   sync.Mutex
	rep     Report
	repVIPs []VIPSLI
	repPipe []PipeForecast
}

// New builds an evaluator over reg. The first evaluation is due one
// interval after start.
func New(reg *telemetry.Registry, start simtime.Time, cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	e := &Evaluator{
		cfg:  cfg,
		reg:  reg,
		next: start + simtime.Time(cfg.Interval),
		ring: make([]sample, cfg.WindowSamples),
	}
	for i := range e.ring {
		e.ring[i].pipes = make([]telemetry.PipeOccupancy, cfg.MaxPipes)
		e.ring[i].vips = make([]telemetry.VIPSnapshot, cfg.MaxVIPs)
	}
	e.alerts = make([]alert, len(cfg.Rules))
	for i, r := range cfg.Rules {
		e.alerts[i] = newAlert(r)
	}
	e.repVIPs = make([]VIPSLI, 0, cfg.MaxVIPs)
	e.repPipe = make([]PipeForecast, 0, cfg.MaxPipes)
	e.mEvals = reg.Counter(MetricEvals)
	e.mPending = reg.Gauge(MetricAlertsPending)
	e.mFiring = reg.Gauge(MetricAlertsFiring)
	e.mMinTTE = reg.Gauge(MetricMinTTE)
	e.mMinTTE.Set(-1)
	return e
}

// Interval returns the configured evaluation period.
func (e *Evaluator) Interval() simtime.Duration { return e.cfg.Interval }

// NextEventTime implements sched.Source.
func (e *Evaluator) NextEventTime() (simtime.Time, bool) { return e.next, true }

// Advance implements sched.Source: it runs every evaluation due at or
// before now.
func (e *Evaluator) Advance(now simtime.Time) {
	for e.next <= now {
		e.tick(e.next)
		e.next += simtime.Time(e.cfg.Interval)
	}
}

func (e *Evaluator) lock()   { e.repMu.Lock() }
func (e *Evaluator) unlock() { e.repMu.Unlock() }

// tick captures one sample and re-derives SLIs, forecasts and alerts.
func (e *Evaluator) tick(now simtime.Time) {
	e.capture(now)

	fast := e.window(e.cfg.FastWindow)
	slow := e.window(e.cfg.SlowWindow)

	e.lock()
	defer e.unlock()

	e.rep.Now = now
	e.rep.Evals++
	e.rep.DegradedSeconds += fast.lastDegradedFrac * e.cfg.Interval.Seconds()

	e.repPipe = e.forecast(e.repPipe[:0])
	minTTE := math.MaxFloat64
	for _, f := range e.repPipe {
		if f.TTESeconds >= 0 && f.TTESeconds < minTTE {
			minTTE = f.TTESeconds
		}
	}
	horizon := float64(e.cfg.SlowWindow) * e.cfg.Interval.Seconds()
	risk := 0.0
	if minTTE < math.MaxFloat64 {
		e.mMinTTE.Set(int64(minTTE))
		if minTTE > 0 {
			risk = horizon / minTTE
		} else {
			risk = horizon // exhausted now: saturate rather than divide by zero
		}
	} else {
		e.mMinTTE.Set(-1)
	}
	fast.sig.ExhaustionRisk = risk
	slow.sig.ExhaustionRisk = risk

	e.rep.Fast = fast.sig
	e.rep.Slow = slow.sig
	e.repVIPs = e.vipSLIs(e.repVIPs[:0], fast)
	e.rep.VIPs = e.repVIPs
	e.rep.Pipes = e.repPipe

	cursor := uint64(0)
	if e.cfg.Journal != nil {
		cursor = e.cfg.Journal()
	}
	pending, firing := 0, 0
	for i := range e.alerts {
		a := &e.alerts[i]
		a.eval(now, fast.sig, slow.sig, cursor, &e.history)
		switch a.state {
		case StatePending:
			pending++
		case StateFiring:
			firing++
		}
	}
	if e.rep.Alerts == nil {
		e.rep.Alerts = make([]AlertStatus, len(e.alerts))
	}
	for i := range e.alerts {
		e.rep.Alerts[i] = e.alerts[i].status()
	}
	e.mPending.Set(int64(pending))
	e.mFiring.Set(int64(firing))
	e.mEvals.Inc()
}

// capture snapshots the registry into the next ring slot.
func (e *Evaluator) capture(now simtime.Time) {
	if e.count > 0 {
		e.head = (e.head + 1) % len(e.ring)
	}
	s := &e.ring[e.head]
	s.t = now
	e.reg.ReadCore(&s.core)
	e.reg.ReadPendingWindow(&s.pend)
	s.npipes = e.reg.ReadPipes(s.pipes)
	if s.npipes > len(s.pipes) {
		s.npipes = len(s.pipes)
	}

	if n := e.reg.NumVIPs(); n != len(e.vipKeys) {
		// VIP set changed: refresh the cached key list (rare; allocates).
		keys := e.reg.VIPKeys()
		if len(keys) > e.cfg.MaxVIPs {
			keys = keys[:e.cfg.MaxVIPs]
		}
		e.vipKeys = keys
		e.vipLabels = make([]string, len(keys))
		for i, k := range keys {
			e.vipLabels[i] = k.String()
		}
		e.vipGen++
	}
	s.vipGen = e.vipGen
	for i, k := range e.vipKeys {
		e.reg.ReadVIP(k, &s.vips[i])
	}
	if e.count < len(e.ring) {
		e.count++
	}
}

// windowStats carries one window's derived signals plus internals the tick
// needs (current degraded fraction, the bounding samples).
type windowStats struct {
	sig              Signals
	cur, prev        *sample
	lastDegradedFrac float64
}

// window derives signals over the most recent w intervals (clamped to the
// samples actually captured).
func (e *Evaluator) window(w int) windowStats {
	cur := &e.ring[e.head]
	avail := e.count - 1
	if w > avail {
		w = avail
	}
	var ws windowStats
	ws.cur = cur
	if e.count > 0 && cur.npipes > 0 {
		deg := 0
		for _, p := range cur.pipes[:cur.npipes] {
			if p.Degraded {
				deg++
			}
		}
		ws.lastDegradedFrac = float64(deg) / float64(cur.npipes)
	}
	ws.sig.DegradedFrac = ws.lastDegradedFrac
	if w <= 0 {
		return ws
	}
	prev := &e.ring[(e.head-w+len(e.ring))%len(e.ring)]
	ws.prev = prev
	sec := cur.t.Sub(prev.t).Seconds()
	if sec <= 0 {
		return ws
	}
	ws.sig.Seconds = sec

	c, p := &cur.core, &prev.core
	newFlows := float64(c.InsertsLearned - p.InsertsLearned)
	pressure := float64((c.InsertRetries - p.InsertRetries) +
		(c.InsertSheds - p.InsertSheds) +
		(c.InsertOverflows - p.InsertOverflows))
	fps := float64(c.DigestFPs - p.DigestFPs)
	lost := float64((c.InsertSheds - p.InsertSheds) + (c.InsertOverflows - p.InsertOverflows))

	var pkts uint64
	n := cur.npipes
	if prev.npipes < n {
		n = prev.npipes
	}
	for i := 0; i < n; i++ {
		pkts += cur.pipes[i].Packets - prev.pipes[i].Packets
	}

	ws.sig.PPS = float64(pkts) / sec
	ws.sig.NewFlowRate = newFlows / sec
	ws.sig.InsertPressure = pressure / sec
	ws.sig.PendingP99 = histDeltaQuantile(&cur.pend, &prev.pend, 0.99)
	if newFlows > 0 {
		ws.sig.DigestFPRate = fps / newFlows
	}
	// PCC risk: of the flows that wanted pinning this window, the fraction
	// that was never pinned (shed/overflow) — plus full exposure while
	// degraded, where new flows are served stateless by design.
	if attempted := newFlows + lost; attempted > 0 {
		ws.sig.PCCRisk = lost / attempted
	}
	if ws.sig.DegradedFrac > ws.sig.PCCRisk {
		ws.sig.PCCRisk = ws.sig.DegradedFrac
	}
	return ws
}

// vipSLIs appends per-VIP fast-window indicators to out.
func (e *Evaluator) vipSLIs(out []VIPSLI, ws windowStats) []VIPSLI {
	if ws.prev == nil || ws.sig.Seconds <= 0 ||
		ws.cur.vipGen != e.vipGen || ws.prev.vipGen != e.vipGen {
		return out
	}
	sec := ws.sig.Seconds
	for i, label := range e.vipLabels {
		c, p := &ws.cur.vips[i], &ws.prev.vips[i]
		pkts := float64(c.Packets - p.Packets)
		sli := VIPSLI{
			VIP:           label,
			PPS:           pkts / sec,
			NewFlowRate:   float64(c.Conns-p.Conns) / sec,
			NoBackendRate: float64(c.NoBackend-p.NoBackend) / sec,
			MeterDropRate: float64(c.MeterDrops-p.MeterDrops) / sec,
		}
		if pkts > 0 {
			sli.ConnHitRate = float64(c.ConnHits-p.ConnHits) / pkts
		}
		out = append(out, sli)
	}
	return out
}

// forecast fits each pipe's occupancy trajectory over the forecast window
// with least squares and appends per-pipe predictions to out.
func (e *Evaluator) forecast(out []PipeForecast) []PipeForecast {
	cur := &e.ring[e.head]
	w := e.cfg.ForecastWindow
	if w > e.count-1 {
		w = e.count - 1
	}
	for pi := 0; pi < cur.npipes; pi++ {
		f := PipeForecast{
			Pipe:       pi,
			Entries:    cur.pipes[pi].Entries,
			Capacity:   cur.pipes[pi].Capacity,
			Degraded:   cur.pipes[pi].Degraded,
			TTESeconds: -1,
		}
		if f.Capacity > 0 {
			f.FillFrac = float64(f.Entries) / float64(f.Capacity)
		}
		if w >= 2 && f.Capacity > 0 {
			// Least-squares slope of (t, entries) over the window, with t
			// shifted to the oldest sample for conditioning.
			var sx, sy, sxx, sxy float64
			n := float64(w + 1)
			t0 := e.ring[(e.head-w+len(e.ring))%len(e.ring)].t
			for k := 0; k <= w; k++ {
				s := &e.ring[(e.head-w+k+len(e.ring))%len(e.ring)]
				if pi >= s.npipes {
					continue
				}
				x := s.t.Sub(t0).Seconds()
				y := float64(s.pipes[pi].Entries)
				sx += x
				sy += y
				sxx += x * x
				sxy += x * y
			}
			if den := n*sxx - sx*sx; den > 0 {
				f.SlopePerSec = (n*sxy - sx*sy) / den
			}
			if f.SlopePerSec > 0 {
				f.TTESeconds = float64(f.Capacity-f.Entries) / f.SlopePerSec
			}
		}
		out = append(out, f)
	}
	return out
}

// Report returns a deep copy of the last published report (zero before the
// first evaluation).
func (e *Evaluator) Report() Report {
	e.lock()
	defer e.unlock()
	out := e.rep
	out.VIPs = append([]VIPSLI(nil), e.rep.VIPs...)
	out.Pipes = append([]PipeForecast(nil), e.rep.Pipes...)
	out.Alerts = append([]AlertStatus(nil), e.rep.Alerts...)
	return out
}

// Alerts returns the current alert board (copy), in rule order.
func (e *Evaluator) Alerts() []AlertStatus {
	e.lock()
	defer e.unlock()
	out := make([]AlertStatus, len(e.alerts))
	for i := range e.alerts {
		out[i] = e.alerts[i].status()
	}
	return out
}

// History returns the transition journal (copy), oldest first. It is
// bounded at maxHistory records.
func (e *Evaluator) History() []Transition {
	e.lock()
	defer e.unlock()
	return append([]Transition(nil), e.history...)
}

// PageFiring reports whether any page-severity alert is currently Firing —
// the signal the fleet controller uses to pause rollouts.
func (e *Evaluator) PageFiring() bool {
	e.lock()
	defer e.unlock()
	for i := range e.alerts {
		if e.alerts[i].rule.Severity == SeverityPage && e.alerts[i].state == StateFiring {
			return true
		}
	}
	return false
}

// histDeltaQuantile computes the q-quantile of cur-prev without
// allocating, attributing bucket mass to upper bounds. Overflow mass is
// capped at the top finite bound so the result stays JSON-safe.
func histDeltaQuantile(cur, prev *telemetry.HistogramSnapshot, q float64) float64 {
	count := cur.Count - prev.Count
	if count <= 0 || len(cur.Bounds) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range cur.Counts {
		c := cur.Counts[i]
		if i < len(prev.Counts) {
			c -= prev.Counts[i]
		}
		cum += c
		if cum >= rank {
			if i < len(cur.Bounds) {
				return cur.Bounds[i]
			}
			break
		}
	}
	return cur.Bounds[len(cur.Bounds)-1]
}

// sortTransitions orders a transition slice by (time, rule) — used by the
// fleet aggregate, where per-member journals interleave.
func sortTransitions(ts []Transition) {
	sort.SliceStable(ts, func(i, j int) bool {
		if ts[i].Time != ts[j].Time {
			return ts[i].Time < ts[j].Time
		}
		return ts[i].Rule < ts[j].Rule
	})
}
