package slo

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/simtime"
	"repro/internal/telemetry"
)

const tick = simtime.Second

// newTestEvaluator builds a registry + evaluator with small windows so
// lifecycle tests stay short.
func newTestEvaluator(rules []Rule, journal func() uint64) (*telemetry.Registry, *Evaluator) {
	reg := telemetry.NewRegistry()
	e := New(reg, 0, Config{
		Interval:       tick,
		WindowSamples:  16,
		FastWindow:     2,
		SlowWindow:     4,
		ForecastWindow: 8,
		MaxPipes:       4,
		Rules:          rules,
		Journal:        journal,
	})
	return reg, e
}

// learn pushes n learned insertions through the registry at time now.
func learn(reg *telemetry.Registry, now simtime.Time, n int) {
	for i := 0; i < n; i++ {
		reg.OnInsert(telemetry.InsertEvent{
			Now: now, Kind: telemetry.InsertLearned,
			Outcome: telemetry.InsertOK, ArrivedAt: now - simtime.Time(2*simtime.Millisecond),
		})
	}
}

func TestEvaluatorSignals(t *testing.T) {
	reg, e := newTestEvaluator(nil, nil)
	var now simtime.Time
	for i := 0; i < 6; i++ {
		now += simtime.Time(tick)
		learn(reg, now, 50)
		for j := 0; j < 3; j++ {
			reg.OnInsert(telemetry.InsertEvent{Now: now, Outcome: telemetry.InsertRetry})
		}
		e.Advance(now)
	}
	rep := e.Report()
	if rep.Evals != 6 {
		t.Fatalf("evals = %d, want 6", rep.Evals)
	}
	if got := rep.Fast.NewFlowRate; math.Abs(got-50) > 1e-9 {
		t.Errorf("fast new-flow rate = %v, want 50", got)
	}
	if got := rep.Fast.InsertPressure; math.Abs(got-3) > 1e-9 {
		t.Errorf("fast insert pressure = %v, want 3", got)
	}
	// All pending windows were 2ms, so p99 lands in the 3ms bucket bound.
	if got := rep.Fast.PendingP99; got < 0.002 || got > 0.003 {
		t.Errorf("pending p99 = %v, want within (0.002, 0.003]", got)
	}
	if rep.Fast.Seconds != 2 || rep.Slow.Seconds != 4 {
		t.Errorf("window widths = %v/%v, want 2/4", rep.Fast.Seconds, rep.Slow.Seconds)
	}
}

func TestForecasterPredictsExhaustion(t *testing.T) {
	reg, e := newTestEvaluator(nil, nil)
	var now simtime.Time
	entries := 0
	for i := 0; i < 8; i++ {
		now += simtime.Time(tick)
		entries += 100 // steady 100 entries/second
		reg.OnCuckoo(telemetry.CuckooEvent{
			Now: now, Pipe: 0, Op: telemetry.CuckooInsert, OK: true,
			Len: entries, Capacity: 2000,
		})
		e.Advance(now)
	}
	rep := e.Report()
	if len(rep.Pipes) != 1 {
		t.Fatalf("forecasts = %d, want 1", len(rep.Pipes))
	}
	f := rep.Pipes[0]
	if math.Abs(f.SlopePerSec-100) > 1 {
		t.Errorf("slope = %v, want ~100", f.SlopePerSec)
	}
	// 800 entries of 2000 filled, growing 100/s: ~12s to exhaustion.
	if f.TTESeconds < 10 || f.TTESeconds > 14 {
		t.Errorf("tte = %v, want ~12", f.TTESeconds)
	}
	if rep.Fast.ExhaustionRisk <= 0 {
		t.Errorf("exhaustion risk = %v, want > 0", rep.Fast.ExhaustionRisk)
	}
}

func TestForecasterFlatTableNoPrediction(t *testing.T) {
	reg, e := newTestEvaluator(nil, nil)
	var now simtime.Time
	for i := 0; i < 6; i++ {
		now += simtime.Time(tick)
		reg.OnCuckoo(telemetry.CuckooEvent{
			Now: now, Pipe: 0, Op: telemetry.CuckooInsert, OK: true,
			Len: 500, Capacity: 2000,
		})
		e.Advance(now)
	}
	f := e.Report().Pipes[0]
	if f.TTESeconds != -1 {
		t.Errorf("flat table tte = %v, want -1", f.TTESeconds)
	}
	if f.FillFrac != 0.25 {
		t.Errorf("fill fraction = %v, want 0.25", f.FillFrac)
	}
}

func TestAlertLifecycle(t *testing.T) {
	var cursor uint64
	rules := []Rule{{
		Name: "pressure", Severity: SeverityPage, Threshold: 10,
		FireAfter: 2, ClearAfter: 2,
		Value: func(s Signals) float64 { return s.InsertPressure },
	}}
	reg, e := newTestEvaluator(rules, func() uint64 { return cursor })

	var now simtime.Time
	step := func(retries int) AlertStatus {
		now += simtime.Time(tick)
		cursor += 7
		for i := 0; i < retries; i++ {
			reg.OnInsert(telemetry.InsertEvent{Now: now, Outcome: telemetry.InsertRetry})
		}
		e.Advance(now)
		return e.Alerts()[0]
	}

	if a := step(0); a.State != "inactive" {
		t.Fatalf("state = %s, want inactive", a.State)
	}
	// 40 retries/tick over a 2-sample fast window = 20/s: breach.
	a := step(40)
	if a.State != "pending" {
		t.Fatalf("state after breach = %s, want pending", a.State)
	}
	if a.Cursor == 0 {
		t.Fatalf("pending transition captured no journal cursor")
	}
	step(40)
	a = step(40)
	if a.State != "firing" {
		t.Fatalf("state after sustained breach = %s, want firing", a.State)
	}
	if !e.PageFiring() {
		t.Fatalf("PageFiring = false with a firing page alert")
	}
	// Quiet: clear for ClearAfter consecutive evaluations.
	step(0)
	step(0)
	a = step(0)
	if a.State != "resolved" {
		t.Fatalf("state after quiet = %s, want resolved", a.State)
	}
	if e.PageFiring() {
		t.Fatalf("PageFiring = true after resolve")
	}

	hist := e.History()
	var edges []string
	for _, tr := range hist {
		edges = append(edges, tr.From+">"+tr.To)
		if tr.Cursor == 0 {
			t.Errorf("transition %s>%s has no cursor", tr.From, tr.To)
		}
	}
	want := []string{"inactive>pending", "pending>firing", "firing>resolved"}
	if len(edges) != len(want) {
		t.Fatalf("transitions = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", edges, want)
		}
	}
}

func TestAlertHysteresisHoldsFiring(t *testing.T) {
	rules := []Rule{{
		Name: "pressure", Severity: SeverityTicket, Threshold: 10,
		ResolveFraction: 0.5, FireAfter: 1, ClearAfter: 1,
		Value: func(s Signals) float64 { return s.InsertPressure },
	}}
	reg, e := newTestEvaluator(rules, nil)
	var now simtime.Time
	step := func(retries int) AlertStatus {
		now += simtime.Time(tick)
		for i := 0; i < retries; i++ {
			reg.OnInsert(telemetry.InsertEvent{Now: now, Outcome: telemetry.InsertRetry})
		}
		e.Advance(now)
		return e.Alerts()[0]
	}
	step(0)
	step(40) // 20/s, breach -> pending
	a := step(40)
	if a.State != "firing" {
		t.Fatalf("state = %s, want firing", a.State)
	}
	// 14 retries/tick ~ 2-sample window values in (5, 10): inside the
	// hysteresis band, so the alert must hold.
	for i := 0; i < 4; i++ {
		a = step(14)
	}
	if a.State != "firing" {
		t.Fatalf("state in hysteresis band = %s, want firing", a.State)
	}
}

func TestSteadyStateAllocationFree(t *testing.T) {
	reg, e := newTestEvaluator(nil, nil)
	reg.RegisterVIP(0, telemetry.VIPKey{Port: 80, Proto: 6})
	var now simtime.Time
	// Warm up: fill the ring and let buffers reach their steady sizes.
	for i := 0; i < 20; i++ {
		now += simtime.Time(tick)
		learn(reg, now, 10)
		reg.OnCuckoo(telemetry.CuckooEvent{Now: now, Pipe: 0, Op: telemetry.CuckooInsert,
			OK: true, Len: 10 * (i + 1), Capacity: 100000})
		e.Advance(now)
	}
	allocs := testing.AllocsPerRun(50, func() {
		now += simtime.Time(tick)
		learn(reg, now, 10)
		e.Advance(now)
	})
	// learn() itself allocates nothing; the tick must not either.
	if allocs > 0 {
		t.Errorf("steady-state tick allocates %.1f objects/run, want 0", allocs)
	}
}

func TestReportJSONDeterministic(t *testing.T) {
	run := func() []byte {
		reg, e := newTestEvaluator(nil, func() uint64 { return 42 })
		var now simtime.Time
		for i := 0; i < 6; i++ {
			now += simtime.Time(tick)
			learn(reg, now, 25)
			reg.OnCuckoo(telemetry.CuckooEvent{Now: now, Pipe: 0, Op: telemetry.CuckooInsert,
				OK: true, Len: 50 * (i + 1), Capacity: 1000})
			e.Advance(now)
		}
		b, err := json.Marshal(e.Report())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("report JSON differs across identical runs:\n%s\n%s", a, b)
	}
	// JSON-safety: no +Inf or NaN may ever reach the payload.
	var anything map[string]any
	if err := json.Unmarshal(a, &anything); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
}

func TestAggregateFleet(t *testing.T) {
	mk := func(pps, p99, deg float64, alerts ...AlertStatus) Report {
		return Report{
			Now:    simtime.Time(5 * simtime.Second),
			Fast:   Signals{Seconds: 2, PPS: pps, PendingP99: p99, DegradedFrac: deg},
			Slow:   Signals{Seconds: 4, PPS: pps},
			Alerts: alerts,
		}
	}
	firing := AlertStatus{Rule: "degraded", Severity: "page", State: "firing"}
	idle := AlertStatus{Rule: "degraded", Severity: "page", State: "inactive"}
	f := Aggregate([]Report{
		mk(100, 0.001, 0, idle),
		mk(200, 0.004, 0.5, firing),
	})
	if f.Members != 2 {
		t.Fatalf("members = %d, want 2", f.Members)
	}
	if f.Fast.PPS != 300 {
		t.Errorf("fleet pps = %v, want 300", f.Fast.PPS)
	}
	if f.WorstPendingP99 != 1 || f.WorstDegraded != 1 {
		t.Errorf("worst members = p99:%d deg:%d, want 1/1", f.WorstPendingP99, f.WorstDegraded)
	}
	if !f.PageFiring {
		t.Errorf("PageFiring = false with a firing page alert")
	}
	if len(f.Alerts) != 1 || f.Alerts[0].Member != 1 {
		t.Errorf("fleet alerts = %+v, want one from member 1", f.Alerts)
	}
}
