package slo

// FleetAlert is one member's alert carried into the fleet view with its
// origin attached.
type FleetAlert struct {
	Member int `json:"member"`
	AlertStatus
}

// FleetReport is the cluster roll-up of per-member SLO reports: summed
// throughput SLIs, worst-member attribution for each latency/pressure
// signal, and the union of non-inactive alerts.
type FleetReport struct {
	Now     int64   `json:"now_ns"`
	Members int     `json:"members"`
	Fast    Signals `json:"fast"`
	Slow    Signals `json:"slow"`
	// Worst* attribute the dominating member for each maximum-style SLI
	// (-1 when no member reported).
	WorstPendingP99 int `json:"worst_pending_p99_member"`
	WorstDegraded   int `json:"worst_degraded_member"`
	WorstExhaustion int `json:"worst_exhaustion_member"`
	// PageFiring is true when any member has a page-severity alert in the
	// Firing state — the rollout-pause condition.
	PageFiring bool         `json:"page_firing"`
	Alerts     []FleetAlert `json:"alerts,omitempty"`
}

// Aggregate folds per-member reports into a fleet view. Rate SLIs (PPS,
// new-flow rate, insert pressure) sum across members; bound SLIs (pending
// p99, degraded fraction, digest-FP rate, exhaustion risk, PCC risk) take
// the fleet-worst value, with the responsible member recorded. Alerts keep
// member attribution and rule order, so the output is deterministic for
// deterministic inputs.
func Aggregate(reports []Report) FleetReport {
	out := FleetReport{
		Members:         len(reports),
		WorstPendingP99: -1,
		WorstDegraded:   -1,
		WorstExhaustion: -1,
	}
	for m := range reports {
		r := &reports[m]
		if int64(r.Now) > out.Now {
			out.Now = int64(r.Now)
		}
		accumulate(&out.Fast, r.Fast, m, &out.WorstPendingP99, &out.WorstDegraded, &out.WorstExhaustion)
		accumulateSlow(&out.Slow, r.Slow)
		for _, a := range r.Alerts {
			if a.State == StateInactive.String() {
				continue
			}
			out.Alerts = append(out.Alerts, FleetAlert{Member: m, AlertStatus: a})
			if a.State == StateFiring.String() && a.Severity == SeverityPage.String() {
				out.PageFiring = true
			}
		}
	}
	return out
}

// accumulate folds one member's fast signals into agg, tracking which
// member holds each maximum.
func accumulate(agg *Signals, s Signals, m int, worstP99, worstDeg, worstExh *int) {
	if s.Seconds > agg.Seconds {
		agg.Seconds = s.Seconds
	}
	agg.PPS += s.PPS
	agg.NewFlowRate += s.NewFlowRate
	agg.InsertPressure += s.InsertPressure
	if s.PendingP99 >= agg.PendingP99 && (s.PendingP99 > 0 || *worstP99 < 0) {
		agg.PendingP99 = s.PendingP99
		*worstP99 = m
	}
	if s.DegradedFrac >= agg.DegradedFrac && (s.DegradedFrac > 0 || *worstDeg < 0) {
		agg.DegradedFrac = s.DegradedFrac
		*worstDeg = m
	}
	if s.ExhaustionRisk >= agg.ExhaustionRisk && (s.ExhaustionRisk > 0 || *worstExh < 0) {
		agg.ExhaustionRisk = s.ExhaustionRisk
		*worstExh = m
	}
	if s.DigestFPRate > agg.DigestFPRate {
		agg.DigestFPRate = s.DigestFPRate
	}
	if s.PCCRisk > agg.PCCRisk {
		agg.PCCRisk = s.PCCRisk
	}
}

// accumulateSlow folds slow-window signals (no attribution tracking).
func accumulateSlow(agg *Signals, s Signals) {
	if s.Seconds > agg.Seconds {
		agg.Seconds = s.Seconds
	}
	agg.PPS += s.PPS
	agg.NewFlowRate += s.NewFlowRate
	agg.InsertPressure += s.InsertPressure
	if s.PendingP99 > agg.PendingP99 {
		agg.PendingP99 = s.PendingP99
	}
	if s.DegradedFrac > agg.DegradedFrac {
		agg.DegradedFrac = s.DegradedFrac
	}
	if s.ExhaustionRisk > agg.ExhaustionRisk {
		agg.ExhaustionRisk = s.ExhaustionRisk
	}
	if s.DigestFPRate > agg.DigestFPRate {
		agg.DigestFPRate = s.DigestFPRate
	}
	if s.PCCRisk > agg.PCCRisk {
		agg.PCCRisk = s.PCCRisk
	}
}
