package slo

import "repro/internal/simtime"

// Severity ranks an alert's operational weight: a Ticket asks for a look,
// a Page demands action — and pauses fleet rollouts while it fires.
type Severity int

const (
	SeverityTicket Severity = iota
	SeverityPage
)

// String returns the lowercase name used in JSON payloads.
func (s Severity) String() string {
	if s == SeverityPage {
		return "page"
	}
	return "ticket"
}

// AlertState is the burn-rate state machine's position.
type AlertState int

const (
	// StateInactive: the signal has never breached, or a Pending breach
	// receded before confirming.
	StateInactive AlertState = iota
	// StatePending: the fast window breached; waiting for the slow window
	// and the fire streak to confirm.
	StatePending
	// StateFiring: both windows breached for FireAfter consecutive
	// evaluations.
	StateFiring
	// StateResolved: a fired alert whose fast window has stayed below the
	// resolve band for ClearAfter consecutive evaluations. Sticky until
	// the next breach.
	StateResolved
)

var stateNames = [...]string{"inactive", "pending", "firing", "resolved"}

// String returns the lowercase name used in JSON payloads.
func (s AlertState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// Rule is one burn-rate alert policy entry. Value extracts the watched
// signal from a window's SLIs; the rule trips when the fast-window value
// breaches Threshold and fires once the slow window agrees for FireAfter
// consecutive evaluations (multi-window burn rate: fast to detect, slow to
// resist flapping).
type Rule struct {
	Name     string
	Severity Severity
	// Threshold is the breach level for Value.
	Threshold float64
	// ResolveFraction scales Threshold into the resolve band: a firing
	// alert begins clearing only below Threshold*ResolveFraction
	// (hysteresis; default 0.8).
	ResolveFraction float64
	// FireAfter is the consecutive breaching evaluations needed to go
	// Pending -> Firing (default 2); ClearAfter the consecutive
	// below-band evaluations to go Firing -> Resolved (default 3).
	FireAfter  int
	ClearAfter int
	Value      func(s Signals) float64
}

func (r Rule) withDefaults() Rule {
	if r.ResolveFraction <= 0 || r.ResolveFraction > 1 {
		r.ResolveFraction = 0.8
	}
	if r.FireAfter <= 0 {
		r.FireAfter = 2
	}
	if r.ClearAfter <= 0 {
		r.ClearAfter = 3
	}
	return r
}

// DefaultRules is the stock alert policy: insert-path pressure, pending
// p99, digest aliasing, degraded exposure and forecast exhaustion.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "insert-pressure", Severity: SeverityPage, Threshold: 200,
			Value: func(s Signals) float64 { return s.InsertPressure }},
		{Name: "pending-p99", Severity: SeverityTicket, Threshold: 0.005,
			Value: func(s Signals) float64 { return s.PendingP99 }},
		{Name: "digest-fp", Severity: SeverityTicket, Threshold: 0.02,
			Value: func(s Signals) float64 { return s.DigestFPRate }},
		{Name: "degraded", Severity: SeverityPage, Threshold: 0.25,
			Value: func(s Signals) float64 { return s.DegradedFrac }},
		{Name: "conntable-exhaustion", Severity: SeverityPage, Threshold: 1,
			Value: func(s Signals) float64 { return s.ExhaustionRisk }},
	}
}

// AlertStatus is one alert's externally visible state, the /alertz JSON
// shape.
type AlertStatus struct {
	Rule      string       `json:"rule"`
	Severity  string       `json:"severity"`
	State     string       `json:"state"`
	Value     float64      `json:"value"`
	SlowValue float64      `json:"slow_value"`
	Threshold float64      `json:"threshold"`
	Since     simtime.Time `json:"since_ns"`
	// Cursor is the flight-recorder journal sequence captured at the last
	// state transition: replaying the journal to this point reproduces
	// the state that moved the alert.
	Cursor uint64 `json:"cursor"`
}

// Transition is one state-machine edge, the golden-timeline record.
type Transition struct {
	Time   simtime.Time `json:"t_ns"`
	Rule   string       `json:"rule"`
	From   string       `json:"from"`
	To     string       `json:"to"`
	Value  float64      `json:"value"`
	Cursor uint64       `json:"cursor"`
}

// maxHistory bounds the evaluator's transition journal.
const maxHistory = 256

// alert is one rule's live state.
type alert struct {
	rule        Rule
	state       AlertState
	since       simtime.Time
	cursor      uint64
	vFast       float64
	vSlow       float64
	fireStreak  int
	clearStreak int
}

func newAlert(r Rule) alert { return alert{rule: r.withDefaults()} }

func (a *alert) status() AlertStatus {
	return AlertStatus{
		Rule:      a.rule.Name,
		Severity:  a.rule.Severity.String(),
		State:     a.state.String(),
		Value:     a.vFast,
		SlowValue: a.vSlow,
		Threshold: a.rule.Threshold,
		Since:     a.since,
		Cursor:    a.cursor,
	}
}

// move records the transition and enters the new state.
func (a *alert) move(now simtime.Time, to AlertState, cursor uint64, hist *[]Transition) {
	t := Transition{Time: now, Rule: a.rule.Name,
		From: a.state.String(), To: to.String(), Value: a.vFast, Cursor: cursor}
	*hist = append(*hist, t)
	if len(*hist) > maxHistory {
		copy(*hist, (*hist)[len(*hist)-maxHistory:])
		*hist = (*hist)[:maxHistory]
	}
	a.state = to
	a.since = now
	a.cursor = cursor
}

// eval advances the state machine one evaluation. cursor is the journal
// position to stamp on any transition; hist receives transition records
// (bounded at maxHistory, oldest dropped).
func (a *alert) eval(now simtime.Time, fast, slow Signals, cursor uint64, hist *[]Transition) {
	a.vFast = a.rule.Value(fast)
	a.vSlow = a.rule.Value(slow)
	breach := a.vFast >= a.rule.Threshold
	confirm := a.vSlow >= a.rule.Threshold
	below := a.vFast < a.rule.Threshold*a.rule.ResolveFraction

	switch a.state {
	case StateInactive, StateResolved:
		if breach {
			a.move(now, StatePending, cursor, hist)
			a.fireStreak = 0
			if confirm {
				a.fireStreak = 1
			}
		}
	case StatePending:
		switch {
		case breach:
			if confirm {
				a.fireStreak++
			} else {
				a.fireStreak = 0
			}
			if a.fireStreak >= a.rule.FireAfter {
				a.move(now, StateFiring, cursor, hist)
				a.clearStreak = 0
			}
		case below:
			a.move(now, StateInactive, cursor, hist)
			a.fireStreak = 0
		}
		// In the hysteresis band: hold Pending, keep the streak.
	case StateFiring:
		if below {
			a.clearStreak++
			if a.clearStreak >= a.rule.ClearAfter {
				a.move(now, StateResolved, cursor, hist)
				a.clearStreak = 0
			}
		} else {
			a.clearStreak = 0
		}
	}
}
