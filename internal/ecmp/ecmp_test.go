package ecmp

import (
	"fmt"
	"math/rand"
	"testing"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:20", i+1)
	}
	return out
}

func TestPlainUniform(t *testing.T) {
	p := NewPlain(names(8), 1)
	counts := make([]int, 8)
	for i := 0; i < 80000; i++ {
		counts[p.Select(uint64(i)*2654435761)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("member %d got %d of 80000 (expected ~10000)", i, c)
		}
	}
}

func TestPlainDeterministic(t *testing.T) {
	p := NewPlain(names(5), 7)
	for i := uint64(0); i < 100; i++ {
		if p.Select(i) != p.Select(i) {
			t.Fatal("nondeterministic selection")
		}
	}
}

func TestPlainRemapsOnChange(t *testing.T) {
	before := NewPlain(names(10), 3)
	after := NewPlain(names(9), 3)
	d := Disruption(before, after, 20000, 99)
	// hash mod N remaps ~90% of keys when N: 10->9.
	if d < 0.7 {
		t.Fatalf("plain ECMP disruption = %.3f, expected ~0.9", d)
	}
}

func TestResilientMinimalDisruptionOnRemove(t *testing.T) {
	r1 := NewResilient(names(10), 16, 100, 5)
	r2 := NewResilient(names(10), 16, 100, 5)
	r2.Remove(3)
	d := Disruption(r1, r2, 20000, 100)
	// Only the removed member's ~10% of keys should move.
	if d < 0.05 || d > 0.15 {
		t.Fatalf("resilient remove disruption = %.3f, want ~0.10", d)
	}
}

func TestResilientAdd(t *testing.T) {
	r := NewResilient(names(4), 16, 64, 6)
	idx := r.Add("10.0.0.99:20")
	if idx < 0 {
		t.Fatal("Add returned bad index")
	}
	counts := map[int]int{}
	for i := 0; i < 50000; i++ {
		counts[r.Select(uint64(i)*11400714819323198485)]++
	}
	if counts[idx] == 0 {
		t.Fatal("new member receives no traffic")
	}
	share := float64(counts[idx]) / 50000
	if share < 0.10 || share > 0.30 {
		t.Fatalf("new member share = %.3f, want ~0.20", share)
	}
}

func TestResilientRemoveThenAddReusesSlot(t *testing.T) {
	r := NewResilient(names(3), 8, 32, 7)
	r.Remove(1)
	idx := r.Add("replacement:1")
	if idx != 1 {
		t.Fatalf("Add reused index %d, want tombstoned 1", idx)
	}
	if got := r.Members()[1]; got != "replacement:1" {
		t.Fatalf("member[1] = %q", got)
	}
}

func TestResilientPanics(t *testing.T) {
	r := NewResilient(names(1), 4, 8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("removing last member did not panic")
		}
	}()
	r.Remove(0)
}

func TestMaglevBalance(t *testing.T) {
	g := NewMaglev(names(7), SmallM, 9)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[g.Select(uint64(i)*2654435761)]++
	}
	for i, c := range counts {
		if c < 7000 || c > 13000 {
			t.Fatalf("maglev member %d got %d of 70000", i, c)
		}
	}
}

func TestMaglevTableFullyPopulated(t *testing.T) {
	g := NewMaglev(names(3), 2039, 10)
	seen := map[int]bool{}
	for _, m := range g.table {
		if m < 0 || m >= 3 {
			t.Fatalf("table slot holds %d", m)
		}
		seen[m] = true
	}
	if len(seen) != 3 {
		t.Fatal("some member owns no slots")
	}
	if g.TableSize() != 2039 {
		t.Fatal("TableSize wrong")
	}
}

func TestMaglevNearMinimalDisruption(t *testing.T) {
	members := names(10)
	g1 := NewMaglev(members, SmallM, 11)
	g2 := NewMaglev(members[:9], SmallM, 11) // drop the last member
	d := Disruption(g1, g2, 20000, 101)
	// Maglev's disruption on one removal should be close to the minimal
	// 1/10, far below plain ECMP's ~0.9. Maglev is near-minimal, not
	// minimal: allow up to 3x the lower bound.
	if d < 0.08 || d > 0.30 {
		t.Fatalf("maglev disruption = %.3f, want in [0.08,0.30]", d)
	}
}

func TestMaglevSetMembers(t *testing.T) {
	g := NewMaglev(names(4), 2039, 12)
	g.SetMembers(names(6))
	if len(g.Members()) != 6 {
		t.Fatal("SetMembers did not update")
	}
	counts := make([]int, 6)
	for i := 0; i < 6000; i++ {
		counts[g.Select(uint64(i)*7919)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("member %d starved after SetMembers", i)
		}
	}
}

func TestMaglevPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMaglev(nil, SmallM, 1) },
		func() { NewMaglev(names(10), 7, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad NewMaglev did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPlainSetMembers(t *testing.T) {
	p := NewPlain(names(2), 13)
	p.SetMembers(names(5))
	if len(p.Members()) != 5 {
		t.Fatal("SetMembers failed")
	}
}

// TestDisruptionComparison is the ablation behind the SLB baseline choice:
// on a single member removal maglev and resilient must beat plain ECMP by
// a wide margin.
func TestDisruptionComparison(t *testing.T) {
	members := names(20)
	rng := rand.New(rand.NewSource(14))
	_ = rng
	plainBefore := NewPlain(members, 21)
	plainAfter := NewPlain(members[:19], 21)
	resBefore := NewResilient(members, 32, 100, 21)
	resAfter := NewResilient(members, 32, 100, 21)
	resAfter.Remove(19)
	magBefore := NewMaglev(members, SmallM, 21)
	magAfter := NewMaglev(members[:19], SmallM, 21)

	dp := Disruption(plainBefore, plainAfter, 30000, 22)
	dr := Disruption(resBefore, resAfter, 30000, 22)
	dm := Disruption(magBefore, magAfter, 30000, 22)
	if !(dr < dp/3 && dm < dp/3) {
		t.Fatalf("disruption plain=%.3f resilient=%.3f maglev=%.3f: consistent schemes should be far lower", dp, dr, dm)
	}
}

func BenchmarkMaglevSelect(b *testing.B) {
	g := NewMaglev(names(100), BigM, 23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Select(uint64(i))
	}
}

func BenchmarkMaglevBuild100(b *testing.B) {
	members := names(100)
	for i := 0; i < b.N; i++ {
		NewMaglev(members, SmallM, uint64(i))
	}
}
