package ecmp

import (
	"fmt"
	"testing"
)

// TestMaglevTableSizeAblation quantifies the SLB-baseline design choice:
// larger Maglev tables get closer to minimal disruption when a member is
// removed (minimal = 1/N of keys).
func TestMaglevTableSizeAblation(t *testing.T) {
	members := names(10)
	minimal := 1.0 / 10
	var prev float64 = 1
	for _, m := range []uint64{251, 2039, SmallM} {
		before := NewMaglev(members, m, 77)
		after := NewMaglev(members[:9], m, 77)
		d := Disruption(before, after, 30000, 78)
		if d < minimal-0.02 {
			t.Fatalf("M=%d disruption %.4f below the minimal bound %.4f", m, d, minimal)
		}
		// Larger tables shouldn't be substantially worse than smaller ones.
		if d > prev+0.05 {
			t.Fatalf("M=%d disruption %.4f regressed vs smaller table %.4f", m, d, prev)
		}
		prev = d
	}
	// At the standard size the overshoot above minimal is small.
	if prev > 2.5*minimal {
		t.Fatalf("M=65537 disruption %.4f far from minimal %.4f", prev, minimal)
	}
}

// BenchmarkMaglevDisruptionAblation reports disruption (fraction of keys
// remapped on one member removal) per table size.
func BenchmarkMaglevDisruptionAblation(b *testing.B) {
	members := names(10)
	for _, m := range []uint64{251, 2039, SmallM} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			var d float64
			for i := 0; i < b.N; i++ {
				before := NewMaglev(members, m, uint64(i)+1)
				after := NewMaglev(members[:9], m, uint64(i)+1)
				d = Disruption(before, after, 10000, uint64(i)+2)
			}
			b.ReportMetric(d*100, "%remapped")
		})
	}
}
