// Package ecmp implements the hash-based member-selection schemes the
// paper's baselines use: plain ECMP (hash mod N), resilient hashing (fixed
// bucket table, Broadcom Smart-Hash-style), and Maglev consistent hashing
// (the SLB baseline's VIPTable).
//
// All selectors map a connection key (already hashed to 64 bits) to one
// member of a pool. What distinguishes them is how many existing
// connections get remapped when the pool changes — the quantity that
// drives the PCC violations in Figures 5, 16 and 17.
package ecmp

import (
	"repro/internal/hashing"
)

// Selector maps a connection key to a pool member index.
type Selector interface {
	// Select returns the index (into the member list supplied at
	// construction or update) chosen for key.
	Select(key uint64) int
	// Members returns the current member names.
	Members() []string
}

// Plain is modulo-N ECMP over the live member list. A membership change
// rebuilds the list; hash mod N remaps ~(1 - 1/N) of keys on a size change.
type Plain struct {
	members []string
	seed    uint64
}

// NewPlain creates a plain ECMP selector.
func NewPlain(members []string, seed uint64) *Plain {
	if len(members) == 0 {
		panic("ecmp: empty member list")
	}
	return &Plain{members: append([]string(nil), members...), seed: seed}
}

// Select implements Selector.
func (p *Plain) Select(key uint64) int {
	return int(hashing.HashUint64(p.seed, key) % uint64(len(p.members)))
}

// Members implements Selector.
func (p *Plain) Members() []string { return append([]string(nil), p.members...) }

// SetMembers replaces the member list.
func (p *Plain) SetMembers(members []string) {
	if len(members) == 0 {
		panic("ecmp: empty member list")
	}
	p.members = append([]string(nil), members...)
}

// Resilient is resilient hashing: a fixed-size bucket table maps keys to
// members. Removing a member reassigns only its buckets; adding a member
// steals an even share of buckets. Keys in untouched buckets keep their
// member, unlike plain ECMP.
type Resilient struct {
	members []string
	buckets []int // bucket -> member index
	seed    uint64
}

// NewResilient creates a resilient selector with bucketsPerMember * cap
// buckets (a fixed table sized for up to maxMembers members).
func NewResilient(members []string, maxMembers, bucketsPerMember int, seed uint64) *Resilient {
	if len(members) == 0 {
		panic("ecmp: empty member list")
	}
	if maxMembers < len(members) {
		maxMembers = len(members)
	}
	n := maxMembers * bucketsPerMember
	r := &Resilient{
		members: append([]string(nil), members...),
		buckets: make([]int, n),
		seed:    seed,
	}
	for i := range r.buckets {
		r.buckets[i] = i % len(members)
	}
	return r
}

// Select implements Selector.
func (r *Resilient) Select(key uint64) int {
	b := int(hashing.HashUint64(r.seed, key) % uint64(len(r.buckets)))
	return r.buckets[b]
}

// Members implements Selector.
func (r *Resilient) Members() []string { return append([]string(nil), r.members...) }

// Remove deletes member i, redistributing only its buckets round-robin over
// the survivors. Member indices of survivors are preserved.
func (r *Resilient) Remove(i int) {
	if i < 0 || i >= len(r.members) || len(r.members) == 1 {
		panic("ecmp: bad Remove")
	}
	alive := make([]int, 0, len(r.members)-1)
	for j := range r.members {
		if j != i {
			alive = append(alive, j)
		}
	}
	k := 0
	for b := range r.buckets {
		if r.buckets[b] == i {
			r.buckets[b] = alive[k%len(alive)]
			k++
		}
	}
	r.members[i] = "" // tombstone keeps indices stable
}

// Add registers a new member, stealing an even share of buckets from each
// existing member. It returns the new member's index.
func (r *Resilient) Add(name string) int {
	idx := -1
	for j, m := range r.members {
		if m == "" {
			idx = j
			break
		}
	}
	if idx == -1 {
		idx = len(r.members)
		r.members = append(r.members, "")
	}
	r.members[idx] = name
	live := 0
	for _, m := range r.members {
		if m != "" {
			live++
		}
	}
	want := len(r.buckets) / live // buckets the new member should own
	// Steal every (live)th bucket owned by others, deterministically.
	stolen := 0
	for b := 0; b < len(r.buckets) && stolen < want; b++ {
		if r.buckets[b] != idx && b%live == idx%live {
			r.buckets[b] = idx
			stolen++
		}
	}
	return idx
}

// Maglev is Google's consistent hash (Maglev §3.4): each member generates a
// permutation of table slots from (offset, skip) hashes; members take turns
// claiming their next preferred empty slot until the table fills. Lookups
// are O(1) and membership changes disturb a near-minimal fraction of keys.
type Maglev struct {
	members []string
	table   []int
	m       uint64 // table size (prime)
	seed    uint64
}

// SmallM and BigM are standard Maglev table sizes.
const (
	SmallM = 65537
	BigM   = 655373
)

// NewMaglev builds a Maglev table of size m (must be prime and > #members).
func NewMaglev(members []string, m uint64, seed uint64) *Maglev {
	if len(members) == 0 {
		panic("ecmp: empty member list")
	}
	if uint64(len(members)) >= m {
		panic("ecmp: maglev table smaller than member count")
	}
	g := &Maglev{members: append([]string(nil), members...), m: m, seed: seed}
	g.populate()
	return g
}

// populate builds the lookup table from the current member list.
func (g *Maglev) populate() {
	n := len(g.members)
	offset := make([]uint64, n)
	skip := make([]uint64, n)
	next := make([]uint64, n)
	for i, name := range g.members {
		b := []byte(name)
		offset[i] = hashing.Hash64(g.seed^0x0ff5e7, b) % g.m
		skip[i] = hashing.Hash64(g.seed^0x5c1b, b)%(g.m-1) + 1
	}
	table := make([]int, g.m)
	for i := range table {
		table[i] = -1
	}
	filled := uint64(0)
	for filled < g.m {
		for i := 0; i < n; i++ {
			// Walk member i's permutation to its next empty slot.
			for {
				c := (offset[i] + next[i]*skip[i]) % g.m
				next[i]++
				if table[c] == -1 {
					table[c] = i
					filled++
					break
				}
			}
			if filled == g.m {
				break
			}
		}
	}
	g.table = table
}

// Select implements Selector.
func (g *Maglev) Select(key uint64) int {
	return g.table[hashing.HashUint64(g.seed, key)%g.m]
}

// Members implements Selector.
func (g *Maglev) Members() []string { return append([]string(nil), g.members...) }

// SetMembers rebuilds the table for a new member list. Member indices refer
// to the new list.
func (g *Maglev) SetMembers(members []string) {
	if len(members) == 0 {
		panic("ecmp: empty member list")
	}
	if uint64(len(members)) >= g.m {
		panic("ecmp: maglev table smaller than member count")
	}
	g.members = append([]string(nil), members...)
	g.populate()
}

// TableSize returns the lookup-table size M.
func (g *Maglev) TableSize() uint64 { return g.m }

// Disruption measures the fraction of probe keys whose selected *member
// name* changes between two selectors — the driver of PCC violations when
// connection state is lost.
func Disruption(before, after Selector, probes int, seed uint64) float64 {
	bm := before.Members()
	am := after.Members()
	changed := 0
	for i := 0; i < probes; i++ {
		key := hashing.HashUint64(seed, uint64(i))
		b := bm[before.Select(key)]
		a := am[after.Select(key)]
		if a != b {
			changed++
		}
	}
	return float64(changed) / float64(probes)
}
