// Package timewheel implements the hashed timing wheel the switch software
// uses for connection aging: scheduling and cancelling timeouts in O(1)
// and expiring due entries in time proportional to how many fire, instead
// of sweeping every tracked connection.
//
// The wheel is lazy in the conntrack style: timers are NOT rescheduled on
// every packet (that would cost a wheel operation per packet); instead the
// owner re-checks liveness when a timer fires and reschedules if the entry
// saw traffic in the meantime.
package timewheel

import (
	"repro/internal/simtime"
)

// Wheel schedules uint64 keys (connection key hashes) at virtual times.
type Wheel struct {
	granularity simtime.Duration
	slots       [][]uint64
	pos         int                     // slot index corresponding to ticked
	ticked      simtime.Time            // wheel has expired everything due <= ticked
	items       map[uint64]simtime.Time // key -> deadline (absent = unscheduled)
	started     bool
}

// New creates a wheel with the given slot granularity and slot count. The
// horizon (granularity * slots) bounds how far ahead a deadline may be;
// farther deadlines are clamped to the horizon and simply re-examined
// early by the owner's liveness check.
func New(granularity simtime.Duration, slots int) *Wheel {
	if granularity <= 0 || slots <= 1 {
		panic("timewheel: need positive granularity and >= 2 slots")
	}
	return &Wheel{
		granularity: granularity,
		slots:       make([][]uint64, slots),
		items:       make(map[uint64]simtime.Time),
	}
}

// Horizon returns the farthest future the wheel can represent.
func (w *Wheel) Horizon() simtime.Duration {
	return w.granularity * simtime.Duration(len(w.slots)-1)
}

// Len returns the number of scheduled keys.
func (w *Wheel) Len() int { return len(w.items) }

// slotFor maps a deadline to a slot index, clamping to the horizon.
func (w *Wheel) slotFor(at simtime.Time) int {
	d := at.Sub(w.ticked)
	if d < 0 {
		d = 0
	}
	if d > w.Horizon() {
		d = w.Horizon()
	}
	// Round up so a key never fires before its deadline.
	ticks := int((d + w.granularity - 1) / w.granularity)
	if ticks == 0 {
		ticks = 1 // never the current slot: due keys fire on the next tick
	}
	if ticks > len(w.slots)-1 {
		ticks = len(w.slots) - 1
	}
	return (w.pos + ticks) % len(w.slots)
}

// Schedule sets (or moves) key's deadline.
func (w *Wheel) Schedule(key uint64, at simtime.Time) {
	if !w.started {
		// Anchor the wheel at the first scheduling instant.
		w.started = true
	}
	if _, dup := w.items[key]; dup {
		w.cancelFromSlot(key)
	}
	s := w.slotFor(at)
	w.slots[s] = append(w.slots[s], key)
	w.items[key] = at
}

// Cancel removes key; it reports whether it was scheduled.
func (w *Wheel) Cancel(key uint64) bool {
	if _, ok := w.items[key]; !ok {
		return false
	}
	w.cancelFromSlot(key)
	delete(w.items, key)
	return true
}

// cancelFromSlot removes key from whatever slot holds it.
func (w *Wheel) cancelFromSlot(key uint64) {
	at := w.items[key]
	s := w.slotFor(at)
	// The key may sit in a different slot than slotFor now computes (the
	// wheel has ticked since scheduling); scan outward from the computed
	// slot. Slots are short, and this path is rare (explicit termination).
	for probe := 0; probe < len(w.slots); probe++ {
		idx := (s + probe) % len(w.slots)
		for i, k := range w.slots[idx] {
			if k == key {
				w.slots[idx] = append(w.slots[idx][:i], w.slots[idx][i+1:]...)
				return
			}
		}
	}
}

// NextFire returns the earliest instant at which Advance would release at
// least one key, and whether any key is scheduled. Wall-clock drivers use
// it to sleep exactly until the next aging tick instead of polling.
func (w *Wheel) NextFire() (simtime.Time, bool) {
	if len(w.items) == 0 {
		return 0, false
	}
	// Slot pos+k fires when the wheel ticks k times, at ticked + k*gran.
	// The current slot is always empty (Schedule never targets it and
	// Advance drains it), so scanning one rotation finds every key.
	for k := 1; k < len(w.slots); k++ {
		if len(w.slots[(w.pos+k)%len(w.slots)]) > 0 {
			return w.ticked.Add(simtime.Duration(k) * w.granularity), true
		}
	}
	return 0, false
}

// Advance ticks the wheel to now and returns the keys whose slots came
// due. Returned keys are unscheduled; owners re-check liveness and may
// Schedule them again.
func (w *Wheel) Advance(now simtime.Time) []uint64 {
	if !w.started || !now.After(w.ticked) {
		return nil
	}
	ticks := int(now.Sub(w.ticked) / w.granularity)
	if ticks <= 0 {
		return nil
	}
	if ticks > len(w.slots) {
		ticks = len(w.slots)
	}
	var out []uint64
	for t := 0; t < ticks; t++ {
		w.pos = (w.pos + 1) % len(w.slots)
		if len(w.slots[w.pos]) == 0 {
			continue
		}
		for _, k := range w.slots[w.pos] {
			delete(w.items, k)
			out = append(out, k)
		}
		w.slots[w.pos] = w.slots[w.pos][:0]
	}
	w.ticked = w.ticked.Add(simtime.Duration(ticks) * w.granularity)
	return out
}
