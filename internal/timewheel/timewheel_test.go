package timewheel

import (
	"math/rand"
	"testing"

	"repro/internal/simtime"
)

func sec(n int) simtime.Time { return simtime.Time(n) * simtime.Time(simtime.Second) }

func wheel() *Wheel {
	return New(simtime.Duration(simtime.Second), 64)
}

func TestScheduleAndFire(t *testing.T) {
	w := wheel()
	w.Schedule(1, sec(5))
	w.Schedule(2, sec(10))
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	if got := w.Advance(sec(4)); len(got) != 0 {
		t.Fatalf("fired early: %v", got)
	}
	got := w.Advance(sec(6))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("at t=6 fired %v, want [1]", got)
	}
	got = w.Advance(sec(11))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("at t=11 fired %v, want [2]", got)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after firing", w.Len())
	}
}

func TestCancel(t *testing.T) {
	w := wheel()
	w.Schedule(7, sec(3))
	if !w.Cancel(7) {
		t.Fatal("Cancel returned false")
	}
	if w.Cancel(7) {
		t.Fatal("double cancel returned true")
	}
	if got := w.Advance(sec(10)); len(got) != 0 {
		t.Fatalf("cancelled key fired: %v", got)
	}
}

func TestReschedule(t *testing.T) {
	w := wheel()
	w.Schedule(9, sec(3))
	w.Schedule(9, sec(20)) // move it
	if w.Len() != 1 {
		t.Fatalf("Len = %d", w.Len())
	}
	if got := w.Advance(sec(10)); len(got) != 0 {
		t.Fatalf("old deadline fired: %v", got)
	}
	if got := w.Advance(sec(21)); len(got) != 1 || got[0] != 9 {
		t.Fatalf("new deadline: %v", got)
	}
}

func TestHorizonClamp(t *testing.T) {
	w := wheel() // horizon 63s
	w.Schedule(5, sec(1000))
	got := w.Advance(sec(64))
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("beyond-horizon key should fire at horizon for re-check: %v", got)
	}
}

func TestPastDeadlineFiresNextTick(t *testing.T) {
	w := wheel()
	w.Advance(sec(10))
	w.Schedule(3, sec(1)) // already past
	if got := w.Advance(sec(12)); len(got) != 1 {
		t.Fatalf("past-deadline key did not fire promptly: %v", got)
	}
}

func TestLongIdleAdvance(t *testing.T) {
	w := wheel()
	w.Schedule(1, sec(2))
	// Advancing far beyond a full wheel rotation must still fire exactly
	// once and not wrap into phantom fires.
	got := w.Advance(sec(100000))
	if len(got) != 1 {
		t.Fatalf("fired %v", got)
	}
	if got := w.Advance(sec(200000)); len(got) != 0 {
		t.Fatalf("phantom fire: %v", got)
	}
}

func TestManyKeysStress(t *testing.T) {
	w := New(simtime.Duration(100*simtime.Millisecond), 128)
	rng := rand.New(rand.NewSource(1))
	deadlines := map[uint64]simtime.Time{}
	for i := uint64(1); i <= 5000; i++ {
		at := simtime.Time(rng.Intn(12_000)) * simtime.Time(simtime.Millisecond)
		w.Schedule(i, at)
		deadlines[i] = at
	}
	// Cancel a random quarter.
	cancelled := map[uint64]bool{}
	for k := range deadlines {
		if rng.Intn(4) == 0 {
			w.Cancel(k)
			cancelled[k] = true
		}
	}
	fired := map[uint64]simtime.Time{}
	for step := 1; step <= 140; step++ {
		now := simtime.Time(step) * simtime.Time(100*simtime.Millisecond)
		for _, k := range w.Advance(now) {
			if _, dup := fired[k]; dup {
				t.Fatalf("key %d fired twice", k)
			}
			fired[k] = now
		}
	}
	for k, at := range deadlines {
		if cancelled[k] {
			if _, ok := fired[k]; ok {
				t.Fatalf("cancelled key %d fired", k)
			}
			continue
		}
		fat, ok := fired[k]
		if !ok {
			t.Fatalf("key %d never fired (deadline %v)", k, at)
		}
		if fat.Before(at) {
			t.Fatalf("key %d fired at %v before deadline %v", k, fat, at)
		}
		// Fires within one granularity + one tick of the deadline.
		if fat.Sub(at) > simtime.Duration(300*simtime.Millisecond) {
			t.Fatalf("key %d fired %v late", k, fat.Sub(at))
		}
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 8) },
		func() { New(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad New did not panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkScheduleCancel(b *testing.B) {
	w := New(simtime.Duration(simtime.Second), 512)
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		w.Schedule(k, simtime.Time(i%400)*simtime.Time(simtime.Second))
		if i%2 == 0 {
			w.Cancel(k)
		}
		if i%1024 == 0 {
			w.Advance(simtime.Time(i) * simtime.Time(simtime.Millisecond))
		}
	}
}
