package timewheel

import (
	"math/rand"
	"testing"

	"repro/internal/simtime"
)

func sec(n int) simtime.Time { return simtime.Time(n) * simtime.Time(simtime.Second) }

func wheel() *Wheel {
	return New(simtime.Duration(simtime.Second), 64)
}

func TestScheduleAndFire(t *testing.T) {
	w := wheel()
	w.Schedule(1, sec(5))
	w.Schedule(2, sec(10))
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	if got := w.Advance(sec(4)); len(got) != 0 {
		t.Fatalf("fired early: %v", got)
	}
	got := w.Advance(sec(6))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("at t=6 fired %v, want [1]", got)
	}
	got = w.Advance(sec(11))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("at t=11 fired %v, want [2]", got)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after firing", w.Len())
	}
}

func TestCancel(t *testing.T) {
	w := wheel()
	w.Schedule(7, sec(3))
	if !w.Cancel(7) {
		t.Fatal("Cancel returned false")
	}
	if w.Cancel(7) {
		t.Fatal("double cancel returned true")
	}
	if got := w.Advance(sec(10)); len(got) != 0 {
		t.Fatalf("cancelled key fired: %v", got)
	}
}

func TestReschedule(t *testing.T) {
	w := wheel()
	w.Schedule(9, sec(3))
	w.Schedule(9, sec(20)) // move it
	if w.Len() != 1 {
		t.Fatalf("Len = %d", w.Len())
	}
	if got := w.Advance(sec(10)); len(got) != 0 {
		t.Fatalf("old deadline fired: %v", got)
	}
	if got := w.Advance(sec(21)); len(got) != 1 || got[0] != 9 {
		t.Fatalf("new deadline: %v", got)
	}
}

func TestHorizonClamp(t *testing.T) {
	w := wheel() // horizon 63s
	w.Schedule(5, sec(1000))
	got := w.Advance(sec(64))
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("beyond-horizon key should fire at horizon for re-check: %v", got)
	}
}

func TestPastDeadlineFiresNextTick(t *testing.T) {
	w := wheel()
	w.Advance(sec(10))
	w.Schedule(3, sec(1)) // already past
	if got := w.Advance(sec(12)); len(got) != 1 {
		t.Fatalf("past-deadline key did not fire promptly: %v", got)
	}
}

func TestLongIdleAdvance(t *testing.T) {
	w := wheel()
	w.Schedule(1, sec(2))
	// Advancing far beyond a full wheel rotation must still fire exactly
	// once and not wrap into phantom fires.
	got := w.Advance(sec(100000))
	if len(got) != 1 {
		t.Fatalf("fired %v", got)
	}
	if got := w.Advance(sec(200000)); len(got) != 0 {
		t.Fatalf("phantom fire: %v", got)
	}
}

func TestManyKeysStress(t *testing.T) {
	w := New(simtime.Duration(100*simtime.Millisecond), 128)
	rng := rand.New(rand.NewSource(1))
	deadlines := map[uint64]simtime.Time{}
	for i := uint64(1); i <= 5000; i++ {
		at := simtime.Time(rng.Intn(12_000)) * simtime.Time(simtime.Millisecond)
		w.Schedule(i, at)
		deadlines[i] = at
	}
	// Cancel a random quarter.
	cancelled := map[uint64]bool{}
	for k := range deadlines {
		if rng.Intn(4) == 0 {
			w.Cancel(k)
			cancelled[k] = true
		}
	}
	fired := map[uint64]simtime.Time{}
	for step := 1; step <= 140; step++ {
		now := simtime.Time(step) * simtime.Time(100*simtime.Millisecond)
		for _, k := range w.Advance(now) {
			if _, dup := fired[k]; dup {
				t.Fatalf("key %d fired twice", k)
			}
			fired[k] = now
		}
	}
	for k, at := range deadlines {
		if cancelled[k] {
			if _, ok := fired[k]; ok {
				t.Fatalf("cancelled key %d fired", k)
			}
			continue
		}
		fat, ok := fired[k]
		if !ok {
			t.Fatalf("key %d never fired (deadline %v)", k, at)
		}
		if fat.Before(at) {
			t.Fatalf("key %d fired at %v before deadline %v", k, fat, at)
		}
		// Fires within one granularity + one tick of the deadline.
		if fat.Sub(at) > simtime.Duration(300*simtime.Millisecond) {
			t.Fatalf("key %d fired %v late", k, fat.Sub(at))
		}
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 8) },
		func() { New(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad New did not panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkScheduleCancel(b *testing.B) {
	w := New(simtime.Duration(simtime.Second), 512)
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		w.Schedule(k, simtime.Time(i%400)*simtime.Time(simtime.Second))
		if i%2 == 0 {
			w.Cancel(k)
		}
		if i%1024 == 0 {
			w.Advance(simtime.Time(i) * simtime.Time(simtime.Millisecond))
		}
	}
}

// TestCancelThenFireSameTick schedules two keys into the same slot,
// cancels one at the last moment, and checks the surviving key still fires
// on that very tick while the cancelled one never does.
func TestCancelThenFireSameTick(t *testing.T) {
	w := wheel()
	w.Schedule(1, sec(5))
	w.Schedule(2, sec(5))
	if !w.Cancel(1) {
		t.Fatal("Cancel returned false for scheduled key")
	}
	got := w.Advance(sec(5))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("same-tick fire after cancel: got %v, want [2]", got)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d, want 0", w.Len())
	}
	// The cancelled key must stay cancelled on later ticks too.
	if got := w.Advance(sec(200)); len(got) != 0 {
		t.Fatalf("cancelled key resurfaced: %v", got)
	}
}

// TestRescheduleQueued moves an already-queued key both later and earlier
// and verifies exactly one firing at the final deadline — the lazy-aging
// pattern where a connection's timer is re-armed while still pending.
func TestRescheduleQueued(t *testing.T) {
	w := wheel()
	w.Schedule(5, sec(10))
	w.Schedule(5, sec(30)) // push out
	w.Schedule(5, sec(4))  // pull in
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (reschedules must not duplicate)", w.Len())
	}
	if got := w.Advance(sec(3)); len(got) != 0 {
		t.Fatalf("fired before earliest deadline: %v", got)
	}
	got := w.Advance(sec(4))
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("fired %v at t=4, want [5]", got)
	}
	// Neither abandoned deadline may fire again.
	if got := w.Advance(sec(40)); len(got) != 0 {
		t.Fatalf("stale deadline fired: %v", got)
	}
}

// TestWraparound drives the wheel through several full rotations, with
// deadlines landing beyond the horizon (clamped) and exactly one rotation
// apart, to verify position bookkeeping survives wrapping.
func TestWraparound(t *testing.T) {
	w := New(simtime.Duration(simtime.Second), 8) // horizon: 7 s
	// Beyond-horizon deadline clamps to the horizon slot.
	w.Schedule(1, sec(100))
	got := w.Advance(sec(7))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("clamped key fired %v at horizon, want [1]", got)
	}
	// March through ten rotations scheduling one key per tick.
	next := uint64(2)
	fired := 0
	for tick := 8; tick < 88; tick++ {
		w.Schedule(next, sec(tick+3))
		next++
		fired += len(w.Advance(sec(tick)))
	}
	fired += len(w.Advance(sec(95)))
	want := int(next - 2)
	if fired != want {
		t.Fatalf("fired %d keys across rotations, want %d", fired, want)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", w.Len())
	}
	// A skipped stretch far longer than one rotation still fires everything.
	w.Schedule(999, sec(97))
	got = w.Advance(sec(500))
	if len(got) != 1 || got[0] != 999 {
		t.Fatalf("key lost across multi-rotation skip: %v", got)
	}
}

// TestNextFire pins the wheel's wake-up arithmetic: the reported instant
// is exactly when Advance first releases a key, before and after ticking.
func TestNextFire(t *testing.T) {
	w := wheel()
	if _, ok := w.NextFire(); ok {
		t.Fatal("empty wheel reported a fire time")
	}
	w.Schedule(1, sec(5))
	at, ok := w.NextFire()
	if !ok || at != sec(5) {
		t.Fatalf("NextFire = %v,%v, want 5s", at, ok)
	}
	if got := w.Advance(at.Add(-1)); len(got) != 0 {
		t.Fatalf("fired before NextFire instant: %v", got)
	}
	if got := w.Advance(at); len(got) != 1 {
		t.Fatalf("nothing fired at NextFire instant")
	}
	// After ticking, a later key's fire time accounts for wheel position.
	w.Schedule(2, sec(9))
	at, ok = w.NextFire()
	if !ok || at != sec(9) {
		t.Fatalf("NextFire after ticking = %v,%v, want 9s", at, ok)
	}
	w.Cancel(2)
	if _, ok := w.NextFire(); ok {
		t.Fatal("cancelled-out wheel reported a fire time")
	}
}
