package duet

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

func vip() dataplane.VIP {
	return dataplane.VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 80, Proto: netproto.ProtoTCP}
}

func pool(n int) []dataplane.DIP {
	out := make([]dataplane.DIP, n)
	for i := range out {
		out[i] = netip.MustParseAddrPort(fmt.Sprintf("10.0.0.%d:20", i+1))
	}
	return out
}

func tup(i int) netproto.FiveTuple {
	return netproto.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{1, 2, byte(i >> 8), byte(i)}),
		Dst:     netip.MustParseAddr("20.0.0.1"),
		SrcPort: uint16(1024 + i),
		DstPort: 80,
		Proto:   netproto.ProtoTCP,
	}
}

func sec(n int) simtime.Time { return simtime.Time(n) * simtime.Time(simtime.Second) }

func TestSwitchPathStableWithoutUpdates(t *testing.T) {
	b := New(Config{Policy: Migrate10min})
	b.AddVIP(vip(), pool(8))
	first := map[int]dataplane.DIP{}
	for i := 0; i < 100; i++ {
		d, ok := b.Packet(0, tup(i))
		if !ok {
			t.Fatal("unknown VIP")
		}
		first[i] = d
	}
	for i := 0; i < 100; i++ {
		if d, _ := b.Packet(sec(1), tup(i)); d != first[i] {
			t.Fatal("static pool remapped a connection")
		}
	}
	s := b.Stats()
	if s.SLBPackets != 0 || s.SwitchPackets != 200 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestUpdateDetoursVIP(t *testing.T) {
	b := New(Config{Policy: Migrate10min})
	b.AddVIP(vip(), pool(8))
	b.Packet(0, tup(1))
	if err := b.Update(sec(1), vip(), pool(7)); err != nil {
		t.Fatal(err)
	}
	if !b.Detoured(vip()) {
		t.Fatal("VIP not detoured after update")
	}
	// During detour, the SLB's ConnTable keeps the old mapping (PCC).
	d1, _ := b.Packet(0, tup(1))
	d2, _ := b.Packet(sec(2), tup(1))
	if d1 != d2 {
		t.Fatal("detoured connection remapped")
	}
	if b.Stats().SLBPackets == 0 {
		t.Fatal("detour packets not counted as SLB load")
	}
}

func TestEarlyMigrationBreaksOldConns(t *testing.T) {
	b := New(Config{Policy: Migrate1min, Seed: 1})
	b.AddVIP(vip(), pool(10))
	// 1000 connections established before the update.
	for i := 0; i < 1000; i++ {
		b.Packet(0, tup(i))
	}
	b.Update(sec(10), vip(), pool(9)) // remove one DIP
	// Migrate back while all old connections are alive: ~9/10 of the keys
	// remap under ECMP mod-9 vs mod-10.
	broken := b.MigrateDue(sec(70))
	if b.Detoured(vip()) {
		t.Fatal("VIP still detoured after migration")
	}
	frac := float64(broken) / 1000
	if frac < 0.5 {
		t.Fatalf("broken fraction = %.3f, ECMP resize should break most", frac)
	}
	if b.Stats().BrokenConns != uint64(broken) {
		t.Fatal("stats mismatch")
	}
	// A second migration pass must not double count.
	b.Update(sec(80), vip(), pool(9)) // same pool: detour but no remap
	if again := b.MigrateDue(sec(140)); again != 0 {
		t.Fatalf("re-migration broke %d conns; rebinding should be sticky", again)
	}
}

func TestMigratePCCWaitsForOldConns(t *testing.T) {
	b := New(Config{Policy: MigratePCC})
	b.AddVIP(vip(), pool(10))
	for i := 0; i < 50; i++ {
		b.Packet(0, tup(i))
	}
	b.Update(sec(10), vip(), pool(9))
	// Old connections alive: migration must refuse.
	if b.MigrateDue(sec(20)); !b.Detoured(vip()) {
		t.Fatal("Migrate-PCC migrated with old conns alive")
	}
	if b.Stats().BrokenConns != 0 {
		t.Fatal("Migrate-PCC broke connections")
	}
	// End all old connections: the VIP migrates back automatically.
	for i := 0; i < 50; i++ {
		b.ConnEnd(sec(30), tup(i))
	}
	if b.Detoured(vip()) {
		t.Fatal("Migrate-PCC did not migrate after old conns ended")
	}
	if b.Stats().BrokenConns != 0 {
		t.Fatal("Migrate-PCC broke connections at migration")
	}
}

func TestNewConnsDuringDetourSurviveMigration(t *testing.T) {
	b := New(Config{Policy: Migrate1min})
	b.AddVIP(vip(), pool(10))
	b.Update(sec(1), vip(), pool(9))
	// Connections created during the detour use the new pool via mimicked
	// ECMP, so migration must not break them.
	for i := 0; i < 200; i++ {
		b.Packet(sec(2), tup(i))
	}
	if broken := b.MigrateDue(sec(61)); broken != 0 {
		t.Fatalf("migration broke %d post-update conns, want 0", broken)
	}
}

func TestPolicyIntervals(t *testing.T) {
	if Migrate10min.Interval() != simtime.Duration(10*simtime.Minute) {
		t.Fatal("10min interval wrong")
	}
	if Migrate1min.Interval() != simtime.Duration(simtime.Minute) {
		t.Fatal("1min interval wrong")
	}
	if MigratePCC.Interval() != 0 {
		t.Fatal("PCC interval should be 0")
	}
	if Migrate10min.String() != "Migrate-10min" || MigratePCC.String() != "Migrate-PCC" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "Migrate-?" {
		t.Fatal("unknown policy name wrong")
	}
}

func TestConnEndAccounting(t *testing.T) {
	b := New(Config{Policy: Migrate10min})
	b.AddVIP(vip(), pool(4))
	b.Packet(0, tup(1))
	b.Update(sec(5), vip(), pool(3))
	b.ConnEnd(sec(20), tup(1))
	s := b.Stats()
	if s.TotalConnTime != simtime.Duration(20*simtime.Second) {
		t.Fatalf("TotalConnTime = %v", s.TotalConnTime)
	}
	// Detoured from t=5 to end at t=20: 15s of detour time.
	if s.DetourConnTime != simtime.Duration(15*simtime.Second) {
		t.Fatalf("DetourConnTime = %v", s.DetourConnTime)
	}
	if b.LiveConns(vip()) != 0 {
		t.Fatal("conn not removed")
	}
	b.ConnEnd(sec(21), tup(1)) // idempotent
}

func TestErrors(t *testing.T) {
	b := New(Config{})
	if err := b.AddVIP(vip(), nil); err == nil {
		t.Fatal("empty pool accepted")
	}
	b.AddVIP(vip(), pool(2))
	if err := b.AddVIP(vip(), pool(2)); err == nil {
		t.Fatal("duplicate VIP accepted")
	}
	if err := b.Update(0, dataplane.VIP{}, pool(1)); err == nil {
		t.Fatal("unknown VIP update accepted")
	}
	if err := b.Update(0, vip(), nil); err == nil {
		t.Fatal("empty update accepted")
	}
	if _, ok := b.Packet(0, netproto.FiveTuple{Dst: netip.MustParseAddr("9.9.9.9")}); ok {
		t.Fatal("unknown VIP packet accepted")
	}
}
