// Package duet implements the Duet [22] baseline: VIPTable lives in switch
// ASICs (ECMP over the DIP pool, no per-connection state in hardware) and
// ConnTable lives in software load balancers.
//
// The consequence the paper builds on (§3.2): whenever a VIP's DIP pool
// changes, that VIP's traffic must detour to SLBs, which ensure PCC in
// software. The open question is when to migrate the VIP back to switches:
//
//   - Migrate-10min / Migrate-1min: periodic migration. Connections that
//     pre-date the latest update get re-hashed by switch ECMP over the
//     current pool and may break (PCC violations, Figure 5b/16).
//   - Migrate-PCC: wait until every connection that pre-dates the update
//     has terminated — zero violations, but the VIP's traffic can sit on
//     SLBs almost permanently under frequent updates (Figure 5a).
package duet

import (
	"errors"

	"repro/internal/dataplane"
	"repro/internal/hashing"
	"repro/internal/netproto"
	"repro/internal/simtime"
)

// Policy selects the migration strategy.
type Policy uint8

// Migration policies.
const (
	Migrate10min Policy = iota
	Migrate1min
	MigratePCC
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Migrate10min:
		return "Migrate-10min"
	case Migrate1min:
		return "Migrate-1min"
	case MigratePCC:
		return "Migrate-PCC"
	default:
		return "Migrate-?"
	}
}

// Interval returns the periodic migration interval (0 for MigratePCC).
func (p Policy) Interval() simtime.Duration {
	switch p {
	case Migrate10min:
		return simtime.Duration(10 * simtime.Minute)
	case Migrate1min:
		return simtime.Duration(simtime.Minute)
	default:
		return 0
	}
}

// Config parameterizes the Duet model.
type Config struct {
	Policy Policy
	Seed   uint64
}

// Stats counts Duet activity and the Figure 5 quantities.
type Stats struct {
	Packets        uint64
	SwitchPackets  uint64 // served by switch ECMP
	SLBPackets     uint64 // served during detour
	Updates        uint64
	Migrations     uint64
	BrokenConns    uint64           // PCC violations at migration
	DetourConnTime simtime.Duration // live-connection time spent detoured
	TotalConnTime  simtime.Duration
}

type connState struct {
	tuple   netproto.FiveTuple
	vip     dataplane.VIP
	dip     dataplane.DIP
	started simtime.Time
	broken  bool
}

type vipState struct {
	pool         []dataplane.DIP
	detoured     bool
	detourSince  simtime.Time
	lastUpdateAt simtime.Time
	conns        map[uint64]*connState
}

// Balancer is the network-wide Duet model: one logical VIPTable (switches
// behave identically) plus the SLB tier's ConnTable.
type Balancer struct {
	cfg   Config
	vips  map[dataplane.VIP]*vipState
	stats Stats
}

// New creates a Duet balancer.
func New(cfg Config) *Balancer {
	return &Balancer{cfg: cfg, vips: make(map[dataplane.VIP]*vipState)}
}

// Stats returns a copy of the counters.
func (b *Balancer) Stats() Stats { return b.stats }

// AddVIP announces a VIP on the switches.
func (b *Balancer) AddVIP(vip dataplane.VIP, pool []dataplane.DIP) error {
	if len(pool) == 0 {
		return errors.New("duet: empty pool")
	}
	if _, dup := b.vips[vip]; dup {
		return errors.New("duet: VIP exists")
	}
	b.vips[vip] = &vipState{
		pool:  append([]dataplane.DIP(nil), pool...),
		conns: make(map[uint64]*connState),
	}
	return nil
}

// keyHash hashes the tuple for ECMP/ConnTable addressing.
func (b *Balancer) keyHash(t netproto.FiveTuple) uint64 {
	var buf [37]byte
	return hashing.Hash64(b.cfg.Seed^0xd0e7, t.KeyBytes(buf[:]))
}

// ecmpSelect is the switch hash: ECMP over the current pool.
func ecmpSelect(pool []dataplane.DIP, keyHash uint64) dataplane.DIP {
	return pool[hashing.HashUint64(0xec3b, keyHash)%uint64(len(pool))]
}

// Packet processes one packet. On the switch path the DIP comes from ECMP
// over the current pool; on the detour path the SLB's ConnTable pins it.
// Either way the connection's state is tracked so migrations can assess
// breakage.
func (b *Balancer) Packet(now simtime.Time, t netproto.FiveTuple) (dataplane.DIP, bool) {
	b.stats.Packets++
	vip := dataplane.VIPOf(t)
	vs, ok := b.vips[vip]
	if !ok {
		return dataplane.DIP{}, false
	}
	kh := b.keyHash(t)
	cs, known := vs.conns[kh]
	if !known {
		cs = &connState{tuple: t, vip: vip, started: now}
		// New connection: both paths assign by the current pool (the SLB
		// mimics switch ECMP for new connections so that migration back
		// does not break them).
		cs.dip = ecmpSelect(vs.pool, kh)
		vs.conns[kh] = cs
	}
	if vs.detoured {
		b.stats.SLBPackets++
		// SLB ConnTable pins cs.dip regardless of pool changes.
		return cs.dip, true
	}
	b.stats.SwitchPackets++
	// Switch path: stateless ECMP over the current pool. For connections
	// whose recorded DIP differs (survivors of an early migration), this
	// IS the PCC break; Migrate() already counted it and rebound them.
	return ecmpSelect(vs.pool, kh), true
}

// Update applies a DIP pool change to vip: the VIP detours to SLBs (if not
// already detoured) and the pool is swapped.
func (b *Balancer) Update(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	vs, ok := b.vips[vip]
	if !ok {
		return errors.New("duet: unknown VIP")
	}
	if len(pool) == 0 {
		return errors.New("duet: empty pool")
	}
	if !vs.detoured {
		vs.detoured = true
		vs.detourSince = now
	}
	vs.pool = append([]dataplane.DIP(nil), pool...)
	vs.lastUpdateAt = now
	b.stats.Updates++
	return nil
}

// MigrateDue performs the policy's migrations at time now. For periodic
// policies the caller invokes it on the policy interval; for Migrate-PCC
// on every connection end. It returns the number of connections broken by
// this round of migrations.
func (b *Balancer) MigrateDue(now simtime.Time) int {
	broken := 0
	for _, vs := range b.vips {
		if !vs.detoured {
			continue
		}
		if b.cfg.Policy == MigratePCC && !b.oldConnsGone(vs) {
			continue
		}
		broken += b.migrate(now, vs)
	}
	return broken
}

// oldConnsGone reports whether every connection predating the VIP's last
// update has terminated.
func (b *Balancer) oldConnsGone(vs *vipState) bool {
	for _, cs := range vs.conns {
		if cs.started.Before(vs.lastUpdateAt) {
			return false
		}
	}
	return true
}

// migrate moves one VIP back to switches: connections whose pinned DIP
// disagrees with switch ECMP over the current pool break.
func (b *Balancer) migrate(now simtime.Time, vs *vipState) int {
	broken := 0
	for kh, cs := range vs.conns {
		mapped := ecmpSelect(vs.pool, kh)
		if mapped != cs.dip && !cs.broken {
			cs.broken = true
			b.stats.BrokenConns++
			broken++
			// The application re-establishes; model the re-bound conn as
			// following the switch mapping from here on.
			cs.dip = mapped
		}
		since := vs.detourSince
		if cs.started.After(since) {
			since = cs.started
		}
		b.stats.DetourConnTime += simtime.Duration(now.Sub(since))
	}
	vs.detoured = false
	b.stats.Migrations++
	return broken
}

// ConnEnd removes a terminated connection, accumulating detour accounting.
func (b *Balancer) ConnEnd(now simtime.Time, t netproto.FiveTuple) {
	vip := dataplane.VIPOf(t)
	vs, ok := b.vips[vip]
	if !ok {
		return
	}
	kh := b.keyHash(t)
	cs, ok := vs.conns[kh]
	if !ok {
		return
	}
	b.stats.TotalConnTime += simtime.Duration(now.Sub(cs.started))
	if vs.detoured {
		since := vs.detourSince
		if cs.started.After(since) {
			since = cs.started
		}
		b.stats.DetourConnTime += simtime.Duration(now.Sub(since))
	}
	delete(vs.conns, kh)
	if b.cfg.Policy == MigratePCC && vs.detoured && b.oldConnsGone(vs) {
		b.migrate(now, vs)
	}
}

// Detoured reports whether vip is currently served by SLBs.
func (b *Balancer) Detoured(vip dataplane.VIP) bool {
	vs, ok := b.vips[vip]
	return ok && vs.detoured
}

// LiveConns returns the number of tracked connections for vip.
func (b *Balancer) LiveConns(vip dataplane.VIP) int {
	vs, ok := b.vips[vip]
	if !ok {
		return 0
	}
	return len(vs.conns)
}
